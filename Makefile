# Convenience targets mirroring .github/workflows/ci.yml for
# environments without Actions.

.PHONY: all build test check bench tables faults reliability-smoke \
	verify-fuzz perf-baseline perf-smoke jobs-check journal-smoke \
	netobs-smoke sim-smoke serve-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

# The CI gate: build, tests, and the §4.2 closed-form assertion
# (run_experiments scale exits nonzero if fit checks != n(n+1)/2).
check: build test
	dune exec bin/run_experiments.exe -- scale

tables:
	BENCH_TABLES_ONLY=1 dune exec bench/main.exe

# Small fixed-seed fault-injection sweep: flat vs partitioned Table 1
# designs under packet drops.  Deterministic — same output every run.
faults:
	dune exec bin/run_experiments.exe -- faults --trials 3

bench:
	dune exec bench/main.exe

# Small fixed-seed reliability sweep: the λ grid and Pareto front over
# Table 1 with a reduced trial count (doc/reliability.md).  The flight
# recorder is armed so a simulation event-limit blowup inside the
# Monte-Carlo replays leaves a post-mortem bundle CI uploads as an
# artifact; on success no bundle is written.
reliability-smoke:
	PAREDOWN_FLIGHT_RECORD=paredown-postmortem.json \
	  dune exec bin/run_experiments.exe -- reliability --trials 8

# Verification fuzzing: every partition of a batch of random designs
# through the three-tier verifier (doc/verification.md); exits nonzero
# on any failed verdict.  The compiled simulation kernel
# (doc/performance.md "Simulator compilation") made settles ~10x
# cheaper, so the gate runs 2000 seeds in the wall time 200 used to
# take.  The second/third lines are the --jobs determinism gate for
# the fuzz sweep itself (smaller batch: it runs the sweep twice).
# The first sweep arms the flight recorder: a failed verdict dumps a
# post-mortem bundle (journal tail + metrics + git rev) that CI uploads
# as an artifact.  On success no bundle is written.
verify-fuzz:
	PAREDOWN_FLIGHT_RECORD=paredown-postmortem.json \
	  dune exec bin/run_experiments.exe -- fuzz --seeds 2000
	PAREDOWN_STABLE_TIMES=1 dune exec bin/run_experiments.exe -- fuzz --seeds 200 --jobs 1 > fuzz-j1.txt
	PAREDOWN_STABLE_TIMES=1 dune exec bin/run_experiments.exe -- fuzz --seeds 200 --jobs 2 > fuzz-j2.txt
	diff fuzz-j1.txt fuzz-j2.txt
	rm -f fuzz-j1.txt fuzz-j2.txt

# Re-record the committed perf baseline (bench/baseline.json).  Run on
# a quiet machine after any deliberate perf-relevant change and commit
# the result.
perf-baseline:
	dune exec bin/paredown.exe -- perf record -o bench/baseline.json --repeats 3

# The perf regression gate: record a fresh snapshot and compare it to
# the committed baseline.  Work counters (fit checks, packets, bytes)
# are deterministic and gate at a tight ratio; wall times only gate on
# an order-of-magnitude blowup (--max-ratio 20) because the baseline
# was recorded on different hardware.
perf-smoke: jobs-check
	dune exec bin/paredown.exe -- perf record -o perf-snapshot.json --repeats 3
	dune exec bin/paredown.exe -- perf compare bench/baseline.json perf-snapshot.json \
	  --max-ratio 20 --min-ms 5

# The --jobs determinism gate: a 2-domain sweep must print byte-for-byte
# what the sequential one prints.  PAREDOWN_STABLE_TIMES masks the wall
# clock readings — the one legitimately nondeterministic output (see
# doc/performance.md).
jobs-check:
	PAREDOWN_STABLE_TIMES=1 dune exec bin/run_experiments.exe -- scale --jobs 1 > scale-j1.txt
	PAREDOWN_STABLE_TIMES=1 dune exec bin/run_experiments.exe -- scale --jobs 2 > scale-j2.txt
	diff scale-j1.txt scale-j2.txt
	rm -f scale-j1.txt scale-j2.txt
	PAREDOWN_STABLE_TIMES=1 dune exec bin/run_experiments.exe -- reliability --trials 8 --jobs 1 > rel-j1.txt
	PAREDOWN_STABLE_TIMES=1 dune exec bin/run_experiments.exe -- reliability --trials 8 --jobs 2 > rel-j2.txt
	diff rel-j1.txt rel-j2.txt
	rm -f rel-j1.txt rel-j2.txt
	PAREDOWN_STABLE_TIMES=1 dune exec bin/paredown.exe -- observe entry_gate \
	  --faults drop:0.05 --jobs 1 --netobs netobs-jobs.json > observe-j1.txt
	cp netobs-jobs.json netobs-j1.json
	PAREDOWN_STABLE_TIMES=1 dune exec bin/paredown.exe -- observe entry_gate \
	  --faults drop:0.05 --jobs 2 --netobs netobs-jobs.json > observe-j2.txt
	diff observe-j1.txt observe-j2.txt
	diff netobs-j1.json netobs-jobs.json
	PAREDOWN_STABLE_TIMES=1 PAREDOWN_SIM_KERNEL=interpreted \
	  dune exec bin/paredown.exe -- observe entry_gate \
	  --faults drop:0.05 --jobs 2 --netobs netobs-jobs.json > observe-ji.txt
	diff observe-j1.txt observe-ji.txt
	diff netobs-j1.json netobs-jobs.json
	rm -f observe-j1.txt observe-j2.txt observe-ji.txt \
	  netobs-j1.json netobs-jobs.json

# Batch-server smoke (doc/service.md): drain a 105-request mixed batch
# (6x Table 1 under PareDown + 1x under aggregation) through `paredown
# serve` twice against the same cache file.  Gates, in order: the warm
# run is byte-identical to the cold one; the warm run recomputes
# nothing (cache_misses=0); responses are --jobs invariant; and a
# piped one-request round trip prints exactly what the one-shot CLI
# prints.  The cache runs arm the flight recorder, so a mid-batch
# failure leaves a post-mortem bundle for the CI artifact upload.
# PAREDOWN_STABLE_TIMES masks elapsed_ns, the one
# legitimately nondeterministic response field.  Uses the built binary
# directly: three dune execs sharing a shell pipe would fight over the
# build lock.
serve-smoke: build
	rm -f serve-cache.json
	./_build/default/bin/paredown.exe submit --table1 --repeat 6 > serve-batch.txt
	./_build/default/bin/paredown.exe submit --table1 -a aggregation >> serve-batch.txt
	PAREDOWN_STABLE_TIMES=1 ./_build/default/bin/paredown.exe serve \
	  --cache serve-cache.json --jobs 2 \
	  --flight-record paredown-postmortem.json \
	  < serve-batch.txt > serve-run1.txt
	PAREDOWN_STABLE_TIMES=1 ./_build/default/bin/paredown.exe serve \
	  --cache serve-cache.json --jobs 2 \
	  --flight-record paredown-postmortem.json \
	  < serve-batch.txt > serve-run2.txt
	./_build/default/bin/paredown.exe submit --decode serve-run1.txt > serve-dec1.txt
	./_build/default/bin/paredown.exe submit --decode serve-run2.txt > serve-dec2.txt
	diff serve-dec1.txt serve-dec2.txt
	./_build/default/bin/paredown.exe submit --decode serve-run2.txt --summary \
	  | grep -q "cache_misses=0"
	rm -f serve-cache.json
	PAREDOWN_STABLE_TIMES=1 ./_build/default/bin/paredown.exe serve \
	  --jobs 1 < serve-batch.txt > serve-j1.txt
	PAREDOWN_STABLE_TIMES=1 ./_build/default/bin/paredown.exe serve \
	  --jobs 4 < serve-batch.txt > serve-j4.txt
	diff serve-j1.txt serve-j4.txt
	./_build/default/bin/paredown.exe submit "Podium Timer 3" \
	  | ./_build/default/bin/paredown.exe serve \
	  | ./_build/default/bin/paredown.exe submit --decode - > serve-pipe.txt
	./_build/default/bin/paredown.exe partition "Podium Timer 3" > serve-oneshot.txt
	diff serve-pipe.txt serve-oneshot.txt
	rm -f serve-cache.json serve-batch.txt serve-run1.txt serve-run2.txt \
	  serve-dec1.txt serve-dec2.txt serve-j1.txt serve-j4.txt \
	  serve-pipe.txt serve-oneshot.txt

# Kernel-equivalence smoke: the same sim-heavy sweeps (fault grading,
# Monte-Carlo reliability) under the compiled kernel and the
# interpreted oracle, diffed byte-for-byte.  PAREDOWN_SIM_KERNEL
# selects the kernel process-wide; PAREDOWN_STABLE_TIMES masks wall
# clocks, the one legitimately differing output.  Complements the
# QCheck equivalence properties in test/test_kernel.ml with full
# CLI-path coverage.
sim-smoke:
	PAREDOWN_STABLE_TIMES=1 PAREDOWN_SIM_KERNEL=compiled \
	  dune exec bin/run_experiments.exe -- faults --trials 3 > sim-kc.txt
	PAREDOWN_STABLE_TIMES=1 PAREDOWN_SIM_KERNEL=interpreted \
	  dune exec bin/run_experiments.exe -- faults --trials 3 > sim-ki.txt
	diff sim-kc.txt sim-ki.txt
	PAREDOWN_STABLE_TIMES=1 PAREDOWN_SIM_KERNEL=compiled \
	  dune exec bin/run_experiments.exe -- reliability --trials 8 > sim-rc.txt
	PAREDOWN_STABLE_TIMES=1 PAREDOWN_SIM_KERNEL=interpreted \
	  dune exec bin/run_experiments.exe -- reliability --trials 8 > sim-ri.txt
	diff sim-rc.txt sim-ri.txt
	rm -f sim-kc.txt sim-ki.txt sim-rc.txt sim-ri.txt

# Network-observatory smoke: `paredown observe` on two Table 1 designs
# under a seeded drop plan (utilization table + paredown-netobs JSON +
# Chrome timeline, uploaded as CI artifacts), then the flat-vs-
# partitioned link-utilization comparison with the disabled-telemetry
# overhead bound asserted (exits nonzero above 1%%; see
# doc/network-telemetry.md).
netobs-smoke:
	dune exec bin/paredown.exe -- observe "Entry Gate Detector" \
	  --faults drop:0.05 --netobs netobs-entry-gate.json \
	  --timeline netobs-entry-gate-timeline.json
	dune exec bin/paredown.exe -- observe "Two-Zone Security" \
	  --faults brownout:0.3@40,110,180 --netobs netobs-two-zone.json
	dune exec bin/run_experiments.exe -- netobs --trials 3 --overhead

# Provenance-journal smoke: journal a library-design partition, then
# run every explain query over the file (doc/provenance.md).  explain
# summary must end with the same fit-check total the run's
# core.paredown.fit_checks counter reports.
journal-smoke:
	dune exec bin/paredown.exe -- partition "Podium Timer 3" \
	  --journal table1-journal.jsonl --metrics
	dune exec bin/paredown.exe -- explain summary table1-journal.jsonl
	dune exec bin/paredown.exe -- explain why 5 table1-journal.jsonl
	dune exec bin/paredown.exe -- explain diff table1-journal.jsonl table1-journal.jsonl
	rm -f table1-journal.jsonl

clean:
	dune clean
