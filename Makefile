# Convenience targets mirroring .github/workflows/ci.yml for
# environments without Actions.

.PHONY: all build test check bench tables faults clean

all: build

build:
	dune build @all

test:
	dune runtest

# The CI gate: build, tests, and the §4.2 closed-form assertion
# (run_experiments scale exits nonzero if fit checks != n(n+1)/2).
check: build test
	dune exec bin/run_experiments.exe -- scale

tables:
	BENCH_TABLES_ONLY=1 dune exec bench/main.exe

# Small fixed-seed fault-injection sweep: flat vs partitioned Table 1
# designs under packet drops.  Deterministic — same output every run.
faults:
	dune exec bin/run_experiments.exe -- faults --trials 3

bench:
	dune exec bench/main.exe

clean:
	dune clean
