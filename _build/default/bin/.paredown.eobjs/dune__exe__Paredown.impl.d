bin/paredown.ml: Arg Behavior Cmd Cmdliner Codegen Core Designs Eblock Filename Format List Netlist Option Printf Prng Randgen Sim Sys Term
