bin/paredown.mli:
