bin/run_experiments.ml: Arg Cmd Cmdliner Experiments Fun List Option Printf Term
