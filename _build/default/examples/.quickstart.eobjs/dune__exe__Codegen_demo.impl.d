examples/codegen_demo.ml: Array Behavior Codegen Core Designs Eblock Format List Netlist Printf
