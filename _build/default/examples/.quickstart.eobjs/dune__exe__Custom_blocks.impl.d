examples/custom_blocks.ml: Behavior Codegen Core Eblock Format List Netlist Option Sim
