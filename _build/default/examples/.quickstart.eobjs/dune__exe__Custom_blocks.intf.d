examples/custom_blocks.mli:
