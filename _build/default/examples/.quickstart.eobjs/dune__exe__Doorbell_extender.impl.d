examples/doorbell_extender.ml: Codegen Core Designs Format Netlist
