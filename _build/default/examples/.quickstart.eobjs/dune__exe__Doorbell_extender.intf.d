examples/doorbell_extender.mli:
