examples/multi_shape.ml: Core Designs List Netlist Printf Prng Randgen
