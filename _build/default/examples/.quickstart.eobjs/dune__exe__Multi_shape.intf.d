examples/multi_shape.mli:
