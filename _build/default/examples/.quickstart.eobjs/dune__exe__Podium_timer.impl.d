examples/podium_timer.ml: Core Designs Format List Netlist
