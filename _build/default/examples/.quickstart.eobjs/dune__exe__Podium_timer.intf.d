examples/podium_timer.mli:
