examples/quickstart.ml: Behavior Codegen Core Eblock Format List Netlist Printf Sim
