examples/quickstart.mli:
