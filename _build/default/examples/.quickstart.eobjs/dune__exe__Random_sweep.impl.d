examples/random_sweep.ml: Core List Printf Prng Randgen
