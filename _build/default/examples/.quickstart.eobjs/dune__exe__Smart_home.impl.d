examples/smart_home.ml: Behavior Codegen Core Eblock Filename Format List Netlist Printf Prng Sim
