(* Code generation tour (§3.3).

   Shows every stage the paper describes: level assignment, level-ordered
   tree merging, variable renaming, and the final C translation — plus the
   program-memory check backing the paper's "size is never the binding
   constraint" assumption, evaluated over every partition of every library
   design.

   Run with: dune exec examples/codegen_demo.exe *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let () = print_endline "=== Level assignment and merge order ==="

let network = Designs.Library.podium_timer_3.Designs.Design.network

let () =
  let levels = Graph.levels network in
  List.iter
    (fun id ->
      Format.printf "  block %d (%s): level %d@." id
        (Graph.descriptor network id).Eblock.Descriptor.name
        (Node_id.Map.find id levels))
    (Graph.inner_nodes network);
  let members = Node_id.set_of_list [ 6; 8; 9 ] in
  Format.printf "merge order for partition {6, 8, 9}: %a@."
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Node_id.pp)
    (Codegen.Plan.level_order network members)

let () = print_endline "\n=== Merged syntax tree ==="

let plan =
  Codegen.Plan.build network (Node_id.set_of_list [ 6; 8; 9 ])

let () =
  Format.printf "%a@." Behavior.Ast.pp_program plan.Codegen.Plan.program;
  Printf.printf "input pins: %d, output pins: %d\n"
    (Array.length plan.Codegen.Plan.input_pins)
    (Array.length plan.Codegen.Plan.output_pins)

let () = print_endline "\n=== C translation ==="

let () =
  print_string
    (Codegen.C_emit.program ~block_name:"podium timer partition"
       ~n_inputs:(Array.length plan.Codegen.Plan.input_pins)
       ~n_outputs:(Array.length plan.Codegen.Plan.output_pins)
       plan.Codegen.Plan.program)

let () = print_endline "\n=== Program-memory check across the library ==="

let () =
  let worst = ref 0 in
  List.iter
    (fun design ->
      let g = design.Designs.Design.network in
      let sol = (Core.Paredown.run g).Core.Paredown.solution in
      List.iter
        (fun p ->
          let plan = Codegen.Plan.build g p.Core.Partition.members in
          let words = Codegen.Size.estimate_words plan.Codegen.Plan.program in
          worst := max !worst words;
          assert (Codegen.Size.fits_pic16f628 plan.Codegen.Plan.program))
        sol.Core.Solution.partitions)
    Designs.Library.all;
  Printf.printf
    "largest merged program across all library partitions: ~%d words of \
     the PIC16F628's %d — the paper's assumption holds.\n"
    !worst Codegen.Size.pic16f628_words
