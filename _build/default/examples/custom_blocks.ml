(* User-defined blocks through the behaviour-language front end.

   The paper's simulator keeps each block's behaviour "defined in a
   Java-like language that is automatically transformed to a syntax
   tree"; this example defines new compute blocks from that language —
   both through the OCaml API (Catalog.define) and through a textual
   netlist with defblock sections — then runs the full synthesis pipeline
   over them, exactly as for catalogue blocks.

   Run with: dune exec examples/custom_blocks.exe *)

module Graph = Netlist.Graph

let () = print_endline "=== Defining blocks from source (Catalog.define) ==="

(* a 2-of-3 voter: not in the catalogue, one line of behaviour source *)
let majority3 =
  Eblock.Catalog.define ~name:"majority3" ~n_inputs:3 ~n_outputs:1
    "out[0] = (in[0] && in[1]) || (in[0] && in[2]) || (in[1] && in[2]);"

(* a debounced event counter that pulses every fourth press *)
let every_fourth =
  Eblock.Catalog.define ~name:"every_fourth" ~n_inputs:1 ~n_outputs:1
    "state prev = false;\n\
     state count = 0;\n\
     if (in[0] && !prev) {\n\
    \  count = count + 1;\n\
     }\n\
     if (count >= 4) {\n\
    \  count = 0;\n\
    \  out[0] = true;\n\
     } else {\n\
    \  out[0] = false;\n\
     }\n\
     prev = in[0];"

let () =
  Format.printf "%s: %a@." majority3.Eblock.Descriptor.name
    Behavior.Ast.pp_program majority3.Eblock.Descriptor.behavior;
  Format.printf "%s uses %d state variable(s)@."
    every_fourth.Eblock.Descriptor.name
    (List.length every_fourth.Eblock.Descriptor.behavior.Behavior.Ast.state)

let () = print_endline "\n=== A network of custom blocks ==="

(* three door sensors vote; every fourth confirmed event rings a chime *)
let network =
  let g = Graph.empty in
  let g, d1 = Graph.add ~label:"door A" g Eblock.Catalog.contact_switch in
  let g, d2 = Graph.add ~label:"door B" g Eblock.Catalog.contact_switch in
  let g, d3 = Graph.add ~label:"door C" g Eblock.Catalog.contact_switch in
  let g, vote = Graph.add g majority3 in
  let g, counter = Graph.add g every_fourth in
  let g, stretch = Graph.add g (Eblock.Catalog.prolong ~ticks:5) in
  let g, chime = Graph.add ~label:"chime" g Eblock.Catalog.buzzer in
  let g = Graph.connect g ~src:(d1, 0) ~dst:(vote, 0) in
  let g = Graph.connect g ~src:(d2, 0) ~dst:(vote, 1) in
  let g = Graph.connect g ~src:(d3, 0) ~dst:(vote, 2) in
  let g = Graph.connect g ~src:(vote, 0) ~dst:(counter, 0) in
  let g = Graph.connect g ~src:(counter, 0) ~dst:(stretch, 0) in
  let g = Graph.connect g ~src:(stretch, 0) ~dst:(chime, 0) in
  g

let () =
  (match Graph.validate network with
   | Ok () -> ()
   | Error problems -> List.iter print_endline problems; exit 1);
  print_string (Netlist.Textio.to_string ~name:"voting chime" network)

let () = print_endline "\n=== The same network from a netlist file ==="

let netlist_source =
  "network voting chime (textual)\n\
   defblock vote2of3 compute 3 1 {\n\
  \  out[0] = (in[0] && in[1]) || (in[0] && in[2]) || (in[1] && in[2]);\n\
   }\n\
   node 1 contact_switch\n\
   node 2 contact_switch\n\
   node 3 contact_switch\n\
   node 4 vote2of3\n\
   node 5 prolong(5)\n\
   node 6 buzzer\n\
   edge 1.0 4.0\n\
   edge 2.0 4.1\n\
   edge 3.0 4.2\n\
   edge 4.0 5.0\n\
   edge 5.0 6.0\n"

let () =
  let name, parsed = Netlist.Textio.of_string netlist_source in
  Format.printf "parsed %s: %a@."
    (Option.value name ~default:"?")
    Graph.pp parsed;
  let engine = Sim.Engine.create parsed in
  Sim.Engine.set_sensor_at engine ~time:1 1 true;
  Sim.Engine.set_sensor_at engine ~time:2 2 true;
  Sim.Engine.settle engine;
  Format.printf "two doors open -> buzzer %a@." Behavior.Ast.pp_value
    (Sim.Engine.output_value engine 6)

let () = print_endline "\n=== Custom blocks synthesise like any other ==="

let () =
  let result, pd = Codegen.Replace.synthesize network in
  let g' = result.Codegen.Replace.network in
  Format.printf "inner blocks %d -> %d@."
    (Graph.inner_count network)
    (Core.Solution.total_inner_after network pd.Core.Paredown.solution);
  (match
     Sim.Equiv.check_random ~reference:network ~candidate:g' ~seed:5
       ~steps:80
   with
   | Ok () -> print_endline "synthesised network verified equivalent"
   | Error m ->
     Format.printf "MISMATCH: %a@." Sim.Equiv.pp_mismatch m;
     exit 1);
  (* and the synthesised network (custom blocks merged into programmable
     blocks) still round-trips through the textual format *)
  let text = Netlist.Textio.to_string ~name:"synthesised" g' in
  let _, reloaded = Netlist.Textio.of_string text in
  assert (Graph.node_count reloaded = Graph.node_count g');
  print_endline "synthesised netlist round-trips through the text format"
