(* Communication blocks as partition barriers.

   The two doorbell-extender designs show why the partitioner must treat
   communication blocks specially: they are inner nodes (they count
   towards network size) but cannot be absorbed into a programmable block,
   and any compute blocks separated by a radio hop cannot share a
   programmable block either — the candidate partition is not convex, so
   replacing it would wire the radio link into a loop.

   Run with: dune exec examples/doorbell_extender.exe *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let show design =
  let g = design.Designs.Design.network in
  Format.printf "=== %s ===@." design.Designs.Design.name;
  let r = Core.Paredown.run g in
  let sol = r.Core.Paredown.solution in
  Format.printf "inner blocks %d -> %d (%d programmable)@."
    (Graph.inner_count g)
    (Core.Solution.total_inner_after g sol)
    (Core.Solution.programmable_count sol)

let () =
  show Designs.Library.doorbell_extender_1;
  show Designs.Library.doorbell_extender_2

(* Demonstrate the convexity argument concretely on extender 2: the pulse
   generator (2) and the far-end prolong (7) both fit a 2x2 block on pin
   counts alone, but the path between them runs through the radio hops. *)
let () =
  let g = Designs.Library.doorbell_extender_2.Designs.Design.network in
  let pair = Node_id.set_of_list [ 2; 7 ] in
  Format.printf "@.candidate %a:@." Node_id.pp_set pair;
  Format.printf "  inputs used: %d, outputs used: %d (both fit a 2x2 block)@."
    (Core.Partition.inputs_used g pair)
    (Core.Partition.outputs_used g pair);
  let p = Core.Partition.make ~members:pair ~shape:Core.Shape.default in
  (match Core.Partition.check g p with
   | Error reason ->
     Format.printf "  but: %a@." Core.Partition.pp_invalidity reason
   | Ok () -> assert false);
  (* And what would go wrong without the check: the rewritten network
     would contain a loop programmable -> radio -> programmable. *)
  let relaxed =
    { Core.Partition.default_config with require_convex = false }
  in
  assert (Core.Partition.is_valid ~config:relaxed g p);
  let sol = { Core.Solution.partitions = [ p ] } in
  let rewritten = Codegen.Replace.apply g sol in
  let g' = rewritten.Codegen.Replace.network in
  Format.printf "  forcing the replacement anyway: %a -> %s@." Graph.pp g'
    (if Graph.is_acyclic g' then "still acyclic (unexpected!)"
     else "the network now contains a loop, which eBlocks forbid")
