(* The paper's future-work extension (§6): "multiple types of
   programmable blocks (having different number of inputs and outputs)
   and varying compute block costs".

   PareDown and the exhaustive search both accept a shape *set*: a
   candidate fits if any shape hosts it, and each accepted partition is
   assigned the cheapest shape that fits.  This example compares block
   libraries on the design library and on random networks, reporting both
   block counts and total cost.

   Run with: dune exec examples/multi_shape.exe *)

module Graph = Netlist.Graph

let shape_sets =
  [
    ("2x2 only (paper)", [ Core.Shape.default ]);
    ( "2x2 + 3x3",
      [ Core.Shape.default; Core.Shape.make ~inputs:3 ~outputs:3 ~cost:1.7 () ] );
    ( "4x4 only",
      [ Core.Shape.make ~inputs:4 ~outputs:4 ~cost:1.9 () ] );
    ( "2x2 + 4x4",
      [ Core.Shape.default; Core.Shape.make ~inputs:4 ~outputs:4 ~cost:1.9 () ] );
  ]

let evaluate shapes g =
  let config = { Core.Paredown.default_config with shapes } in
  let sol = (Core.Paredown.run ~config g).Core.Paredown.solution in
  ( Core.Solution.total_inner_after g sol,
    Core.Solution.programmable_count sol,
    Core.Solution.total_cost_after g sol )

let () =
  print_endline "Design library, per shape set (sum over all 19 designs):";
  Printf.printf "  %-18s %12s %12s %12s\n" "shapes" "total inner"
    "programmable" "inner cost";
  List.iter
    (fun (label, shapes) ->
      let totals, progs, costs =
        List.fold_left
          (fun (t, p, c) design ->
            let g = design.Designs.Design.network in
            let t', p', c' = evaluate shapes g in
            (t + t', p + p', c +. c'))
          (0, 0, 0.) Designs.Library.all
      in
      Printf.printf "  %-18s %12d %12d %12.1f\n" label totals progs costs)
    shape_sets

let () =
  print_endline "\nRandom 20-block designs (mean of 60):";
  Printf.printf "  %-18s %12s %12s %12s\n" "shapes" "total inner"
    "programmable" "inner cost";
  List.iter
    (fun (label, shapes) ->
      let rng = Prng.create 3 in
      let n = 60 in
      let totals = ref 0 and progs = ref 0 and costs = ref 0. in
      for _ = 1 to n do
        let g = Randgen.Generator.generate ~rng:(Prng.split rng) ~inner:20 () in
        let t, p, c = evaluate shapes g in
        totals := !totals + t;
        progs := !progs + p;
        costs := !costs +. c
      done;
      let f x = float_of_int !x /. float_of_int n in
      Printf.printf "  %-18s %12.2f %12.2f %12.2f\n" label (f totals)
        (f progs) (!costs /. float_of_int n))
    shape_sets;
  print_newline ();
  print_endline
    "Wider blocks absorb more neighbours (fewer inner blocks) but cost \
     more each; mixed libraries let the partitioner pick the cheapest \
     fitting shape per partition."
