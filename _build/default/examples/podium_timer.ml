(* Figure 5 walkthrough: PareDown on Podium Timer 3, step by step.

   Prints the decision trace of the decomposition method on the paper's
   worked example and checks it against the published figure: border
   ranks (2:+1, 8:+1, 9:0), removal order 9, 8, 7, 6, partitions
   {2,3,4,5} and {6,8,9}, and block 7 left pre-defined.

   Run with: dune exec examples/podium_timer.exe *)

module Graph = Netlist.Graph

let design = Designs.Library.podium_timer_3
let network = design.Designs.Design.network

let () =
  Format.printf "%s — %s@.@." design.Designs.Design.name
    design.Designs.Design.description;
  print_string (Netlist.Textio.to_string ~name:design.Designs.Design.name
                  network);
  print_newline ()

let result = Core.Paredown.run ~record_trace:true network

let () =
  print_endline "PareDown trace (compare with Figure 5 of the paper):";
  List.iter
    (fun e -> Format.printf "  %a@." Core.Paredown.pp_event e)
    result.Core.Paredown.trace

let () =
  let sol = result.Core.Paredown.solution in
  let total = Core.Solution.total_inner_after network sol in
  let prog = Core.Solution.programmable_count sol in
  Format.printf "@.PareDown: %d inner blocks -> %d (%d programmable)@."
    (Graph.inner_count network) total prog;
  assert (total = 3 && prog = 2)

let () =
  print_endline "\nExhaustive search on the same design:";
  let exh = Core.Exhaustive.run network in
  let sol = exh.Core.Exhaustive.solution in
  List.iter
    (fun p -> Format.printf "  %a@." Core.Partition.pp p)
    sol.Core.Solution.partitions;
  Format.printf "optimal: total %d, programmable %d (PareDown overhead: 0 \
                 blocks — it covers one block fewer with one fewer \
                 programmable block)@."
    (Core.Solution.total_inner_after network sol)
    (Core.Solution.programmable_count sol)

(* The trace assertions that pin this walkthrough to the paper's figure. *)
let () =
  let events = result.Core.Paredown.trace in
  let removals =
    List.filter_map
      (function Core.Paredown.Removed (id, _) -> Some id | _ -> None)
      events
  in
  assert (removals = [ 9; 8; 7; 6; 7 ]);
  let accepted =
    List.filter_map
      (function
        | Core.Paredown.Accepted (set, _) ->
          Some (Netlist.Node_id.Set.elements set)
        | _ -> None)
      events
  in
  assert (accepted = [ [ 2; 3; 4; 5 ]; [ 6; 8; 9 ] ]);
  print_endline "\ntrace matches Figure 5 exactly"
