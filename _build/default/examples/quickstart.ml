(* Quickstart: the paper's running example, end to end.

   Build the garage-open-at-night system of Figure 1 (plus a lingering
   buzzer so there is something to optimise), simulate it, synthesise a
   programmable-block version with PareDown, verify the two behave the
   same, and print the generated C.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Netlist.Graph
module C = Eblock.Catalog

let () = print_endline "=== 1. Capture ==="

(* A homeowner wires blocks: garage-door contact + light sensor feed a
   2-input logic block computing "door open AND dark"; the event is
   prolonged and also latched onto a bedroom LED until the door closes. *)
let network =
  let g = Graph.empty in
  let g, door = Graph.add ~label:"garage door" g C.contact_switch in
  let g, light = Graph.add ~label:"daylight" g C.light_sensor in
  let g, logic = Graph.add g (C.truth_table2 ~table:0b0100) in
  let g, stretch = Graph.add g (C.prolong ~ticks:10) in
  let g, latch = Graph.add g C.trip_latch in
  let g, buzzer = Graph.add ~label:"bedroom buzzer" g C.buzzer in
  let g, led = Graph.add ~label:"bedroom led" g C.led in
  let g = Graph.connect g ~src:(door, 0) ~dst:(logic, 0) in
  let g = Graph.connect g ~src:(light, 0) ~dst:(logic, 1) in
  let g = Graph.connect g ~src:(logic, 0) ~dst:(stretch, 0) in
  let g = Graph.connect g ~src:(logic, 0) ~dst:(latch, 0) in
  let g = Graph.connect g ~src:(stretch, 0) ~dst:(buzzer, 0) in
  let g = Graph.connect g ~src:(latch, 0) ~dst:(led, 0) in
  g

let () =
  (match Graph.validate network with
   | Ok () -> ()
   | Error problems -> List.iter print_endline problems; exit 1);
  Format.printf "%a@." Graph.pp network;
  print_string (Netlist.Textio.to_string ~name:"garage quickstart" network)

let () = print_endline "\n=== 2. Simulate ==="

let () =
  let engine = Sim.Engine.create network in
  (* Nightfall, then the door opens. *)
  Sim.Engine.set_sensor_at engine ~time:1 2 false;   (* dark *)
  Sim.Engine.set_sensor_at engine ~time:10 1 true;   (* door opens *)
  Sim.Engine.set_sensor_at engine ~time:40 1 false;  (* door closes *)
  Sim.Engine.settle engine;
  List.iter
    (fun (time, node, v) ->
      Format.printf "t=%2d  node %d -> %a@." time node Behavior.Ast.pp_value v)
    (Sim.Engine.trace engine)

let () = print_endline "\n=== 3. Synthesise ==="

let synthesised, paredown_result = Codegen.Replace.synthesize network

let () =
  let sol = paredown_result.Core.Paredown.solution in
  Format.printf "PareDown found %d partition(s):@."
    (Core.Solution.programmable_count sol);
  Format.printf "@[<v>%a@]@." Core.Solution.pp sol;
  Format.printf "inner blocks %d -> %d@."
    (Graph.inner_count network)
    (Core.Solution.total_inner_after network sol);
  Format.printf "synthesised network: %a@." Graph.pp
    synthesised.Codegen.Replace.network

let () = print_endline "\n=== 4. Verify ==="

let () =
  match
    Sim.Equiv.check_random ~reference:network
      ~candidate:synthesised.Codegen.Replace.network ~seed:7 ~steps:100
  with
  | Ok () -> print_endline "equivalent on 100 random sensor changes"
  | Error m -> Format.printf "MISMATCH: %a@." Sim.Equiv.pp_mismatch m; exit 1

let () = print_endline "\n=== 5. Generated C ==="

let () =
  List.iter
    (fun prog_id ->
      let d = Graph.descriptor synthesised.Codegen.Replace.network prog_id in
      print_string
        (Codegen.C_emit.program ~block_name:"garage quickstart"
           ~n_inputs:d.Eblock.Descriptor.n_inputs
           ~n_outputs:d.Eblock.Descriptor.n_outputs
           d.Eblock.Descriptor.behavior);
      Printf.printf "\n/* approx. %d of %d PIC16F628 words */\n"
        (Codegen.Size.estimate_words d.Eblock.Descriptor.behavior)
        Codegen.Size.pic16f628_words)
    synthesised.Codegen.Replace.programmable_ids
