(* Random-design sweep: a miniature Table 2.

   Generates a population of random eBlock networks per size, runs
   aggregation, PareDown, and (for small sizes) exhaustive search, and
   prints the comparison the paper's evaluation is built on.

   Run with: dune exec examples/random_sweep.exe *)

let sizes = [ (4, 60); (6, 50); (8, 40); (10, 15); (15, 40); (25, 20) ]
let exhaustive_cutoff = 10

type sums = {
  mutable designs : int;
  mutable agg_total : int;
  mutable pd_total : int;
  mutable exh_total : int;
  mutable exh_designs : int;
}

let () =
  let rng = Prng.create 11 in
  Printf.printf
    "%5s %8s %12s %12s %12s\n" "inner" "designs" "agg total" "pd total"
    "exh total";
  List.iter
    (fun (inner, count) ->
      let s = { designs = 0; agg_total = 0; pd_total = 0; exh_total = 0;
                exh_designs = 0 }
      in
      for _ = 1 to count do
        let g =
          Randgen.Generator.generate ~rng:(Prng.split rng) ~inner ()
        in
        let agg = Core.Aggregation.run g in
        let pd = (Core.Paredown.run g).Core.Paredown.solution in
        s.designs <- s.designs + 1;
        s.agg_total <- s.agg_total + Core.Solution.total_inner_after g agg;
        s.pd_total <- s.pd_total + Core.Solution.total_inner_after g pd;
        if inner <= exhaustive_cutoff then begin
          let exh = Core.Exhaustive.run ~deadline_s:10.0 g in
          match exh.Core.Exhaustive.outcome with
          | Core.Exhaustive.Optimal ->
            s.exh_designs <- s.exh_designs + 1;
            s.exh_total <-
              s.exh_total
              + Core.Solution.total_inner_after g
                  exh.Core.Exhaustive.solution
          | Core.Exhaustive.Timed_out -> ()
        end
      done;
      let mean total n = float_of_int total /. float_of_int (max 1 n) in
      Printf.printf "%5d %8d %12.2f %12.2f %12s\n" inner s.designs
        (mean s.agg_total s.designs)
        (mean s.pd_total s.designs)
        (if s.exh_designs = 0 then "--"
         else Printf.sprintf "%.2f" (mean s.exh_total s.exh_designs)))
    sizes;
  print_newline ();
  print_endline
    "PareDown tracks the exhaustive optimum closely while the greedy \
     aggregation baseline loses blocks; beyond the cutoff the optimum is \
     unobtainable (the paper's four-hour non-result at 14 blocks)."
