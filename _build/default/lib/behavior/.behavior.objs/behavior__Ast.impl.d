lib/behavior/ast.ml: Bool Format Int List Set String
