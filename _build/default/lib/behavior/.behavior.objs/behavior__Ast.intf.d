lib/behavior/ast.mli: Format
