lib/behavior/eval.ml: Array Ast Bool Format Hashtbl Int List String
