lib/behavior/eval.mli: Ast
