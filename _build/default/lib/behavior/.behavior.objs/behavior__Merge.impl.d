lib/behavior/merge.ml: Array Ast Format List Rename Set String
