lib/behavior/merge.mli: Ast
