lib/behavior/parse.ml: Array Ast Format List Printf String
