lib/behavior/parse.mli: Ast
