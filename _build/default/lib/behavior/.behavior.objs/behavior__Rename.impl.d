lib/behavior/rename.ml: Ast List Set String
