lib/behavior/rename.mli: Ast
