(** Abstract syntax of the block-behaviour language.

    The paper describes block behaviours written in a small Java-like
    imperative language that the simulator turns into syntax trees; the code
    generator later merges the trees of all blocks in a partition.  This
    module defines those trees.

    A {!program} is executed once per {e activation} of a block (arrival of
    an input packet, or expiry of the block's timer).  Variables persist
    across activations; the [state] field lists the variables that must
    exist before the first activation, with their initial values.  Outputs
    are latched: an output port keeps its previous value unless the body
    assigns it during the activation. *)

type value =
  | Bool of bool
  | Int of int

type unop =
  | Not  (** boolean negation *)
  | Neg  (** integer negation *)

type binop =
  | And | Or | Xor
  | Add | Sub | Mul
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Const of value
  | Var of string
  | Input of int
      (** value currently present on the given input port (0-based) *)
  | Timer_fired of int
      (** [Bool true] iff this activation was caused by expiry of the
          block's one-shot timer with the given index.  Pre-defined blocks
          use timer 0; merged programmable-block programs use one timer
          index per timed member block. *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | If_expr of expr * expr * expr

type stmt =
  | Assign of string * expr
  | Output of int * expr  (** drive an output port (0-based) *)
  | If of expr * stmt list * stmt list
  | Set_timer of int * expr
      (** arm the one-shot timer with the given index, [Int] ticks *)
  | Cancel_timer of int
  | Nop

type program = {
  state : (string * value) list;
      (** persistent variables and their initial values *)
  body : stmt list;
}

val empty : program
(** A program with no state and an empty body. *)

val bool_ : bool -> expr
val int_ : int -> expr
val ( &&& ) : expr -> expr -> expr
val ( ||| ) : expr -> expr -> expr
val not_ : expr -> expr
val input : int -> expr
val var : string -> expr

val equal_value : value -> value -> bool
val compare_value : value -> value -> int

val pp_value : Format.formatter -> value -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit

val value_to_string : value -> string
val expr_to_string : expr -> string
val program_to_string : program -> string

val max_input_index : program -> int
(** Largest input-port index read anywhere in the program, or [-1] if the
    program reads no input. *)

val max_output_index : program -> int
(** Largest output-port index written anywhere in the program, or [-1]. *)

val max_timer_index : program -> int
(** Largest timer index armed, cancelled, or tested anywhere in the
    program, or [-1] if the program uses no timer. *)

val uses_timer : program -> bool
(** True if the program arms, cancels, or tests any timer. *)

val map_ports :
  ?expr_of_input:(int -> expr) ->
  ?rewrite_output:(int -> expr -> stmt list) ->
  ?timer_index:(int -> int) ->
  program ->
  program
(** Structural rewriting used when merging block trees: replaces [Input i]
    reads, [Output (i, e)] writes, and timer indices.  Defaults leave the
    corresponding construct unchanged. *)

val free_variables : program -> string list
(** Variables read before being assigned in some execution path, excluding
    declared state variables.  A well-formed block program has none; the
    list is sorted and duplicate-free. *)

val assigned_variables : program -> string list
(** All variables assigned anywhere in the body, plus declared state
    variables.  Sorted and duplicate-free. *)
