type binding =
  | Ext of int
  | Wire of string

type member = {
  label : string;
  program : Ast.program;
  inputs : binding array;
  output_wires : string array;
  output_exts : int list array;
  output_init : Ast.value array;
}

exception Merge_error of string

let error fmt = Format.kasprintf (fun msg -> raise (Merge_error msg)) fmt

module String_set = Set.Make (String)

(* Each member gets a contiguous range of timer indices, wide enough for
   the timers its program uses, assigned in member order. *)
let timer_bases members =
  let _, bases =
    List.fold_left
      (fun (next, acc) m ->
        let width = Ast.max_timer_index m.program + 1 in
        (next + width, (m.label, next) :: acc))
      (0, []) members
  in
  List.rev bases

let timer_base members label =
  List.assoc label (timer_bases members)

let check_members members =
  let labels = List.map (fun m -> m.label) members in
  let distinct = String_set.of_list labels in
  if String_set.cardinal distinct <> List.length labels then
    error "duplicate member labels";
  let all_wires =
    List.concat_map (fun m -> Array.to_list m.output_wires) members
  in
  let wire_set = String_set.of_list all_wires in
  if String_set.cardinal wire_set <> List.length all_wires then
    error "two member outputs drive the same wire";
  List.iter
    (fun m ->
      let n_out = Array.length m.output_wires in
      if Array.length m.output_exts <> n_out
      || Array.length m.output_init <> n_out then
        error "member %s: inconsistent output array lengths" m.label;
      if Ast.max_input_index m.program >= Array.length m.inputs then
        error "member %s: program reads input port %d but only %d bound"
          m.label (Ast.max_input_index m.program) (Array.length m.inputs);
      if Ast.max_output_index m.program >= n_out then
        error "member %s: program writes output port %d but only %d bound"
          m.label (Ast.max_output_index m.program) n_out;
      Array.iter
        (function
          | Ext _ -> ()
          | Wire w ->
            if not (String_set.mem w wire_set) then
              error "member %s reads undriven wire %s" m.label w)
        m.inputs)
    members;
  wire_set

let merge members =
  let _wires = check_members members in
  let bases = timer_bases members in
  let merge_member m =
    let renamed = Rename.with_prefix m.label m.program in
    let base = List.assoc m.label bases in
    let expr_of_input i : Ast.expr =
      match m.inputs.(i) with
      | Ext j -> Input j
      | Wire w -> Var w
    in
    let rewrite_output i (e : Ast.expr) : Ast.stmt list =
      let wire = m.output_wires.(i) in
      Ast.Assign (wire, e)
      :: List.map (fun j -> Ast.Output (j, Ast.Var wire)) m.output_exts.(i)
    in
    Ast.map_ports ~expr_of_input ~rewrite_output
      ~timer_index:(fun t -> base + t)
      renamed
  in
  let merged = List.map merge_member members in
  let wire_state =
    List.concat_map
      (fun m ->
        Array.to_list
          (Array.mapi (fun i w -> (w, m.output_init.(i))) m.output_wires))
      members
  in
  let state =
    wire_state @ List.concat_map (fun p -> p.Ast.state) merged
  in
  let body = List.concat_map (fun p -> p.Ast.body) merged in
  { Ast.state; body }
