(** Merging the syntax trees of a partition's blocks into the single tree
    of the replacement programmable block.

    Per the paper (§3.3): members are ordered by non-decreasing level so
    that no block's tree is evaluated before its in-partition producers;
    communication between two blocks of a partition becomes a variable;
    name clashes are resolved by renaming.  We additionally remap each
    member's timers to a disjoint index range so that several timed blocks
    can share one programmable block. *)

type binding =
  | Ext of int       (** external input port of the programmable block *)
  | Wire of string   (** variable carrying an in-partition signal *)

type member = {
  label : string;
      (** unique per member; used as the renaming prefix (e.g. ["b7_"]) *)
  program : Ast.program;
  inputs : binding array;
      (** source of each of the member's input ports *)
  output_wires : string array;
      (** wire variable receiving each of the member's output ports *)
  output_exts : int list array;
      (** external output ports of the programmable block additionally
          driven by each member output port *)
  output_init : Ast.value array;
      (** initial (power-on) value of each member output port; becomes the
          wire's initial value *)
}

exception Merge_error of string

val merge : member list -> Ast.program
(** Members must already be in non-decreasing level order.  The result's
    state variables are the renamed member state variables plus one
    variable per wire.  Raises {!Merge_error} on duplicate labels,
    duplicate wire names, arity mismatches between [inputs]/[output_wires]
    and the member program's port usage, or a member reading a wire no
    member drives. *)

val timer_base : member list -> string -> int
(** Timer-index offset assigned to the member with the given label; the
    merged program maps member timer [t] to [timer_base + t].  Raises
    [Not_found] for an unknown label. *)
