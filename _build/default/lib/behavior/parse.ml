exception Syntax_error of { line : int; column : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | Ident of string
  | Int_lit of int
  | Bool_lit of bool
  | Kw_state | Kw_if | Kw_else | Kw_in | Kw_out
  | Kw_set_timer | Kw_cancel_timer | Kw_timer_fired
  | L_paren | R_paren | L_brace | R_brace | L_bracket | R_bracket
  | Semicolon | Comma | Assign_op
  | Or_op | And_op | Xor_op | Not_op
  | Eq_op | Ne_op | Lt_op | Le_op | Gt_op | Ge_op
  | Plus | Minus | Star
  | Question | Colon
  | End_of_input

let token_description = function
  | Ident name -> Printf.sprintf "identifier %s" name
  | Int_lit n -> Printf.sprintf "integer %d" n
  | Bool_lit b -> string_of_bool b
  | Kw_state -> "'state'" | Kw_if -> "'if'" | Kw_else -> "'else'"
  | Kw_in -> "'in'" | Kw_out -> "'out'"
  | Kw_set_timer -> "'set_timer'" | Kw_cancel_timer -> "'cancel_timer'"
  | Kw_timer_fired -> "'timer_fired'"
  | L_paren -> "'('" | R_paren -> "')'"
  | L_brace -> "'{'" | R_brace -> "'}'"
  | L_bracket -> "'['" | R_bracket -> "']'"
  | Semicolon -> "';'" | Comma -> "','" | Assign_op -> "'='"
  | Or_op -> "'||'" | And_op -> "'&&'" | Xor_op -> "'^'" | Not_op -> "'!'"
  | Eq_op -> "'=='" | Ne_op -> "'!='"
  | Lt_op -> "'<'" | Le_op -> "'<='" | Gt_op -> "'>'" | Ge_op -> "'>='"
  | Plus -> "'+'" | Minus -> "'-'" | Star -> "'*'"
  | Question -> "'?'" | Colon -> "':'"
  | End_of_input -> "end of input"

type positioned = {
  token : token;
  line : int;
  column : int;
}

let keyword_of = function
  | "state" -> Some Kw_state
  | "if" -> Some Kw_if
  | "else" -> Some Kw_else
  | "in" -> Some Kw_in
  | "out" -> Some Kw_out
  | "set_timer" -> Some Kw_set_timer
  | "cancel_timer" -> Some Kw_cancel_timer
  | "timer_fired" -> Some Kw_timer_fired
  | "true" -> Some (Bool_lit true)
  | "false" -> Some (Bool_lit false)
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 and column = ref 1 in
  let error fmt =
    Format.kasprintf
      (fun message ->
        raise (Syntax_error { line = !line; column = !column; message }))
      fmt
  in
  let emit token = tokens := { token; line = !line; column = !column } :: !tokens in
  let i = ref 0 in
  let advance k =
    for _ = 1 to k do
      (if !i < n && source.[!i] = '\n' then begin
         incr line;
         column := 1
       end
       else incr column);
      incr i
    done
  in
  let peek k = if !i + k < n then Some source.[!i + k] else None in
  while !i < n do
    let c = source.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && source.[!i] <> '\n' do advance 1 done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit source.[!i] do advance 1 done;
      let text = String.sub source start (!i - start) in
      emit (Int_lit (int_of_string text))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char source.[!i] do advance 1 done;
      let text = String.sub source start (!i - start) in
      emit (match keyword_of text with Some kw -> kw | None -> Ident text)
    end
    else begin
      let two tok = emit tok; advance 2 in
      let one tok = emit tok; advance 1 in
      match c, peek 1 with
      | '|', Some '|' -> two Or_op
      | '&', Some '&' -> two And_op
      | '=', Some '=' -> two Eq_op
      | '!', Some '=' -> two Ne_op
      | '<', Some '=' -> two Le_op
      | '>', Some '=' -> two Ge_op
      | '(', _ -> one L_paren
      | ')', _ -> one R_paren
      | '{', _ -> one L_brace
      | '}', _ -> one R_brace
      | '[', _ -> one L_bracket
      | ']', _ -> one R_bracket
      | ';', _ -> one Semicolon
      | ',', _ -> one Comma
      | '=', _ -> one Assign_op
      | '^', _ -> one Xor_op
      | '!', _ -> one Not_op
      | '<', _ -> one Lt_op
      | '>', _ -> one Gt_op
      | '+', _ -> one Plus
      | '-', _ -> one Minus
      | '*', _ -> one Star
      | '?', _ -> one Question
      | ':', _ -> one Colon
      | _ -> error "unexpected character %C" c
    end
  done;
  emit End_of_input;
  Array.of_list (List.rev !tokens)

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent)                                          *)

type state = {
  tokens : positioned array;
  mutable pos : int;
}

let current st = st.tokens.(st.pos)

let fail_at (p : positioned) fmt =
  Format.kasprintf
    (fun message ->
      raise (Syntax_error { line = p.line; column = p.column; message }))
    fmt

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let accept st token =
  let p = current st in
  if p.token = token then begin advance st; true end else false

let expect st token =
  let p = current st in
  if p.token = token then advance st
  else
    fail_at p "expected %s but found %s" (token_description token)
      (token_description p.token)

let expect_int st =
  let p = current st in
  match p.token with
  | Int_lit v -> advance st; v
  | other -> fail_at p "expected an integer but found %s" (token_description other)

let expect_ident st =
  let p = current st in
  match p.token with
  | Ident name -> advance st; name
  | other ->
    fail_at p "expected an identifier but found %s" (token_description other)

let bracketed_index st =
  expect st L_bracket;
  let index = expect_int st in
  expect st R_bracket;
  index

(* precedence climbing: ternary > or > and > equality > relational > xor
   > additive > multiplicative > unary > primary *)
let rec parse_expr st : Ast.expr = parse_ternary st

and parse_ternary st =
  let condition = parse_or st in
  if accept st Question then begin
    let then_ = parse_expr st in
    expect st Colon;
    let else_ = parse_expr st in
    Ast.If_expr (condition, then_, else_)
  end
  else condition

and parse_or st =
  let rec loop acc =
    if accept st Or_op then loop (Ast.Binop (Ast.Or, acc, parse_and st))
    else acc
  in
  loop (parse_and st)

and parse_and st =
  let rec loop acc =
    if accept st And_op then loop (Ast.Binop (Ast.And, acc, parse_equality st))
    else acc
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop acc =
    if accept st Eq_op then loop (Ast.Binop (Ast.Eq, acc, parse_relational st))
    else if accept st Ne_op then
      loop (Ast.Binop (Ast.Ne, acc, parse_relational st))
    else acc
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop acc =
    if accept st Le_op then loop (Ast.Binop (Ast.Le, acc, parse_xor st))
    else if accept st Ge_op then loop (Ast.Binop (Ast.Ge, acc, parse_xor st))
    else if accept st Lt_op then loop (Ast.Binop (Ast.Lt, acc, parse_xor st))
    else if accept st Gt_op then loop (Ast.Binop (Ast.Gt, acc, parse_xor st))
    else acc
  in
  loop (parse_xor st)

and parse_xor st =
  let rec loop acc =
    if accept st Xor_op then loop (Ast.Binop (Ast.Xor, acc, parse_additive st))
    else acc
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop acc =
    if accept st Plus then loop (Ast.Binop (Ast.Add, acc, parse_multiplicative st))
    else if accept st Minus then
      loop (Ast.Binop (Ast.Sub, acc, parse_multiplicative st))
    else acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    if accept st Star then loop (Ast.Binop (Ast.Mul, acc, parse_unary st))
    else acc
  in
  loop (parse_unary st)

and parse_unary st =
  if accept st Not_op then Ast.Unop (Ast.Not, parse_unary st)
  else if accept st Minus then Ast.Unop (Ast.Neg, parse_unary st)
  else parse_primary st

and parse_primary st =
  let p = current st in
  match p.token with
  | Int_lit v -> advance st; Ast.Const (Ast.Int v)
  | Bool_lit b -> advance st; Ast.Const (Ast.Bool b)
  | Ident name -> advance st; Ast.Var name
  | Kw_in ->
    advance st;
    Ast.Input (bracketed_index st)
  | Kw_timer_fired ->
    advance st;
    expect st L_paren;
    let t = expect_int st in
    expect st R_paren;
    Ast.Timer_fired t
  | L_paren ->
    advance st;
    let e = parse_expr st in
    expect st R_paren;
    e
  | other -> fail_at p "expected an expression but found %s" (token_description other)

let rec parse_stmt st : Ast.stmt =
  let p = current st in
  match p.token with
  | Semicolon -> advance st; Ast.Nop
  | Kw_out ->
    advance st;
    let index = bracketed_index st in
    expect st Assign_op;
    let e = parse_expr st in
    expect st Semicolon;
    Ast.Output (index, e)
  | Kw_set_timer ->
    advance st;
    expect st L_paren;
    let t = expect_int st in
    expect st Comma;
    let e = parse_expr st in
    expect st R_paren;
    expect st Semicolon;
    Ast.Set_timer (t, e)
  | Kw_cancel_timer ->
    advance st;
    expect st L_paren;
    let t = expect_int st in
    expect st R_paren;
    expect st Semicolon;
    Ast.Cancel_timer t
  | Kw_if ->
    advance st;
    expect st L_paren;
    let condition = parse_expr st in
    expect st R_paren;
    let then_ = parse_block st in
    let else_ = if accept st Kw_else then parse_block st else [] in
    Ast.If (condition, then_, else_)
  | Ident name ->
    advance st;
    expect st Assign_op;
    let e = parse_expr st in
    expect st Semicolon;
    Ast.Assign (name, e)
  | other -> fail_at p "expected a statement but found %s" (token_description other)

and parse_block st =
  expect st L_brace;
  let rec loop acc =
    if accept st R_brace then List.rev acc
    else loop (parse_stmt st :: acc)
  in
  loop []

let parse_value st : Ast.value =
  let p = current st in
  match p.token with
  | Bool_lit b -> advance st; Ast.Bool b
  | Int_lit v -> advance st; Ast.Int v
  | Minus ->
    advance st;
    Ast.Int (-expect_int st)
  | other ->
    fail_at p "expected a literal initial value but found %s"
      (token_description other)

let parse_state_decls st =
  let rec loop acc =
    if accept st Kw_state then begin
      let name = expect_ident st in
      expect st Assign_op;
      let v = parse_value st in
      expect st Semicolon;
      loop ((name, v) :: acc)
    end
    else List.rev acc
  in
  loop []

let parse_program st : Ast.program =
  let state = parse_state_decls st in
  let rec loop acc =
    if (current st).token = End_of_input then List.rev acc
    else loop (parse_stmt st :: acc)
  in
  let body = loop [] in
  { Ast.state; body }

let run source parse =
  let st = { tokens = tokenize source; pos = 0 } in
  let result = parse st in
  (match (current st).token with
   | End_of_input -> ()
   | other ->
     fail_at (current st) "trailing input: %s" (token_description other));
  result

let program source = run source parse_program

let expression source = run source parse_expr
