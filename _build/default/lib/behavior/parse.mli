(** Concrete syntax for the behaviour language.

    The paper's blocks carry behaviours "defined in a Java-like language
    that is automatically transformed to a syntax tree"; this module is
    that front end.  The grammar is exactly what {!Ast.pp_program} prints,
    so programs round-trip:

    {v
    state prev = false;
    state q = false;
    if (in[0] && !prev) {
      q = !q;
    }
    prev = in[0];
    out[0] = q;
    v}

    Statements: [x = e;], [out[i] = e;], [if (e) { ... } else { ... }],
    [set_timer(t, e);], [cancel_timer(t);], [;].  Expressions use C
    precedence: [?:] then [||], [&&], [== !=], [< <= > >=], [^], [+ -],
    [*], unary [! -]; primaries are integer and [true]/[false] literals,
    variables, [in[i]], [timer_fired(t)], and parenthesised expressions.
    [state] declarations must precede the body.  Comments run from [//] to
    the end of the line. *)

exception Syntax_error of { line : int; column : int; message : string }

val program : string -> Ast.program
(** Parse a complete behaviour program.  Raises {!Syntax_error} with
    1-based position information. *)

val expression : string -> Ast.expr
(** Parse a single expression (for tests and interactive use). *)
