let with_prefix prefix (p : Ast.program) =
  let rename name = prefix ^ name in
  let rec rename_expr (e : Ast.expr) : Ast.expr =
    match e with
    | Const _ | Input _ | Timer_fired _ -> e
    | Var name -> Var (rename name)
    | Unop (op, e1) -> Unop (op, rename_expr e1)
    | Binop (op, e1, e2) -> Binop (op, rename_expr e1, rename_expr e2)
    | If_expr (c, t, f) ->
      If_expr (rename_expr c, rename_expr t, rename_expr f)
  in
  let rec rename_stmt (s : Ast.stmt) : Ast.stmt =
    match s with
    | Assign (name, e) -> Assign (rename name, rename_expr e)
    | Output (i, e) -> Output (i, rename_expr e)
    | If (c, then_, else_) ->
      If (rename_expr c, List.map rename_stmt then_, List.map rename_stmt else_)
    | Set_timer (t, e) -> Set_timer (t, rename_expr e)
    | Cancel_timer _ | Nop -> s
  in
  {
    Ast.state = List.map (fun (name, v) -> (rename name, v)) p.Ast.state;
    body = List.map rename_stmt p.Ast.body;
  }

module String_set = Set.Make (String)

let variables_disjoint programs =
  let rec check seen = function
    | [] -> true
    | p :: rest ->
      let vars = String_set.of_list (Ast.assigned_variables p) in
      if String_set.is_empty (String_set.inter seen vars)
      then check (String_set.union seen vars) rest
      else false
  in
  check String_set.empty programs
