(** Variable renaming.

    The paper resolves clashes between the variables of blocks merged into
    one programmable block "through variable renaming"; we do so by giving
    every merged member a unique prefix. *)

val with_prefix : string -> Ast.program -> Ast.program
(** Prefix every state variable, assigned variable, and variable reference
    with the given string.  Free variables (which a well-formed block
    program does not have) are prefixed too, keeping the program's
    behaviour stable under composition. *)

val variables_disjoint : Ast.program list -> bool
(** True when no two programs share a variable name; renaming with distinct
    prefixes guarantees this. *)
