lib/codegen/c_emit.ml: Behavior Buffer Fun List Printf String
