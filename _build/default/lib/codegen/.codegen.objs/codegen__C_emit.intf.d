lib/codegen/c_emit.mli: Behavior
