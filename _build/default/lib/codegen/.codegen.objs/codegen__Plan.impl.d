lib/codegen/plan.ml: Array Behavior Eblock Format Int List Netlist Printf
