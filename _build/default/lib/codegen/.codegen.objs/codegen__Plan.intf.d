lib/codegen/plan.mli: Behavior Eblock Netlist
