lib/codegen/replace.ml: Array Core Format List Netlist Plan Printf
