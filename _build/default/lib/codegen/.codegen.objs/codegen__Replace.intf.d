lib/codegen/replace.mli: Core Netlist
