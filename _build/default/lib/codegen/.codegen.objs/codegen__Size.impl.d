lib/codegen/size.ml: Behavior List
