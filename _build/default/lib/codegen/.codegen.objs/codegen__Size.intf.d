lib/codegen/size.mli: Behavior
