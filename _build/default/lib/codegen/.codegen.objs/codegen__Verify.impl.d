lib/codegen/verify.ml: Array Behavior Core Eblock Format Hashtbl List Netlist Plan String
