lib/codegen/verify.mli: Behavior Core Format Netlist
