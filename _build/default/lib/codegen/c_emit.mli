(** C code emission for a programmable eBlock.

    Targets the PIC16F628-class runtime of the physical prototype (§3.3):
    the block firmware calls [eblock_step()] whenever an input packet
    arrives or a software timer expires.  Port and timer access go through
    macros ([EB_IN], [EB_OUT], [EB_SET_TIMER], ...) supplied by the board
    support header, so the emitted file is self-contained and compiles
    with a stub header on a development host too. *)

val expr : Behavior.Ast.expr -> string
(** C rendering of one expression (exposed for tests). *)

val program :
  ?block_name:string ->
  n_inputs:int ->
  n_outputs:int ->
  Behavior.Ast.program ->
  string
(** A complete translation unit: state variable definitions with
    initialisers, the [eblock_step] function, and a fallback definition of
    the port/timer macros guarded by [#ifndef]. *)

val write_file :
  string ->
  ?block_name:string ->
  n_inputs:int ->
  n_outputs:int ->
  Behavior.Ast.program ->
  unit
