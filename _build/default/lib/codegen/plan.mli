(** Code-generation plan for one partition (§3.3).

    Builds everything needed to replace a partition with a programmable
    block: the level-ordered member list, the pin assignment (one pin per
    crossing connection, matching the partitioning model), and the merged
    behaviour tree. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type t = {
  members : Node_id.t list;
      (** partition members in non-decreasing level order (ties by id) —
          the paper's guarantee that "the tool does not evaluate a block's
          tree before any of its input blocks have produced output" *)
  program : Behavior.Ast.program;
      (** the merged syntax tree *)
  input_pins : Graph.endpoint array;
      (** pin [j] of the programmable block is driven by this external
          source endpoint *)
  output_pins : (Graph.endpoint * Graph.endpoint) array;
      (** pin [j] carries the value of the internal source endpoint (fst)
          to the external destination endpoint (snd) *)
  output_init : Behavior.Ast.value array;
      (** power-on value of each output pin (the member's power-on value) *)
}

exception Plan_error of string

val build : Graph.t -> Node_id.Set.t -> t
(** Raises {!Plan_error} when the set is empty, a member is missing or not
    partitionable, or an in-partition input port is undriven. *)

val level_order : Graph.t -> Node_id.Set.t -> Node_id.t list
(** Members sorted by (level, id); exposed for tests. *)

val descriptor : ?label:string -> t -> Eblock.Descriptor.t
(** The programmable-block descriptor hosting the merged program. *)
