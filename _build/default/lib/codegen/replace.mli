(** Synthesis rewriting: substitute each partition of a solution with one
    programmable block carrying the merged behaviour.

    Sensors, primary outputs, communication blocks, and uncovered compute
    blocks keep their node ids, so the rewritten network remains directly
    comparable to the original (see {!Sim.Equiv}). *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type t = {
  network : Graph.t;
  programmable_ids : Node_id.t list;
      (** the new node introduced for each partition, in solution order *)
}

exception Replace_error of string

val apply : Graph.t -> Core.Solution.t -> t
(** Partitions are rewritten in solution order; later partitions may
    legitimately connect to earlier partitions' programmable blocks.
    Raises {!Replace_error} if a partition overlaps a previous one or a
    plan cannot be built. *)

val synthesize :
  ?config:Core.Paredown.config -> Graph.t -> t * Core.Paredown.result
(** Convenience: run PareDown, then {!apply} its solution. *)
