open Behavior.Ast

(* Pessimistic per-construct word costs for an 8-bit accumulator machine:
   every expression node needs a load/op, every statement some glue. *)
let expr_words_cost = 3
let stmt_words_cost = 4
let state_var_cost = 2
let runtime_overhead = 64  (* packet handling, timer bookkeeping *)

let rec expr_words = function
  | Const _ | Var _ | Input _ | Timer_fired _ -> expr_words_cost
  | Unop (_, e) -> expr_words_cost + expr_words e
  | Binop (_, e1, e2) -> expr_words_cost + expr_words e1 + expr_words e2
  | If_expr (c, t, f) ->
    (2 * expr_words_cost) + expr_words c + expr_words t + expr_words f

let rec stmt_words = function
  | Assign (_, e) | Output (_, e) | Set_timer (_, e) ->
    stmt_words_cost + expr_words e
  | If (c, then_, else_) ->
    stmt_words_cost + expr_words c
    + List.fold_left (fun acc s -> acc + stmt_words s) 0 then_
    + List.fold_left (fun acc s -> acc + stmt_words s) 0 else_
  | Cancel_timer _ | Nop -> stmt_words_cost

let estimate_words p =
  runtime_overhead
  + (state_var_cost * List.length p.state)
  + List.fold_left (fun acc s -> acc + stmt_words s) 0 p.body

let pic16f628_words = 2048

let fits_pic16f628 p = estimate_words p <= pic16f628_words
