(** Program-memory estimation.

    The paper argues (§3.3) that with 2 KB of program words, "the small
    size of each program describing a pre-defined block's function, and
    the scale of real eBlock systems", the program-size constraint is
    never binding — partitioning is input/output limited, not size
    limited.  This module lets us check that claim on every merged
    program instead of assuming it. *)

val estimate_words : Behavior.Ast.program -> int
(** A deliberately pessimistic instruction-word estimate for a PIC-class
    8-bit target: a handful of words per AST node, plus per-state-variable
    initialisation. *)

val pic16f628_words : int
(** 2048: the program memory of the prototype's PIC16F628. *)

val fits_pic16f628 : Behavior.Ast.program -> bool
