module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type verdict =
  | Equivalent
  | Not_combinational of Node_id.t
  | Counterexample of {
      inputs : bool array;
      pin : int;
      merged : Behavior.Ast.value;
      composed : Behavior.Ast.value;
    }

let pp_verdict ppf = function
  | Equivalent -> Format.pp_print_string ppf "equivalent (proven)"
  | Not_combinational id ->
    Format.fprintf ppf "member %d is sequential; not provable by enumeration"
      id
  | Counterexample { inputs; pin; merged; composed } ->
    Format.fprintf ppf
      "inputs [%s]: merged drives pin %d to %a but the network computes %a"
      (String.concat "; "
         (Array.to_list (Array.map string_of_bool inputs)))
      pin Behavior.Ast.pp_value merged Behavior.Ast.pp_value composed

let is_combinational (d : Eblock.Descriptor.t) =
  d.behavior.Behavior.Ast.state = []
  && not (Behavior.Ast.uses_timer d.behavior)

(* Evaluate the members directly over the subgraph for one assignment of
   the external input pins; returns the value on each internal port. *)
let compose_members g (plan : Plan.t) assignment =
  let port_values = Hashtbl.create 16 in
  let members = Node_id.Set.of_list plan.Plan.members in
  (* pin j of the plan corresponds to the j-th in-edge (same ordering as
     Plan.build); record the assigned value against the member input port
     that edge drives *)
  let in_edges = Netlist.Cut.in_edges g members in
  let external_value = Hashtbl.create 8 in
  List.iteri
    (fun pin e -> Hashtbl.replace external_value e.Graph.dst assignment.(pin))
    in_edges;
  List.iter
    (fun id ->
      let d = Graph.descriptor g id in
      let inputs =
        Array.init d.Eblock.Descriptor.n_inputs (fun port ->
            let dst = { Graph.node = id; port } in
            match Hashtbl.find_opt external_value dst with
            | Some b -> Behavior.Ast.Bool b
            | None ->
              (match Graph.driver g id port with
               | Some src ->
                 (match Hashtbl.find_opt port_values src with
                  | Some v -> v
                  | None -> Behavior.Ast.Bool false)
               | None -> Behavior.Ast.Bool false))
      in
      let outcome =
        Behavior.Eval.activate d.Eblock.Descriptor.behavior
          ~n_outputs:d.Eblock.Descriptor.n_outputs
          (Behavior.Eval.init d.Eblock.Descriptor.behavior)
          { Behavior.Eval.inputs; fired = None }
      in
      Array.iteri
        (fun port slot ->
          let v =
            match slot with
            | Some v -> v
            | None -> d.Eblock.Descriptor.output_init.(port)
          in
          Hashtbl.replace port_values { Graph.node = id; port } v)
        outcome.Behavior.Eval.outputs)
    plan.Plan.members;
  port_values

let run_merged (plan : Plan.t) assignment =
  let inputs =
    Array.map (fun b -> Behavior.Ast.Bool b) assignment
  in
  let outcome =
    Behavior.Eval.activate plan.Plan.program
      ~n_outputs:(Array.length plan.Plan.output_pins)
      (Behavior.Eval.init plan.Plan.program)
      { Behavior.Eval.inputs; fired = None }
  in
  outcome.Behavior.Eval.outputs

let check_partition g members =
  let plan = Plan.build g members in
  match
    List.find_opt
      (fun id -> not (is_combinational (Graph.descriptor g id)))
      plan.Plan.members
  with
  | Some id -> Not_combinational id
  | None ->
    let n_inputs = Array.length plan.Plan.input_pins in
    let rec try_assignment index =
      if index >= 1 lsl n_inputs then Equivalent
      else begin
        let assignment =
          Array.init n_inputs (fun bit -> (index lsr bit) land 1 = 1)
        in
        let composed = compose_members g plan assignment in
        let merged = run_merged plan assignment in
        let rec compare_pin pin =
          if pin >= Array.length plan.Plan.output_pins then
            try_assignment (index + 1)
          else begin
            let internal_src, _ = plan.Plan.output_pins.(pin) in
            let composed_value =
              match Hashtbl.find_opt composed internal_src with
              | Some v -> v
              | None -> Behavior.Ast.Bool false
            in
            let merged_value =
              match merged.(pin) with
              | Some v -> v
              | None -> plan.Plan.output_init.(pin)
            in
            if Behavior.Ast.equal_value merged_value composed_value then
              compare_pin (pin + 1)
            else
              Counterexample
                {
                  inputs = assignment;
                  pin;
                  merged = merged_value;
                  composed = composed_value;
                }
          end
        in
        compare_pin 0
      end
    in
    try_assignment 0

let check_solution g solution =
  let rec walk proven = function
    | [] -> Ok proven
    | p :: rest ->
      let members = p.Core.Partition.members in
      (match check_partition g members with
       | Equivalent -> walk (proven + 1) rest
       | Not_combinational _ -> walk proven rest
       | Counterexample _ as verdict -> Error (members, verdict))
  in
  walk 0 solution.Core.Solution.partitions
