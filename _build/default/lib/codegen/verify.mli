(** Exact equivalence checking of a merged program against its partition.

    Co-simulation ({!Sim.Equiv}) samples random stimuli; for partitions
    whose members are all {e combinational} (stateless, timer-free) we can
    do better: enumerate every boolean assignment of the programmable
    block's input pins and compare the merged program's outputs against
    the composition of the member behaviours evaluated directly on the
    subgraph.  This is a complete proof for such partitions (the pin
    count is bounded by the block shape, so the enumeration is tiny). *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type verdict =
  | Equivalent
      (** all input assignments agree *)
  | Not_combinational of Node_id.t
      (** this member has state or timers; use co-simulation instead *)
  | Counterexample of {
      inputs : bool array;
      pin : int;
      merged : Behavior.Ast.value;
      composed : Behavior.Ast.value;
    }

val pp_verdict : Format.formatter -> verdict -> unit

val check_partition : Graph.t -> Node_id.Set.t -> verdict
(** Build the plan for the partition and compare it against direct member
    composition over all 2^inputs assignments.  Raises [Plan.Plan_error]
    on malformed partitions. *)

val check_solution :
  Graph.t -> Core.Solution.t -> (int, Node_id.Set.t * verdict) result
(** Check every all-combinational partition of a solution; skips
    sequential ones.  [Ok n] reports how many partitions were proven;
    [Error] carries the first failing partition. *)
