lib/core/aggregation.ml: List Netlist Partition Shape Solution
