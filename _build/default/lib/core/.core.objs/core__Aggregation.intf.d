lib/core/aggregation.mli: Netlist Partition Shape Solution
