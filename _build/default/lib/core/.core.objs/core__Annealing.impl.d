lib/core/annealing.ml: List Netlist Partition Prng Shape Solution
