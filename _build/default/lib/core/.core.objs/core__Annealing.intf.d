lib/core/annealing.mli: Netlist Partition Shape Solution
