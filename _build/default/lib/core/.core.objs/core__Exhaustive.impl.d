lib/core/exhaustive.ml: Array Eblock Float List Netlist Partition Shape Solution Sys
