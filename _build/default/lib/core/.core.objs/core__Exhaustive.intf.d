lib/core/exhaustive.mli: Netlist Partition Shape Solution
