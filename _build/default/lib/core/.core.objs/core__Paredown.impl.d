lib/core/paredown.ml: Format List Netlist Option Partition Shape Solution
