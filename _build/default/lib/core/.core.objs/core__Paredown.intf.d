lib/core/paredown.mli: Format Netlist Partition Shape Solution
