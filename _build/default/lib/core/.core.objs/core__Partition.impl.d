lib/core/partition.ml: Eblock Format Netlist Shape
