lib/core/partition.mli: Format Netlist Shape
