lib/core/shape.ml: Eblock Float Format Int List Printf
