lib/core/shape.mli: Format
