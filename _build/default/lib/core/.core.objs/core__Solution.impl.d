lib/core/solution.ml: Eblock Float Format Int List Netlist Partition Shape
