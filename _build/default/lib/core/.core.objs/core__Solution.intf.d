lib/core/solution.mli: Format Netlist Partition
