module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type config = {
  shapes : Shape.t list;
  partition_config : Partition.config;
}

let default_config = {
  shapes = [ Shape.default ];
  partition_config = Partition.default_config;
}

let fits_any ~config g set =
  List.exists
    (fun shape ->
      Partition.fits_shape ~config:config.partition_config g shape set)
    config.shapes

let chosen_shape ~config g set =
  Shape.cheapest_fitting config.shapes
    ~inputs_used:(Partition.inputs_used ~config:config.partition_config g set)
    ~outputs_used:
      (Partition.outputs_used ~config:config.partition_config g set)

(* Eligible blocks adjacent to the cluster that are still available. *)
let frontier g available cluster =
  Node_id.Set.fold
    (fun id acc ->
      let neighbours = Graph.preds g id @ Graph.succs g id in
      List.fold_left
        (fun acc n ->
          if Node_id.Set.mem n available && not (Node_id.Set.mem n cluster)
          then Node_id.Set.add n acc
          else acc)
        acc neighbours)
    cluster Node_id.Set.empty

let run ?(config = default_config) g =
  let order = Graph.topological_order g in
  let eligible = Node_id.Set.of_list (Graph.partitionable_nodes g) in
  (* Grow a cluster from [seed], absorbing the first adjacent available
     block (in id order) that keeps the cluster fitting. *)
  let grow available seed =
    let rec extend cluster =
      let candidates = frontier g available cluster in
      let try_add id =
        let grown = Node_id.Set.add id cluster in
        if fits_any ~config g grown then Some grown else None
      in
      match
        List.find_map try_add (Node_id.Set.elements candidates)
      with
      | Some grown -> extend grown
      | None -> cluster
    in
    extend (Node_id.Set.singleton seed)
  in
  let rec sweep available partitions = function
    | [] -> List.rev partitions
    | seed :: rest ->
      if not (Node_id.Set.mem seed available) then
        sweep available partitions rest
      else if not (fits_any ~config g (Node_id.Set.singleton seed)) then
        (* cannot host even this block alone; leave it pre-defined *)
        sweep (Node_id.Set.remove seed available) partitions rest
      else begin
        let cluster = grow available seed in
        let available = Node_id.Set.diff available cluster in
        if Node_id.Set.cardinal cluster >= 2 then begin
          match chosen_shape ~config g cluster with
          | Some shape ->
            let p = Partition.make ~members:cluster ~shape in
            sweep available (p :: partitions) rest
          | None -> sweep available partitions rest
        end
        else sweep available partitions rest
      end
  in
  let seeds = List.filter (fun id -> Node_id.Set.mem id eligible) order in
  { Solution.partitions = sweep eligible [] seeds }
