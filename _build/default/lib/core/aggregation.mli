(** The aggregation heuristic — the paper's first, abandoned attempt
    (§4.2): "clusters nodes into subgraphs through aggregation.  From a
    list of inner nodes connected to a primary input, the aggregation
    method repeatedly selects a node that fits within a programmable block
    as a partition."

    We grow one cluster at a time, starting from the earliest unclustered
    eligible block (in topological order, i.e. nearest the sensors), and
    greedily absorb adjacent eligible blocks as long as the cluster keeps
    fitting a programmable block.  Because it never removes a block once
    added, the method "is not capable of taking advantage of convergence"
    and is kept as the baseline PareDown is compared against. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type config = {
  shapes : Shape.t list;
  partition_config : Partition.config;
}

val default_config : config

val run : ?config:config -> Graph.t -> Solution.t
(** The result always passes {!Solution.check}. *)
