(** The PareDown decomposition heuristic (§4.2).

    PareDown "begins by selecting all internal blocks of a design as a
    candidate partition, and then removes blocks from the partition until
    input and output constraints are met".  Each accepted partition's
    members leave the working set and the process repeats until no blocks
    remain.

    The block removed from an invalid candidate is the {e border block}
    with the lowest {e rank} (net change of the candidate's combined
    indegree and outdegree if the block were removed); ties go to the
    greatest indegree, then greatest outdegree, then highest level, then —
    a detail the paper leaves open; this choice reproduces Figure 5 — the
    highest node id. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type tie_break =
  | Greatest_indegree
  | Greatest_outdegree
  | Highest_level
  | Highest_id  (** always appended implicitly to make removal total *)

type empty_candidate_policy =
  | Stop_everything
      (** the paper's literal pseudocode: return the partitions found so
          far, abandoning any blocks still in the working set *)
  | Skip_block
      (** continue with the remaining blocks after setting aside the
          single block that could not fit on its own (matches the paper's
          complexity analysis and is never worse); the default *)

type config = {
  shapes : Shape.t list;           (** candidate fits if any shape fits *)
  partition_config : Partition.config;
  tie_breaks : tie_break list;
  on_empty_candidate : empty_candidate_policy;
}

val default_config : config
(** The paper's setup: one 2-in/2-out shape, per-edge pins, convexity
    required, ties by indegree/outdegree/level, [Skip_block]. *)

type stats = {
  outer_iterations : int;  (** candidate partitions started *)
  fit_checks : int;        (** "fits in a programmable block" tests *)
  removals : int;          (** border blocks removed from candidates *)
}

type event =
  | Candidate_started of Node_id.Set.t
  | Ranked of (Node_id.t * int) list
      (** border blocks of the current candidate with their ranks *)
  | Removed of Node_id.t * int  (** block evicted, with its rank *)
  | Accepted of Node_id.Set.t * Shape.t
  | Left_single of Node_id.t
      (** fits alone but single-member partitions are invalid: the block
          stays pre-defined *)
  | Unplaceable of Node_id.t
      (** no shape can host even this block alone *)

val pp_event : Format.formatter -> event -> unit

type result = {
  solution : Solution.t;
  stats : stats;
  trace : event list;  (** chronological; empty unless requested *)
}

val rank : ?config:config -> Graph.t -> Node_id.Set.t -> Node_id.t -> int
(** [rank g candidate b] — the io delta of removing [b] from
    [candidate]. *)

val removal_choice :
  ?config:config -> Graph.t -> Node_id.Set.t -> Node_id.t option
(** The border block PareDown would evict from the candidate, or [None]
    on an empty candidate. *)

val run : ?config:config -> ?record_trace:bool -> Graph.t -> result
(** Partition the graph's eligible inner blocks.  The graph must be
    acyclic (levels are needed for tie-breaking). *)
