module Graph = Netlist.Graph
module Node_id = Netlist.Node_id
module Cut = Netlist.Cut

type pin_counting =
  | Per_edge
  | Per_net

type config = {
  pin_counting : pin_counting;
  require_convex : bool;
}

let default_config = { pin_counting = Per_edge; require_convex = true }

type t = {
  members : Node_id.Set.t;
  shape : Shape.t;
}

let make ~members ~shape = { members; shape }

type invalidity =
  | Too_few_members of int
  | Not_partitionable of Node_id.t
  | Unknown_node of Node_id.t
  | Too_many_inputs of { used : int; available : int }
  | Too_many_outputs of { used : int; available : int }
  | Not_convex

let pp_invalidity ppf = function
  | Too_few_members n ->
    Format.fprintf ppf "only %d member(s); a partition needs at least 2" n
  | Not_partitionable id ->
    Format.fprintf ppf "node %d cannot be absorbed into a programmable block"
      id
  | Unknown_node id -> Format.fprintf ppf "node %d is not in the network" id
  | Too_many_inputs { used; available } ->
    Format.fprintf ppf "needs %d inputs but the block has %d" used available
  | Too_many_outputs { used; available } ->
    Format.fprintf ppf "needs %d outputs but the block has %d" used available
  | Not_convex ->
    Format.fprintf ppf
      "a path leaves the partition and re-enters it; replacement would \
       create a loop"

let inputs_used ?(config = default_config) g set =
  match config.pin_counting with
  | Per_edge -> Cut.inputs_used g set
  | Per_net -> Cut.inputs_used_nets g set

let outputs_used ?(config = default_config) g set =
  match config.pin_counting with
  | Per_edge -> Cut.outputs_used g set
  | Per_net -> Cut.outputs_used_nets g set

let io_used ?config g set =
  inputs_used ?config g set + outputs_used ?config g set

let fits_shape ?(config = default_config) g shape set =
  Shape.fits shape
    ~inputs_used:(inputs_used ~config g set)
    ~outputs_used:(outputs_used ~config g set)
  && ((not config.require_convex) || Cut.is_convex g set)

let members_eligible g set =
  Node_id.Set.fold
    (fun id acc ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        if not (Graph.mem g id) then Error (Unknown_node id)
        else if not (Eblock.Kind.partitionable (Graph.kind g id)) then
          Error (Not_partitionable id)
        else Ok ())
    set (Ok ())

let check ?(config = default_config) g { members; shape } =
  match members_eligible g members with
  | Error _ as e -> e
  | Ok () ->
    let size = Node_id.Set.cardinal members in
    if size < 2 then Error (Too_few_members size)
    else
      let used_in = inputs_used ~config g members in
      let used_out = outputs_used ~config g members in
      if used_in > shape.Shape.inputs then
        Error (Too_many_inputs { used = used_in; available = shape.Shape.inputs })
      else if used_out > shape.Shape.outputs then
        Error
          (Too_many_outputs
             { used = used_out; available = shape.Shape.outputs })
      else if config.require_convex && not (Cut.is_convex g members) then
        Error Not_convex
      else Ok ()

let is_valid ?config g p =
  match check ?config g p with Ok () -> true | Error _ -> false

let pp ppf { members; shape } =
  Format.fprintf ppf "%a on a %a block" Node_id.pp_set members Shape.pp shape
