(** Candidate partitions and their validity (§4's problem statement).

    A partition is a set of inner nodes to be replaced by one programmable
    block.  It is valid when (1) it fits the block's input and output pin
    budget, (2) it is "replaceable by a programmable block that can
    provide equivalent functionality" — every member is a partitionable
    compute block and the set is convex — and (3) it has at least two
    members (replacing a single pre-defined block never pays off because a
    programmable block costs slightly more). *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id
module Cut = Netlist.Cut

type pin_counting =
  | Per_edge  (** the paper's model: every crossing connection is a pin *)
  | Per_net   (** ablation only: distinct driver ports *)

type config = {
  pin_counting : pin_counting;
  require_convex : bool;
      (** on by default; off reproduces a literal reading of the paper
          that ignores replaceability-induced loops *)
}

val default_config : config

type t = {
  members : Node_id.Set.t;
  shape : Shape.t;  (** the programmable block chosen to host the members *)
}

val make : members:Node_id.Set.t -> shape:Shape.t -> t

type invalidity =
  | Too_few_members of int
  | Not_partitionable of Node_id.t
  | Unknown_node of Node_id.t
  | Too_many_inputs of { used : int; available : int }
  | Too_many_outputs of { used : int; available : int }
  | Not_convex

val pp_invalidity : Format.formatter -> invalidity -> unit

val inputs_used : ?config:config -> Graph.t -> Node_id.Set.t -> int
val outputs_used : ?config:config -> Graph.t -> Node_id.Set.t -> int
val io_used : ?config:config -> Graph.t -> Node_id.Set.t -> int

val fits_shape :
  ?config:config -> Graph.t -> Shape.t -> Node_id.Set.t -> bool
(** Pin and (if configured) convexity constraints only — the "fits in a
    programmable block" test of the PareDown inner loop, which is also
    satisfied by singleton and empty sets. *)

val members_eligible :
  Graph.t -> Node_id.Set.t -> (unit, invalidity) result
(** Every member exists and is a partitionable compute block. *)

val check : ?config:config -> Graph.t -> t -> (unit, invalidity) result
(** Full validity: eligibility, size, pins, convexity. *)

val is_valid : ?config:config -> Graph.t -> t -> bool

val pp : Format.formatter -> t -> unit
