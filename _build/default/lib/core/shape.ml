type t = {
  inputs : int;
  outputs : int;
  cost : float;
}

let make ~inputs ~outputs ?(cost = Eblock.Cost.programmable) () =
  if inputs <= 0 || outputs <= 0 then
    invalid_arg "Shape.make: arities must be positive";
  if cost < 0. then invalid_arg "Shape.make: negative cost";
  { inputs; outputs; cost }

let default = make ~inputs:2 ~outputs:2 ()

let fits t ~inputs_used ~outputs_used =
  inputs_used <= t.inputs && outputs_used <= t.outputs

let cheapest_fitting shapes ~inputs_used ~outputs_used =
  let candidates = List.filter (fun s -> fits s ~inputs_used ~outputs_used) shapes in
  let better a b =
    match Float.compare a.cost b.cost with
    | 0 ->
      (match Int.compare (a.inputs + a.outputs) (b.inputs + b.outputs) with
       | 0 -> Int.compare a.inputs b.inputs
       | c -> c)
    | c -> c
  in
  match List.sort better candidates with
  | [] -> None
  | best :: _ -> Some best

let equal a b =
  a.inputs = b.inputs && a.outputs = b.outputs
  && Float.equal a.cost b.cost

let to_string t = Printf.sprintf "%dx%d" t.inputs t.outputs

let pp ppf t = Format.pp_print_string ppf (to_string t)
