(** Programmable-block shapes.

    A programmable block "features a finite number of inputs and outputs"
    (§2).  The paper's experiments assume one shape with two inputs and two
    outputs; its future work considers "multiple types of programmable
    blocks (having different number of inputs and outputs) and varying
    compute block costs", which the shape-set APIs here support. *)

type t = private {
  inputs : int;
  outputs : int;
  cost : float;
}

val make : inputs:int -> outputs:int -> ?cost:float -> unit -> t
(** Raises [Invalid_argument] on non-positive arities or negative cost.
    [cost] defaults to {!Eblock.Cost.programmable}. *)

val default : t
(** The paper's programmable block: 2 inputs, 2 outputs. *)

val fits : t -> inputs_used:int -> outputs_used:int -> bool

val cheapest_fitting :
  t list -> inputs_used:int -> outputs_used:int -> t option
(** The lowest-cost shape accommodating the given pin usage (ties broken
    towards fewer total pins, then fewer inputs). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
