module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type t = {
  partitions : Partition.t list;
}

let empty = { partitions = [] }

let covered t =
  List.fold_left
    (fun acc p -> Node_id.Set.union acc p.Partition.members)
    Node_id.Set.empty t.partitions

let covered_count t = Node_id.Set.cardinal (covered t)

let programmable_count t = List.length t.partitions

let uncovered g t =
  let all_covered = covered t in
  List.fold_left
    (fun acc id ->
      if Node_id.Set.mem id all_covered then acc else Node_id.Set.add id acc)
    Node_id.Set.empty (Graph.inner_nodes g)

let total_inner_after g t =
  Node_id.Set.cardinal (uncovered g t) + programmable_count t

let total_cost_after g t =
  let remaining =
    Node_id.Set.fold
      (fun id acc ->
        acc +. (Graph.descriptor g id).Eblock.Descriptor.cost)
      (uncovered g t) 0.
  in
  List.fold_left
    (fun acc p -> acc +. p.Partition.shape.Shape.cost)
    remaining t.partitions

let compare_quality g a b =
  match Int.compare (total_inner_after g a) (total_inner_after g b) with
  | 0 ->
    (match Int.compare (covered_count b) (covered_count a) with
     | 0 -> Int.compare (programmable_count a) (programmable_count b)
     | c -> c)
  | c -> c

let compare_cost g a b =
  match Float.compare (total_cost_after g a) (total_cost_after g b) with
  | 0 -> compare_quality g a b
  | c -> c

let check ?config g t =
  let rec disjoint seen = function
    | [] -> Ok ()
    | p :: rest ->
      let overlap = Node_id.Set.inter seen p.Partition.members in
      if not (Node_id.Set.is_empty overlap) then
        Error
          (Format.asprintf "partitions overlap on %a" Node_id.pp_set overlap)
      else disjoint (Node_id.Set.union seen p.Partition.members) rest
  in
  let rec all_valid index = function
    | [] -> disjoint Node_id.Set.empty t.partitions
    | p :: rest ->
      (match Partition.check ?config g p with
       | Ok () -> all_valid (index + 1) rest
       | Error reason ->
         Error
           (Format.asprintf "partition %d (%a) invalid: %a" index
              Partition.pp p Partition.pp_invalidity reason))
  in
  all_valid 0 t.partitions

let pp ppf t =
  match t.partitions with
  | [] -> Format.pp_print_string ppf "no partitions"
  | ps ->
    Format.pp_print_list ~pp_sep:Format.pp_print_cut Partition.pp ppf ps
