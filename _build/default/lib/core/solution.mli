(** A partitioning outcome and the paper's quality metrics.

    Table 1/Table 2 report, per design: {e Inner Blocks (Total)} — inner
    blocks remaining after replacement, i.e. uncovered inner blocks plus
    one programmable block per partition — and {e Inner Blocks (Prog.)} —
    the number of partitions. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type t = {
  partitions : Partition.t list;
}

val empty : t

val covered : t -> Node_id.Set.t
(** Union of all partitions' members. *)

val covered_count : t -> int
val programmable_count : t -> int

val uncovered : Graph.t -> t -> Node_id.Set.t
(** Inner nodes of the graph not covered by any partition. *)

val total_inner_after : Graph.t -> t -> int
(** The paper's {e Inner Blocks (Total)} metric. *)

val total_cost_after : Graph.t -> t -> float
(** Cost of the inner nodes after replacement: uncovered nodes keep their
    catalogue cost; each partition contributes its shape's cost. *)

val compare_quality : Graph.t -> t -> t -> int
(** The paper's objective, lexicographic: fewer total inner blocks first;
    among equal totals, "covers the most number of blocks"; then fewer
    partitions.  Negative when the first solution is better. *)

val compare_cost : Graph.t -> t -> t -> int
(** The cost objective of the paper's future work ("varying compute block
    costs"): lower {!total_cost_after} first, with {!compare_quality} as
    the tie-break.  Negative when the first solution is better. *)

val check : ?config:Partition.config -> Graph.t -> t -> (unit, string) result
(** Every partition valid and partitions pairwise disjoint. *)

val pp : Format.formatter -> t -> unit
