lib/designs/design.ml: List Netlist Printf String
