lib/designs/design.mli: Eblock Netlist
