lib/designs/library.ml: Design Eblock List String
