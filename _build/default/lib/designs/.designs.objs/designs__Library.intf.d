lib/designs/library.mli: Design
