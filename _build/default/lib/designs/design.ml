module Graph = Netlist.Graph

type paper_row = {
  inner_original : int;
  exhaustive_total : int option;
  exhaustive_prog : int option;
  paredown_total : int;
  paredown_prog : int;
}

type t = {
  name : string;
  description : string;
  network : Graph.t;
  paper : paper_row option;
}

let make ~name ~description ?paper ~nodes ~edges () =
  let g =
    List.fold_left
      (fun g (id, descriptor) -> fst (Graph.add ~id g descriptor))
      Graph.empty nodes
  in
  let g =
    List.fold_left (fun g (src, dst) -> Graph.connect g ~src ~dst) g edges
  in
  (match Graph.validate g with
   | Ok () -> ()
   | Error problems ->
     failwith
       (Printf.sprintf "design %s is malformed: %s" name
          (String.concat "; " problems)));
  (match paper with
   | Some row when row.inner_original <> Graph.inner_count g ->
     failwith
       (Printf.sprintf
          "design %s has %d inner blocks but Table 1 says %d" name
          (Graph.inner_count g) row.inner_original)
   | Some _ | None -> ());
  { name; description; network = g; paper }

let inner_count t = Graph.inner_count t.network
