lib/eblock/catalog.ml: Behavior Cost Descriptor Kind List Printf String
