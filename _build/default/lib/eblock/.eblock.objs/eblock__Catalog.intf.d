lib/eblock/catalog.mli: Behavior Descriptor Kind
