lib/eblock/cost.ml: Kind
