lib/eblock/cost.mli: Kind
