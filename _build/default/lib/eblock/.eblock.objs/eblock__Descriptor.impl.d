lib/eblock/descriptor.ml: Array Behavior Format Kind String
