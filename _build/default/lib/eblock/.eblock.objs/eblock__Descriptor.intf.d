lib/eblock/descriptor.mli: Behavior Format Kind
