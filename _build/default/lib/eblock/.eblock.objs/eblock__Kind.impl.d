lib/eblock/kind.ml: Format
