lib/eblock/kind.mli: Format
