open Behavior.Ast

(* All sequential behaviours are written to be idempotent under
   re-activation with unchanged inputs: edge detection always goes through
   a [prev] state variable.  This matches the change-driven packet protocol
   (a block only receives a packet when a producer's output changed) and is
   what makes merged programmable-block programs, which re-run every member
   on every activation, behave like the original network. *)

let sensor name =
  Descriptor.make ~name ~kind:Kind.Sensor ~n_inputs:0 ~n_outputs:1
    ~cost:Cost.sensor ()

let button = sensor "button"
let contact_switch = sensor "contact_switch"
let motion_sensor = sensor "motion_sensor"
let light_sensor = sensor "light_sensor"
let sound_sensor = sensor "sound_sensor"
let magnet_sensor = sensor "magnet_sensor"

let output name =
  Descriptor.make ~name ~kind:Kind.Output ~n_inputs:1 ~n_outputs:0
    ~cost:Cost.output ()

let led = output "led"
let buzzer = output "buzzer"
let relay = output "relay"

let identity_body = [ Output (0, input 0) ]

let comm name =
  Descriptor.make ~name ~kind:Kind.Comm ~n_inputs:1 ~n_outputs:1
    ~behavior:{ state = []; body = identity_body }
    ~cost:Cost.comm ()

let wireless_tx = comm "wireless_tx"
let wireless_rx = comm "wireless_rx"
let x10_link = comm "x10_link"

let combinational name ~n_inputs expr =
  Descriptor.make ~name ~kind:Kind.Compute ~n_inputs ~n_outputs:1
    ~behavior:{ state = []; body = [ Output (0, expr) ] }
    ~cost:Cost.predefined ()

let not_gate = combinational "not" ~n_inputs:1 (not_ (input 0))
let and2 = combinational "and2" ~n_inputs:2 (input 0 &&& input 1)
let or2 = combinational "or2" ~n_inputs:2 (input 0 ||| input 1)
let xor2 = combinational "xor2" ~n_inputs:2 (Binop (Xor, input 0, input 1))
let nand2 = combinational "nand2" ~n_inputs:2 (not_ (input 0 &&& input 1))
let nor2 = combinational "nor2" ~n_inputs:2 (not_ (input 0 ||| input 1))
let and3 =
  combinational "and3" ~n_inputs:3 (input 0 &&& input 1 &&& input 2)
let or3 = combinational "or3" ~n_inputs:3 (input 0 ||| input 1 ||| input 2)

let splitter2 =
  Descriptor.make ~name:"splitter2" ~kind:Kind.Compute ~n_inputs:1
    ~n_outputs:2
    ~behavior:{ state = []; body = [ Output (0, input 0); Output (1, input 0) ] }
    ~cost:Cost.predefined ()

(* [table_expr arity table] selects bit [sum 2^k * in_k] of [table], with
   input 0 the most significant selector, as a nest of conditionals. *)
let table_expr arity table =
  let rec build index row =
    if index >= arity then bool_ ((table lsr row) land 1 = 1)
    else
      If_expr (input index,
               build (index + 1) ((row lsl 1) lor 1),
               build (index + 1) (row lsl 1))
  in
  build 0 0

let truth_table2 ~table =
  if table < 0 || table > 15 then
    invalid_arg "Catalog.truth_table2: table out of range";
  combinational (Printf.sprintf "tt2(%d)" table) ~n_inputs:2
    (table_expr 2 table)

let truth_table3 ~table =
  if table < 0 || table > 255 then
    invalid_arg "Catalog.truth_table3: table out of range";
  combinational (Printf.sprintf "tt3(%d)" table) ~n_inputs:3
    (table_expr 3 table)

let sequential name ~n_inputs ~state body =
  Descriptor.make ~name ~kind:Kind.Compute ~n_inputs ~n_outputs:1
    ~behavior:{ state; body } ~cost:Cost.predefined ()

let rising_edge = input 0 &&& not_ (var "prev")
let falling_edge = not_ (input 0) &&& var "prev"
let track_prev = Assign ("prev", input 0)

let toggle =
  sequential "toggle" ~n_inputs:1
    ~state:[ ("prev", Bool false); ("q", Bool false) ]
    [
      If (rising_edge, [ Assign ("q", not_ (var "q")) ], []);
      track_prev;
      Output (0, var "q");
    ]

let trip_latch =
  sequential "trip" ~n_inputs:1
    ~state:[ ("t", Bool false) ]
    [
      If (input 0, [ Assign ("t", bool_ true) ], []);
      Output (0, var "t");
    ]

let trip_reset =
  sequential "trip_reset" ~n_inputs:2
    ~state:[ ("t", Bool false) ]
    [
      If (input 1,
          [ Assign ("t", bool_ false) ],
          [ If (input 0, [ Assign ("t", bool_ true) ], []) ]);
      Output (0, var "t");
    ]

let pulse_gen ~width =
  if width <= 0 then invalid_arg "Catalog.pulse_gen: width must be positive";
  sequential (Printf.sprintf "pulse_gen(%d)" width) ~n_inputs:1
    ~state:[ ("prev", Bool false) ]
    [
      If (rising_edge,
          [ Output (0, bool_ true); Set_timer (0, int_ width) ], []);
      If (Timer_fired 0, [ Output (0, bool_ false) ], []);
      track_prev;
    ]

let delay ~ticks =
  if ticks <= 0 then invalid_arg "Catalog.delay: ticks must be positive";
  sequential (Printf.sprintf "delay(%d)" ticks) ~n_inputs:1
    ~state:[ ("prev", Bool false); ("pend", Bool false) ]
    [
      If (Binop (Ne, input 0, var "prev"),
          [
            Assign ("prev", input 0);
            Assign ("pend", input 0);
            Set_timer (0, int_ ticks);
          ],
          []);
      If (Timer_fired 0, [ Output (0, var "pend") ], []);
    ]

let prolong ~ticks =
  if ticks <= 0 then invalid_arg "Catalog.prolong: ticks must be positive";
  sequential (Printf.sprintf "prolong(%d)" ticks) ~n_inputs:1
    ~state:[ ("prev", Bool false) ]
    [
      If (rising_edge, [ Output (0, bool_ true); Cancel_timer 0 ], []);
      If (falling_edge, [ Set_timer (0, int_ ticks) ], []);
      If (Timer_fired 0, [ Output (0, bool_ false) ], []);
      track_prev;
    ]

let blinker ~period =
  if period <= 0 then invalid_arg "Catalog.blinker: period must be positive";
  sequential (Printf.sprintf "blinker(%d)" period) ~n_inputs:1
    ~state:[ ("prev", Bool false); ("phase", Bool false) ]
    [
      If (rising_edge,
          [
            Assign ("phase", bool_ true);
            Output (0, bool_ true);
            Set_timer (0, int_ period);
          ],
          []);
      If (falling_edge,
          [ Output (0, bool_ false); Cancel_timer 0 ], []);
      If (Timer_fired 0 &&& input 0,
          [
            Assign ("phase", not_ (var "phase"));
            Output (0, var "phase");
            Set_timer (0, int_ period);
          ],
          []);
      track_prev;
    ]

let programmable ~n_inputs ~n_outputs ?name ?output_init program =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "prog%dx%d" n_inputs n_outputs
  in
  Descriptor.make ~name ~kind:Kind.Programmable ~n_inputs ~n_outputs
    ~behavior:program ?output_init ~cost:Cost.programmable ()

let define ~name ?(kind = Kind.Compute) ~n_inputs ~n_outputs ?cost
    ?output_init source =
  let cost = match cost with Some c -> c | None -> Cost.of_kind kind in
  Descriptor.make ~name ~kind ~n_inputs ~n_outputs
    ~behavior:(Behavior.Parse.program source) ?output_init ~cost ()

let all_fixed =
  [
    button; contact_switch; motion_sensor; light_sensor; sound_sensor;
    magnet_sensor; led; buzzer; relay; wireless_tx; wireless_rx; x10_link;
    not_gate; and2; or2; xor2; nand2; nor2; and3; or3; splitter2; toggle;
    trip_latch; trip_reset;
  ]

(* Parameterised names look like "family(arg)". *)
let parse_parameterised name =
  match String.index_opt name '(' with
  | None -> None
  | Some open_paren ->
    let len = String.length name in
    if len = 0 || name.[len - 1] <> ')' then None
    else
      let family = String.sub name 0 open_paren in
      let arg = String.sub name (open_paren + 1) (len - open_paren - 2) in
      (match int_of_string_opt arg with
       | None -> None
       | Some n -> Some (family, n))

let of_name name =
  match List.find_opt (fun d -> String.equal d.Descriptor.name name) all_fixed with
  | Some d -> Some d
  | None ->
    (match parse_parameterised name with
     | Some ("tt2", n) when n >= 0 && n <= 15 -> Some (truth_table2 ~table:n)
     | Some ("tt3", n) when n >= 0 && n <= 255 -> Some (truth_table3 ~table:n)
     | Some ("pulse_gen", n) when n > 0 -> Some (pulse_gen ~width:n)
     | Some ("delay", n) when n > 0 -> Some (delay ~ticks:n)
     | Some ("prolong", n) when n > 0 -> Some (prolong ~ticks:n)
     | Some ("blinker", n) when n > 0 -> Some (blinker ~period:n)
     | Some _ | None -> None)
