(** The pre-defined eBlock catalogue.

    Mirrors the block families of §2: sensor blocks, output blocks,
    communication blocks, and compute blocks — "combinational functions,
    such as a two or three input truth table, AND, OR, and NOT, and basic
    sequential functions, like a toggle, trip, pulse generate, and delay".

    Parameterised blocks ([truth_table2 ~table:6], [delay ~ticks:10], ...)
    encode their parameter in the descriptor name, e.g. ["tt2(6)"],
    ["delay(10)"], so any catalogue block round-trips through the textual
    netlist format via {!of_name}. *)

(** {1 Sensor blocks} — 0 inputs, 1 boolean output *)

val button : Descriptor.t
val contact_switch : Descriptor.t
val motion_sensor : Descriptor.t
val light_sensor : Descriptor.t
val sound_sensor : Descriptor.t
val magnet_sensor : Descriptor.t

(** {1 Output blocks} — 1 input, 0 outputs *)

val led : Descriptor.t
val buzzer : Descriptor.t
val relay : Descriptor.t

(** {1 Communication blocks} — inner but not partitionable *)

val wireless_tx : Descriptor.t
(** 1-in/1-out identity forwarder. *)

val wireless_rx : Descriptor.t
val x10_link : Descriptor.t

(** {1 Combinational compute blocks} *)

val not_gate : Descriptor.t
val and2 : Descriptor.t
val or2 : Descriptor.t
val xor2 : Descriptor.t
val nand2 : Descriptor.t
val nor2 : Descriptor.t
val and3 : Descriptor.t
val or3 : Descriptor.t
val splitter2 : Descriptor.t
(** 1 input duplicated onto 2 outputs. *)

val truth_table2 : table:int -> Descriptor.t
(** The "2-input logic" yes/no block: [table] is a 4-bit function table;
    bit [2*a + b] (counting from bit 0) is the output for inputs [(a, b)].
    Raises [Invalid_argument] unless [0 <= table < 16]. *)

val truth_table3 : table:int -> Descriptor.t
(** 3-input truth table; [table] is an 8-bit function table with bit
    [4*a + 2*b + c] the output for inputs [(a, b, c)].
    Raises [Invalid_argument] unless [0 <= table < 256]. *)

(** {1 Sequential compute blocks} *)

val toggle : Descriptor.t
(** Output flips on each rising edge of the input. *)

val trip_latch : Descriptor.t
(** Output latches true the first time the input goes true. *)

val trip_reset : Descriptor.t
(** 2 inputs: trip signal and reset; reset has priority. *)

val pulse_gen : width:int -> Descriptor.t
(** On a rising edge, emits a pulse of [width] ticks. *)

val delay : ticks:int -> Descriptor.t
(** Inertial delay: the latest input change appears on the output [ticks]
    later; changes within the window supersede earlier ones. *)

val prolong : ticks:int -> Descriptor.t
(** Output follows the input but stays true [ticks] after a falling
    edge. *)

val blinker : period:int -> Descriptor.t
(** While the input is true the output oscillates with the given
    half-period. *)

(** {1 Programmable block} *)

val programmable :
  n_inputs:int ->
  n_outputs:int ->
  ?name:string ->
  ?output_init:Behavior.Ast.value array ->
  Behavior.Ast.program ->
  Descriptor.t
(** A programmable compute block loaded with the given (typically merged)
    program.  The default name encodes the shape, e.g. ["prog2x2"]. *)

(** {1 User-defined blocks} *)

val define :
  name:string ->
  ?kind:Kind.t ->
  n_inputs:int ->
  n_outputs:int ->
  ?cost:float ->
  ?output_init:Behavior.Ast.value array ->
  string ->
  Descriptor.t
(** Define a block from behaviour-language source (see {!Behavior.Parse}),
    e.g.

    {[
      Catalog.define ~name:"majority3" ~n_inputs:3 ~n_outputs:1
        "out[0] = (in[0] && in[1]) || (in[0] && in[2]) || (in[1] && in[2]);"
    ]}

    [kind] defaults to [Compute]; [cost] defaults to the kind's catalogue
    cost.  Raises [Behavior.Parse.Syntax_error] on malformed source and
    [Descriptor.Invalid_descriptor] if the behaviour does not fit the
    declared arities. *)

(** {1 Registry} *)

val all_fixed : Descriptor.t list
(** Every non-parameterised catalogue block, for iteration in tests. *)

val of_name : string -> Descriptor.t option
(** Look up (or, for parameterised names such as ["delay(10)"] or
    ["tt2(6)"], construct) the catalogue block with the given name.
    Returns [None] for unknown names or out-of-range parameters. *)
