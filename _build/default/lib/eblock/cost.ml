let predefined = 1.0
let programmable = 1.5
let sensor = 1.0
let output = 1.0
let comm = 2.0

let of_kind = function
  | Kind.Sensor -> sensor
  | Kind.Output -> output
  | Kind.Compute -> predefined
  | Kind.Comm -> comm
  | Kind.Programmable -> programmable
