(** Block cost model (§4 of the paper).

    Pre-defined compute blocks "have identical internal components and thus
    have equal cost".  A programmable block costs slightly more "due to the
    programmability hardware, but less than two pre-defined compute
    blocks" — which is exactly why replacing a single block is never
    worthwhile while replacing two or more always is. *)

val predefined : float
(** Cost of any pre-defined compute block (the unit of cost). *)

val programmable : float
(** Cost of a programmable compute block; satisfies
    [predefined < programmable < 2 *. predefined]. *)

val sensor : float
val output : float
val comm : float

val of_kind : Kind.t -> float
