type t = {
  name : string;
  kind : Kind.t;
  n_inputs : int;
  n_outputs : int;
  behavior : Behavior.Ast.program;
  output_init : Behavior.Ast.value array;
  cost : float;
}

exception Invalid_descriptor of string

let error fmt =
  Format.kasprintf (fun msg -> raise (Invalid_descriptor msg)) fmt

let make ~name ~kind ~n_inputs ~n_outputs ?behavior ?output_init ~cost () =
  let behavior =
    match behavior with Some b -> b | None -> Behavior.Ast.empty
  in
  let output_init =
    match output_init with
    | Some a -> a
    | None -> Array.make n_outputs (Behavior.Ast.Bool false)
  in
  if n_inputs < 0 || n_outputs < 0 then
    error "%s: negative port arity" name;
  if Array.length output_init <> n_outputs then
    error "%s: output_init has %d entries for %d outputs"
      name (Array.length output_init) n_outputs;
  if Behavior.Ast.max_input_index behavior >= n_inputs then
    error "%s: behaviour reads input port %d but the block has %d inputs"
      name (Behavior.Ast.max_input_index behavior) n_inputs;
  if Behavior.Ast.max_output_index behavior >= n_outputs then
    error "%s: behaviour writes output port %d but the block has %d outputs"
      name (Behavior.Ast.max_output_index behavior) n_outputs;
  (match Behavior.Ast.free_variables behavior with
   | [] -> ()
   | name' :: _ -> error "%s: behaviour reads undefined variable %s"
                     name name');
  if cost < 0. then error "%s: negative cost" name;
  { name; kind; n_inputs; n_outputs; behavior; output_init; cost }

let equal a b = String.equal a.name b.name

let pp ppf d =
  Format.fprintf ppf "%s:%a(%d->%d)" d.name Kind.pp d.kind
    d.n_inputs d.n_outputs
