(** A block type: its class, port arities, behaviour, and cost.

    Descriptors are immutable and shared; a network node references one
    descriptor.  The behaviour program follows the activation semantics of
    {!Behavior.Eval}: it runs whenever an input packet arrives or one of
    the block's timers expires, and must be idempotent under re-activation
    with unchanged inputs (all catalogue behaviours are written this
    way). *)

type t = private {
  name : string;          (** unique, parseable (e.g. ["and2"], ["delay(10)"]) *)
  kind : Kind.t;
  n_inputs : int;
  n_outputs : int;
  behavior : Behavior.Ast.program;
      (** empty for sensors (driven by stimuli) and outputs (pure sinks) *)
  output_init : Behavior.Ast.value array;
      (** power-on value presented on each output port *)
  cost : float;           (** relative block cost; see {!Cost} *)
}

exception Invalid_descriptor of string

val make :
  name:string ->
  kind:Kind.t ->
  n_inputs:int ->
  n_outputs:int ->
  ?behavior:Behavior.Ast.program ->
  ?output_init:Behavior.Ast.value array ->
  cost:float ->
  unit ->
  t
(** Validates: non-negative arities; behaviour port references within
    arities; [output_init] length equals [n_outputs] (defaults to all
    [Bool false]); behaviour has no free variables.  Raises
    {!Invalid_descriptor} otherwise. *)

val equal : t -> t -> bool
(** Descriptors are equal when their names are equal (names are unique by
    construction in the catalogue). *)

val pp : Format.formatter -> t -> unit
