type t =
  | Sensor
  | Output
  | Compute
  | Comm
  | Programmable

let equal a b =
  match a, b with
  | Sensor, Sensor | Output, Output | Compute, Compute
  | Comm, Comm | Programmable, Programmable -> true
  | (Sensor | Output | Compute | Comm | Programmable), _ -> false

let to_string = function
  | Sensor -> "sensor"
  | Output -> "output"
  | Compute -> "compute"
  | Comm -> "comm"
  | Programmable -> "programmable"

let pp ppf k = Format.pp_print_string ppf (to_string k)

let is_inner = function
  | Compute | Comm | Programmable -> true
  | Sensor | Output -> false

let partitionable = function
  | Compute -> true
  | Sensor | Output | Comm | Programmable -> false
