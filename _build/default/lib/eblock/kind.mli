(** The four eBlock classes of the paper (§2), plus the programmable
    compute block that synthesis introduces. *)

type t =
  | Sensor        (** detects environmental stimuli; a primary input *)
  | Output        (** interacts with the environment; a primary output *)
  | Compute       (** pre-defined combinational or sequential function *)
  | Comm          (** communication block (wireless, X10, ...) *)
  | Programmable  (** programmable compute block produced by synthesis *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val is_inner : t -> bool
(** Inner nodes are the non-primary-input, non-primary-output nodes the
    partitioner works on: compute, communication, and programmable
    blocks. *)

val partitionable : t -> bool
(** Only pre-defined compute blocks may be absorbed into a programmable
    block.  Communication blocks have physical radio/power-line hardware a
    programmable block cannot provide, and programmable blocks are already
    the result of synthesis. *)
