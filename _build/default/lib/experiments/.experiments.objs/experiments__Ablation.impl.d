lib/experiments/ablation.ml: Core List Netlist Printf Prng Randgen Report
