lib/experiments/ablation.mli:
