lib/experiments/power.ml: Behavior Codegen Designs List Netlist Printf Prng Report Sim
