lib/experiments/power.mli: Designs
