lib/experiments/scale.ml: Core List Netlist Prng Randgen Report
