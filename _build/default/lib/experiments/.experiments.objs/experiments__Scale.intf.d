lib/experiments/scale.mli:
