lib/experiments/table1.ml: Core Designs List Netlist Option Printf Report
