lib/experiments/table1.mli: Designs Netlist
