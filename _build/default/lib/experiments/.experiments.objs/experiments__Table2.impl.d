lib/experiments/table2.ml: Core List Netlist Option Printf Prng Randgen Report
