lib/experiments/table2.mli: Prng Randgen
