type variant = {
  label : string;
  mean_total : float;
  mean_prog : float;
  mean_seconds : float;
  invalid_solutions : int;
}

type runner = Netlist.Graph.t -> Core.Solution.t

let paredown_with config : runner =
  fun g -> (Core.Paredown.run ~config g).Core.Paredown.solution

let variants : (string * runner) list =
  let open Core.Paredown in
  let base = default_config in
  [
    ("paredown (paper)", paredown_with base);
    ( "rank only, no tie-breaks",
      paredown_with { base with tie_breaks = [] } );
    ( "no convexity requirement",
      paredown_with
        {
          base with
          partition_config =
            { Core.Partition.default_config with require_convex = false };
        } );
    ( "net-based pin counting",
      paredown_with
        {
          base with
          partition_config =
            {
              Core.Partition.default_config with
              pin_counting = Core.Partition.Per_net;
            };
        } );
    ( "aggregation baseline",
      fun g -> Core.Aggregation.run g );
    ( "simulated annealing",
      fun g -> (Core.Annealing.run g).Core.Annealing.solution );
    ( "shapes {2x2, 4x4}",
      paredown_with
        {
          base with
          shapes =
            [
              Core.Shape.default;
              Core.Shape.make ~inputs:4 ~outputs:4 ~cost:1.8 ();
            ];
        } );
  ]

let run ?(seed = 7) ?(count = 100) ?(inner = 20) () =
  let rng = Prng.create seed in
  let designs =
    List.init count (fun _ ->
        Randgen.Generator.generate ~rng:(Prng.split rng) ~inner ())
  in
  List.map
    (fun (label, runner) ->
      let measurements =
        List.map
          (fun g ->
            let sol, seconds = Report.Timing.time (fun () -> runner g) in
            let valid =
              match Core.Solution.check g sol with
              | Ok () -> true
              | Error _ -> false
            in
            ( Core.Solution.total_inner_after g sol,
              Core.Solution.programmable_count sol,
              seconds, valid ))
          designs
      in
      {
        label;
        mean_total =
          Report.Stats.mean_int
            (List.map (fun (t, _, _, _) -> t) measurements);
        mean_prog =
          Report.Stats.mean_int
            (List.map (fun (_, p, _, _) -> p) measurements);
        mean_seconds =
          Report.Stats.mean (List.map (fun (_, _, s, _) -> s) measurements);
        invalid_solutions =
          List.length (List.filter (fun (_, _, _, v) -> not v) measurements);
      })
    variants

let to_table variants =
  let headers =
    [ "Variant"; "Mean Total"; "Mean Prog"; "Mean Time"; "Invalid" ]
  in
  let rows =
    List.map
      (fun v ->
        [
          v.label;
          Printf.sprintf "%.2f" v.mean_total;
          Printf.sprintf "%.2f" v.mean_prog;
          Report.Timing.format_seconds v.mean_seconds;
          string_of_int v.invalid_solutions;
        ])
      variants
  in
  Report.Table.render ~headers ~rows ()
