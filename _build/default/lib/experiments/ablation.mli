(** Ablation studies of PareDown's design choices (our additions; see
    DESIGN.md §5).

    Each variant re-runs PareDown over the same random design population
    with one ingredient changed, reporting mean total inner blocks and
    mean runtime:

    - tie-break order reduced to pure rank (no indegree/outdegree/level);
    - convexity requirement disabled (a literal reading of the paper);
    - net-based instead of per-edge pin counting;
    - the greedy aggregation baseline of §4.2;
    - a simulated-annealing partitioner (generic metaheuristic yardstick);
    - multi-shape block libraries (the paper's future-work extension). *)

type variant = {
  label : string;
  mean_total : float;
  mean_prog : float;
  mean_seconds : float;
  invalid_solutions : int;
      (** solutions that fail the default validity check (non-zero only
          for ablations that relax validity, e.g. dropping convexity) *)
}

val run : ?seed:int -> ?count:int -> ?inner:int -> unit -> variant list
(** Defaults: 100 random designs of 20 inner blocks. *)

val to_table : variant list -> string
