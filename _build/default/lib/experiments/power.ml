module Graph = Netlist.Graph

type row = {
  design : string;
  inner_before : int;
  inner_after : int;
  packets_before : int;
  packets_after : int;
  packets_saved_percent : float;
}

let packets_under g script =
  let engine = Sim.Engine.create g in
  let (_ : (int * (Netlist.Node_id.t * Behavior.Ast.value) list) list) =
    Sim.Stimulus.settled_outputs engine script
  in
  Sim.Engine.packet_count engine

let run_design ?(seed = 23) ?(steps = 200) design =
  let g = design.Designs.Design.network in
  let result, _ = Codegen.Replace.synthesize g in
  let g' = result.Codegen.Replace.network in
  let script =
    Sim.Stimulus.random ~rng:(Prng.create seed) ~sensors:(Graph.sensors g)
      ~steps ~spacing:25
  in
  let packets_before = packets_under g script in
  let packets_after = packets_under g' script in
  {
    design = design.Designs.Design.name;
    inner_before = Graph.inner_count g;
    inner_after = Graph.inner_count g';
    packets_before;
    packets_after;
    packets_saved_percent =
      (if packets_before = 0 then 0.
       else
         100.
         *. float_of_int (packets_before - packets_after)
         /. float_of_int packets_before);
  }

let run ?seed ?steps () =
  List.map (run_design ?seed ?steps) Designs.Library.all

let to_table rows =
  let headers =
    [ "Design"; "Inner"; "Inner'"; "Packets"; "Packets'"; "Saved" ]
  in
  let cells r =
    [
      r.design;
      string_of_int r.inner_before;
      string_of_int r.inner_after;
      string_of_int r.packets_before;
      string_of_int r.packets_after;
      Printf.sprintf "%.0f %%" r.packets_saved_percent;
    ]
  in
  Report.Table.render ~headers ~rows:(List.map cells rows) ()
