(** Communication-energy proxy: packets transmitted before and after
    synthesis.

    The paper motivates synthesis with "reducing network size and hence
    network cost and power" (§1) but only quantifies size.  Each packet is
    a serial transmission on a physical connection, so counting packets
    under a common stimulus quantifies the power claim too: connections
    that become variables inside a programmable block stop transmitting
    altogether. *)

type row = {
  design : string;
  inner_before : int;
  inner_after : int;
  packets_before : int;
  packets_after : int;
  packets_saved_percent : float;
}

val run_design : ?seed:int -> ?steps:int -> Designs.Design.t -> row
(** Synthesise with PareDown, drive both networks with the same random
    script, and compare packet counts at quiescence. *)

val run : ?seed:int -> ?steps:int -> unit -> row list
(** Every library design (Table 1 plus the motivating applications). *)

val to_table : row list -> string
