type point = {
  inner : int;
  seconds : float;
  fit_checks : int;
  total : int;
  prog : int;
}

let measure g =
  let result, seconds = Report.Timing.time (fun () -> Core.Paredown.run g) in
  let sol = result.Core.Paredown.solution in
  {
    inner = Netlist.Graph.inner_count g;
    seconds;
    fit_checks = result.Core.Paredown.stats.Core.Paredown.fit_checks;
    total = Core.Solution.total_inner_after g sol;
    prog = Core.Solution.programmable_count sol;
  }

let run_random ?(seed = 465) ?(sizes = [ 50; 100; 200; 465 ]) () =
  let rng = Prng.create seed in
  List.map
    (fun inner ->
      measure (Randgen.Generator.generate ~rng:(Prng.split rng) ~inner ()))
    sizes

let run_worst_case ?(sizes = [ 10; 20; 40; 80 ]) () =
  List.map
    (fun inner -> measure (Randgen.Generator.worst_case ~inner))
    sizes

let to_table points =
  let headers = [ "Inner"; "Time"; "Fit checks"; "Total"; "Prog" ] in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.inner;
          Report.Timing.format_seconds p.seconds;
          string_of_int p.fit_checks;
          string_of_int p.total;
          string_of_int p.prog;
        ])
      points
  in
  Report.Table.render ~headers ~rows ()
