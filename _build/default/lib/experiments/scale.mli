(** The §5.2 scalability claims: PareDown handles a 465-inner-node design
    in seconds, and its main-loop iteration count grows as n·(n+1)/2 on
    the adversarial worst-case family. *)

type point = {
  inner : int;
  seconds : float;
  fit_checks : int;
  total : int;
  prog : int;
}

val run_random :
  ?seed:int -> ?sizes:int list -> unit -> point list
(** PareDown on one random design per size; default sizes
    [50; 100; 200; 465]. *)

val run_worst_case : ?sizes:int list -> unit -> point list
(** PareDown on the worst-case family; [fit_checks] equals n·(n+1)/2
    exactly (candidate k performs k fit tests before isolating a single
    block). *)

val to_table : point list -> string
