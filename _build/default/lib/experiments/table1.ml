module Graph = Netlist.Graph

type algorithm_result = {
  total : int;
  prog : int;
  seconds : float;
}

type row = {
  design : Designs.Design.t;
  inner_original : int;
  exhaustive : algorithm_result option;
  paredown : algorithm_result;
  block_overhead : int option;
  percent_overhead : float option;
}

type config = {
  exhaustive_cutoff : int;
  exhaustive_deadline_s : float;
  timing_repeats : int;
}

let default_config = {
  exhaustive_cutoff = 11;
  exhaustive_deadline_s = 60.0;
  timing_repeats = 3;
}

let measure_paredown ~config g =
  let result, seconds =
    Report.Timing.time_best_of ~repeats:config.timing_repeats (fun () ->
        Core.Paredown.run g)
  in
  let sol = result.Core.Paredown.solution in
  {
    total = Core.Solution.total_inner_after g sol;
    prog = Core.Solution.programmable_count sol;
    seconds;
  }

let measure_exhaustive ~config g =
  if Graph.inner_count g > config.exhaustive_cutoff then None
  else begin
    let result, seconds =
      Report.Timing.time (fun () ->
          Core.Exhaustive.run ~deadline_s:config.exhaustive_deadline_s g)
    in
    match result.Core.Exhaustive.outcome with
    | Core.Exhaustive.Timed_out -> None
    | Core.Exhaustive.Optimal ->
      let sol = result.Core.Exhaustive.solution in
      Some
        {
          total = Core.Solution.total_inner_after g sol;
          prog = Core.Solution.programmable_count sol;
          seconds;
        }
  end

let run_design ?(config = default_config) design =
  let g = design.Designs.Design.network in
  let paredown = measure_paredown ~config g in
  let exhaustive = measure_exhaustive ~config g in
  let block_overhead =
    Option.map (fun e -> paredown.total - e.total) exhaustive
  in
  let percent_overhead =
    Option.map
      (fun e ->
        Report.Stats.percent_increase ~baseline:(float_of_int e.total)
          (float_of_int paredown.total))
      exhaustive
  in
  {
    design;
    inner_original = Graph.inner_count g;
    exhaustive;
    paredown;
    block_overhead;
    percent_overhead;
  }

let run ?config () = List.map (run_design ?config) Designs.Library.table1

let headers =
  [
    "Inner"; "Design Name"; "Exh Total"; "Exh Prog"; "Exh Time";
    "PD Total"; "PD Prog"; "PD Time"; "Overhead"; "% Overhead";
    "Paper (PD)";
  ]

let dash = "--"

let row_cells r =
  let exh f = match r.exhaustive with Some e -> f e | None -> dash in
  let paper =
    match r.design.Designs.Design.paper with
    | Some p ->
      Printf.sprintf "%d/%d" p.Designs.Design.paredown_total p.Designs.Design.paredown_prog
    | None -> dash
  in
  [
    string_of_int r.inner_original;
    r.design.Designs.Design.name;
    exh (fun e -> string_of_int e.total);
    exh (fun e -> string_of_int e.prog);
    exh (fun e -> Report.Timing.format_seconds e.seconds);
    string_of_int r.paredown.total;
    string_of_int r.paredown.prog;
    Report.Timing.format_seconds r.paredown.seconds;
    (match r.block_overhead with Some o -> string_of_int o | None -> dash);
    (match r.percent_overhead with
     | Some p -> Printf.sprintf "%.0f %%" p
     | None -> dash);
    paper;
  ]

let to_table rows =
  let aligns = Report.Table.[ Right; Left ] in
  Report.Table.render ~aligns ~headers ~rows:(List.map row_cells rows) ()

let to_csv rows =
  Report.Table.render_csv ~headers ~rows:(List.map row_cells rows)
