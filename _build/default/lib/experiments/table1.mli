(** Regenerates Table 1: exhaustive search vs PareDown on the 15 library
    designs. *)

module Graph = Netlist.Graph

type algorithm_result = {
  total : int;   (** Inner Blocks (Total) after partitioning *)
  prog : int;    (** Inner Blocks (Prog.) *)
  seconds : float;
}

type row = {
  design : Designs.Design.t;
  inner_original : int;
  exhaustive : algorithm_result option;
      (** [None] when the design exceeds the exhaustive cutoff or the
          search timed out — the paper's "--" *)
  paredown : algorithm_result;
  block_overhead : int option;  (** paredown.total - exhaustive.total *)
  percent_overhead : float option;
}

type config = {
  exhaustive_cutoff : int;
      (** largest inner-block count attempted exhaustively *)
  exhaustive_deadline_s : float;
  timing_repeats : int;
      (** best-of repeats for the sub-millisecond PareDown timings *)
}

val default_config : config
(** cutoff 11, deadline 60 s, 3 repeats. *)

val run_design : ?config:config -> Designs.Design.t -> row

val run : ?config:config -> unit -> row list
(** All 15 designs in table order. *)

val to_table : row list -> string
(** Rendered like the paper's Table 1, with a paper-vs-measured suffix
    column. *)

val to_csv : row list -> string
