lib/netlist/cut.ml: Graph List Node_id
