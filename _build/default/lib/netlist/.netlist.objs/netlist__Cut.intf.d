lib/netlist/cut.mli: Graph Node_id
