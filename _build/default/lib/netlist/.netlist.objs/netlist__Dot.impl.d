lib/netlist/dot.ml: Buffer Eblock Fun Graph List Node_id Printf String
