lib/netlist/dot.mli: Graph Node_id
