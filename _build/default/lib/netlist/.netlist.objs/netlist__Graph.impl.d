lib/netlist/graph.ml: Descriptor Eblock Format Hashtbl Int Kind List Node_id Option
