lib/netlist/graph.mli: Eblock Format Node_id
