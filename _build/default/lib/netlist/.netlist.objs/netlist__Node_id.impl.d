lib/netlist/node_id.ml: Format Int Map Set
