lib/netlist/node_id.mli: Format Map Set
