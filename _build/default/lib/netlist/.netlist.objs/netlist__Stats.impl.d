lib/netlist/stats.ml: Eblock Format Graph Hashtbl List Node_id
