lib/netlist/stats.mli: Format Graph
