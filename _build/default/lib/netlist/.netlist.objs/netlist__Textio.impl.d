lib/netlist/textio.ml: Array Behavior Buffer Eblock Format Fun Graph Hashtbl List Printf String
