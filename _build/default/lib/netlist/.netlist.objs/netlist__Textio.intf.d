lib/netlist/textio.mli: Graph
