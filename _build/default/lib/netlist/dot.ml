let node_shape kind =
  match kind with
  | Eblock.Kind.Sensor -> "house"
  | Eblock.Kind.Output -> "invhouse"
  | Eblock.Kind.Compute -> "box"
  | Eblock.Kind.Comm -> "diamond"
  | Eblock.Kind.Programmable -> "doubleoctagon"

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_string ?(highlight = []) ?title g =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph eblocks {\n";
  out "  rankdir=LR;\n";
  (match title with
   | Some t -> out "  label=\"%s\";\n" (escape t)
   | None -> ());
  let in_highlight id =
    List.exists (fun set -> Node_id.Set.mem id set) highlight
  in
  List.iter
    (fun id ->
      let n = Graph.node g id in
      let d = n.Graph.descriptor in
      out "  n%d [shape=%s, label=\"%d: %s\"];\n" id
        (node_shape d.Eblock.Descriptor.kind)
        id
        (escape d.Eblock.Descriptor.name))
    (List.filter (fun id -> not (in_highlight id)) (Graph.node_ids g));
  List.iteri
    (fun i set ->
      out "  subgraph cluster_%d {\n" i;
      out "    style=dashed;\n";
      out "    label=\"partition %d\";\n" i;
      Node_id.Set.iter
        (fun id ->
          let n = Graph.node g id in
          let d = n.Graph.descriptor in
          out "    n%d [shape=%s, label=\"%d: %s\"];\n" id
            (node_shape d.Eblock.Descriptor.kind)
            id
            (escape d.Eblock.Descriptor.name))
        set;
      out "  }\n")
    highlight;
  List.iter
    (fun e ->
      out "  n%d -> n%d [taillabel=\"%d\", headlabel=\"%d\"];\n"
        e.Graph.src.Graph.node e.Graph.dst.Graph.node
        e.Graph.src.Graph.port e.Graph.dst.Graph.port)
    (Graph.edges g);
  out "}\n";
  Buffer.contents buf

let write_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))
