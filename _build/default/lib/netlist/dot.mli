(** Graphviz export, for inspecting designs and synthesis results. *)

val to_string :
  ?highlight:Node_id.Set.t list ->
  ?title:string ->
  Graph.t ->
  string
(** Render the network as a [digraph].  Each set in [highlight] becomes a
    dashed cluster (used to visualise candidate partitions).  Sensors are
    drawn as houses, primary outputs as inverted houses, communication
    blocks as diamonds, programmable blocks as double octagons. *)

val write_file : string -> Graph.t -> unit
