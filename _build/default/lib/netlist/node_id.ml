type t = int

let compare = Int.compare
let equal = Int.equal
let pp = Format.pp_print_int
let to_string = string_of_int

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list ids = Set.of_list ids

let pp_set ppf set =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp)
    (Set.elements set)
