type t = {
  nodes : int;
  edges : int;
  sensors : int;
  primary_outputs : int;
  inner : int;
  compute : int;
  comm : int;
  programmable : int;
  depth : int;
  max_fanout : int;
  max_fanin : int;
  reconvergences : int;
  total_cost : float;
}

(* For each node, the set of sensors it (transitively) depends on; built
   in topological order. *)
let sensor_ancestry g =
  let ancestry = Hashtbl.create 32 in
  List.iter
    (fun id ->
      let own =
        match Graph.kind g id with
        | Eblock.Kind.Sensor -> Node_id.Set.singleton id
        | Eblock.Kind.Output | Eblock.Kind.Compute | Eblock.Kind.Comm
        | Eblock.Kind.Programmable -> Node_id.Set.empty
      in
      let inherited =
        List.fold_left
          (fun acc pred ->
            match Hashtbl.find_opt ancestry pred with
            | Some s -> Node_id.Set.union acc s
            | None -> acc)
          own (Graph.preds g id)
      in
      Hashtbl.replace ancestry id inherited)
    (Graph.topological_order g);
  ancestry

let count_reconvergences g =
  let ancestry = sensor_ancestry g in
  let shared_ancestor id =
    let driver_sets =
      List.filter_map
        (fun e ->
          Hashtbl.find_opt ancestry e.Graph.src.Graph.node)
        (Graph.fanin g id)
    in
    let rec overlapping = function
      | [] | [ _ ] -> false
      | s :: rest ->
        List.exists
          (fun s' -> not (Node_id.Set.is_empty (Node_id.Set.inter s s')))
          rest
        || overlapping rest
    in
    overlapping driver_sets
  in
  List.length
    (List.filter
       (fun id -> Graph.in_degree g id >= 2 && shared_ancestor id)
       (Graph.node_ids g))

let count_kind g kind =
  List.length
    (List.filter
       (fun id -> Eblock.Kind.equal (Graph.kind g id) kind)
       (Graph.node_ids g))

let compute g =
  let levels = Graph.levels g in
  let depth = Node_id.Map.fold (fun _ l acc -> max l acc) levels 0 in
  let fold_degree f =
    List.fold_left (fun acc id -> max acc (f g id)) 0 (Graph.node_ids g)
  in
  {
    nodes = Graph.node_count g;
    edges = Graph.edge_count g;
    sensors = List.length (Graph.sensors g);
    primary_outputs = List.length (Graph.primary_outputs g);
    inner = Graph.inner_count g;
    compute = count_kind g Eblock.Kind.Compute;
    comm = count_kind g Eblock.Kind.Comm;
    programmable = count_kind g Eblock.Kind.Programmable;
    depth;
    max_fanout = fold_degree Graph.out_degree;
    max_fanin = fold_degree Graph.in_degree;
    reconvergences = count_reconvergences g;
    total_cost = Graph.total_cost g;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>nodes: %d (%d sensors, %d outputs, %d inner)@,\
     inner mix: %d compute, %d comm, %d programmable@,\
     edges: %d, depth: %d, max fanout: %d, max fanin: %d@,\
     reconvergent nodes: %d@,\
     total block cost: %.1f@]"
    s.nodes s.sensors s.primary_outputs s.inner s.compute s.comm
    s.programmable s.edges s.depth s.max_fanout s.max_fanin
    s.reconvergences s.total_cost
