(** Structural statistics of a network — the quantities the paper's
    evaluation varies ("designs of varying depths (maximum block level)
    and size") plus the structure that drives partitioning difficulty. *)

type t = {
  nodes : int;
  edges : int;
  sensors : int;
  primary_outputs : int;
  inner : int;
  compute : int;
  comm : int;
  programmable : int;
  depth : int;
      (** maximum level over all nodes (0 for a sensors-only network) *)
  max_fanout : int;      (** largest out-degree of any node *)
  max_fanin : int;       (** largest in-degree of any node *)
  reconvergences : int;
      (** nodes with >= 2 inputs whose drivers share a common sensor
          ancestor — the structures that make candidate pin counts shrink
          under merging (and the ones behind timing hazards) *)
  total_cost : float;
}

val compute : Graph.t -> t
(** Requires an acyclic graph (levels are involved). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)
