exception Parse_error of { line : int; message : string }

let parse_error line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)

let kind_name = Eblock.Kind.to_string

let value_name = Behavior.Ast.value_to_string

(* Descriptors that the catalogue cannot reconstruct by name (custom and
   programmable blocks) are emitted as defblock sections. *)
let custom_descriptors g =
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun id ->
      let d = Graph.descriptor g id in
      let name = d.Eblock.Descriptor.name in
      if (not (Hashtbl.mem by_name name))
         && Eblock.Catalog.of_name name = None
      then Hashtbl.replace by_name name d)
    (Graph.node_ids g);
  Hashtbl.fold (fun _ d acc -> d :: acc) by_name []
  |> List.sort (fun a b ->
         String.compare a.Eblock.Descriptor.name b.Eblock.Descriptor.name)

let emit_defblock buf (d : Eblock.Descriptor.t) =
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let default_init =
    Array.for_all
      (fun v -> v = Behavior.Ast.Bool false)
      d.Eblock.Descriptor.output_init
  in
  out "defblock %s %s %d %d" d.Eblock.Descriptor.name
    (kind_name d.Eblock.Descriptor.kind)
    d.Eblock.Descriptor.n_inputs d.Eblock.Descriptor.n_outputs;
  if not default_init then begin
    out " init";
    Array.iter
      (fun v -> out " %s" (value_name v))
      d.Eblock.Descriptor.output_init
  end;
  out " {\n";
  let body =
    Format.asprintf "%a" Behavior.Ast.pp_program d.Eblock.Descriptor.behavior
  in
  String.split_on_char '\n' body
  |> List.iter (fun line -> if line <> "" then out "  %s\n" line);
  out "}\n"

let to_string ?name g =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match name with Some n -> out "network %s\n" n | None -> ());
  List.iter (emit_defblock buf) (custom_descriptors g);
  List.iter
    (fun id ->
      let n = Graph.node g id in
      let d = n.Graph.descriptor in
      if String.equal n.Graph.label (string_of_int id) then
        out "node %d %s\n" id d.Eblock.Descriptor.name
      else out "node %d %s %s\n" id d.Eblock.Descriptor.name n.Graph.label)
    (Graph.node_ids g);
  List.iter
    (fun e ->
      out "edge %d.%d %d.%d\n"
        e.Graph.src.Graph.node e.Graph.src.Graph.port
        e.Graph.dst.Graph.node e.Graph.dst.Graph.port)
    (Graph.edges g);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_endpoint lineno word =
  match String.split_on_char '.' word with
  | [ node; port ] ->
    (match int_of_string_opt node, int_of_string_opt port with
     | Some node, Some port -> (node, port)
     | _ -> parse_error lineno "malformed endpoint %S" word)
  | _ -> parse_error lineno "malformed endpoint %S (expected id.port)" word

let kind_of_name lineno = function
  | "sensor" -> Eblock.Kind.Sensor
  | "output" -> Eblock.Kind.Output
  | "compute" -> Eblock.Kind.Compute
  | "comm" -> Eblock.Kind.Comm
  | "programmable" -> Eblock.Kind.Programmable
  | other -> parse_error lineno "unknown block kind %S" other

let value_of_name lineno = function
  | "true" -> Behavior.Ast.Bool true
  | "false" -> Behavior.Ast.Bool false
  | word ->
    (match int_of_string_opt word with
     | Some v -> Behavior.Ast.Int v
     | None -> parse_error lineno "malformed initial value %S" word)

let int_of lineno what word =
  match int_of_string_opt word with
  | Some v -> v
  | None -> parse_error lineno "malformed %s %S" what word

(* defblock header: name kind nin nout [init v...] { *)
let parse_defblock_header lineno words =
  match words with
  | name :: kind :: nin :: nout :: rest ->
    let kind = kind_of_name lineno kind in
    let n_inputs = int_of lineno "input arity" nin in
    let n_outputs = int_of lineno "output arity" nout in
    let output_init =
      match rest with
      | [ "{" ] -> None
      | "init" :: values_and_brace ->
        (match List.rev values_and_brace with
         | "{" :: values_rev ->
           Some
             (Array.of_list
                (List.rev_map (value_of_name lineno) values_rev))
         | _ -> parse_error lineno "defblock header must end with '{'")
      | _ -> parse_error lineno "defblock header must end with '{'"
    in
    (name, kind, n_inputs, n_outputs, output_init)
  | _ ->
    parse_error lineno
      "malformed defblock (expected: defblock <name> <kind> <in> <out> \
       [init <v>...] {)"

type parser_state = {
  mutable name : string option;
  mutable graph : Graph.t;
  custom : (string, Eblock.Descriptor.t) Hashtbl.t;
  (* when inside a defblock: header info and accumulated body lines *)
  mutable open_block :
    (int * string * Eblock.Kind.t * int * int
     * Behavior.Ast.value array option * Buffer.t)
      option;
}

let strip_comment raw =
  match String.index_opt raw '#' with
  | Some i -> String.sub raw 0 i
  | None -> raw

let close_defblock st lineno =
  match st.open_block with
  | None -> parse_error lineno "'}' without an open defblock"
  | Some (header_line, name, kind, n_inputs, n_outputs, output_init, body) ->
    st.open_block <- None;
    if Hashtbl.mem st.custom name then
      parse_error header_line "duplicate defblock %S" name;
    let behavior =
      try Behavior.Parse.program (Buffer.contents body) with
      | Behavior.Parse.Syntax_error { line; column; message } ->
        parse_error (header_line + line)
          "in defblock %s (column %d): %s" name column message
    in
    let cost = Eblock.Cost.of_kind kind in
    (try
       Hashtbl.replace st.custom name
         (Eblock.Descriptor.make ~name ~kind ~n_inputs ~n_outputs ~behavior
            ?output_init ~cost ())
     with Eblock.Descriptor.Invalid_descriptor msg ->
       parse_error header_line "invalid defblock: %s" msg)

let resolve_descriptor st lineno name =
  match Hashtbl.find_opt st.custom name with
  | Some d -> d
  | None ->
    (match Eblock.Catalog.of_name name with
     | Some d -> d
     | None -> parse_error lineno "unknown block type %S" name)

let parse_line st lineno raw =
  match st.open_block with
  | Some (_, _, _, _, _, _, body) ->
    (* only an unindented '}' terminates the block: the emitted body is
       indented, so nested closing braces never start a line *)
    if String.length raw > 0 && raw.[0] = '}' then close_defblock st lineno
    else begin
      Buffer.add_string body raw;
      Buffer.add_char body '\n'
    end
  | None ->
    let line = strip_comment raw in
    (match split_words line with
     | [] -> ()
     | "network" :: rest -> st.name <- Some (String.concat " " rest)
     | "defblock" :: rest ->
       let name, kind, n_inputs, n_outputs, output_init =
         parse_defblock_header lineno rest
       in
       st.open_block <-
         Some (lineno, name, kind, n_inputs, n_outputs, output_init,
               Buffer.create 128)
     | "node" :: id :: desc_name :: label_words ->
       let id = int_of lineno "node id" id in
       let label =
         match label_words with
         | [] -> None
         | words -> Some (String.concat " " words)
       in
       let d = resolve_descriptor st lineno desc_name in
       (try st.graph <- fst (Graph.add ~id ?label st.graph d) with
        | Graph.Structural_error msg -> parse_error lineno "%s" msg)
     | [ "edge"; src; dst ] ->
       let src = parse_endpoint lineno src in
       let dst = parse_endpoint lineno dst in
       (try st.graph <- Graph.connect st.graph ~src ~dst with
        | Graph.Structural_error msg -> parse_error lineno "%s" msg)
     | word :: _ -> parse_error lineno "unknown directive %S" word)

let of_string text =
  let st = {
    name = None;
    graph = Graph.empty;
    custom = Hashtbl.create 4;
    open_block = None;
  }
  in
  List.iteri
    (fun index raw -> parse_line st (index + 1) raw)
    (String.split_on_char '\n' text);
  (match st.open_block with
   | Some (header_line, name, _, _, _, _, _) ->
     parse_error header_line "defblock %s is never closed" name
   | None -> ());
  (st.name, st.graph)

let write_file path ?name g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name g))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
