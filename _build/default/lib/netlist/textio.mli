(** A line-oriented textual netlist format, so designs — including
    synthesised ones — can be saved, versioned, and fed to the
    command-line tools.

    Grammar ([#] starts a comment; blank lines are ignored):
    {v
    network <name>
    defblock <name> <kind> <n-inputs> <n-outputs> [init <v> ...] {
      <behaviour-language source, see Behavior.Parse>
    }
    node <id> <descriptor-name> [<label>]
    edge <src-id>.<src-port> <dst-id>.<dst-port>
    v}

    [node] descriptor names resolve first against the file's [defblock]
    definitions, then through {!Eblock.Catalog.of_name} (so parameterised
    catalogue blocks appear as e.g. [delay(10)]).  [kind] is one of
    [sensor], [output], [compute], [comm], [programmable]; the optional
    [init] clause lists each output port's power-on value ([true], [false]
    or an integer; default all [false]).

    {!to_string} emits a [defblock] for every descriptor that is not a
    catalogue block — in particular for the programmable blocks produced
    by synthesis — so any network round-trips. *)

exception Parse_error of { line : int; message : string }

val to_string : ?name:string -> Graph.t -> string

val of_string : string -> string option * Graph.t
(** Returns the declared network name (if any) and the parsed graph.
    Raises {!Parse_error} on syntax errors, unknown descriptors, or
    structural errors (reported with the offending line number). *)

val write_file : string -> ?name:string -> Graph.t -> unit
val read_file : string -> string option * Graph.t
