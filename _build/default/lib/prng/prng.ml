type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let create seed = { state = Int64.of_int seed }

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62
     so the bias is negligible for simulation purposes. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. v /. 9007199254740992.0

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | items -> List.nth items (int t (List.length items))

let shuffle t items =
  let arr = Array.of_list items in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
