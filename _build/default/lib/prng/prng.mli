(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Experiments must be reproducible run-to-run, so every randomised
    component (design generator, stimulus generator, property tests'
    fixtures) threads one of these explicitly instead of using the global
    [Random] state. *)

type t

val create : int -> t
(** A generator seeded with the given value; equal seeds give equal
    streams. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1].  [bound] must be
    positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] draws uniformly from [[0, bound)]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice; the list must be non-empty. *)

val shuffle : t -> 'a list -> 'a list
