lib/randgen/generator.ml: Eblock Hashtbl List Netlist Prng
