lib/randgen/generator.mli: Netlist Prng
