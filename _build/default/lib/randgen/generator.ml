module Graph = Netlist.Graph
module C = Eblock.Catalog

type profile = {
  comm_probability : float;
  wide_probability : float;
  sequential_probability : float;
  sensor_bias : float;
}

let default_profile = {
  comm_probability = 0.08;
  wide_probability = 0.06;
  sequential_probability = 0.45;
  sensor_bias = 0.35;
}

let sensors = [ C.button; C.contact_switch; C.motion_sensor;
                C.light_sensor; C.sound_sensor; C.magnet_sensor ]

let outputs = [ C.led; C.buzzer; C.relay ]

let narrow_combinational rng =
  Prng.pick rng [ C.not_gate; C.and2; C.or2; C.xor2; C.nand2; C.nor2;
                  C.splitter2 ]

let narrow_sequential rng =
  match Prng.int rng 6 with
  | 0 -> C.toggle
  | 1 -> C.trip_latch
  | 2 -> C.trip_reset
  | 3 -> C.pulse_gen ~width:(2 + Prng.int rng 8)
  | 4 -> C.delay ~ticks:(2 + Prng.int rng 8)
  | _ -> C.prolong ~ticks:(2 + Prng.int rng 8)

let wide_gate rng =
  match Prng.int rng 3 with
  | 0 -> C.and3
  | 1 -> C.or3
  | _ -> C.truth_table3 ~table:(Prng.int rng 256)

let pick_inner_descriptor ~profile rng =
  if Prng.float rng 1.0 < profile.comm_probability then C.x10_link
  else if Prng.float rng 1.0 < profile.wide_probability then wide_gate rng
  else if Prng.float rng 1.0 < profile.sequential_probability then
    narrow_sequential rng
  else narrow_combinational rng

let generate ?(profile = default_profile) ~rng ~inner () =
  if inner < 1 then invalid_arg "Generator.generate: inner must be >= 1";
  (* Every source is an (id, port) pair that can still drive further
     consumers; inner outputs additionally remember whether anything
     consumes them yet. *)
  let g = ref Graph.empty in
  let sources = ref [] in  (* (id, port) of all connectable outputs *)
  let unconsumed = Hashtbl.create 16 in  (* inner (id, port) -> true *)
  let new_sensor () =
    let g', id = Graph.add !g (Prng.pick rng sensors) in
    g := g';
    sources := (id, 0) :: !sources;
    (id, 0)
  in
  let pick_source () =
    if !sources = [] || Prng.float rng 1.0 < profile.sensor_bias then
      new_sensor ()
    else Prng.pick rng !sources
  in
  for _ = 1 to inner do
    let d = pick_inner_descriptor ~profile rng in
    (* Choose drivers before adding the node, so a block never feeds
       itself and the graph stays acyclic. *)
    let drivers =
      List.init d.Eblock.Descriptor.n_inputs (fun _ -> pick_source ())
    in
    let g', id = Graph.add !g d in
    g := g';
    List.iteri
      (fun port (src_id, src_port) ->
        g := Graph.connect !g ~src:(src_id, src_port) ~dst:(id, port);
        Hashtbl.remove unconsumed (src_id, src_port))
      drivers;
    for port = 0 to d.Eblock.Descriptor.n_outputs - 1 do
      sources := (id, port) :: !sources;
      Hashtbl.replace unconsumed (id, port) true
    done
  done;
  (* Give every dangling inner output a primary output block, and make
     sure at least one output block exists. *)
  let dangling =
    Hashtbl.fold (fun src _ acc -> src :: acc) unconsumed []
    |> List.sort compare
  in
  let attach_output (src_id, src_port) =
    let g', out_id = Graph.add !g (Prng.pick rng outputs) in
    g := g';
    g := Graph.connect !g ~src:(src_id, src_port) ~dst:(out_id, 0)
  in
  List.iter attach_output dangling;
  if Graph.primary_outputs !g = [] then begin
    (* All inner outputs were consumed internally (possible only when the
       last block is a sink-less cycle breaker; attach to any source). *)
    match !sources with
    | src :: _ -> attach_output src
    | [] -> assert false
  end;
  if Graph.sensors !g = [] then ignore (new_sensor ());
  !g

let worst_case ~inner =
  if inner < 1 then invalid_arg "Generator.worst_case: inner must be >= 1";
  let g = ref Graph.empty in
  for i = 0 to inner - 1 do
    let base = i * 4 in
    let add ~id d = g := fst (Graph.add ~id:(base + id) !g d) in
    add ~id:1 C.button;
    add ~id:2 C.button;
    add ~id:3 C.and2;
    add ~id:4 C.led;
    g := Graph.connect !g ~src:(base + 1, 0) ~dst:(base + 3, 0);
    g := Graph.connect !g ~src:(base + 2, 0) ~dst:(base + 3, 1);
    g := Graph.connect !g ~src:(base + 3, 0) ~dst:(base + 4, 0)
  done;
  !g
