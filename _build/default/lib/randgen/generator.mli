(** Random eBlock network generator — the analogue of the paper's
    "randomized eBlock system generator able to generate eBlock networks
    of varying sizes" used for Table 2.

    Construction is by position: inner blocks are drawn left to right and
    every input port connects to a uniformly chosen earlier source (an
    earlier inner block's output or a sensor), so the result is acyclic by
    construction; any inner output port left without a consumer gets an
    output block.  Generated networks always pass
    [Netlist.Graph.validate]. *)

module Graph = Netlist.Graph

type profile = {
  comm_probability : float;
      (** chance an inner block is a communication link *)
  wide_probability : float;
      (** chance of a 3-input gate (which can never fit a 2x2 block) *)
  sequential_probability : float;
      (** chance a 1-input block is sequential rather than combinational *)
  sensor_bias : float;
      (** chance an input connects to a (possibly new) sensor rather than
          an earlier inner block *)
}

val default_profile : profile
(** Mix resembling the real designs: mostly small gates and sequential
    blocks, occasional comm links and wide gates. *)

val generate : ?profile:profile -> rng:Prng.t -> inner:int -> unit -> Graph.t
(** A valid network with exactly [inner] inner blocks.
    Raises [Invalid_argument] if [inner < 1]. *)

val worst_case : inner:int -> Graph.t
(** The paper's worst-case family for the complexity analysis (§4.2):
    every inner block fits a programmable block by itself but no two can
    be combined (each needs two dedicated sensor inputs), forcing the
    n·(n+1)/2 iteration behaviour. *)
