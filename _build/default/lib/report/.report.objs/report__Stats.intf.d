lib/report/stats.mli:
