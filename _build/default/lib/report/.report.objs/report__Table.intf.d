lib/report/table.mli:
