lib/report/timing.ml: Printf Unix
