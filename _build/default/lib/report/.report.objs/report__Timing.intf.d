lib/report/timing.mli:
