let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let squares = List.map (fun x -> (x -. m) ** 2.) xs in
    sqrt (mean squares)

let sorted xs = List.sort Float.compare xs

let median xs =
  match sorted xs with
  | [] -> 0.
  | s ->
    let n = List.length s in
    if n mod 2 = 1 then List.nth s (n / 2)
    else (List.nth s ((n / 2) - 1) +. List.nth s (n / 2)) /. 2.

let minimum = function [] -> 0. | xs -> List.fold_left Float.min infinity xs
let maximum = function
  | [] -> 0.
  | xs -> List.fold_left Float.max neg_infinity xs

let mean_int xs = mean (List.map float_of_int xs)

let percent_increase ~baseline value =
  if baseline = 0. then 0. else (value -. baseline) /. baseline *. 100.
