(** Small summary statistics used by the experiment tables. *)

val mean : float list -> float
(** 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val median : float list -> float
val minimum : float list -> float
val maximum : float list -> float

val mean_int : int list -> float
val percent_increase : baseline:float -> float -> float
(** [(value - baseline) / baseline * 100.]; 0 when the baseline is 0. *)
