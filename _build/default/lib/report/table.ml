type align =
  | Left
  | Right

let pad align width cell =
  let missing = width - String.length cell in
  if missing <= 0 then cell
  else
    match align with
    | Left -> cell ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ cell

let normalise n row =
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let render ?aligns ~headers ~rows () =
  let n = List.length headers in
  let rows = List.map (normalise n) rows in
  let aligns =
    match aligns with
    | Some a ->
      if List.length a >= n then a
      else a @ List.init (n - List.length a) (fun _ -> Right)
    | None -> Left :: List.init (max 0 (n - 1)) (fun _ -> Right)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let render_row cells =
    let parts =
      List.mapi
        (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
        (normalise n cells)
    in
    String.concat "  " parts
  in
  let separator =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n"
    (render_row headers :: separator :: List.map render_row rows)
  ^ "\n"

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let render_csv ~headers ~rows =
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line headers :: List.map line rows) ^ "\n"
