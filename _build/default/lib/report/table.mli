(** Plain-text column-aligned tables, in the spirit of the paper's
    Table 1 and Table 2. *)

type align =
  | Left
  | Right

val render :
  ?aligns:align list ->
  headers:string list ->
  rows:string list list ->
  unit ->
  string
(** Columns are padded to their widest cell; [aligns] defaults to [Left]
    for the first column and [Right] for the rest.  Rows shorter than the
    header are padded with empty cells. *)

val render_csv : headers:string list -> rows:string list list -> string
(** The same data as RFC-4180-ish CSV (cells containing commas or quotes
    are quoted). *)
