lib/sim/engine.ml: Array Behavior Eblock Hashtbl List Map Netlist Printf Prng
