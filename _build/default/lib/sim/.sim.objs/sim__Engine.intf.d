lib/sim/engine.mli: Behavior Netlist
