lib/sim/equiv.ml: Behavior Engine Format Hashtbl List Netlist Prng Stimulus
