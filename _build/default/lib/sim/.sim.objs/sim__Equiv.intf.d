lib/sim/equiv.mli: Behavior Format Netlist Stimulus
