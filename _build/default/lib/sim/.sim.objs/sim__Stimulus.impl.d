lib/sim/stimulus.ml: Engine Format Hashtbl Int List Netlist Prng
