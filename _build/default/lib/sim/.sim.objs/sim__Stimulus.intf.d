lib/sim/stimulus.mli: Behavior Engine Format Netlist Prng
