lib/sim/vcd.ml: Behavior Bool Buffer Char Eblock Engine Fun Hashtbl List Netlist Printf Stimulus String
