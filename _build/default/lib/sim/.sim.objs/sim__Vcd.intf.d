lib/sim/vcd.mli: Netlist Stimulus
