(** Observational equivalence of two networks by co-simulation.

    Synthesis must not change what a user observes: after every sensor
    change, once both networks are quiescent, every primary output must
    show the same value.  (Transient timing legitimately differs — a
    programmable block collapses several packet hops into one — so only
    settled values are compared, matching the paper's "behaviourally
    correct ... obeys general high-level timing" simulation contract.)

    Both networks must expose the same sensor and primary-output node ids,
    which is guaranteed by the synthesis rewriter (it only touches inner
    nodes). *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type mismatch = {
  at_time : int;
  output : Node_id.t;
  reference : Behavior.Ast.value;
  candidate : Behavior.Ast.value;
}

val pp_mismatch : Format.formatter -> mismatch -> unit

val check :
  reference:Graph.t ->
  candidate:Graph.t ->
  Stimulus.script ->
  (unit, mismatch) result
(** Run the script against both networks, comparing settled outputs after
    each step.  Raises [Invalid_argument] if the two networks do not have
    identical sensor and primary-output id sets. *)

val check_random :
  reference:Graph.t ->
  candidate:Graph.t ->
  seed:int ->
  steps:int ->
  (unit, mismatch) result
(** {!check} with a random script over the reference's sensors. *)

val race_sensitive : Graph.t -> Stimulus.script -> bool
(** True when the network's settled outputs under the script depend on how
    simultaneous packets are ordered (simulated with {!Engine.Fifo} and
    compared against {!Engine.Lifo} and several {!Engine.Shuffled}
    orders).  Such designs — e.g. a
    latch reached by two same-length paths from one sensor — behave
    nondeterministically on physical eBlocks as well; equivalence of a
    synthesis result is only meaningful for race-free designs. *)

val race_sensitive_random : Graph.t -> seed:int -> steps:int -> bool
(** {!race_sensitive} with a random script (same construction as
    {!check_random}). *)

val timing_sensitive : Graph.t -> Stimulus.script -> bool
(** {!race_sensitive}, plus sensitivity to per-connection packet latency:
    the script is replayed under several pseudo-random edge-delay
    assignments and the settled outputs compared.  This additionally
    catches {e path-length hazards} — e.g. a latch tripped by a transient
    ordering of a signal and its own reset — whose behaviour the merged
    programmable block (which evaluates members in level order with no
    transport delay) legitimately does not reproduce.  Synthesis is
    behaviour-preserving exactly for timing-insensitive designs; all
    library designs are timing-insensitive (asserted in the test
    suite). *)

val timing_sensitive_random : Graph.t -> seed:int -> steps:int -> bool
