test/test_aggregation.ml: Alcotest Core Designs Eblock List Netlist QCheck Testlib
