test/test_aggregation.mli:
