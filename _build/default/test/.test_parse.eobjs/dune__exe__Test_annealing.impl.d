test/test_annealing.ml: Alcotest Core Designs Netlist Prng QCheck Randgen Testlib
