test/test_behavior.ml: Alcotest Array Behavior Eblock List QCheck String Testlib
