test/test_codegen.ml: Alcotest Array Behavior Codegen Core Designs Eblock Filename Format List Netlist Printf Prng QCheck Randgen Result Sim String Sys Testlib
