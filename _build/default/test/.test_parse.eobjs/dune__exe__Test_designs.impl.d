test/test_designs.ml: Alcotest Behavior Core Designs Eblock Format List Netlist Printf Prng Result Sim String Testlib
