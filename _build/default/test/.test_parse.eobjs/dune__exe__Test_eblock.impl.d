test/test_eblock.ml: Alcotest Array Behavior Bool Eblock Fun List Printf String Testlib
