test/test_eblock.mli:
