test/test_exhaustive.ml: Alcotest Core Designs Eblock List Netlist Prng QCheck Randgen Testlib
