test/test_experiments.ml: Alcotest Designs Experiments List Printf Report String Testlib
