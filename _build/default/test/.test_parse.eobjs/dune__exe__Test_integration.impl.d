test/test_integration.ml: Alcotest Codegen Core Designs Eblock Filename Format Fun List Netlist Result Sim String Sys Testlib
