test/test_netlist.ml: Alcotest Behavior Codegen Eblock Format Hashtbl List Netlist Printf QCheck Result Sim String Testlib
