test/test_paredown.ml: Alcotest Core Designs Eblock List Netlist Printf QCheck Randgen Testlib
