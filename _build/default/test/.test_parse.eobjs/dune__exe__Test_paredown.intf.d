test/test_paredown.mli:
