test/test_parse.ml: Alcotest Array Behavior Codegen Eblock List QCheck Testlib
