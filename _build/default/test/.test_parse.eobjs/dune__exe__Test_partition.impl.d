test/test_partition.ml: Alcotest Core Designs Format Netlist Testlib
