test/test_prng.ml: Alcotest Array Fun List Prng
