test/test_randgen.ml: Alcotest Core Eblock List Netlist Printf Prng QCheck Randgen Sim Testlib
