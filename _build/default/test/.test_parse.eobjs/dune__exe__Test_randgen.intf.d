test/test_randgen.mli:
