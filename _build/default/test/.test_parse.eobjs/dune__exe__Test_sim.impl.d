test/test_sim.ml: Alcotest Behavior Designs Eblock Format List Netlist Prng QCheck Randgen Result Sim String Testlib
