(* Tests for the greedy aggregation baseline (§4.2, the method PareDown
   replaced). *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id
module C = Eblock.Catalog

let check = Alcotest.check

let test_chain_clustered () =
  (* a 1-in/1-out chain aggregates into a single cluster *)
  let g, _, _, _ = Testlib.chain [ C.not_gate; C.toggle; C.trip_latch ] in
  let sol = Core.Aggregation.run g in
  check Alcotest.int "one partition" 1 (Core.Solution.programmable_count sol);
  check Alcotest.int "all covered" 3 (Core.Solution.covered_count sol)

let test_nothing_to_do () =
  let g = Designs.Library.any_window_open_alarm.Designs.Design.network in
  let sol = Core.Aggregation.run g in
  check Alcotest.int "no partitions" 0
    (Core.Solution.programmable_count sol)

let test_skips_unplaceable () =
  let g = Designs.Library.two_zone_security.Designs.Design.network in
  let sol = Core.Aggregation.run g in
  Testlib.check_ok "valid" (Core.Solution.check g sol);
  (* the OR3 gates can never be members *)
  check Alcotest.bool "wide gates uncovered" true
    (List.for_all
       (fun id -> Node_id.Set.mem id (Core.Solution.uncovered g sol))
       [ 12; 19; 30 ])

let test_misses_convergence () =
  (* the paper's motivation for PareDown: on the podium timer the greedy
     method cannot exploit reconvergence as well *)
  let pd =
    Core.Solution.total_inner_after Testlib.podium
      (Core.Paredown.run Testlib.podium).Core.Paredown.solution
  in
  let agg =
    Core.Solution.total_inner_after Testlib.podium
      (Core.Aggregation.run Testlib.podium)
  in
  check Alcotest.bool "paredown at least as good on the worked example" true
    (pd <= agg)

let test_multi_shape_config () =
  let config =
    {
      Core.Aggregation.default_config with
      shapes = [ Core.Shape.make ~inputs:4 ~outputs:4 ~cost:1.9 () ];
    }
  in
  let g = Testlib.podium in
  let sol = Core.Aggregation.run ~config g in
  Testlib.check_ok "valid with 4x4" (Core.Solution.check g sol);
  check Alcotest.bool "4x4 merges more than 2x2" true
    (Core.Solution.covered_count sol
     >= Core.Solution.covered_count (Core.Aggregation.run g))

let prop_solutions_valid =
  QCheck.Test.make ~name:"solutions valid on random designs" ~count:120
    (Testlib.network_arbitrary ~max_inner:35 ()) (fun (_, _, g) ->
      match Core.Solution.check g (Core.Aggregation.run g) with
      | Ok () -> true
      | Error _ -> false)

let prop_deterministic =
  QCheck.Test.make ~name:"deterministic" ~count:40
    (Testlib.network_arbitrary ~max_inner:25 ()) (fun (_, _, g) ->
      Core.Aggregation.run g = Core.Aggregation.run g)

let () =
  Alcotest.run "aggregation"
    [
      ( "behaviour",
        [
          Alcotest.test_case "chain clustered" `Quick test_chain_clustered;
          Alcotest.test_case "nothing to do" `Quick test_nothing_to_do;
          Alcotest.test_case "skips unplaceable" `Quick
            test_skips_unplaceable;
          Alcotest.test_case "misses convergence" `Quick
            test_misses_convergence;
          Alcotest.test_case "multi-shape" `Quick test_multi_shape_config;
        ] );
      ( "properties",
        Testlib.qtests [ prop_solutions_valid; prop_deterministic ] );
    ]
