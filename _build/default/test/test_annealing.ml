(* Tests for the simulated-annealing partitioner. *)

module Graph = Netlist.Graph

let check = Alcotest.check
let podium = Testlib.podium

let totals g sol =
  ( Core.Solution.total_inner_after g sol,
    Core.Solution.programmable_count sol )

let test_podium_quality () =
  let sa = Core.Annealing.run podium in
  check (Alcotest.pair Alcotest.int Alcotest.int)
    "matches the heuristic on the worked example" (3, 2)
    (totals podium sa.Core.Annealing.solution);
  Testlib.check_ok "valid" (Core.Solution.check podium sa.Core.Annealing.solution)

let test_finds_two_zone_optimum () =
  (* on our Two-Zone reconstruction the annealer reaches 10 total inner
     blocks — certifying that PareDown's 11 is one block of heuristic
     overhead on a design too large for exhaustive search *)
  let g = Designs.Library.two_zone_security.Designs.Design.network in
  let sa = Core.Annealing.run g in
  check Alcotest.int "total 10" 10
    (Core.Solution.total_inner_after g sa.Core.Annealing.solution)

let test_deterministic () =
  let run () =
    (Core.Annealing.run podium).Core.Annealing.solution
  in
  check Alcotest.bool "same seed, same outcome" true (run () = run ());
  let other =
    Core.Annealing.run
      ~config:{ Core.Annealing.default_config with seed = 2 }
      podium
  in
  (* a different seed is allowed to find a different (equally good)
     solution, but the result type must still be valid *)
  Testlib.check_ok "other seed valid"
    (Core.Solution.check podium other.Core.Annealing.solution)

let test_move_accounting () =
  let sa = Core.Annealing.run podium in
  check Alcotest.int "every iteration proposes"
    Core.Annealing.default_config.Core.Annealing.iterations
    sa.Core.Annealing.moves_proposed;
  check Alcotest.bool "acceptance bounded" true
    (sa.Core.Annealing.moves_accepted <= sa.Core.Annealing.moves_proposed)

let test_warm_start_never_worse () =
  (* starting from the PareDown solution, best-so-far tracking guarantees
     the result is at least as good *)
  let rng = Prng.create 9 in
  for _ = 1 to 5 do
    let g = Randgen.Generator.generate ~rng:(Prng.split rng) ~inner:15 () in
    let pd = (Core.Paredown.run g).Core.Paredown.solution in
    let config =
      { Core.Annealing.default_config with iterations = 3000 }
    in
    let sa = Core.Annealing.run ~config ~start:pd g in
    check Alcotest.bool "<= warm start" true
      (Core.Solution.total_inner_after g sa.Core.Annealing.solution
       <= Core.Solution.total_inner_after g pd)
  done

let prop_solutions_valid =
  QCheck.Test.make ~name:"solutions valid on random designs" ~count:25
    (Testlib.network_arbitrary ~max_inner:18 ()) (fun (_, _, g) ->
      let config =
        { Core.Annealing.default_config with iterations = 2000 }
      in
      match
        Core.Solution.check g
          (Core.Annealing.run ~config g).Core.Annealing.solution
      with
      | Ok () -> true
      | Error _ -> false)

let prop_never_beats_exhaustive =
  QCheck.Test.make ~name:"never better than the optimum" ~count:20
    (Testlib.network_arbitrary ~max_inner:7 ()) (fun (_, _, g) ->
      let exh = (Core.Exhaustive.run g).Core.Exhaustive.solution in
      let config =
        { Core.Annealing.default_config with iterations = 4000 }
      in
      let sa = (Core.Annealing.run ~config g).Core.Annealing.solution in
      Core.Solution.total_inner_after g exh
      <= Core.Solution.total_inner_after g sa)

let () =
  Alcotest.run "annealing"
    [
      ( "quality",
        [
          Alcotest.test_case "podium" `Quick test_podium_quality;
          Alcotest.test_case "two-zone optimum" `Quick
            test_finds_two_zone_optimum;
          Alcotest.test_case "warm start" `Quick test_warm_start_never_worse;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "move accounting" `Quick test_move_accounting;
        ] );
      ( "properties",
        Testlib.qtests [ prop_solutions_valid; prop_never_beats_exhaustive ] );
    ]
