(* Unit and property tests for the behaviour language: AST queries,
   evaluation, renaming, and tree merging. *)

open Behavior.Ast

let check = Alcotest.check
let value = Testlib.value

(* --- AST static queries --------------------------------------------- *)

let test_max_input_index () =
  check Alcotest.int "no inputs" (-1) (max_input_index empty);
  let p = { state = []; body = [ Output (0, input 3 &&& input 1) ] } in
  check Alcotest.int "deep input" 3 (max_input_index p)

let test_max_output_index () =
  check Alcotest.int "no outputs" (-1) (max_output_index empty);
  let p =
    { state = []; body = [ Output (2, bool_ true); Output (0, bool_ false) ] }
  in
  check Alcotest.int "two outputs" 2 (max_output_index p)

let test_max_timer_index () =
  check Alcotest.int "no timers" (-1) (max_timer_index empty);
  let p =
    {
      state = [];
      body =
        [
          Set_timer (1, int_ 5);
          If (Timer_fired 3, [ Cancel_timer 0 ], []);
        ];
    }
  in
  check Alcotest.int "nested" 3 (max_timer_index p);
  check Alcotest.bool "uses" true (uses_timer p);
  check Alcotest.bool "empty does not" false (uses_timer empty)

let test_free_variables () =
  let p = { state = []; body = [ Assign ("x", var "y") ] } in
  check (Alcotest.list Alcotest.string) "y free" [ "y" ] (free_variables p);
  let p = { state = [ ("y", Bool false) ]; body = [ Assign ("x", var "y") ] } in
  check (Alcotest.list Alcotest.string) "state bound" [] (free_variables p);
  let p =
    { state = []; body = [ Assign ("x", bool_ true); Output (0, var "x") ] }
  in
  check (Alcotest.list Alcotest.string) "assigned first" [] (free_variables p)

let test_free_variables_branches () =
  (* assigned in only one branch => not surely defined *)
  let p =
    {
      state = [];
      body =
        [
          If (input 0, [ Assign ("x", bool_ true) ], []);
          Output (0, var "x");
        ];
    }
  in
  check (Alcotest.list Alcotest.string) "one branch" [ "x" ] (free_variables p);
  let p =
    {
      state = [];
      body =
        [
          If (input 0,
              [ Assign ("x", bool_ true) ],
              [ Assign ("x", bool_ false) ]);
          Output (0, var "x");
        ];
    }
  in
  check (Alcotest.list Alcotest.string) "both branches" [] (free_variables p)

let test_assigned_variables () =
  let p =
    {
      state = [ ("s", Int 0) ];
      body = [ Assign ("b", bool_ true); If (var "b", [ Assign ("a", int_ 1) ], []) ];
    }
  in
  check (Alcotest.list Alcotest.string) "sorted, includes state"
    [ "a"; "b"; "s" ] (assigned_variables p)

let test_pretty_print () =
  let p = Eblock.Catalog.toggle.Eblock.Descriptor.behavior in
  let text = program_to_string p in
  check Alcotest.bool "mentions state" true
    (Testlib.contains text "state prev = false;");
  check Alcotest.bool "mentions out" true
    (Testlib.contains text "out[0] = q;")

(* --- Evaluation ------------------------------------------------------ *)

let act ?(fired = None) inputs =
  { Behavior.Eval.inputs = Array.of_list inputs; fired }

let test_eval_operators () =
  let e env expr =
    Behavior.Eval.eval_expr env (act []) expr
  in
  let env = Behavior.Eval.init empty in
  check value "and" (Bool false) (e env (bool_ true &&& bool_ false));
  check value "or" (Bool true) (e env (bool_ true ||| bool_ false));
  check value "xor bool" (Bool true)
    (e env (Binop (Xor, bool_ true, bool_ false)));
  check value "xor int" (Int 6) (e env (Binop (Xor, int_ 5, int_ 3)));
  check value "not" (Bool false) (e env (not_ (bool_ true)));
  check value "neg" (Int (-4)) (e env (Unop (Neg, int_ 4)));
  check value "add" (Int 7) (e env (Binop (Add, int_ 3, int_ 4)));
  check value "sub" (Int (-1)) (e env (Binop (Sub, int_ 3, int_ 4)));
  check value "mul" (Int 12) (e env (Binop (Mul, int_ 3, int_ 4)));
  check value "eq" (Bool true) (e env (Binop (Eq, int_ 3, int_ 3)));
  check value "ne" (Bool true) (e env (Binop (Ne, bool_ true, bool_ false)));
  check value "lt" (Bool true) (e env (Binop (Lt, int_ 2, int_ 3)));
  check value "le" (Bool true) (e env (Binop (Le, int_ 3, int_ 3)));
  check value "gt" (Bool false) (e env (Binop (Gt, int_ 2, int_ 3)));
  check value "ge" (Bool true) (e env (Binop (Ge, int_ 3, int_ 3)));
  check value "if_expr" (Int 1)
    (e env (If_expr (bool_ true, int_ 1, int_ 2)))

let test_eval_errors () =
  let env = Behavior.Eval.init empty in
  let fails name f =
    match f () with
    | exception Behavior.Eval.Runtime_error _ -> ()
    | _ -> Alcotest.failf "%s did not raise" name
  in
  fails "unbound" (fun () ->
      Behavior.Eval.eval_expr env (act []) (var "nope"));
  fails "bool+int" (fun () ->
      Behavior.Eval.eval_expr env (act []) (Binop (Add, bool_ true, int_ 1)));
  fails "xor mixed" (fun () ->
      Behavior.Eval.eval_expr env (act []) (Binop (Xor, bool_ true, int_ 1)));
  fails "not int" (fun () ->
      Behavior.Eval.eval_expr env (act []) (not_ (int_ 1)));
  fails "input range" (fun () ->
      Behavior.Eval.eval_expr env (act [ Bool true ]) (input 1));
  fails "output range" (fun () ->
      let p = { state = []; body = [ Output (5, bool_ true) ] } in
      Behavior.Eval.activate p ~n_outputs:1 (Behavior.Eval.init p) (act []));
  fails "non-positive timer" (fun () ->
      let p = { state = []; body = [ Set_timer (0, int_ 0) ] } in
      Behavior.Eval.activate p ~n_outputs:1 (Behavior.Eval.init p) (act []))

let test_eval_latched_outputs () =
  (* an output not driven during an activation stays None (latched) *)
  let p =
    { state = []; body = [ If (input 0, [ Output (0, bool_ true) ], []) ] }
  in
  let env = Behavior.Eval.init p in
  let out1 =
    Behavior.Eval.activate p ~n_outputs:1 env (act [ Bool false ])
  in
  check (Alcotest.option value) "undriven" None
    out1.Behavior.Eval.outputs.(0);
  let out2 = Behavior.Eval.activate p ~n_outputs:1 env (act [ Bool true ]) in
  check (Alcotest.option value) "driven" (Some (Bool true))
    out2.Behavior.Eval.outputs.(0)

let test_eval_state_persists () =
  let p =
    {
      state = [ ("count", Int 0) ];
      body =
        [
          Assign ("count", Binop (Add, var "count", int_ 1));
          Output (0, var "count");
        ];
    }
  in
  let env = Behavior.Eval.init p in
  let run () =
    (Behavior.Eval.activate p ~n_outputs:1 env (act [])).Behavior.Eval.outputs.(0)
  in
  check (Alcotest.option value) "first" (Some (Int 1)) (run ());
  check (Alcotest.option value) "second" (Some (Int 2)) (run ());
  check (Alcotest.option value) "peek" (Some (Int 2))
    (Behavior.Eval.lookup env "count")

let test_eval_timers () =
  let p =
    {
      state = [];
      body =
        [
          Set_timer (0, int_ 5);
          Set_timer (1, int_ 9);
          Cancel_timer 1;
          If (Timer_fired 2, [ Output (0, bool_ true) ], []);
        ];
    }
  in
  let env = Behavior.Eval.init p in
  let outcome = Behavior.Eval.activate p ~n_outputs:1 env (act []) in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool))
    "timer actions (set wins per index, sorted)"
    [ (0, true); (1, false) ]
    (List.map
       (fun (t, a) ->
         (t, match a with Behavior.Eval.Timer_set _ -> true | _ -> false))
       outcome.Behavior.Eval.timers);
  (* timer_fired reflects the activation cause *)
  let fired =
    Behavior.Eval.activate p ~n_outputs:1 env (act ~fired:(Some 2) [])
  in
  check (Alcotest.option value) "fired branch" (Some (Bool true))
    fired.Behavior.Eval.outputs.(0)

(* --- Renaming -------------------------------------------------------- *)

let test_rename_prefix () =
  let p = Eblock.Catalog.toggle.Eblock.Descriptor.behavior in
  let renamed = Behavior.Rename.with_prefix "b7_" p in
  List.iter
    (fun v ->
      check Alcotest.bool (v ^ " prefixed") true
        (String.length v > 3 && String.sub v 0 3 = "b7_"))
    (assigned_variables renamed);
  check (Alcotest.list Alcotest.string) "still closed" []
    (free_variables renamed)

let test_rename_preserves_semantics () =
  let p = Eblock.Catalog.toggle.Eblock.Descriptor.behavior in
  let renamed = Behavior.Rename.with_prefix "x_" p in
  let run p inputs_list =
    let env = Behavior.Eval.init p in
    List.map
      (fun i ->
        (Behavior.Eval.activate p ~n_outputs:1 env (act [ Bool i ]))
          .Behavior.Eval.outputs.(0))
      inputs_list
  in
  let stimuli = [ true; true; false; true; false; false; true ] in
  check
    (Alcotest.list (Alcotest.option value))
    "same outputs" (run p stimuli) (run renamed stimuli)

let test_variables_disjoint () =
  let p = Eblock.Catalog.toggle.Eblock.Descriptor.behavior in
  check Alcotest.bool "same program clashes" false
    (Behavior.Rename.variables_disjoint [ p; p ]);
  check Alcotest.bool "renamed disjoint" true
    (Behavior.Rename.variables_disjoint
       [ Behavior.Rename.with_prefix "a_" p;
         Behavior.Rename.with_prefix "b_" p ])

(* --- Merging --------------------------------------------------------- *)

(* two NOT gates in series: ext input -> not1 -> wire -> not2 -> ext out *)
let serial_nots =
  let not_behavior = Eblock.Catalog.not_gate.Eblock.Descriptor.behavior in
  Behavior.Merge.
    [
      {
        label = "n1_";
        program = not_behavior;
        inputs = [| Ext 0 |];
        output_wires = [| "w1" |];
        output_exts = [| [] |];
        output_init = [| Bool false |];
      };
      {
        label = "n2_";
        program = not_behavior;
        inputs = [| Wire "w1" |];
        output_wires = [| "w2" |];
        output_exts = [| [ 0 ] |];
        output_init = [| Bool false |];
      };
    ]

let test_merge_serial () =
  let merged = Behavior.Merge.merge serial_nots in
  check (Alcotest.list Alcotest.string) "closed" []
    (free_variables merged);
  let env = Behavior.Eval.init merged in
  let out b =
    (Behavior.Eval.activate merged ~n_outputs:1 env (act [ Bool b ]))
      .Behavior.Eval.outputs.(0)
  in
  check (Alcotest.option value) "double negation true" (Some (Bool true))
    (out true);
  check (Alcotest.option value) "double negation false" (Some (Bool false))
    (out false)

let test_merge_timer_remap () =
  let pulse = (Eblock.Catalog.pulse_gen ~width:4).Eblock.Descriptor.behavior in
  let members =
    Behavior.Merge.
      [
        {
          label = "p1_";
          program = pulse;
          inputs = [| Ext 0 |];
          output_wires = [| "w1" |];
          output_exts = [| [ 0 ] |];
          output_init = [| Bool false |];
        };
        {
          label = "p2_";
          program = pulse;
          inputs = [| Wire "w1" |];
          output_wires = [| "w2" |];
          output_exts = [| [ 1 ] |];
          output_init = [| Bool false |];
        };
      ]
  in
  let merged = Behavior.Merge.merge members in
  check Alcotest.int "two distinct timers" 1 (max_timer_index merged);
  check Alcotest.int "p1 base" 0 (Behavior.Merge.timer_base members "p1_");
  check Alcotest.int "p2 base" 1 (Behavior.Merge.timer_base members "p2_")

let merge_fails name members =
  match Behavior.Merge.merge members with
  | exception Behavior.Merge.Merge_error _ -> ()
  | _ -> Alcotest.failf "%s did not raise" name

let test_merge_errors () =
  let nb = Eblock.Catalog.not_gate.Eblock.Descriptor.behavior in
  let member label inputs wire =
    Behavior.Merge.
      {
        label;
        program = nb;
        inputs;
        output_wires = [| wire |];
        output_exts = [| [] |];
        output_init = [| Bool false |];
      }
  in
  merge_fails "duplicate labels"
    [ member "a_" [| Ext 0 |] "w1"; member "a_" [| Ext 0 |] "w2" ];
  merge_fails "duplicate wires"
    [ member "a_" [| Ext 0 |] "w"; member "b_" [| Ext 0 |] "w" ];
  merge_fails "undriven wire" [ member "a_" [| Wire "ghost" |] "w1" ];
  merge_fails "input arity" [ member "a_" [||] "w1" ]

(* --- Properties ------------------------------------------------------ *)

(* random boolean expressions over in[0..1] *)
let expr_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof [ map (fun b -> Const (Bool b)) bool;
                  map (fun i -> Input i) (int_range 0 1) ]
        else
          frequency
            [
              (1, map (fun b -> Const (Bool b)) bool);
              (1, map (fun i -> Input i) (int_range 0 1));
              (2, map (fun e -> not_ e) (self (n - 1)));
              (3,
               map2 (fun a b -> a &&& b) (self (n / 2)) (self (n / 2)));
              (3,
               map2 (fun a b -> a ||| b) (self (n / 2)) (self (n / 2)));
              (2,
               map2
                 (fun a b -> Binop (Xor, a, b))
                 (self (n / 2)) (self (n / 2)));
            ]))

let arbitrary_expr =
  QCheck.make ~print:expr_to_string expr_gen

let eval_bool expr a b =
  let env = Behavior.Eval.init empty in
  match Behavior.Eval.eval_expr env (act [ Bool a; Bool b ]) expr with
  | Bool r -> r
  | Int _ -> Alcotest.fail "expected bool"

let prop_double_negation =
  QCheck.Test.make ~name:"eval: double negation is identity" ~count:200
    arbitrary_expr (fun e ->
      List.for_all
        (fun (a, b) -> eval_bool (not_ (not_ e)) a b = eval_bool e a b)
        [ (false, false); (false, true); (true, false); (true, true) ])

let prop_de_morgan =
  QCheck.Test.make ~name:"eval: De Morgan" ~count:200
    (QCheck.pair arbitrary_expr arbitrary_expr) (fun (e1, e2) ->
      List.for_all
        (fun (a, b) ->
          eval_bool (not_ (e1 &&& e2)) a b
          = eval_bool (not_ e1 ||| not_ e2) a b)
        [ (false, false); (false, true); (true, false); (true, true) ])

let prop_rename_stable =
  QCheck.Test.make ~name:"rename: prefix leaves input-only exprs intact"
    ~count:200 arbitrary_expr (fun e ->
      let p = { state = []; body = [ Output (0, e) ] } in
      let renamed = Behavior.Rename.with_prefix "z_" p in
      List.for_all
        (fun (a, b) ->
          let out p =
            (Behavior.Eval.activate p ~n_outputs:1 (Behavior.Eval.init p)
               (act [ Bool a; Bool b ]))
              .Behavior.Eval.outputs.(0)
          in
          out p = out renamed)
        [ (false, false); (false, true); (true, false); (true, true) ])

let () =
  Alcotest.run "behavior"
    [
      ( "ast",
        [
          Alcotest.test_case "max_input_index" `Quick test_max_input_index;
          Alcotest.test_case "max_output_index" `Quick test_max_output_index;
          Alcotest.test_case "max_timer_index" `Quick test_max_timer_index;
          Alcotest.test_case "free_variables" `Quick test_free_variables;
          Alcotest.test_case "free_variables branches" `Quick
            test_free_variables_branches;
          Alcotest.test_case "assigned_variables" `Quick
            test_assigned_variables;
          Alcotest.test_case "pretty print" `Quick test_pretty_print;
        ] );
      ( "eval",
        [
          Alcotest.test_case "operators" `Quick test_eval_operators;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          Alcotest.test_case "latched outputs" `Quick
            test_eval_latched_outputs;
          Alcotest.test_case "state persists" `Quick test_eval_state_persists;
          Alcotest.test_case "timers" `Quick test_eval_timers;
        ] );
      ( "rename",
        [
          Alcotest.test_case "prefix" `Quick test_rename_prefix;
          Alcotest.test_case "preserves semantics" `Quick
            test_rename_preserves_semantics;
          Alcotest.test_case "disjointness" `Quick test_variables_disjoint;
        ] );
      ( "merge",
        [
          Alcotest.test_case "serial nots" `Quick test_merge_serial;
          Alcotest.test_case "timer remap" `Quick test_merge_timer_remap;
          Alcotest.test_case "errors" `Quick test_merge_errors;
        ] );
      ( "properties",
        Testlib.qtests [ prop_double_negation; prop_de_morgan;
                         prop_rename_stable ] );
    ]
