(* Unit tests for the block model: kinds, descriptor validation, the
   catalogue's arities and behaviours, and name round-tripping. *)

module C = Eblock.Catalog
module D = Eblock.Descriptor

let check = Alcotest.check
let value = Testlib.value

(* --- Kinds ----------------------------------------------------------- *)

let test_kind_classes () =
  check Alcotest.bool "compute inner" true (Eblock.Kind.is_inner Compute);
  check Alcotest.bool "comm inner" true (Eblock.Kind.is_inner Comm);
  check Alcotest.bool "programmable inner" true
    (Eblock.Kind.is_inner Programmable);
  check Alcotest.bool "sensor not inner" false (Eblock.Kind.is_inner Sensor);
  check Alcotest.bool "output not inner" false (Eblock.Kind.is_inner Output);
  check Alcotest.bool "only compute partitionable" true
    (List.for_all
       (fun k ->
         Eblock.Kind.partitionable k = Eblock.Kind.equal k Eblock.Kind.Compute)
       [ Sensor; Output; Compute; Comm; Programmable ])

(* --- Descriptor validation ------------------------------------------- *)

let invalid name f =
  match f () with
  | exception D.Invalid_descriptor _ -> ()
  | _ -> Alcotest.failf "%s did not raise" name

let test_descriptor_validation () =
  invalid "negative arity" (fun () ->
      D.make ~name:"x" ~kind:Compute ~n_inputs:(-1) ~n_outputs:1 ~cost:1.0 ());
  invalid "behaviour reads beyond inputs" (fun () ->
      D.make ~name:"x" ~kind:Compute ~n_inputs:1 ~n_outputs:1
        ~behavior:
          Behavior.Ast.{ state = []; body = [ Output (0, input 1) ] }
        ~cost:1.0 ());
  invalid "behaviour writes beyond outputs" (fun () ->
      D.make ~name:"x" ~kind:Compute ~n_inputs:1 ~n_outputs:1
        ~behavior:
          Behavior.Ast.{ state = []; body = [ Output (1, input 0) ] }
        ~cost:1.0 ());
  invalid "free variable" (fun () ->
      D.make ~name:"x" ~kind:Compute ~n_inputs:1 ~n_outputs:1
        ~behavior:Behavior.Ast.{ state = []; body = [ Output (0, var "u") ] }
        ~cost:1.0 ());
  invalid "output_init length" (fun () ->
      D.make ~name:"x" ~kind:Compute ~n_inputs:1 ~n_outputs:2
        ~output_init:[| Behavior.Ast.Bool false |]
        ~cost:1.0 ());
  invalid "negative cost" (fun () ->
      D.make ~name:"x" ~kind:Compute ~n_inputs:1 ~n_outputs:1 ~cost:(-1.) ())

(* --- Catalogue arities and classes ----------------------------------- *)

let test_catalogue_shape () =
  let expect d kind n_in n_out =
    check Alcotest.bool (d.D.name ^ " kind") true
      (Eblock.Kind.equal d.D.kind kind);
    check Alcotest.int (d.D.name ^ " inputs") n_in d.D.n_inputs;
    check Alcotest.int (d.D.name ^ " outputs") n_out d.D.n_outputs
  in
  expect C.button Sensor 0 1;
  expect C.light_sensor Sensor 0 1;
  expect C.led Output 1 0;
  expect C.buzzer Output 1 0;
  expect C.wireless_tx Comm 1 1;
  expect C.x10_link Comm 1 1;
  expect C.not_gate Compute 1 1;
  expect C.and2 Compute 2 1;
  expect C.and3 Compute 3 1;
  expect C.or3 Compute 3 1;
  expect C.splitter2 Compute 1 2;
  expect (C.truth_table2 ~table:6) Compute 2 1;
  expect (C.truth_table3 ~table:128) Compute 3 1;
  expect C.toggle Compute 1 1;
  expect C.trip_reset Compute 2 1;
  expect (C.pulse_gen ~width:3) Compute 1 1;
  expect (C.delay ~ticks:3) Compute 1 1;
  expect (C.prolong ~ticks:3) Compute 1 1;
  expect (C.blinker ~period:3) Compute 1 1;
  expect
    (C.programmable ~n_inputs:2 ~n_outputs:2 Behavior.Ast.empty)
    Programmable 2 2

let test_catalogue_parameter_validation () =
  let rejects name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted an invalid parameter" name
  in
  rejects "tt2 16" (fun () -> C.truth_table2 ~table:16);
  rejects "tt2 -1" (fun () -> C.truth_table2 ~table:(-1));
  rejects "tt3 256" (fun () -> C.truth_table3 ~table:256);
  rejects "pulse 0" (fun () -> C.pulse_gen ~width:0);
  rejects "delay 0" (fun () -> C.delay ~ticks:0);
  rejects "prolong -3" (fun () -> C.prolong ~ticks:(-3));
  rejects "blinker 0" (fun () -> C.blinker ~period:0)

(* --- Combinational behaviours, exhaustively over inputs -------------- *)

let activate_once d inputs =
  let env = Behavior.Eval.init d.D.behavior in
  let act = { Behavior.Eval.inputs = Array.of_list inputs; fired = None } in
  Behavior.Eval.activate d.D.behavior ~n_outputs:d.D.n_outputs env act

let combinational_output d inputs =
  match (activate_once d (List.map (fun b -> Behavior.Ast.Bool b) inputs))
          .Behavior.Eval.outputs.(0)
  with
  | Some v -> v
  | None -> Alcotest.failf "%s drove no output" d.D.name

let test_gates () =
  let cases =
    [
      (C.not_gate, fun i -> not (List.nth i 0));
      (C.and2, fun i -> List.nth i 0 && List.nth i 1);
      (C.or2, fun i -> List.nth i 0 || List.nth i 1);
      (C.xor2, fun i -> List.nth i 0 <> List.nth i 1);
      (C.nand2, fun i -> not (List.nth i 0 && List.nth i 1));
      (C.nor2, fun i -> not (List.nth i 0 || List.nth i 1));
      (C.and3, fun i -> List.for_all Fun.id i);
      (C.or3, fun i -> List.exists Fun.id i);
    ]
  in
  let rec inputs_of n =
    if n = 0 then [ [] ]
    else
      List.concat_map
        (fun rest -> [ false :: rest; true :: rest ])
        (inputs_of (n - 1))
  in
  List.iter
    (fun (d, expected) ->
      List.iter
        (fun i ->
          check value
            (Printf.sprintf "%s%s" d.D.name
               (String.concat "" (List.map string_of_bool i)))
            (Bool (expected i))
            (combinational_output d i))
        (inputs_of d.D.n_inputs))
    cases

let test_truth_tables () =
  (* every 4-bit table, every input pair: bit (2a + b) of the table *)
  for table = 0 to 15 do
    let d = C.truth_table2 ~table in
    List.iter
      (fun (a, b) ->
        let idx = (2 * Bool.to_int a) + Bool.to_int b in
        let expected = (table lsr idx) land 1 = 1 in
        check value
          (Printf.sprintf "tt2(%d) %b %b" table a b)
          (Bool expected)
          (combinational_output d [ a; b ]))
      [ (false, false); (false, true); (true, false); (true, true) ]
  done;
  (* spot-check tt3: table 0b10000000 is AND3 *)
  let d = C.truth_table3 ~table:0b10000000 in
  check value "tt3 and-like high" (Bool true)
    (combinational_output d [ true; true; true ]);
  check value "tt3 and-like low" (Bool false)
    (combinational_output d [ true; true; false ])

let test_splitter () =
  let outcome =
    activate_once C.splitter2 [ Behavior.Ast.Bool true ]
  in
  check (Alcotest.option value) "port 0" (Some (Bool true))
    outcome.Behavior.Eval.outputs.(0);
  check (Alcotest.option value) "port 1" (Some (Bool true))
    outcome.Behavior.Eval.outputs.(1)

(* --- Sequential behaviours over activation sequences ----------------- *)

(* Drive a 1-input block with a value sequence; collect driven outputs. *)
let drive d inputs =
  let env = Behavior.Eval.init d.D.behavior in
  List.map
    (fun b ->
      let act =
        { Behavior.Eval.inputs = [| Behavior.Ast.Bool b |]; fired = None }
      in
      (Behavior.Eval.activate d.D.behavior ~n_outputs:1 env act)
        .Behavior.Eval.outputs.(0))
    inputs

let test_toggle () =
  check
    (Alcotest.list (Alcotest.option value))
    "flips on rising edges only"
    [
      Some (Bool true);   (* rise 1 *)
      Some (Bool true);   (* held *)
      Some (Bool true);   (* fall *)
      Some (Bool false);  (* rise 2 *)
      Some (Bool false);  (* fall *)
    ]
    (drive C.toggle [ true; true; false; true; false ])

let test_trip_latch () =
  check
    (Alcotest.list (Alcotest.option value))
    "latches"
    [ Some (Bool false); Some (Bool true); Some (Bool true) ]
    (drive C.trip_latch [ false; true; false ])

let test_trip_reset () =
  let env = Behavior.Eval.init C.trip_reset.D.behavior in
  let step signal reset =
    let act =
      {
        Behavior.Eval.inputs =
          [| Behavior.Ast.Bool signal; Behavior.Ast.Bool reset |];
        fired = None;
      }
    in
    (Behavior.Eval.activate C.trip_reset.D.behavior ~n_outputs:1 env act)
      .Behavior.Eval.outputs.(0)
  in
  check (Alcotest.option value) "trips" (Some (Bool true)) (step true false);
  check (Alcotest.option value) "holds" (Some (Bool true)) (step false false);
  check (Alcotest.option value) "resets" (Some (Bool false)) (step false true);
  check (Alcotest.option value) "reset wins" (Some (Bool false))
    (step true true)

let test_pulse_gen_timer () =
  let d = C.pulse_gen ~width:7 in
  let env = Behavior.Eval.init d.D.behavior in
  let rising =
    Behavior.Eval.activate d.D.behavior ~n_outputs:1 env
      { Behavior.Eval.inputs = [| Bool true |]; fired = None }
  in
  check (Alcotest.option value) "pulse starts" (Some (Bool true))
    rising.Behavior.Eval.outputs.(0);
  check Alcotest.bool "timer armed for width" true
    (rising.Behavior.Eval.timers = [ (0, Behavior.Eval.Timer_set 7) ]);
  let expiry =
    Behavior.Eval.activate d.D.behavior ~n_outputs:1 env
      { Behavior.Eval.inputs = [| Bool true |]; fired = Some 0 }
  in
  check (Alcotest.option value) "pulse ends" (Some (Bool false))
    expiry.Behavior.Eval.outputs.(0)

let test_idempotent_reactivation () =
  (* re-activation with unchanged inputs must not change outputs or state:
     the invariant merged programs rely on (DESIGN.md §2) *)
  let blocks =
    [
      C.toggle; C.trip_latch; C.pulse_gen ~width:5; C.delay ~ticks:5;
      C.prolong ~ticks:5; C.blinker ~period:5; C.not_gate;
    ]
  in
  List.iter
    (fun d ->
      let env = Behavior.Eval.init d.D.behavior in
      let step () =
        Behavior.Eval.activate d.D.behavior ~n_outputs:1 env
          { Behavior.Eval.inputs = [| Bool true |]; fired = None }
      in
      let (_ : Behavior.Eval.outcome) = step () in
      let snapshot = Behavior.Eval.variables env in
      let again = step () in
      check Alcotest.bool (d.D.name ^ " state stable") true
        (Behavior.Eval.variables env = snapshot);
      check Alcotest.bool (d.D.name ^ " no timer on reactivation") true
        (again.Behavior.Eval.timers = []))
    blocks

(* --- Costs ------------------------------------------------------------ *)

let test_cost_ordering () =
  check Alcotest.bool "predefined < programmable" true
    (Eblock.Cost.predefined < Eblock.Cost.programmable);
  check Alcotest.bool "programmable < 2 predefined" true
    (Eblock.Cost.programmable < 2. *. Eblock.Cost.predefined);
  check (Alcotest.float 0.0) "of_kind compute" Eblock.Cost.predefined
    (Eblock.Cost.of_kind Compute)

(* --- Name registry ---------------------------------------------------- *)

let test_of_name_roundtrip () =
  List.iter
    (fun d ->
      match C.of_name d.D.name with
      | Some found ->
        check Alcotest.bool (d.D.name ^ " round-trips") true (D.equal d found)
      | None -> Alcotest.failf "%s not found by name" d.D.name)
    (C.all_fixed
     @ [
         C.truth_table2 ~table:9; C.truth_table3 ~table:200;
         C.pulse_gen ~width:12; C.delay ~ticks:7; C.prolong ~ticks:4;
         C.blinker ~period:6;
       ])

let test_of_name_rejects () =
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " rejected") true (C.of_name name = None))
    [ "nonsense"; "tt2(16)"; "tt2(-1)"; "delay(0)"; "delay(x)"; "delay(";
      "tt3(999)"; "pulse_gen(-2)"; "" ]

let test_unique_names () =
  let names = List.map (fun d -> d.D.name) C.all_fixed in
  check Alcotest.int "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names))

let () =
  Alcotest.run "eblock"
    [
      ( "kind",
        [ Alcotest.test_case "classes" `Quick test_kind_classes ] );
      ( "descriptor",
        [ Alcotest.test_case "validation" `Quick test_descriptor_validation ] );
      ( "catalogue",
        [
          Alcotest.test_case "arities and kinds" `Quick test_catalogue_shape;
          Alcotest.test_case "parameter validation" `Quick
            test_catalogue_parameter_validation;
          Alcotest.test_case "unique names" `Quick test_unique_names;
        ] );
      ( "combinational",
        [
          Alcotest.test_case "gates (exhaustive)" `Quick test_gates;
          Alcotest.test_case "truth tables (exhaustive)" `Quick
            test_truth_tables;
          Alcotest.test_case "splitter" `Quick test_splitter;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "toggle" `Quick test_toggle;
          Alcotest.test_case "trip latch" `Quick test_trip_latch;
          Alcotest.test_case "trip with reset" `Quick test_trip_reset;
          Alcotest.test_case "pulse generator timers" `Quick
            test_pulse_gen_timer;
          Alcotest.test_case "idempotent re-activation" `Quick
            test_idempotent_reactivation;
        ] );
      ( "cost",
        [ Alcotest.test_case "ordering" `Quick test_cost_ordering ] );
      ( "names",
        [
          Alcotest.test_case "round-trip" `Quick test_of_name_roundtrip;
          Alcotest.test_case "rejects" `Quick test_of_name_rejects;
        ] );
    ]
