(* Tests for the exhaustive search: optimality on known designs, the
   coverage tie-break, pruning soundness, deadlines, and the
   never-worse-than-PareDown property. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let check = Alcotest.check
let set = Testlib.set
let podium = Testlib.podium

let run ?config ?deadline_s g = Core.Exhaustive.run ?config ?deadline_s g

let totals g r =
  let sol = r.Core.Exhaustive.solution in
  ( Core.Solution.total_inner_after g sol,
    Core.Solution.programmable_count sol )

(* --- Known optima --------------------------------------------------------- *)

let test_podium_optimal () =
  let r = run podium in
  check Alcotest.bool "optimal outcome" true
    (r.Core.Exhaustive.outcome = Core.Exhaustive.Optimal);
  check (Alcotest.pair Alcotest.int Alcotest.int) "3 total, 3 programmable"
    (3, 3) (totals podium r);
  check Alcotest.int "all 8 covered" 8
    (Core.Solution.covered_count r.Core.Exhaustive.solution);
  (* the specific optimum: {2,3,4,5}, {6,9}, {7,8} *)
  let members =
    List.map
      (fun p -> p.Core.Partition.members)
      r.Core.Exhaustive.solution.Core.Solution.partitions
    |> List.sort (fun a b ->
           compare (Node_id.Set.elements a) (Node_id.Set.elements b))
  in
  check (Alcotest.list Testlib.id_set) "partition sets"
    [ set [ 2; 3; 4; 5 ]; set [ 6; 9 ]; set [ 7; 8 ] ]
    members

let test_small_library_optima () =
  (* Table 1's exhaustive column for every design we can afford *)
  let cases =
    [
      ("Ignition Illuminator", (1, 1));
      ("Night Lamp Controller", (1, 1));
      ("Entry Gate Detector", (1, 1));
      ("Carpool Alert", (1, 1));
      ("Cafeteria Food Alert", (1, 1));
      ("Podium Timer 2", (1, 1));
      ("Any Window Open Alarm", (3, 0));
      ("Two Button Light", (3, 0));
      ("Doorbell Extender 1", (5, 0));
      ("Doorbell Extender 2", (6, 0));
      ("Podium Timer 3", (3, 3));
    ]
  in
  List.iter
    (fun (name, want) ->
      match Designs.Library.find name with
      | None -> Alcotest.failf "design %s missing" name
      | Some d ->
        let g = d.Designs.Design.network in
        check (Alcotest.pair Alcotest.int Alcotest.int) name want
          (totals g (run g)))
    cases

let test_chain_merges_fully () =
  (* a 1-in/1-out chain of any length fits one programmable block *)
  let g, _, _, _ =
    Testlib.chain
      Eblock.Catalog.
        [ not_gate; toggle; trip_latch; not_gate; delay ~ticks:3 ]
  in
  check (Alcotest.pair Alcotest.int Alcotest.int) "5-chain -> 1 block" (1, 1)
    (totals g (run g))

(* --- Cost objective (future work, §6) ---------------------------------------- *)

(* a shape library where merging everything is block-optimal but not
   cost-optimal: the 4x4 hosts all 8 podium blocks yet costs more than
   three small blocks *)
let contested_shapes =
  [
    Core.Shape.make ~inputs:2 ~outputs:2 ~cost:1.5 ();
    Core.Shape.make ~inputs:4 ~outputs:4 ~cost:5.0 ();
  ]

let test_objectives_disagree () =
  let run objective =
    (Core.Exhaustive.run
       ~config:
         { Core.Exhaustive.default_config with shapes = contested_shapes;
           objective }
       podium)
      .Core.Exhaustive.solution
  in
  let by_blocks = run Core.Exhaustive.Fewest_blocks in
  let by_cost = run Core.Exhaustive.Lowest_cost in
  check Alcotest.int "block objective: one big partition" 1
    (Core.Solution.total_inner_after podium by_blocks);
  check (Alcotest.float 0.001) "its cost is the 4x4's" 5.0
    (Core.Solution.total_cost_after podium by_blocks);
  (* cheapest: the Figure-5 style cover — two 2x2 blocks plus block 7
     left pre-defined (2 * 1.5 + 1.0), beating both the 4x4 (5.0) and a
     three-2x2 full cover (4.5) *)
  check (Alcotest.float 0.001) "cost objective: two 2x2s + one pre-defined"
    4.0
    (Core.Solution.total_cost_after podium by_cost);
  check Alcotest.int "at the price of more blocks" 3
    (Core.Solution.total_inner_after podium by_cost);
  Testlib.check_ok "both valid" (Core.Solution.check podium by_blocks);
  Testlib.check_ok "both valid" (Core.Solution.check podium by_cost)

let test_cost_pruning_sound () =
  let rng = Prng.create 31 in
  for _ = 1 to 8 do
    let inner = 3 + Prng.int rng 4 in
    let g = Randgen.Generator.generate ~rng:(Prng.split rng) ~inner () in
    let run bound_pruning =
      Core.Exhaustive.run
        ~config:
          {
            Core.Exhaustive.default_config with
            shapes = contested_shapes;
            objective = Core.Exhaustive.Lowest_cost;
            bound_pruning;
          }
        g
    in
    check (Alcotest.float 0.001) "same optimal cost"
      (Core.Solution.total_cost_after g (run false).Core.Exhaustive.solution)
      (Core.Solution.total_cost_after g (run true).Core.Exhaustive.solution)
  done

(* --- Deadline -------------------------------------------------------------- *)

let test_deadline () =
  let g =
    Randgen.Generator.generate ~rng:(Prng.create 99) ~inner:20 ()
  in
  let r = run ~deadline_s:0.05 g in
  check Alcotest.bool "times out" true
    (r.Core.Exhaustive.outcome = Core.Exhaustive.Timed_out);
  Testlib.check_ok "best-so-far still valid"
    (Core.Solution.check g r.Core.Exhaustive.solution)

(* --- Pruning soundness ------------------------------------------------------ *)

let test_bound_pruning_preserves_optimum () =
  let rng = Prng.create 5 in
  for _ = 1 to 10 do
    let inner = 3 + Prng.int rng 5 in
    let g = Randgen.Generator.generate ~rng:(Prng.split rng) ~inner () in
    let pruned = run g in
    let unpruned =
      run
        ~config:
          { Core.Exhaustive.default_config with bound_pruning = false }
        g
    in
    check Alcotest.int "same optimal total"
      (Core.Solution.total_inner_after g unpruned.Core.Exhaustive.solution)
      (Core.Solution.total_inner_after g pruned.Core.Exhaustive.solution);
    check Alcotest.int "same coverage"
      (Core.Solution.covered_count unpruned.Core.Exhaustive.solution)
      (Core.Solution.covered_count pruned.Core.Exhaustive.solution);
    check Alcotest.bool "pruning explores no more nodes" true
      (pruned.Core.Exhaustive.nodes_explored
       <= unpruned.Core.Exhaustive.nodes_explored)
  done

(* --- Exponential growth (the paper's §4.1 observation) ----------------------- *)

let test_search_space_grows () =
  let leaves n =
    let g = Randgen.Generator.worst_case ~inner:n in
    (run
       ~config:{ Core.Exhaustive.default_config with bound_pruning = false }
       g)
      .Core.Exhaustive.leaves_checked
  in
  let l4 = leaves 4 and l6 = leaves 6 in
  check Alcotest.bool "leaf count explodes" true (l6 > 10 * l4)

(* --- Properties --------------------------------------------------------------- *)

let prop_never_worse_than_paredown =
  QCheck.Test.make ~name:"optimal <= PareDown on small designs" ~count:40
    (Testlib.network_arbitrary ~max_inner:8 ()) (fun (_, _, g) ->
      let exh = (run g).Core.Exhaustive.solution in
      let pd = (Core.Paredown.run g).Core.Paredown.solution in
      Core.Solution.total_inner_after g exh
      <= Core.Solution.total_inner_after g pd)

let prop_never_worse_than_aggregation =
  QCheck.Test.make ~name:"optimal <= aggregation on small designs" ~count:40
    (Testlib.network_arbitrary ~max_inner:8 ()) (fun (_, _, g) ->
      let exh = (run g).Core.Exhaustive.solution in
      let agg = Core.Aggregation.run g in
      Core.Solution.total_inner_after g exh
      <= Core.Solution.total_inner_after g agg)

let prop_solutions_valid =
  QCheck.Test.make ~name:"solutions valid" ~count:40
    (Testlib.network_arbitrary ~max_inner:8 ()) (fun (_, _, g) ->
      match Core.Solution.check g (run g).Core.Exhaustive.solution with
      | Ok () -> true
      | Error _ -> false)

let () =
  Alcotest.run "exhaustive"
    [
      ( "optima",
        [
          Alcotest.test_case "podium timer 3" `Quick test_podium_optimal;
          Alcotest.test_case "library designs" `Slow
            test_small_library_optima;
          Alcotest.test_case "chain merges fully" `Quick
            test_chain_merges_fully;
        ] );
      ( "cost objective",
        [
          Alcotest.test_case "objectives disagree" `Quick
            test_objectives_disagree;
          Alcotest.test_case "cost pruning sound" `Quick
            test_cost_pruning_sound;
        ] );
      ( "budget",
        [ Alcotest.test_case "deadline" `Quick test_deadline ] );
      ( "pruning",
        [
          Alcotest.test_case "bound pruning sound" `Quick
            test_bound_pruning_preserves_optimum;
          Alcotest.test_case "search space grows" `Quick
            test_search_space_grows;
        ] );
      ( "properties",
        Testlib.qtests
          [
            prop_never_worse_than_paredown;
            prop_never_worse_than_aggregation; prop_solutions_valid;
          ] );
    ]
