(* Tests for the experiment harness (Tables 1 and 2, scalability,
   ablations) and the report utilities it relies on. *)

let check = Alcotest.check

(* --- Report.Stats ---------------------------------------------------- *)

let feq = Alcotest.float 1e-9

let test_stats () =
  check feq "mean" 2.0 (Report.Stats.mean [ 1.; 2.; 3. ]);
  check feq "mean empty" 0.0 (Report.Stats.mean []);
  check feq "median odd" 2.0 (Report.Stats.median [ 3.; 1.; 2. ]);
  check feq "median even" 2.5 (Report.Stats.median [ 1.; 2.; 3.; 4. ]);
  check feq "stddev" 1.0 (Report.Stats.stddev [ 1.; 3.; 1.; 3. ]);
  check feq "stddev single" 0.0 (Report.Stats.stddev [ 5. ]);
  check feq "min" 1.0 (Report.Stats.minimum [ 3.; 1.; 2. ]);
  check feq "max" 3.0 (Report.Stats.maximum [ 3.; 1.; 2. ]);
  check feq "mean_int" 1.5 (Report.Stats.mean_int [ 1; 2 ]);
  check feq "percent" 50.0 (Report.Stats.percent_increase ~baseline:2.0 3.0);
  check feq "percent zero baseline" 0.0
    (Report.Stats.percent_increase ~baseline:0.0 3.0)

(* --- Report.Timing ---------------------------------------------------- *)

let test_format_seconds () =
  check Alcotest.string "sub-ms" "<1ms"
    (Report.Timing.format_seconds 0.0004);
  check Alcotest.string "ms" "6.56ms" (Report.Timing.format_seconds 0.00656);
  check Alcotest.string "seconds" "4.79 s"
    (Report.Timing.format_seconds 4.79);
  check Alcotest.string "minutes" "3.67 min"
    (Report.Timing.format_seconds (3.67 *. 60.))

let test_timing_measures () =
  let result, elapsed = Report.Timing.time (fun () -> 6 * 7) in
  check Alcotest.int "result" 42 result;
  check Alcotest.bool "non-negative" true (elapsed >= 0.);
  let result, _ =
    Report.Timing.time_best_of ~repeats:3 (fun () -> "done")
  in
  check Alcotest.string "best-of result" "done" result

(* --- Report.Table ------------------------------------------------------ *)

let test_table_render () =
  let text =
    Report.Table.render ~headers:[ "name"; "n" ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
      ()
  in
  check Alcotest.bool "left column padded" true
    (Testlib.contains text "alpha  ");
  check Alcotest.bool "right aligned" true (Testlib.contains text " 1\n");
  check Alcotest.bool "separator" true (Testlib.contains text "-----")

let test_table_csv () =
  let csv =
    Report.Table.render_csv ~headers:[ "a"; "b" ]
      ~rows:[ [ "x,y"; "has \"quotes\"" ] ]
  in
  check Alcotest.bool "comma quoted" true
    (Testlib.contains csv "\"x,y\"");
  check Alcotest.bool "quotes doubled" true
    (Testlib.contains csv "\"has \"\"quotes\"\"\"")

(* --- Table 1 ------------------------------------------------------------ *)

let table1_config =
  {
    Experiments.Table1.default_config with
    exhaustive_cutoff = 8;
    timing_repeats = 1;
  }

let test_table1_rows () =
  let rows = Experiments.Table1.run ~config:table1_config () in
  check Alcotest.int "15 rows" 15 (List.length rows);
  let podium =
    List.find
      (fun r ->
        r.Experiments.Table1.design.Designs.Design.name = "Podium Timer 3")
      rows
  in
  check Alcotest.int "podium pd total" 3
    podium.Experiments.Table1.paredown.Experiments.Table1.total;
  (match podium.Experiments.Table1.exhaustive with
   | Some e ->
     check Alcotest.int "podium exh total" 3 e.Experiments.Table1.total;
     check (Alcotest.option Alcotest.int) "overhead 0" (Some 0)
       podium.Experiments.Table1.block_overhead
   | None -> Alcotest.fail "podium exhaustive missing");
  (* rows beyond the cutoff carry no exhaustive data, like the paper *)
  let big =
    List.find
      (fun r ->
        r.Experiments.Table1.design.Designs.Design.name = "Timed Passage")
      rows
  in
  check Alcotest.bool "-- beyond cutoff" true
    (big.Experiments.Table1.exhaustive = None)

let test_table1_rendering () =
  let rows = Experiments.Table1.run ~config:table1_config () in
  let text = Experiments.Table1.to_table rows in
  List.iter
    (fun d ->
      check Alcotest.bool (d.Designs.Design.name ^ " present") true
        (Testlib.contains text d.Designs.Design.name))
    Designs.Library.table1;
  let csv = Experiments.Table1.to_csv rows in
  check Alcotest.int "csv line count" 16
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)))

(* --- Table 2 -------------------------------------------------------------- *)

let table2_config =
  {
    Experiments.Table2.default_config with
    sizes = [ (3, 12); (5, 8); (14, 6) ];
    exhaustive_cutoff = 6;
    exhaustive_deadline_s = 5.0;
  }

let test_table2_buckets () =
  let buckets = Experiments.Table2.run ~config:table2_config () in
  check Alcotest.int "bucket count" 3 (List.length buckets);
  List.iter
    (fun b ->
      let open Experiments.Table2 in
      check Alcotest.bool "pd total within [1, inner]" true
        (b.pd_total_mean >= 1.0 && b.pd_total_mean <= float_of_int b.inner);
      if b.inner <= 6 then begin
        check Alcotest.int "exhaustive completed everywhere" b.count
          b.exhaustive_count;
        match b.exh_total_mean, b.block_overhead_mean with
        | Some exh, Some overhead ->
          check Alcotest.bool "overhead non-negative" true (overhead >= 0.);
          check Alcotest.bool "optimal <= heuristic" true
            (exh <= b.pd_total_mean +. 1e-9)
        | _ -> Alcotest.fail "missing exhaustive stats"
      end
      else
        check Alcotest.bool "no exhaustive beyond cutoff" true
          (b.exh_total_mean = None))
    buckets

let test_table2_deterministic () =
  let run () =
    Experiments.Table2.to_csv (Experiments.Table2.run ~config:table2_config ())
  in
  check Alcotest.string "same seed, same table" (run ()) (run ())

(* --- Scale and ablation ----------------------------------------------------- *)

let test_scale_worst_case_formula () =
  let points = Experiments.Scale.run_worst_case ~sizes:[ 5; 12 ] () in
  List.iter
    (fun p ->
      let n = p.Experiments.Scale.inner in
      check Alcotest.int
        (Printf.sprintf "fit checks n=%d" n)
        (n * (n + 1) / 2)
        p.Experiments.Scale.fit_checks)
    points

let test_scale_random_points () =
  let points = Experiments.Scale.run_random ~sizes:[ 10; 30 ] () in
  check (Alcotest.list Alcotest.int) "sizes" [ 10; 30 ]
    (List.map (fun p -> p.Experiments.Scale.inner) points);
  List.iter
    (fun p ->
      check Alcotest.bool "reduction happened" true
        (p.Experiments.Scale.total <= p.Experiments.Scale.inner))
    points

let test_power_rows () =
  let rows = Experiments.Power.run ~seed:23 ~steps:60 () in
  check Alcotest.int "one row per design"
    (List.length Designs.Library.all)
    (List.length rows);
  List.iter
    (fun r ->
      let open Experiments.Power in
      check Alcotest.bool (r.design ^ " never increases packets") true
        (r.packets_after <= r.packets_before);
      check Alcotest.bool (r.design ^ " percentage consistent") true
        (r.packets_saved_percent >= 0. && r.packets_saved_percent <= 100.);
      (* packet savings occur exactly when blocks were merged *)
      if r.inner_after = r.inner_before then
        check Alcotest.int (r.design ^ " unchanged network, same packets")
          r.packets_before r.packets_after)
    rows;
  (* the worked example merges 8 blocks into 3: packets must drop *)
  let podium =
    List.find
      (fun r -> r.Experiments.Power.design = "Podium Timer 3")
      rows
  in
  check Alcotest.bool "podium saves packets" true
    (podium.Experiments.Power.packets_after
     < podium.Experiments.Power.packets_before)

let test_ablation_variants () =
  let variants = Experiments.Ablation.run ~seed:1 ~count:10 ~inner:12 () in
  check Alcotest.int "seven variants" 7 (List.length variants);
  let find label =
    List.find
      (fun v -> v.Experiments.Ablation.label = label)
      variants
  in
  let paper = find "paredown (paper)" in
  check Alcotest.int "paper variant always valid" 0
    paper.Experiments.Ablation.invalid_solutions;
  let agg = find "aggregation baseline" in
  check Alcotest.bool "aggregation no better than paredown" true
    (agg.Experiments.Ablation.mean_total
     >= paper.Experiments.Ablation.mean_total -. 1e-9);
  let wide = find "shapes {2x2, 4x4}" in
  check Alcotest.bool "wider shapes reduce totals" true
    (wide.Experiments.Ablation.mean_total
     <= paper.Experiments.Ablation.mean_total +. 1e-9)

let () =
  Alcotest.run "experiments"
    [
      ( "report",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "format seconds" `Quick test_format_seconds;
          Alcotest.test_case "timing" `Quick test_timing_measures;
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "table1",
        [
          Alcotest.test_case "rows" `Quick test_table1_rows;
          Alcotest.test_case "rendering" `Quick test_table1_rendering;
        ] );
      ( "table2",
        [
          Alcotest.test_case "buckets" `Quick test_table2_buckets;
          Alcotest.test_case "deterministic" `Quick test_table2_deterministic;
        ] );
      ( "scale",
        [
          Alcotest.test_case "worst-case formula" `Quick
            test_scale_worst_case_formula;
          Alcotest.test_case "random points" `Quick test_scale_random_points;
        ] );
      ( "ablation",
        [ Alcotest.test_case "variants" `Quick test_ablation_variants ] );
      ( "power",
        [ Alcotest.test_case "rows" `Quick test_power_rows ] );
    ]
