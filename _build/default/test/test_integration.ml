(* End-to-end integration: for every library design, run the full tool
   chain — partition, validate, rewrite, co-simulate, generate C, check
   program size — exactly the flow a user of the framework exercises.
   Also covers cross-algorithm agreement and file round-trips. *)

module Graph = Netlist.Graph

let check = Alcotest.check

let full_pipeline d () =
  let g = d.Designs.Design.network in
  let name = d.Designs.Design.name in
  (* 1. partition *)
  let pd = Core.Paredown.run g in
  let sol = pd.Core.Paredown.solution in
  Testlib.check_ok (name ^ ": solution") (Core.Solution.check g sol);
  (* 2. rewrite *)
  let result = Codegen.Replace.apply g sol in
  let g' = result.Codegen.Replace.network in
  Testlib.check_ok
    (name ^ ": rewritten network")
    (Result.map_error (String.concat "; ") (Graph.validate g'));
  check Alcotest.int
    (name ^ ": inner counts agree")
    (Core.Solution.total_inner_after g sol)
    (Graph.inner_count g');
  (* 3. verify by co-simulation *)
  Testlib.check_ok
    (name ^ ": equivalent")
    (Result.map_error
       (Format.asprintf "%a" Sim.Equiv.pp_mismatch)
       (Sim.Equiv.check_random ~reference:g ~candidate:g' ~seed:31 ~steps:50));
  (* 4. code generation for every programmable block *)
  List.iter
    (fun prog_id ->
      let desc = Graph.descriptor g' prog_id in
      let text =
        Codegen.C_emit.program ~block_name:name
          ~n_inputs:desc.Eblock.Descriptor.n_inputs
          ~n_outputs:desc.Eblock.Descriptor.n_outputs
          desc.Eblock.Descriptor.behavior
      in
      check Alcotest.bool (name ^ ": C emitted") true
        (Testlib.contains text "eblock_step");
      check Alcotest.bool
        (name ^ ": fits the PIC")
        true
        (Codegen.Size.fits_pic16f628 desc.Eblock.Descriptor.behavior))
    result.Codegen.Replace.programmable_ids

let pipeline_cases =
  List.map
    (fun d ->
      Alcotest.test_case d.Designs.Design.name `Quick (full_pipeline d))
    Designs.Library.all

(* exhaustive-based synthesis must be equivalent too *)
let test_exhaustive_synthesis_equivalent () =
  let g = Testlib.podium in
  let sol = (Core.Exhaustive.run g).Core.Exhaustive.solution in
  let result = Codegen.Replace.apply g sol in
  Testlib.check_ok "exhaustive synthesis equivalent"
    (Result.map_error
       (Format.asprintf "%a" Sim.Equiv.pp_mismatch)
       (Sim.Equiv.check_random ~reference:g
          ~candidate:result.Codegen.Replace.network ~seed:77 ~steps:60))

(* a synthesised network synthesises again to itself (fixpoint):
   programmable blocks are not partitionable *)
let test_synthesis_fixpoint () =
  let g = Testlib.podium in
  let once, _ = Codegen.Replace.synthesize g in
  let twice, pd2 = Codegen.Replace.synthesize once.Codegen.Replace.network in
  check Alcotest.int "no further partitions" 0
    (Core.Solution.programmable_count pd2.Core.Paredown.solution);
  check Alcotest.int "same inner count"
    (Graph.inner_count once.Codegen.Replace.network)
    (Graph.inner_count twice.Codegen.Replace.network)

(* save -> load -> synthesise from a netlist file, the CLI round trip *)
let test_file_roundtrip_pipeline () =
  let g = Designs.Library.noise_at_night_detector.Designs.Design.network in
  let path = Filename.temp_file "paredown_test" ".ebn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Netlist.Textio.write_file path ~name:"noise" g;
      let name, loaded = Netlist.Textio.read_file path in
      check (Alcotest.option Alcotest.string) "name" (Some "noise") name;
      let result, _ = Codegen.Replace.synthesize loaded in
      Testlib.check_ok "pipeline from file"
        (Result.map_error
           (Format.asprintf "%a" Sim.Equiv.pp_mismatch)
           (Sim.Equiv.check_random ~reference:loaded
              ~candidate:result.Codegen.Replace.network ~seed:5 ~steps:40)))

(* the multi-shape extension end to end: bigger blocks, still equivalent *)
let test_multi_shape_pipeline () =
  let g = Testlib.podium in
  let config =
    {
      Core.Paredown.default_config with
      shapes =
        [ Core.Shape.default; Core.Shape.make ~inputs:4 ~outputs:4 ~cost:1.9 () ];
    }
  in
  let result, pd = Codegen.Replace.synthesize ~config g in
  check Alcotest.int "single 4x4 block" 1
    (Core.Solution.programmable_count pd.Core.Paredown.solution);
  Testlib.check_ok "4x4 synthesis equivalent"
    (Result.map_error
       (Format.asprintf "%a" Sim.Equiv.pp_mismatch)
       (Sim.Equiv.check_random ~reference:g
          ~candidate:result.Codegen.Replace.network ~seed:41 ~steps:60))

let () =
  Alcotest.run "integration"
    [
      ("full pipeline (library)", pipeline_cases);
      ( "variations",
        [
          Alcotest.test_case "exhaustive synthesis" `Quick
            test_exhaustive_synthesis_equivalent;
          Alcotest.test_case "synthesis fixpoint" `Quick
            test_synthesis_fixpoint;
          Alcotest.test_case "file round trip" `Quick
            test_file_roundtrip_pipeline;
          Alcotest.test_case "multi-shape" `Quick test_multi_shape_pipeline;
        ] );
    ]
