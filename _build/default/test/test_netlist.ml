(* Unit and property tests for the network model: graph construction,
   structural validation, levels, cut metrics, convexity, and the text
   and DOT serialisations. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id
module Cut = Netlist.Cut
module C = Eblock.Catalog

let check = Alcotest.check
let set = Testlib.set
let podium = Testlib.podium

let ids = Alcotest.list Alcotest.int

(* --- Construction and errors ----------------------------------------- *)

let structural name f =
  match f () with
  | exception Graph.Structural_error _ -> ()
  | _ -> Alcotest.failf "%s did not raise" name

let test_add_and_ids () =
  let g, a = Graph.add Graph.empty C.button in
  let g, b = Graph.add g C.led in
  check Alcotest.int "fresh ids" 2 b;
  check ids "node_ids sorted" [ a; b ] (Graph.node_ids g);
  let g, explicit = Graph.add ~id:10 g C.not_gate in
  check Alcotest.int "explicit id" 10 explicit;
  let _, next = Graph.add g C.not_gate in
  check Alcotest.int "next after max" 11 next

let test_duplicate_id () =
  let g, a = Graph.add Graph.empty C.button in
  structural "duplicate id" (fun () -> Graph.add ~id:a g C.led)

let test_connect_errors () =
  let g, s = Graph.add Graph.empty C.button in
  let g, n = Graph.add g C.not_gate in
  let g, l = Graph.add g C.led in
  structural "unknown src" (fun () ->
      Graph.connect g ~src:(99, 0) ~dst:(n, 0));
  structural "unknown dst" (fun () ->
      Graph.connect g ~src:(s, 0) ~dst:(99, 0));
  structural "src port range" (fun () ->
      Graph.connect g ~src:(s, 1) ~dst:(n, 0));
  structural "dst port range" (fun () ->
      Graph.connect g ~src:(s, 0) ~dst:(n, 1));
  structural "sensor has no inputs" (fun () ->
      Graph.connect g ~src:(n, 0) ~dst:(s, 0));
  let g = Graph.connect g ~src:(s, 0) ~dst:(n, 0) in
  structural "double driver" (fun () ->
      Graph.connect g ~src:(s, 0) ~dst:(n, 0));
  let g = Graph.connect g ~src:(n, 0) ~dst:(l, 0) in
  Testlib.check_ok "valid now"
    (Result.map_error (String.concat "; ") (Graph.validate g))

let test_fanout_allowed () =
  (* one output port may drive several consumers; each edge is separate *)
  let g, s = Graph.add Graph.empty C.button in
  let g, n1 = Graph.add g C.not_gate in
  let g, n2 = Graph.add g C.not_gate in
  let g = Graph.connect g ~src:(s, 0) ~dst:(n1, 0) in
  let g = Graph.connect g ~src:(s, 0) ~dst:(n2, 0) in
  check Alcotest.int "out degree" 2 (Graph.out_degree g s);
  check ids "succs distinct" [ n1; n2 ] (Graph.succs g s)

let test_remove_node () =
  let g, _, inner, _ = Testlib.chain [ C.not_gate; C.toggle ] in
  let first = List.hd inner in
  let g' = Graph.remove_node g first in
  check Alcotest.bool "gone" false (Graph.mem g' first);
  check Alcotest.int "edges dropped" (Graph.edge_count g - 2)
    (Graph.edge_count g')

let test_remove_edge () =
  let g, s, inner, _ = Testlib.chain [ C.not_gate ] in
  let first = List.hd inner in
  let e = List.hd (Graph.fanout g s) in
  let g' = Graph.remove_edge g e in
  check Alcotest.int "fanin now empty" 0 (Graph.in_degree g' first);
  check Alcotest.bool "validate flags undriven port" true
    (match Graph.validate g' with Error _ -> true | Ok () -> false)

(* --- Degrees, drivers, accessors -------------------------------------- *)

let test_podium_structure () =
  check Alcotest.int "nodes" 12 (Graph.node_count podium);
  check Alcotest.int "edges" 13 (Graph.edge_count podium);
  check Alcotest.int "inner" 8 (Graph.inner_count podium);
  check ids "sensors" [ 1 ] (Graph.sensors podium);
  check ids "outputs" [ 10; 11; 12 ] (Graph.primary_outputs podium);
  check ids "inner nodes" [ 2; 3; 4; 5; 6; 7; 8; 9 ]
    (Graph.inner_nodes podium);
  check Alcotest.int "node 8 indegree" 2 (Graph.in_degree podium 8);
  check Alcotest.int "node 2 outdegree" 2 (Graph.out_degree podium 2);
  check ids "preds of 8" [ 6; 7 ] (Graph.preds podium 8);
  check ids "succs of 5" [ 6; 7 ] (Graph.succs podium 5);
  check Alcotest.bool "driver of 8.1 is 7.0" true
    (Graph.driver podium 8 1 = Some { Graph.node = 7; port = 0 })

let test_total_cost () =
  (* 1 sensor + 3 outputs + 8 predefined compute = 12 unit-cost blocks *)
  check (Alcotest.float 0.001) "podium cost" 12.0 (Graph.total_cost podium)

(* --- Validation -------------------------------------------------------- *)

let test_validate_problems () =
  let no_output =
    let g, s = Graph.add Graph.empty C.button in
    let g, n = Graph.add g C.not_gate in
    Graph.connect g ~src:(s, 0) ~dst:(n, 0)
  in
  (match Graph.validate no_output with
   | Error problems ->
     check Alcotest.bool "missing output reported" true
       (List.exists (fun m -> Testlib.contains m "no output block") problems)
   | Ok () -> Alcotest.fail "accepted network without outputs");
  let undriven =
    let g, _ = Graph.add Graph.empty C.button in
    let g, _ = Graph.add g C.and2 in
    let g, _ = Graph.add g C.led in
    g
  in
  (match Graph.validate undriven with
   | Error problems ->
     check Alcotest.bool "undriven ports reported" true
       (List.length problems >= 3)
   | Ok () -> Alcotest.fail "accepted undriven inputs")

let test_cycle_detection () =
  let g, s = Graph.add Graph.empty C.button in
  let g, a = Graph.add g C.and2 in
  let g, b = Graph.add g C.not_gate in
  let g, l = Graph.add g C.led in
  let g = Graph.connect g ~src:(s, 0) ~dst:(a, 0) in
  let g = Graph.connect g ~src:(a, 0) ~dst:(b, 0) in
  let g = Graph.connect g ~src:(b, 0) ~dst:(a, 1) in  (* loop a -> b -> a *)
  let g = Graph.connect g ~src:(a, 0) ~dst:(l, 0) in
  check Alcotest.bool "cyclic" false (Graph.is_acyclic g);
  structural "topological_order raises" (fun () ->
      Graph.topological_order g);
  (match Graph.validate g with
   | Error problems ->
     check Alcotest.bool "loop reported" true
       (List.exists (fun m -> Testlib.contains m "loop") problems)
   | Ok () -> Alcotest.fail "accepted cyclic network")

(* --- Order and levels --------------------------------------------------- *)

let test_topological_order () =
  let order = Graph.topological_order podium in
  check Alcotest.int "all nodes" 12 (List.length order);
  let position = Hashtbl.create 12 in
  List.iteri (fun i id -> Hashtbl.replace position id i) order;
  List.iter
    (fun e ->
      let s = Hashtbl.find position e.Graph.src.Graph.node in
      let d = Hashtbl.find position e.Graph.dst.Graph.node in
      check Alcotest.bool "edge respects order" true (s < d))
    (Graph.edges podium)

let test_levels () =
  let levels = Graph.levels podium in
  let level id = Node_id.Map.find id levels in
  check Alcotest.int "sensor" 0 (level 1);
  check Alcotest.int "toggle" 1 (level 2);
  check Alcotest.int "delays" 2 (level 3);
  check Alcotest.int "or" 3 (level 5);
  check Alcotest.int "splitters" 4 (level 6);
  check Alcotest.int "node 8 (max path)" 5 (level 8);
  check Alcotest.int "primary output after 9" 6 (level 12);
  check Alcotest.int "via accessor" 5 (Graph.level podium 8)

let test_reachable () =
  let r = Graph.reachable podium ~from:(set [ 5 ]) in
  check Testlib.id_set "downstream of 5" (set [ 6; 7; 8; 9; 10; 11; 12 ]) r;
  let r = Graph.reachable podium ~from:(set [ 9 ]) in
  check Testlib.id_set "downstream of 9" (set [ 12 ]) r

(* --- Cut metrics (the Figure 5 numbers) -------------------------------- *)

let test_cut_counts () =
  let io s = (Cut.inputs_used podium s, Cut.outputs_used podium s) in
  check (Alcotest.pair Alcotest.int Alcotest.int) "all inner" (1, 3)
    (io (set [ 2; 3; 4; 5; 6; 7; 8; 9 ]));
  check (Alcotest.pair Alcotest.int Alcotest.int) "minus 9" (1, 3)
    (io (set [ 2; 3; 4; 5; 6; 7; 8 ]));
  check (Alcotest.pair Alcotest.int Alcotest.int) "minus 9,8" (1, 4)
    (io (set [ 2; 3; 4; 5; 6; 7 ]));
  check (Alcotest.pair Alcotest.int Alcotest.int) "first partition" (1, 2)
    (io (set [ 2; 3; 4; 5 ]));
  check (Alcotest.pair Alcotest.int Alcotest.int) "second partition" (2, 2)
    (io (set [ 6; 8; 9 ]));
  check (Alcotest.pair Alcotest.int Alcotest.int) "single 7" (1, 2)
    (io (set [ 7 ]))

let test_cut_edges () =
  let in_e = Cut.in_edges podium (set [ 6; 8; 9 ]) in
  check ids "in edge sources" [ 5; 7 ]
    (List.sort compare (List.map (fun e -> e.Graph.src.Graph.node) in_e));
  let out_e = Cut.out_edges podium (set [ 6; 8; 9 ]) in
  check ids "out edge destinations" [ 11; 12 ]
    (List.sort compare (List.map (fun e -> e.Graph.dst.Graph.node) out_e))

let test_border_blocks () =
  check ids "initial candidate borders" [ 2; 8; 9 ]
    (Cut.border_blocks podium (set [ 2; 3; 4; 5; 6; 7; 8; 9 ]));
  check ids "after removing 9" [ 2; 8 ]
    (Cut.border_blocks podium (set [ 2; 3; 4; 5; 6; 7; 8 ]));
  check ids "after removing 8" [ 2; 6; 7 ]
    (Cut.border_blocks podium (set [ 2; 3; 4; 5; 6; 7 ]))

let test_convexity () =
  check Alcotest.bool "full inner set convex" true
    (Cut.is_convex podium (set [ 2; 3; 4; 5; 6; 7; 8; 9 ]));
  check Alcotest.bool "{6,8,9} convex" true
    (Cut.is_convex podium (set [ 6; 8; 9 ]));
  (* 2 -> 3 -> 5: dropping 3 breaks convexity via the outside path *)
  check Alcotest.bool "{2,5} not convex" false
    (Cut.is_convex podium (set [ 2; 5 ]));
  (* disconnected but convex *)
  check Alcotest.bool "{3,4} convex (parallel)" true
    (Cut.is_convex podium (set [ 3; 4 ]))

let test_net_counting () =
  (* node 2 fans out to 3 and 4 from one port: 2 edges but 1 net *)
  let s = set [ 3; 4 ] in
  check Alcotest.int "edges in" 2 (Cut.inputs_used podium s);
  check Alcotest.int "nets in" 1 (Cut.inputs_used_nets podium s);
  check Alcotest.int "edges out" 2 (Cut.outputs_used podium s);
  check Alcotest.int "nets out" 2 (Cut.outputs_used_nets podium s)

(* --- Statistics --------------------------------------------------------- *)

let test_stats_podium () =
  let s = Netlist.Stats.compute podium in
  check Alcotest.int "nodes" 12 s.Netlist.Stats.nodes;
  check Alcotest.int "edges" 13 s.Netlist.Stats.edges;
  check Alcotest.int "sensors" 1 s.Netlist.Stats.sensors;
  check Alcotest.int "outputs" 3 s.Netlist.Stats.primary_outputs;
  check Alcotest.int "inner" 8 s.Netlist.Stats.inner;
  check Alcotest.int "compute" 8 s.Netlist.Stats.compute;
  check Alcotest.int "comm" 0 s.Netlist.Stats.comm;
  check Alcotest.int "depth" 6 s.Netlist.Stats.depth;
  check Alcotest.int "max fanout" 2 s.Netlist.Stats.max_fanout;
  check Alcotest.int "max fanin" 2 s.Netlist.Stats.max_fanin;
  (* nodes 5 and 8 reconverge on paths from the single button *)
  check Alcotest.int "reconvergences" 2 s.Netlist.Stats.reconvergences;
  check (Alcotest.float 0.001) "cost" 12.0 s.Netlist.Stats.total_cost

let test_stats_no_reconvergence () =
  let g, _, _, _ = Testlib.chain [ C.not_gate; C.toggle; C.trip_latch ] in
  let s = Netlist.Stats.compute g in
  check Alcotest.int "chain has none" 0 s.Netlist.Stats.reconvergences;
  check Alcotest.int "depth = chain length" 4 s.Netlist.Stats.depth

let test_stats_synthesised () =
  (* after synthesis the programmable count shows up in the mix *)
  let result, _ = Codegen.Replace.synthesize podium in
  let s = Netlist.Stats.compute result.Codegen.Replace.network in
  check Alcotest.int "programmable" 2 s.Netlist.Stats.programmable;
  check Alcotest.int "compute left" 1 s.Netlist.Stats.compute

(* --- Text round-trip ---------------------------------------------------- *)

let test_textio_roundtrip () =
  let text = Netlist.Textio.to_string ~name:"podium" podium in
  let name, parsed = Netlist.Textio.of_string text in
  check (Alcotest.option Alcotest.string) "name" (Some "podium") name;
  check Alcotest.int "nodes" (Graph.node_count podium)
    (Graph.node_count parsed);
  check Alcotest.int "edges" (Graph.edge_count podium)
    (Graph.edge_count parsed);
  check Alcotest.bool "same text again" true
    (String.equal text (Netlist.Textio.to_string ~name:"podium" parsed))

let test_textio_parse_errors () =
  let fails_at expected_line text =
    match Netlist.Textio.of_string text with
    | exception Netlist.Textio.Parse_error { line; _ } ->
      check Alcotest.int "line number" expected_line line
    | _ -> Alcotest.fail "parse did not fail"
  in
  fails_at 1 "bogus directive";
  fails_at 2 "node 1 button\nnode 2 not_a_block";
  fails_at 3 "node 1 button\nnode 2 led\nedge 1.0-2.0";
  fails_at 2 "node 1 button\nedge 1.0 99.0";
  fails_at 3 "node 1 button\nnode 2 led\nedge 1.5 2.0"

let test_textio_comments () =
  let _, g =
    Netlist.Textio.of_string
      "# a comment line\nnode 1 button # trailing comment\nnode 2 led\n\
       edge 1.0 2.0\n\n"
  in
  check Alcotest.int "parsed through comments" 2 (Graph.node_count g)

let test_defblock_parse () =
  let _, g =
    Netlist.Textio.of_string
      "defblock inv2 compute 1 2 init true false {\n\
      \  out[0] = !in[0];\n\
      \  out[1] = in[0];\n\
       }\n\
       node 1 button\n\
       node 2 inv2\n\
       node 3 led\n\
       node 4 led\n\
       edge 1.0 2.0\n\
       edge 2.0 3.0\n\
       edge 2.1 4.0\n"
  in
  let d = Graph.descriptor g 2 in
  check Alcotest.string "name" "inv2" d.Eblock.Descriptor.name;
  check Alcotest.int "outputs" 2 d.Eblock.Descriptor.n_outputs;
  check Alcotest.bool "init carried" true
    (d.Eblock.Descriptor.output_init
     = [| Behavior.Ast.Bool true; Behavior.Ast.Bool false |]);
  (* and it simulates: the inverting port follows the power-on sweep *)
  let engine = Sim.Engine.create g in
  check Testlib.value "inverting port" (Bool true)
    (Sim.Engine.output_value engine 3)

let test_defblock_errors () =
  let fails_at expected_line text =
    match Netlist.Textio.of_string text with
    | exception Netlist.Textio.Parse_error { line; _ } ->
      check Alcotest.int "line" expected_line line
    | _ -> Alcotest.fail "parse did not fail"
  in
  fails_at 1 "defblock x compute 1 1";  (* no opening brace *)
  fails_at 1 "defblock x nonsense 1 1 {\n}\n";
  fails_at 1 "defblock x compute 1 1 {\n  out[0] = in[0];\n";  (* unclosed *)
  (* arity violations are reported at the defblock header *)
  fails_at 1 "defblock x compute 1 1 {\n  out[0] = in[3];\n}\n";
  (* duplicates are reported at the second definition's header *)
  fails_at 4
    "defblock x compute 1 1 {\n  out[0] = in[0];\n}\n\
     defblock x compute 1 1 {\n  out[0] = in[0];\n}\n";
  (* behaviour syntax errors are reported at the offending source line *)
  fails_at 3 "defblock x compute 1 1 {\n  out[0] = in[0];\n  bogus @;\n}\n"

let test_synthesised_roundtrip () =
  (* programmable blocks serialise as defblocks and load back equivalent *)
  let g = Testlib.podium in
  let result, _ = Codegen.Replace.synthesize g in
  let g' = result.Codegen.Replace.network in
  let text = Netlist.Textio.to_string ~name:"synth" g' in
  check Alcotest.bool "defblock emitted" true
    (Testlib.contains text "defblock prog");
  let _, loaded = Netlist.Textio.of_string text in
  Testlib.check_ok "loaded equivalent"
    (Result.map_error
       (Format.asprintf "%a" Sim.Equiv.pp_mismatch)
       (Sim.Equiv.check_random ~reference:g' ~candidate:loaded ~seed:3
          ~steps:40))

let test_dot_output () =
  let dot = Netlist.Dot.to_string ~title:"t" podium in
  check Alcotest.bool "digraph" true (Testlib.contains dot "digraph");
  check Alcotest.bool "every node present" true
    (List.for_all
       (fun id -> Testlib.contains dot (Printf.sprintf "n%d " id))
       (Graph.node_ids podium));
  let highlighted =
    Netlist.Dot.to_string ~highlight:[ set [ 2; 3; 4; 5 ] ] podium
  in
  check Alcotest.bool "cluster for highlight" true
    (Testlib.contains highlighted "subgraph cluster_0")

(* --- Properties --------------------------------------------------------- *)

let prop_generated_topological =
  QCheck.Test.make ~name:"topological order respects every edge" ~count:60
    (Testlib.network_arbitrary ()) (fun (_, _, g) ->
      let order = Graph.topological_order g in
      let position = Hashtbl.create 64 in
      List.iteri (fun i id -> Hashtbl.replace position id i) order;
      List.for_all
        (fun e ->
          Hashtbl.find position e.Graph.src.Graph.node
          < Hashtbl.find position e.Graph.dst.Graph.node)
        (Graph.edges g))

let prop_levels_monotone =
  QCheck.Test.make ~name:"levels increase along edges" ~count:60
    (Testlib.network_arbitrary ()) (fun (_, _, g) ->
      let levels = Graph.levels g in
      List.for_all
        (fun e ->
          Node_id.Map.find e.Graph.src.Graph.node levels
          < Node_id.Map.find e.Graph.dst.Graph.node levels)
        (Graph.edges g))

let prop_cut_complement =
  (* inputs of a set are outputs of its complement and vice versa *)
  QCheck.Test.make ~name:"cut counts agree with complement" ~count:60
    (QCheck.pair (Testlib.network_arbitrary ()) QCheck.(int_bound 1000))
    (fun ((_, _, g), salt) ->
      let inner = Graph.inner_nodes g in
      let subset =
        List.filteri (fun i _ -> (i + salt) mod 3 <> 0) inner
        |> Node_id.set_of_list
      in
      let complement =
        Node_id.Set.diff
          (Node_id.Set.of_list (Graph.node_ids g))
          subset
      in
      Cut.inputs_used g subset = Cut.outputs_used g complement
      && Cut.outputs_used g subset = Cut.inputs_used g complement)

let prop_textio_roundtrip =
  QCheck.Test.make ~name:"textio round-trips generated networks" ~count:60
    (Testlib.network_arbitrary ()) (fun (_, _, g) ->
      let text = Netlist.Textio.to_string g in
      let _, parsed = Netlist.Textio.of_string text in
      String.equal text (Netlist.Textio.to_string parsed))

let () =
  Alcotest.run "netlist"
    [
      ( "construction",
        [
          Alcotest.test_case "add and ids" `Quick test_add_and_ids;
          Alcotest.test_case "duplicate id" `Quick test_duplicate_id;
          Alcotest.test_case "connect errors" `Quick test_connect_errors;
          Alcotest.test_case "fanout" `Quick test_fanout_allowed;
          Alcotest.test_case "remove node" `Quick test_remove_node;
          Alcotest.test_case "remove edge" `Quick test_remove_edge;
        ] );
      ( "structure",
        [
          Alcotest.test_case "podium accessors" `Quick test_podium_structure;
          Alcotest.test_case "total cost" `Quick test_total_cost;
          Alcotest.test_case "validate problems" `Quick
            test_validate_problems;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "topological order" `Quick
            test_topological_order;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "reachable" `Quick test_reachable;
        ] );
      ( "cut",
        [
          Alcotest.test_case "figure 5 pin counts" `Quick test_cut_counts;
          Alcotest.test_case "cut edges" `Quick test_cut_edges;
          Alcotest.test_case "border blocks" `Quick test_border_blocks;
          Alcotest.test_case "convexity" `Quick test_convexity;
          Alcotest.test_case "net vs edge counting" `Quick test_net_counting;
        ] );
      ( "stats",
        [
          Alcotest.test_case "podium" `Quick test_stats_podium;
          Alcotest.test_case "chain" `Quick test_stats_no_reconvergence;
          Alcotest.test_case "synthesised" `Quick test_stats_synthesised;
        ] );
      ( "io",
        [
          Alcotest.test_case "text round-trip" `Quick test_textio_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_textio_parse_errors;
          Alcotest.test_case "comments" `Quick test_textio_comments;
          Alcotest.test_case "defblock" `Quick test_defblock_parse;
          Alcotest.test_case "defblock errors" `Quick test_defblock_errors;
          Alcotest.test_case "synthesised round-trip" `Quick
            test_synthesised_roundtrip;
          Alcotest.test_case "dot" `Quick test_dot_output;
        ] );
      ( "properties",
        Testlib.qtests
          [
            prop_generated_topological; prop_levels_monotone;
            prop_cut_complement; prop_textio_roundtrip;
          ] );
    ]
