(* Tests for the PareDown decomposition heuristic: the full Figure 5
   trace, golden results for every library design, the worst-case
   complexity formula, configuration variants, and validity properties
   over random designs. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let check = Alcotest.check
let set = Testlib.set
let podium = Testlib.podium

let solution_of g = (Core.Paredown.run g).Core.Paredown.solution

let totals g =
  let sol = solution_of g in
  ( Core.Solution.total_inner_after g sol,
    Core.Solution.programmable_count sol )

(* --- Figure 5, step by step ------------------------------------------- *)

let test_figure5_trace () =
  let r = Core.Paredown.run ~record_trace:true podium in
  let events = r.Core.Paredown.trace in
  (* the published border ranks of the initial candidate *)
  let first_ranks =
    List.find_map
      (function Core.Paredown.Ranked ranks -> Some ranks | _ -> None)
      events
  in
  check
    (Alcotest.option
       (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)))
    "initial ranks (2:+1, 8:+1, 9:0)"
    (Some [ (2, 1); (8, 1); (9, 0) ])
    first_ranks;
  (* the published removal order, including the second candidate *)
  check (Alcotest.list Alcotest.int) "removal order"
    [ 9; 8; 7; 6; 7 ]
    (List.filter_map
       (function Core.Paredown.Removed (id, _) -> Some id | _ -> None)
       events);
  (* the published partitions, in order *)
  check
    (Alcotest.list Testlib.id_set)
    "accepted partitions"
    [ set [ 2; 3; 4; 5 ]; set [ 6; 8; 9 ] ]
    (List.filter_map
       (function Core.Paredown.Accepted (s, _) -> Some s | _ -> None)
       events);
  (* block 7 fits alone but stays pre-defined *)
  check (Alcotest.list Alcotest.int) "left single" [ 7 ]
    (List.filter_map
       (function Core.Paredown.Left_single id -> Some id | _ -> None)
       events)

let test_figure5_result () =
  check (Alcotest.pair Alcotest.int Alcotest.int)
    "8 inner blocks -> 3 (2 programmable)" (3, 2) (totals podium)

let test_trace_off_by_default () =
  check Alcotest.int "no trace recorded" 0
    (List.length (Core.Paredown.run podium).Core.Paredown.trace)

(* --- Rank and removal-choice helpers ----------------------------------- *)

let test_rank_values () =
  let candidate = set [ 2; 3; 4; 5; 6; 7; 8; 9 ] in
  check Alcotest.int "rank 9" 0 (Core.Paredown.rank podium candidate 9);
  check Alcotest.int "rank 8" 1 (Core.Paredown.rank podium candidate 8);
  check Alcotest.int "rank 2" 1 (Core.Paredown.rank podium candidate 2);
  (* after removing 9 and 8: 6 and 7 become borders at rank -1 *)
  let candidate = set [ 2; 3; 4; 5; 6; 7 ] in
  check Alcotest.int "rank 6" (-1) (Core.Paredown.rank podium candidate 6);
  check Alcotest.int "rank 7" (-1) (Core.Paredown.rank podium candidate 7)

let test_removal_choice () =
  check (Alcotest.option Alcotest.int) "initial victim" (Some 9)
    (Core.Paredown.removal_choice podium (set [ 2; 3; 4; 5; 6; 7; 8; 9 ]));
  check (Alcotest.option Alcotest.int) "indegree tie-break picks 8" (Some 8)
    (Core.Paredown.removal_choice podium (set [ 2; 3; 4; 5; 6; 7; 8 ]));
  check (Alcotest.option Alcotest.int) "id tie-break picks 7" (Some 7)
    (Core.Paredown.removal_choice podium (set [ 2; 3; 4; 5; 6; 7 ]));
  check (Alcotest.option Alcotest.int) "empty candidate" None
    (Core.Paredown.removal_choice podium Node_id.Set.empty)

(* --- Golden results for the design library ----------------------------- *)

(* Measured with this implementation; see EXPERIMENTS.md for the
   paper-vs-measured discussion (Two-Zone Security and Timed Passage are
   within one block of the paper's heuristic results). *)
let expected =
  [
    ("Ignition Illuminator", (1, 1));
    ("Night Lamp Controller", (1, 1));
    ("Entry Gate Detector", (1, 1));
    ("Carpool Alert", (1, 1));
    ("Cafeteria Food Alert", (1, 1));
    ("Podium Timer 2", (1, 1));
    ("Any Window Open Alarm", (3, 0));
    ("Two Button Light", (3, 0));
    ("Doorbell Extender 1", (5, 0));
    ("Doorbell Extender 2", (6, 0));
    ("Podium Timer 3", (3, 2));
    ("Noise At Night Detector", (6, 4));
    ("Two-Zone Security", (11, 3));
    ("Motion on Property Alert", (19, 0));
    ("Timed Passage", (15, 4));
  ]

let test_library_golden () =
  List.iter
    (fun (name, want) ->
      match Designs.Library.find name with
      | None -> Alcotest.failf "design %s missing" name
      | Some d ->
        check (Alcotest.pair Alcotest.int Alcotest.int) name want
          (totals d.Designs.Design.network))
    expected

let test_library_solutions_valid () =
  List.iter
    (fun d ->
      let g = d.Designs.Design.network in
      Testlib.check_ok d.Designs.Design.name
        (Core.Solution.check g (solution_of g)))
    Designs.Library.all

(* --- Worst case (§4.2) -------------------------------------------------- *)

let test_worst_case_quadratic () =
  List.iter
    (fun n ->
      let g = Randgen.Generator.worst_case ~inner:n in
      let r = Core.Paredown.run g in
      (* n candidates; candidate k performs k fit checks (one per member
         removed or isolated): sum 1..n = n(n+1)/2 *)
      check Alcotest.int
        (Printf.sprintf "fit checks for n=%d" n)
        (n * (n + 1) / 2)
        r.Core.Paredown.stats.Core.Paredown.fit_checks;
      check Alcotest.int "outer iterations" n
        r.Core.Paredown.stats.Core.Paredown.outer_iterations;
      check Alcotest.int "nothing combined" 0
        (Core.Solution.programmable_count r.Core.Paredown.solution))
    [ 1; 2; 5; 10; 25 ]

(* --- Configuration variants --------------------------------------------- *)

let test_stop_everything_policy () =
  (* any-window alarm: the OR tree pares down to a lone or2 that fits, so
     both policies agree there; build a case with a genuinely unplaceable
     block instead: a 3-input gate pares to empty *)
  let g =
    let g, s1 = Graph.add Graph.empty Eblock.Catalog.button in
    let g, s2 = Graph.add g Eblock.Catalog.button in
    let g, s3 = Graph.add g Eblock.Catalog.button in
    let g, wide = Graph.add g Eblock.Catalog.or3 in
    let g, chain1 = Graph.add g Eblock.Catalog.not_gate in
    let g, chain2 = Graph.add g Eblock.Catalog.toggle in
    let g, l1 = Graph.add g Eblock.Catalog.led in
    let g, l2 = Graph.add g Eblock.Catalog.led in
    let g = Graph.connect g ~src:(s1, 0) ~dst:(wide, 0) in
    let g = Graph.connect g ~src:(s2, 0) ~dst:(wide, 1) in
    let g = Graph.connect g ~src:(s3, 0) ~dst:(wide, 2) in
    let g = Graph.connect g ~src:(wide, 0) ~dst:(l1, 0) in
    let g = Graph.connect g ~src:(s1, 0) ~dst:(chain1, 0) in
    let g = Graph.connect g ~src:(chain1, 0) ~dst:(chain2, 0) in
    Graph.connect g ~src:(chain2, 0) ~dst:(l2, 0)
  in
  let run policy =
    let config =
      { Core.Paredown.default_config with on_empty_candidate = policy }
    in
    (Core.Paredown.run ~config g).Core.Paredown.solution
  in
  let skip = run Core.Paredown.Skip_block in
  check Alcotest.int "skip policy combines the chain" 1
    (Core.Solution.programmable_count skip);
  (* the paper's literal pseudocode may stop early; it must never produce
     an invalid solution, and never a better one *)
  let stop = run Core.Paredown.Stop_everything in
  Testlib.check_ok "stop solution valid" (Core.Solution.check g stop);
  check Alcotest.bool "skip at least as good" true
    (Core.Solution.compare_quality g skip stop <= 0)

let test_multi_shape () =
  (* with a 4x4 shape available, the whole podium inner set needs only
     1 input and 3 outputs: one big block *)
  let config =
    {
      Core.Paredown.default_config with
      shapes =
        [ Core.Shape.default; Core.Shape.make ~inputs:4 ~outputs:4 ~cost:1.9 () ];
    }
  in
  let r = Core.Paredown.run ~config podium in
  let sol = r.Core.Paredown.solution in
  check Alcotest.int "single partition" 1
    (Core.Solution.programmable_count sol);
  check Alcotest.int "everything covered" 8 (Core.Solution.covered_count sol);
  (* and it must be hosted on the 4x4, not the 2x2 *)
  (match sol.Core.Solution.partitions with
   | [ p ] -> check Alcotest.int "hosted on 4x4" 4 p.Core.Partition.shape.Core.Shape.inputs
   | _ -> Alcotest.fail "expected one partition")

let test_no_convexity_config () =
  let config =
    {
      Core.Paredown.default_config with
      partition_config =
        { Core.Partition.default_config with require_convex = false };
    }
  in
  let g = Designs.Library.doorbell_extender_2.Designs.Design.network in
  let sol = (Core.Paredown.run ~config g).Core.Paredown.solution in
  (* without convexity the pulse/prolong pair is merged, creating a loop
     after replacement — which is exactly why the default forbids it *)
  check Alcotest.int "pair found" 1 (Core.Solution.programmable_count sol);
  check Alcotest.bool "but invalid under the full check" true
    (match Core.Solution.check g sol with Error _ -> true | Ok () -> false)

let test_tie_break_orders_all_valid () =
  let orders =
    Core.Paredown.
      [
        [];
        [ Greatest_indegree ];
        [ Greatest_outdegree; Greatest_indegree ];
        [ Highest_level ];
        [ Highest_id; Highest_level; Greatest_outdegree; Greatest_indegree ];
      ]
  in
  List.iter
    (fun tie_breaks ->
      let config = { Core.Paredown.default_config with tie_breaks } in
      List.iter
        (fun d ->
          let g = d.Designs.Design.network in
          let sol = (Core.Paredown.run ~config g).Core.Paredown.solution in
          Testlib.check_ok d.Designs.Design.name (Core.Solution.check g sol))
        Designs.Library.table1)
    orders

(* --- Properties ----------------------------------------------------------- *)

let prop_solution_valid =
  QCheck.Test.make ~name:"solutions valid on random designs" ~count:150
    (Testlib.network_arbitrary ~max_inner:40 ()) (fun (_, _, g) ->
      match Core.Solution.check g (solution_of g) with
      | Ok () -> true
      | Error _ -> false)

let prop_deterministic =
  QCheck.Test.make ~name:"deterministic" ~count:50
    (Testlib.network_arbitrary ~max_inner:30 ()) (fun (_, _, g) ->
      let r1 = solution_of g and r2 = solution_of g in
      List.equal
        (fun p1 p2 ->
          Node_id.Set.equal p1.Core.Partition.members p2.Core.Partition.members)
        r1.Core.Solution.partitions r2.Core.Solution.partitions)

let prop_never_worse_than_nothing =
  QCheck.Test.make ~name:"total never exceeds the original inner count"
    ~count:100 (Testlib.network_arbitrary ~max_inner:40 ())
    (fun (_, _, g) ->
      Core.Solution.total_inner_after g (solution_of g)
      <= Graph.inner_count g)

let prop_rank_matches_direct_recount =
  (* the O(degree) incremental rank must agree with recomputing the io
     counts from scratch, under both pin-counting modes *)
  QCheck.Test.make ~name:"rank = io(P \\ b) - io(P)" ~count:60
    (QCheck.pair (Testlib.network_arbitrary ~max_inner:20 ())
       QCheck.(int_bound 10_000))
    (fun ((_, _, g), salt) ->
      let eligible = Graph.partitionable_nodes g in
      QCheck.assume (List.length eligible >= 2);
      let candidate =
        Node_id.Set.of_list
          (List.filteri (fun i _ -> (i + salt) mod 3 <> 0) eligible)
      in
      QCheck.assume (not (Node_id.Set.is_empty candidate));
      List.for_all
        (fun mode ->
          let partition_config =
            { Core.Partition.default_config with pin_counting = mode }
          in
          let config =
            { Core.Paredown.default_config with partition_config }
          in
          Node_id.Set.for_all
            (fun b ->
              let direct =
                Core.Partition.io_used ~config:partition_config g
                  (Node_id.Set.remove b candidate)
                - Core.Partition.io_used ~config:partition_config g candidate
              in
              Core.Paredown.rank ~config g candidate b = direct)
            candidate)
        [ Core.Partition.Per_edge; Core.Partition.Per_net ])

let prop_partitions_at_least_two =
  QCheck.Test.make ~name:"every partition has >= 2 members" ~count:100
    (Testlib.network_arbitrary ~max_inner:30 ()) (fun (_, _, g) ->
      List.for_all
        (fun p -> Node_id.Set.cardinal p.Core.Partition.members >= 2)
        (solution_of g).Core.Solution.partitions)

let () =
  Alcotest.run "paredown"
    [
      ( "figure5",
        [
          Alcotest.test_case "trace" `Quick test_figure5_trace;
          Alcotest.test_case "result" `Quick test_figure5_result;
          Alcotest.test_case "trace off by default" `Quick
            test_trace_off_by_default;
        ] );
      ( "rank",
        [
          Alcotest.test_case "values" `Quick test_rank_values;
          Alcotest.test_case "removal choice" `Quick test_removal_choice;
        ] );
      ( "library",
        [
          Alcotest.test_case "golden results" `Quick test_library_golden;
          Alcotest.test_case "solutions valid" `Quick
            test_library_solutions_valid;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "worst case n(n+1)/2" `Quick
            test_worst_case_quadratic;
        ] );
      ( "config",
        [
          Alcotest.test_case "empty-candidate policies" `Quick
            test_stop_everything_policy;
          Alcotest.test_case "multiple shapes" `Quick test_multi_shape;
          Alcotest.test_case "convexity off" `Quick test_no_convexity_config;
          Alcotest.test_case "tie-break orders" `Quick
            test_tie_break_orders_all_valid;
        ] );
      ( "properties",
        Testlib.qtests
          [
            prop_solution_valid; prop_deterministic;
            prop_never_worse_than_nothing; prop_partitions_at_least_two;
            prop_rank_matches_direct_recount;
          ] );
    ]
