(* Tests for the behaviour-language front end: lexing, precedence,
   statements, error positions, and print/parse round-tripping. *)

open Behavior.Ast

let check = Alcotest.check

let expr = Behavior.Parse.expression
let program = Behavior.Parse.program

(* --- Expressions ------------------------------------------------------- *)

let test_literals () =
  check Alcotest.bool "true" true (expr "true" = Const (Bool true));
  check Alcotest.bool "false" true (expr "false" = Const (Bool false));
  check Alcotest.bool "int" true (expr "42" = Const (Int 42));
  check Alcotest.bool "var" true (expr "prev" = Var "prev");
  check Alcotest.bool "input" true (expr "in[3]" = Input 3);
  check Alcotest.bool "timer" true (expr "timer_fired(2)" = Timer_fired 2)

let test_precedence () =
  check Alcotest.bool "and over or" true
    (expr "a || b && c" = (Var "a" ||| (Var "b" &&& Var "c")));
  check Alcotest.bool "not binds tight" true
    (expr "!a && b" = (not_ (Var "a") &&& Var "b"));
  check Alcotest.bool "mul over add" true
    (expr "1 + 2 * 3"
     = Binop (Add, int_ 1, Binop (Mul, int_ 2, int_ 3)));
  check Alcotest.bool "comparison over and" true
    (expr "a < 2 && b"
     = (Binop (Lt, Var "a", int_ 2) &&& Var "b"));
  check Alcotest.bool "equality over relational? no: relational first" true
    (expr "a == b < c" = Binop (Eq, Var "a", Binop (Lt, Var "b", Var "c")));
  check Alcotest.bool "parens override" true
    (expr "(a || b) && c" = ((Var "a" ||| Var "b") &&& Var "c"));
  check Alcotest.bool "left associative sub" true
    (expr "5 - 2 - 1"
     = Binop (Sub, Binop (Sub, int_ 5, int_ 2), int_ 1));
  check Alcotest.bool "double negation" true
    (expr "!!a" = not_ (not_ (Var "a")));
  check Alcotest.bool "unary minus" true
    (expr "-x" = Unop (Neg, Var "x"))

let test_ternary () =
  check Alcotest.bool "ternary" true
    (expr "a ? 1 : 2" = If_expr (Var "a", int_ 1, int_ 2));
  check Alcotest.bool "nested ternary (right)" true
    (expr "a ? 1 : b ? 2 : 3"
     = If_expr (Var "a", int_ 1, If_expr (Var "b", int_ 2, int_ 3)));
  check Alcotest.bool "condition sees or" true
    (expr "a || b ? 1 : 2"
     = If_expr (Var "a" ||| Var "b", int_ 1, int_ 2))

(* --- Statements and programs -------------------------------------------- *)

let test_statements () =
  let p =
    program
      "state q = false;\n\
       state n = 3;\n\
       q = !q;\n\
       out[1] = q && in[0];\n\
       set_timer(0, n * 2);\n\
       cancel_timer(1);\n\
       ;"
  in
  check Alcotest.bool "state decls" true
    (p.state = [ ("q", Bool false); ("n", Int 3) ]);
  check Alcotest.bool "body" true
    (p.body
     = [
         Assign ("q", not_ (Var "q"));
         Output (1, Var "q" &&& Input 0);
         Set_timer (0, Binop (Mul, Var "n", int_ 2));
         Cancel_timer 1;
         Nop;
       ])

let test_if_else () =
  let p = program "if (in[0]) { x = 1; } else { x = 2; x = 3; }" in
  check Alcotest.bool "if/else" true
    (p.body
     = [
         If (Input 0,
             [ Assign ("x", int_ 1) ],
             [ Assign ("x", int_ 2); Assign ("x", int_ 3) ]);
       ]);
  let p = program "if (a) { if (b) { y = 1; } }" in
  check Alcotest.bool "nested if, no else" true
    (p.body = [ If (Var "a", [ If (Var "b", [ Assign ("y", int_ 1) ], []) ], []) ])

let test_comments_and_whitespace () =
  let p =
    program
      "// leading comment\nstate q = false; // trailing\n\n   q   =   true ;"
  in
  check Alcotest.bool "parsed through comments" true
    (p.body = [ Assign ("q", bool_ true) ])

let test_negative_state_init () =
  let p = program "state n = -5;" in
  check Alcotest.bool "negative init" true (p.state = [ ("n", Int (-5)) ])

(* --- Errors ---------------------------------------------------------------- *)

let syntax_error_at source expected_line =
  match Behavior.Parse.program source with
  | exception Behavior.Parse.Syntax_error { line; _ } ->
    check Alcotest.int "error line" expected_line line
  | _ -> Alcotest.failf "accepted %S" source

let test_errors () =
  syntax_error_at "x = ;" 1;
  syntax_error_at "state q = false;\nx = @;" 2;
  syntax_error_at "if (a) x = 1;" 1;          (* braces required *)
  syntax_error_at "out[0] = 1" 1;             (* missing semicolon *)
  syntax_error_at "set_timer(0);" 1;          (* needs two arguments *)
  syntax_error_at "state q = x;" 1;           (* initialiser must be literal *)
  syntax_error_at "x = 1; state q = false;" 1;(* state after body *)
  syntax_error_at "in[q]" 1;
  (match Behavior.Parse.expression "a &&" with
   | exception Behavior.Parse.Syntax_error { message; _ } ->
     check Alcotest.bool "helpful message" true
       (Testlib.contains message "expected an expression")
   | _ -> Alcotest.fail "accepted dangling operator")

let test_error_column () =
  match Behavior.Parse.program "x = 1 +;" with
  | exception Behavior.Parse.Syntax_error { line = 1; column; _ } ->
    check Alcotest.int "column of ';'" 8 column
  | _ -> Alcotest.fail "accepted"

(* --- Round-tripping ----------------------------------------------------------- *)

let test_catalogue_roundtrip () =
  List.iter
    (fun d ->
      let open Eblock.Descriptor in
      let printed = Behavior.Ast.program_to_string d.behavior in
      check Alcotest.bool (d.name ^ " round-trips") true
        (Behavior.Parse.program printed = d.behavior))
    (Eblock.Catalog.all_fixed
     @ [
         Eblock.Catalog.truth_table2 ~table:11;
         Eblock.Catalog.truth_table3 ~table:99;
         Eblock.Catalog.pulse_gen ~width:4;
         Eblock.Catalog.delay ~ticks:9;
         Eblock.Catalog.prolong ~ticks:2;
         Eblock.Catalog.blinker ~period:7;
       ])

let test_merged_program_roundtrip () =
  (* the big merged trees of synthesis also round-trip *)
  List.iter
    (fun members ->
      let plan = Codegen.Plan.build Testlib.podium members in
      let printed =
        Behavior.Ast.program_to_string plan.Codegen.Plan.program
      in
      check Alcotest.bool "merged round-trips" true
        (Behavior.Parse.program printed = plan.Codegen.Plan.program))
    [ Testlib.set [ 2; 3; 4; 5 ]; Testlib.set [ 6; 8; 9 ] ]

(* Random syntactically-valid programs (types don't matter for the
   round-trip; negative integer literals are excluded because "-4" parses
   as unary negation of 4, which is the same value but a different
   tree). *)
let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun b -> Const (Bool b)) bool;
              map (fun v -> Const (Int v)) (int_range 0 999);
              map (fun i -> Input i) (int_range 0 3);
              map (fun t -> Timer_fired t) (int_range 0 2);
              oneofl [ Var "a"; Var "prev"; Var "count" ];
            ]
        in
        if n <= 0 then leaf
        else
          frequency
            [
              (2, leaf);
              (1, map (fun e -> not_ e) (self (n - 1)));
              (1, map (fun e -> Unop (Neg, e)) (self (n - 1)));
              (4,
               map2
                 (fun op (a, b) -> Binop (op, a, b))
                 (oneofl
                    [ And; Or; Xor; Add; Sub; Mul; Eq; Ne; Lt; Le; Gt; Ge ])
                 (pair (self (n / 2)) (self (n / 2))));
              (1,
               map2
                 (fun c (a, b) -> If_expr (c, a, b))
                 (self (n / 3))
                 (pair (self (n / 3)) (self (n / 3))));
            ]))

let gen_stmt =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let simple =
          oneof
            [
              map (fun e -> Assign ("x", e)) gen_expr;
              map2 (fun i e -> Output (i, e)) (int_range 0 2) gen_expr;
              map2 (fun t e -> Set_timer (t, e)) (int_range 0 2) gen_expr;
              map (fun t -> Cancel_timer t) (int_range 0 2);
              return Nop;
            ]
        in
        if n <= 0 then simple
        else
          frequency
            [
              (4, simple);
              (1,
               map2
                 (fun c (t, e) -> If (c, t, e))
                 gen_expr
                 (pair
                    (list_size (int_range 1 3) (self (n / 3)))
                    (list_size (int_range 0 2) (self (n / 3)))));
            ]))

let gen_program =
  QCheck.Gen.(
    map2
      (fun state body -> { state; body })
      (list_size (int_range 0 3)
         (map2
            (fun name v -> (name, v))
            (oneofl [ "a"; "prev"; "count" ])
            (oneof
               [ map (fun b -> Bool b) bool;
                 map (fun v -> Int v) (int_range (-99) 99) ])))
      (list_size (int_range 1 6) gen_stmt))

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip on random programs"
    ~count:300
    (QCheck.make ~print:program_to_string gen_program)
    (fun p ->
      Behavior.Parse.program (program_to_string p) = p)

let test_catalog_define () =
  let majority =
    Eblock.Catalog.define ~name:"majority3" ~n_inputs:3 ~n_outputs:1
      "out[0] = (in[0] && in[1]) || (in[0] && in[2]) || (in[1] && in[2]);"
  in
  check Alcotest.int "arity" 3 majority.Eblock.Descriptor.n_inputs;
  let env = Behavior.Eval.init majority.Eblock.Descriptor.behavior in
  let out a b c =
    (Behavior.Eval.activate majority.Eblock.Descriptor.behavior ~n_outputs:1
       env
       { Behavior.Eval.inputs = [| Bool a; Bool b; Bool c |]; fired = None })
      .Behavior.Eval.outputs.(0)
  in
  check Alcotest.bool "2 of 3" true (out true true false = Some (Bool true));
  check Alcotest.bool "1 of 3" true (out true false false = Some (Bool false));
  (* arity violations are caught at definition time *)
  match
    Eblock.Catalog.define ~name:"bad" ~n_inputs:1 ~n_outputs:1
      "out[0] = in[5];"
  with
  | exception Eblock.Descriptor.Invalid_descriptor _ -> ()
  | _ -> Alcotest.fail "out-of-range input accepted"

let () =
  Alcotest.run "parse"
    [
      ( "expressions",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "ternary" `Quick test_ternary;
        ] );
      ( "statements",
        [
          Alcotest.test_case "forms" `Quick test_statements;
          Alcotest.test_case "if/else" `Quick test_if_else;
          Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
          Alcotest.test_case "negative init" `Quick test_negative_state_init;
        ] );
      ( "errors",
        [
          Alcotest.test_case "positions" `Quick test_errors;
          Alcotest.test_case "column" `Quick test_error_column;
        ] );
      ( "round-trip",
        Testlib.qtests [ prop_print_parse_roundtrip ]
        @ [
          Alcotest.test_case "catalogue" `Quick test_catalogue_roundtrip;
          Alcotest.test_case "merged programs" `Quick
            test_merged_program_roundtrip;
          Alcotest.test_case "Catalog.define" `Quick test_catalog_define;
          ] );
    ]
