(* Unit tests for shapes, partition validity, and solution metrics. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let check = Alcotest.check
let set = Testlib.set
let podium = Testlib.podium

(* --- Shapes ------------------------------------------------------------ *)

let test_shape_make () =
  let s = Core.Shape.make ~inputs:3 ~outputs:1 ~cost:1.2 () in
  check Alcotest.int "inputs" 3 s.Core.Shape.inputs;
  check Alcotest.int "outputs" 1 s.Core.Shape.outputs;
  check Alcotest.int "default is 2x2" 2 Core.Shape.default.Core.Shape.inputs;
  (match Core.Shape.make ~inputs:0 ~outputs:1 () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "zero inputs accepted");
  (match Core.Shape.make ~inputs:1 ~outputs:1 ~cost:(-2.) () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative cost accepted")

let test_shape_fits () =
  let s = Core.Shape.default in
  check Alcotest.bool "fits" true
    (Core.Shape.fits s ~inputs_used:2 ~outputs_used:2);
  check Alcotest.bool "too many in" false
    (Core.Shape.fits s ~inputs_used:3 ~outputs_used:0);
  check Alcotest.bool "too many out" false
    (Core.Shape.fits s ~inputs_used:0 ~outputs_used:3);
  check Alcotest.bool "empty fits" true
    (Core.Shape.fits s ~inputs_used:0 ~outputs_used:0)

let test_cheapest_fitting () =
  let small = Core.Shape.make ~inputs:2 ~outputs:2 ~cost:1.5 () in
  let big = Core.Shape.make ~inputs:4 ~outputs:4 ~cost:1.9 () in
  let shapes = [ big; small ] in
  check (Alcotest.option Testlib.shape) "prefers cheap" (Some small)
    (Core.Shape.cheapest_fitting shapes ~inputs_used:2 ~outputs_used:1);
  check (Alcotest.option Testlib.shape) "falls back to big" (Some big)
    (Core.Shape.cheapest_fitting shapes ~inputs_used:3 ~outputs_used:1);
  check (Alcotest.option Testlib.shape) "none fit" None
    (Core.Shape.cheapest_fitting shapes ~inputs_used:5 ~outputs_used:1);
  (* equal cost: fewer total pins wins *)
  let tight = Core.Shape.make ~inputs:2 ~outputs:1 ~cost:1.9 () in
  check (Alcotest.option Testlib.shape) "tighter at equal cost" (Some tight)
    (Core.Shape.cheapest_fitting [ big; tight ] ~inputs_used:1
       ~outputs_used:1)

(* --- Partition validity -------------------------------------------------- *)

let shape = Core.Shape.default

let reason members =
  match
    Core.Partition.check podium (Core.Partition.make ~members ~shape)
  with
  | Ok () -> "ok"
  | Error r -> Format.asprintf "%a" Core.Partition.pp_invalidity r

let test_valid_partitions () =
  check Alcotest.string "first figure-5 partition" "ok"
    (reason (set [ 2; 3; 4; 5 ]));
  check Alcotest.string "second figure-5 partition" "ok"
    (reason (set [ 6; 8; 9 ]));
  check Alcotest.string "exhaustive pieces" "ok" (reason (set [ 7; 8 ]));
  check Alcotest.string "exhaustive pieces 2" "ok" (reason (set [ 6; 9 ]))

let test_invalid_partitions () =
  check Alcotest.bool "singleton" true
    (Testlib.contains (reason (set [ 7 ])) "at least 2");
  check Alcotest.bool "too many outputs" true
    (Testlib.contains (reason (set [ 2; 3; 4; 5; 6; 7; 8; 9 ])) "outputs");
  check Alcotest.bool "sensor not partitionable" true
    (Testlib.contains (reason (set [ 1; 2 ])) "cannot be absorbed");
  check Alcotest.bool "unknown node" true
    (Testlib.contains (reason (set [ 2; 99 ])) "not in the network");
  (* a pin-feasible but non-convex pair needs the doorbell design: the
     path between pulse (2) and prolong (7) runs through the radio hops *)
  let doorbell = Designs.Library.doorbell_extender_2.Designs.Design.network in
  match
    Core.Partition.check doorbell
      (Core.Partition.make ~members:(set [ 2; 7 ]) ~shape)
  with
  | Error Core.Partition.Not_convex -> ()
  | Error r -> Alcotest.failf "wrong reason: %a" Core.Partition.pp_invalidity r
  | Ok () -> Alcotest.fail "non-convex pair accepted"

let test_comm_not_partitionable () =
  let g = Designs.Library.doorbell_extender_1.Designs.Design.network in
  let p = Core.Partition.make ~members:(set [ 3; 4 ]) ~shape in
  match Core.Partition.check g p with
  | Error (Core.Partition.Not_partitionable _) -> ()
  | Error r ->
    Alcotest.failf "wrong reason: %a" Core.Partition.pp_invalidity r
  | Ok () -> Alcotest.fail "comm blocks absorbed"

let test_too_many_inputs_reported () =
  let g = Designs.Library.any_window_open_alarm.Designs.Design.network in
  let p = Core.Partition.make ~members:(set [ 5; 6 ]) ~shape in
  match Core.Partition.check g p with
  | Error (Core.Partition.Too_many_inputs { used = 4; available = 2 }) -> ()
  | Error r ->
    Alcotest.failf "wrong reason: %a" Core.Partition.pp_invalidity r
  | Ok () -> Alcotest.fail "4-input pair accepted"

let test_config_variants () =
  let doorbell = Designs.Library.doorbell_extender_2.Designs.Design.network in
  let pair = set [ 2; 7 ] in
  let relaxed =
    { Core.Partition.default_config with require_convex = false }
  in
  check Alcotest.bool "convexity off accepts {2,7}" true
    (Core.Partition.is_valid ~config:relaxed doorbell
       (Core.Partition.make ~members:pair ~shape));
  let nets =
    { Core.Partition.default_config with pin_counting = Core.Partition.Per_net }
  in
  (* {3,4} needs 2 input pins per edge, 1 per net *)
  check Alcotest.int "per-net inputs" 1
    (Core.Partition.inputs_used ~config:nets podium (set [ 3; 4 ]));
  check Alcotest.int "per-edge inputs" 2
    (Core.Partition.inputs_used podium (set [ 3; 4 ]))

let test_fits_shape_degenerate () =
  check Alcotest.bool "empty set fits" true
    (Core.Partition.fits_shape podium shape Node_id.Set.empty);
  check Alcotest.bool "singleton fits" true
    (Core.Partition.fits_shape podium shape (set [ 7 ]))

(* --- Solutions ----------------------------------------------------------- *)

let figure5_solution =
  Core.Solution.
    {
      partitions =
        [
          Core.Partition.make ~members:(set [ 2; 3; 4; 5 ]) ~shape;
          Core.Partition.make ~members:(set [ 6; 8; 9 ]) ~shape;
        ];
    }

let test_solution_metrics () =
  check Alcotest.int "covered" 7 (Core.Solution.covered_count figure5_solution);
  check Alcotest.int "programmable" 2
    (Core.Solution.programmable_count figure5_solution);
  check Testlib.id_set "uncovered" (set [ 7 ])
    (Core.Solution.uncovered podium figure5_solution);
  check Alcotest.int "total inner after" 3
    (Core.Solution.total_inner_after podium figure5_solution);
  (* 1 predefined + 2 programmable = 1.0 + 2 * 1.5 *)
  check (Alcotest.float 0.001) "cost after" 4.0
    (Core.Solution.total_cost_after podium figure5_solution);
  Testlib.check_ok "valid" (Core.Solution.check podium figure5_solution)

let test_solution_quality_order () =
  let empty = Core.Solution.empty in
  check Alcotest.bool "figure5 beats empty" true
    (Core.Solution.compare_quality podium figure5_solution empty < 0);
  let exhaustive_style =
    Core.Solution.
      {
        partitions =
          [
            Core.Partition.make ~members:(set [ 2; 3; 4; 5 ]) ~shape;
            Core.Partition.make ~members:(set [ 7; 8 ]) ~shape;
            Core.Partition.make ~members:(set [ 6; 9 ]) ~shape;
          ];
      }
  in
  (* equal totals (3 = 3): higher coverage wins *)
  check Alcotest.bool "coverage tie-break" true
    (Core.Solution.compare_quality podium exhaustive_style figure5_solution
     < 0)

let test_solution_check_failures () =
  let overlapping =
    Core.Solution.
      {
        partitions =
          [
            Core.Partition.make ~members:(set [ 2; 3; 4; 5 ]) ~shape;
            Core.Partition.make ~members:(set [ 3; 4; 5 ]) ~shape;
          ];
      }
  in
  (match Core.Solution.check podium overlapping with
   | Error msg ->
     check Alcotest.bool "overlap reported" true
       (Testlib.contains msg "overlap")
   | Ok () -> Alcotest.fail "overlap accepted");
  let invalid_member =
    Core.Solution.
      { partitions = [ Core.Partition.make ~members:(set [ 7 ]) ~shape ] }
  in
  (match Core.Solution.check podium invalid_member with
   | Error msg ->
     check Alcotest.bool "invalid partition reported" true
       (Testlib.contains msg "invalid")
   | Ok () -> Alcotest.fail "singleton accepted")

let () =
  Alcotest.run "partition"
    [
      ( "shape",
        [
          Alcotest.test_case "make" `Quick test_shape_make;
          Alcotest.test_case "fits" `Quick test_shape_fits;
          Alcotest.test_case "cheapest fitting" `Quick test_cheapest_fitting;
        ] );
      ( "validity",
        [
          Alcotest.test_case "valid" `Quick test_valid_partitions;
          Alcotest.test_case "invalid" `Quick test_invalid_partitions;
          Alcotest.test_case "comm blocks" `Quick test_comm_not_partitionable;
          Alcotest.test_case "input overflow detail" `Quick
            test_too_many_inputs_reported;
          Alcotest.test_case "config variants" `Quick test_config_variants;
          Alcotest.test_case "degenerate fits" `Quick
            test_fits_shape_degenerate;
        ] );
      ( "solution",
        [
          Alcotest.test_case "metrics" `Quick test_solution_metrics;
          Alcotest.test_case "quality order" `Quick
            test_solution_quality_order;
          Alcotest.test_case "check failures" `Quick
            test_solution_check_failures;
        ] );
    ]
