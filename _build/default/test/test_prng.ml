(* Tests for the deterministic PRNG. *)

let check = Alcotest.check

let stream seed n =
  let rng = Prng.create seed in
  List.init n (fun _ -> Prng.int rng 1000)

let test_determinism () =
  check (Alcotest.list Alcotest.int) "same seed" (stream 42 50) (stream 42 50);
  check Alcotest.bool "different seeds differ" true
    (stream 42 50 <> stream 43 50)

let test_int_bounds () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
  done;
  (match Prng.int rng 0 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "bound 0 accepted")

let test_float_bounds () =
  let rng = Prng.create 2 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 1.0 in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "out of bounds: %f" v
  done

let test_bool_mixes () =
  let rng = Prng.create 3 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Prng.bool rng then incr trues
  done;
  check Alcotest.bool "roughly balanced" true (!trues > 400 && !trues < 600)

let test_pick () =
  let rng = Prng.create 4 in
  for _ = 1 to 100 do
    let v = Prng.pick rng [ 1; 2; 3 ] in
    if not (List.mem v [ 1; 2; 3 ]) then Alcotest.fail "picked outside list"
  done;
  (match Prng.pick rng [] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty list accepted")

let test_shuffle_permutation () =
  let rng = Prng.create 5 in
  let original = List.init 20 Fun.id in
  let shuffled = Prng.shuffle rng original in
  check (Alcotest.list Alcotest.int) "same multiset" original
    (List.sort compare shuffled)

let test_split_independence () =
  let rng = Prng.create 6 in
  let child1 = Prng.split rng in
  let child2 = Prng.split rng in
  let s1 = List.init 20 (fun _ -> Prng.int child1 1000) in
  let s2 = List.init 20 (fun _ -> Prng.int child2 1000) in
  check Alcotest.bool "children differ" true (s1 <> s2)

let test_uniformity_rough () =
  let rng = Prng.create 7 in
  let buckets = Array.make 10 0 in
  let draws = 10_000 in
  for _ = 1 to draws do
    let v = Prng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i count ->
      if count < 800 || count > 1200 then
        Alcotest.failf "bucket %d badly skewed: %d" i count)
    buckets

let () =
  Alcotest.run "prng"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "bool mixes" `Quick test_bool_mixes;
          Alcotest.test_case "pick" `Quick test_pick;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutation;
          Alcotest.test_case "split" `Quick test_split_independence;
          Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
        ] );
    ]
