(* Tests for the random design generator and the worst-case family. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let check = Alcotest.check

let generate ?profile ~seed ~inner () =
  Randgen.Generator.generate ?profile ~rng:(Prng.create seed) ~inner ()

let test_exact_inner_count () =
  List.iter
    (fun inner ->
      let g = generate ~seed:1 ~inner () in
      check Alcotest.int
        (Printf.sprintf "inner=%d" inner)
        inner (Graph.inner_count g))
    [ 1; 2; 3; 5; 10; 45; 100 ]

let test_determinism () =
  let text seed =
    Netlist.Textio.to_string (generate ~seed ~inner:20 ())
  in
  check Alcotest.string "same seed" (text 7) (text 7);
  check Alcotest.bool "different seeds differ" true (text 7 <> text 8)

let test_rejects_bad_size () =
  match generate ~seed:1 ~inner:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inner=0 accepted"

let test_profile_all_comm () =
  let profile =
    { Randgen.Generator.default_profile with comm_probability = 1.0 }
  in
  let g = generate ~profile ~seed:3 ~inner:12 () in
  check Alcotest.bool "every inner block is comm" true
    (List.for_all
       (fun id -> Graph.kind g id = Eblock.Kind.Comm)
       (Graph.inner_nodes g));
  (* and therefore nothing to partition *)
  check Alcotest.int "paredown finds nothing" 0
    (Core.Solution.programmable_count
       (Core.Paredown.run g).Core.Paredown.solution)

let test_profile_all_wide () =
  let profile =
    {
      Randgen.Generator.default_profile with
      comm_probability = 0.0;
      wide_probability = 1.0;
    }
  in
  let g = generate ~profile ~seed:3 ~inner:10 () in
  check Alcotest.bool "every inner block has 3 inputs" true
    (List.for_all
       (fun id -> (Graph.descriptor g id).Eblock.Descriptor.n_inputs = 3)
       (Graph.inner_nodes g))

let test_worst_case_structure () =
  let g = Randgen.Generator.worst_case ~inner:6 in
  check Alcotest.int "inner" 6 (Graph.inner_count g);
  check Alcotest.int "sensors" 12 (List.length (Graph.sensors g));
  check Alcotest.int "outputs" 6 (List.length (Graph.primary_outputs g));
  let inner = Graph.inner_nodes g in
  (* every block fits alone... *)
  List.iter
    (fun id ->
      check Alcotest.bool
        (Printf.sprintf "%d fits alone" id)
        true
        (Core.Partition.fits_shape g Core.Shape.default
           (Node_id.Set.singleton id)))
    inner;
  (* ...but no pair forms a valid partition *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b then
            check Alcotest.bool
              (Printf.sprintf "{%d,%d} invalid" a b)
              false
              (Core.Partition.is_valid g
                 (Core.Partition.make
                    ~members:(Testlib.set [ a; b ])
                    ~shape:Core.Shape.default)))
        inner)
    inner

let prop_generated_valid =
  QCheck.Test.make ~name:"generated networks validate" ~count:200
    (Testlib.network_arbitrary ~max_inner:50 ()) (fun (_, _, g) ->
      Graph.validate g = Ok ())

let prop_generated_acyclic =
  QCheck.Test.make ~name:"generated networks are DAGs" ~count:100
    (Testlib.network_arbitrary ~max_inner:50 ()) (fun (_, _, g) ->
      Graph.is_acyclic g)

let prop_generated_simulable =
  QCheck.Test.make ~name:"generated networks simulate and settle" ~count:40
    (Testlib.network_arbitrary ~max_inner:20 ()) (fun (_, seed, g) ->
      let engine = Sim.Engine.create g in
      let script =
        Sim.Stimulus.random ~rng:(Prng.create seed)
          ~sensors:(Graph.sensors g) ~steps:10 ~spacing:30
      in
      List.length (Sim.Stimulus.settled_outputs engine script) = 10)

let () =
  Alcotest.run "randgen"
    [
      ( "generator",
        [
          Alcotest.test_case "exact inner count" `Quick
            test_exact_inner_count;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "bad size" `Quick test_rejects_bad_size;
          Alcotest.test_case "all-comm profile" `Quick test_profile_all_comm;
          Alcotest.test_case "all-wide profile" `Quick test_profile_all_wide;
        ] );
      ( "worst case",
        [ Alcotest.test_case "structure" `Quick test_worst_case_structure ] );
      ( "properties",
        Testlib.qtests
          [ prop_generated_valid; prop_generated_acyclic;
            prop_generated_simulable ] );
    ]
