(* Shared helpers for the test suites. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

(* Alcotest testables *)

let value : Behavior.Ast.value Alcotest.testable =
  Alcotest.testable Behavior.Ast.pp_value Behavior.Ast.equal_value

let id_set : Node_id.Set.t Alcotest.testable =
  Alcotest.testable Node_id.pp_set Node_id.Set.equal

let shape : Core.Shape.t Alcotest.testable =
  Alcotest.testable Core.Shape.pp Core.Shape.equal

(* Builders *)

let set = Node_id.set_of_list

(* A linear chain: sensor -> d1 -> d2 -> ... -> led; returns the graph
   and the inner ids in order. *)
let chain descriptors =
  let g, sensor = Graph.add Graph.empty Eblock.Catalog.button in
  let g, inner_rev =
    List.fold_left
      (fun (g, acc) d ->
        let g, id = Graph.add g d in
        let src = match acc with [] -> sensor | prev :: _ -> prev in
        (Graph.connect g ~src:(src, 0) ~dst:(id, 0), id :: acc))
      (g, []) descriptors
  in
  let inner = List.rev inner_rev in
  let g, led = Graph.add g Eblock.Catalog.led in
  let last = match inner_rev with [] -> sensor | last :: _ -> last in
  let g = Graph.connect g ~src:(last, 0) ~dst:(led, 0) in
  (g, sensor, inner, led)

let podium = Designs.Library.podium_timer_3.Designs.Design.network

(* QCheck generators *)

let network_gen ?(max_inner = 25) () =
  QCheck.Gen.(
    pair (int_range 1 max_inner) (int_range 0 1_000_000)
    |> map (fun (inner, seed) ->
           (inner, seed,
            Randgen.Generator.generate ~rng:(Prng.create seed) ~inner ())))

let network_arbitrary ?max_inner () =
  QCheck.make
    ~print:(fun (inner, seed, _) -> Printf.sprintf "inner=%d seed=%d" inner seed)
    (network_gen ?max_inner ())

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let qtests cases = List.map QCheck_alcotest.to_alcotest cases

(* [contains haystack needle] — substring search, for golden-ish checks
   on rendered text. *)
let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0
