(* Benchmark harness: regenerates every table of the paper's evaluation,
   then measures the code paths behind each one with Bechamel.

   Structure (one Test.make per table / claim):
     kernel/*    — Dense-view cut/convexity primitives vs the Cut reference
     table1/*    — the 15 library designs (PareDown + exhaustive)
     table2/*    — random designs of the paper's bucket sizes
     scale/*     — the §5.2 465-inner-node claim
     worstcase/* — the §4.2 O(n^2) family
     ablation/*  — PareDown ingredient variants and the aggregation baseline
     codegen/*   — merge + C emission
     sim/*       — simulator settle and VCD export on a library design
     sim_kernel/* — compiled vs interpreted settle kernels (doc/performance.md)
     faults/*    — fault-injection hook overhead and degradation grading
     power/*     — the packet-count power proxy
     frontend/*  — behaviour-language parsing

   Run with: dune exec bench/main.exe
   (set BENCH_TABLES_ONLY=1 to print the tables and skip the Bechamel
   timings; either way a machine-readable perf snapshot is written to
   BENCH_paredown.json — override the path with BENCH_JSON, or set
   BENCH_JSON= to skip it) *)

open Bechamel
open Toolkit

module Graph = Netlist.Graph

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the paper's tables.                              *)

let print_tables () =
  print_endline "== Table 1: library designs (exhaustive vs PareDown) ==\n";
  let config =
    { Experiments.Table1.default_config with exhaustive_cutoff = 10 }
  in
  print_string (Experiments.Table1.to_table (Experiments.Table1.run ~config ()));
  print_endline "\n== Table 2: random designs (reduced bucket sizes) ==\n";
  let config =
    {
      Experiments.Table2.default_config with
      Experiments.Table2.sizes =
        [ (3, 80); (4, 80); (5, 60); (6, 50); (7, 40); (8, 30); (9, 15);
          (10, 8); (11, 4); (14, 60); (15, 60); (20, 40); (25, 30);
          (35, 15); (45, 8) ];
      exhaustive_cutoff = 11;
      exhaustive_deadline_s = 10.0;
    }
  in
  print_string (Experiments.Table2.to_table (Experiments.Table2.run ~config ()));
  print_endline "\n== Scalability (§5.2) ==\n";
  print_string (Experiments.Scale.to_table (Experiments.Scale.run_random ()));
  print_endline "\n== Worst case (§4.2) ==\n";
  print_string
    (Experiments.Scale.to_table (Experiments.Scale.run_worst_case ()));
  print_endline "\n== Ablations ==\n";
  print_string
    (Experiments.Ablation.to_table
       (Experiments.Ablation.run ~count:40 ~inner:20 ()));
  print_endline "\n== Power proxy: packets before/after synthesis ==\n";
  print_string (Experiments.Power.to_table (Experiments.Power.run ~steps:100 ()))

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks.                                  *)

let paredown_solution g = (Core.Paredown.run g).Core.Paredown.solution

let random_design ~seed ~inner =
  Randgen.Generator.generate ~rng:(Prng.create seed) ~inner ()

let library_networks =
  List.map (fun d -> d.Designs.Design.network) Designs.Library.table1

let small_library_networks =
  List.filter (fun g -> Graph.inner_count g <= 8) library_networks

let kernel_tests =
  (* Dense-view primitives against their Cut reference twins: the gap
     between each pair is the win the search inner loops inherit. *)
  let g = random_design ~seed:100 ~inner:100 in
  let members =
    Graph.partitionable_nodes g
    |> List.filteri (fun i _ -> i mod 2 = 0)
    |> Netlist.Node_id.set_of_list
  in
  let d = Netlist.Dense.of_graph g in
  let s = Netlist.Dense.set_of_ids d members in
  ignore (Netlist.Dense.is_convex d s) (* force the reachability tables *);
  let some_member = Netlist.Node_id.Set.min_elt members in
  let some_idx = Netlist.Dense.index d some_member in
  Test.make_grouped ~name:"kernel"
    [
      Test.make ~name:"dense-of-graph"
        (Staged.stage (fun () -> Netlist.Dense.of_graph g));
      Test.make ~name:"dense-pins-used"
        (Staged.stage (fun () -> Netlist.Dense.pins_used d s));
      Test.make ~name:"cut-io-used"
        (Staged.stage (fun () -> Netlist.Cut.io_used g members));
      Test.make ~name:"dense-is-convex"
        (Staged.stage (fun () -> Netlist.Dense.is_convex d s));
      Test.make ~name:"cut-is-convex"
        (Staged.stage (fun () -> Netlist.Cut.is_convex g members));
      Test.make ~name:"dense-removal-delta"
        (Staged.stage (fun () -> Netlist.Dense.removal_delta d s some_idx));
      Test.make ~name:"dense-nets"
        (Staged.stage (fun () ->
             ( Netlist.Dense.inputs_used_nets d s,
               Netlist.Dense.outputs_used_nets d s )));
    ]

let table1_tests =
  Test.make_grouped ~name:"table1"
    [
      Test.make ~name:"paredown-library"
        (Staged.stage (fun () -> List.map paredown_solution library_networks));
      Test.make ~name:"exhaustive-library-small"
        (Staged.stage (fun () ->
             List.map
               (fun g -> (Core.Exhaustive.run g).Core.Exhaustive.solution)
               small_library_networks));
    ]

let table2_tests =
  let g8 = random_design ~seed:1 ~inner:8 in
  let g10 = random_design ~seed:2 ~inner:10 in
  let g20 = random_design ~seed:3 ~inner:20 in
  let g45 = random_design ~seed:4 ~inner:45 in
  Test.make_grouped ~name:"table2"
    [
      Test.make ~name:"paredown-random-10"
        (Staged.stage (fun () -> paredown_solution g10));
      Test.make ~name:"paredown-random-20"
        (Staged.stage (fun () -> paredown_solution g20));
      Test.make ~name:"paredown-random-45"
        (Staged.stage (fun () -> paredown_solution g45));
      Test.make ~name:"exhaustive-random-8"
        (Staged.stage (fun () ->
             (Core.Exhaustive.run g8).Core.Exhaustive.solution));
      Test.make ~name:"generator-random-20"
        (Staged.stage (fun () -> random_design ~seed:5 ~inner:20));
    ]

let scale_tests =
  let g465 = random_design ~seed:465 ~inner:465 in
  let g100 = random_design ~seed:100 ~inner:100 in
  Test.make_grouped ~name:"scale"
    [
      Test.make ~name:"paredown-100"
        (Staged.stage (fun () -> paredown_solution g100));
      Test.make ~name:"paredown-465"
        (Staged.stage (fun () -> paredown_solution g465));
    ]

let worstcase_tests =
  let w20 = Randgen.Generator.worst_case ~inner:20 in
  let w40 = Randgen.Generator.worst_case ~inner:40 in
  Test.make_grouped ~name:"worstcase"
    [
      Test.make ~name:"paredown-20"
        (Staged.stage (fun () -> paredown_solution w20));
      Test.make ~name:"paredown-40"
        (Staged.stage (fun () -> paredown_solution w40));
    ]

let ablation_tests =
  let g = random_design ~seed:6 ~inner:20 in
  let with_config config () =
    (Core.Paredown.run ~config g).Core.Paredown.solution
  in
  let base = Core.Paredown.default_config in
  Test.make_grouped ~name:"ablation"
    [
      Test.make ~name:"paredown-default" (Staged.stage (with_config base));
      Test.make ~name:"no-convexity"
        (Staged.stage
           (with_config
              {
                base with
                partition_config =
                  { Core.Partition.default_config with require_convex = false };
              }));
      Test.make ~name:"net-pin-counting"
        (Staged.stage
           (with_config
              {
                base with
                partition_config =
                  {
                    Core.Partition.default_config with
                    pin_counting = Core.Partition.Per_net;
                  };
              }));
      Test.make ~name:"multi-shape-2x2-4x4"
        (Staged.stage
           (with_config
              {
                base with
                shapes =
                  [
                    Core.Shape.default;
                    Core.Shape.make ~inputs:4 ~outputs:4 ~cost:1.9 ();
                  ];
              }));
      Test.make ~name:"aggregation-baseline"
        (Staged.stage (fun () -> Core.Aggregation.run g));
    ]

let codegen_tests =
  let g = Designs.Library.podium_timer_3.Designs.Design.network in
  let members = Netlist.Node_id.set_of_list [ 2; 3; 4; 5 ] in
  let plan = Codegen.Plan.build g members in
  let sol = (Core.Paredown.run g).Core.Paredown.solution in
  Test.make_grouped ~name:"codegen"
    [
      Test.make ~name:"plan-build"
        (Staged.stage (fun () -> Codegen.Plan.build g members));
      Test.make ~name:"c-emit"
        (Staged.stage (fun () ->
             Codegen.C_emit.program ~n_inputs:1 ~n_outputs:2
               plan.Codegen.Plan.program));
      Test.make ~name:"replace-network"
        (Staged.stage (fun () -> Codegen.Replace.apply g sol));
    ]

let sim_tests =
  let g = Designs.Library.two_zone_security.Designs.Design.network in
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 21) ~sensors:(Graph.sensors g)
      ~steps:30 ~spacing:15
  in
  Test.make_grouped ~name:"sim"
    [
      Test.make ~name:"settle-two-zone-security"
        (Staged.stage (fun () ->
             let engine = Sim.Engine.create g in
             Sim.Stimulus.settled_outputs engine script));
      Test.make ~name:"vcd-record"
        (Staged.stage (fun () -> Sim.Vcd.record g script));
    ]

let sim_kernel_tests =
  (* Compiled vs interpreted kernels on the perf suite's settle
     workload (doc/performance.md "Simulator compilation"): the pair's
     ratio is the measured speedup behind the >=10x target.  A smaller
     design than lib/experiments/perf.ml keeps bechamel's per-sample
     cost reasonable; the perf group holds the headline workload. *)
  let g = random_design ~seed:4 ~inner:60 in
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 41) ~sensors:(Graph.sensors g)
      ~steps:400 ~spacing:5
  in
  let settle kernel () =
    let engine = Sim.Engine.create ~kernel g in
    Sim.Stimulus.apply engine script;
    Sim.Engine.settle ~limit:10_000_000 engine;
    Sim.Engine.output_values engine
  in
  Test.make_grouped ~name:"sim_kernel"
    [
      Test.make ~name:"settle-compiled"
        (Staged.stage (settle Sim.Engine.Compiled));
      Test.make ~name:"settle-interpreted"
        (Staged.stage (settle Sim.Engine.Interpreted));
    ]

let fault_tests =
  (* The ?faults hook must stay free when absent and near-free when the
     plan is armed but trivial; the drop plan shows the live cost. *)
  let g = Designs.Library.two_zone_security.Designs.Design.network in
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 21) ~sensors:(Graph.sensors g)
      ~steps:30 ~spacing:15
  in
  let settle faults () =
    let engine = Sim.Engine.create ?faults g in
    Sim.Stimulus.settled_outputs engine script
  in
  Test.make_grouped ~name:"faults"
    [
      Test.make ~name:"settle-no-plan" (Staged.stage (settle None));
      Test.make ~name:"settle-empty-plan"
        (Staged.stage (settle (Some Sim.Fault.none)));
      Test.make ~name:"settle-drop-5pct"
        (Staged.stage (settle (Some (Sim.Fault.drop_all ~seed:7 0.05))));
      Test.make ~name:"classify-drop-5pct"
        (Staged.stage (fun () ->
             Sim.Degrade.classify ~faults:(Sim.Fault.drop_all ~seed:7 0.05) g
               script));
    ]

let power_tests =
  Test.make_grouped ~name:"power"
    [
      Test.make ~name:"packets-podium"
        (Staged.stage (fun () ->
             Experiments.Power.run_design ~steps:50
               Designs.Library.podium_timer_3));
    ]

let obs_tests =
  (* The null-sink span and a counter bump are the per-call costs the
     instrumented hot paths pay when tracing is off; they must stay in
     the nanoseconds for the <5% table1 regression budget to hold. *)
  let c = Obs.Metrics.counter "bench.obs.scratch" in
  let g20 = random_design ~seed:3 ~inner:20 in
  Test.make_grouped ~name:"obs"
    [
      Test.make ~name:"span-null-sink"
        (Staged.stage (fun () -> Obs.Trace.with_span "bench" (fun () -> ())));
      Test.make ~name:"counter-incr"
        (Staged.stage (fun () -> Obs.Metrics.incr c));
      Test.make ~name:"paredown-20-chrome-traced"
        (Staged.stage (fun () ->
             let r = Obs.Chrome.create () in
             Obs.Trace.set_sink (Obs.Chrome.sink r);
             let sol = paredown_solution g20 in
             Obs.Trace.reset ();
             sol));
    ]

let journal_tests =
  (* The provenance journal, enabled vs disabled, on the same table1
     sweep the flight recorder rides along with.  The disabled-path
     guard cost is measured and bounded separately
     (Experiments.Perf.journal_overhead, asserted below and in
     test/test_journal.ml). *)
  let sweep () = List.map paredown_solution library_networks in
  Test.make_grouped ~name:"journal"
    [
      Test.make ~name:"table1-disabled" (Staged.stage sweep);
      Test.make ~name:"table1-ring-4096"
        (Staged.stage (fun () ->
             let _j = Obs.Journal.install ~capacity:4096 () in
             Fun.protect
               ~finally:(fun () -> ignore (Obs.Journal.uninstall ()))
               sweep));
    ]

let telemetry_tests =
  (* The network observatory, unarmed vs armed, on the same settle
     workload; the unarmed hook is a match on a [None] collector whose
     cost is measured and bounded separately
     (Experiments.Perf.telemetry_overhead, asserted below and in
     test/test_telemetry.ml). *)
  let g = Designs.Library.two_zone_security.Designs.Design.network in
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 21) ~sensors:(Graph.sensors g)
      ~steps:30 ~spacing:15
  in
  Test.make_grouped ~name:"telemetry"
    [
      Test.make ~name:"settle-unarmed"
        (Staged.stage (fun () ->
             let engine = Sim.Engine.create g in
             Sim.Stimulus.settled_outputs engine script));
      Test.make ~name:"settle-armed"
        (Staged.stage (fun () ->
             let telemetry = Sim.Telemetry.create () in
             let engine = Sim.Engine.create ~telemetry g in
             Sim.Stimulus.settled_outputs engine script));
      Test.make ~name:"merge-report"
        (Staged.stage (fun () ->
             let a = Sim.Telemetry.create ()
             and b = Sim.Telemetry.create () in
             ignore
               (Sim.Stimulus.settled_outputs
                  (Sim.Engine.create ~telemetry:a g) script);
             ignore
               (Sim.Stimulus.settled_outputs
                  (Sim.Engine.create ~telemetry:b g) script);
             Sim.Telemetry.report_json g (Sim.Telemetry.merge a b)));
    ]

let reliability_tests =
  (* The Monte-Carlo estimator alone, then the whole λ sweep whose later
     modes should be nearly free — the gap between the two is what the
     fingerprint memo cache buys. *)
  let entry_gate = Designs.Library.entry_gate_detector in
  let g = entry_gate.Designs.Design.network in
  let cfg = Reliability.Estimator.default_config in
  Test.make_grouped ~name:"reliability"
    [
      Test.make ~name:"estimate-entry-gate"
        (Staged.stage (fun () -> Reliability.Estimator.estimate_network cfg g));
      Test.make ~name:"sweep-entry-gate"
        (Staged.stage (fun () -> Experiments.Reliability.run_design entry_gate));
    ]

let service_tests =
  (* The batch server over in-memory pipes: a cold canonise+compute
     miss, the same request served warm from the cache, and the
     canonical fingerprint alone (the per-request overhead a hit
     pays). *)
  let g = Designs.Library.podium_timer_3.Designs.Design.network in
  let request id =
    Service.Protocol.render_request
      {
        Service.Protocol.id;
        op =
          Service.Protocol.Partition
            { backend = Service.Oneshot.Paredown; deadline_s = None };
        design = Some "Podium Timer 3";
        design_text = None;
        inputs = 2;
        outputs = 2;
      }
  in
  let serve frames =
    let req = Filename.temp_file "bench_service_req" ".bin" in
    let resp = Filename.temp_file "bench_service_resp" ".bin" in
    Fun.protect
      ~finally:(fun () ->
        Sys.remove req;
        Sys.remove resp)
      (fun () ->
        let oc = open_out_bin req in
        List.iter (Service.Protocol.write_frame oc) frames;
        close_out oc;
        let ic = open_in_bin req in
        let oc = open_out_bin resp in
        let summary = Service.Server.run ic oc in
        close_in ic;
        close_out oc;
        summary)
  in
  Test.make_grouped ~name:"service"
    [
      Test.make ~name:"serve-cold"
        (Staged.stage (fun () ->
             serve [ request "r1"; Service.Protocol.drain_frame ]));
      Test.make ~name:"serve-warm-10"
        (Staged.stage (fun () ->
             serve
               (List.init 10 (fun i -> request (Printf.sprintf "r%d" i))
               @ [ Service.Protocol.drain_frame ])));
      Test.make ~name:"canonise-podium"
        (Staged.stage (fun () -> Service.Canon.of_graph g));
    ]

let parse_tests =
  let source =
    Behavior.Ast.program_to_string
      (Codegen.Plan.build Designs.Library.podium_timer_3.Designs.Design.network
         (Netlist.Node_id.set_of_list [ 2; 3; 4; 5 ]))
        .Codegen.Plan.program
  in
  Test.make_grouped ~name:"frontend"
    [
      Test.make ~name:"parse-merged-program"
        (Staged.stage (fun () -> Behavior.Parse.program source));
    ]

let all_tests =
  Test.make_grouped ~name:"paredown"
    [
      kernel_tests; table1_tests; table2_tests; scale_tests; worstcase_tests;
      ablation_tests; codegen_tests; sim_tests; sim_kernel_tests;
      fault_tests; power_tests;
      reliability_tests; obs_tests; journal_tests; telemetry_tests;
      service_tests; parse_tests;
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run results
  in
  Notty_unix.eol img |> Notty_unix.output_image

(* ------------------------------------------------------------------ *)
(* Part 3: the machine-readable perf snapshot (Experiments.Perf): one
   min-of-k wall time per bench group plus the full metrics registry,
   in the schema `paredown perf compare` gates against. *)

let write_perf_snapshot () =
  match Option.value (Sys.getenv_opt "BENCH_JSON") ~default:"BENCH_paredown.json" with
  | "" -> ()
  | path ->
    let snapshot = Experiments.Perf.record () in
    Obs.Snapshot.write_file snapshot path;
    Printf.printf "\nperf snapshot: %d groups, %d metrics -> %s\n"
      (List.length snapshot.Obs.Snapshot.times_ns)
      (List.length snapshot.Obs.Snapshot.metrics)
      path

(* The doc/provenance.md ≤1% claim, asserted on every bench run: the
   disabled emit-site guard times the events a journaled table1 sweep
   would emit must stay under 1% of the sweep's wall time. *)
let check_journal_overhead () =
  let o = Experiments.Perf.journal_overhead () in
  Printf.printf
    "\njournal disabled-path overhead: %.2f ns/guard x %d events = %.4f%% \
     of the table1 sweep (budget 1%%)\n"
    o.Experiments.Perf.guard_ns o.Experiments.Perf.events
    (100. *. o.Experiments.Perf.ratio);
  if o.Experiments.Perf.ratio > 0.01 then begin
    prerr_endline "FAIL: journal disabled-path overhead exceeds 1%";
    exit 1
  end

(* The doc/network-telemetry.md ≤1% claim, same shape: the unarmed
   engine-hook guard times the hook sites a telemetry-armed simulation
   sweep executes must stay under 1% of the unarmed sweep's wall
   time. *)
let check_telemetry_overhead () =
  let o = Experiments.Perf.telemetry_overhead () in
  Printf.printf
    "telemetry disabled-path overhead: %.2f ns/guard x %d hook sites = \
     %.4f%% of the sim sweep (budget 1%%)\n"
    o.Experiments.Perf.t_guard_ns o.Experiments.Perf.t_events
    (100. *. o.Experiments.Perf.t_ratio);
  if o.Experiments.Perf.t_ratio > 0.01 then begin
    prerr_endline "FAIL: telemetry disabled-path overhead exceeds 1%";
    exit 1
  end

let () =
  print_tables ();
  write_perf_snapshot ();
  check_journal_overhead ();
  check_telemetry_overhead ();
  if Sys.getenv_opt "BENCH_TABLES_ONLY" = None then begin
    print_endline "\n== Bechamel micro-benchmarks ==\n";
    run_benchmarks ()
  end
