(* Command-line front end for the eBlock synthesis tool chain:
   inspect designs, partition them, synthesise programmable-block
   networks, emit C, simulate, and verify equivalence. *)

open Cmdliner

module Graph = Netlist.Graph

(* ------------------------------------------------------------------ *)
(* Observability options, common to every subcommand: --trace FILE
   records a Chrome trace-event JSON file of the run, --metrics prints
   the counter registry afterwards (see doc/observability.md). *)

type obs_opts = {
  trace_file : string option;
  metrics : bool;
  journal_file : string option;
  flight_record : string option;
  journal_ring : int;
}

let obs_term =
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record a Chrome trace-event JSON file of this run to \
                   $(docv); open it in Perfetto (ui.perfetto.dev) or \
                   chrome://tracing.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the observability counters (fit checks, search \
                   nodes, packets, emitted bytes, ...) after the command.")
  in
  let journal =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Record the search provenance journal (typed decision \
                   events, JSONL) to $(docv); query it afterwards with \
                   $(b,paredown explain) (see doc/provenance.md).")
  in
  let flight_record =
    Arg.(value & opt (some string) None
         & info [ "flight-record" ] ~docv:"FILE"
             ~doc:"Arm the flight recorder: keep a bounded ring of \
                   decision events and dump a post-mortem JSON bundle \
                   (journal tail, metrics snapshot, git rev) to $(docv) \
                   on deadline expiry, a simulation event-limit, or a \
                   failed verification.")
  in
  let journal_ring =
    Arg.(value & opt int 4096
         & info [ "journal-ring" ] ~docv:"N"
             ~doc:"Flight-recorder ring capacity, in events.")
  in
  Term.(
    const (fun trace_file metrics journal_file flight_record journal_ring ->
        { trace_file; metrics; journal_file; flight_record; journal_ring })
    $ trace $ metrics $ journal $ flight_record $ journal_ring)

let with_obs ?(metrics_out = stdout) opts f =
  (* Open the trace file before doing any work so a bad path fails
     fast, not after a long run. *)
  let recorder =
    Option.map
      (fun path ->
        let oc =
          try open_out path with
          | Sys_error msg ->
            Printf.eprintf "paredown: cannot write trace file: %s\n" msg;
            exit 2
        in
        let r = Obs.Chrome.create () in
        Obs.Trace.set_sink (Obs.Chrome.sink r);
        (path, oc, r))
      opts.trace_file
  in
  (* The sinks must also flush on [Stdlib.exit] — synth --verify and
     fuzz exit 1 on failure, and [Fun.protect] finalizers do not run
     then.  Each writer is an idempotent closure registered both behind
     a named {!Obs.Flush} slot (one process-lifetime at_exit; re-arming
     swaps the sink instead of accumulating a closure per invocation)
     and in the finally below, so the normal path and the exit path
     write exactly once. *)
  let write_trace =
    match recorder with
    | None -> fun () -> ()
    | Some (path, oc, r) ->
      let written = ref false in
      fun () ->
        if not !written then begin
          written := true;
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (Obs.Chrome.contents r));
          Printf.eprintf "trace: %d events written to %s\n"
            (Obs.Chrome.event_count r) path
        end
  in
  let write_journal =
    match opts.journal_file with
    | None -> fun () -> ()
    | Some path ->
      let j = Obs.Journal.install () in
      let written = ref false in
      fun () ->
        if not !written then begin
          written := true;
          try
            Obs.Journal.write_file j path;
            Printf.eprintf "journal: %d events written to %s\n"
              (Obs.Journal.total j) path
          with Sys_error msg ->
            Printf.eprintf "paredown: cannot write journal: %s\n" msg
        end
  in
  (match opts.flight_record with
   | Some out ->
     Obs.Journal.arm_post_mortem ~capacity:opts.journal_ring ~out ()
   | None -> ());
  Obs.Flush.arm ~slot:"cli.trace" write_trace;
  Obs.Flush.arm ~slot:"cli.journal" write_journal;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.reset ();
      write_trace ();
      write_journal ();
      if opts.metrics then begin
        output_char metrics_out '\n';
        output_string metrics_out (Obs.Metrics.to_table ~omit_zero:true ());
        flush metrics_out
      end)
    (fun () ->
      try f ()
      with e ->
        (* CLI-level failures (bad netlist, rewrite errors, ...) also
           deserve a post-mortem when the flight recorder is armed. *)
        Obs.Journal.note_failure (Printexc.to_string e);
        raise e)

let load_network name_or_path =
  match Designs.Library.find name_or_path with
  | Some d -> (d.Designs.Design.name, d.Designs.Design.network)
  | None ->
    if Sys.file_exists name_or_path then begin
      let name, g = Netlist.Textio.read_file name_or_path in
      (Option.value name ~default:name_or_path, g)
    end
    else
      failwith
        (Printf.sprintf
           "%S is neither a library design nor a netlist file (try \
            'paredown list')"
           name_or_path)

let design_arg =
  let doc = "Library design name (see $(b,list)) or netlist file path." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)

let shape_args =
  let inputs =
    Arg.(value & opt int 2
         & info [ "inputs" ] ~doc:"Programmable block input pins.")
  in
  let outputs =
    Arg.(value & opt int 2
         & info [ "outputs" ] ~doc:"Programmable block output pins.")
  in
  Term.(
    const (fun i o -> Core.Shape.make ~inputs:i ~outputs:o ())
    $ inputs $ outputs)

let algorithm_arg =
  let alg =
    Arg.enum
      [ ("paredown", `Paredown); ("exhaustive", `Exhaustive);
        ("aggregation", `Aggregation) ]
  in
  Arg.(value & opt alg `Paredown
       & info [ "algorithm"; "a" ]
           ~doc:"Partitioning algorithm: $(b,paredown), $(b,exhaustive), \
                 or $(b,aggregation).")

let backend_of_algorithm = function
  | `Paredown -> Service.Oneshot.Paredown
  | `Exhaustive -> Service.Oneshot.Exhaustive
  | `Aggregation -> Service.Oneshot.Aggregation

(* Dispatch and rendering live in [Service.Oneshot], shared verbatim
   with [paredown serve] — the service's byte-identity promise holds by
   construction, not by keeping two copies in step. *)
let partition_network ~algorithm ~shape g =
  match
    Service.Oneshot.partition ~backend:(backend_of_algorithm algorithm)
      ~shape g
  with
  | Service.Oneshot.Done { solution; _ }
  | Service.Oneshot.Expired { solution; _ } ->
    solution

let print_solution g sol =
  print_string (Service.Oneshot.solution_report g sol)

(* list *)

let list_cmd =
  let run obs =
    with_obs obs @@ fun () ->
    List.iter
      (fun d ->
        Printf.printf "%-28s %2d inner  %s\n" d.Designs.Design.name
          (Designs.Design.inner_count d) d.Designs.Design.description)
      Designs.Library.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in design library.")
    Term.(const run $ obs_term)

(* show *)

let show_cmd =
  let dot_arg =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE" ~doc:"Write Graphviz to $(docv).")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ] ~doc:"Print structural statistics instead of \
                                  the netlist.")
  in
  let run obs design dot stats =
    with_obs obs @@ fun () ->
    let name, g = load_network design in
    Printf.printf "%s\n" name;
    if stats then Format.printf "%a@." Netlist.Stats.pp (Netlist.Stats.compute g)
    else begin
      Format.printf "%a@." Graph.pp g;
      print_string (Netlist.Textio.to_string ~name g)
    end;
    Option.iter (fun path -> Netlist.Dot.write_file path g) dot
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a design's netlist.")
    Term.(const run $ obs_term $ design_arg $ dot_arg $ stats_arg)

(* partition *)

let partition_cmd =
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Print the PareDown decision trace (ranks, removals, \
                   accepts).  For a timeline of the run itself use the \
                   global $(b,--trace) $(i,FILE).")
  in
  let run obs design algorithm shape explain =
    with_obs obs @@ fun () ->
    let _, g = load_network design in
    if explain && algorithm = `Paredown then begin
      let config =
        { Core.Paredown.default_config with shapes = [ shape ] }
      in
      let r = Core.Paredown.run ~config ~record_trace:true g in
      List.iter
        (fun e -> Format.printf "%a@." Core.Paredown.pp_event e)
        r.Core.Paredown.trace;
      print_solution g r.Core.Paredown.solution
    end
    else print_solution g (partition_network ~algorithm ~shape g)
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Partition a design onto programmable blocks.")
    Term.(
      const run $ obs_term $ design_arg $ algorithm_arg $ shape_args
      $ explain_arg)

(* synth *)

let synth_cmd =
  let emit_c_arg =
    Arg.(value & opt (some string) None
         & info [ "emit-c" ] ~docv:"DIR"
             ~doc:"Write one C file per programmable block into $(docv).")
  in
  let dot_arg =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE"
             ~doc:"Write the synthesised network as Graphviz to $(docv).")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Verify the synthesis: co-simulate original and \
                   synthesised networks on random stimuli, then check \
                   every partition individually (exhaustive proof, \
                   bounded sequential proof, or differential \
                   co-simulation — see doc/verification.md) and print \
                   the per-partition breakdown.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE"
             ~doc:"Write the synthesised netlist (including defblock \
                   sections for the programmable blocks) to $(docv).")
  in
  let run obs design algorithm shape emit_c dot verify save =
    with_obs obs @@ fun () ->
    let name, g = load_network design in
    let sol = partition_network ~algorithm ~shape g in
    let result = Codegen.Replace.apply g sol in
    let g' = result.Codegen.Replace.network in
    print_solution g sol;
    Format.printf "synthesised: %a@." Graph.pp g';
    Option.iter
      (fun path ->
        Netlist.Textio.write_file path ~name:(name ^ " (synthesised)") g')
      save;
    (match emit_c with
     | Some dir ->
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       List.iteri
         (fun i prog_id ->
           let d = Graph.descriptor g' prog_id in
           let path = Filename.concat dir (Printf.sprintf "prog%d.c" (i + 1)) in
           Codegen.C_emit.write_file path
             ~block_name:(Printf.sprintf "%s partition %d" name (i + 1))
             ~n_inputs:d.Eblock.Descriptor.n_inputs
             ~n_outputs:d.Eblock.Descriptor.n_outputs
             d.Eblock.Descriptor.behavior;
           Printf.printf "wrote %s (approx. %d words)\n" path
             (Codegen.Size.estimate_words d.Eblock.Descriptor.behavior))
         result.Codegen.Replace.programmable_ids
     | None -> ());
    Option.iter (fun path -> Netlist.Dot.write_file path g') dot;
    if verify then begin
      (match
         Sim.Equiv.check_random ~reference:g ~candidate:g' ~seed:99 ~steps:60
       with
       | Ok () ->
         print_endline "verify: settled outputs match on 60 random steps"
       | Error m ->
         Format.printf "verify FAILED: %a@." Sim.Equiv.pp_mismatch m;
         exit 1);
      let report = Codegen.Verify.check_solution g sol in
      Format.printf "@[<v 2>verify per partition:@,%a@]@."
        Codegen.Verify.pp_report report;
      if not (Codegen.Verify.ok report) then begin
        print_endline "verify FAILED: a partition has a counterexample";
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Partition, replace with programmable blocks, and optionally \
             emit C and verify.")
    Term.(
      const run $ obs_term $ design_arg $ algorithm_arg $ shape_args
      $ emit_c_arg $ dot_arg $ verify_arg $ save_arg)

(* simulate *)

let family_conv =
  let parse s =
    match Reliability.Family.of_string s with
    | Ok f -> Ok f
    | Error e -> Error (`Msg e)
  in
  Arg.conv
    ( parse,
      fun ppf f -> Format.pp_print_string ppf (Reliability.Family.to_string f)
    )

let simulate_cmd =
  let steps_arg =
    Arg.(value & opt int 20
         & info [ "steps" ] ~doc:"Random sensor flips to apply.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Stimulus seed.")
  in
  let vcd_arg =
    Arg.(value & opt (some string) None
         & info [ "vcd" ] ~docv:"FILE"
             ~doc:"Also dump the primary-output waveform as VCD to $(docv).")
  in
  let faults_arg =
    Arg.(value & opt (some family_conv) None
         & info [ "faults" ] ~docv:"FAMILY"
             ~doc:"Replay under a fault plan drawn from this family \
                   (seeded by --seed); the VCD dump then carries one \
                   cumulative strike-counter signal per fault class in \
                   a $(b,faults) scope (see doc/fault-injection.md).")
  in
  let run obs design steps seed vcd family =
    with_obs obs @@ fun () ->
    let name, g = load_network design in
    let faults =
      Option.map (fun f -> Reliability.Family.plan f ~seed g) family
    in
    let engine =
      match faults with
      | None -> Sim.Engine.create g
      | Some faults -> Sim.Engine.create ~faults g
    in
    let rng = Prng.create seed in
    let script =
      Sim.Stimulus.random ~rng ~sensors:(Graph.sensors g) ~steps ~spacing:20
    in
    Printf.printf "%s: applying %d random sensor changes%s\n" name steps
      (match family with
       | Some f -> " under " ^ Reliability.Family.to_string f
       | None -> "");
    let observations = Sim.Stimulus.settled_outputs engine script in
    List.iter
      (fun (time, outputs) ->
        Format.printf "@%4d  %a@." time
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "  ")
             (fun ppf (id, v) ->
               Format.fprintf ppf "out%d=%a" id Behavior.Ast.pp_value v))
          outputs)
      observations;
    Printf.printf "block activations: %d, packets: %d\n"
      (Sim.Engine.activation_count engine)
      (Sim.Engine.packet_count engine);
    Option.iter
      (fun path -> Sim.Vcd.write_file path ?faults g script)
      vcd
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Drive a design with random stimuli.")
    Term.(
      const run $ obs_term $ design_arg $ steps_arg $ seed_arg $ vcd_arg
      $ faults_arg)

(* faults *)

let faults_cmd =
  let design_opt =
    let doc =
      "Library design name or netlist file; every Table 1 design when \
       omitted."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 11
         & info [ "seed" ]
             ~doc:"Master seed for the stimulus script and every fault \
                   plan; equal seeds reproduce the table byte for byte.")
  in
  let trials_arg =
    Arg.(value & opt int 20
         & info [ "trials" ] ~doc:"Fault-plan seeds per drop rate.")
  in
  let drops_arg =
    Arg.(value & opt (list float) [ 0.02; 0.05; 0.10 ]
         & info [ "drop" ] ~docv:"RATES"
             ~doc:"Comma-separated per-packet drop probabilities to sweep.")
  in
  let steps_arg =
    Arg.(value & opt int 30
         & info [ "steps" ] ~doc:"Sensor flips in the stimulus script.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")
  in
  let run obs design seed trials drops steps csv =
    with_obs obs @@ fun () ->
    let config =
      {
        Experiments.Faults.default_config with
        seed; trials; drop_rates = drops; steps;
      }
    in
    let rows =
      match design with
      | None -> Experiments.Faults.run ~config ()
      | Some d ->
        let name, g = load_network d in
        Experiments.Faults.run_network ~config ~name g
    in
    print_string (Experiments.Faults.to_table rows);
    print_endline (Experiments.Faults.summary rows);
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Experiments.Faults.to_csv rows)))
      csv
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Sweep seeded packet-drop faults over flat and synthesised \
             networks and tally the degradation outcomes (identical / \
             glitch-recovered / wrong-value / diverged).")
    Term.(
      const run $ obs_term $ design_opt $ seed_arg $ trials_arg $ drops_arg
      $ steps_arg $ csv_arg)

(* reliability *)

let reliability_cmd =
  let design_opt =
    let doc =
      "Library design name or netlist file; every Table 1 design when \
       omitted."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ]
             ~doc:"Master seed for the stimulus script and every trial's \
                   fault plan; equal seeds reproduce the table byte for \
                   byte.")
  in
  let trials_arg =
    Arg.(value & opt int 32
         & info [ "trials" ] ~doc:"Monte-Carlo trials per scored solution.")
  in
  let family_arg =
    Arg.(value
         & opt family_conv Reliability.Estimator.default_config.family
         & info [ "family" ] ~docv:"FAMILY"
             ~doc:"Fault-plan family: $(b,drop:R), \
                   $(b,chaos:DROP,DUP,CORRUPT,JITTER), or \
                   $(b,brownout:R@T1,T2,...).")
  in
  let lambdas_arg =
    Arg.(value & opt (list float) [ 0.; 1.; 4.; 16.; 64. ]
         & info [ "lambdas" ] ~docv:"Λ"
             ~doc:"Comma-separated λ values to sweep (blocks + λ × \
                   expected severity).")
  in
  let show_arg =
    Arg.(value & opt (some float) None
         & info [ "show" ] ~docv:"λ"
             ~doc:"Also print the reliability-weighted solution at this \
                   λ (requires a single $(i,DESIGN)).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")
  in
  let run obs design seed trials family lambdas show csv =
    with_obs obs @@ fun () ->
    let estimator =
      { Reliability.Estimator.default_config with seed; trials; family }
    in
    let config =
      { Experiments.Reliability.default_config with estimator; lambdas }
    in
    let report =
      match design with
      | None -> Experiments.Reliability.run ~config ()
      | Some d ->
        let name, g = load_network d in
        Experiments.Reliability.run_network ~config ~name g
    in
    print_string (Experiments.Reliability.to_table report);
    print_endline (Experiments.Reliability.summary report);
    (match show, design with
     | Some lambda, Some d ->
       let _, g = load_network d in
       let cache = Reliability.Estimator.cache () in
       let severity = Reliability.Estimator.scorer ~cache estimator g in
       let wr =
         Core.Paredown.run_weighted
           ~weighted:{ Core.Paredown.lambda; lexicographic = false; severity }
           g
       in
       Printf.printf "\nweighted solution at λ=%g (severity %.3f -> %.3f, \
                      %d partition(s) dissolved):\n"
         lambda wr.Core.Paredown.base_severity wr.Core.Paredown.severity
         wr.Core.Paredown.dissolved;
       print_solution g wr.Core.Paredown.solution;
       (* Served from the cache the weighted search just filled, so the
          blame vector describes exactly the solution printed above. *)
       let est =
         Reliability.Estimator.estimate_solution ~cache estimator g
           wr.Core.Paredown.solution
       in
       Printf.printf
         "\nblame vector (severity mass per fault site; components sum to \
          the solution's severity %.4f ±ε):\n"
         est.Reliability.Estimator.mean;
       print_string
         (Reliability.Estimator.blame_table est.Reliability.Estimator.blame)
     | Some _, None ->
       failwith "--show needs a single DESIGN to refine"
     | None, _ -> ());
    Option.iter
      (fun path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (Experiments.Reliability.to_csv report)))
      csv
  in
  Cmd.v
    (Cmd.info "reliability"
       ~doc:"Sweep the reliability-weighted objective over λ under a \
             seeded fault-plan family and print the cost/expected-\
             degradation Pareto front (flat, λ-weighted, and \
             lexicographic modes).")
    Term.(
      const run $ obs_term $ design_opt $ seed_arg $ trials_arg $ family_arg
      $ lambdas_arg $ show_arg $ csv_arg)

(* observe: the network observatory (doc/network-telemetry.md) *)

let observe_cmd =
  let faults_arg =
    Arg.(value & opt (some family_conv) None
         & info [ "faults" ] ~docv:"FAMILY"
             ~doc:"Fault-plan family to observe under: $(b,drop:R), \
                   $(b,chaos:DROP,DUP,CORRUPT,JITTER), or \
                   $(b,brownout:R@T1,T2,...).  Without it the run is \
                   fault-free (pure utilization).")
  in
  let seed_arg =
    Arg.(value & opt int Experiments.Netobs.default_config.seed
         & info [ "seed" ]
             ~doc:"Master seed for the stimulus script and trial plans; \
                   equal seeds reproduce every report byte for byte.")
  in
  let trials_arg =
    Arg.(value & opt int Experiments.Netobs.default_config.trials
         & info [ "trials" ] ~doc:"Monte-Carlo replays to merge.")
  in
  let steps_arg =
    Arg.(value & opt int Experiments.Netobs.default_config.steps
         & info [ "steps" ] ~doc:"Stimulus script length (sensor flips).")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Worker domains for the trial fan-out; the output is \
                   byte-identical for every $(docv).")
  in
  let netobs_arg =
    Arg.(value & opt (some string) None
         & info [ "netobs" ] ~docv:"FILE"
             ~doc:"Write the versioned paredown-netobs JSON report to \
                   $(docv).")
  in
  let timeline_arg =
    Arg.(value & opt (some string) None
         & info [ "timeline" ] ~docv:"FILE"
             ~doc:"Write a Chrome-trace timeline of the first trial (one \
                   lane per node) to $(docv); open in chrome://tracing or \
                   Perfetto.")
  in
  let run obs design faults seed trials steps jobs netobs timeline =
    with_obs obs @@ fun () ->
    let name, g = load_network design in
    let config =
      {
        Experiments.Netobs.default_config with
        seed;
        trials;
        steps;
        family = faults;
      }
    in
    let o = Experiments.Netobs.observe_network ~jobs ~config ~name g in
    (match o.Experiments.Netobs.family with
     | Some family ->
       Printf.printf
         "%s: %d trials under %s (seed %d) — ok %d gl %d wr %d dv %d, \
          severity %.3f\n"
         name o.Experiments.Netobs.trials
         (Reliability.Family.to_string family)
         seed o.Experiments.Netobs.identical o.Experiments.Netobs.recovered
         o.Experiments.Netobs.wrong o.Experiments.Netobs.diverged
         o.Experiments.Netobs.severity;
       Printf.printf
         "\nblame vector (severity mass per fault site; components sum to \
          %.4f ±ε):\n"
         o.Experiments.Netobs.severity;
       print_string
         (Reliability.Estimator.blame_table o.Experiments.Netobs.blame)
     | None ->
       Printf.printf "%s: fault-free instrumented replay (seed %d)\n" name
         seed);
    let tel = o.Experiments.Netobs.telemetry in
    Printf.printf
      "\nnodes (events %d, settles %d, queue high-water %d, clock %d):\n"
      (Sim.Telemetry.events tel)
      (Sim.Telemetry.settles tel)
      (Sim.Telemetry.queue_hwm tel)
      (Sim.Telemetry.clock tel);
    print_string (Sim.Telemetry.node_table g tel);
    Printf.printf "\nlink utilization (all trials merged):\n";
    print_string (Sim.Telemetry.utilization_table g tel);
    Option.iter
      (fun path ->
        Experiments.Netobs.write_report o path;
        Printf.printf "\nnetobs report written to %s\n" path)
      netobs;
    Option.iter
      (fun path ->
        let recording = Experiments.Netobs.record_timeline ~config g in
        Sim.Telemetry.write_timeline g recording path;
        Printf.printf "timeline (%d events, %d dropped) written to %s\n"
          (Sim.Telemetry.timeline_events recording)
          (Sim.Telemetry.timeline_dropped recording)
          path)
      timeline
  in
  Cmd.v
    (Cmd.info "observe"
       ~doc:"Observe a network's runtime behaviour per node and per link \
             — deliveries, fault strikes, queue high-water marks, \
             delivery latencies — under a seeded fault family, with \
             severity blame attribution, a paredown-netobs JSON report, \
             and a Chrome-trace timeline.")
    Term.(
      const run $ obs_term $ design_arg $ faults_arg $ seed_arg $ trials_arg
      $ steps_arg $ jobs_arg $ netobs_arg $ timeline_arg)

(* generate *)

let generate_cmd =
  let inner_arg =
    Arg.(value & opt int 15 & info [ "inner" ] ~doc:"Inner block count.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.")
  in
  let save_arg =
    Arg.(value & opt (some string) None
         & info [ "save" ] ~docv:"FILE" ~doc:"Write the netlist to $(docv).")
  in
  let run obs inner seed save =
    with_obs obs @@ fun () ->
    let rng = Prng.create seed in
    let g = Randgen.Generator.generate ~rng ~inner () in
    let name = Printf.sprintf "random-%d-%d" inner seed in
    (match save with
     | Some path -> Netlist.Textio.write_file path ~name g
     | None -> print_string (Netlist.Textio.to_string ~name g));
    Format.eprintf "%a@." Graph.pp g
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a random eBlock design.")
    Term.(const run $ obs_term $ inner_arg $ seed_arg $ save_arg)

(* perf: record / compare / profile (see doc/observability.md) *)

let perf_record_cmd =
  let out_arg =
    Arg.(value & opt string "perf-snapshot.json"
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Where to write the snapshot JSON.")
  in
  let repeats_arg =
    Arg.(value & opt int 3
         & info [ "repeats" ]
             ~doc:"Timed passes per group; the minimum wall time is kept \
                   (scheduler-noise floor).  Counters come from a single \
                   warmup pass and do not depend on this.")
  in
  let run out repeats =
    let snapshot = Experiments.Perf.record ~repeats () in
    Obs.Snapshot.write_file snapshot out;
    Printf.printf "recorded %d groups, %d metrics (git %s) -> %s\n"
      (List.length snapshot.Obs.Snapshot.times_ns)
      (List.length snapshot.Obs.Snapshot.metrics)
      (match snapshot.Obs.Snapshot.git_rev with
       | Some r -> String.sub r 0 (min 12 (String.length r))
       | None -> "unknown")
      out
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:"Run the perf suite (one workload per bench group) and write \
             a snapshot JSON: min-of-k wall times plus the full metrics \
             registry.")
    Term.(const run $ out_arg $ repeats_arg)

let perf_compare_cmd =
  let old_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"OLD" ~doc:"Baseline snapshot JSON.")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"NEW" ~doc:"Candidate snapshot JSON.")
  in
  let max_ratio_arg =
    Arg.(value & opt float 1.5
         & info [ "max-ratio" ]
             ~doc:"A wall time regresses when it exceeds baseline times \
                   this ratio (and the absolute floor).")
  in
  let min_ms_arg =
    Arg.(value & opt float 1.0
         & info [ "min-ms" ]
             ~doc:"Absolute floor: wall-time growth below this many \
                   milliseconds never gates (jitter suppression).")
  in
  let counter_ratio_arg =
    Arg.(value & opt float 1.1
         & info [ "counter-ratio" ]
             ~doc:"Work counters are deterministic, so they gate at this \
                   tighter ratio.")
  in
  let min_count_arg =
    Arg.(value & opt float 1000.
         & info [ "min-count" ]
             ~doc:"Absolute floor on counter growth before it gates.")
  in
  let load path =
    match Obs.Snapshot.read_file path with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "paredown perf compare: %s: %s\n" path msg;
      exit 2
  in
  let run old_path new_path max_ratio min_ms counter_ratio min_count =
    let base = load old_path and cur = load new_path in
    if base.Obs.Snapshot.config <> cur.Obs.Snapshot.config then
      Printf.eprintf
        "warning: snapshot configs differ (%s vs %s) — counter \
         comparisons may be spurious\n"
        (String.concat ","
           (List.map (fun (k, v) -> k ^ "=" ^ v) base.Obs.Snapshot.config))
        (String.concat ","
           (List.map (fun (k, v) -> k ^ "=" ^ v) cur.Obs.Snapshot.config));
    print_string (Obs.Snapshot.render_diff ~base cur);
    let regressions =
      Obs.Snapshot.gate ~max_ratio ~min_abs_ns:(min_ms *. 1e6)
        ~counter_max_ratio:counter_ratio ~min_abs_count:min_count ~base cur
    in
    print_newline ();
    match regressions with
    | [] -> print_endline "gate: ok (no regressions)"
    | rs ->
      List.iter
        (fun r ->
          Printf.printf "REGRESSION %s: %s -> %s (x%.2f)\n"
            r.Obs.Snapshot.r_metric
            (Obs.Metrics.pp_quantity
               ~time:(Obs.Metrics.is_time_name r.Obs.Snapshot.r_metric)
               r.Obs.Snapshot.r_base)
            (Obs.Metrics.pp_quantity
               ~time:(Obs.Metrics.is_time_name r.Obs.Snapshot.r_metric)
               r.Obs.Snapshot.r_cur)
            r.Obs.Snapshot.r_ratio)
        rs;
      exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Diff two perf snapshots and gate: exit nonzero when a wall \
             time or work counter regresses past the thresholds.")
    Term.(
      const run $ old_arg $ new_arg $ max_ratio_arg $ min_ms_arg
      $ counter_ratio_arg $ min_count_arg)

let perf_profile_cmd =
  let steps_arg =
    Arg.(value & opt int 30
         & info [ "steps" ] ~doc:"Random sensor flips to simulate.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Stimulus seed.")
  in
  let top_arg =
    Arg.(value & opt int 15
         & info [ "top" ] ~doc:"Rows in the self-time table.")
  in
  let run design steps seed top =
    let name, g = load_network design in
    let profile = Obs.Profile.create () in
    Obs.Trace.set_sink (Obs.Profile.sink profile);
    Fun.protect ~finally:Obs.Trace.reset (fun () ->
        (* The full pipeline, once: partition, rewrite, emit C for every
           programmable block, then simulate the synthesised network. *)
        let sol = (Core.Paredown.run g).Core.Paredown.solution in
        let result = Codegen.Replace.apply g sol in
        let g' = result.Codegen.Replace.network in
        List.iter
          (fun prog_id ->
            let d = Graph.descriptor g' prog_id in
            ignore
              (Codegen.C_emit.program
                 ~n_inputs:d.Eblock.Descriptor.n_inputs
                 ~n_outputs:d.Eblock.Descriptor.n_outputs
                 d.Eblock.Descriptor.behavior))
          result.Codegen.Replace.programmable_ids;
        let engine = Sim.Engine.create g' in
        let script =
          Sim.Stimulus.random ~rng:(Prng.create seed)
            ~sensors:(Graph.sensors g') ~steps ~spacing:20
        in
        ignore (Sim.Stimulus.settled_outputs engine script));
    Printf.printf "%s: one synth+simulate run, by span self time\n\n" name;
    print_string (Obs.Profile.to_table ~top profile)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run partition -> rewrite -> C emission -> simulation once \
             under the aggregating profiler sink and print the per-phase \
             self-time breakdown.")
    Term.(const run $ design_arg $ steps_arg $ seed_arg $ top_arg)

let perf_cmd =
  Cmd.group
    (Cmd.info "perf"
       ~doc:"Perf snapshots and the regression gate: record a snapshot, \
             compare two, or profile one run per phase.")
    [ perf_record_cmd; perf_compare_cmd; perf_profile_cmd ]

(* explain: query a provenance journal (see doc/provenance.md) *)

let explain_load path =
  match Obs.Journal.load_file path with
  | Ok l -> l
  | Error msg ->
    Printf.eprintf "paredown explain: %s: %s\n" path msg;
    exit 2

let journal_pos n =
  Arg.(required & pos n (some file) None
       & info [] ~docv:"JOURNAL"
           ~doc:"Journal JSONL file (from --journal) or post-mortem \
                 bundle (from --flight-record).")

let explain_summary_cmd =
  let run path = print_string (Obs.Journal.summary (explain_load path)) in
  Cmd.v
    (Cmd.info "summary"
       ~doc:"Per-phase decision counts by kind, the reject-reason \
             histogram, and the fit-check total (which matches the \
             run's core.paredown.fit_checks metric).")
    Term.(const run $ journal_pos 0)

let explain_why_cmd =
  let node_arg =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"NODE" ~doc:"Block id to trace.")
  in
  let run node path = print_string (Obs.Journal.why ~node (explain_load path)) in
  Cmd.v
    (Cmd.info "why"
       ~doc:"Every recorded decision that touched a block, in journal \
             order.")
    Term.(const run $ node_arg $ journal_pos 1)

let explain_diff_cmd =
  let run a b =
    print_endline (Obs.Journal.diff (explain_load a) (explain_load b))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two journals: reports identical, or names the \
             first divergent decision.")
    Term.(const run $ journal_pos 0 $ journal_pos 1)

let explain_cmd =
  Cmd.group
    (Cmd.info "explain"
       ~doc:"Query a search provenance journal recorded with --journal \
             or --flight-record: summarise decisions, trace a block, or \
             diff two runs.")
    [ explain_summary_cmd; explain_why_cmd; explain_diff_cmd ]

(* serve / submit: the batch synthesis service (see doc/service.md) *)

let serve_cmd =
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ]
             ~doc:"Worker domains for the cache-miss fan-out.  Responses \
                   are byte-identical across values (mask wall-clock \
                   fields with PAREDOWN_STABLE_TIMES=1 to diff).")
  in
  let queue_arg =
    Arg.(value & opt int 256
         & info [ "queue" ]
             ~doc:"Requests accepted per batch; the rest are answered \
                   $(b,rejected) with a reason (backpressure).")
  in
  let cache_arg =
    Arg.(value & opt (some string) None
         & info [ "cache" ] ~docv:"FILE"
             ~doc:"Persist the solution cache to $(docv) (versioned \
                   JSON, written atomically; loaded at boot, flushed \
                   incrementally and at every drain).")
  in
  let capacity_arg =
    Arg.(value & opt int Service.Cache.default_capacity
         & info [ "capacity" ]
             ~doc:"Solution-cache bound (least-recently-used eviction).")
  in
  let run obs jobs queue cache capacity =
    (* stdout is the wire: --metrics must not corrupt the frame stream. *)
    with_obs ~metrics_out:stderr obs @@ fun () ->
    let config =
      {
        Service.Server.jobs; queue; cache_path = cache; capacity;
        log = (fun m -> Printf.eprintf "paredown serve: %s\n%!" m);
      }
    in
    ignore (Service.Server.run ~config stdin stdout)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident batch synthesis server: length-prefixed \
             JSON request frames on stdin (see $(b,submit)), one \
             response frame per request plus a batch summary on stdout, \
             behind a fingerprint-keyed solution cache.")
    Term.(
      const run $ obs_term $ jobs_arg $ queue_arg $ cache_arg $ capacity_arg)

let submit_cmd =
  let designs_arg =
    Arg.(value & pos_all string []
         & info [] ~docv:"DESIGN"
             ~doc:"Library design name or netlist file (files are \
                   embedded inline).  One request per design.")
  in
  let table1_arg =
    Arg.(value & flag
         & info [ "table1" ] ~doc:"Submit every Table 1 design.")
  in
  let op_arg =
    let op = Arg.enum [ ("partition", `Partition); ("weighted", `Weighted) ] in
    Arg.(value & opt op `Partition
         & info [ "op" ] ~doc:"Request kind: $(b,partition) or \
                               $(b,weighted) (reliability-weighted).")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Per-request budget for the exhaustive backend.")
  in
  let lambda_arg =
    Arg.(value & opt float 1.0
         & info [ "lambda" ] ~doc:"Severity weight of weighted requests.")
  in
  let family_arg =
    Arg.(value & opt family_conv Reliability.Estimator.default_config.family
         & info [ "family" ] ~docv:"FAMILY"
             ~doc:"Fault-plan family of weighted requests.")
  in
  let trials_arg =
    Arg.(value & opt int Service.Protocol.default_trials
         & info [ "trials" ] ~doc:"Monte-Carlo trials of weighted requests.")
  in
  let seed_arg =
    Arg.(value & opt int Service.Protocol.default_seed
         & info [ "seed" ] ~doc:"Seed of weighted requests.")
  in
  let repeat_arg =
    Arg.(value & opt int 1
         & info [ "repeat" ]
             ~doc:"Submit the whole request list this many times (cache \
                   exercise).")
  in
  let decode_arg =
    Arg.(value & opt (some string) None
         & info [ "decode" ] ~docv:"FILE"
             ~doc:"Decode a response stream ($(b,-) for stdin) instead \
                   of emitting requests: print each ok response's \
                   output verbatim, other statuses as one '# id status' \
                   comment line each.")
  in
  let summary_arg =
    Arg.(value & flag
         & info [ "summary" ]
             ~doc:"With $(b,--decode): print only the batch summary as \
                   one key=value line.")
  in
  let run obs designs table1 op backend deadline lambda family trials seed
      repeat decode summary =
    (* Encode mode writes request frames on stdout; keep --metrics off
       the wire there too. *)
    with_obs ~metrics_out:stderr obs @@ fun () ->
    match decode with
    | Some path ->
      let ic = if path = "-" then stdin else open_in path in
      Fun.protect
        ~finally:(fun () -> if path <> "-" then close_in ic)
        (fun () ->
          let rec loop () =
            match Service.Protocol.read_frame ic with
            | None -> ()
            | Some frame ->
              (if Service.Protocol.is_summary frame then begin
                 if summary then
                   match Service.Protocol.summary_line frame with
                   | Ok line -> print_endline line
                   | Error e -> Printf.eprintf "paredown submit: %s\n" e
               end
               else if not summary then
                 match Service.Protocol.parse_response frame with
                 | Error e -> Printf.eprintf "paredown submit: %s\n" e
                 | Ok r -> (
                   match r.Service.Protocol.status with
                   | Service.Protocol.Ok_ ->
                     print_string r.Service.Protocol.output
                   | s ->
                     Printf.printf "# %s %s: %s\n" r.Service.Protocol.r_id
                       (Service.Protocol.status_to_string s)
                       (String.concat " | "
                          (String.split_on_char '\n'
                             r.Service.Protocol.output))));
              loop ()
          in
          try loop ()
          with Service.Protocol.Framing_error e ->
            (* A truncated or corrupted response stream is an input
               error, not an internal one. *)
            Printf.eprintf "paredown submit: corrupt response stream: %s\n" e;
            exit 1)
    | None ->
      let base =
        if table1 then
          List.map (fun d -> `Library d.Designs.Design.name)
            Designs.Library.table1
        else
          List.map
            (fun d ->
              if Option.is_some (Designs.Library.find d) then `Library d
              else if Sys.file_exists d then begin
                let ic = open_in_bin d in
                let text =
                  Fun.protect
                    ~finally:(fun () -> close_in ic)
                    (fun () -> really_input_string ic (in_channel_length ic))
                in
                `Inline text
              end
              else failwith (Printf.sprintf "unknown design %S" d))
            designs
      in
      if base = [] then failwith "nothing to submit (name designs or --table1)";
      let op_of_design () =
        match op with
        | `Partition ->
          Service.Protocol.Partition
            { backend = backend_of_algorithm backend; deadline_s = deadline }
        | `Weighted ->
          Service.Protocol.Weighted { lambda; family; trials; seed }
      in
      let n = ref 0 in
      for _ = 1 to max 1 repeat do
        List.iter
          (fun d ->
            incr n;
            let design, design_text =
              match d with
              | `Library name -> (Some name, None)
              | `Inline text -> (None, Some text)
            in
            let r =
              {
                Service.Protocol.id = Printf.sprintf "r%d" !n;
                op = op_of_design ();
                design;
                design_text;
                inputs = 2;
                outputs = 2;
              }
            in
            Service.Protocol.write_frame stdout
              (Service.Protocol.render_request r))
          base
      done;
      Service.Protocol.write_frame stdout Service.Protocol.drain_frame
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Build request frames for $(b,paredown serve) (default), or \
             decode a response stream with $(b,--decode).  Compose with \
             a shell pipe: paredown submit D | paredown serve | \
             paredown submit --decode -")
    Term.(
      const run $ obs_term $ designs_arg $ table1_arg $ op_arg
      $ algorithm_arg $ deadline_arg $ lambda_arg $ family_arg $ trials_arg
      $ seed_arg $ repeat_arg $ decode_arg $ summary_arg)

let () =
  Obs.Journal.maybe_enable_from_env ();
  let info =
    Cmd.info "paredown"
      ~doc:"eBlock system synthesis: partitioning networks of pre-defined \
            blocks onto programmable blocks (DATE 2005 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; show_cmd; partition_cmd; synth_cmd; simulate_cmd;
            faults_cmd; reliability_cmd; observe_cmd; generate_cmd;
            perf_cmd; explain_cmd; serve_cmd; submit_cmd ]))
