(* Regenerates every table and claim of the paper's evaluation (§5),
   plus the fault-tolerance and verification extensions.  Subcommands:
   table1, table2, scale, ablation, power, faults, reliability, netobs,
   fuzz, all. *)

open Cmdliner

let out_arg =
  let doc = "Also write the table as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let write_csv path csv =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc csv)

let print_header title =
  Printf.printf "\n== %s ==\n\n" title

(* Each table runs inside Obs.Metrics.with_scope and prints the scope's
   own readings afterwards (counter deltas, histogram diffs), so the
   numbers are per-table without ever zeroing the cumulative registry —
   the reset-based version made `all` runs order-sensitive and lost the
   process totals. *)
let in_metrics_scope f =
  let result, entries = Obs.Metrics.with_scope f in
  Printf.printf "\n-- metrics --\n%s"
    (Obs.Metrics.render_entries ~omit_zero:true entries);
  result

let run_table1 cutoff csv_out () =
  print_header "Table 1: 15 library designs (exhaustive vs PareDown)";
  in_metrics_scope @@ fun () ->
  let config =
    { Experiments.Table1.default_config with exhaustive_cutoff = cutoff }
  in
  let rows = Experiments.Table1.run ~config () in
  print_string (Experiments.Table1.to_table rows);
  Option.iter
    (fun path -> write_csv path (Experiments.Table1.to_csv rows))
    csv_out

let run_table2 seed scale_counts cutoff jobs csv_out () =
  print_header "Table 2: randomly generated designs";
  in_metrics_scope @@ fun () ->
  let base = Experiments.Table2.default_config in
  let sizes =
    List.map
      (fun (inner, count) ->
        (inner, max 1 (int_of_float (float_of_int count *. scale_counts))))
      base.Experiments.Table2.sizes
  in
  let config =
    { base with Experiments.Table2.seed; sizes; exhaustive_cutoff = cutoff }
  in
  let buckets = Experiments.Table2.run ~config ~jobs () in
  print_string (Experiments.Table2.to_table buckets);
  Option.iter
    (fun path -> write_csv path (Experiments.Table2.to_csv buckets))
    csv_out

let run_scale jobs () =
  print_header "Scalability (§5.2): PareDown on large random designs";
  let (per_run_exact, measured_total), entries =
    Obs.Metrics.with_scope (fun () ->
        print_string
          (Experiments.Scale.to_table (Experiments.Scale.run_random ~jobs ()));
        print_header "Worst-case family (§4.2): fit checks = n(n+1)/2";
        let worst = Experiments.Scale.run_worst_case ~jobs () in
        print_string (Experiments.Scale.to_table worst);
        ( List.for_all
            (fun p ->
              p.Experiments.Scale.expected_fit_checks
              = Some p.Experiments.Scale.fit_checks)
            worst,
          List.fold_left
            (fun acc p -> acc + p.Experiments.Scale.fit_checks)
            0 worst ))
  in
  (* The §4.2 claim, asserted rather than eyeballed: the per-run fit
     checks and the scope's counter delta must both reach the closed
     form (the scope also covers the random sweep, so >=). *)
  let counted =
    match
      List.find_opt
        (fun e -> e.Obs.Metrics.name = "core.paredown.fit_checks")
        entries
    with
    | Some { Obs.Metrics.value = Obs.Metrics.Count n; _ } -> n
    | Some _ | None -> -1
  in
  let exact = per_run_exact && counted >= measured_total in
  Printf.printf "worst-case closed form: %s\n"
    (if exact then "ok (fit checks = n(n+1)/2 on every size)"
     else "MISMATCH (see table above)");
  Printf.printf "\n-- metrics --\n%s"
    (Obs.Metrics.render_entries ~omit_zero:true entries);
  if not exact then exit 1

let run_ablation seed count inner () =
  print_header "Ablations: PareDown ingredients and baselines";
  in_metrics_scope @@ fun () ->
  print_string
    (Experiments.Ablation.to_table
       (Experiments.Ablation.run ~seed ~count ~inner ()))

let run_power seed steps () =
  print_header
    "Power proxy (§1): packets transmitted before/after synthesis";
  in_metrics_scope @@ fun () ->
  print_string
    (Experiments.Power.to_table (Experiments.Power.run ~seed ~steps ()))

let run_faults seed trials csv_out () =
  print_header
    "Fault tolerance: degradation of flat vs partitioned networks under \
     packet drops";
  in_metrics_scope @@ fun () ->
  let config =
    { Experiments.Faults.default_config with seed; trials }
  in
  let rows = Experiments.Faults.run ~config () in
  print_string (Experiments.Faults.to_table rows);
  print_endline (Experiments.Faults.summary rows);
  Option.iter
    (fun path -> write_csv path (Experiments.Faults.to_csv rows))
    csv_out

let run_reliability seed trials family jobs csv_out () =
  print_header
    "Reliability: cost vs expected degradation (λ sweep and Pareto front)";
  in_metrics_scope @@ fun () ->
  let estimator =
    { Reliability.Estimator.default_config with seed; trials; family }
  in
  let config =
    { Experiments.Reliability.default_config with estimator }
  in
  let report = Experiments.Reliability.run ~config ~jobs () in
  print_string (Experiments.Reliability.to_table report);
  print_endline (Experiments.Reliability.summary report);
  Option.iter
    (fun path -> write_csv path (Experiments.Reliability.to_csv report))
    csv_out

let run_netobs seed trials family jobs check_overhead csv_out () =
  print_header
    "Network observatory: flat vs partitioned link utilization under \
     faults";
  in_metrics_scope @@ fun () ->
  let config =
    { Experiments.Netobs.default_config with seed; trials; family }
  in
  let rows = Experiments.Netobs.run ~jobs ~config () in
  print_string (Experiments.Netobs.to_table rows);
  print_endline (Experiments.Netobs.summary rows);
  Option.iter
    (fun path -> write_csv path (Experiments.Netobs.to_csv rows))
    csv_out;
  if check_overhead then begin
    let o = Experiments.Perf.telemetry_overhead () in
    Printf.printf
      "disabled-telemetry overhead: %.2f ns/guard x %d hook sites / %.0f \
       ns sweep = %.4f%%\n"
      o.Experiments.Perf.t_guard_ns o.Experiments.Perf.t_events
      o.Experiments.Perf.t_sweep_ns
      (100. *. o.Experiments.Perf.t_ratio);
    if o.Experiments.Perf.t_ratio > 0.01 then begin
      print_endline
        "FAIL: disabled-telemetry overhead exceeds the 1% budget \
         (doc/network-telemetry.md)";
      exit 1
    end
  end

let run_fuzz seed seeds jobs csv_out show_metrics () =
  print_header
    "Verification fuzzing: three-tier Verify over random designs";
  (* The scope's counter deltas feed the per-tier summary line
     (race-limited scripts have no per-row home); --metrics prints the
     whole per-scope registry reading on top. *)
  let rows, entries =
    Obs.Metrics.with_scope (fun () ->
        let config = { Experiments.Fuzz.default_config with seed; seeds } in
        Experiments.Fuzz.run ~config ~jobs ())
  in
  let race_limited =
    match
      List.find_opt
        (fun e -> e.Obs.Metrics.name = "codegen.cosim.race_limited_scripts")
        entries
    with
    | Some { Obs.Metrics.value = Obs.Metrics.Count n; _ } -> n
    | Some _ | None -> 0
  in
  print_string (Experiments.Fuzz.to_table rows);
  print_endline (Experiments.Fuzz.summary ~race_limited rows);
  List.iter
    (fun r ->
      match r.Experiments.Fuzz.failure with
      | Some f -> Printf.printf "seed %d: %s\n" r.Experiments.Fuzz.seed f
      | None -> ())
    rows;
  if show_metrics then
    Printf.printf "\n-- metrics --\n%s"
      (Obs.Metrics.render_entries ~omit_zero:true entries);
  Option.iter
    (fun path -> write_csv path (Experiments.Fuzz.to_csv rows))
    csv_out;
  if Experiments.Fuzz.failed_seeds rows <> [] then exit 1

let jobs_arg =
  let doc =
    "Worker domains for the sweep (default 1 = sequential).  Any value \
     produces byte-identical tables and counters; only wall-clock \
     readings differ (mask those with PAREDOWN_STABLE_TIMES=1 to diff \
     runs)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cutoff_arg default =
  let doc = "Largest inner-block count attempted exhaustively." in
  Arg.(value & opt int default & info [ "exhaustive-cutoff" ] ~doc)

let seed_arg default =
  let doc = "Random seed (results are deterministic per seed)." in
  Arg.(value & opt int default & info [ "seed" ] ~doc)

let table1_cmd =
  let term =
    Term.(
      const (fun cutoff csv -> run_table1 cutoff csv ())
      $ cutoff_arg 11 $ out_arg)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1.") term

let table2_cmd =
  let scale_arg =
    let doc =
      "Scale factor on the per-bucket design counts (1.0 uses the \
       reduced defaults; larger values approach the paper's counts)."
    in
    Arg.(value & opt float 1.0 & info [ "scale" ] ~doc)
  in
  let term =
    Term.(
      const (fun seed scale cutoff jobs csv ->
          run_table2 seed scale cutoff jobs csv ())
      $ seed_arg 2005 $ scale_arg $ cutoff_arg 11 $ jobs_arg $ out_arg)
  in
  Cmd.v (Cmd.info "table2" ~doc:"Regenerate Table 2.") term

let scale_cmd =
  Cmd.v
    (Cmd.info "scale" ~doc:"Regenerate the scalability and worst-case claims.")
    Term.(const run_scale $ jobs_arg $ const ())

let ablation_cmd =
  let count_arg =
    Arg.(value & opt int 100 & info [ "count" ] ~doc:"Designs per variant.")
  in
  let inner_arg =
    Arg.(value & opt int 20 & info [ "inner" ] ~doc:"Inner blocks per design.")
  in
  let term =
    Term.(
      const (fun seed count inner -> run_ablation seed count inner ())
      $ seed_arg 7 $ count_arg $ inner_arg)
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Run the ablation studies.") term

let power_cmd =
  let steps_arg =
    Arg.(value & opt int 200
         & info [ "steps" ] ~doc:"Random sensor changes per design.")
  in
  let term =
    Term.(
      const (fun seed steps -> run_power seed steps ())
      $ seed_arg 23 $ steps_arg)
  in
  Cmd.v
    (Cmd.info "power"
       ~doc:"Compare packet counts before and after synthesis.")
    term

let faults_cmd =
  let trials_arg =
    Arg.(value & opt int 20
         & info [ "trials" ] ~doc:"Fault-plan seeds per drop rate.")
  in
  let term =
    Term.(
      const (fun seed trials csv -> run_faults seed trials csv ())
      $ seed_arg 11 $ trials_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run the fault-injection degradation sweep (flat vs \
             partitioned).")
    term

let fuzz_cmd =
  let seeds_arg =
    Arg.(value & opt int 50
         & info [ "seeds" ] ~doc:"Random designs to generate and verify.")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the sweep's own metrics readings (counter \
                   deltas, histogram diffs) after the table.")
  in
  let term =
    Term.(
      const (fun seed seeds jobs csv metrics ->
          run_fuzz seed seeds jobs csv metrics ())
      $ seed_arg 2005 $ seeds_arg $ jobs_arg $ out_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz the three-tier merge verifier over random designs; \
             exits nonzero on any failed verdict (a found merge bug, \
             reported with a shrunk counterexample).")
    term

let reliability_cmd =
  let trials_arg =
    Arg.(value & opt int 32
         & info [ "trials" ] ~doc:"Monte-Carlo trials per scored solution.")
  in
  let family_arg =
    let family_c =
      Arg.conv
        ( (fun s ->
            match Reliability.Family.of_string s with
            | Ok f -> Ok f
            | Error e -> Error (`Msg e)),
          fun ppf f ->
            Format.pp_print_string ppf (Reliability.Family.to_string f) )
    in
    Arg.(value & opt family_c Reliability.Estimator.default_config.family
         & info [ "family" ] ~docv:"FAMILY"
             ~doc:"Fault-plan family: $(b,drop:R), \
                   $(b,chaos:DROP,DUP,CORRUPT,JITTER), or \
                   $(b,brownout:R@T1,T2,...).")
  in
  let term =
    Term.(
      const (fun seed trials family jobs csv ->
          run_reliability seed trials family jobs csv ())
      $ seed_arg 1 $ trials_arg $ family_arg $ jobs_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "reliability"
       ~doc:"Sweep the reliability-weighted objective over λ and print \
             the per-design cost/expected-degradation Pareto front.")
    term

let netobs_cmd =
  let trials_arg =
    Arg.(value & opt int Experiments.Netobs.default_config.trials
         & info [ "trials" ] ~doc:"Monte-Carlo replays per network.")
  in
  let family_arg =
    let family_c =
      Arg.conv
        ( (fun s ->
            match Reliability.Family.of_string s with
            | Ok f -> Ok f
            | Error e -> Error (`Msg e)),
          fun ppf f ->
            Format.pp_print_string ppf (Reliability.Family.to_string f) )
    in
    let default =
      match Experiments.Netobs.default_config.family with
      | Some f -> f
      | None -> Reliability.Family.Drop { rate = 0.05 }
    in
    Arg.(value & opt family_c default
         & info [ "family" ] ~docv:"FAMILY"
             ~doc:"Fault-plan family: $(b,drop:R), \
                   $(b,chaos:DROP,DUP,CORRUPT,JITTER), or \
                   $(b,brownout:R@T1,T2,...).")
  in
  let overhead_arg =
    Arg.(value & flag
         & info [ "overhead" ]
             ~doc:"Also measure the disabled-telemetry guard overhead of \
                   a Table 1 simulation sweep and exit nonzero if it \
                   exceeds the documented 1% budget.")
  in
  let term =
    Term.(
      const (fun seed trials family jobs overhead csv ->
          run_netobs seed trials (Some family) jobs overhead csv ())
      $ seed_arg Experiments.Netobs.default_config.seed
      $ trials_arg $ family_arg $ jobs_arg $ overhead_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "netobs"
       ~doc:"Compare flat vs partitioned per-link utilization (sends, \
             busiest link, worst p99 latency) over every Table 1 design \
             under a seeded fault family.")
    term

let all_cmd =
  let term =
    Term.(
      const (fun jobs () ->
          run_table1 11 None ();
          run_table2 2005 1.0 11 jobs None ();
          run_scale jobs ();
          run_ablation 7 50 20 ();
          run_power 23 200 ();
          run_faults 11 10 None ();
          run_reliability 1 32
            Reliability.Estimator.default_config.family jobs None ();
          run_netobs Experiments.Netobs.default_config.seed
            Experiments.Netobs.default_config.trials
            Experiments.Netobs.default_config.family jobs false None ();
          run_fuzz 2005 25 jobs None true ())
      $ jobs_arg $ const ())
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment.") term

let () =
  (* PAREDOWN_JOURNAL / PAREDOWN_FLIGHT_RECORD: verify-fuzz in CI arms
     the flight recorder so a failing sweep leaves a post-mortem bundle
     to upload. *)
  Obs.Journal.maybe_enable_from_env ();
  let info =
    Cmd.info "experiments"
      ~doc:"Regenerate the tables of 'System Synthesis for Networks of \
            Programmable Blocks' (DATE 2005)."
  in
  exit (Cmd.eval (Cmd.group info
                    [ table1_cmd; table2_cmd; scale_cmd; ablation_cmd;
                      power_cmd; faults_cmd; reliability_cmd; netobs_cmd;
                      fuzz_cmd; all_cmd ]))
