(* A whole-house system: the scale the paper says "can easily involve
   several dozen nodes".

   Composes the motivating applications of §1 into one 40+-inner-block
   network — garage, night lamps, two security zones, doorbell extension,
   mailbox alert — then runs the complete flow a user of the framework
   would: structural statistics, PareDown synthesis, formal + simulated
   verification, packet (power) comparison, C sizing, and a saved,
   reloadable netlist.

   Run with: dune exec examples/smart_home.exe *)

module Graph = Netlist.Graph
module C = Eblock.Catalog

(* Builder state: a graph threaded through subsystem constructors. *)
let g = ref Graph.empty

let add ?label d =
  let g', id = Graph.add ?label !g d in
  g := g';
  id

let ( ==> ) (src, sport) (dst, dport) =
  g := Graph.connect !g ~src:(src, sport) ~dst:(dst, dport)

(* --- garage: door open after dark rings the bedroom ------------------- *)
let garage () =
  let door = add ~label:"garage door" C.contact_switch in
  let light = add ~label:"garage daylight" C.light_sensor in
  let logic = add (C.truth_table2 ~table:0b0100) in
  let stretch = add (C.prolong ~ticks:12) in
  let buzzer = add ~label:"bedroom buzzer" C.buzzer in
  (door, 0) ==> (logic, 0);
  (light, 0) ==> (logic, 1);
  (logic, 0) ==> (stretch, 0);
  (stretch, 0) ==> (buzzer, 0)

(* --- hallway night lamp: motion in the dark --------------------------- *)
let night_lamp suffix =
  let motion = add ~label:("motion " ^ suffix) C.motion_sensor in
  let light = add ~label:("light " ^ suffix) C.light_sensor in
  let invert = add C.not_gate in
  let gate = add C.and2 in
  let hold = add (C.prolong ~ticks:20) in
  let lamp = add ~label:("lamp " ^ suffix) C.relay in
  (light, 0) ==> (invert, 0);
  (invert, 0) ==> (gate, 0);
  (motion, 0) ==> (gate, 1);
  (gate, 0) ==> (hold, 0);
  (hold, 0) ==> (lamp, 0)

(* --- a security zone: three windows, armed, latched, radioed ---------- *)
let security_zone suffix =
  let w1 = add ~label:("window " ^ suffix ^ "1") C.contact_switch in
  let w2 = add ~label:("window " ^ suffix ^ "2") C.contact_switch in
  let w3 = add ~label:("window " ^ suffix ^ "3") C.contact_switch in
  let armed = add ~label:("armed " ^ suffix) C.contact_switch in
  let any = add C.or3 in
  let debounce = add (C.prolong ~ticks:4) in
  let gate = add C.and2 in
  let latch = add C.trip_latch in
  let pulse = add (C.pulse_gen ~width:6) in
  let tx = add C.wireless_tx in
  let rx = add C.wireless_rx in
  (w1, 0) ==> (any, 0);
  (w2, 0) ==> (any, 1);
  (w3, 0) ==> (any, 2);
  (any, 0) ==> (debounce, 0);
  (debounce, 0) ==> (gate, 0);
  (armed, 0) ==> (gate, 1);
  (gate, 0) ==> (latch, 0);
  (latch, 0) ==> (pulse, 0);
  (pulse, 0) ==> (tx, 0);
  (tx, 0) ==> (rx, 0);
  rx

(* --- central alarm over both zones ------------------------------------ *)
let central rx_a rx_b =
  let any = add C.or2 in
  let latch = add C.trip_latch in
  let hold = add (C.prolong ~ticks:25) in
  let split = add C.splitter2 in
  let siren = add ~label:"siren" C.buzzer in
  let lamp = add ~label:"alarm lamp" C.led in
  (rx_a, 0) ==> (any, 0);
  (rx_b, 0) ==> (any, 1);
  (any, 0) ==> (latch, 0);
  (latch, 0) ==> (hold, 0);
  (hold, 0) ==> (split, 0);
  (split, 0) ==> (siren, 0);
  (split, 1) ==> (lamp, 0)

(* --- doorbell repeated to the workshop --------------------------------- *)
let doorbell () =
  let button = add ~label:"doorbell" C.button in
  let ding = add (C.pulse_gen ~width:8) in
  let tx = add C.wireless_tx in
  let rx = add C.wireless_rx in
  let hold = add (C.prolong ~ticks:10) in
  let chime = add ~label:"workshop chime" C.buzzer in
  (button, 0) ==> (ding, 0);
  (ding, 0) ==> (tx, 0);
  (tx, 0) ==> (rx, 0);
  (rx, 0) ==> (hold, 0);
  (hold, 0) ==> (chime, 0)

(* --- mailbox flag -------------------------------------------------------- *)
let mailbox () =
  let flap = add ~label:"mailbox flap" C.contact_switch in
  let collected = add ~label:"collected" C.button in
  let latch = add C.trip_reset in
  let tx = add C.wireless_tx in
  let rx = add C.wireless_rx in
  let led = add ~label:"mail led" C.led in
  (flap, 0) ==> (latch, 0);
  (collected, 0) ==> (latch, 1);
  (latch, 0) ==> (tx, 0);
  (tx, 0) ==> (rx, 0);
  (rx, 0) ==> (led, 0)

let () =
  garage ();
  night_lamp "hall";
  night_lamp "stairs";
  let rx_a = security_zone "A" in
  let rx_b = security_zone "B" in
  central rx_a rx_b;
  doorbell ();
  mailbox ()

let network = !g

let () =
  (match Graph.validate network with
   | Ok () -> ()
   | Error problems -> List.iter print_endline problems; exit 1);
  print_endline "=== Structure ===";
  Format.printf "%a@." Netlist.Stats.pp (Netlist.Stats.compute network)

let () = print_endline "\n=== Synthesis ==="

let result, pd = Codegen.Replace.synthesize network
let synthesised = result.Codegen.Replace.network

let () =
  let sol = pd.Core.Paredown.solution in
  Format.printf "PareDown: %d inner blocks -> %d (%d programmable) in %d \
                 fit checks@."
    (Graph.inner_count network)
    (Core.Solution.total_inner_after network sol)
    (Core.Solution.programmable_count sol)
    pd.Core.Paredown.stats.Core.Paredown.fit_checks;
  List.iter
    (fun p -> Format.printf "  %a@." Core.Partition.pp p)
    sol.Core.Solution.partitions

let () = print_endline "\n=== Verification ==="

let () =
  (match
     Sim.Equiv.check_random ~reference:network ~candidate:synthesised
       ~seed:8 ~steps:150
   with
   | Ok () -> print_endline "co-simulation: 150 random sensor changes agree"
   | Error m ->
     Format.printf "MISMATCH %a@." Sim.Equiv.pp_mismatch m;
     exit 1);
  let report =
    Codegen.Verify.check_solution network pd.Core.Paredown.solution
  in
  Format.printf "%a@." Codegen.Verify.pp_report report;
  if not (Codegen.Verify.ok report) then exit 1

let () = print_endline "\n=== Power proxy ==="

let () =
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 8)
      ~sensors:(Graph.sensors network) ~steps:150 ~spacing:25
  in
  let packets g =
    let engine = Sim.Engine.create g in
    let (_ : (int * (Netlist.Node_id.t * Behavior.Ast.value) list) list) =
      Sim.Stimulus.settled_outputs engine script
    in
    Sim.Engine.packet_count engine
  in
  let before = packets network and after = packets synthesised in
  Printf.printf "packets under the same 150-step script: %d -> %d (%.0f%% \
                 saved)\n"
    before after
    (100. *. float_of_int (before - after) /. float_of_int before)

let () = print_endline "\n=== Firmware ==="

let () =
  List.iter
    (fun prog_id ->
      let d = Graph.descriptor synthesised prog_id in
      Printf.printf "%s: %d inputs, %d outputs, ~%d of %d PIC words\n"
        (Graph.node synthesised prog_id).Graph.label
        d.Eblock.Descriptor.n_inputs d.Eblock.Descriptor.n_outputs
        (Codegen.Size.estimate_words d.Eblock.Descriptor.behavior)
        Codegen.Size.pic16f628_words)
    result.Codegen.Replace.programmable_ids

let () =
  let path = Filename.temp_file "smart_home" ".ebn" in
  Netlist.Textio.write_file path ~name:"smart home (synthesised)" synthesised;
  let _, reloaded = Netlist.Textio.read_file path in
  assert (Graph.node_count reloaded = Graph.node_count synthesised);
  Printf.printf "\nsynthesised netlist saved to %s and reloads cleanly\n" path
