type value =
  | Bool of bool
  | Int of int

type unop =
  | Not
  | Neg

type binop =
  | And | Or | Xor
  | Add | Sub | Mul
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Const of value
  | Var of string
  | Input of int
  | Timer_fired of int
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | If_expr of expr * expr * expr

type stmt =
  | Assign of string * expr
  | Output of int * expr
  | If of expr * stmt list * stmt list
  | Set_timer of int * expr
  | Cancel_timer of int
  | Nop

type program = {
  state : (string * value) list;
  body : stmt list;
}

let empty = { state = []; body = [] }

let bool_ b = Const (Bool b)
let int_ n = Const (Int n)
let ( &&& ) a b = Binop (And, a, b)
let ( ||| ) a b = Binop (Or, a, b)
let not_ e = Unop (Not, e)
let input i = Input i
let var name = Var name

let equal_value v1 v2 =
  v1 == v2  (* Bool payloads are shared statics in practice *)
  ||
  match v1, v2 with
  | Bool b1, Bool b2 -> Bool.equal b1 b2
  | Int n1, Int n2 -> Int.equal n1 n2
  | Bool _, Int _ | Int _, Bool _ -> false

let compare_value v1 v2 =
  match v1, v2 with
  | Bool b1, Bool b2 -> Bool.compare b1 b2
  | Int n1, Int n2 -> Int.compare n1 n2
  | Bool _, Int _ -> -1
  | Int _, Bool _ -> 1

let pp_value ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n

let unop_symbol = function
  | Not -> "!"
  | Neg -> "-"

let binop_symbol = function
  | And -> "&&"
  | Or -> "||"
  | Xor -> "^"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_expr ppf = function
  | Const v -> pp_value ppf v
  | Var name -> Format.pp_print_string ppf name
  | Input i -> Format.fprintf ppf "in[%d]" i
  | Timer_fired t -> Format.fprintf ppf "timer_fired(%d)" t
  | Unop (op, e) -> Format.fprintf ppf "%s%a" (unop_symbol op) pp_atom e
  | Binop (op, e1, e2) ->
    Format.fprintf ppf "%a %s %a" pp_atom e1 (binop_symbol op) pp_atom e2
  | If_expr (c, t, e) ->
    Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr t pp_expr e

and pp_atom ppf e =
  match e with
  | Const _ | Var _ | Input _ | Timer_fired _ -> pp_expr ppf e
  | Unop _ | Binop _ | If_expr _ -> Format.fprintf ppf "(%a)" pp_expr e

let rec pp_stmt ppf = function
  | Assign (name, e) -> Format.fprintf ppf "%s = %a;" name pp_expr e
  | Output (i, e) -> Format.fprintf ppf "out[%d] = %a;" i pp_expr e
  | If (c, then_, []) ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block then_
  | If (c, then_, else_) ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
      pp_expr c pp_block then_ pp_block else_
  | Set_timer (t, e) -> Format.fprintf ppf "set_timer(%d, %a);" t pp_expr e
  | Cancel_timer t -> Format.fprintf ppf "cancel_timer(%d);" t
  | Nop -> Format.pp_print_string ppf ";"

and pp_block ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_program ppf { state; body } =
  let pp_decl ppf (name, v) =
    Format.fprintf ppf "state %s = %a;" name pp_value v
  in
  Format.fprintf ppf "@[<v>%a%a%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_decl) state
    (fun ppf () -> if state <> [] && body <> [] then Format.pp_print_cut ppf ())
    ()
    pp_block body

let value_to_string v = Format.asprintf "%a" pp_value v
let expr_to_string e = Format.asprintf "%a" pp_expr e
let program_to_string p = Format.asprintf "%a" pp_program p

(* Structural folds used by the static queries below. *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Var _ | Input _ | Timer_fired _ -> acc
  | Unop (_, e1) -> fold_expr f acc e1
  | Binop (_, e1, e2) -> fold_expr f (fold_expr f acc e1) e2
  | If_expr (c, t, e') -> fold_expr f (fold_expr f (fold_expr f acc c) t) e'

let rec fold_stmt fs fe acc s =
  let acc = fs acc s in
  match s with
  | Assign (_, e) | Output (_, e) | Set_timer (_, e) -> fold_expr fe acc e
  | If (c, then_, else_) ->
    let acc = fold_expr fe acc c in
    let acc = List.fold_left (fold_stmt fs fe) acc then_ in
    List.fold_left (fold_stmt fs fe) acc else_
  | Cancel_timer _ | Nop -> acc

let fold_program fs fe acc { state = _; body } =
  List.fold_left (fold_stmt fs fe) acc body

let max_input_index p =
  let on_expr acc = function Input i -> max acc i | _ -> acc in
  fold_program (fun acc _ -> acc) on_expr (-1) p

let max_output_index p =
  let on_stmt acc = function Output (i, _) -> max acc i | _ -> acc in
  fold_program on_stmt (fun acc _ -> acc) (-1) p

let max_timer_index p =
  let on_stmt acc = function
    | Set_timer (t, _) | Cancel_timer t -> max acc t
    | Assign _ | Output _ | If _ | Nop -> acc
  in
  let on_expr acc = function Timer_fired t -> max acc t | _ -> acc in
  fold_program on_stmt on_expr (-1) p

let uses_timer p = max_timer_index p >= 0

let map_ports ?expr_of_input ?rewrite_output ?timer_index p =
  let expr_of_input =
    match expr_of_input with Some f -> f | None -> fun i -> Input i
  in
  let rewrite_output =
    match rewrite_output with
    | Some f -> f
    | None -> fun i e -> [ Output (i, e) ]
  in
  let timer_index =
    match timer_index with Some f -> f | None -> fun t -> t
  in
  let rec map_expr e =
    match e with
    | Const _ | Var _ -> e
    | Input i -> expr_of_input i
    | Timer_fired t -> Timer_fired (timer_index t)
    | Unop (op, e1) -> Unop (op, map_expr e1)
    | Binop (op, e1, e2) -> Binop (op, map_expr e1, map_expr e2)
    | If_expr (c, t, f) -> If_expr (map_expr c, map_expr t, map_expr f)
  in
  let rec map_stmt s =
    match s with
    | Assign (name, e) -> [ Assign (name, map_expr e) ]
    | Output (i, e) -> rewrite_output i (map_expr e)
    | If (c, then_, else_) ->
      [ If (map_expr c, map_block then_, map_block else_) ]
    | Set_timer (t, e) -> [ Set_timer (timer_index t, map_expr e) ]
    | Cancel_timer t -> [ Cancel_timer (timer_index t) ]
    | Nop -> [ Nop ]
  and map_block stmts = List.concat_map map_stmt stmts in
  { p with body = map_block p.body }

module String_set = Set.Make (String)

(* [free_stmts defined stmts] returns [(free, defined')]: variables read
   while not yet surely defined, and the set surely defined afterwards.  A
   variable assigned in only one branch of an [If] is not surely defined. *)
let free_variables { state; body } =
  let initially =
    List.fold_left (fun s (name, _) -> String_set.add name s)
      String_set.empty state
  in
  let rec free_expr defined free e =
    match e with
    | Const _ | Input _ | Timer_fired _ -> free
    | Var name ->
      if String_set.mem name defined then free else String_set.add name free
    | Unop (_, e1) -> free_expr defined free e1
    | Binop (_, e1, e2) -> free_expr defined (free_expr defined free e1) e2
    | If_expr (c, t, e') ->
      free_expr defined (free_expr defined (free_expr defined free c) t) e'
  in
  let rec free_stmts defined free stmts =
    match stmts with
    | [] -> (free, defined)
    | s :: rest ->
      let free, defined =
        match s with
        | Assign (name, e) ->
          (free_expr defined free e, String_set.add name defined)
        | Output (_, e) | Set_timer (_, e) ->
          (free_expr defined free e, defined)
        | If (c, then_, else_) ->
          let free = free_expr defined free c in
          let free, defined_then = free_stmts defined free then_ in
          let free, defined_else = free_stmts defined free else_ in
          (free, String_set.inter defined_then defined_else)
        | Cancel_timer _ | Nop -> (free, defined)
      in
      free_stmts defined free rest
  in
  let free, _ = free_stmts initially String_set.empty body in
  String_set.elements free

let assigned_variables { state; body } =
  let on_stmt acc = function
    | Assign (name, _) -> String_set.add name acc
    | Output _ | If _ | Set_timer _ | Cancel_timer _ | Nop -> acc
  in
  let from_state =
    List.fold_left (fun s (name, _) -> String_set.add name s)
      String_set.empty state
  in
  let all =
    List.fold_left (fold_stmt on_stmt (fun acc _ -> acc)) from_state body
  in
  String_set.elements all
