(* Closure compiler for behaviour programs.  Semantics are defined by
   {!Eval}; every deviation the simulator could observe — error
   messages, flush order of outputs and timers, last-write-wins — is a
   bug (property-tested against the interpreter in test_kernel.ml). *)

let error fmt =
  Format.kasprintf (fun msg -> raise (Eval.Runtime_error msg)) fmt

let as_bool = function
  | Ast.Bool b -> b
  | Ast.Int _ -> error "expected a boolean value"

let as_int = function
  | Ast.Int n -> n
  | Ast.Bool _ -> error "expected an integer value"

(* The two boolean values are immutable and compared structurally
   everywhere, so all closures share one allocation of each. *)
let vtrue = Ast.Bool true
let vfalse = Ast.Bool false
let vbool b = if b then vtrue else vfalse

(* Int-encoding of values for the latch arrays: tag 0/1 is Bool
   false/true, tag 2 is Int with the payload in the parallel array.
   Plain int arrays mean the simulator's delivery path stores a value
   with two unboxed writes — no caml_modify write barrier. *)
let value_tag = function
  | Ast.Bool b -> Bool.to_int b
  | Ast.Int _ -> 2

let value_payload = function Ast.Bool _ -> 0 | Ast.Int n -> n

let value_of_code k n = if k = 0 then vfalse else if k = 1 then vtrue else Ast.Int n

type state = {
  vars : Ast.value array;
  defined : bool array;
      (* body-only variables start undefined; reading one then raises,
         as the interpreter's Hashtbl miss does *)
  mutable in_k : int array;  (* input latch, int-encoded (see value_tag) *)
  mutable in_n : int array;  (* Int payloads where [in_k] is 2 *)
  mutable fired : int;  (* timer slot that expired, -1 for none *)
  (* activation scratch: last-write-wins collection, flushed by
     [activate] in canonical order *)
  out_set : bool array;
  out_val : Ast.value array;
  tmr_act : int array;  (* 0 untouched, 1 set, 2 cancelled *)
  tmr_delay : int array;
}

type t = {
  run : state -> unit;
  n_outputs : int;
  n_vars : int;
  var_init : Ast.value array;
  defined0 : bool array;
  timer_ids : int array;  (* raw timer index per slot, ascending *)
}

let n_timers t = Array.length t.timer_ids

let timer_id t slot = t.timer_ids.(slot)

(* ------------------------------------------------------------------ *)
(* Slot assignment *)

module String_map = Map.Make (String)

type ctx = {
  var_slot : int String_map.t;
  state_slots : int;  (* slots [0 .. state_slots) are always defined *)
  timer_slot : (int * int) array;  (* (raw, slot), sorted by raw *)
  c_outputs : int;
}

let timer_slot_of ctx raw =
  (* compile-time resolution: linear scan over the program's few
     distinct timers *)
  let rec find i =
    if i >= Array.length ctx.timer_slot then
      invalid_arg "Compile: unknown timer index"
    else
      let raw', slot = ctx.timer_slot.(i) in
      if raw' = raw then slot else find (i + 1)
  in
  find 0

let build_ctx (p : Ast.program) ~n_outputs =
  (* State variables first, in declaration order (first occurrence keeps
     the slot, later duplicates overwrite the initial value — exactly
     [Hashtbl.replace] in Eval.init); body-assigned variables after, in
     sorted order. *)
  let var_slot, inits =
    List.fold_left
      (fun (slots, inits) (name, v) ->
        match String_map.find_opt name slots with
        | Some slot -> (slots, (slot, v) :: inits)
        | None ->
          let slot = String_map.cardinal slots in
          (String_map.add name slot slots, (slot, v) :: inits))
      (String_map.empty, []) p.Ast.state
  in
  let state_slots = String_map.cardinal var_slot in
  let var_slot =
    List.fold_left
      (fun slots name ->
        if String_map.mem name slots then slots
        else String_map.add name (String_map.cardinal slots) slots)
      var_slot
      (Ast.assigned_variables p)
  in
  let n_vars = String_map.cardinal var_slot in
  let var_init = Array.make n_vars vfalse in
  (* inits is reversed declaration order, so folding right-to-left
     replays declaration order and the last duplicate wins *)
  List.iter (fun (slot, v) -> var_init.(slot) <- v) (List.rev inits);
  let defined0 = Array.init n_vars (fun i -> i < state_slots) in
  let timer_set =
    let rec expr_timers acc (e : Ast.expr) =
      match e with
      | Const _ | Var _ | Input _ -> acc
      | Timer_fired t -> t :: acc
      | Unop (_, e1) -> expr_timers acc e1
      | Binop (_, e1, e2) -> expr_timers (expr_timers acc e1) e2
      | If_expr (c, t, f) ->
        expr_timers (expr_timers (expr_timers acc c) t) f
    in
    let rec stmt_timers acc (s : Ast.stmt) =
      match s with
      | Assign (_, e) | Output (_, e) -> expr_timers acc e
      | Set_timer (t, e) -> expr_timers (t :: acc) e
      | Cancel_timer t -> t :: acc
      | If (c, then_, else_) ->
        let acc = expr_timers acc c in
        let acc = List.fold_left stmt_timers acc then_ in
        List.fold_left stmt_timers acc else_
      | Nop -> acc
    in
    List.fold_left stmt_timers [] p.Ast.body |> List.sort_uniq Int.compare
  in
  let timer_ids = Array.of_list timer_set in
  let timer_slot = Array.mapi (fun slot raw -> (raw, slot)) timer_ids in
  ( { var_slot; state_slots; timer_slot; c_outputs = n_outputs },
    var_init, defined0, timer_ids, n_vars )

(* ------------------------------------------------------------------ *)
(* Expression and statement lowering *)

let rec cexpr ctx (e : Ast.expr) : state -> Ast.value =
  match e with
  | Const v -> fun _ -> v
  | Var name ->
    (match String_map.find_opt name ctx.var_slot with
     | None -> fun _ -> error "unbound variable %s" name
     | Some slot when slot < ctx.state_slots -> fun st -> st.vars.(slot)
     | Some slot ->
       fun st ->
         if st.defined.(slot) then st.vars.(slot)
         else error "unbound variable %s" name)
  | Input i ->
    fun st ->
      let k = st.in_k in
      if i < 0 || i >= Array.length k then
        error "input port %d out of range (block has %d inputs)" i
          (Array.length k)
      else
        (match Array.unsafe_get k i with
         | 0 -> vfalse
         | 1 -> vtrue
         | _ -> Ast.Int st.in_n.(i))
  | Timer_fired raw ->
    let slot = timer_slot_of ctx raw in
    fun st -> vbool (st.fired = slot)
  | Unop (op, e1) ->
    let f1 = cexpr ctx e1 in
    (match op with
     | Not ->
       fun st ->
         (match f1 st with
          | Ast.Bool b -> vbool (not b)
          | Ast.Int _ -> error "! applied to an integer")
     | Neg ->
       fun st ->
         (match f1 st with
          | Ast.Int n -> Ast.Int (-n)
          | Ast.Bool _ -> error "unary - applied to a boolean"))
  | Binop (op, e1, e2) ->
    let f1 = cexpr ctx e1 and f2 = cexpr ctx e2 in
    (* Both operands are evaluated before the operator applies, exactly
       as in Eval.eval_expr (whose [&&]/[||] only short-circuit the
       boolean *check* of an already-evaluated operand). *)
    (match op with
     | And -> fun st -> let v1 = f1 st in let v2 = f2 st in
         vbool (as_bool v1 && as_bool v2)
     | Or -> fun st -> let v1 = f1 st in let v2 = f2 st in
         vbool (as_bool v1 || as_bool v2)
     | Xor ->
       fun st ->
         let v1 = f1 st in
         let v2 = f2 st in
         (match v1, v2 with
          | Ast.Bool b1, Ast.Bool b2 -> vbool (Bool.equal b1 b2 |> not)
          | Ast.Int n1, Ast.Int n2 -> Ast.Int (n1 lxor n2)
          | Ast.Bool _, Ast.Int _ | Ast.Int _, Ast.Bool _ ->
            error "^ applied to mixed types")
     | Add -> fun st -> let v1 = f1 st in let v2 = f2 st in
         Ast.Int (as_int v1 + as_int v2)
     | Sub -> fun st -> let v1 = f1 st in let v2 = f2 st in
         Ast.Int (as_int v1 - as_int v2)
     | Mul -> fun st -> let v1 = f1 st in let v2 = f2 st in
         Ast.Int (as_int v1 * as_int v2)
     | Eq -> fun st -> let v1 = f1 st in let v2 = f2 st in
         vbool (Ast.equal_value v1 v2)
     | Ne -> fun st -> let v1 = f1 st in let v2 = f2 st in
         vbool (not (Ast.equal_value v1 v2))
     | Lt -> fun st -> let v1 = f1 st in let v2 = f2 st in
         vbool (as_int v1 < as_int v2)
     | Le -> fun st -> let v1 = f1 st in let v2 = f2 st in
         vbool (as_int v1 <= as_int v2)
     | Gt -> fun st -> let v1 = f1 st in let v2 = f2 st in
         vbool (as_int v1 > as_int v2)
     | Ge -> fun st -> let v1 = f1 st in let v2 = f2 st in
         vbool (as_int v1 >= as_int v2))
  | If_expr (c, t, f) ->
    let fc = cexpr ctx c and ft = cexpr ctx t and ff = cexpr ctx f in
    fun st -> if as_bool (fc st) then ft st else ff st

let rec cstmt ctx (s : Ast.stmt) : state -> unit =
  match s with
  | Assign (name, e) ->
    let f = cexpr ctx e in
    let slot = String_map.find name ctx.var_slot in
    if slot < ctx.state_slots then fun st -> st.vars.(slot) <- f st
    else
      fun st ->
        st.vars.(slot) <- f st;
        st.defined.(slot) <- true
  | Output (i, e) ->
    if i < 0 || i >= ctx.c_outputs then
      (* range failure precedes evaluation of [e], as in Eval *)
      fun _ ->
        error "output port %d out of range (block has %d outputs)" i
          ctx.c_outputs
    else
      let f = cexpr ctx e in
      fun st ->
        let v = f st in
        st.out_set.(i) <- true;
        st.out_val.(i) <- v
  | If (c, then_, else_) ->
    let fc = cexpr ctx c in
    let ft = cblock ctx then_ and fe = cblock ctx else_ in
    fun st -> if as_bool (fc st) then ft st else fe st
  | Set_timer (raw, e) ->
    let slot = timer_slot_of ctx raw in
    let f = cexpr ctx e in
    fun st ->
      let delay = as_int (f st) in
      if delay <= 0 then error "set_timer with non-positive delay %d" delay
      else begin
        st.tmr_act.(slot) <- 1;
        st.tmr_delay.(slot) <- delay
      end
  | Cancel_timer raw ->
    let slot = timer_slot_of ctx raw in
    fun st -> st.tmr_act.(slot) <- 2
  | Nop -> fun _ -> ()

and cblock ctx stmts : state -> unit =
  match List.map (cstmt ctx) stmts with
  | [] -> fun _ -> ()
  | [ f ] -> f
  | [ f1; f2 ] -> fun st -> f1 st; f2 st
  | fs ->
    let arr = Array.of_list fs in
    let n = Array.length arr in
    fun st ->
      for i = 0 to n - 1 do
        arr.(i) st
      done

(* ------------------------------------------------------------------ *)

let build (p : Ast.program) ~n_outputs =
  let ctx, var_init, defined0, timer_ids, n_vars =
    build_ctx p ~n_outputs
  in
  {
    run = cblock ctx p.Ast.body;
    n_outputs;
    n_vars;
    var_init;
    defined0;
    timer_ids;
  }

(* Catalog descriptors are shared across every random design and engine
   instance, so the same few programs are compiled over and over; the
   memo makes Engine.create pay compilation once per distinct program.
   Bounded (merged programs from codegen rewrites are open-ended) and
   mutex-guarded ([lib/parallel] creates engines from several domains;
   compiled code is immutable, so sharing across domains is safe). *)
let memo : (Ast.program * int, t) Hashtbl.t = Hashtbl.create 64
let memo_mutex = Mutex.create ()
let memo_cap = 512

let compile p ~n_outputs =
  let key = (p, n_outputs) in
  Mutex.lock memo_mutex;
  let cached = Hashtbl.find_opt memo key in
  Mutex.unlock memo_mutex;
  match cached with
  | Some t -> t
  | None ->
    let t = build p ~n_outputs in
    Mutex.lock memo_mutex;
    if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
    Hashtbl.replace memo key t;
    Mutex.unlock memo_mutex;
    t

let fresh_state t =
  let nt = Array.length t.timer_ids in
  {
    vars = Array.copy t.var_init;
    defined = Array.copy t.defined0;
    in_k = [||];
    in_n = [||];
    fired = -1;
    out_set = Array.make t.n_outputs false;
    out_val = Array.make t.n_outputs vfalse;
    tmr_act = Array.make nt 0;
    tmr_delay = Array.make nt 0;
  }

let reset_state t st =
  Array.blit t.var_init 0 st.vars 0 t.n_vars;
  Array.blit t.defined0 0 st.defined 0 t.n_vars

let bind_inputs st ~tags ~payloads =
  st.in_k <- tags;
  st.in_n <- payloads

let run_bound t st ~fired =
  st.fired <- fired;
  (* inline fills: the arrays are tiny (ports and timer slots of one
     block) and [Array.fill] is an out-of-line call per activation *)
  let os = st.out_set in
  for i = 0 to t.n_outputs - 1 do Array.unsafe_set os i false done;
  let ta = st.tmr_act in
  for i = 0 to Array.length ta - 1 do Array.unsafe_set ta i 0 done;
  t.run st

let run t st ~inputs ~fired =
  let n = Array.length inputs in
  let tags = Array.make n 0 and payloads = Array.make n 0 in
  for i = 0 to n - 1 do
    tags.(i) <- value_tag inputs.(i);
    payloads.(i) <- value_payload inputs.(i)
  done;
  st.in_k <- tags;
  st.in_n <- payloads;
  run_bound t st ~fired;
  st.in_k <- [||];
  st.in_n <- [||]  (* do not retain the scratch encoding *)

let activate t st ~inputs ~fired ~on_output ~on_timer_set ~on_timer_cancel =
  run t st ~inputs ~fired;
  let n_out = t.n_outputs and n_tmr = Array.length t.timer_ids in
  for port = 0 to n_out - 1 do
    if st.out_set.(port) then on_output port st.out_val.(port)
  done;
  for slot = 0 to n_tmr - 1 do
    match st.tmr_act.(slot) with
    | 1 -> on_timer_set slot st.tmr_delay.(slot)
    | 2 -> on_timer_cancel slot
    | _ -> ()
  done
