(** Closure compiler for behaviour programs.

    {!Eval} walks the AST on every activation: each expression node is a
    match-and-dispatch, every variable read is a string-keyed [Hashtbl]
    lookup, and every activation allocates an input copy, a timers
    table, and an outcome record.  That is the right oracle semantics
    but the wrong inner loop — the simulator activates blocks millions
    of times per fuzz or Monte-Carlo sweep.

    [compile] lowers a program once: variables become slots in a flat
    [value array] (state variables first, body-assigned ones after),
    timer indices become compact slots resolved at compile time, and the
    body becomes one [state -> unit] closure with no AST left to
    inspect.  One {!activate} then costs a handful of array reads and
    writes plus the user callbacks.

    Semantics are defined by {!Eval} and preserved exactly, including
    the error messages of {!Eval.Runtime_error} (raised lazily, when the
    offending expression or statement actually executes), last-write-
    wins output ports flushed in ascending port order, and final
    per-timer actions flushed in ascending raw-timer-index order — the
    orders {!Eval.outcome} exposes.  [Sim.Engine]'s compiled kernel is
    property-tested byte-identical to the interpreter on top of this
    module (test/test_kernel.ml). *)

type t
(** Compiled code: immutable and domain-safe, shareable across any
    number of instances and domains.  All per-instance mutability lives
    in {!state}. *)

type state = {
  vars : Ast.value array;
  defined : bool array;
  mutable in_k : int array;
  mutable in_n : int array;
  mutable fired : int;
  out_set : bool array;
  out_val : Ast.value array;
  tmr_act : int array;
  tmr_delay : int array;
}
(** The variable store and activation scratch of one block instance.
    Never share a [state] across engines or domains.

    The type is concrete so that {!run}'s caller can flush the
    activation scratch without going through closures: after [run],
    [out_set.(port)] marks a driven port whose last-written value is
    [out_val.(port)], and [tmr_act.(slot)] is [0] (untouched), [1]
    (set, with delay [tmr_delay.(slot)]) or [2] (cancelled).  Treat
    every field as read-only between activations; [vars], [defined],
    [in_k]/[in_n] (the int-encoded input latch, see {!value_tag}) and
    [fired] are implementation detail of the compiled closures. *)

val value_tag : Ast.value -> int
(** Int encoding of a value for the latch arrays: [0]/[1] for
    [Bool false]/[Bool true], [2] for [Int] (payload kept separately,
    see {!value_payload}).  Two plain [int array] stores replace one
    boxed store — no write barrier on the simulator's delivery path. *)

val value_payload : Ast.value -> int
(** The [Int] payload of a value under {!value_tag} encoding; [0] for
    booleans (the tag alone identifies them). *)

val value_of_code : int -> int -> Ast.value
(** [value_of_code k n] decodes {!value_tag}/{!value_payload} pairs.
    Boolean results are shared static constants; only [Int] allocates. *)

val compile : Ast.program -> n_outputs:int -> t
(** Compile a program.  Results are memoized (keyed structurally on the
    program and [n_outputs]) so the many instances of one catalog
    descriptor across engines share code; the cache is bounded and
    mutex-guarded, safe under [lib/parallel] domains. *)

val n_timers : t -> int
(** Number of distinct timer indices the program references — the size
    of the per-instance generation table the engine needs. *)

val timer_id : t -> int -> int
(** Raw timer index of a timer slot; slots are assigned in ascending
    raw-index order, so slot order and raw order agree. *)

val fresh_state : t -> state
(** A new instance store: state variables at their declared initial
    values, body-only variables undefined (reading one before its first
    assignment raises, as in {!Eval}). *)

val reset_state : t -> state -> unit
(** Reinitialize in place — the brownout semantics of
    [Eval.init], without the allocation. *)

val bind_inputs : state -> tags:int array -> payloads:int array -> unit
(** Install a long-lived int-encoded input latch ({!value_tag} tags
    plus {!value_payload} payloads) into the state, for {!run_bound}.
    The caller keeps ownership and mutates the arrays between
    activations; the binding survives {!reset_state}. *)

val run_bound : t -> state -> fired:int -> unit
(** {!run} against the latch installed by {!bind_inputs}, skipping the
    two latch-pointer writes per activation — the engine's inner loop,
    where the latch never changes identity. *)

val run : t -> state -> inputs:Ast.value array -> fired:int -> unit
(** Run the body once against the latched [inputs], leaving the results
    in the scratch fields of [state] (see {!state}).  The caller owns
    the flush: read [out_set]/[out_val] in ascending port order, then
    [tmr_act]/[tmr_delay] in ascending slot order — the canonical order
    {!activate} applies.  This is the closure-free inner loop of
    [Sim.Engine]'s compiled kernel; {!activate} packages the same flush
    behind callbacks. *)

val activate :
  t ->
  state ->
  inputs:Ast.value array ->
  fired:int ->
  on_output:(int -> Ast.value -> unit) ->
  on_timer_set:(int -> int -> unit) ->
  on_timer_cancel:(int -> unit) ->
  unit
(** Run the body once against the latched [inputs] ([fired] is the
    {e timer slot} that expired, [-1] for a packet activation).  The
    store is updated in place; then [on_output port v] is called for
    each driven port in ascending port order, and one of
    [on_timer_set slot delay] / [on_timer_cancel slot] for each touched
    timer in ascending slot order — exactly the data and order of
    {!Eval.outcome}, without building it.  The [inputs] array is only
    read during the call; it is not retained. *)
