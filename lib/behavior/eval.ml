type env = (string, Ast.value) Hashtbl.t

type timer_action =
  | Timer_set of int
  | Timer_cancelled

type activation = {
  inputs : Ast.value array;
  fired : int option;
}

type outcome = {
  outputs : Ast.value option array;
  timers : (int * timer_action) list;
}

exception Runtime_error of string

let error fmt = Format.kasprintf (fun msg -> raise (Runtime_error msg)) fmt

let init (p : Ast.program) =
  let env = Hashtbl.create 8 in
  List.iter (fun (name, v) -> Hashtbl.replace env name v) p.Ast.state;
  env

let copy env = Hashtbl.copy env

let lookup env name = Hashtbl.find_opt env name

let variables env =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) env []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let as_bool = function
  | Ast.Bool b -> b
  | Ast.Int _ -> error "expected a boolean value"

let as_int = function
  | Ast.Int n -> n
  | Ast.Bool _ -> error "expected an integer value"

let apply_unop op v =
  match op, v with
  | Ast.Not, Ast.Bool b -> Ast.Bool (not b)
  | Ast.Neg, Ast.Int n -> Ast.Int (-n)
  | Ast.Not, Ast.Int _ -> error "! applied to an integer"
  | Ast.Neg, Ast.Bool _ -> error "unary - applied to a boolean"

let apply_binop op v1 v2 =
  match op with
  | Ast.And -> Ast.Bool (as_bool v1 && as_bool v2)
  | Ast.Or -> Ast.Bool (as_bool v1 || as_bool v2)
  | Ast.Xor ->
    (match v1, v2 with
     | Ast.Bool b1, Ast.Bool b2 -> Ast.Bool (Bool.equal b1 b2 |> not)
     | Ast.Int n1, Ast.Int n2 -> Ast.Int (n1 lxor n2)
     | Ast.Bool _, Ast.Int _ | Ast.Int _, Ast.Bool _ ->
       error "^ applied to mixed types")
  | Ast.Add -> Ast.Int (as_int v1 + as_int v2)
  | Ast.Sub -> Ast.Int (as_int v1 - as_int v2)
  | Ast.Mul -> Ast.Int (as_int v1 * as_int v2)
  | Ast.Eq -> Ast.Bool (Ast.equal_value v1 v2)
  | Ast.Ne -> Ast.Bool (not (Ast.equal_value v1 v2))
  | Ast.Lt -> Ast.Bool (as_int v1 < as_int v2)
  | Ast.Le -> Ast.Bool (as_int v1 <= as_int v2)
  | Ast.Gt -> Ast.Bool (as_int v1 > as_int v2)
  | Ast.Ge -> Ast.Bool (as_int v1 >= as_int v2)

let rec eval_expr env act (e : Ast.expr) =
  match e with
  | Const v -> v
  | Var name ->
    (match Hashtbl.find_opt env name with
     | Some v -> v
     | None -> error "unbound variable %s" name)
  | Input i ->
    if i < 0 || i >= Array.length act.inputs then
      error "input port %d out of range (block has %d inputs)"
        i (Array.length act.inputs)
    else act.inputs.(i)
  | Timer_fired t -> Bool (act.fired = Some t)
  | Unop (op, e1) -> apply_unop op (eval_expr env act e1)
  | Binop (op, e1, e2) ->
    apply_binop op (eval_expr env act e1) (eval_expr env act e2)
  | If_expr (c, t, f) ->
    if as_bool (eval_expr env act c)
    then eval_expr env act t
    else eval_expr env act f

let activate (p : Ast.program) ~n_outputs env act =
  let outputs = Array.make n_outputs None in
  let timers = Hashtbl.create 4 in
  let rec exec_stmt (s : Ast.stmt) =
    match s with
    | Assign (name, e) -> Hashtbl.replace env name (eval_expr env act e)
    | Output (i, e) ->
      if i < 0 || i >= n_outputs then
        error "output port %d out of range (block has %d outputs)"
          i n_outputs
      else outputs.(i) <- Some (eval_expr env act e)
    | If (c, then_, else_) ->
      if as_bool (eval_expr env act c)
      then List.iter exec_stmt then_
      else List.iter exec_stmt else_
    | Set_timer (t, e) ->
      let delay = as_int (eval_expr env act e) in
      if delay <= 0 then error "set_timer with non-positive delay %d" delay
      else Hashtbl.replace timers t (Timer_set delay)
    | Cancel_timer t -> Hashtbl.replace timers t Timer_cancelled
    | Nop -> ()
  in
  List.iter exec_stmt p.Ast.body;
  let actions =
    Hashtbl.fold (fun t action acc -> (t, action) :: acc) timers []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  { outputs; timers = actions }
