(** Interpreter for behaviour programs.

    This is the simulator-side "interpreter [that] evaluates the tree in the
    same manner as a non-programmable block" from the paper.  One call to
    {!activate} corresponds to one activation of a block: the arrival of an
    input packet or the expiry of the block's one-shot timer. *)

type env
(** Variable store persisting across activations of one block instance. *)

type timer_action =
  | Timer_set of int  (** arm the one-shot timer for [n] ticks from now *)
  | Timer_cancelled

type activation = {
  inputs : Ast.value array;  (** latched values on the input ports *)
  fired : int option;
      (** [Some t] when the activation was caused by expiry of timer [t] *)
}

type outcome = {
  outputs : Ast.value option array;
      (** per output port: [Some v] if driven during this activation *)
  timers : (int * timer_action) list;
      (** final action recorded for each timer touched, sorted by index *)
}

exception Runtime_error of string
(** Raised on unbound variables, type mismatches, out-of-range ports, or a
    non-positive / non-integer timer delay. *)

val init : Ast.program -> env
(** Fresh store holding exactly the program's state variables. *)

val copy : env -> env
(** An independent clone of the store; activations of the original and
    the copy do not affect each other.  Used by the bounded product-state
    exploration in [Codegen.Verify]. *)

val activate : Ast.program -> n_outputs:int -> env -> activation -> outcome
(** Run the program body once.  The store is updated in place with any
    variable assignments.  Reading an input port beyond
    [Array.length activation.inputs] raises {!Runtime_error}. *)

val lookup : env -> string -> Ast.value option
(** Current value of a variable, for inspection in tests and traces. *)

val variables : env -> (string * Ast.value) list
(** All variables in the store, sorted by name. *)

val eval_expr : env -> activation -> Ast.expr -> Ast.value
(** Evaluate a single expression against a store; exposed for tests. *)
