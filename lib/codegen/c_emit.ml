open Behavior.Ast

let m_programs =
  Obs.Metrics.counter "codegen.c_programs" ~doc:"C firmware programs emitted"
let m_bytes =
  Obs.Metrics.counter "codegen.c_bytes" ~doc:"C source bytes emitted"
let h_emit_ns =
  Obs.Metrics.histogram "codegen.emit_ns" ~doc:"C emission wall time"
let h_program_bytes =
  Obs.Metrics.histogram "codegen.c_bytes_per_program"
    ~doc:"emitted C size per program"

let value = function
  | Bool true -> "1"
  | Bool false -> "0"
  | Int n -> string_of_int n

let unop = function
  | Not -> "!"
  | Neg -> "-"

let binop = function
  | And -> "&&"
  | Or -> "||"
  | Xor -> "^"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec expr = function
  | Const v -> value v
  | Var name -> name
  | Input i -> Printf.sprintf "EB_IN(%d)" i
  | Timer_fired t -> Printf.sprintf "EB_TIMER_FIRED(%d)" t
  | Unop (op, e) -> Printf.sprintf "%s%s" (unop op) (atom e)
  | Binop (op, e1, e2) ->
    Printf.sprintf "%s %s %s" (atom e1) (binop op) (atom e2)
  | If_expr (c, t, f) ->
    Printf.sprintf "(%s ? %s : %s)" (expr c) (expr t) (expr f)

and atom e =
  match e with
  | Const _ | Var _ | Input _ | Timer_fired _ -> expr e
  | Unop _ | Binop _ | If_expr _ -> Printf.sprintf "(%s)" (expr e)

let rec emit_stmt buf indent s =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (pad ^ l ^ "\n")) fmt in
  match s with
  | Assign (name, e) -> line "%s = %s;" name (expr e)
  | Output (i, e) -> line "EB_OUT(%d, %s);" i (expr e)
  | If (c, then_, []) ->
    line "if (%s) {" (expr c);
    List.iter (emit_stmt buf (indent + 2)) then_;
    line "}"
  | If (c, then_, else_) ->
    line "if (%s) {" (expr c);
    List.iter (emit_stmt buf (indent + 2)) then_;
    line "} else {";
    List.iter (emit_stmt buf (indent + 2)) else_;
    line "}"
  | Set_timer (t, e) -> line "EB_SET_TIMER(%d, %s);" t (expr e)
  | Cancel_timer t -> line "EB_CANCEL_TIMER(%d);" t
  | Nop -> line ";"

let c_type_of_value = function
  | Bool _ -> "unsigned char"
  | Int _ -> "int"

let program ?(block_name = "programmable_eblock") ~n_inputs ~n_outputs p =
  Obs.Trace.with_span "codegen.emit_c" ~args:[ ("block", block_name) ]
  @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "/* %s: generated eBlock firmware step function.\n" block_name;
  out " * %d input pin(s), %d output pin(s), %d timer(s).\n"
    n_inputs n_outputs (Behavior.Ast.max_timer_index p + 1);
  out " * Target: Microchip PIC16F628-class programmable eBlock. */\n\n";
  out "#ifndef EB_IN\n";
  out "/* Board-support fallbacks so the file compiles stand-alone. */\n";
  out "static unsigned char eb_inputs[%d];\n" (max 1 n_inputs);
  out "static unsigned char eb_outputs[%d];\n" (max 1 n_outputs);
  out "#define EB_IN(i) (eb_inputs[(i)])\n";
  out "#define EB_OUT(i, v) (eb_outputs[(i)] = (unsigned char)(v))\n";
  out "#define EB_TIMER_FIRED(t) 0\n";
  out "#define EB_SET_TIMER(t, ticks) ((void)(ticks))\n";
  out "#define EB_CANCEL_TIMER(t) ((void)0)\n";
  out "#endif\n\n";
  List.iter
    (fun (name, v) ->
      out "static %s %s = %s;\n" (c_type_of_value v) name (value v))
    p.state;
  if p.state <> [] then out "\n";
  out "void eblock_step(void) {\n";
  List.iter (emit_stmt buf 2) p.body;
  out "}\n";
  Obs.Metrics.incr m_programs;
  Obs.Metrics.add m_bytes (Buffer.length buf);
  Obs.Histogram.observe h_emit_ns
    (Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0));
  Obs.Histogram.observe_int h_program_bytes (Buffer.length buf);
  Buffer.contents buf

let write_file path ?block_name ~n_inputs ~n_outputs p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (program ?block_name ~n_inputs ~n_outputs p))
