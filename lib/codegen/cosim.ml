module Graph = Netlist.Graph

let m_scripts =
  Obs.Metrics.counter "codegen.cosim.scripts"
    ~doc:"differential co-simulation scripts generated"
let m_skipped =
  Obs.Metrics.counter "codegen.cosim.scripts_skipped"
    ~doc:"scripts discarded because the flat design was timing-sensitive"
let m_race_limited =
  Obs.Metrics.counter "codegen.cosim.race_limited_scripts"
    ~doc:"scripts checked under the baseline engine only because the \
          rewrite surfaced a timing race latent in the flat design"
let m_checks =
  Obs.Metrics.counter "codegen.cosim.checks"
    ~doc:"per-perturbation script comparisons that agreed"
let m_shrink_rechecks =
  Obs.Metrics.counter "codegen.cosim.shrink_rechecks"
    ~doc:"candidate scripts re-simulated while shrinking a counterexample"
let h_counterexample_steps =
  Obs.Metrics.histogram "codegen.cosim.counterexample_steps"
    ~doc:"shrunk counterexample script lengths"

type config = {
  scripts : int;
  steps : int;
  spacing : int;
  seed : int;
  perturbations : int;
}

let default_config =
  { scripts = 3; steps = 40; spacing = 20; seed = 2005; perturbations = 4 }

type failure = {
  seed : int;
  perturbation : Sim.Equiv.perturbation;
  script : Sim.Stimulus.script;
  original_steps : int;
  mismatch : Sim.Equiv.mismatch;
}

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>script (seed %d, engine %s, %d step(s), shrunk from %d):@,\
     %a@,%a@]"
    f.seed f.perturbation.Sim.Equiv.p_label
    (List.length f.script) f.original_steps
    Sim.Stimulus.pp f.script Sim.Equiv.pp_mismatch f.mismatch

type outcome =
  | Agreed of { scripts : int; checks : int }
  | Diverged of failure
  | Inconclusive of string

(* --- shrinking ------------------------------------------------------- *)

(* [without start len xs] — xs minus the slice [start, start+len). *)
let without start len xs =
  List.filteri (fun i _ -> i < start || i >= start + len) xs

let drop_pass ~still_fails script =
  (* delta-debugging flavour: try to drop chunks, halving the chunk size;
     restart the position scan on the (shorter) survivor after a hit *)
  let rec at_size size script =
    if size < 1 then script
    else begin
      let rec scan start script =
        if start >= List.length script then script
        else begin
          let candidate = without start size script in
          if candidate <> [] && still_fails candidate then scan start candidate
          else scan (start + size) script
        end
      in
      at_size (size / 2) (scan 0 script)
    end
  in
  at_size (List.length script / 2) script

let lower_pass ~still_fails script =
  (* pull each step's time down to just after its predecessor when the
     tighter script still fails; scripts stay time-sorted by construction *)
  let rec go prev_time acc = function
    | [] -> List.rev acc
    | (step : Sim.Stimulus.step) :: rest ->
      let step =
        if step.Sim.Stimulus.time > prev_time + 1 then begin
          let tightened = { step with Sim.Stimulus.time = prev_time + 1 } in
          let candidate = List.rev_append acc (tightened :: rest) in
          if still_fails candidate then tightened else step
        end
        else step
      in
      go step.Sim.Stimulus.time (step :: acc) rest
  in
  go 0 [] script

let shrink ?seed ~still_fails script =
  let journal = Obs.Journal.enabled () in
  let emit_round round script' =
    match seed with
    | Some seed when journal ->
      Obs.Journal.emit
        (Obs.Journal.Cosim_shrink
           { seed; round; steps = List.length script' })
    | Some _ | None -> ()
  in
  let rec fixpoint round script =
    if round > 8 then script
    else begin
      let script' = lower_pass ~still_fails (drop_pass ~still_fails script) in
      emit_round round script';
      if script' = script then script else fixpoint (round + 1) script'
    end
  in
  fixpoint 1 script

(* --- the differential loop ------------------------------------------- *)

let script_seed (config : config) i =
  (* one independent stream per script, stable under config.scripts *)
  config.seed + (7919 * i)

let run ?(config = default_config) ~reference candidate =
  Obs.Trace.with_span "codegen.cosim" @@ fun () ->
  let sensors = Graph.sensors reference in
  if sensors = [] then Inconclusive "design has no sensors to drive"
  else begin
    let perturbs = Sim.Equiv.perturbations config.perturbations in
    let engines = Sim.Equiv.baseline :: perturbs in
    let exception Diverged_on of failure in
    try
      let usable = ref 0 and checks = ref 0 in
      for i = 0 to config.scripts - 1 do
        let seed = script_seed config i in
        let script =
          Sim.Stimulus.random ~rng:(Prng.create seed) ~sensors
            ~steps:config.steps ~spacing:config.spacing
        in
        Obs.Metrics.incr m_scripts;
        (* A script the flat design is timing-sensitive on proves nothing
           about the merge: the reference behaviour itself is undefined.
           [sensitive_under] keeps the skip-set aligned with the engine
           pool ([timing_sensitive] samples its own fixed perturbations,
           which need not include every pool entry, e.g. lifo+jitter). *)
        if
          Sim.Equiv.timing_sensitive reference script
          || Sim.Equiv.sensitive_under reference perturbs script
        then Obs.Metrics.incr m_skipped
        else begin
          incr usable;
          (* Blame assignment before the differential comparison: when the
             candidate's own settled outputs vary across the pool while
             the flat design's do not, the rewrite's different event
             sequence is resolving a race (typically a timer expiry tied
             with a packet delivery) that the flat schedule happened to
             mask.  The design leaves that ordering undefined, so a
             perturbed comparison would report noise, not a merge bug —
             check such scripts under the baseline engine only.  Nothing
             is lost: with a pool-insensitive reference and an agreeing
             baseline, any perturbed divergence implies exactly this
             candidate-side sensitivity. *)
          let engines =
            if Sim.Equiv.sensitive_under candidate perturbs script then begin
              Obs.Metrics.incr m_race_limited;
              [ Sim.Equiv.baseline ]
            end
            else engines
          in
          List.iter
            (fun perturbation ->
              match Sim.Equiv.check ~perturbation ~reference ~candidate script with
              | Ok () ->
                incr checks;
                Obs.Metrics.incr m_checks
              | Error _ ->
                let still_fails s =
                  Obs.Metrics.incr m_shrink_rechecks;
                  s <> []
                  && Result.is_error
                       (Sim.Equiv.check ~perturbation ~reference ~candidate s)
                in
                let script = shrink ~seed ~still_fails script in
                let mismatch =
                  match
                    Sim.Equiv.check ~perturbation ~reference ~candidate script
                  with
                  | Error m -> m
                  | Ok () -> assert false  (* shrink keeps scripts failing *)
                in
                Obs.Histogram.observe_int h_counterexample_steps
                  (List.length script);
                raise
                  (Diverged_on
                     {
                       seed;
                       perturbation;
                       script;
                       original_steps = config.steps;
                       mismatch;
                     }))
            engines
        end
      done;
      if !usable = 0 then
        Inconclusive
          "every stimulus script was timing-sensitive on the flat design"
      else Agreed { scripts = !usable; checks = !checks }
    with Diverged_on f -> Diverged f
  end
