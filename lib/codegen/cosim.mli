(** Randomized differential co-simulation — Verify's tier 3.

    For partitions outside the reach of exact proof (members with timers,
    too many input pins, or a product state space past the exploration
    budget), equivalence evidence comes from driving the flat network and
    a rewritten network through {!Sim.Engine} with shared random stimulus
    scripts, replayed under a family of engine perturbations (same-time
    event orders and per-connection latency jitter — see
    {!Sim.Equiv.perturbation}).  Scripts on which the {e flat} design is
    itself timing-sensitive are excluded: such designs have no
    well-defined settled behaviour to preserve (physical eBlocks resolve
    those races nondeterministically), so a differential comparison would
    report noise, not merge bugs.

    The same logic is applied per script on the candidate side.  A design
    can carry a race (typically a timer expiry tied with a packet
    delivery) that the flat network's event schedule happens to resolve
    consistently while the rewritten network's different schedule exposes
    it — the flat-side sensitivity sample then passes even though the
    settled behaviour under the race is undefined.  Such scripts are
    still checked for functional equivalence under the baseline engine,
    but the perturbed comparisons are dropped (counted by
    [codegen.cosim.race_limited_scripts]); with a pool-insensitive
    reference and an agreeing baseline, a perturbed divergence could only
    ever restate that candidate-side sensitivity.

    On a mismatch the failing script is {e shrunk} — steps dropped, then
    step times pulled down, to a local minimum that still fails — before
    it is reported, so a counterexample is a short, replayable scenario
    rather than a 40-step random walk. *)

module Graph = Netlist.Graph

type config = {
  scripts : int;  (** random stimulus scripts to try *)
  steps : int;  (** sensor flips per script *)
  spacing : int;  (** max ticks between flips (clamped to >= 1) *)
  seed : int;  (** base seed; script [i] derives its own stream from it *)
  perturbations : int;
      (** engine perturbations replayed per script, drawn from
          {!Sim.Equiv.perturbations} (the baseline engine is always
          additionally checked) *)
}

val default_config : config
(** 3 scripts of 40 flips, spacing 20, 4 perturbations, seed 2005. *)

type failure = {
  seed : int;  (** seed of the script that failed *)
  perturbation : Sim.Equiv.perturbation;
      (** engine configuration under which the divergence showed *)
  script : Sim.Stimulus.script;  (** the shrunk failing script *)
  original_steps : int;  (** length of the script before shrinking *)
  mismatch : Sim.Equiv.mismatch;  (** first diverging settled output *)
}

val pp_failure : Format.formatter -> failure -> unit

type outcome =
  | Agreed of { scripts : int; checks : int }
      (** every usable script agreed on every settled output under every
          perturbation; [scripts] counts usable (not timing-sensitive)
          scripts, [checks] the per-perturbation script comparisons *)
  | Diverged of failure
  | Inconclusive of string
      (** no evidence either way, with the reason (no sensors, or every
          script was timing-sensitive on the flat design) *)

val shrink :
  ?seed:int ->
  still_fails:(Sim.Stimulus.script -> bool) ->
  Sim.Stimulus.script ->
  Sim.Stimulus.script
(** Greedy counterexample minimization: repeatedly drop step chunks
    (largest first), then lower each step's time toward its
    predecessor's, keeping any change under which [still_fails] holds;
    iterates to a fixpoint.  [still_fails] must hold for the input
    script; the empty script is never proposed.  When [seed] names the
    originating script's stream, each fixpoint round is journaled as an
    [Obs.Journal.Cosim_shrink] event. *)

val run : ?config:config -> reference:Graph.t -> Graph.t -> outcome
(** [run ~reference candidate] differentially co-simulates the two
    networks ([candidate] is the rewritten one).  Both must expose the
    same sensor and primary-output ids (guaranteed for rewrites produced
    by {!Replace}); raises [Invalid_argument] otherwise.  Deterministic:
    equal inputs and config give an equal outcome. *)
