module Graph = Netlist.Graph
module Node_id = Netlist.Node_id
module Cut = Netlist.Cut

let m_plans = Obs.Metrics.counter "codegen.plans_built" ~doc:"merge plans built"
let m_merged =
  Obs.Metrics.counter "codegen.merged_nodes"
    ~doc:"pre-defined blocks folded into programmable blocks"

type t = {
  members : Node_id.t list;
  program : Behavior.Ast.program;
  input_pins : Graph.endpoint array;
  output_pins : (Graph.endpoint * Graph.endpoint) array;
  output_init : Behavior.Ast.value array;
}

exception Plan_error of string

let error fmt = Format.kasprintf (fun msg -> raise (Plan_error msg)) fmt

let level_order g set =
  let levels = Graph.levels g in
  let level id =
    match Node_id.Map.find_opt id levels with Some l -> l | None -> 0
  in
  Node_id.Set.elements set
  |> List.sort (fun a b ->
         match Int.compare (level a) (level b) with
         | 0 -> Node_id.compare a b
         | c -> c)

let wire_name id port = Printf.sprintf "w%d_%d" id port

(* Precomputed endpoint -> index table: [build] looks an endpoint up once
   per member input port, so the former list scan made plan construction
   quadratic in the cut size on input-heavy partitions. *)
let endpoint_table endpoints =
  let table = Hashtbl.create (List.length endpoints * 2) in
  List.iteri
    (fun i (ep : Graph.endpoint) ->
      if not (Hashtbl.mem table ep) then Hashtbl.add table ep i)
    endpoints;
  table

let index_of_endpoint what table (ep : Graph.endpoint) =
  match Hashtbl.find_opt table ep with
  | Some i -> i
  | None ->
    error "endpoint %d.%d not found among %s" ep.Graph.node ep.Graph.port what

let build g set =
  Obs.Trace.with_span "codegen.plan_build"
    ~args:[ ("members", string_of_int (Node_id.Set.cardinal set)) ]
  @@ fun () ->
  if Node_id.Set.is_empty set then error "empty partition";
  Node_id.Set.iter
    (fun id ->
      if not (Graph.mem g id) then error "node %d is not in the network" id;
      if not (Eblock.Kind.partitionable (Graph.kind g id)) then
        error "node %d is not a partitionable compute block" id)
    set;
  let members = level_order g set in
  let in_edges = Cut.in_edges g set in
  let out_edges = Cut.out_edges g set in
  let in_edge_dsts = endpoint_table (List.map (fun e -> e.Graph.dst) in_edges) in
  let out_edges_indexed = List.mapi (fun j e -> (j, e)) out_edges in
  let member_of_id id =
    let d = Graph.descriptor g id in
    let open Eblock.Descriptor in
    let inputs =
      Array.init d.n_inputs (fun port ->
          match Graph.driver g id port with
          | None ->
            error "input port %d.%d is undriven; cannot merge" id port
          | Some src ->
            if Node_id.Set.mem src.Graph.node set then
              Behavior.Merge.Wire (wire_name src.Graph.node src.Graph.port)
            else
              (* one external pin per crossing connection: the pin for
                 this port is the in-edge ending at (id, port) *)
              Behavior.Merge.Ext
                (index_of_endpoint "the partition's input edges" in_edge_dsts
                   { Graph.node = id; port }))
    in
    let output_wires =
      Array.init d.n_outputs (fun port -> wire_name id port)
    in
    let output_exts =
      Array.init d.n_outputs (fun port ->
          List.filter_map
            (fun (j, e) ->
              if e.Graph.src = { Graph.node = id; port } then Some j
              else None)
            out_edges_indexed)
    in
    let output_init = Array.copy d.output_init in
    {
      Behavior.Merge.label = Printf.sprintf "b%d_" id;
      program = d.behavior;
      inputs;
      output_wires;
      output_exts;
      output_init;
    }
  in
  let merge_members = List.map member_of_id members in
  let program = Behavior.Merge.merge merge_members in
  Obs.Metrics.incr m_plans;
  Obs.Metrics.add m_merged (List.length members);
  let output_init =
    Array.of_list
      (List.map
         (fun e ->
           let src = e.Graph.src in
           let d = Graph.descriptor g src.Graph.node in
           d.Eblock.Descriptor.output_init.(src.Graph.port))
         out_edges)
  in
  {
    members;
    program;
    input_pins = Array.of_list (List.map (fun e -> e.Graph.src) in_edges);
    output_pins =
      Array.of_list (List.map (fun e -> (e.Graph.src, e.Graph.dst)) out_edges);
    output_init;
  }

let descriptor ?label t =
  let n_inputs = Array.length t.input_pins in
  let n_outputs = Array.length t.output_pins in
  let name =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "prog%dx%d" n_inputs n_outputs
  in
  Eblock.Catalog.programmable ~n_inputs ~n_outputs ~name
    ~output_init:t.output_init t.program
