module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let m_replaced =
  Obs.Metrics.counter "codegen.partitions_replaced"
    ~doc:"partitions rewritten into programmable blocks"

type t = {
  network : Graph.t;
  programmable_ids : Node_id.t list;
}

exception Replace_error of string

let error fmt = Format.kasprintf (fun msg -> raise (Replace_error msg)) fmt

let replace_one g index members =
  let plan =
    try Plan.build g members with
    | Plan.Plan_error msg -> error "partition %d: %s" index msg
  in
  let descriptor = Plan.descriptor plan in
  let g = Node_id.Set.fold (fun id g -> Graph.remove_node g id) members g in
  let g, prog_id =
    Graph.add ~label:(Printf.sprintf "P%d" (index + 1)) g descriptor
  in
  let g =
    Array.to_list plan.Plan.input_pins
    |> List.mapi (fun pin src -> (pin, src))
    |> List.fold_left
         (fun g (pin, src) ->
           Graph.connect g
             ~src:(src.Graph.node, src.Graph.port)
             ~dst:(prog_id, pin))
         g
  in
  let g =
    Array.to_list plan.Plan.output_pins
    |> List.mapi (fun pin (_, dst) -> (pin, dst))
    |> List.fold_left
         (fun g (pin, dst) ->
           Graph.connect g
             ~src:(prog_id, pin)
             ~dst:(dst.Graph.node, dst.Graph.port))
         g
  in
  Obs.Metrics.incr m_replaced;
  (g, prog_id)

let apply g solution =
  Obs.Trace.with_span "codegen.replace"
    ~args:
      [ ("partitions",
         string_of_int (List.length solution.Core.Solution.partitions)) ]
  @@ fun () ->
  let rec rewrite g seen prog_ids index = function
    | [] -> { network = g; programmable_ids = List.rev prog_ids }
    | p :: rest ->
      let members = p.Core.Partition.members in
      let overlap = Node_id.Set.inter seen members in
      if not (Node_id.Set.is_empty overlap) then
        error "partition %d overlaps an earlier partition on %a" index
          Node_id.pp_set overlap;
      let g, prog_id = replace_one g index members in
      rewrite g
        (Node_id.Set.union seen members)
        (prog_id :: prog_ids) (index + 1) rest
  in
  rewrite g Node_id.Set.empty [] 0 solution.Core.Solution.partitions

let synthesize ?config g =
  let result = Core.Paredown.run ?config g in
  (apply g result.Core.Paredown.solution, result)
