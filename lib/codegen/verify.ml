module Graph = Netlist.Graph
module Node_id = Netlist.Node_id
module Ast = Behavior.Ast
module Eval = Behavior.Eval

let m_proven =
  Obs.Metrics.counter "codegen.verify.proven"
    ~doc:"partitions proven equivalent by exhaustive enumeration"
let m_bounded =
  Obs.Metrics.counter "codegen.verify.bounded"
    ~doc:"partitions equivalent over their explored product state space"
let m_cosim_passed =
  Obs.Metrics.counter "codegen.verify.cosim_passed"
    ~doc:"partitions with agreeing differential co-simulation"
let m_failed =
  Obs.Metrics.counter "codegen.verify.failed" ~doc:"partitions with a verdict of failed"
let m_skipped =
  Obs.Metrics.counter "codegen.verify.skipped"
    ~doc:"partitions with no equivalence evidence either way"
let h_input_bits =
  Obs.Metrics.histogram "codegen.verify.input_bits"
    ~doc:"external input pins per checked partition"
let h_product_states =
  Obs.Metrics.histogram "codegen.verify.product_states"
    ~doc:"product states visited by bounded sequential proofs"

type counterexample = {
  trail : bool array list;
  pin : int;
  merged : Ast.value;
  composed : Ast.value;
}

type failure =
  | Mismatch of counterexample
  | Cosim_mismatch of Cosim.failure

type status =
  | Proven
  | Bounded_equivalent of { states : int; depth : int }
  | Cosim_passed of { scripts : int; checks : int }
  | Failed of failure
  | Skipped of string

type config = {
  max_input_bits : int;
  max_states : int;
  max_depth : int;
  max_transitions : int;
  cosim : Cosim.config;
}

let default_config =
  {
    max_input_bits = 10;
    max_states = 4096;
    max_depth = 64;
    max_transitions = 100_000;
    cosim = Cosim.default_config;
  }

let pp_assignment ppf a =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (List.map string_of_bool (Array.to_list a)))

let pp_counterexample ppf cx =
  Format.fprintf ppf
    "after input sequence %a: merged drives pin %d to %a but the network \
     computes %a"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_assignment)
    cx.trail cx.pin Ast.pp_value cx.merged Ast.pp_value cx.composed

let pp_status ppf = function
  | Proven -> Format.pp_print_string ppf "equivalent (proven exhaustively)"
  | Bounded_equivalent { states; depth } ->
    Format.fprintf ppf
      "equivalent over the full product state space (%d state(s), input \
       sequences up to length %d)"
      states depth
  | Cosim_passed { scripts; checks } ->
    Format.fprintf ppf
      "differential co-simulation agreed (%d script(s), %d check(s))" scripts
      checks
  | Failed (Mismatch cx) -> Format.fprintf ppf "MISMATCH: %a" pp_counterexample cx
  | Failed (Cosim_mismatch f) ->
    Format.fprintf ppf "COSIM MISMATCH: %a" Cosim.pp_failure f
  | Skipped reason -> Format.fprintf ppf "skipped: %s" reason

let is_combinational (d : Eblock.Descriptor.t) =
  d.behavior.Ast.state = [] && not (Ast.uses_timer d.behavior)

(* --- lockstep machines ------------------------------------------------ *)

(* Both sides are activated once per external input assignment:
   the merged program directly, the members in level order over the
   subgraph.  Outputs are latched (undriven means "keep the previous
   value"), matching both the engine's packet semantics and the wire
   initialisation Behavior.Merge performs from [output_init]. *)

type member_info = {
  mi_id : Node_id.t;
  mi_desc : Eblock.Descriptor.t;
}

type composed = {
  cm_envs : Eval.env array;  (* one store per member, plan order *)
  cm_ports : (Graph.endpoint, Ast.value) Hashtbl.t;
}

let init_composed infos =
  let ports = Hashtbl.create 32 in
  Array.iter
    (fun { mi_id; mi_desc } ->
      (* every member output starts at its declared power-on value — an
         output nobody has driven yet must read as [output_init], not as
         an arbitrary [false] *)
      Array.iteri
        (fun port v -> Hashtbl.replace ports { Graph.node = mi_id; port } v)
        mi_desc.Eblock.Descriptor.output_init)
    infos;
  {
    cm_envs =
      Array.map (fun i -> Eval.init i.mi_desc.Eblock.Descriptor.behavior) infos;
    cm_ports = ports;
  }

let copy_composed c =
  { cm_envs = Array.map Eval.copy c.cm_envs; cm_ports = Hashtbl.copy c.cm_ports }

let step_composed g member_set ext_of_dst infos c assignment =
  Array.iteri
    (fun i { mi_id = id; mi_desc = d } ->
      let open Eblock.Descriptor in
      let inputs =
        Array.init d.n_inputs (fun port ->
            match Graph.driver g id port with
            | Some src when Node_id.Set.mem src.Graph.node member_set ->
              (match Hashtbl.find_opt c.cm_ports src with
               | Some v -> v
               | None -> assert false (* pre-initialised above *))
            | Some _ | None ->
              (* crossing connection: fed by an external pin.  Plan.build
                 already rejected undriven ports, so the lookup succeeds. *)
              (match Hashtbl.find_opt ext_of_dst { Graph.node = id; port } with
               | Some pin -> Ast.Bool assignment.(pin)
               | None -> assert false))
      in
      let outcome =
        Eval.activate d.behavior ~n_outputs:d.n_outputs c.cm_envs.(i)
          { Eval.inputs; fired = None }
      in
      Array.iteri
        (fun port slot ->
          match slot with
          | Some v -> Hashtbl.replace c.cm_ports { Graph.node = id; port } v
          | None -> () (* latched: keep the previous value *))
        outcome.Eval.outputs)
    infos

type merged = {
  mg_env : Eval.env;
  mg_latch : Ast.value array;
}

let init_merged (plan : Plan.t) =
  {
    mg_env = Eval.init plan.Plan.program;
    mg_latch = Array.copy plan.Plan.output_init;
  }

let copy_merged m = { mg_env = Eval.copy m.mg_env; mg_latch = Array.copy m.mg_latch }

let step_merged (plan : Plan.t) m assignment =
  let inputs = Array.map (fun b -> Ast.Bool b) assignment in
  let outcome =
    Eval.activate plan.Plan.program
      ~n_outputs:(Array.length plan.Plan.output_pins)
      m.mg_env
      { Eval.inputs; fired = None }
  in
  Array.iteri
    (fun pin slot ->
      match slot with Some v -> m.mg_latch.(pin) <- v | None -> ())
    outcome.Eval.outputs

let first_divergence (plan : Plan.t) c m =
  let n = Array.length plan.Plan.output_pins in
  let rec go pin =
    if pin >= n then None
    else begin
      let internal_src, _ = plan.Plan.output_pins.(pin) in
      let composed_value =
        match Hashtbl.find_opt c.cm_ports internal_src with
        | Some v -> v
        | None -> assert false
      in
      let merged_value = m.mg_latch.(pin) in
      if Ast.equal_value merged_value composed_value then go (pin + 1)
      else Some (pin, merged_value, composed_value)
    end
  in
  go 0

let assignment_of_index n index =
  Array.init n (fun bit -> (index lsr bit) land 1 = 1)

let ext_table g members =
  let table = Hashtbl.create 16 in
  List.iteri
    (fun pin (e : Graph.edge) -> Hashtbl.replace table e.Graph.dst pin)
    (Netlist.Cut.in_edges g members);
  table

(* --- tier 1: exhaustive combinational proof --------------------------- *)

let enumerate g member_set ext_of_dst infos (plan : Plan.t) =
  let n_inputs = Array.length plan.Plan.input_pins in
  let rec go index =
    if index >= 1 lsl n_inputs then Proven
    else begin
      let assignment = assignment_of_index n_inputs index in
      let c = init_composed infos in
      let m = init_merged plan in
      step_composed g member_set ext_of_dst infos c assignment;
      step_merged plan m assignment;
      match first_divergence plan c m with
      | None -> go (index + 1)
      | Some (pin, merged, composed) ->
        Failed (Mismatch { trail = [ assignment ]; pin; merged; composed })
    end
  in
  go 0

(* --- tier 2: bounded sequential product exploration ------------------- *)

let port_order infos =
  Array.to_list infos
  |> List.concat_map (fun { mi_id; mi_desc } ->
         List.init mi_desc.Eblock.Descriptor.n_outputs (fun port ->
             { Graph.node = mi_id; port }))

let state_key ports m c =
  let buf = Buffer.create 128 in
  let add_value v =
    (match (v : Ast.value) with
     | Bool true -> Buffer.add_char buf 't'
     | Bool false -> Buffer.add_char buf 'f'
     | Int n ->
       Buffer.add_char buf 'i';
       Buffer.add_string buf (string_of_int n));
    Buffer.add_char buf ';'
  in
  let add_env env =
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf name;
        Buffer.add_char buf '=';
        add_value v)
      (Eval.variables env)
  in
  add_env m.mg_env;
  Buffer.add_char buf '|';
  Array.iter add_value m.mg_latch;
  Array.iter
    (fun env ->
      Buffer.add_char buf '|';
      add_env env)
    c.cm_envs;
  Buffer.add_char buf '|';
  List.iter
    (fun ep ->
      match Hashtbl.find_opt c.cm_ports ep with
      | Some v -> add_value v
      | None -> assert false)
    ports;
  Buffer.contents buf

type explore_result =
  | Closed of { states : int; depth : int }
  | Diverges of counterexample
  | Exhausted

let explore config g member_set ext_of_dst infos (plan : Plan.t) =
  let n_inputs = Array.length plan.Plan.input_pins in
  let n_assignments = 1 lsl n_inputs in
  let ports = port_order infos in
  let visited = Hashtbl.create 256 in
  let queue = Queue.create () in
  let m0 = init_merged plan and c0 = init_composed infos in
  Hashtbl.replace visited (state_key ports m0 c0) ();
  Queue.add (m0, c0, [], 0) queue;
  let transitions = ref 0 in
  let max_depth_seen = ref 0 in
  let exception Stop of explore_result in
  try
    (* breadth-first, so the first divergence found has a minimal-length
       input sequence; assignments are tried in index order for
       determinism *)
    while not (Queue.is_empty queue) do
      let m, c, trail, depth = Queue.pop queue in
      for index = 0 to n_assignments - 1 do
        incr transitions;
        if
          !transitions > config.max_transitions
          || Hashtbl.length visited > config.max_states
        then raise (Stop Exhausted);
        let assignment = assignment_of_index n_inputs index in
        let m' = copy_merged m and c' = copy_composed c in
        step_merged plan m' assignment;
        step_composed g member_set ext_of_dst infos c' assignment;
        (match first_divergence plan c' m' with
         | Some (pin, merged, composed) ->
           raise
             (Stop
                (Diverges
                   {
                     trail = List.rev (assignment :: trail);
                     pin;
                     merged;
                     composed;
                   }))
         | None -> ());
        let key = state_key ports m' c' in
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.replace visited key ();
          let depth' = depth + 1 in
          if depth' > !max_depth_seen then max_depth_seen := depth';
          if depth' < config.max_depth then
            Queue.add (m', c', assignment :: trail, depth') queue
          else
            (* a fresh state at the depth horizon: closure not shown *)
            raise (Stop Exhausted)
        end
      done
    done;
    Closed { states = Hashtbl.length visited; depth = !max_depth_seen }
  with Stop r -> r

(* --- tier 3: randomized differential co-simulation -------------------- *)

let cosim_tier config g members (plan : Plan.t) =
  let n_in = Array.length plan.Plan.input_pins in
  let n_out = Array.length plan.Plan.output_pins in
  let shape = Core.Shape.make ~inputs:(max 1 n_in) ~outputs:(max 1 n_out) () in
  let solution =
    { Core.Solution.partitions = [ Core.Partition.make ~members ~shape ] }
  in
  match Replace.apply g solution with
  | exception Replace.Replace_error msg ->
    Skipped
      (Printf.sprintf "could not rewrite the partition for co-simulation: %s"
         msg)
  | { Replace.network = candidate; _ } ->
    (match Cosim.run ~config:config.cosim ~reference:g candidate with
     | Cosim.Agreed { scripts; checks } -> Cosim_passed { scripts; checks }
     | Cosim.Diverged f -> Failed (Cosim_mismatch f)
     | Cosim.Inconclusive reason -> Skipped reason)

(* --- dispatch --------------------------------------------------------- *)

let tier_label = function
  | Proven -> "proven"
  | Bounded_equivalent _ -> "bounded"
  | Cosim_passed _ -> "cosim"
  | Failed _ -> "failed"
  | Skipped _ -> "skipped"

let record ~members status =
  (match status with
   | Proven -> Obs.Metrics.incr m_proven
   | Bounded_equivalent { states; _ } ->
     Obs.Metrics.incr m_bounded;
     Obs.Histogram.observe_int h_product_states states
   | Cosim_passed _ -> Obs.Metrics.incr m_cosim_passed
   | Failed _ -> Obs.Metrics.incr m_failed
   | Skipped _ -> Obs.Metrics.incr m_skipped);
  if Obs.Journal.enabled () then
    Obs.Journal.emit
      (Obs.Journal.Verify_tier
         {
           members = Node_id.Set.elements members;
           tier = tier_label status;
           detail = Format.asprintf "%a" pp_status status;
         });
  (match status with
   | Failed _ ->
     Obs.Journal.note_failure
       (Format.asprintf "verification failed: %a" pp_status status)
   | _ -> ());
  status

let check_partition ?(config = default_config) g members =
  Obs.Trace.with_span "codegen.verify"
    ~args:[ ("members", string_of_int (Node_id.Set.cardinal members)) ]
  @@ fun () ->
  let plan = Plan.build g members in
  let infos =
    Array.of_list
      (List.map
         (fun id -> { mi_id = id; mi_desc = Graph.descriptor g id })
         plan.Plan.members)
  in
  let n_inputs = Array.length plan.Plan.input_pins in
  Obs.Histogram.observe_int h_input_bits n_inputs;
  let uses_timer =
    Array.exists
      (fun i -> Ast.uses_timer i.mi_desc.Eblock.Descriptor.behavior)
      infos
  in
  record ~members
  @@
  if uses_timer then
    (* timer expiries are engine events, not input-driven transitions:
       the lockstep machines cannot model them, so go straight to
       differential co-simulation *)
    cosim_tier config g members plan
  else if n_inputs > config.max_input_bits then
    (* 2^n_inputs assignments per product state would blow the budget
       (and [1 lsl n] overflows for large n); fall back to sampling *)
    cosim_tier config g members plan
  else begin
    let ext_of_dst = ext_table g members in
    let stateless =
      Array.for_all (fun i -> is_combinational i.mi_desc) infos
    in
    if stateless then enumerate g members ext_of_dst infos plan
    else
      match explore config g members ext_of_dst infos plan with
      | Closed { states; depth } -> Bounded_equivalent { states; depth }
      | Diverges cx -> Failed (Mismatch cx)
      | Exhausted -> cosim_tier config g members plan
  end

(* --- whole-solution report -------------------------------------------- *)

type report = { results : (Core.Partition.t * status) list }

let check_solution ?(config = default_config) g solution =
  {
    results =
      List.map
        (fun (p : Core.Partition.t) ->
          (p, check_partition ~config g p.Core.Partition.members))
        solution.Core.Solution.partitions;
  }

let ok report =
  List.for_all
    (fun (_, s) -> match s with Failed _ -> false | _ -> true)
    report.results

type tally = {
  proven : int;
  bounded : int;
  cosim_passed : int;
  failed : int;
  skipped : int;
}

let tally report =
  List.fold_left
    (fun t (_, s) ->
      match s with
      | Proven -> { t with proven = t.proven + 1 }
      | Bounded_equivalent _ -> { t with bounded = t.bounded + 1 }
      | Cosim_passed _ -> { t with cosim_passed = t.cosim_passed + 1 }
      | Failed _ -> { t with failed = t.failed + 1 }
      | Skipped _ -> { t with skipped = t.skipped + 1 })
    { proven = 0; bounded = 0; cosim_passed = 0; failed = 0; skipped = 0 }
    report.results

let summary report =
  let t = tally report in
  Printf.sprintf
    "%d proven, %d bounded, %d cosim-passed, %d failed, %d skipped" t.proven
    t.bounded t.cosim_passed t.failed t.skipped

let pp_report ppf report =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i ((p : Core.Partition.t), s) ->
      Format.fprintf ppf "partition %d {%s}: %a@," i
        (String.concat ", "
           (List.map string_of_int (Node_id.Set.elements p.Core.Partition.members)))
        pp_status s)
    report.results;
  Format.fprintf ppf "%s@]" (summary report)
