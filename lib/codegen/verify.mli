(** Verify v2: equivalence evidence for every partition of a solution.

    A merged program must be observationally equivalent to the member
    blocks it replaces.  Depending on the partition, three tiers of
    evidence are available, tried strongest-first:

    {ol
    {- {b Exhaustive proof} — all members combinational (stateless,
       timer-free): every boolean assignment of the external input pins
       is enumerated and the merged program compared against the member
       composition evaluated directly on the subgraph.  A complete
       proof; the pin count is bounded by the block shape, so the
       enumeration is tiny.}
    {- {b Bounded sequential proof} — members stateful but timer-free:
       the product of the merged machine and the composed member
       machines is explored breadth-first over input sequences until the
       reachable product state space closes (or a budget is exhausted).
       Catalogue sequential behaviours are activation-idempotent, so
       input-driven lockstep activation is a faithful model.  On
       closure the verdict is {!Bounded_equivalent}; a divergence yields
       a {e minimal-length} input-sequence counterexample (BFS order).}
    {- {b Differential co-simulation} — members with timers, too many
       input pins, or a product space past the budget: the flat network
       and the partition-rewritten network ({!Replace}) are driven
       through {!Sim.Engine} with shared random stimulus under a family
       of engine perturbations; see {!Cosim}.  Statistical evidence,
       not proof — but every mismatch comes with a shrunk, replayable
       script.}}

    Unlike the previous verifier, nothing is skipped silently: every
    partition gets an explicit {!status}, and {!check_solution} returns
    the full per-partition breakdown. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type counterexample = {
  trail : bool array list;
      (** input-pin assignments applied in order from power-on; the last
          one exposes the divergence.  Tier 1 trails have length 1. *)
  pin : int;  (** diverging output pin of the plan *)
  merged : Behavior.Ast.value;
  composed : Behavior.Ast.value;
}

type failure =
  | Mismatch of counterexample  (** exact, from tier 1 or 2 *)
  | Cosim_mismatch of Cosim.failure  (** sampled, from tier 3 *)

type status =
  | Proven  (** tier 1: all input assignments agree *)
  | Bounded_equivalent of { states : int; depth : int }
      (** tier 2: the reachable product state space closed after
          [states] states, reached by input sequences of length at most
          [depth], with no divergence *)
  | Cosim_passed of { scripts : int; checks : int }
      (** tier 3: every usable random script agreed under every engine
          perturbation *)
  | Failed of failure
  | Skipped of string
      (** no evidence either way — the reason says why (e.g. every
          stimulus script was timing-sensitive on the flat design) *)

val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_status : Format.formatter -> status -> unit

type config = {
  max_input_bits : int;
      (** widest pin count enumerated exactly; beyond it (or at 63+,
          where [1 lsl n] would overflow) tiers 1–2 are skipped in
          favour of co-simulation *)
  max_states : int;  (** tier-2 product-state budget *)
  max_depth : int;  (** tier-2 input-sequence depth budget *)
  max_transitions : int;  (** tier-2 total transition budget *)
  cosim : Cosim.config;
}

val default_config : config
(** 10 input bits, 4096 states, depth 64, 100k transitions,
    {!Cosim.default_config}. *)

val check_partition :
  ?config:config -> Graph.t -> Node_id.Set.t -> status
(** Verify one partition of [g]: build its plan, pick the strongest
    applicable tier, and return the verdict.  Deterministic.  Raises
    [Plan.Plan_error] on malformed partitions. *)

type report = { results : (Core.Partition.t * status) list }
(** One status per partition, in solution order — no partition is ever
    silently skipped. *)

val check_solution : ?config:config -> Graph.t -> Core.Solution.t -> report

val ok : report -> bool
(** No partition {!Failed}.  ({!Skipped} partitions do not fail the
    solution, but they are visible in the report and {!tally}.) *)

type tally = {
  proven : int;
  bounded : int;
  cosim_passed : int;
  failed : int;
  skipped : int;
}

val tally : report -> tally
val summary : report -> string
(** E.g. ["3 proven, 1 bounded, 0 cosim-passed, 0 failed, 0 skipped"]. *)

val pp_report : Format.formatter -> report -> unit
