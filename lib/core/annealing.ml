module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let m_runs = Obs.Metrics.counter "core.annealing.runs" ~doc:"annealings performed"
let m_proposed =
  Obs.Metrics.counter "core.annealing.moves_proposed" ~doc:"moves proposed"
let m_accepted =
  Obs.Metrics.counter "core.annealing.moves_accepted" ~doc:"moves accepted"
let m_steps =
  Obs.Metrics.counter "core.annealing.temperature_steps"
    ~doc:"cooling-schedule steps taken"
let g_final_temperature =
  Obs.Metrics.gauge "core.annealing.final_temperature"
    ~doc:"temperature at the end of the last run"

type config = {
  shapes : Shape.t list;
  partition_config : Partition.config;
  iterations : int;
  initial_temperature : float;
  cooling : float;
  seed : int;
  reliability : (Solution.t -> float) option;
  lambda : float;
}

let default_config = {
  shapes = [ Shape.default ];
  partition_config = Partition.default_config;
  iterations = 20_000;
  initial_temperature = 2.0;
  cooling = 0.9995;
  seed = 1;
  reliability = None;
  lambda = 0.;
}

type result = {
  solution : Solution.t;
  moves_accepted : int;
  moves_proposed : int;
}

(* Re-host a member set on the cheapest fitting shape, if any; full
   validity is then checked with Partition.check. *)
let partition_of ~config g members =
  let inputs_used =
    Partition.inputs_used ~config:config.partition_config g members
  in
  let outputs_used =
    Partition.outputs_used ~config:config.partition_config g members
  in
  match Shape.cheapest_fitting config.shapes ~inputs_used ~outputs_used with
  | None -> None
  | Some shape ->
    let p = Partition.make ~members ~shape in
    if Partition.is_valid ~config:config.partition_config g p then Some p
    else None

(* energy: the paper's objective, with cost as a continuous tie-break so
   downhill moves are visible to the annealer, plus the optional
   reliability term *)
let energy ~config g solution =
  float_of_int (Solution.total_inner_after g solution)
  +. (0.001 *. Solution.total_cost_after g solution)
  +.
  match config.reliability with
  | Some severity -> config.lambda *. severity solution
  | None -> 0.

type move =
  | Grow       (* add an uncovered neighbour to a partition *)
  | Shrink     (* drop a member from a partition *)
  | Seed_pair  (* form a new partition from two uncovered blocks *)
  | Dissolve   (* return a whole partition to pre-defined blocks *)
  | Merge      (* fuse two partitions *)

let pick_move rng =
  match Prng.int rng 10 with
  | 0 | 1 | 2 -> Grow
  | 3 -> Shrink
  | 4 | 5 | 6 -> Seed_pair
  | 7 -> Dissolve
  | _ -> Merge

let move_label = function
  | Grow -> "grow"
  | Shrink -> "shrink"
  | Seed_pair -> "seed_pair"
  | Dissolve -> "dissolve"
  | Merge -> "merge"

(* uncovered eligible blocks, as a list *)
let uncovered_of g partitions =
  let covered =
    List.fold_left
      (fun acc p -> Node_id.Set.union acc p.Partition.members)
      Node_id.Set.empty partitions
  in
  List.filter
    (fun id -> not (Node_id.Set.mem id covered))
    (Graph.partitionable_nodes g)

let neighbours g members =
  Node_id.Set.fold
    (fun id acc -> Graph.preds g id @ Graph.succs g id @ acc)
    members []
  |> List.sort_uniq Node_id.compare
  |> List.filter (fun id -> not (Node_id.Set.mem id members))

let replace_nth list index replacement =
  List.mapi (fun i x -> if i = index then replacement else x) list

let remove_nth list index = List.filteri (fun i _ -> i <> index) list

(* Propose a new partition list ([None] when the picked move has no
   valid instantiation at this state), returning the move alongside so
   the journal can label the decision. *)
let propose ~config g rng partitions =
  let uncovered = uncovered_of g partitions in
  let n = List.length partitions in
  let move = pick_move rng in
  let outcome =
  match move with
  | Grow when n > 0 ->
    let index = Prng.int rng n in
    let p = List.nth partitions index in
    let candidates =
      List.filter (fun id -> List.mem id uncovered)
        (neighbours g p.Partition.members)
    in
    if candidates = [] then None
    else begin
      let extra = Prng.pick rng candidates in
      match
        partition_of ~config g (Node_id.Set.add extra p.Partition.members)
      with
      | Some p' -> Some (replace_nth partitions index p')
      | None -> None
    end
  | Shrink when n > 0 ->
    let index = Prng.int rng n in
    let p = List.nth partitions index in
    let victim = Prng.pick rng (Node_id.Set.elements p.Partition.members) in
    let remaining = Node_id.Set.remove victim p.Partition.members in
    if Node_id.Set.cardinal remaining < 2 then
      Some (remove_nth partitions index)
    else
      (match partition_of ~config g remaining with
       | Some p' -> Some (replace_nth partitions index p')
       | None -> None)
  | Seed_pair ->
    if uncovered = [] then None
    else begin
      let a = Prng.pick rng uncovered in
      let partners =
        List.filter (fun id -> List.mem id uncovered) (Graph.preds g a @ Graph.succs g a)
      in
      if partners = [] then None
      else begin
        let b = Prng.pick rng partners in
        match partition_of ~config g (Node_id.set_of_list [ a; b ]) with
        | Some p -> Some (p :: partitions)
        | None -> None
      end
    end
  | Dissolve when n > 0 -> Some (remove_nth partitions (Prng.int rng n))
  | Merge when n > 1 ->
    let i = Prng.int rng n in
    let j = Prng.int rng n in
    if i = j then None
    else begin
      let a = List.nth partitions i and b = List.nth partitions j in
      match
        partition_of ~config g
          (Node_id.Set.union a.Partition.members b.Partition.members)
      with
      | Some fused ->
        let without =
          List.filteri (fun k _ -> k <> i && k <> j) partitions
        in
        Some (fused :: without)
      | None -> None
    end
  | Grow | Shrink | Dissolve | Merge -> None
  in
  (move, outcome)

let run ?(config = default_config) ?(start = Solution.empty) g =
  Obs.Trace.with_span "annealing.run"
    ~args:
      [ ("inner", string_of_int (Graph.inner_count g));
        ("iterations", string_of_int config.iterations) ]
  @@ fun () ->
  let rng = Prng.create config.seed in
  let journal = Obs.Journal.enabled () in
  if journal then
    Obs.Journal.emit
      (Obs.Journal.Run_started
         { phase = "annealing"; inner = Graph.inner_count g });
  let proposed = ref 0 and accepted = ref 0 in
  let rec anneal temperature current current_energy best best_energy
      remaining =
    if remaining = 0 then begin
      Obs.Metrics.set g_final_temperature temperature;
      best
    end
    else begin
      incr proposed;
      let move, next_state =
        propose ~config g rng current.Solution.partitions
      in
      let current, current_energy, best, best_energy =
        match next_state with
        | None -> (current, current_energy, best, best_energy)
        | Some partitions ->
          let candidate = { Solution.partitions } in
          let candidate_energy = energy ~config g candidate in
          let accept =
            candidate_energy <= current_energy
            || Prng.float rng 1.0
               < exp ((current_energy -. candidate_energy) /. temperature)
          in
          if journal then
            Obs.Journal.emit
              (Obs.Journal.Anneal_move
                 {
                   move = move_label move;
                   accepted = accept;
                   temperature;
                   energy = candidate_energy;
                 });
          if accept then begin
            incr accepted;
            if candidate_energy < best_energy then
              (candidate, candidate_energy, candidate, candidate_energy)
            else (candidate, candidate_energy, best, best_energy)
          end
          else (current, current_energy, best, best_energy)
      in
      anneal (temperature *. config.cooling) current current_energy best
        best_energy (remaining - 1)
    end
  in
  let start_energy = energy ~config g start in
  let best =
    anneal config.initial_temperature start start_energy start start_energy
      config.iterations
  in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_proposed !proposed;
  Obs.Metrics.add m_accepted !accepted;
  Obs.Metrics.add m_steps config.iterations;
  { solution = best; moves_accepted = !accepted; moves_proposed = !proposed }
