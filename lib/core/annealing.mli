(** Simulated-annealing partitioner — a metaheuristic yardstick.

    The paper compares PareDown only against exhaustive search and its own
    greedy first attempt.  A natural question for a reader is how a
    generic metaheuristic fares on the same problem; this module answers
    it.  The annealer searches the space of valid solutions directly:
    moves grow, shrink, create, dissolve, and merge partitions, with
    standard Metropolis acceptance on the paper's objective (total inner
    blocks after replacement, cost as tie-break).

    Deterministic for a given seed.  Expect results comparable to
    PareDown at several orders of magnitude more work — which is the
    point: the problem-specific decomposition heuristic gets the same
    quality for ~free (see the ablation table). *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type config = {
  shapes : Shape.t list;
  partition_config : Partition.config;
  iterations : int;
  initial_temperature : float;
  cooling : float;          (** geometric factor per iteration, < 1 *)
  seed : int;
  reliability : (Solution.t -> float) option;
      (** expected-degradation scorer (see
          {!Paredown.weighted_config}); [None] (the default) keeps the
          paper's block-count energy.  Every proposed state is scored,
          so pass a memoized scorer — the move set revisits states
          constantly. *)
  lambda : float;
      (** weight of the reliability term in the energy; ignored when
          [reliability] is [None] *)
}

val default_config : config
(** 2x2 shape, 20 000 iterations, T0 = 2.0, cooling 0.9995, seed 1, no
    reliability term. *)

type result = {
  solution : Solution.t;
  moves_accepted : int;
  moves_proposed : int;
}

val run : ?config:config -> ?start:Solution.t -> Graph.t -> result
(** Anneal from [start] (default: the empty solution).  The result always
    passes {!Solution.check}. *)
