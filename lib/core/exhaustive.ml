module Graph = Netlist.Graph
module Node_id = Netlist.Node_id
module Dense = Netlist.Dense

let m_runs = Obs.Metrics.counter "core.exhaustive.runs" ~doc:"searches performed"
let m_nodes =
  Obs.Metrics.counter "core.exhaustive.nodes_explored"
    ~doc:"search-tree nodes visited"
let m_leaves =
  Obs.Metrics.counter "core.exhaustive.leaves_checked"
    ~doc:"complete assignments validated"
let m_deadline_hits =
  Obs.Metrics.counter "core.exhaustive.deadline_hits"
    ~doc:"searches abandoned at the deadline"

type objective =
  | Fewest_blocks
  | Lowest_cost

type config = {
  shapes : Shape.t list;
  partition_config : Partition.config;
  bound_pruning : bool;
  objective : objective;
}

let default_config = {
  shapes = [ Shape.default ];
  partition_config = Partition.default_config;
  bound_pruning = true;
  objective = Fewest_blocks;
}

type outcome =
  | Optimal
  | Timed_out

type result = {
  solution : Solution.t;
  outcome : outcome;
  nodes_explored : int;
  leaves_checked : int;
}

exception Deadline

(* A bin over the compiled {!Dense} view.  [ins]/[outs] are maintained
   incrementally under per-edge pin counting (an O(degree) delta per
   add/remove), so leaf validation never recounts a cut from scratch.
   The candidates accepted are exactly those [Partition.is_valid] accepts
   — bin members come from [partitionable_nodes], so eligibility always
   holds and validity reduces to: at least two members, some shape fits,
   and (when required) convexity.  [Partition.check] remains the
   reference oracle; tests compare the two. *)
type bin = {
  set : Dense.set;
  mutable card : int;
  mutable ins : int;
  mutable outs : int;
}

let run ?(config = default_config) ?deadline_s g =
  Obs.Trace.with_span "exhaustive.run"
    ~args:[ ("inner", string_of_int (Graph.inner_count g)) ]
  @@ fun () ->
  let blocks = Array.of_list (Graph.partitionable_nodes g) in
  let n = Array.length blocks in
  let d = Dense.of_graph g in
  let block_idx = Array.map (Dense.index d) blocks in
  (* Inner blocks that can never be covered (e.g. communication blocks)
     appear in every solution's total (and cost). *)
  let fixed_inner = Graph.inner_count g - n in
  let fixed_cost =
    List.fold_left
      (fun acc id ->
        if Eblock.Kind.partitionable (Graph.kind g id) then acc
        else acc +. (Graph.descriptor g id).Eblock.Descriptor.cost)
      0. (Graph.inner_nodes g)
  in
  let block_cost id = (Graph.descriptor g id).Eblock.Descriptor.cost in
  let min_shape_cost =
    List.fold_left
      (fun acc s -> Float.min acc s.Shape.cost)
      infinity config.shapes
  in
  let compare_solutions =
    match config.objective with
    | Fewest_blocks -> Solution.compare_quality g
    | Lowest_cost -> Solution.compare_cost g
  in
  let start = Obs.Clock.now_ns () in
  let journal = Obs.Journal.enabled () in
  if journal then
    Obs.Journal.emit
      (Obs.Journal.Run_started
         { phase = "exhaustive"; inner = Graph.inner_count g });
  let nodes_explored = ref 0 in
  let leaves_checked = ref 0 in
  let best = ref Solution.empty in
  let best_total = ref (Solution.total_inner_after g Solution.empty) in
  let best_cost = ref (Solution.total_cost_after g Solution.empty) in
  let timed_out = ref false in
  (* bins.(b) holds the members of bin b, for b < bins_open *)
  let bins =
    Array.init (max 1 (n / 2)) (fun _ ->
        { set = Dense.empty_set d; card = 0; ins = 0; outs = 0 })
  in
  let max_bins = Array.length bins in
  let bin_add bin i =
    let d_in, d_out = Dense.addition_delta d bin.set i in
    Dense.add bin.set i;
    bin.card <- bin.card + 1;
    bin.ins <- bin.ins + d_in;
    bin.outs <- bin.outs + d_out
  in
  let bin_remove bin i =
    let d_in, d_out = Dense.removal_delta d bin.set i in
    Dense.remove bin.set i;
    bin.card <- bin.card - 1;
    bin.ins <- bin.ins + d_in;
    bin.outs <- bin.outs + d_out
  in
  (* The maintained counts are the per-edge cut sizes; the ablation-only
     net counting recomputes at the leaf (its deltas do not decompose
     per edge). *)
  let bin_pins bin =
    match config.partition_config.Partition.pin_counting with
    | Partition.Per_edge -> (bin.ins, bin.outs)
    | Partition.Per_net ->
      ( Dense.inputs_used_nets d bin.set,
        Dense.outputs_used_nets d bin.set )
  in
  let bin_shape bin =
    let inputs_used, outputs_used = bin_pins bin in
    Shape.cheapest_fitting config.shapes ~inputs_used ~outputs_used
  in
  let bin_valid bin =
    bin.card >= 2
    && bin_shape bin <> None
    && ((not config.partition_config.Partition.require_convex)
        || Dense.is_convex d bin.set)
  in
  let check_deadline () =
    match deadline_s with
    | Some budget when !nodes_explored land 1023 = 0 ->
      if Obs.Clock.elapsed_s start > budget then raise Deadline
    | Some _ | None -> ()
  in
  let rec all_bins_valid b bins_open =
    b = bins_open || (bin_valid bins.(b) && all_bins_valid (b + 1) bins_open)
  in
  let consider_leaf bins_open unassigned =
    incr leaves_checked;
    ignore unassigned;
    if all_bins_valid 0 bins_open then begin
      (* Only now pay for materialising the solution. *)
      let partitions =
        List.init bins_open (fun b ->
            let bin = bins.(b) in
            let shape =
              match bin_shape bin with
              | Some s -> s
              | None -> assert false (* bin_valid just succeeded *)
            in
            Partition.make ~members:(Dense.ids_of_set d bin.set) ~shape)
      in
      let sol = { Solution.partitions } in
      if compare_solutions sol !best < 0 then begin
        best := sol;
        best_total := Solution.total_inner_after g sol;
        best_cost := Solution.total_cost_after g sol;
        if journal then
          Obs.Journal.emit
            (Obs.Journal.Exhaustive_best
               { total = !best_total; cost = !best_cost })
      end
    end
  in
  (* [unassigned_cost] tracks the summed catalogue cost of blocks left
     pre-defined so far; a branch's final cost is at least
     fixed + unassigned-so-far + one cheapest shape per open bin. *)
  let prunable bins_open unassigned unassigned_cost =
    config.bound_pruning
    &&
    match config.objective with
    | Fewest_blocks -> fixed_inner + unassigned + bins_open > !best_total
    | Lowest_cost ->
      fixed_cost +. unassigned_cost
      +. (float_of_int bins_open *. min_shape_cost)
      > !best_cost +. 1e-9
  in
  let rec assign i bins_open unassigned unassigned_cost =
    incr nodes_explored;
    check_deadline ();
    if prunable bins_open unassigned unassigned_cost then begin
      if journal then begin
        let bound, incumbent =
          match config.objective with
          | Fewest_blocks ->
            ( float_of_int (fixed_inner + unassigned + bins_open),
              float_of_int !best_total )
          | Lowest_cost ->
            ( fixed_cost +. unassigned_cost
              +. (float_of_int bins_open *. min_shape_cost),
              !best_cost )
        in
        Obs.Journal.emit
          (Obs.Journal.Pruned { depth = i; bins_open; bound; best = incumbent })
      end
    end
    else if i = n then consider_leaf bins_open unassigned
    else begin
      let idx = block_idx.(i) in
      (* Choice 1: leave the block pre-defined. *)
      assign (i + 1) bins_open (unassigned + 1)
        (unassigned_cost +. block_cost blocks.(i));
      (* Choice 2: join an open bin. *)
      for b = 0 to bins_open - 1 do
        bin_add bins.(b) idx;
        assign (i + 1) bins_open unassigned unassigned_cost;
        bin_remove bins.(b) idx
      done;
      (* Choice 3: open the next bin (empty bins are interchangeable, so
         only the first empty one is tried — the paper's pruning). *)
      if bins_open < max_bins then begin
        bin_add bins.(bins_open) idx;
        assign (i + 1) (bins_open + 1) unassigned unassigned_cost;
        bin_remove bins.(bins_open) idx
      end
    end
  in
  (match assign 0 0 0 0. with
   | () -> ()
   | exception Deadline ->
     timed_out := true;
     Obs.Metrics.incr m_deadline_hits;
     Obs.Trace.instant "exhaustive.deadline";
     let budget_s = match deadline_s with Some b -> b | None -> 0. in
     if journal then
       Obs.Journal.emit
         (Obs.Journal.Deadline_expired
            { phase = "exhaustive"; budget_s; nodes = !nodes_explored });
     Obs.Journal.note_failure
       (Printf.sprintf "exhaustive deadline expired (budget %gs, %d nodes)"
          budget_s !nodes_explored));
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_nodes !nodes_explored;
  Obs.Metrics.add m_leaves !leaves_checked;
  {
    solution = !best;
    outcome = (if !timed_out then Timed_out else Optimal);
    nodes_explored = !nodes_explored;
    leaves_checked = !leaves_checked;
  }
