module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let m_runs = Obs.Metrics.counter "core.exhaustive.runs" ~doc:"searches performed"
let m_nodes =
  Obs.Metrics.counter "core.exhaustive.nodes_explored"
    ~doc:"search-tree nodes visited"
let m_leaves =
  Obs.Metrics.counter "core.exhaustive.leaves_checked"
    ~doc:"complete assignments validated"
let m_deadline_hits =
  Obs.Metrics.counter "core.exhaustive.deadline_hits"
    ~doc:"searches abandoned at the deadline"

type objective =
  | Fewest_blocks
  | Lowest_cost

type config = {
  shapes : Shape.t list;
  partition_config : Partition.config;
  bound_pruning : bool;
  objective : objective;
}

let default_config = {
  shapes = [ Shape.default ];
  partition_config = Partition.default_config;
  bound_pruning = true;
  objective = Fewest_blocks;
}

type outcome =
  | Optimal
  | Timed_out

type result = {
  solution : Solution.t;
  outcome : outcome;
  nodes_explored : int;
  leaves_checked : int;
}

exception Deadline

(* A complete assignment is valid iff every bin forms a valid partition;
   bins get the cheapest shape that fits. *)
let solution_of_bins ~config g bins =
  let make_partition members =
    let inputs_used =
      Partition.inputs_used ~config:config.partition_config g members
    in
    let outputs_used =
      Partition.outputs_used ~config:config.partition_config g members
    in
    match Shape.cheapest_fitting config.shapes ~inputs_used ~outputs_used with
    | None -> None
    | Some shape ->
      let p = Partition.make ~members ~shape in
      if Partition.is_valid ~config:config.partition_config g p
      then Some p
      else None
  in
  let rec build acc = function
    | [] -> Some { Solution.partitions = List.rev acc }
    | members :: rest ->
      (match make_partition members with
       | Some p -> build (p :: acc) rest
       | None -> None)
  in
  build [] bins

let run ?(config = default_config) ?deadline_s g =
  Obs.Trace.with_span "exhaustive.run"
    ~args:[ ("inner", string_of_int (Graph.inner_count g)) ]
  @@ fun () ->
  let blocks = Array.of_list (Graph.partitionable_nodes g) in
  let n = Array.length blocks in
  (* Inner blocks that can never be covered (e.g. communication blocks)
     appear in every solution's total (and cost). *)
  let fixed_inner = Graph.inner_count g - n in
  let fixed_cost =
    List.fold_left
      (fun acc id ->
        if Eblock.Kind.partitionable (Graph.kind g id) then acc
        else acc +. (Graph.descriptor g id).Eblock.Descriptor.cost)
      0. (Graph.inner_nodes g)
  in
  let block_cost id = (Graph.descriptor g id).Eblock.Descriptor.cost in
  let min_shape_cost =
    List.fold_left
      (fun acc s -> Float.min acc s.Shape.cost)
      infinity config.shapes
  in
  let compare_solutions =
    match config.objective with
    | Fewest_blocks -> Solution.compare_quality g
    | Lowest_cost -> Solution.compare_cost g
  in
  let start = Obs.Clock.now_ns () in
  let nodes_explored = ref 0 in
  let leaves_checked = ref 0 in
  let best = ref Solution.empty in
  let best_total = ref (Solution.total_inner_after g Solution.empty) in
  let best_cost = ref (Solution.total_cost_after g Solution.empty) in
  let timed_out = ref false in
  (* bins.(b) is the member set of bin b, for b < bins_open *)
  let bins = Array.make (max 1 (n / 2)) Node_id.Set.empty in
  let max_bins = Array.length bins in
  let check_deadline () =
    match deadline_s with
    | Some budget when !nodes_explored land 1023 = 0 ->
      if Obs.Clock.elapsed_s start > budget then raise Deadline
    | Some _ | None -> ()
  in
  let consider_leaf bins_open unassigned =
    incr leaves_checked;
    let bin_sets = Array.to_list (Array.sub bins 0 bins_open) in
    match solution_of_bins ~config g bin_sets with
    | None -> ()
    | Some sol ->
      ignore unassigned;
      if compare_solutions sol !best < 0 then begin
        best := sol;
        best_total := Solution.total_inner_after g sol;
        best_cost := Solution.total_cost_after g sol
      end
  in
  (* [unassigned_cost] tracks the summed catalogue cost of blocks left
     pre-defined so far; a branch's final cost is at least
     fixed + unassigned-so-far + one cheapest shape per open bin. *)
  let prunable bins_open unassigned unassigned_cost =
    config.bound_pruning
    &&
    match config.objective with
    | Fewest_blocks -> fixed_inner + unassigned + bins_open > !best_total
    | Lowest_cost ->
      fixed_cost +. unassigned_cost
      +. (float_of_int bins_open *. min_shape_cost)
      > !best_cost +. 1e-9
  in
  let rec assign i bins_open unassigned unassigned_cost =
    incr nodes_explored;
    check_deadline ();
    if prunable bins_open unassigned unassigned_cost then ()
    else if i = n then consider_leaf bins_open unassigned
    else begin
      let block = blocks.(i) in
      (* Choice 1: leave the block pre-defined. *)
      assign (i + 1) bins_open (unassigned + 1)
        (unassigned_cost +. block_cost block);
      (* Choice 2: join an open bin. *)
      for b = 0 to bins_open - 1 do
        bins.(b) <- Node_id.Set.add block bins.(b);
        assign (i + 1) bins_open unassigned unassigned_cost;
        bins.(b) <- Node_id.Set.remove block bins.(b)
      done;
      (* Choice 3: open the next bin (empty bins are interchangeable, so
         only the first empty one is tried — the paper's pruning). *)
      if bins_open < max_bins then begin
        bins.(bins_open) <- Node_id.Set.singleton block;
        assign (i + 1) (bins_open + 1) unassigned unassigned_cost;
        bins.(bins_open) <- Node_id.Set.empty
      end
    end
  in
  (match assign 0 0 0 0. with
   | () -> ()
   | exception Deadline ->
     timed_out := true;
     Obs.Metrics.incr m_deadline_hits;
     Obs.Trace.instant "exhaustive.deadline");
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_nodes !nodes_explored;
  Obs.Metrics.add m_leaves !leaves_checked;
  {
    solution = !best;
    outcome = (if !timed_out then Timed_out else Optimal);
    nodes_explored = !nodes_explored;
    leaves_checked = !leaves_checked;
  }
