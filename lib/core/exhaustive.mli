(** Optimal partitioning by exhaustive search (§4.1).

    The search space is "every combination of n blocks into n programmable
    blocks (a combination need not use every block)", i.e. every
    assignment of each eligible block to {e unassigned} or to one of a set
    of interchangeable bins.  As in the paper, search-tree symmetry over
    empty bins is pruned: a block may only open the single next empty bin.

    Two refinements beyond the paper are available and on by default
    (turning them off reproduces the paper's raw search):

    - {e bound pruning}: abandon a branch whose partial total (bins opened
      + blocks left unassigned so far) can no longer beat the incumbent;
    - {e pin pruning is deliberately absent}: a bin's pin usage is not
      monotone in its membership (absorbing a neighbour can free pins), so
      pruning on intermediate pin counts would be unsound.

    Complexity is super-exponential; the paper found eleven inner blocks
    already costs a user-noticeable wait and fourteen did not finish in
    four hours.  Use [deadline] for graceful time-outs. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type objective =
  | Fewest_blocks
      (** the paper's objective: minimise inner blocks after replacement,
          tie-broken towards more coverage *)
  | Lowest_cost
      (** the future-work objective: minimise the summed cost of the
          remaining inner blocks ({!Solution.total_cost_after}), which
          matters once shapes with different costs are available *)

type config = {
  shapes : Shape.t list;
  partition_config : Partition.config;
  bound_pruning : bool;
  objective : objective;
}

val default_config : config
(** 2x2 shape, per-edge pins, convexity, bound pruning, [Fewest_blocks]. *)

type outcome =
  | Optimal
  | Timed_out  (** best solution found before the deadline *)

type result = {
  solution : Solution.t;
  outcome : outcome;
  nodes_explored : int;  (** search-tree nodes visited *)
  leaves_checked : int;  (** complete assignments whose validity was tested *)
}

val run : ?config:config -> ?deadline_s:float -> Graph.t -> result
(** [deadline_s] is an elapsed-seconds budget, measured with the shared
    monotonic clock ({!Obs.Clock}) like every other duration in the
    tool chain.  The returned solution always passes
    {!Solution.check}. *)
