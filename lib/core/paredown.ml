module Graph = Netlist.Graph
module Node_id = Netlist.Node_id
module Dense = Netlist.Dense

let m_runs = Obs.Metrics.counter "core.paredown.runs" ~doc:"decompositions performed"
let m_candidates =
  Obs.Metrics.counter "core.paredown.candidates"
    ~doc:"candidate partitions evaluated (outer iterations)"
let m_fit_checks =
  Obs.Metrics.counter "core.paredown.fit_checks"
    ~doc:"fits-in-a-programmable-block tests (§4.2: at most n(n+1)/2)"
let m_removals =
  Obs.Metrics.counter "core.paredown.removals" ~doc:"border blocks evicted"
let h_run_ns =
  Obs.Metrics.histogram "core.paredown.run_ns" ~doc:"PareDown wall time per run"
let h_fit_checks =
  Obs.Metrics.histogram "core.paredown.fit_checks_per_run"
    ~doc:"fit-check batch size per run (the §4.2 quantity)"

type tie_break =
  | Greatest_indegree
  | Greatest_outdegree
  | Highest_level
  | Highest_id

type empty_candidate_policy =
  | Stop_everything
  | Skip_block

type config = {
  shapes : Shape.t list;
  partition_config : Partition.config;
  tie_breaks : tie_break list;
  on_empty_candidate : empty_candidate_policy;
}

let default_config = {
  shapes = [ Shape.default ];
  partition_config = Partition.default_config;
  tie_breaks = [ Greatest_indegree; Greatest_outdegree; Highest_level ];
  on_empty_candidate = Skip_block;
}

type stats = {
  outer_iterations : int;
  fit_checks : int;
  removals : int;
}

type event =
  | Candidate_started of Node_id.Set.t
  | Ranked of (Node_id.t * int) list
  | Removed of Node_id.t * int
  | Accepted of Node_id.Set.t * Shape.t
  | Left_single of Node_id.t
  | Unplaceable of Node_id.t

let pp_event ppf = function
  | Candidate_started set ->
    Format.fprintf ppf "candidate %a" Node_id.pp_set set
  | Ranked ranks ->
    let pp_rank ppf (id, r) = Format.fprintf ppf "%d:%+d" id r in
    Format.fprintf ppf "border ranks %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_rank)
      ranks
  | Removed (id, r) -> Format.fprintf ppf "remove %d (rank %+d)" id r
  | Accepted (set, shape) ->
    Format.fprintf ppf "accept %a on %a" Node_id.pp_set set Shape.pp shape
  | Left_single id ->
    Format.fprintf ppf "leave %d pre-defined (fits but is a single block)"
      id
  | Unplaceable id ->
    Format.fprintf ppf "set aside %d (does not fit any shape alone)" id

type result = {
  solution : Solution.t;
  stats : stats;
  trace : event list;
}

(* ------------------------------------------------------------------ *)
(* Candidate state over the compiled Dense view, with incremental
   per-edge pin accounting.

   All quantities PareDown consults per step are O(degree):

   rank(b) = (in + out)(P \ b) - (in + out)(P)
           =   #(internal edges incident to b)     [they become crossing]
             - #(crossing edges incident to b)     [they disappear]

   For the ablation-only net-based counting the deltas do not decompose
   per edge, so that mode recomputes the counts from scratch (it is only
   exercised on small designs). *)

type candidate = {
  d : Dense.t;
  config : config;
  members : Dense.set;
  mutable card : int;
  mutable inputs_used : int;
  mutable outputs_used : int;
}

let recount cand =
  let ins, outs =
    match cand.config.partition_config.Partition.pin_counting with
    | Partition.Per_edge -> Dense.pins_used cand.d cand.members
    | Partition.Per_net ->
      ( Dense.inputs_used_nets cand.d cand.members,
        Dense.outputs_used_nets cand.d cand.members )
  in
  cand.inputs_used <- ins;
  cand.outputs_used <- outs

let candidate_of_set ~config d set =
  let members = Dense.set_of_ids d set in
  let cand =
    {
      d;
      config;
      members;
      card = Node_id.Set.cardinal set;
      inputs_used = 0;
      outputs_used = 0;
    }
  in
  recount cand;
  cand

(* rank of member [b] (compact index); per-edge counting is the O(degree)
   removal delta, per-net counting recomputes around a temporary flip. *)
let candidate_rank cand b =
  match cand.config.partition_config.Partition.pin_counting with
  | Partition.Per_edge ->
    let d_in, d_out = Dense.removal_delta cand.d cand.members b in
    d_in + d_out
  | Partition.Per_net ->
    let before = cand.inputs_used + cand.outputs_used in
    Dense.remove cand.members b;
    let without =
      Dense.inputs_used_nets cand.d cand.members
      + Dense.outputs_used_nets cand.d cand.members
    in
    Dense.add cand.members b;
    without - before

let candidate_remove cand b =
  (match cand.config.partition_config.Partition.pin_counting with
   | Partition.Per_edge ->
     let d_in, d_out = Dense.removal_delta cand.d cand.members b in
     Dense.remove cand.members b;
     cand.inputs_used <- cand.inputs_used + d_in;
     cand.outputs_used <- cand.outputs_used + d_out
   | Partition.Per_net ->
     Dense.remove cand.members b;
     recount cand);
  cand.card <- cand.card - 1

let candidate_is_border cand b = Dense.is_border cand.d cand.members b

(* The fit verdict keeps the two failure modes apart so the journal can
   report them separately; convexity is only evaluated when pins pass
   (it is the expensive half) and when the config demands it — [None]
   means "not consulted". *)
type fit_verdict = { pins_ok : bool; convex_ok : bool option }

let fit_verdict cand =
  let pins_ok =
    List.exists
      (fun shape ->
        Shape.fits shape ~inputs_used:cand.inputs_used
          ~outputs_used:cand.outputs_used)
      cand.config.shapes
  in
  let convex_ok =
    if pins_ok && cand.config.partition_config.Partition.require_convex then
      Some (Dense.is_convex cand.d cand.members)
    else None
  in
  { pins_ok; convex_ok }

let verdict_passes v = v.pins_ok && v.convex_ok <> Some false
let candidate_fits cand = verdict_passes (fit_verdict cand)

let chosen_shape cand =
  Shape.cheapest_fitting cand.config.shapes ~inputs_used:cand.inputs_used
    ~outputs_used:cand.outputs_used

(* ------------------------------------------------------------------ *)
(* Removal choice.                                                     *)

(* Tie-break key among equally-ranked border blocks: the smaller key is
   removed first.  The key depends only on the graph (not on the
   candidate), so [run] precomputes one per node. *)
let tie_key ~config ~levels g id =
  let level id =
    match Node_id.Map.find_opt id levels with Some l -> l | None -> 0
  in
  List.map
    (function
      | Greatest_indegree -> -Graph.in_degree g id
      | Greatest_outdegree -> -Graph.out_degree g id
      | Highest_level -> -level id
      | Highest_id -> -id)
    config.tie_breaks
  @ [ -id ]

let tie_keys ~config ~levels g d =
  Array.init (Dense.length d) (fun i ->
      tie_key ~config ~levels g (Dense.node_id d i))

let border_ranks_of cand =
  let acc = ref [] in
  Dense.iter_members cand.members (fun i ->
      if candidate_is_border cand i then
        acc := (Dense.node_id cand.d i, candidate_rank cand i) :: !acc);
  List.rev !acc

let choose_victim ~keys cand =
  let best = ref None in
  Dense.iter_members cand.members (fun i ->
      if candidate_is_border cand i then begin
        let rank = candidate_rank cand i in
        let key = (rank, keys.(i)) in
        match !best with
        | Some (_, _, best_key) when compare key best_key >= 0 -> ()
        | Some _ | None -> best := Some (i, rank, key)
      end);
  Option.map (fun (i, rank, _) -> (i, rank)) !best

(* ------------------------------------------------------------------ *)
(* Public one-off helpers (tests, walkthroughs).                       *)

let rank ?(config = default_config) g candidate b =
  let d = Dense.of_graph g in
  candidate_rank (candidate_of_set ~config d candidate) (Dense.index d b)

let removal_choice ?(config = default_config) g candidate =
  if Node_id.Set.is_empty candidate then None
  else
    let d = Dense.of_graph g in
    let levels = Graph.levels g in
    let keys = tie_keys ~config ~levels g d in
    Option.map
      (fun (i, _) -> Dense.node_id d i)
      (choose_victim ~keys (candidate_of_set ~config d candidate))

(* ------------------------------------------------------------------ *)
(* The decomposition method (Figure 4).                                *)

let run ?(config = default_config) ?(record_trace = false) g =
  Obs.Trace.with_span "paredown.run"
    ~args:[ ("inner", string_of_int (Graph.inner_count g)) ]
  @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  let levels = Graph.levels g in
  let d = Dense.of_graph g in
  let keys = tie_keys ~config ~levels g d in
  let trace = ref [] in
  (* Trace payloads (border ranks in particular) are costly to build, so
     they are only computed when tracing is on. *)
  let emit event = if record_trace then trace := event () :: !trace in
  (* The journal cannot be (un)installed mid-run, so the enabled guard is
     read once; every journal emit below allocates nothing when it is
     off. *)
  let journal = Obs.Journal.enabled () in
  if journal then
    Obs.Journal.emit
      (Obs.Journal.Run_started
         { phase = "paredown"; inner = Graph.inner_count g });
  let outer = ref 0 in
  let fit_checks = ref 0 in
  let removals = ref 0 in
  let eligible = Node_id.Set.of_list (Graph.partitionable_nodes g) in
  (* [pare blocks cand] is the inner loop of Figure 4; returns the new
     working set and accumulated partitions, or [None] when the paper's
     Stop_everything policy fires on an emptied candidate. *)
  let rec pare blocks cand partitions =
    incr fit_checks;
    let fits =
      if journal then begin
        let v = fit_verdict cand in
        let fits = verdict_passes v in
        Obs.Journal.emit
          (Obs.Journal.Fit_check
             {
               inputs_used = cand.inputs_used;
               outputs_used = cand.outputs_used;
               pins_ok = v.pins_ok;
               convex_ok = v.convex_ok;
               fits;
             });
        fits
      end
      else candidate_fits cand
    in
    if fits then begin
      match cand.card with
      | 0 ->
        (* Only reachable by paring a lone unplaceable block down to
           nothing. *)
        (match config.on_empty_candidate with
         | Stop_everything -> None
         | Skip_block -> Some (blocks, partitions))
      | 1 ->
        let members = Dense.ids_of_set d cand.members in
        let id = Node_id.Set.choose members in
        emit (fun () -> Left_single id);
        if journal then
          Obs.Journal.emit
            (Obs.Journal.Rejected { node = id; reason = "left_single" });
        Some (Node_id.Set.diff blocks members, partitions)
      | _ ->
        let shape =
          match chosen_shape cand with
          | Some s -> s
          | None -> assert false (* candidate_fits just succeeded *)
        in
        let members = Dense.ids_of_set d cand.members in
        emit (fun () -> Accepted (members, shape));
        if journal then
          Obs.Journal.emit
            (Obs.Journal.Accepted
               {
                 members = Node_id.Set.elements members;
                 shape = Format.asprintf "%a" Shape.pp shape;
               });
        let partition = Partition.make ~members ~shape in
        Some (Node_id.Set.diff blocks members, partition :: partitions)
    end
    else begin
      emit (fun () -> Ranked (border_ranks_of cand));
      match choose_victim ~keys cand with
      | None -> Some (blocks, partitions)  (* defensive; not reachable *)
      | Some (victim, victim_rank) ->
        incr removals;
        let victim_id = Dense.node_id d victim in
        emit (fun () -> Removed (victim_id, victim_rank));
        if journal then begin
          (* The per-edge delta must be read before the membership flips;
             under per-net counting there is no per-edge decomposition to
             report. *)
          let d_in, d_out =
            match config.partition_config.Partition.pin_counting with
            | Partition.Per_edge ->
              let di, dd = Dense.removal_delta d cand.members victim in
              (Some di, Some dd)
            | Partition.Per_net -> (None, None)
          in
          Obs.Journal.emit
            (Obs.Journal.Removed
               { node = victim_id; rank = victim_rank; d_in; d_out })
        end;
        candidate_remove cand victim;
        let blocks =
          if cand.card = 0 then begin
            (* The victim could not fit even alone. *)
            emit (fun () -> Unplaceable victim_id);
            if journal then
              Obs.Journal.emit
                (Obs.Journal.Rejected
                   { node = victim_id; reason = "unplaceable" });
            Node_id.Set.remove victim_id blocks
          end
          else blocks
        in
        pare blocks cand partitions
    end
  in
  let rec main blocks partitions =
    if Node_id.Set.is_empty blocks then partitions
    else begin
      incr outer;
      emit (fun () -> Candidate_started blocks);
      if journal then
        Obs.Journal.emit
          (Obs.Journal.Candidate_started
             { members = Node_id.Set.elements blocks });
      let cand = candidate_of_set ~config d blocks in
      match pare blocks cand partitions with
      | None -> partitions
      | Some (blocks', partitions') -> main blocks' partitions'
    end
  in
  let partitions = List.rev (main eligible []) in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_candidates !outer;
  Obs.Metrics.add m_fit_checks !fit_checks;
  Obs.Metrics.add m_removals !removals;
  Obs.Histogram.observe h_run_ns
    (Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0));
  Obs.Histogram.observe_int h_fit_checks !fit_checks;
  {
    solution = { Solution.partitions };
    stats =
      {
        outer_iterations = !outer;
        fit_checks = !fit_checks;
        removals = !removals;
      };
    trace = List.rev !trace;
  }

(* ------------------------------------------------------------------ *)
(* Reliability-weighted mode.                                          *)

let m_weighted_runs =
  Obs.Metrics.counter "core.paredown.weighted_runs"
    ~doc:"reliability-weighted decompositions performed"

let m_weighted_dissolves =
  Obs.Metrics.counter "core.paredown.weighted_dissolves"
    ~doc:"partitions dissolved by reliability refinement"

type weighted_config = {
  lambda : float;
  lexicographic : bool;
  severity : Solution.t -> float;
}

let weighted_cost ~weighted g solution =
  ( float_of_int (Solution.total_inner_after g solution),
    weighted.severity solution )

type weighted_result = {
  base : result;
  solution : Solution.t;
  dissolved : int;
  base_severity : float;
  severity : float;
}

let run_weighted ?config ~weighted g =
  Obs.Trace.with_span "paredown.run_weighted"
    ~args:[ ("inner", string_of_int (Graph.inner_count g)) ]
  @@ fun () ->
  let base = run ?config g in
  if Obs.Journal.enabled () then
    Obs.Journal.emit
      (Obs.Journal.Run_started
         { phase = "paredown_weighted"; inner = Graph.inner_count g });
  (* Strictly-better comparison on the chosen objective; strictness is
     what guarantees the greedy loop stops. *)
  let better (cand_blocks, cand_sev) (cur_blocks, cur_sev) =
    if weighted.lexicographic then
      cand_sev < cur_sev || (cand_sev = cur_sev && cand_blocks < cur_blocks)
    else
      cand_blocks +. (weighted.lambda *. cand_sev)
      < cur_blocks +. (weighted.lambda *. cur_sev)
  in
  let remove_nth list index = List.filteri (fun i _ -> i <> index) list in
  let rec refine solution cost dissolved =
    let n = List.length solution.Solution.partitions in
    let best = ref None in
    for i = 0 to n - 1 do
      let candidate =
        { Solution.partitions = remove_nth solution.Solution.partitions i }
      in
      let candidate_cost = weighted_cost ~weighted g candidate in
      let beats_incumbent =
        match !best with
        | Some (_, incumbent_cost) -> better candidate_cost incumbent_cost
        | None -> better candidate_cost cost
      in
      if beats_incumbent then best := Some (candidate, candidate_cost)
    done;
    match !best with
    | Some (candidate, candidate_cost) ->
      Obs.Metrics.incr m_weighted_dissolves;
      refine candidate candidate_cost (dissolved + 1)
    | None -> (solution, cost, dissolved)
  in
  let base_cost = weighted_cost ~weighted g base.solution in
  let solution, (_, severity), dissolved = refine base.solution base_cost 0 in
  Obs.Metrics.incr m_weighted_runs;
  { base; solution; dissolved; base_severity = snd base_cost; severity }
