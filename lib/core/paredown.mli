(** The PareDown decomposition heuristic (§4.2).

    PareDown "begins by selecting all internal blocks of a design as a
    candidate partition, and then removes blocks from the partition until
    input and output constraints are met".  Each accepted partition's
    members leave the working set and the process repeats until no blocks
    remain.

    The block removed from an invalid candidate is the {e border block}
    with the lowest {e rank} (net change of the candidate's combined
    indegree and outdegree if the block were removed); ties go to the
    greatest indegree, then greatest outdegree, then highest level, then —
    a detail the paper leaves open; this choice reproduces Figure 5 — the
    highest node id. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type tie_break =
  | Greatest_indegree
  | Greatest_outdegree
  | Highest_level
  | Highest_id  (** always appended implicitly to make removal total *)

type empty_candidate_policy =
  | Stop_everything
      (** the paper's literal pseudocode: return the partitions found so
          far, abandoning any blocks still in the working set *)
  | Skip_block
      (** continue with the remaining blocks after setting aside the
          single block that could not fit on its own (matches the paper's
          complexity analysis and is never worse); the default *)

type config = {
  shapes : Shape.t list;           (** candidate fits if any shape fits *)
  partition_config : Partition.config;
  tie_breaks : tie_break list;
  on_empty_candidate : empty_candidate_policy;
}

val default_config : config
(** The paper's setup: one 2-in/2-out shape, per-edge pins, convexity
    required, ties by indegree/outdegree/level, [Skip_block]. *)

type stats = {
  outer_iterations : int;  (** candidate partitions started *)
  fit_checks : int;        (** "fits in a programmable block" tests *)
  removals : int;          (** border blocks removed from candidates *)
}

type event =
  | Candidate_started of Node_id.Set.t
  | Ranked of (Node_id.t * int) list
      (** border blocks of the current candidate with their ranks *)
  | Removed of Node_id.t * int  (** block evicted, with its rank *)
  | Accepted of Node_id.Set.t * Shape.t
  | Left_single of Node_id.t
      (** fits alone but single-member partitions are invalid: the block
          stays pre-defined *)
  | Unplaceable of Node_id.t
      (** no shape can host even this block alone *)

val pp_event : Format.formatter -> event -> unit

type result = {
  solution : Solution.t;
  stats : stats;
  trace : event list;  (** chronological; empty unless requested *)
}

val rank : ?config:config -> Graph.t -> Node_id.Set.t -> Node_id.t -> int
(** [rank g candidate b] — the io delta of removing [b] from
    [candidate]. *)

val removal_choice :
  ?config:config -> Graph.t -> Node_id.Set.t -> Node_id.t option
(** The border block PareDown would evict from the candidate, or [None]
    on an empty candidate. *)

val run : ?config:config -> ?record_trace:bool -> Graph.t -> result
(** Partition the graph's eligible inner blocks.  The graph must be
    acyclic (levels are needed for tie-breaking). *)

(** {1 Reliability-weighted mode}

    The paper's objective counts blocks only; a deployment that also
    cares how the synthesised system degrades under faults wants to
    trade blocks against expected severity.  [Core] cannot depend on the
    simulator, so the severity of a candidate solution arrives as a
    closure — in practice [Reliability.Estimator.scorer], which memoizes
    Monte-Carlo estimates behind a canonical partition fingerprint. *)

type weighted_config = {
  lambda : float;
      (** exchange rate: how many expected-severity points one saved
          block is worth.  0 restores the paper's objective exactly. *)
  lexicographic : bool;
      (** [true]: minimise (severity, blocks) lexicographically instead
          of the weighted sum — "most reliable first, then smallest";
        [lambda] is ignored *)
  severity : Solution.t -> float;
      (** expected degradation of a candidate solution, in [[0, 1]] *)
}

val weighted_cost :
  weighted:weighted_config -> Graph.t -> Solution.t -> float * float
(** [(blocks, severity)] of a solution under the weighted objective —
    the two axes every caller (refinement loop, Pareto sweep, tests)
    compares on. *)

type weighted_result = {
  base : result;  (** the unmodified paper run (the λ = 0 answer) *)
  solution : Solution.t;  (** after reliability refinement *)
  dissolved : int;  (** partitions the refinement returned to blocks *)
  base_severity : float;  (** severity of [base.solution] *)
  severity : float;  (** severity of [solution] *)
}

val run_weighted :
  ?config:config -> weighted:weighted_config -> Graph.t -> weighted_result
(** {!run}, then greedy dissolve refinement: repeatedly evaluate every
    single-partition dissolution of the current solution and commit the
    one that most improves the weighted (or lexicographic) objective,
    stopping when none does.  Dissolving strictly shrinks the partition
    list, so the loop terminates after at most [programmable_count]
    rounds and the result is deterministic given a deterministic
    [severity].  With [lambda = 0.] (and [lexicographic = false]) no
    dissolution can pay for its block increase, so [solution] is
    [base.solution] unchanged. *)
