module Graph = Netlist.Graph

type paper_row = {
  inner_original : int;
  exhaustive_total : int option;
  exhaustive_prog : int option;
  paredown_total : int;
  paredown_prog : int;
}

type t = {
  name : string;
  description : string;
  network : Graph.t;
  paper : paper_row option;
}

(* "3=and2, 4=delay(10)" — so a failure message names the offending
   blocks, not just their ids. *)
let block_roster g ids =
  String.concat ", "
    (List.map
       (fun id ->
         Printf.sprintf "%d=%s" id
           (Graph.descriptor g id).Eblock.Descriptor.name)
       ids)

let make ~name ~description ?paper ~nodes ~edges () =
  let g =
    List.fold_left
      (fun g (id, descriptor) -> fst (Graph.add ~id g descriptor))
      Graph.empty nodes
  in
  let g =
    List.fold_left (fun g (src, dst) -> Graph.connect g ~src ~dst) g edges
  in
  (match Graph.validate g with
   | Ok () -> ()
   | Error problems ->
     (* The validator's problems reference bare node ids; the roster
        resolves them to block types. *)
     invalid_arg
       (Printf.sprintf "design %S is malformed: %s (blocks: %s)" name
          (String.concat "; " problems)
          (block_roster g (Graph.node_ids g))));
  (match paper with
   | Some row when row.inner_original <> Graph.inner_count g ->
     invalid_arg
       (Printf.sprintf
          "design %S has %d inner blocks (%s) but its Table 1 row says %d"
          name (Graph.inner_count g)
          (block_roster g (Graph.inner_nodes g))
          row.inner_original)
   | Some _ | None -> ());
  { name; description; network = g; paper }

let inner_count t = Graph.inner_count t.network
