(** A named eBlock design plus the numbers the paper reports for it.

    The original 15 designs lived in the eBlocks web library [8], which is
    no longer available; each design here is a reconstruction from the
    paper's application descriptions with the same inner-block count as
    Table 1 (see DESIGN.md §3 and the documentation next to each design
    in {!Library}). *)

module Graph = Netlist.Graph

type paper_row = {
  inner_original : int;          (** Table 1 "Inner Blocks (Original)" *)
  exhaustive_total : int option; (** None where Table 1 shows "--" *)
  exhaustive_prog : int option;
  paredown_total : int;
  paredown_prog : int;
}

type t = {
  name : string;
  description : string;
  network : Graph.t;
  paper : paper_row option;
      (** [None] for designs that are not Table 1 rows (the motivating
          applications of §1) *)
}

val make :
  name:string ->
  description:string ->
  ?paper:paper_row ->
  nodes:(int * Eblock.Descriptor.t) list ->
  edges:((int * int) * (int * int)) list ->
  unit ->
  t
(** Build and validate the network; raises [Invalid_argument] if the
    built network fails [Graph.validate] or its inner-block count
    disagrees with [paper.inner_original] — a malformed roster is a
    caller error, not an internal failure.  The message names the
    offending design and
    resolves every referenced node id to its block type
    (["3=and2, 4=delay(10)"]), so a broken reconstruction is findable
    without a debugger. *)

val inner_count : t -> int
