module C = Eblock.Catalog

let row ?exhaustive_total ?exhaustive_prog ~inner ~pd_total ~pd_prog () =
  {
    Design.inner_original = inner;
    exhaustive_total;
    exhaustive_prog;
    paredown_total = pd_total;
    paredown_prog = pd_prog;
  }

(* Headlight reminder: ignition on while it is dark outside lights a
   warning LED.  Inner: a NOT on the light sensor and an AND. *)
let ignition_illuminator =
  Design.make ~name:"Ignition Illuminator"
    ~description:"Lights an LED when the ignition is on after dark."
    ~paper:
      (row ~inner:2 ~exhaustive_total:1 ~exhaustive_prog:1 ~pd_total:1
         ~pd_prog:1 ())
    ~nodes:
      [
        (1, C.contact_switch);  (* ignition sense *)
        (2, C.light_sensor);
        (3, C.not_gate);
        (4, C.and2);
        (5, C.led);
      ]
    ~edges:
      [ ((2, 0), (3, 0)); ((1, 0), (4, 0)); ((3, 0), (4, 1));
        ((4, 0), (5, 0)) ]
    ()

(* Dark room plus motion turns on a lamp relay. *)
let night_lamp_controller =
  Design.make ~name:"Night Lamp Controller"
    ~description:"Switches a lamp on when motion is sensed in the dark."
    ~paper:
      (row ~inner:2 ~exhaustive_total:1 ~exhaustive_prog:1 ~pd_total:1
         ~pd_prog:1 ())
    ~nodes:
      [
        (1, C.light_sensor);
        (2, C.motion_sensor);
        (3, C.not_gate);
        (4, C.and2);
        (5, C.relay);
      ]
    ~edges:
      [ ((1, 0), (3, 0)); ((3, 0), (4, 0)); ((2, 0), (4, 1));
        ((4, 0), (5, 0)) ]
    ()

(* A magnet switch opens when the gate opens; the event is latched and
   sounds a buzzer until power-cycled. *)
let entry_gate_detector =
  Design.make ~name:"Entry Gate Detector"
    ~description:"Latches a buzzer when the entry gate has been opened."
    ~paper:
      (row ~inner:2 ~exhaustive_total:1 ~exhaustive_prog:1 ~pd_total:1
         ~pd_prog:1 ())
    ~nodes:
      [
        (1, C.magnet_sensor);
        (2, C.not_gate);
        (3, C.trip_latch);
        (4, C.buzzer);
      ]
    ~edges:[ ((1, 0), (2, 0)); ((2, 0), (3, 0)); ((3, 0), (4, 0)) ]
    ()

(* Press when the carpool arrives; the LED stays lit for a while so a
   passenger inside notices. *)
let carpool_alert =
  Design.make ~name:"Carpool Alert"
    ~description:"A doorside button lights an indoor LED for a while."
    ~paper:
      (row ~inner:2 ~exhaustive_total:1 ~exhaustive_prog:1 ~pd_total:1
         ~pd_prog:1 ())
    ~nodes:
      [
        (1, C.button);
        (2, C.toggle);
        (3, C.prolong ~ticks:20);
        (4, C.led);
      ]
    ~edges:[ ((1, 0), (2, 0)); ((2, 0), (3, 0)); ((3, 0), (4, 0)) ]
    ()

(* Staff toggle "food ready"; the alert only shows during open hours and
   lingers briefly after being switched off. *)
let cafeteria_food_alert =
  Design.make ~name:"Cafeteria Food Alert"
    ~description:"Shows a food-ready light during cafeteria open hours."
    ~paper:
      (row ~inner:3 ~exhaustive_total:1 ~exhaustive_prog:1 ~pd_total:1
         ~pd_prog:1 ())
    ~nodes:
      [
        (1, C.button);          (* food ready *)
        (2, C.contact_switch);  (* open-hours switch *)
        (3, C.toggle);
        (4, C.and2);
        (5, C.prolong ~ticks:30);
        (6, C.led);
      ]
    ~edges:
      [
        ((1, 0), (3, 0)); ((3, 0), (4, 0)); ((2, 0), (4, 1));
        ((4, 0), (5, 0)); ((5, 0), (6, 0));
      ]
    ()

(* Start the talk timer with a button; one warning flash near the end. *)
let podium_timer_2 =
  Design.make ~name:"Podium Timer 2"
    ~description:"Single-warning podium timer: button, delay, flash."
    ~paper:
      (row ~inner:3 ~exhaustive_total:1 ~exhaustive_prog:1 ~pd_total:1
         ~pd_prog:1 ())
    ~nodes:
      [
        (1, C.button);
        (2, C.toggle);
        (3, C.delay ~ticks:30);
        (4, C.pulse_gen ~width:5);
        (5, C.led);
      ]
    ~edges:
      [ ((1, 0), (2, 0)); ((2, 0), (3, 0)); ((3, 0), (4, 0));
        ((4, 0), (5, 0)) ]
    ()

(* Four window contacts OR-ed in a tree.  No subset of the OR tree fits a
   2-in/2-out block (every candidate needs at least three inputs), so the
   design is already minimal — the "partitioning finds nothing" row. *)
let any_window_open_alarm =
  Design.make ~name:"Any Window Open Alarm"
    ~description:"Sounds a buzzer when any of four windows is open."
    ~paper:
      (row ~inner:3 ~exhaustive_total:3 ~exhaustive_prog:0 ~pd_total:3
         ~pd_prog:0 ())
    ~nodes:
      [
        (1, C.contact_switch); (2, C.contact_switch);
        (3, C.contact_switch); (4, C.contact_switch);
        (5, C.or2); (6, C.or2); (7, C.or2);
        (8, C.buzzer);
      ]
    ~edges:
      [
        ((1, 0), (5, 0)); ((2, 0), (5, 1));
        ((3, 0), (6, 0)); ((4, 0), (6, 1));
        ((5, 0), (7, 0)); ((6, 0), (7, 1));
        ((7, 0), (8, 0));
      ]
    ()

(* Two 3-way-switch style buttons toggle a main light; each button has a
   local indicator and the main light has a companion buzzer.  Every
   candidate subgraph needs at least three output pins, so nothing fits a
   2x2 block.  (Table 1 prints exhaustive Prog. = 1 for this row, which is
   inconsistent with its own Total = 3 under the stated objective — see
   EXPERIMENTS.md.) *)
let two_button_light =
  Design.make ~name:"Two Button Light"
    ~description:"Two toggling buttons control one light, with indicators."
    ~paper:
      (row ~inner:3 ~exhaustive_total:3 ~exhaustive_prog:1 ~pd_total:3
         ~pd_prog:1 ())
    ~nodes:
      [
        (1, C.button); (2, C.button);
        (3, C.toggle); (4, C.toggle); (5, C.xor2);
        (6, C.led); (7, C.led); (8, C.led); (9, C.buzzer);
      ]
    ~edges:
      [
        ((1, 0), (3, 0)); ((2, 0), (4, 0));
        ((3, 0), (5, 0)); ((4, 0), (5, 1));
        ((3, 0), (6, 0)); ((4, 0), (7, 0));
        ((5, 0), (8, 0)); ((5, 0), (9, 0));
      ]
    ()

(* The doorbell press is stretched into a pulse and repeated over two
   wireless hops; the only compute block is the pulse generator, so
   nothing can be combined. *)
let doorbell_extender_1 =
  Design.make ~name:"Doorbell Extender 1"
    ~description:"Extends a doorbell over two wireless hops."
    ~paper:
      (row ~inner:5 ~exhaustive_total:5 ~exhaustive_prog:0 ~pd_total:5
         ~pd_prog:0 ())
    ~nodes:
      [
        (1, C.button);
        (2, C.pulse_gen ~width:10);
        (3, C.wireless_tx); (4, C.wireless_rx);
        (5, C.wireless_tx); (6, C.wireless_rx);
        (7, C.buzzer); (8, C.buzzer);
      ]
    ~edges:
      [
        ((1, 0), (2, 0)); ((2, 0), (3, 0)); ((3, 0), (4, 0));
        ((4, 0), (7, 0)); ((4, 0), (5, 0)); ((5, 0), (6, 0));
        ((6, 0), (8, 0));
      ]
    ()

(* As above plus a prolong at the far end; pulse and prolong cannot share
   a programmable block because the path between them runs through the
   radio links (the candidate is not convex). *)
let doorbell_extender_2 =
  Design.make ~name:"Doorbell Extender 2"
    ~description:"Two-hop doorbell extender with a lingering far-end tone."
    ~paper:
      (row ~inner:6 ~exhaustive_total:6 ~exhaustive_prog:0 ~pd_total:6
         ~pd_prog:0 ())
    ~nodes:
      [
        (1, C.button);
        (2, C.pulse_gen ~width:10);
        (3, C.wireless_tx); (4, C.wireless_rx);
        (5, C.wireless_tx); (6, C.wireless_rx);
        (7, C.prolong ~ticks:15);
        (8, C.buzzer); (9, C.buzzer);
      ]
    ~edges:
      [
        ((1, 0), (2, 0)); ((2, 0), (3, 0)); ((3, 0), (4, 0));
        ((4, 0), (8, 0)); ((4, 0), (5, 0)); ((5, 0), (6, 0));
        ((6, 0), (7, 0)); ((7, 0), (9, 0));
      ]
    ()

(* The paper's worked example (Figure 5).  This reconstruction reproduces
   the published PareDown trace exactly: border ranks (+1, +1, 0) on the
   initial candidate, removals 9, 8, 7, 6, accepted partitions {2,3,4,5}
   and {6,8,9}, block 7 left pre-defined — and the exhaustive optimum
   {2,3,4,5}, {7,8}, {6,9} covering all eight blocks. *)
let podium_timer_3 =
  Design.make ~name:"Podium Timer 3"
    ~description:"Two-stage podium timer with warning and end-of-time LEDs."
    ~paper:
      (row ~inner:8 ~exhaustive_total:3 ~exhaustive_prog:3 ~pd_total:3
         ~pd_prog:2 ())
    ~nodes:
      [
        (1, C.button);
        (2, C.toggle);
        (3, C.delay ~ticks:30);
        (4, C.delay ~ticks:60);
        (5, C.or2);
        (6, C.splitter2);
        (7, C.splitter2);
        (8, C.or2);
        (9, C.pulse_gen ~width:5);
        (10, C.led); (11, C.led); (12, C.led);
      ]
    ~edges:
      [
        ((1, 0), (2, 0));
        ((2, 0), (3, 0)); ((2, 0), (4, 0));
        ((3, 0), (5, 0)); ((4, 0), (5, 1));
        ((5, 0), (6, 0)); ((5, 0), (7, 0));
        ((6, 0), (8, 0)); ((6, 1), (9, 0));
        ((7, 0), (8, 1)); ((7, 1), (10, 0));
        ((8, 0), (11, 0)); ((9, 0), (12, 0));
      ]
    ()

(* Bedroom unit (noise while dark) radios the event to the parents' room,
   which latches it, beeps, and drives two softer indicators gated by
   motion and a second microphone. *)
let noise_at_night_detector =
  Design.make ~name:"Noise At Night Detector"
    ~description:"Alerts the parents' room to noise in a dark bedroom."
    ~paper:
      (row ~inner:10 ~exhaustive_total:6 ~exhaustive_prog:4 ~pd_total:6
         ~pd_prog:4 ())
    ~nodes:
      [
        (1, C.light_sensor);
        (2, C.sound_sensor);
        (3, C.motion_sensor);
        (4, C.sound_sensor);
        (5, C.not_gate);
        (6, C.and2);
        (7, C.wireless_tx);
        (8, C.wireless_rx);
        (9, C.trip_latch);
        (10, C.pulse_gen ~width:5);
        (11, C.prolong ~ticks:10);
        (12, C.and2);
        (13, C.delay ~ticks:10);
        (14, C.or2);
        (15, C.buzzer); (16, C.led); (17, C.led);
      ]
    ~edges:
      [
        ((1, 0), (5, 0));
        ((2, 0), (6, 0)); ((5, 0), (6, 1));
        ((6, 0), (7, 0)); ((7, 0), (8, 0));
        ((8, 0), (9, 0)); ((9, 0), (10, 0)); ((10, 0), (15, 0));
        ((8, 0), (11, 0)); ((11, 0), (12, 0)); ((3, 0), (12, 1));
        ((12, 0), (16, 0));
        ((3, 0), (13, 0)); ((13, 0), (14, 0)); ((4, 0), (14, 1));
        ((14, 0), (17, 0));
      ]
    ()

(* Two armed zones, each debouncing and latching its window OR-tree
   before radioing the house; a central latch drives siren and light; a
   tamper loop has its own siren.  The OR3 gates need three input pins so
   they can never enter a 2x2 block. *)
let two_zone_security =
  Design.make ~name:"Two-Zone Security"
    ~description:"Two armed window zones radio a central alarm latch."
    ~paper:(row ~inner:19 ~pd_total:10 ~pd_prog:3 ())
    ~nodes:
      [
        (* zone A: windows 1-3, arm switch 4 *)
        (1, C.contact_switch); (2, C.contact_switch); (3, C.contact_switch);
        (4, C.contact_switch);
        (* zone B: windows 5-7, arm switch 8 *)
        (5, C.contact_switch); (6, C.contact_switch); (7, C.contact_switch);
        (8, C.contact_switch);
        (* tamper loop contacts *)
        (9, C.contact_switch); (10, C.contact_switch); (11, C.contact_switch);
        (* zone A inner *)
        (12, C.or3); (13, C.prolong ~ticks:5); (14, C.and2);
        (15, C.trip_latch); (16, C.pulse_gen ~width:5);
        (17, C.wireless_tx); (18, C.wireless_rx);
        (* zone B inner *)
        (19, C.or3); (20, C.prolong ~ticks:5); (21, C.and2);
        (22, C.trip_latch); (23, C.pulse_gen ~width:5);
        (24, C.wireless_tx); (25, C.wireless_rx);
        (* central *)
        (26, C.or2); (27, C.trip_latch); (28, C.prolong ~ticks:20);
        (29, C.splitter2);
        (* tamper *)
        (30, C.or3);
        (* outputs *)
        (31, C.buzzer); (32, C.led); (33, C.buzzer);
      ]
    ~edges:
      [
        ((1, 0), (12, 0)); ((2, 0), (12, 1)); ((3, 0), (12, 2));
        ((12, 0), (13, 0)); ((13, 0), (14, 0)); ((4, 0), (14, 1));
        ((14, 0), (15, 0)); ((15, 0), (16, 0)); ((16, 0), (17, 0));
        ((17, 0), (18, 0));
        ((5, 0), (19, 0)); ((6, 0), (19, 1)); ((7, 0), (19, 2));
        ((19, 0), (20, 0)); ((20, 0), (21, 0)); ((8, 0), (21, 1));
        ((21, 0), (22, 0)); ((22, 0), (23, 0)); ((23, 0), (24, 0));
        ((24, 0), (25, 0));
        ((18, 0), (26, 0)); ((25, 0), (26, 1));
        ((26, 0), (27, 0)); ((27, 0), (28, 0)); ((28, 0), (29, 0));
        ((29, 0), (31, 0)); ((29, 1), (32, 0));
        ((9, 0), (30, 0)); ((10, 0), (30, 1)); ((11, 0), (30, 2));
        ((30, 0), (33, 0));
      ]
    ()

(* Five motion zones share one arm switch; every zone's AND needs the arm
   line plus its own sensor, so any two ANDs would need four input pins —
   nothing combines, matching the paper's 19 -> 19 result.  The two far
   corners reach the house through a repeater hop. *)
let motion_on_property_alert =
  Design.make ~name:"Motion on Property Alert"
    ~description:"Five armed motion zones radio per-zone indicator LEDs."
    ~paper:(row ~inner:19 ~pd_total:19 ~pd_prog:0 ())
    ~nodes:
      [
        (1, C.contact_switch);  (* arm switch *)
        (2, C.motion_sensor); (3, C.motion_sensor); (4, C.motion_sensor);
        (5, C.motion_sensor); (6, C.motion_sensor);
        (* zone 1 *)
        (7, C.and2); (8, C.wireless_tx); (9, C.wireless_rx);
        (* zone 2 *)
        (10, C.and2); (11, C.wireless_tx); (12, C.wireless_rx);
        (* zone 3 *)
        (13, C.and2); (14, C.wireless_tx); (15, C.wireless_rx);
        (* zone 4, double hop *)
        (16, C.and2); (17, C.wireless_tx); (18, C.wireless_rx);
        (19, C.wireless_tx); (20, C.wireless_rx);
        (* zone 5, double hop *)
        (21, C.and2); (22, C.wireless_tx); (23, C.wireless_rx);
        (24, C.wireless_tx); (25, C.wireless_rx);
        (* outputs *)
        (26, C.led); (27, C.led); (28, C.led); (29, C.led); (30, C.led);
      ]
    ~edges:
      [
        ((2, 0), (7, 0)); ((1, 0), (7, 1)); ((7, 0), (8, 0));
        ((8, 0), (9, 0)); ((9, 0), (26, 0));
        ((3, 0), (10, 0)); ((1, 0), (10, 1)); ((10, 0), (11, 0));
        ((11, 0), (12, 0)); ((12, 0), (27, 0));
        ((4, 0), (13, 0)); ((1, 0), (13, 1)); ((13, 0), (14, 0));
        ((14, 0), (15, 0)); ((15, 0), (28, 0));
        ((5, 0), (16, 0)); ((1, 0), (16, 1)); ((16, 0), (17, 0));
        ((17, 0), (18, 0)); ((18, 0), (19, 0)); ((19, 0), (20, 0));
        ((20, 0), (29, 0));
        ((6, 0), (21, 0)); ((1, 0), (21, 1)); ((21, 0), (22, 0));
        ((22, 0), (23, 0)); ((23, 0), (24, 0)); ((24, 0), (25, 0));
        ((25, 0), (30, 0));
      ]
    ()

(* Gate-to-gate passage monitor: entry and exit gates are processed
   locally, radioed to a central latch, which drives a warning light, a
   test-able alarm pulse, a dark-passage courtesy light, a doors OR-loop
   behind its own radio hop, and two wide (3-input) status gates that are
   too pin-hungry to be absorbed. *)
let timed_passage =
  Design.make ~name:"Timed Passage"
    ~description:"Monitors passage use between two gates with status LEDs."
    ~paper:(row ~inner:23 ~pd_total:14 ~pd_prog:5 ())
    ~nodes:
      [
        (1, C.contact_switch);  (* gate A *)
        (2, C.contact_switch);  (* gate B *)
        (3, C.light_sensor);
        (4, C.button);          (* alarm test *)
        (5, C.motion_sensor);   (* passage motion *)
        (6, C.contact_switch); (7, C.contact_switch); (8, C.contact_switch);
        (* cluster 1: gate A entry processing *)
        (9, C.pulse_gen ~width:5); (10, C.toggle); (11, C.and2);
        (12, C.delay ~ticks:10);
        (13, C.wireless_tx); (14, C.wireless_rx);
        (* cluster 2: gate B *)
        (15, C.pulse_gen ~width:5); (16, C.trip_latch); (17, C.and2);
        (18, C.wireless_tx); (19, C.wireless_rx);
        (* cluster 3: central latch *)
        (20, C.or2); (21, C.trip_latch); (22, C.prolong ~ticks:20);
        (* cluster 4: testable alarm *)
        (23, C.and2); (24, C.pulse_gen ~width:5);
        (* cluster 5: courtesy light *)
        (25, C.not_gate); (26, C.and2);
        (* unpartitionable: doors OR behind a radio hop, wide gates *)
        (27, C.or3); (28, C.wireless_tx); (29, C.wireless_rx);
        (30, C.and3); (31, C.truth_table3 ~table:0b10000000);
        (* outputs *)
        (32, C.led); (33, C.buzzer); (34, C.led); (35, C.led);
        (36, C.led); (37, C.led);
      ]
    ~edges:
      [
        (* cluster 1 *)
        ((1, 0), (9, 0)); ((9, 0), (10, 0)); ((10, 0), (11, 0));
        ((3, 0), (11, 1)); ((11, 0), (12, 0)); ((12, 0), (13, 0));
        ((13, 0), (14, 0));
        (* cluster 2 *)
        ((2, 0), (15, 0)); ((15, 0), (16, 0)); ((16, 0), (17, 0));
        ((5, 0), (17, 1)); ((17, 0), (18, 0)); ((18, 0), (19, 0));
        (* cluster 3 *)
        ((14, 0), (20, 0)); ((19, 0), (20, 1)); ((20, 0), (21, 0));
        ((21, 0), (22, 0)); ((22, 0), (32, 0));
        (* cluster 4 *)
        ((22, 0), (23, 0)); ((4, 0), (23, 1)); ((23, 0), (24, 0));
        ((24, 0), (33, 0));
        (* cluster 5 *)
        ((3, 0), (25, 0)); ((25, 0), (26, 0)); ((5, 0), (26, 1));
        ((26, 0), (34, 0));
        (* doors loop *)
        ((6, 0), (27, 0)); ((7, 0), (27, 1)); ((8, 0), (27, 2));
        ((27, 0), (28, 0)); ((28, 0), (29, 0)); ((29, 0), (35, 0));
        (* wide status gates *)
        ((14, 0), (30, 0)); ((19, 0), (30, 1)); ((5, 0), (30, 2));
        ((30, 0), (36, 0));
        ((27, 0), (31, 0)); ((25, 0), (31, 1)); ((5, 0), (31, 2));
        ((31, 0), (37, 0));
      ]
    ()

let table1 =
  [
    ignition_illuminator; night_lamp_controller; entry_gate_detector;
    carpool_alert; cafeteria_food_alert; podium_timer_2;
    any_window_open_alarm; two_button_light; doorbell_extender_1;
    doorbell_extender_2; podium_timer_3; noise_at_night_detector;
    two_zone_security; motion_on_property_alert; timed_passage;
  ]

(* The Figure 1 system: door contact AND NOT light ("open at night"). *)
let garage_open_at_night =
  Design.make ~name:"Garage Open At Night"
    ~description:"Bedroom LED when the garage door is open after dark."
    ~nodes:
      [
        (1, C.contact_switch);
        (2, C.light_sensor);
        (3, C.truth_table2 ~table:0b0100);  (* a AND NOT b *)
        (4, C.led);
      ]
    ~edges:[ ((1, 0), (3, 0)); ((2, 0), (3, 1)); ((3, 0), (4, 0)) ]
    ()

let sleepwalk_detector =
  Design.make ~name:"Sleepwalk Detector"
    ~description:"Hallway motion in the dark wakes the parents' buzzer."
    ~nodes:
      [
        (1, C.motion_sensor);
        (2, C.light_sensor);
        (3, C.not_gate);
        (4, C.and2);
        (5, C.prolong ~ticks:10);
        (6, C.buzzer);
      ]
    ~edges:
      [
        ((2, 0), (3, 0)); ((1, 0), (4, 0)); ((3, 0), (4, 1));
        ((4, 0), (5, 0)); ((5, 0), (6, 0));
      ]
    ()

let copy_machine_in_use =
  Design.make ~name:"Copy Machine In Use"
    ~description:"Hallway LED shows whether the copy room is occupied."
    ~nodes:
      [
        (1, C.motion_sensor);
        (2, C.prolong ~ticks:30);
        (3, C.led);
      ]
    ~edges:[ ((1, 0), (2, 0)); ((2, 0), (3, 0)) ]
    ()

let conference_room_in_use =
  Design.make ~name:"Conference Room In Use"
    ~description:"Motion plus sound marks the conference room in use."
    ~nodes:
      [
        (1, C.motion_sensor);
        (2, C.sound_sensor);
        (3, C.prolong ~ticks:20);
        (4, C.prolong ~ticks:20);
        (5, C.and2);
        (6, C.led);
      ]
    ~edges:
      [
        ((1, 0), (3, 0)); ((2, 0), (4, 0)); ((3, 0), (5, 0));
        ((4, 0), (5, 1)); ((5, 0), (6, 0));
      ]
    ()

(* "an office worker may want to know whether mail exists for him in the
   mailroom" (§1): a mailbox flap latch, reset by the collect button,
   radioed to a desk LED.  Nothing can combine — the latch's only
   neighbours are the radio link and primary inputs. *)
let mailbox_alert =
  Design.make ~name:"Mailbox Alert"
    ~description:"Desk LED remembers mail until the collect button resets."
    ~nodes:
      [
        (1, C.contact_switch);  (* mailbox flap *)
        (2, C.button);          (* collected *)
        (3, C.trip_reset);
        (4, C.wireless_tx);
        (5, C.wireless_rx);
        (6, C.led);
      ]
    ~edges:
      [
        ((1, 0), (3, 0)); ((2, 0), (3, 1)); ((3, 0), (4, 0));
        ((4, 0), (5, 0)); ((5, 0), (6, 0));
      ]
    ()

let applications =
  [
    garage_open_at_night; sleepwalk_detector; copy_machine_in_use;
    conference_room_in_use; mailbox_alert;
  ]

let all = table1 @ applications

(* Lookup is forgiving about shell-friendly spellings: names compare
   lowercased with spaces/dashes collapsed to underscores, so
   "entry_gate_detector" names the Entry Gate Detector.  A normalized
   unique prefix also resolves ("entry_gate"); ambiguous prefixes and
   unknown names return None. *)
let normalize name =
  String.map
    (fun c -> if c = ' ' || c = '-' then '_' else Char.lowercase_ascii c)
    name

let find name =
  let wanted = normalize name in
  match
    List.find_opt (fun d -> String.equal (normalize d.Design.name) wanted) all
  with
  | Some d -> Some d
  | None ->
    (match
       List.filter
         (fun d -> String.starts_with ~prefix:wanted (normalize d.Design.name))
         all
     with
     | [ d ] -> Some d
     | [] | _ :: _ -> None)
