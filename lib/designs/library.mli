(** The 15 real eBlock systems of Table 1 (reconstructions; see DESIGN.md
    §3) and the motivating applications of §1.

    Node-numbering convention in every design: sensors first, then inner
    blocks, then primary outputs, so the inner-block ids form one
    contiguous range (as in the paper's Figure 5). *)

(** {1 Table 1 designs, in table order} *)

val ignition_illuminator : Design.t
val night_lamp_controller : Design.t
val entry_gate_detector : Design.t
val carpool_alert : Design.t
val cafeteria_food_alert : Design.t
val podium_timer_2 : Design.t
val any_window_open_alarm : Design.t
val two_button_light : Design.t
val doorbell_extender_1 : Design.t
val doorbell_extender_2 : Design.t
val podium_timer_3 : Design.t
val noise_at_night_detector : Design.t
val two_zone_security : Design.t
val motion_on_property_alert : Design.t
val timed_passage : Design.t

val table1 : Design.t list
(** The 15 designs above, in Table 1 order. *)

(** {1 Motivating applications (§1)} *)

val garage_open_at_night : Design.t
(** The Figure 1 system: contact switch + light sensor + 2-input logic +
    LED. *)

val sleepwalk_detector : Design.t
val copy_machine_in_use : Design.t
val conference_room_in_use : Design.t
val mailbox_alert : Design.t

val applications : Design.t list

val all : Design.t list
(** [table1 @ applications]. *)

val find : string -> Design.t option
(** Lookup by name among {!all}.  Names compare case-insensitively with
    spaces and dashes collapsed to underscores, so shell spellings like
    ["entry_gate_detector"] work; a normalized prefix also resolves when
    it names exactly one design (["entry_gate"]).  [None] on unknown or
    ambiguous names. *)
