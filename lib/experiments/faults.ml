module Graph = Netlist.Graph

type config = {
  seed : int;
  trials : int;
  drop_rates : float list;
  steps : int;
  spacing : int;
  settle_limit : int;
}

let default_config =
  {
    seed = 11;
    trials = 20;
    drop_rates = [ 0.02; 0.05; 0.10 ];
    steps = 30;
    spacing = 25;
    settle_limit = 20_000;
  }

type tally = {
  identical : int;
  recovered : int;
  wrong : int;
  diverged : int;
}

let empty_tally = { identical = 0; recovered = 0; wrong = 0; diverged = 0 }

let count outcome t =
  match outcome with
  | Sim.Degrade.Identical -> { t with identical = t.identical + 1 }
  | Sim.Degrade.Glitch_recovered -> { t with recovered = t.recovered + 1 }
  | Sim.Degrade.Wrong_value -> { t with wrong = t.wrong + 1 }
  | Sim.Degrade.Diverged -> { t with diverged = t.diverged + 1 }

type row = {
  design : string;
  drop : float;
  trials : int;
  flat_edges : int;
  part_edges : int;
  flat : tally;
  part : tally;
  flat_injected : int;
  part_injected : int;
}

let run_network ?(config = default_config) ~name g =
  let result, _ = Codegen.Replace.synthesize g in
  let g' = result.Codegen.Replace.network in
  let script =
    Sim.Stimulus.random
      ~rng:(Prng.create config.seed)
      ~sensors:(Graph.sensors g) ~steps:config.steps ~spacing:config.spacing
  in
  (* One seed stream per network keeps the table stable when a single
     design or rate is re-run in isolation. *)
  let seed_rng = Prng.create (Hashtbl.hash (config.seed, name)) in
  List.map
    (fun drop ->
      let tally_of net =
        (* Per-trial injection stats aggregate through Fault.merge (the
           field-wise sum), not ad-hoc int accumulation, so the row can
           report any fault class later without touching this loop. *)
        let rec loop t injected remaining =
          if remaining = 0 then (t, Sim.Fault.total injected)
          else begin
            let plan =
              Sim.Fault.drop_all ~seed:(Prng.int seed_rng 1_000_000_000) drop
            in
            let run =
              Sim.Degrade.classify ~settle_limit:config.settle_limit
                ~faults:plan net script
            in
            loop
              (count run.Sim.Degrade.outcome t)
              (Sim.Fault.merge injected run.Sim.Degrade.injected)
              (remaining - 1)
          end
        in
        loop empty_tally Sim.Fault.zero config.trials
      in
      let flat, flat_injected = tally_of g in
      let part, part_injected = tally_of g' in
      {
        design = name;
        drop;
        trials = config.trials;
        flat_edges = Graph.edge_count g;
        part_edges = Graph.edge_count g';
        flat;
        part;
        flat_injected;
        part_injected;
      })
    config.drop_rates

let run_design ?config d =
  run_network ?config ~name:d.Designs.Design.name d.Designs.Design.network

let run ?config () =
  List.concat_map (run_design ?config) Designs.Library.table1

let headers =
  [
    "Design"; "Drop"; "Edges"; "Edges'"; "Flat ok/gl/wr/dv";
    "Part ok/gl/wr/dv"; "Inj"; "Inj'";
  ]

let tally_cell t =
  Printf.sprintf "%d/%d/%d/%d" t.identical t.recovered t.wrong t.diverged

let row_cells r =
  [
    r.design;
    Printf.sprintf "%.0f %%" (100. *. r.drop);
    string_of_int r.flat_edges;
    string_of_int r.part_edges;
    tally_cell r.flat;
    tally_cell r.part;
    string_of_int r.flat_injected;
    string_of_int r.part_injected;
  ]

let to_table rows =
  Report.Table.render ~headers ~rows:(List.map row_cells rows) ()

let to_csv rows =
  Report.Table.render_csv ~headers ~rows:(List.map row_cells rows)

let summary rows =
  let points = List.length rows in
  let no_worse =
    List.length
      (List.filter (fun r -> r.part.identical >= r.flat.identical) rows)
  in
  let mean_pct f =
    if points = 0 then 0.
    else
      100.
      *. List.fold_left
           (fun acc r ->
             acc +. (float_of_int (f r) /. float_of_int (max 1 r.trials)))
           0. rows
      /. float_of_int points
  in
  Printf.sprintf
    "partitioned no worse on %d/%d design-rate points (mean clean runs: \
     flat %.0f %%, partitioned %.0f %%)"
    no_worse points
    (mean_pct (fun r -> r.flat.identical))
    (mean_pct (fun r -> r.part.identical))
