(** Fault-tolerance experiment: flat vs PareDown-partitioned networks.

    Collapsing inner blocks onto one programmable block removes physical
    hops, and every hop is a fault site — so partitioning should change
    (usually improve) fault exposure, a claim the paper's cost metrics
    cannot see.  For each Table 1 design this experiment replays one
    stimulus script over the original network and its synthesised
    counterpart under a sweep of seeded packet-drop plans and tallies the
    {!Sim.Degrade} outcome of every trial.

    Everything is derived deterministically from [config.seed]; two runs
    with the same configuration produce identical tables. *)

type config = {
  seed : int;  (** drives the stimulus script and every trial's plan *)
  trials : int;  (** fault-plan seeds per (design, drop rate) point *)
  drop_rates : float list;
  steps : int;  (** sensor flips in the stimulus script *)
  spacing : int;
  settle_limit : int;  (** per-step event budget before [Diverged] *)
}

val default_config : config

type tally = {
  identical : int;
  recovered : int;
  wrong : int;
  diverged : int;
}

type row = {
  design : string;
  drop : float;
  trials : int;
  flat_edges : int;  (** fault sites in the original network *)
  part_edges : int;  (** fault sites after synthesis *)
  flat : tally;
  part : tally;
  flat_injected : int;  (** faults that struck, summed over trials *)
  part_injected : int;
}

val run_network :
  ?config:config -> name:string -> Netlist.Graph.t -> row list
(** One row per drop rate.  Synthesises the partitioned counterpart with
    {!Codegen.Replace.synthesize} under its default configuration. *)

val run_design : ?config:config -> Designs.Design.t -> row list

val run : ?config:config -> unit -> row list
(** Every Table 1 design. *)

val to_table : row list -> string
val to_csv : row list -> string

val summary : row list -> string
(** One line: on how many (design, rate) points the partitioned network
    was at least as fault-tolerant (no smaller identical tally), and the
    mean clean-outcome percentage on each side. *)
