type config = {
  seed : int;
  seeds : int;
  inner_min : int;
  inner_max : int;
  verify : Codegen.Verify.config;
}

let default_config =
  {
    seed = 2005;
    seeds = 50;
    inner_min = 6;
    inner_max = 16;
    verify = Codegen.Verify.default_config;
  }

type row = {
  seed : int;
  inner : int;
  partitions : int;
  tally : Codegen.Verify.tally;
  failure : string option;
}

let check_one (config : config) index =
  let seed = config.seed + index in
  let span = config.inner_max - config.inner_min + 1 in
  let inner = config.inner_min + (index mod span) in
  let g = Randgen.Generator.generate ~rng:(Prng.create seed) ~inner () in
  let sol = (Core.Paredown.run g).Core.Paredown.solution in
  let report = Codegen.Verify.check_solution ~config:config.verify g sol in
  let failure =
    List.find_map
      (fun ((_ : Core.Partition.t), status) ->
        match status with
        | Codegen.Verify.Failed _ ->
          Some (Format.asprintf "%a" Codegen.Verify.pp_status status)
        | _ -> None)
      report.Codegen.Verify.results
  in
  {
    seed;
    inner;
    partitions = Core.Solution.programmable_count sol;
    tally = Codegen.Verify.tally report;
    failure;
  }

let run ?(config = default_config) ~jobs () =
  (* every item is self-contained (seed + index only), so the Parallel
     contract holds and any --jobs produces the same rows *)
  Parallel.map ~jobs (check_one config) (List.init config.seeds Fun.id)

let failed_seeds rows =
  List.filter_map
    (fun r -> if r.tally.Codegen.Verify.failed > 0 then Some r.seed else None)
    rows

let add_tally (a : Codegen.Verify.tally) (b : Codegen.Verify.tally) =
  Codegen.Verify.
    {
      proven = a.proven + b.proven;
      bounded = a.bounded + b.bounded;
      cosim_passed = a.cosim_passed + b.cosim_passed;
      failed = a.failed + b.failed;
      skipped = a.skipped + b.skipped;
    }

let zero_tally =
  Codegen.Verify.
    { proven = 0; bounded = 0; cosim_passed = 0; failed = 0; skipped = 0 }

let headers =
  [ "Inner"; "Designs"; "Parts"; "Proven"; "Bounded"; "Cosim"; "Failed";
    "Skipped" ]

let to_table rows =
  let sizes = List.sort_uniq Int.compare (List.map (fun r -> r.inner) rows) in
  let cells =
    List.map
      (fun inner ->
        let group = List.filter (fun r -> r.inner = inner) rows in
        let parts = List.fold_left (fun a r -> a + r.partitions) 0 group in
        let t = List.fold_left (fun a r -> add_tally a r.tally) zero_tally group in
        [
          string_of_int inner;
          string_of_int (List.length group);
          string_of_int parts;
          string_of_int t.Codegen.Verify.proven;
          string_of_int t.Codegen.Verify.bounded;
          string_of_int t.Codegen.Verify.cosim_passed;
          string_of_int t.Codegen.Verify.failed;
          string_of_int t.Codegen.Verify.skipped;
        ])
      sizes
  in
  Report.Table.render ~headers ~rows:cells ()

let csv_headers =
  [ "seed"; "inner"; "partitions"; "proven"; "bounded"; "cosim_passed";
    "failed"; "skipped"; "failure" ]

let to_csv rows =
  Report.Table.render_csv ~headers:csv_headers
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.seed;
             string_of_int r.inner;
             string_of_int r.partitions;
             string_of_int r.tally.Codegen.Verify.proven;
             string_of_int r.tally.Codegen.Verify.bounded;
             string_of_int r.tally.Codegen.Verify.cosim_passed;
             string_of_int r.tally.Codegen.Verify.failed;
             string_of_int r.tally.Codegen.Verify.skipped;
             Option.value r.failure ~default:"";
           ])
         rows)

let summary ?race_limited rows =
  let t = List.fold_left (fun a r -> add_tally a r.tally) zero_tally rows in
  let parts = List.fold_left (fun a r -> a + r.partitions) 0 rows in
  let base =
    Printf.sprintf
      "%d designs, %d partitions: %d proven, %d bounded, %d cosim-passed, \
       %d failed, %d skipped"
      (List.length rows) parts t.Codegen.Verify.proven
      t.Codegen.Verify.bounded t.Codegen.Verify.cosim_passed
      t.Codegen.Verify.failed t.Codegen.Verify.skipped
  in
  let base =
    match race_limited with
    | Some n -> Printf.sprintf "%s, %d race-limited script(s)" base n
    | None -> base
  in
  match failed_seeds rows with
  | [] -> base ^ " — zero failed verdicts"
  | seeds ->
    Printf.sprintf "%s — FAILING SEEDS: %s" base
      (String.concat ", " (List.map string_of_int seeds))
