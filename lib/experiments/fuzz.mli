(** Verification fuzzing: sweep Verify v2 over random designs.

    Generates random eBlock designs ({!Randgen.Generator}), partitions
    each with PareDown, and runs every partition through the three-tier
    verifier ({!Codegen.Verify}).  Nothing is silently skipped: every
    partition lands in exactly one tally bucket (proven / bounded /
    cosim-passed / failed / skipped), so a single non-zero [failed]
    column is a found merge bug with a shrunk counterexample.

    Deterministic per [config.seed]: design [i] derives everything from
    [seed + i], so runs parallelise ({!Parallel.map}) with byte-identical
    tables at any [--jobs]. *)

type config = {
  seed : int;  (** base seed; design [i] uses [seed + i] *)
  seeds : int;  (** number of designs to generate and verify *)
  inner_min : int;  (** inner-block counts cycle over this range... *)
  inner_max : int;  (** ...so one sweep covers several design sizes *)
  verify : Codegen.Verify.config;
}

val default_config : config
(** seed 2005, 50 designs, inner blocks cycling 6..16, default verifier
    budgets. *)

type row = {
  seed : int;  (** the per-design seed (base + index) *)
  inner : int;
  partitions : int;
  tally : Codegen.Verify.tally;
  failure : string option;
      (** first failing partition's rendered status, when any *)
}

val run : ?config:config -> jobs:int -> unit -> row list
(** One row per design, in seed order regardless of [jobs]. *)

val failed_seeds : row list -> int list
(** Seeds of designs with at least one [Failed] partition. *)

val to_table : row list -> string
(** Aggregated per inner-block count (one row per size in the cycle). *)

val to_csv : row list -> string
(** Per-design rows, full detail. *)

val summary : ?race_limited:int -> row list -> string
(** One line: per-tier verdict totals (proven / bounded / cosim-passed /
    failed / skipped), plus the failing seeds when any.  [race_limited]
    appends the sweep's [codegen.cosim.race_limited_scripts] reading —
    scripts checked under the baseline engine only because the rewrite
    surfaced a timing race latent in the flat design. *)
