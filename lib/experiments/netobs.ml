module Graph = Netlist.Graph

(* This module shadows nothing itself, but the reliability library's
   name is shadowed by Experiments.Reliability, so it is reached
   through the dune root module (same as reliability.ml). *)
module Estimator = Libs.Reliability.Estimator
module Family = Libs.Reliability.Family

type config = {
  seed : int;
  trials : int;
  family : Family.t option;
  steps : int;
  spacing : int;
  settle_limit : int;
}

let default_config =
  {
    seed = 7;
    trials = 8;
    family = Some (Family.Drop { rate = 0.05 });
    steps = 20;
    spacing = 20;
    settle_limit = 20_000;
  }

type observation = {
  name : string;
  network : Graph.t;
  family : Family.t option;
  seed : int;
  trials : int;
  telemetry : Sim.Telemetry.t;
  identical : int;
  recovered : int;
  wrong : int;
  diverged : int;
  severity : float;
  blame : Estimator.blame;
}

(* Same derivation as Estimator.script: the stimulus stream is distinct
   from the trial-seed stream, and sensors keep their ids under
   synthesis rewriting so one script drives flat and partitioned
   networks alike. *)
let script (config : config) g =
  let rng = Prng.create ((config.seed * 2) + 1) in
  Sim.Stimulus.random ~rng ~sensors:(Graph.sensors g) ~steps:config.steps
    ~spacing:config.spacing

let trial_plans (config : config) family g =
  let seed_rng = Prng.create config.seed in
  (* explicit recursion: the seed stream must be consumed in trial
     order (List.init's application order is unspecified) *)
  let rec draw n acc =
    if n = 0 then List.rev acc
    else
      draw (n - 1)
        (Family.plan family ~seed:(Prng.int seed_rng 0x3FFF_FFFF) g :: acc)
  in
  draw config.trials []

let observe_network ?(jobs = 1) ?(config = default_config) ~name g =
  let script = script config g in
  match config.family with
  | None ->
    (* Fault-free observation: one clean instrumented replay. *)
    let telemetry = Sim.Telemetry.create () in
    let engine = Sim.Engine.create ~telemetry g in
    ignore (Sim.Stimulus.settled_outputs engine script);
    {
      name;
      network = g;
      family = None;
      seed = config.seed;
      trials = 1;
      telemetry;
      identical = 1;
      recovered = 0;
      wrong = 0;
      diverged = 0;
      severity = 0.;
      blame = Estimator.empty_blame;
    }
  | Some family ->
    if config.trials <= 0 then invalid_arg "Netobs: trials must be positive";
    let reference = Sim.Degrade.reference g script in
    let plans = trial_plans config family g in
    (* Plans are pre-drawn in trial order and Parallel.map returns
       results in input order, so the merged telemetry, tally, and
       blame below cannot depend on [jobs]. *)
    let trials_run =
      Parallel.map ~jobs
        (fun faults ->
          let telemetry = Sim.Telemetry.create () in
          let run =
            Sim.Degrade.classify_against ~settle_limit:config.settle_limit
              ~telemetry ~reference g script ~faults
          in
          (run, telemetry))
        plans
    in
    let telemetry =
      List.fold_left
        (fun acc (_, tel) -> Sim.Telemetry.merge acc tel)
        (Sim.Telemetry.create ())
        trials_run
    in
    let count o =
      List.length
        (List.filter (fun (r, _) -> r.Sim.Degrade.outcome = o) trials_run)
    in
    let severity =
      List.fold_left
        (fun acc (r, _) -> acc +. Sim.Degrade.score r.Sim.Degrade.outcome)
        0. trials_run
      /. float_of_int config.trials
    in
    {
      name;
      network = g;
      family = Some family;
      seed = config.seed;
      trials = config.trials;
      telemetry;
      identical = count Sim.Degrade.Identical;
      recovered = count Sim.Degrade.Glitch_recovered;
      wrong = count Sim.Degrade.Wrong_value;
      diverged = count Sim.Degrade.Diverged;
      severity;
      blame =
        Estimator.blame_of_trials
          (List.map
             (fun (r, tel) ->
               (Sim.Degrade.score r.Sim.Degrade.outcome, tel))
             trials_run);
    }

let record_timeline ?(config = default_config) g =
  let script = script config g in
  let telemetry = Sim.Telemetry.create ~timeline:true () in
  let faults =
    (* The first trial's plan — the timeline shows the same perturbed
       run the first Monte-Carlo trial classified. *)
    Option.map (fun family -> List.hd (trial_plans config family g))
      config.family
  in
  let engine =
    match faults with
    | None -> Sim.Engine.create ~telemetry g
    | Some faults -> Sim.Engine.create ~faults ~telemetry g
  in
  let ordered =
    List.stable_sort
      (fun a b -> Int.compare a.Sim.Stimulus.time b.Sim.Stimulus.time)
      script
  in
  (* Tolerant replay: a perturbed run that livelocks still yields the
     timeline up to the event limit (mirrors Degrade's faulty replay). *)
  let rec loop = function
    | [] -> ()
    | step :: rest ->
      let time = max step.Sim.Stimulus.time (Sim.Engine.now engine) in
      Sim.Engine.set_sensor_at engine ~time step.Sim.Stimulus.sensor
        step.Sim.Stimulus.value;
      (match Sim.Engine.settle ~limit:config.settle_limit engine with
       | () -> loop rest
       | exception Sim.Engine.Event_limit_exceeded _ -> ())
  in
  loop ordered;
  telemetry

let report_json o =
  let num n = Obs.Json.Num (float_of_int n) in
  let extra =
    [
      ( "family",
        match o.family with
        | Some f -> Obs.Json.Str (Family.to_string f)
        | None -> Obs.Json.Null );
      ("seed", num o.seed);
      ("trials", num o.trials);
      ( "tally",
        Obs.Json.Obj
          [
            ("identical", num o.identical);
            ("recovered", num o.recovered);
            ("wrong", num o.wrong);
            ("diverged", num o.diverged);
          ] );
      ("severity", Obs.Json.Num o.severity);
      ("blame", Estimator.blame_to_json o.blame);
    ]
  in
  Sim.Telemetry.report_json ~name:o.name ~extra o.network o.telemetry

let write_report o path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string ~indent:2 (report_json o));
      output_char oc '\n')

(* --- Flat vs partitioned link utilization over Table 1 ---------------- *)

type cmp_row = {
  design : string;
  flat_links : int;
  part_links : int;
  flat_sends : int;
  part_sends : int;
  flat_hot : string;
  flat_hot_sends : int;
  part_hot : string;
  part_hot_sends : int;
  flat_p99 : float;
  part_p99 : float;
}

let utilization o =
  let links = Sim.Telemetry.links o.telemetry in
  let sends =
    List.fold_left
      (fun acc (_, s) -> acc + s.Sim.Telemetry.sends)
      0 links
  in
  let hot, hot_sends =
    List.fold_left
      (fun ((_, best) as acc) (e, s) ->
        if s.Sim.Telemetry.sends > best then
          (Graph.edge_to_string e, s.Sim.Telemetry.sends)
        else acc)
      ("-", 0) links
  in
  let p99 =
    List.fold_left
      (fun acc (_, s) ->
        Float.max acc s.Sim.Telemetry.latency.Obs.Histogram.s_p99)
      0. links
  in
  (List.length links, sends, hot, hot_sends, p99)

let compare_network ?jobs ?(config = default_config) ~name g =
  let flat = observe_network ?jobs ~config ~name g in
  let result, _ = Codegen.Replace.synthesize g in
  let part =
    observe_network ?jobs ~config ~name result.Codegen.Replace.network
  in
  let flat_links, flat_sends, flat_hot, flat_hot_sends, flat_p99 =
    utilization flat
  in
  let part_links, part_sends, part_hot, part_hot_sends, part_p99 =
    utilization part
  in
  ( {
      design = name;
      flat_links;
      part_links;
      flat_sends;
      part_sends;
      flat_hot;
      flat_hot_sends;
      part_hot;
      part_hot_sends;
      flat_p99;
      part_p99;
    },
    flat,
    part )

let compare_design ?jobs ?config d =
  compare_network ?jobs ?config ~name:d.Designs.Design.name
    d.Designs.Design.network

let run ?jobs ?config () =
  List.map
    (fun d ->
      let row, _, _ = compare_design ?jobs ?config d in
      row)
    Designs.Library.table1

let headers =
  [
    "Design"; "Links"; "Links'"; "Sends"; "Sends'"; "Hot link"; "Hot";
    "Hot link'"; "Hot'"; "p99 tk"; "p99 tk'";
  ]

let row_cells r =
  [
    r.design;
    string_of_int r.flat_links;
    string_of_int r.part_links;
    string_of_int r.flat_sends;
    string_of_int r.part_sends;
    r.flat_hot;
    string_of_int r.flat_hot_sends;
    r.part_hot;
    string_of_int r.part_hot_sends;
    Printf.sprintf "%.1f" r.flat_p99;
    Printf.sprintf "%.1f" r.part_p99;
  ]

let to_table rows =
  Report.Table.render ~headers ~rows:(List.map row_cells rows) ()

let to_csv rows =
  Report.Table.render_csv ~headers ~rows:(List.map row_cells rows)

let summary rows =
  let n = List.length rows in
  let fewer =
    List.length (List.filter (fun r -> r.part_sends <= r.flat_sends) rows)
  in
  let tot f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let hottest f = List.fold_left (fun acc r -> max acc (f r)) 0 rows in
  Printf.sprintf
    "partitioned network sends no more link packets on %d/%d designs \
     (total sends: flat %d, partitioned %d; busiest single link: flat %d, \
     partitioned %d)"
    fewer n
    (tot (fun r -> r.flat_sends))
    (tot (fun r -> r.part_sends))
    (hottest (fun r -> r.flat_hot_sends))
    (hottest (fun r -> r.part_hot_sends))
