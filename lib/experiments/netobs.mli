(** The network observatory: instrumented Monte-Carlo observation of a
    (possibly synthesized) network under a fault family, and the
    flat-vs-partitioned link-utilization comparison over Table 1.

    This is the driver behind [paredown observe] and
    [run_experiments netobs]: it replays the estimator's reproducible
    stimulus script under [trials] seeded fault plans with a
    {!Sim.Telemetry} collector armed per trial, merges the collectors
    deterministically, and attributes the measured severity to links
    and nodes via {!Libs.Reliability.Estimator.blame_of_trials}.
    Everything is byte-identical across [--jobs N] (see
    doc/network-telemetry.md). *)

module Graph = Netlist.Graph
module Estimator = Libs.Reliability.Estimator
module Family = Libs.Reliability.Family

type config = {
  seed : int;  (** roots both the stimulus script and the trial seeds *)
  trials : int;  (** Monte-Carlo replays (must be positive) *)
  family : Family.t option;
      (** fault family instantiated per trial; [None] = one clean
          instrumented replay *)
  steps : int;  (** stimulus script length (sensor flips) *)
  spacing : int;  (** maximum ticks between flips *)
  settle_limit : int;  (** per-step event budget of each replay *)
}

val default_config : config
(** 8 trials of [drop:0.05] over a 20-flip script (spacing 20), seed 7,
    settle limit 20_000. *)

type observation = {
  name : string;
  network : Graph.t;
  family : Family.t option;
  seed : int;
  trials : int;
  telemetry : Sim.Telemetry.t;  (** merged across all trials *)
  identical : int;
  recovered : int;
  wrong : int;
  diverged : int;  (** per-outcome trial counts *)
  severity : float;  (** mean per-trial degradation score *)
  blame : Estimator.blame;  (** components sum (±ε) to [severity] *)
}

val observe_network :
  ?jobs:int -> ?config:config -> name:string -> Graph.t -> observation

val record_timeline : ?config:config -> Graph.t -> Sim.Telemetry.t
(** One extra replay of the first trial's plan (the clean script when
    [family] is [None]) with timeline recording on, for
    {!Sim.Telemetry.write_timeline}.  Livelocking replays are truncated
    at the event budget rather than raised. *)

val report_json : observation -> Obs.Json.t
(** The [paredown-netobs] report with the observation header spliced in
    (family, seed, trials, tally, severity, blame). *)

val write_report : observation -> string -> unit
(** Pretty-printed {!report_json} to a file. *)

(** {1 Flat vs partitioned link utilization} *)

type cmp_row = {
  design : string;
  flat_links : int;
  part_links : int;  (** directed links carrying at least one packet *)
  flat_sends : int;
  part_sends : int;  (** total packets entering links, summed over trials *)
  flat_hot : string;
  flat_hot_sends : int;  (** busiest link and its send count *)
  part_hot : string;
  part_hot_sends : int;
  flat_p99 : float;
  part_p99 : float;  (** worst per-link p99 delivery latency, ticks *)
}

val compare_network :
  ?jobs:int -> ?config:config -> name:string -> Graph.t ->
  cmp_row * observation * observation
(** Observe the network flat, synthesize it
    ({!Codegen.Replace.synthesize}), observe the result under the same
    script and trial seeds, and compare.  Returns the row plus both
    observations (the CLI reuses them for reports). *)

val compare_design :
  ?jobs:int -> ?config:config -> Designs.Design.t ->
  cmp_row * observation * observation

val run : ?jobs:int -> ?config:config -> unit -> cmp_row list
(** {!compare_network} over every Table 1 design. *)

val headers : string list
val to_table : cmp_row list -> string
val to_csv : cmp_row list -> string

val summary : cmp_row list -> string
(** e.g. ["partitioned network sends no more link packets on 13/15
    designs (...)"]. *)
