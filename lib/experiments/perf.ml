(* The perf suite: one small, deterministic workload per bench group,
   shared by bench/main.ml (BENCH_paredown.json) and the `paredown
   perf` CLI.  Each group exercises the same code path as the
   corresponding Bechamel group, sized so a full record stays in the
   seconds. *)

module Graph = Netlist.Graph

type group = {
  name : string;
  doc : string;
  run : unit -> unit;
}

let keep : 'a -> unit = ignore

let paredown_solution g = (Core.Paredown.run g).Core.Paredown.solution

let random_design ~seed ~inner =
  Randgen.Generator.generate ~rng:(Prng.create seed) ~inner ()

(* Shared inputs, built outside the timed region (see [record]'s warmup
   pass, which forces every lazy before the clocks start). *)
let library_networks =
  lazy (List.map (fun d -> d.Designs.Design.network) Designs.Library.table1)

let g10 = lazy (random_design ~seed:2 ~inner:10)
let g20 = lazy (random_design ~seed:3 ~inner:20)
let g45 = lazy (random_design ~seed:4 ~inner:45)
let g100 = lazy (random_design ~seed:100 ~inner:100)
let g150 = lazy (random_design ~seed:4 ~inner:150)
let w40 = lazy (Randgen.Generator.worst_case ~inner:40)

let podium = lazy Designs.Library.podium_timer_3.Designs.Design.network

let podium_members = Netlist.Node_id.set_of_list [ 2; 3; 4; 5 ]

let podium_plan =
  lazy (Codegen.Plan.build (Lazy.force podium) podium_members)

let podium_solution = lazy (paredown_solution (Lazy.force podium))

let two_zone = lazy Designs.Library.two_zone_security.Designs.Design.network

let two_zone_script =
  lazy
    (let g = Lazy.force two_zone in
     Sim.Stimulus.random ~rng:(Prng.create 21) ~sensors:(Graph.sensors g)
       ~steps:30 ~spacing:15)

let merged_source =
  lazy
    (Behavior.Ast.program_to_string
       (Lazy.force podium_plan).Codegen.Plan.program)

(* Long pre-scheduled stimulus on a mid-sized design: the settle drains
   ~25k events through every hot structure (wheel, overflow, compiled
   closures), which is the event-throughput pattern the >=10x target is
   about.  Short scripts make engine construction the measurement, and
   a shallow pre-scheduled backlog understates the interpreter's log-n
   resident-queue cost (the compiled overflow drains by head walk). *)
let kernel_script =
  lazy
    (let g = Lazy.force g150 in
     Sim.Stimulus.random ~rng:(Prng.create 41) ~sensors:(Graph.sensors g)
       ~steps:8000 ~spacing:5)

let g100_dense = lazy (Netlist.Dense.of_graph (Lazy.force g100))

let g100_half =
  lazy
    (let g = Lazy.force g100 in
     let d = Lazy.force g100_dense in
     let part = Graph.partitionable_nodes g in
     let half = List.filteri (fun i _ -> i mod 2 = 0) part in
     Netlist.Dense.set_of_ids d (Netlist.Node_id.set_of_list half))

let service_batch =
  lazy
    (let request ~id ~backend name =
       Libs.Service.Protocol.render_request
         {
           Libs.Service.Protocol.id;
           op = Libs.Service.Protocol.Partition { backend; deadline_s = None };
           design = Some name;
           design_text = None;
           inputs = 2;
           outputs = 2;
         }
     in
     let names =
       List.map (fun d -> d.Designs.Design.name) Designs.Library.table1
     in
     let n = ref 0 in
     let batch backend =
       List.map
         (fun name ->
           incr n;
           request ~id:(Printf.sprintf "r%d" !n) ~backend name)
         names
     in
     let cold =
       List.concat_map
         (fun _ -> batch Libs.Service.Oneshot.Paredown)
         [ 1; 2; 3; 4; 5; 6 ]
       @ batch Libs.Service.Oneshot.Aggregation
     in
     (* Two drain-delimited batches in one stream: the second replays
        the first against the now-warm in-memory cache, so the recorded
        service.cache_hits / cache_misses split is the real hit-rate
        axis (in-batch duplicates dedupe before they reach the cache
        and would otherwise record as misses). *)
     cold
     @ [ Libs.Service.Protocol.drain_frame ]
     @ cold
     @ [ Libs.Service.Protocol.drain_frame ])

let groups =
  [
    { name = "kernel";
      doc = "Dense cut/convexity queries on a 100-inner design";
      run =
        (fun () ->
          let d = Lazy.force g100_dense in
          let s = Lazy.force g100_half in
          for _ = 1 to 1000 do
            keep (Netlist.Dense.pins_used d s);
            keep (Netlist.Dense.is_convex d s)
          done) };
    { name = "exhaustive";
      doc = "Exhaustive bin-assignment search on a 10-inner random design";
      run =
        (fun () ->
          keep (Core.Exhaustive.run (Lazy.force g10)).Core.Exhaustive.solution) };
    { name = "table1"; doc = "PareDown over the 15 library designs";
      run =
        (fun () ->
          List.iter
            (fun g -> keep (paredown_solution g))
            (Lazy.force library_networks)) };
    { name = "table2"; doc = "PareDown on random designs (10/20/45 inner)";
      run =
        (fun () ->
          keep (paredown_solution (Lazy.force g10));
          keep (paredown_solution (Lazy.force g20));
          keep (paredown_solution (Lazy.force g45))) };
    { name = "scale"; doc = "PareDown on a 100-inner random design";
      run = (fun () -> keep (paredown_solution (Lazy.force g100))) };
    { name = "worstcase"; doc = "PareDown on the 40-inner §4.2 family";
      run = (fun () -> keep (paredown_solution (Lazy.force w40))) };
    { name = "ablation";
      doc = "PareDown without convexity + the aggregation baseline";
      run =
        (fun () ->
          let g = Lazy.force g20 in
          let config =
            {
              Core.Paredown.default_config with
              partition_config =
                { Core.Partition.default_config with require_convex = false };
            }
          in
          keep (Core.Paredown.run ~config g).Core.Paredown.solution;
          keep (Core.Aggregation.run g)) };
    { name = "codegen"; doc = "plan build + C emission + network rewrite";
      run =
        (fun () ->
          let g = Lazy.force podium in
          let plan = Lazy.force podium_plan in
          keep (Codegen.Plan.build g podium_members);
          keep
            (Codegen.C_emit.program ~n_inputs:1 ~n_outputs:2
               plan.Codegen.Plan.program);
          keep (Codegen.Replace.apply g (Lazy.force podium_solution))) };
    { name = "sim"; doc = "settle + VCD on Two-Zone Security";
      run =
        (fun () ->
          let g = Lazy.force two_zone in
          let script = Lazy.force two_zone_script in
          let engine = Sim.Engine.create g in
          keep (Sim.Stimulus.settled_outputs engine script);
          keep (Sim.Vcd.record g script)) };
    { name = "faults"; doc = "settle under 5% drops + degradation grading";
      run =
        (fun () ->
          let g = Lazy.force two_zone in
          let script = Lazy.force two_zone_script in
          let faults = Sim.Fault.drop_all ~seed:7 0.05 in
          let engine = Sim.Engine.create ~faults g in
          keep (Sim.Stimulus.settled_outputs engine script);
          keep (Sim.Degrade.classify ~faults g script)) };
    { name = "reliability";
      doc = "λ sweep with the memoized Monte-Carlo estimator (Entry Gate)";
      run =
        (fun () ->
          (* [Reliability] here is the sibling experiments module, whose
             sweep covers estimator, cache, and weighted search at once. *)
          keep (Reliability.run_design Designs.Library.entry_gate_detector)) };
    { name = "power"; doc = "packet-count power proxy on Podium Timer 3";
      run =
        (fun () ->
          keep
            (Power.run_design ~steps:50 Designs.Library.podium_timer_3)) };
    { name = "frontend"; doc = "behaviour-language parse of a merged program";
      run =
        (fun () -> keep (Behavior.Parse.program (Lazy.force merged_source))) };
    { name = "journal";
      doc = "the table1 sweep with the provenance journal enabled (ring)";
      run =
        (fun () ->
          (* Same workload as the table1 group, but journaled the way the
             flight recorder runs it (bounded ring), so
             perf.journal_ns / perf.table1_ns is the enabled-path
             overhead on a real sweep. *)
          let _j = Obs.Journal.install ~capacity:4096 () in
          Fun.protect
            ~finally:(fun () -> ignore (Obs.Journal.uninstall ()))
            (fun () ->
              List.iter
                (fun g -> keep (paredown_solution g))
                (Lazy.force library_networks))) };
    { name = "sim_kernel";
      doc = "compiled-kernel settle of a 3000-flip script, 150-inner design";
      run =
        (fun () ->
          (* The compiled engine's settle workload; divide by
             perf.sim_kernel_interp_ns for a whole-run speedup floor
             (this group also times engine construction — the settle-only
             speedup doc/performance.md reports is [kernel_throughput]). *)
          let g = Lazy.force g150 in
          let script = Lazy.force kernel_script in
          let engine = Sim.Engine.create ~kernel:Sim.Engine.Compiled g in
          Sim.Stimulus.apply engine script;
          Sim.Engine.settle ~limit:10_000_000 engine;
          keep (Sim.Engine.output_values engine)) };
    { name = "sim_kernel_interp";
      doc = "the same settle workload on the interpreted oracle kernel";
      run =
        (fun () ->
          let g = Lazy.force g150 in
          let script = Lazy.force kernel_script in
          let engine = Sim.Engine.create ~kernel:Sim.Engine.Interpreted g in
          Sim.Stimulus.apply engine script;
          Sim.Engine.settle ~limit:10_000_000 engine;
          keep (Sim.Engine.output_values engine)) };
    { name = "telemetry";
      doc = "settle on Two-Zone Security with the telemetry collector armed";
      run =
        (fun () ->
          (* Same settle workload as the sim group's first half, with a
             network-observatory collector armed, so
             perf.telemetry_ns vs perf.sim_ns bounds the enabled-path
             cost (the disabled path is measured by
             [telemetry_overhead]). *)
          let g = Lazy.force two_zone in
          let script = Lazy.force two_zone_script in
          let telemetry = Sim.Telemetry.create () in
          let engine = Sim.Engine.create ~telemetry g in
          keep (Sim.Stimulus.settled_outputs engine script)) };
    { name = "service";
      doc = "batch server: a 105-request mixed batch drained cold then \
             warm (perf.service_ns covers both, so requests/s = 210e9 \
             / it; hit rate and latency quantiles ride on the \
             service.* counters and the service.request_ns histogram)";
      run =
        (fun () ->
          (* Six resubmissions of Table 1 under PareDown plus one pass
             under aggregation (105 requests, 30 unique keys, 75
             in-batch hits), then the same batch replayed against the
             warm cache — the cold-vs-warm mix the hit-rate counters in
             bench/baseline.json describe. *)
          let batch = Lazy.force service_batch in
          let req = Filename.temp_file "perf_service_req" ".bin" in
          let resp = Filename.temp_file "perf_service_resp" ".bin" in
          Fun.protect
            ~finally:(fun () ->
              Sys.remove req;
              Sys.remove resp)
            (fun () ->
              let oc = open_out_bin req in
              List.iter
                (Libs.Service.Protocol.write_frame oc)
                batch;
              close_out oc;
              let ic = open_in_bin req in
              let oc = open_out_bin resp in
              keep (Libs.Service.Server.run ic oc);
              close_in ic;
              close_out oc)) };
  ]

(* ------------------------------------------------------------------ *)
(* The injected-slowdown hook: PAREDOWN_PERF_SLEEP_GROUP names a group,
   PAREDOWN_PERF_SLEEP_MS (default 100) how long to stall inside its
   timed region.  A busy-wait on the monotonic clock, so no unix
   dependency and no signal interaction; used by the regression-gate
   tests and by `make perf-smoke` demos. *)

let sleep_hook name =
  match Sys.getenv_opt "PAREDOWN_PERF_SLEEP_GROUP" with
  | Some g when g = name ->
    let ms =
      match
        Option.bind (Sys.getenv_opt "PAREDOWN_PERF_SLEEP_MS")
          float_of_string_opt
      with
      | Some ms -> ms
      | None -> 100.
    in
    let t0 = Obs.Clock.now_ns () in
    while Obs.Clock.elapsed_s t0 *. 1000. < ms do () done
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Disabled-journal overhead: every emit site costs one [enabled ()]
   read and a branch when no journal is installed.  [journal_overhead]
   measures that guard directly, counts how many events a journaled
   table1 sweep would emit, and expresses the product as a fraction of
   the disabled sweep's wall time — the quantity the ≤1% claim in
   doc/provenance.md is about. *)

type journal_overhead = {
  guard_ns : float;
  events : int;
  sweep_ns : float;
  ratio : float;
}

let journal_overhead ?(iters = 1_000_000) () =
  ignore (Obs.Journal.uninstall ());
  let sweep () =
    List.iter (fun g -> keep (paredown_solution g))
      (Lazy.force library_networks)
  in
  (* untimed pass: forces the lazies and warms caches *)
  sweep ();
  let hits = ref 0 in
  let t0 = Obs.Clock.now_ns () in
  for _ = 1 to iters do
    if Obs.Journal.enabled () then incr hits
  done;
  let guard_ns =
    Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0)
    /. float_of_int (max 1 iters)
  in
  assert (!hits = 0);
  let j = Obs.Journal.install () in
  sweep ();
  ignore (Obs.Journal.uninstall ());
  let events = Obs.Journal.total j in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Obs.Clock.now_ns () in
    sweep ();
    let dt = Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) in
    if dt < !best then best := dt
  done;
  let sweep_ns = !best in
  { guard_ns; events; sweep_ns;
    ratio = guard_ns *. float_of_int events /. sweep_ns }

(* ------------------------------------------------------------------ *)
(* Disabled-telemetry overhead: every engine hook site costs one match
   on the collector option when none is armed.  Same method as
   [journal_overhead]: time that guard directly, count how many hook
   sites an armed sweep executes, and express the product as a fraction
   of the unarmed sweep's wall time — the quantity the ≤1% claim in
   doc/network-telemetry.md is about.  The sweep settles every Table 1
   design under a seeded stimulus (the simulator is where the hooks
   live; the search path has none). *)

type telemetry_overhead = {
  t_guard_ns : float;
  t_events : int;
  t_sweep_ns : float;
  t_ratio : float;
}

let sim_sweep_scripts =
  lazy
    (List.map
       (fun g ->
         ( g,
           Sim.Stimulus.random ~rng:(Prng.create 31)
             ~sensors:(Graph.sensors g) ~steps:15 ~spacing:15 ))
       (Lazy.force library_networks))

let telemetry_overhead ?(iters = 1_000_000) () =
  let sweep () =
    List.iter
      (fun (g, script) ->
        keep (Sim.Stimulus.settled_outputs (Sim.Engine.create g) script))
      (Lazy.force sim_sweep_scripts)
  in
  (* untimed pass: forces the lazies and warms caches *)
  sweep ();
  (* Guard cost: the unarmed hook is a match on a [None] collector
     field; [opaque_identity] hides the value from the optimizer so the
     compare-and-branch stays in the loop, without adding a per-
     iteration call the real hook does not pay. *)
  let tel = Sys.opaque_identity (None : Sim.Telemetry.t option) in
  let hits = ref 0 in
  let t0 = Obs.Clock.now_ns () in
  for _ = 1 to iters do
    match tel with None -> () | Some _ -> incr hits
  done;
  let t_guard_ns =
    Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0)
    /. float_of_int (max 1 iters)
  in
  assert (!hits = 0);
  (* Hook-site count from an armed pass over the same sweep: schedule +
     process per event, plus activations, sends, and settles. *)
  let t_events =
    List.fold_left
      (fun acc (g, script) ->
        let tel = Sim.Telemetry.create () in
        keep
          (Sim.Stimulus.settled_outputs (Sim.Engine.create ~telemetry:tel g)
             script);
        let activations =
          List.fold_left
            (fun a (_, n) -> a + n.Sim.Telemetry.activations)
            0 (Sim.Telemetry.nodes tel)
        in
        let sends =
          List.fold_left
            (fun a (_, l) -> a + l.Sim.Telemetry.sends)
            0 (Sim.Telemetry.links tel)
        in
        acc
        + (2 * Sim.Telemetry.events tel)
        + activations + sends
        + Sim.Telemetry.settles tel)
      0
      (Lazy.force sim_sweep_scripts)
  in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Obs.Clock.now_ns () in
    sweep ();
    let dt = Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) in
    if dt < !best then best := dt
  done;
  let t_sweep_ns = !best in
  { t_guard_ns; t_events; t_sweep_ns;
    t_ratio = t_guard_ns *. float_of_int t_events /. t_sweep_ns }

(* ------------------------------------------------------------------ *)
(* Compiled-vs-interpreted settle throughput on the sim_kernel group's
   workload: engine construction and stimulus scheduling happen outside
   the timed region, so the ratio is pure settle (event-drain)
   throughput — best-of-[repeats] per kernel.  The activation count is
   identical across kernels by construction (the compiled kernel is
   byte-identical, see test/test_kernel.ml) and asserted here.  The
   speedup is the number doc/performance.md's "Simulator compilation"
   section reports against its ≥10x target. *)

type kernel_throughput = {
  interpreted_ns : float;
  compiled_ns : float;
  speedup : float;
  k_activations : int;  (** per run, identical across kernels *)
}

let kernel_throughput ?(repeats = 3) () =
  let repeats = max 1 repeats in
  let g = Lazy.force g150 in
  let script = Lazy.force kernel_script in
  let load kernel =
    let engine = Sim.Engine.create ~kernel g in
    Sim.Stimulus.apply engine script;
    engine
  in
  let run kernel =
    let engine = load kernel in
    Sim.Engine.settle ~limit:10_000_000 engine;
    Sim.Engine.activation_count engine
  in
  (* untimed warmup for both paths (forces the behaviour-compile memo) *)
  let acts_c = run Sim.Engine.Compiled in
  let acts_i = run Sim.Engine.Interpreted in
  assert (acts_c = acts_i);
  let best kernel =
    let best = ref infinity in
    for _ = 1 to repeats do
      let engine = load kernel in
      let t0 = Obs.Clock.now_ns () in
      Sim.Engine.settle ~limit:10_000_000 engine;
      let dt = Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) in
      if dt < !best then best := dt
    done;
    !best
  in
  let interpreted_ns = best Sim.Engine.Interpreted in
  let compiled_ns = best Sim.Engine.Compiled in
  { interpreted_ns; compiled_ns;
    speedup = interpreted_ns /. compiled_ns;
    k_activations = acts_c }

(* ------------------------------------------------------------------ *)

let time_key name = "perf." ^ name ^ "_ns"

let record ?(repeats = 3) ?(config = []) () =
  let repeats = max 1 repeats in
  Obs.Metrics.reset ();
  (* One untimed pass: forces the lazy inputs, warms allocator and
     caches, and — because it is the only pass the registry snapshot
     sees — makes every counter and histogram independent of [repeats],
     so snapshots recorded with different repeat counts still compare
     counter-for-counter. *)
  List.iter (fun g -> g.run ()) groups;
  let metrics = Obs.Metrics.snapshot () in
  let times_ns =
    List.map
      (fun g ->
        let best = ref infinity in
        for _ = 1 to repeats do
          let t0 = Obs.Clock.now_ns () in
          sleep_hook g.name;
          g.run ();
          let dt =
            Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0)
          in
          if dt < !best then best := dt
        done;
        (time_key g.name, !best))
      groups
  in
  Obs.Snapshot.make
    ~config:(("repeats", string_of_int repeats) :: ("suite", "perf") :: config)
    ~times_ns ~metrics ()
