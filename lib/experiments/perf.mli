(** The perf-snapshot suite: one deterministic workload per bench
    group, timed with min-of-k repeats and frozen into an
    {!Obs.Snapshot.t}.

    Shared by [bench/main.exe] (which writes [BENCH_paredown.json])
    and the [paredown perf] CLI, so the recorded and the gated numbers
    come from exactly the same code paths. *)

type group = {
  name : string;
      (** bench group this mirrors: kernel, exhaustive, table1, table2,
          scale, worstcase, ablation, codegen, sim, faults, power,
          frontend, journal, sim_kernel, sim_kernel_interp, telemetry *)
  doc : string;
  run : unit -> unit;
}

val groups : group list

val time_key : string -> string
(** [time_key "table1"] = ["perf.table1_ns"] — the [times_ns] key a
    group records under. *)

val sleep_hook : string -> unit
(** Busy-wait stall injected into the named group's timed region when
    [PAREDOWN_PERF_SLEEP_GROUP] matches it ([PAREDOWN_PERF_SLEEP_MS]
    milliseconds, default 100).  Exists so the regression gate can be
    demonstrated — and tested — without editing code. *)

type journal_overhead = {
  guard_ns : float;
      (** measured cost of one disabled emit-site guard
          ([Obs.Journal.enabled ()] read + branch) *)
  events : int;  (** events a journaled table1 sweep emits *)
  sweep_ns : float;  (** journal-disabled table1 sweep wall time (min of 3) *)
  ratio : float;  (** [guard_ns * events / sweep_ns] — the disabled-path
                      overhead fraction the ≤1% claim is about *)
}

val journal_overhead : ?iters:int -> unit -> journal_overhead
(** Measure the disabled-journal overhead of the table1 sweep.
    Uninstalls any current journal first (it measures the disabled
    path) and leaves the journal uninstalled.  [iters] (default 1e6)
    is the guard-timing loop length. *)

type telemetry_overhead = {
  t_guard_ns : float;
      (** measured cost of one unarmed engine hook (match on a [None]
          collector) *)
  t_events : int;
      (** hook sites an armed sweep executes: schedule + process per
          event, plus activations, sends, and settles *)
  t_sweep_ns : float;
      (** unarmed wall time of settling every Table 1 design under a
          seeded stimulus (min of 3) *)
  t_ratio : float;
      (** [t_guard_ns * t_events / t_sweep_ns] — the disabled-path
          overhead fraction the ≤1% claim in doc/network-telemetry.md
          is about *)
}

val telemetry_overhead : ?iters:int -> unit -> telemetry_overhead
(** Measure the disabled-telemetry overhead of a simulation sweep over
    the Table 1 designs (the simulator hosts every hook site; the
    search path has none).  [iters] (default 1e6) is the guard-timing
    loop length. *)

type kernel_throughput = {
  interpreted_ns : float;
      (** best-of-[repeats] wall time of the sim_kernel settle workload
          on the interpreted oracle *)
  compiled_ns : float;  (** same workload on the compiled kernel *)
  speedup : float;  (** [interpreted_ns /. compiled_ns] *)
  k_activations : int;
      (** block activations per run — identical across kernels by the
          byte-equivalence contract (asserted) *)
}

val kernel_throughput : ?repeats:int -> unit -> kernel_throughput
(** Time the sim_kernel group's settle workload on both kernels
    (default 3 repeats, min-of-k, after an untimed warmup of each) —
    the measured speedup behind the ≥10x target in
    doc/performance.md's "Simulator compilation" section. *)

val record : ?repeats:int -> ?config:(string * string) list -> unit -> Obs.Snapshot.t
(** Run every group once untimed (warmup; the pass the counters and
    histograms are captured from, so they are independent of
    [repeats]), then [repeats] (default 3, min 1) timed passes per
    group keeping the minimum wall time.  Resets the metrics registry
    first.  [config] entries are recorded into the snapshot
    fingerprint alongside ["repeats"]. *)
