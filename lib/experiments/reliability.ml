(* This module shadows the reliability library's name inside
   [experiments], so the library is reached through the dune root
   module. *)
module Estimator = Libs.Reliability.Estimator

type config = {
  estimator : Estimator.config;
  lambdas : float list;
  include_lexicographic : bool;
}

let default_config =
  {
    estimator = Estimator.default_config;
    lambdas = [ 0.; 1.; 4.; 16.; 64. ];
    include_lexicographic = true;
  }

type mode =
  | Flat
  | Weighted of float
  | Lexicographic

let mode_to_string = function
  | Flat -> "flat"
  | Weighted l -> Printf.sprintf "λ=%g" l
  | Lexicographic -> "lex"

type row = {
  design : string;
  mode : mode;
  blocks : int;
  partitions : int;
  dissolved : int;
  severity : float;
  stderr : float;
  on_front : bool;
}

type report = {
  rows : row list;
  cache : Estimator.cache_stats;
}

(* Pareto-optimal within one design's sweep: no other row is at least as
   good on both axes and strictly better on one.  Coincident points are
   both kept — neither dominates. *)
let mark_front rows =
  let dominates a b =
    a.blocks <= b.blocks && a.severity <= b.severity
    && (a.blocks < b.blocks || a.severity < b.severity)
  in
  List.map
    (fun r ->
      { r with on_front = not (List.exists (fun o -> dominates o r) rows) })
    rows

let run_network ?(config = default_config) ~name g =
  let cache = Estimator.cache () in
  let scorer = Estimator.scorer ~cache config.estimator g in
  let row_of mode solution dissolved =
    (* a cache hit whenever the mode's search already scored its own
       answer, which run_weighted always has *)
    let est = Estimator.estimate_solution ~cache config.estimator g solution in
    {
      design = name;
      mode;
      blocks = Core.Solution.total_inner_after g solution;
      partitions = Core.Solution.programmable_count solution;
      dissolved;
      severity = est.Estimator.mean;
      stderr = est.Estimator.stderr;
      on_front = false;
    }
  in
  let refined ~mode ~lambda ~lexicographic =
    let wr =
      Core.Paredown.run_weighted
        ~weighted:{ Core.Paredown.lambda; lexicographic; severity = scorer }
        g
    in
    row_of mode wr.Core.Paredown.solution wr.Core.Paredown.dissolved
  in
  let rows =
    (row_of Flat Core.Solution.empty 0
     :: List.map
          (fun lambda ->
            refined ~mode:(Weighted lambda) ~lambda ~lexicographic:false)
          config.lambdas)
    @
    if config.include_lexicographic then
      [ refined ~mode:Lexicographic ~lambda:0. ~lexicographic:true ]
    else []
  in
  { rows = mark_front rows; cache = Estimator.cache_stats cache }

let run_design ?config d =
  run_network ?config ~name:d.Designs.Design.name d.Designs.Design.network

let run ?(config = default_config) ?(jobs = 1) () =
  let reports =
    Parallel.map ~jobs
      (fun d -> run_design ~config d)
      Designs.Library.table1
  in
  List.fold_left
    (fun acc r ->
      {
        rows = acc.rows @ r.rows;
        cache =
          {
            Estimator.hits = acc.cache.Estimator.hits + r.cache.Estimator.hits;
            misses = acc.cache.Estimator.misses + r.cache.Estimator.misses;
            entries = acc.cache.Estimator.entries + r.cache.Estimator.entries;
            evictions =
              acc.cache.Estimator.evictions + r.cache.Estimator.evictions;
          };
      })
    { rows = [];
      cache = { Estimator.hits = 0; misses = 0; entries = 0; evictions = 0 } }
    reports

let headers =
  [
    "Design"; "Mode"; "Blocks"; "Prog"; "Dissolved"; "Severity"; "±SE";
    "Front";
  ]

let row_cells r =
  [
    r.design;
    mode_to_string r.mode;
    string_of_int r.blocks;
    string_of_int r.partitions;
    string_of_int r.dissolved;
    Printf.sprintf "%.3f" r.severity;
    Printf.sprintf "%.3f" r.stderr;
    (if r.on_front then "*" else "");
  ]

let to_table report =
  Report.Table.render ~headers ~rows:(List.map row_cells report.rows) ()

let to_csv report =
  Report.Table.render_csv ~headers ~rows:(List.map row_cells report.rows)

let summary report =
  let designs =
    List.sort_uniq String.compare (List.map (fun r -> r.design) report.rows)
  in
  let improved =
    List.filter
      (fun d ->
        let of_mode m =
          List.find_opt
            (fun r -> r.design = d && r.mode = m)
            report.rows
        in
        match of_mode (Weighted 0.) with
        | None -> false
        | Some base ->
          List.exists
            (fun r ->
              r.design = d && r.mode <> Flat && r.severity < base.severity)
            report.rows)
      designs
  in
  let front =
    List.length (List.filter (fun r -> r.on_front) report.rows)
  in
  let lookups = report.cache.Estimator.hits + report.cache.Estimator.misses in
  Printf.sprintf
    "reliability-aware modes strictly improved severity on %d/%d designs; \
     %d Pareto points across %d rows; cache hit rate %.0f %% (%d/%d)"
    (List.length improved) (List.length designs) front
    (List.length report.rows)
    (if lookups = 0 then 0.
     else 100. *. float_of_int report.cache.Estimator.hits
          /. float_of_int lookups)
    report.cache.Estimator.hits lookups
