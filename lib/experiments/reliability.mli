(** The cost/reliability trade-off: a λ sweep over Table 1.

    For each design this experiment scores the flat network, the paper's
    PareDown answer (λ = 0), reliability-weighted refinements at each
    λ in [config.lambdas], and the lexicographic most-reliable-first
    variant — all under one fault-plan family — then marks which
    (blocks, expected severity) points sit on the per-design Pareto
    front.  One memo cache is shared across a design's whole sweep, so
    every mode after the first re-scores its candidates for free (the
    cache hit rate is part of the {!report} and asserted positive in the
    tests).

    Deterministic: rows are a pure function of the configuration, and
    [run ~jobs] fans out per design with the usual pre-ordered
    {!Parallel.map} contract, so tables are byte-identical across
    [--jobs N]. *)

type config = {
  estimator : Libs.Reliability.Estimator.config;
      (** fault-plan family, trial count, and stimulus shape *)
  lambdas : float list;  (** weighted-objective sweep points *)
  include_lexicographic : bool;  (** append the lexicographic mode *)
}

val default_config : config
(** λ ∈ {0, 1, 4, 16, 64} and the lexicographic mode, over
    {!Libs.Reliability.Estimator.default_config}.  The top of the grid
    is deliberately high: a dissolve costs a whole block, so λ must
    exceed 1/Δseverity before reliability can buy one (≈32 on the
    Entry Gate Detector, the seeded counterexample where the paper's
    merge is the less reliable answer). *)

type mode =
  | Flat  (** the unpartitioned network (every block pre-defined) *)
  | Weighted of float  (** [run_weighted] at this λ *)
  | Lexicographic  (** minimise (severity, blocks) *)

val mode_to_string : mode -> string
(** ["flat"], ["λ=2"], ["lex"]. *)

type row = {
  design : string;
  mode : mode;
  blocks : int;  (** Inner Blocks (Total) — the paper's cost axis *)
  partitions : int;
  dissolved : int;  (** partitions the refinement gave back *)
  severity : float;  (** expected degradation, the reliability axis *)
  stderr : float;
  on_front : bool;  (** Pareto-optimal among this design's rows *)
}

type report = {
  rows : row list;
  cache : Libs.Reliability.Estimator.cache_stats;  (** summed over designs *)
}

val run_network : ?config:config -> name:string -> Netlist.Graph.t -> report
(** One design's whole sweep over a fresh shared cache. *)

val run_design : ?config:config -> Designs.Design.t -> report

val run : ?config:config -> ?jobs:int -> unit -> report
(** Every Table 1 design, fanned out per design over [jobs] domains
    (default 1). *)

val to_table : report -> string
val to_csv : report -> string

val summary : report -> string
(** One line: on how many designs a reliability-aware mode strictly
    beat the λ = 0 severity, the total front size, and the cache hit
    rate. *)
