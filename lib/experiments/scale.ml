type point = {
  inner : int;
  seconds : float;
  fit_checks : int;
  expected_fit_checks : int option;
  total : int;
  prog : int;
}

let closed_form n = n * (n + 1) / 2

let measure ?expected g =
  let result, seconds = Report.Timing.time (fun () -> Core.Paredown.run g) in
  let sol = result.Core.Paredown.solution in
  let inner = Netlist.Graph.inner_count g in
  {
    inner;
    seconds;
    fit_checks = result.Core.Paredown.stats.Core.Paredown.fit_checks;
    expected_fit_checks =
      Option.map (fun f -> f inner) (expected : (int -> int) option);
    total = Core.Solution.total_inner_after g sol;
    prog = Core.Solution.programmable_count sol;
  }

let run_random ?(seed = 465) ?(sizes = [ 50; 100; 200; 465 ]) ?(jobs = 1) () =
  let rng = Prng.create seed in
  (* Pre-split with the same [List.map] shape the sequential code used,
     so size -> generator pairing is identical for every [jobs]. *)
  let tagged = List.map (fun inner -> (inner, Prng.split rng)) sizes in
  Parallel.map ~jobs
    (fun (inner, rng) ->
      measure (Randgen.Generator.generate ~rng ~inner ()))
    tagged

let run_worst_case ?(sizes = [ 10; 20; 40; 80 ]) ?(jobs = 1) () =
  Parallel.map ~jobs
    (fun inner ->
      measure ~expected:closed_form (Randgen.Generator.worst_case ~inner))
    sizes

let to_table points =
  let with_expected =
    List.exists (fun p -> p.expected_fit_checks <> None) points
  in
  let headers =
    [ "Inner"; "Time"; "Fit checks" ]
    @ (if with_expected then [ "n(n+1)/2" ] else [])
    @ [ "Total"; "Prog" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.inner;
          Report.Timing.format_seconds p.seconds;
          string_of_int p.fit_checks;
        ]
        @ (if with_expected then
             [ (match p.expected_fit_checks with
                | Some e ->
                  Printf.sprintf "%d %s" e
                    (if e = p.fit_checks then "ok" else "MISMATCH")
                | None -> "--") ]
           else [])
        @ [ string_of_int p.total; string_of_int p.prog ])
      points
  in
  Report.Table.render ~headers ~rows ()
