(** The §5.2 scalability claims: PareDown handles a 465-inner-node design
    in seconds, and its main-loop iteration count grows as n·(n+1)/2 on
    the adversarial worst-case family. *)

type point = {
  inner : int;
  seconds : float;
  fit_checks : int;
  expected_fit_checks : int option;
      (** the §4.2 closed form [n(n+1)/2], on families where it is exact *)
  total : int;
  prog : int;
}

val closed_form : int -> int
(** [closed_form n] = n·(n+1)/2, the §4.2 worst-case fit-check count. *)

val run_random :
  ?seed:int -> ?sizes:int list -> ?jobs:int -> unit -> point list
(** PareDown on one random design per size; default sizes
    [50; 100; 200; 465].  [expected_fit_checks] is [None]. *)

val run_worst_case : ?sizes:int list -> ?jobs:int -> unit -> point list
(** PareDown on the worst-case family; [fit_checks] equals n·(n+1)/2
    exactly (candidate k performs k fit tests before isolating a single
    block).  Each point carries the closed form so callers — the
    experiment harness and [test/test_obs.ml] — can assert the match,
    cross-checked against the ["core.paredown.fit_checks"] counter. *)

val to_table : point list -> string
(** Worst-case rows gain an [n(n+1)/2] column and an [ok] mark when the
    measured count equals the closed form. *)
