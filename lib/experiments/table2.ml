type bucket = {
  inner : int;
  count : int;
  exhaustive_count : int;
  exh_total_mean : float option;
  exh_prog_mean : float option;
  exh_seconds_mean : float option;
  pd_total_mean : float;
  pd_prog_mean : float;
  pd_seconds_mean : float;
  block_overhead_mean : float option;
  percent_overhead : float option;
}

type config = {
  seed : int;
  sizes : (int * int) list;
  exhaustive_cutoff : int;
  exhaustive_deadline_s : float;
  profile : Randgen.Generator.profile;
}

let paper_sizes =
  [
    (3, 1531); (4, 982); (5, 542); (6, 432); (7, 447); (8, 350); (9, 340);
    (10, 199); (11, 170); (12, 31); (13, 6); (14, 1311); (15, 1184);
    (20, 928); (25, 691); (35, 354); (45, 165);
  ]

let default_config = {
  seed = 2005;  (* the venue year; any fixed seed works *)
  sizes =
    [
      (3, 150); (4, 150); (5, 120); (6, 100); (7, 80); (8, 60); (9, 40);
      (10, 25); (11, 12); (12, 4); (13, 2); (14, 150); (15, 120); (20, 100);
      (25, 80); (35, 40); (45, 20);
    ];
  exhaustive_cutoff = 13;
  exhaustive_deadline_s = 20.0;
  profile = Randgen.Generator.default_profile;
}

type sample = {
  s_pd_total : int;
  s_pd_prog : int;
  s_pd_seconds : float;
  s_exh : (int * int * float) option;  (* total, prog, seconds *)
}

let measure ~config g =
  let pd_result, s_pd_seconds =
    Report.Timing.time (fun () -> Core.Paredown.run g)
  in
  let pd_sol = pd_result.Core.Paredown.solution in
  let s_exh =
    if Netlist.Graph.inner_count g > config.exhaustive_cutoff then None
    else begin
      let exh, seconds =
        Report.Timing.time (fun () ->
            Core.Exhaustive.run ~deadline_s:config.exhaustive_deadline_s g)
      in
      match exh.Core.Exhaustive.outcome with
      | Core.Exhaustive.Timed_out -> None
      | Core.Exhaustive.Optimal ->
        let sol = exh.Core.Exhaustive.solution in
        Some
          ( Core.Solution.total_inner_after g sol,
            Core.Solution.programmable_count sol,
            seconds )
    end
  in
  {
    s_pd_total = Core.Solution.total_inner_after g pd_sol;
    s_pd_prog = Core.Solution.programmable_count pd_sol;
    s_pd_seconds;
    s_exh;
  }

let run_bucket ?(config = default_config) ?(jobs = 1) ~rng ~inner ~count () =
  (* All randomness is derived up front — one [Prng.split] per sample,
     by the same [List.init] the sequential code used — so the
     sample-index -> generator pairing (and with it every table value)
     is identical for every [jobs].  See the {!Parallel} contract. *)
  let rngs = List.init count (fun _ -> Prng.split rng) in
  let samples =
    Parallel.map ~jobs
      (fun rng ->
        let g =
          Randgen.Generator.generate ~profile:config.profile ~rng ~inner ()
        in
        measure ~config g)
      rngs
  in
  let with_exh = List.filter (fun s -> s.s_exh <> None) samples in
  let exh_field f =
    match with_exh with
    | [] -> None
    | _ ->
      Some
        (Report.Stats.mean
           (List.filter_map
              (fun s -> Option.map f s.s_exh)
              with_exh))
  in
  let exh_total_mean = exh_field (fun (t, _, _) -> float_of_int t) in
  (* Overheads compare PareDown to exhaustive on the same designs only. *)
  let block_overhead_mean =
    match with_exh with
    | [] -> None
    | _ ->
      Some
        (Report.Stats.mean
           (List.filter_map
              (fun s ->
                Option.map
                  (fun (t, _, _) -> float_of_int (s.s_pd_total - t))
                  s.s_exh)
              with_exh))
  in
  let percent_overhead =
    match exh_total_mean, with_exh with
    | Some baseline, _ :: _ when baseline > 0. ->
      let pd_on_same =
        Report.Stats.mean
          (List.map (fun s -> float_of_int s.s_pd_total) with_exh)
      in
      Some (Report.Stats.percent_increase ~baseline pd_on_same)
    | _ -> None
  in
  {
    inner;
    count;
    exhaustive_count = List.length with_exh;
    exh_total_mean;
    exh_prog_mean = exh_field (fun (_, p, _) -> float_of_int p);
    exh_seconds_mean = exh_field (fun (_, _, s) -> s);
    pd_total_mean =
      Report.Stats.mean_int (List.map (fun s -> s.s_pd_total) samples);
    pd_prog_mean =
      Report.Stats.mean_int (List.map (fun s -> s.s_pd_prog) samples);
    pd_seconds_mean =
      Report.Stats.mean (List.map (fun s -> s.s_pd_seconds) samples);
    block_overhead_mean;
    percent_overhead;
  }

let run ?(config = default_config) ?(jobs = 1) () =
  let rng = Prng.create config.seed in
  List.map
    (fun (inner, count) -> run_bucket ~config ~jobs ~rng ~inner ~count ())
    config.sizes

let headers =
  [
    "Inner"; "Designs"; "Exh Total"; "Exh Prog"; "Exh Time"; "PD Total";
    "PD Prog"; "PD Time"; "Overhead"; "% Overhead";
  ]

let dash = "--"

let row_cells b =
  let opt fmt = function Some v -> fmt v | None -> dash in
  [
    string_of_int b.inner;
    string_of_int b.count;
    opt (Printf.sprintf "%.2f") b.exh_total_mean;
    opt (Printf.sprintf "%.2f") b.exh_prog_mean;
    opt Report.Timing.format_seconds b.exh_seconds_mean;
    Printf.sprintf "%.2f" b.pd_total_mean;
    Printf.sprintf "%.2f" b.pd_prog_mean;
    Report.Timing.format_seconds b.pd_seconds_mean;
    opt (Printf.sprintf "%.2f") b.block_overhead_mean;
    opt (Printf.sprintf "%.0f %%") b.percent_overhead;
  ]

let to_table buckets =
  Report.Table.render ~headers ~rows:(List.map row_cells buckets) ()

let to_csv buckets =
  Report.Table.render_csv ~headers ~rows:(List.map row_cells buckets)
