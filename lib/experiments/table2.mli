(** Regenerates Table 2: exhaustive vs PareDown averages over randomly
    generated designs of each inner-block size.

    The paper ran ~9 300 random designs across sizes 3–45, with exhaustive
    data up to 13 inner blocks.  Design counts per bucket are configurable;
    the defaults are scaled down so the whole table regenerates in minutes
    rather than the paper's multi-hour runs, without changing the shape of
    the results. *)

type bucket = {
  inner : int;
  count : int;  (** designs generated and measured *)
  exhaustive_count : int;
      (** designs for which the exhaustive search finished in budget *)
  exh_total_mean : float option;
  exh_prog_mean : float option;
  exh_seconds_mean : float option;
  pd_total_mean : float;
  pd_prog_mean : float;
  pd_seconds_mean : float;
  block_overhead_mean : float option;
      (** mean over per-design (pd_total - exh_total) *)
  percent_overhead : float option;
      (** percent increase of mean pd_total over mean exh_total *)
}

type config = {
  seed : int;
  sizes : (int * int) list;  (** (inner size, number of designs) *)
  exhaustive_cutoff : int;
  exhaustive_deadline_s : float;
  profile : Randgen.Generator.profile;
}

val default_config : config
(** Sizes 3–13 with exhaustive comparison, then 14–45 PareDown-only,
    mirroring the paper's buckets with reduced counts. *)

val paper_sizes : (int * int) list
(** The paper's buckets and design counts (9 319 designs total). *)

val run_bucket :
  ?config:config -> ?jobs:int -> rng:Prng.t -> inner:int -> count:int ->
  unit -> bucket

val run : ?config:config -> ?jobs:int -> unit -> bucket list
(** [jobs] (default 1) fans samples out over that many domains via
    {!Parallel.map}; every sample's generator is pre-split in sequential
    order, so the table is byte-identical for every [jobs] (the time
    columns excepted — mask them with [PAREDOWN_STABLE_TIMES] to diff). *)

val to_table : bucket list -> string
val to_csv : bucket list -> string
