let in_edges g set =
  Node_id.Set.fold
    (fun id acc ->
      let entering =
        List.filter
          (fun e -> not (Node_id.Set.mem e.Graph.src.Graph.node set))
          (Graph.fanin g id)
      in
      List.rev_append entering acc)
    set []
  |> List.sort Graph.compare_edge

let out_edges g set =
  Node_id.Set.fold
    (fun id acc ->
      let leaving =
        List.filter
          (fun e -> not (Node_id.Set.mem e.Graph.dst.Graph.node set))
          (Graph.fanout g id)
      in
      List.rev_append leaving acc)
    set []
  |> List.sort Graph.compare_edge

(* Count-only paths: no list is built or sorted ([fanin_unordered] /
   [fanout_unordered] expose the adjacency lists without the per-call
   port sort that [fanin]/[fanout] pay for their ordering guarantee).
   [io_used] makes one pass over the set counting both directions at
   once. *)

let inputs_used g set =
  Node_id.Set.fold
    (fun id acc ->
      List.fold_left
        (fun acc e ->
          if Node_id.Set.mem e.Graph.src.Graph.node set then acc else acc + 1)
        acc (Graph.fanin_unordered g id))
    set 0

let outputs_used g set =
  Node_id.Set.fold
    (fun id acc ->
      List.fold_left
        (fun acc e ->
          if Node_id.Set.mem e.Graph.dst.Graph.node set then acc else acc + 1)
        acc (Graph.fanout_unordered g id))
    set 0

let io_used g set =
  Node_id.Set.fold
    (fun id acc ->
      let acc =
        List.fold_left
          (fun acc e ->
            if Node_id.Set.mem e.Graph.src.Graph.node set then acc
            else acc + 1)
          acc (Graph.fanin_unordered g id)
      in
      List.fold_left
        (fun acc e ->
          if Node_id.Set.mem e.Graph.dst.Graph.node set then acc else acc + 1)
        acc (Graph.fanout_unordered g id))
    set 0

let distinct_src_ports edges =
  List.map (fun e -> e.Graph.src) edges
  |> List.sort_uniq compare
  |> List.length

let inputs_used_nets g set = distinct_src_ports (in_edges g set)
let outputs_used_nets g set = distinct_src_ports (out_edges g set)

let is_border g set id =
  let outside e_node = not (Node_id.Set.mem e_node set) in
  let all_inputs_outside =
    List.for_all
      (fun e -> outside e.Graph.src.Graph.node)
      (Graph.fanin_unordered g id)
  in
  let all_outputs_outside =
    List.for_all
      (fun e -> outside e.Graph.dst.Graph.node)
      (Graph.fanout_unordered g id)
  in
  all_inputs_outside || all_outputs_outside

let border_blocks g set =
  List.filter (is_border g set) (Node_id.Set.elements set)

(* Walk forward from the set's external successors while staying outside
   the set; convexity fails iff the walk re-enters the set. *)
let is_convex g set =
  let first_outside =
    List.map (fun e -> e.Graph.dst.Graph.node) (out_edges g set)
    |> List.sort_uniq Node_id.compare
  in
  let rec walk frontier visited =
    match frontier with
    | [] -> true
    | id :: rest ->
      if Node_id.Set.mem id set then false
      else if Node_id.Set.mem id visited then walk rest visited
      else walk (Graph.succs g id @ rest) (Node_id.Set.add id visited)
  in
  walk first_outside Node_id.Set.empty
