(** Cut metrics for candidate partitions.

    All pin accounting is {e per edge}: every connection crossing the
    partition boundary occupies one pin of the programmable block.  This
    is the counting that reproduces the rank values of the paper's
    Figure 5 (see DESIGN.md §2 for the derivation). *)

val in_edges : Graph.t -> Node_id.Set.t -> Graph.edge list
(** Edges whose source is outside the set and destination inside,
    sorted by {!Graph.compare_edge}. *)

val out_edges : Graph.t -> Node_id.Set.t -> Graph.edge list
(** Edges whose source is inside the set and destination outside,
    sorted by {!Graph.compare_edge}. *)

val inputs_used : Graph.t -> Node_id.Set.t -> int
val outputs_used : Graph.t -> Node_id.Set.t -> int
(** Count-only: [inputs_used g s = List.length (in_edges g s)] (and
    dually) without building or sorting the edge list. *)

val io_used : Graph.t -> Node_id.Set.t -> int
(** [inputs_used + outputs_used] — the paper's "combined indegree and
    outdegree of a candidate partition" — computed in a single pass
    over the set.

    These functions are the {e reference} pin accounting; search inner
    loops use the compiled {!Dense} view, which is property-tested to
    agree with them. *)

val inputs_used_nets : Graph.t -> Node_id.Set.t -> int
(** Net-based alternative (distinct external driver ports), kept for the
    ablation benches; {e not} the paper's model. *)

val outputs_used_nets : Graph.t -> Node_id.Set.t -> int
(** Net-based alternative (distinct internal driver ports with an external
    sink). *)

val is_border : Graph.t -> Node_id.Set.t -> Node_id.t -> bool
(** "A block in which every output or every input connects to a block
    outside of the candidate partition" (§4.2).  A member with no fanin
    (resp. no fanout) vacuously satisfies the corresponding clause. *)

val border_blocks : Graph.t -> Node_id.Set.t -> Node_id.t list
(** Members of the set that are border blocks, in increasing id order. *)

val is_convex : Graph.t -> Node_id.Set.t -> bool
(** No directed path leaves the set and re-enters it.  Convexity is what
    makes a partition "replaceable by a programmable block" without
    introducing a loop in the rewritten network. *)
