(* Compiled graph view: compact indices, flat adjacency arrays, Bytes
   bitsets.  Reference semantics live in Cut; test/test_dense.ml checks
   agreement property-by-property. *)

type set = Bytes.t

type t = {
  g : Graph.t;  (* kept for the lazy reachability build *)
  n : int;
  n_bytes : int;
  ids : int array;  (* index -> node id, increasing *)
  idx : (int, int) Hashtbl.t;  (* node id -> index *)
  (* Edge e of node i's fanin lives at positions
     fanin_off.(i) .. fanin_off.(i+1) - 1 of the flat arrays; the two
     parallel arrays give the source node's index and the edge's net id
     (one net id per distinct (source node, source port) driver). *)
  fanin_off : int array;
  fanin_src : int array;
  fanin_net : int array;
  fanout_off : int array;
  fanout_dst : int array;
  fanout_net : int array;
  (* Scratch for distinct-net counting: net_mark.(net) = net_gen marks
     "seen in the current query" without ever clearing the array. *)
  net_mark : int array;
  mutable net_gen : int;
  mutable reach : Bytes.t array option;  (* lazy: forward reachability *)
}

(* ------------------------------------------------------------------ *)
(* Bitsets *)

let mem s i = Char.code (Bytes.unsafe_get s (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add s i =
  let b = i lsr 3 in
  Bytes.unsafe_set s b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get s b) lor (1 lsl (i land 7))))

let remove s i =
  let b = i lsr 3 in
  Bytes.unsafe_set s b
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get s b) land lnot (1 lsl (i land 7)) land 0xff))

let popcount8 =
  Array.init 256 (fun b ->
      let rec go b = if b = 0 then 0 else (b land 1) + go (b lsr 1) in
      go b)

let cardinal s =
  let total = ref 0 in
  for b = 0 to Bytes.length s - 1 do
    total := !total + popcount8.(Char.code (Bytes.unsafe_get s b))
  done;
  !total

let iter_members s f =
  for b = 0 to Bytes.length s - 1 do
    let byte = Char.code (Bytes.unsafe_get s b) in
    if byte <> 0 then
      for bit = 0 to 7 do
        if byte land (1 lsl bit) <> 0 then f ((b lsl 3) lor bit)
      done
  done

let intersects a b =
  let rec go i =
    i < Bytes.length a
    && (Char.code (Bytes.unsafe_get a i) land Char.code (Bytes.unsafe_get b i)
        <> 0
        || go (i + 1))
  in
  go 0

let or_into dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.unsafe_set dst i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst i)
          lor Char.code (Bytes.unsafe_get src i)))
  done

(* ------------------------------------------------------------------ *)
(* Compilation *)

let of_graph g =
  let ids = Array.of_list (Graph.node_ids g) in
  let n = Array.length ids in
  let idx = Hashtbl.create (2 * max 1 n) in
  Array.iteri (fun i id -> Hashtbl.replace idx id i) ids;
  let index_of id = Hashtbl.find idx id in
  (* One net id per distinct (source node, source port) pair, assigned
     in deterministic first-seen order. *)
  let nets : (int * int, int) Hashtbl.t = Hashtbl.create (2 * max 1 n) in
  let net_count = ref 0 in
  let net_of (ep : Graph.endpoint) =
    let key = (ep.Graph.node, ep.Graph.port) in
    match Hashtbl.find_opt nets key with
    | Some net -> net
    | None ->
      let net = !net_count in
      incr net_count;
      Hashtbl.replace nets key net;
      net
  in
  let offsets degree =
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      off.(i + 1) <- off.(i) + degree ids.(i)
    done;
    off
  in
  let fanin_off = offsets (Graph.in_degree g) in
  let fanout_off = offsets (Graph.out_degree g) in
  let total_in = fanin_off.(n) and total_out = fanout_off.(n) in
  let fanin_src = Array.make total_in 0
  and fanin_net = Array.make total_in 0
  and fanout_dst = Array.make total_out 0
  and fanout_net = Array.make total_out 0 in
  Array.iteri
    (fun i id ->
      List.iteri
        (fun k e ->
          let p = fanin_off.(i) + k in
          fanin_src.(p) <- index_of e.Graph.src.Graph.node;
          fanin_net.(p) <- net_of e.Graph.src)
        (Graph.fanin g id);
      List.iteri
        (fun k e ->
          let p = fanout_off.(i) + k in
          fanout_dst.(p) <- index_of e.Graph.dst.Graph.node;
          fanout_net.(p) <- net_of e.Graph.src)
        (Graph.fanout g id))
    ids;
  {
    g;
    n;
    n_bytes = (n + 7) / 8;
    ids;
    idx;
    fanin_off;
    fanin_src;
    fanin_net;
    fanout_off;
    fanout_dst;
    fanout_net;
    net_mark = Array.make (max 1 !net_count) 0;
    net_gen = 0;
    reach = None;
  }

let length t = t.n
let index t id = Hashtbl.find t.idx id
let node_id t i = t.ids.(i)
let in_degree t i = t.fanin_off.(i + 1) - t.fanin_off.(i)
let out_degree t i = t.fanout_off.(i + 1) - t.fanout_off.(i)

(* ------------------------------------------------------------------ *)
(* Set conversions *)

let empty_set t = Bytes.make t.n_bytes '\000'
let copy_set = Bytes.copy
let clear_set s = Bytes.fill s 0 (Bytes.length s) '\000'

let set_of_ids t ids =
  let s = empty_set t in
  Node_id.Set.iter (fun id -> add s (index t id)) ids;
  s

let ids_of_set t s =
  let acc = ref Node_id.Set.empty in
  iter_members s (fun i -> acc := Node_id.Set.add t.ids.(i) !acc);
  !acc

(* ------------------------------------------------------------------ *)
(* Pin accounting *)

let pins_used t s =
  let ins = ref 0 and outs = ref 0 in
  iter_members s (fun i ->
      for e = t.fanin_off.(i) to t.fanin_off.(i + 1) - 1 do
        if not (mem s t.fanin_src.(e)) then incr ins
      done;
      for e = t.fanout_off.(i) to t.fanout_off.(i + 1) - 1 do
        if not (mem s t.fanout_dst.(e)) then incr outs
      done);
  (!ins, !outs)

let inputs_used t s = fst (pins_used t s)
let outputs_used t s = snd (pins_used t s)

let io_used t s =
  let ins, outs = pins_used t s in
  ins + outs

let removal_delta t s b =
  let d_in = ref 0 and d_out = ref 0 in
  for e = t.fanin_off.(b) to t.fanin_off.(b + 1) - 1 do
    if mem s t.fanin_src.(e) then incr d_out (* internal -> output pin *)
    else decr d_in (* this input pin disappears *)
  done;
  for e = t.fanout_off.(b) to t.fanout_off.(b + 1) - 1 do
    if mem s t.fanout_dst.(e) then incr d_in (* internal -> input pin *)
    else decr d_out (* this output pin disappears *)
  done;
  (!d_in, !d_out)

let addition_delta t s b =
  let d_in = ref 0 and d_out = ref 0 in
  for e = t.fanin_off.(b) to t.fanin_off.(b + 1) - 1 do
    if mem s t.fanin_src.(e) then decr d_out (* crossing edge internalised *)
    else incr d_in
  done;
  for e = t.fanout_off.(b) to t.fanout_off.(b + 1) - 1 do
    if mem s t.fanout_dst.(e) then decr d_in
    else incr d_out
  done;
  (!d_in, !d_out)

let fresh_gen t =
  t.net_gen <- t.net_gen + 1;
  t.net_gen

let inputs_used_nets t s =
  let gen = fresh_gen t in
  let nets = ref 0 in
  iter_members s (fun i ->
      for e = t.fanin_off.(i) to t.fanin_off.(i + 1) - 1 do
        if not (mem s t.fanin_src.(e)) then begin
          let net = t.fanin_net.(e) in
          if t.net_mark.(net) <> gen then begin
            t.net_mark.(net) <- gen;
            incr nets
          end
        end
      done);
  !nets

let outputs_used_nets t s =
  let gen = fresh_gen t in
  let nets = ref 0 in
  iter_members s (fun i ->
      for e = t.fanout_off.(i) to t.fanout_off.(i + 1) - 1 do
        if not (mem s t.fanout_dst.(e)) then begin
          let net = t.fanout_net.(e) in
          if t.net_mark.(net) <> gen then begin
            t.net_mark.(net) <- gen;
            incr nets
          end
        end
      done);
  !nets

(* ------------------------------------------------------------------ *)
(* Structure tests *)

let is_border t s i =
  let rec all_outside lo hi arr =
    lo > hi || (not (mem s arr.(lo)) && all_outside (lo + 1) hi arr)
  in
  all_outside t.fanin_off.(i) (t.fanin_off.(i + 1) - 1) t.fanin_src
  || all_outside t.fanout_off.(i) (t.fanout_off.(i + 1) - 1) t.fanout_dst

(* reach.(i) = every node reachable from i by following edges forward
   (i itself excluded unless it lies on a cycle, which topological_order
   rules out).  Built once, in reverse topological order:
   reach(i) = U_{i->j} ({j} U reach(j)). *)
let reach_of t =
  match t.reach with
  | Some r -> r
  | None ->
    let r = Array.init t.n (fun _ -> Bytes.make t.n_bytes '\000') in
    let order = Graph.topological_order t.g in
    List.iter
      (fun id ->
        let i = index t id in
        for e = t.fanout_off.(i) to t.fanout_off.(i + 1) - 1 do
          let j = t.fanout_dst.(e) in
          add r.(i) j;
          or_into r.(i) r.(j)
        done)
      (List.rev order);
    t.reach <- Some r;
    r

let is_convex t s =
  let r = reach_of t in
  let exception Reentrant in
  try
    iter_members s (fun i ->
        for e = t.fanout_off.(i) to t.fanout_off.(i + 1) - 1 do
          let j = t.fanout_dst.(e) in
          if (not (mem s j)) && intersects r.(j) s then raise Reentrant
        done);
    true
  with Reentrant -> false
