(** Compiled, allocation-free view of a {!Graph} for search inner loops.

    {!Cut} answers each pin or convexity query by walking
    [Set.Make(Int)] sets and building (and sorting) edge lists; that is
    the right reference semantics but the wrong inner loop — PareDown
    and the exhaustive search ask the same questions millions of times
    per sweep.  [Dense.of_graph] compiles the graph once: node ids are
    compacted to [0 .. length-1] (in increasing id order), fanin/fanout
    become flat int arrays, member sets become [Bytes] bitsets, and
    convexity uses precomputed per-node forward-reachability bitsets, so
    every query is a tight loop over ints with no allocation.

    Semantics are defined by {!Cut}: for every graph, member set and
    node, each function here returns exactly what its [Cut] counterpart
    returns on the corresponding {!Node_id.Set.t} (property-tested in
    [test/test_dense.ml]).  A view holds small mutable scratch buffers,
    so a single [t] must not be queried from several domains at once;
    build one view per domain (they are cheap). *)

type t
(** The compiled view.  Valid as long as the source graph is not
    rebuilt; graphs are immutable, so any structural change produces a
    new graph that needs a new view. *)

type set = Bytes.t
(** A member bitset over compact indices; bit [i] is node
    [node_id t i].  Mutable — the search algorithms flip bits in place
    instead of rebuilding functional sets. *)

val of_graph : Graph.t -> t
(** Compile a view.  O(nodes + edges).  The forward-reachability tables
    behind {!is_convex} are built lazily on the first convexity query
    (they need an acyclic graph; every other query works on any
    graph). *)

val length : t -> int
(** Number of nodes (all nodes, not just inner ones). *)

val index : t -> Node_id.t -> int
(** Compact index of a node id.  Raises [Not_found] for unknown ids. *)

val node_id : t -> int -> Node_id.t
(** Inverse of {!index}. *)

val in_degree : t -> int -> int
val out_degree : t -> int -> int

(** {1 Member bitsets} *)

val empty_set : t -> set
val copy_set : set -> set
val clear_set : set -> unit

val set_of_ids : t -> Node_id.Set.t -> set
val ids_of_set : t -> set -> Node_id.Set.t

val mem : set -> int -> bool
val add : set -> int -> unit
val remove : set -> int -> unit
val cardinal : set -> int

val iter_members : set -> (int -> unit) -> unit
(** Members in increasing index order — the same order as
    [Node_id.Set.iter], which the removal tie-breaking of PareDown
    depends on. *)

(** {1 Pin accounting (per-edge, the paper's model)} *)

val pins_used : t -> set -> int * int
(** [(inputs_used, outputs_used)] of the cut around [set], counted per
    crossing edge, in one pass.  Agrees with
    [Cut.inputs_used]/[Cut.outputs_used]. *)

val inputs_used : t -> set -> int
val outputs_used : t -> set -> int
val io_used : t -> set -> int

val removal_delta : t -> set -> int -> int * int
(** [removal_delta t set b] with [b] a member: the
    [(d_inputs, d_outputs)] change of the per-edge pin counts if [b]
    were removed.  O(degree b). *)

val addition_delta : t -> set -> int -> int * int
(** [addition_delta t set b] with [b] outside [set]: the change if [b]
    were added.  Exact inverse of {!removal_delta} on the grown set. *)

(** {1 Pin accounting (per-net, ablation only)} *)

val inputs_used_nets : t -> set -> int
(** Distinct external driver ports feeding the set; agrees with
    [Cut.inputs_used_nets]. *)

val outputs_used_nets : t -> set -> int
(** Distinct internal driver ports with an external sink; agrees with
    [Cut.outputs_used_nets]. *)

(** {1 Structure tests} *)

val is_border : t -> set -> int -> bool
(** Agrees with [Cut.is_border]: every input or every output of the
    node connects outside the set. *)

val is_convex : t -> set -> bool
(** No directed path leaves the set and re-enters it.  O(crossing
    edges × n/8) byte operations against the precomputed reachability
    bitsets — no graph walk.  The first call on a view forces the
    reachability tables and therefore requires an acyclic graph
    (raises [Graph.Structural_error] otherwise, like
    [Graph.topological_order]). *)
