type endpoint = {
  node : Node_id.t;
  port : int;
}

type edge = {
  src : endpoint;
  dst : endpoint;
}

type node = {
  id : Node_id.t;
  descriptor : Eblock.Descriptor.t;
  label : string;
}

type t = {
  nodes : node Node_id.Map.t;
  fanin_map : edge list Node_id.Map.t;
  fanout_map : edge list Node_id.Map.t;
  port_index : edge array array Node_id.Map.t option ref;
      (* per node: one edge array per output port, in [fanout] order —
         built on first demand by {!fanout_on}, so [present] in the
         simulator stops scanning and filtering the whole fanout list
         per packet.  Every edge-mutating builder installs a {e fresh}
         ref (never reuses the old cell through [{ g with ... }]), so a
         cache can never describe a stale edge set.  The benign race of
         two domains forcing it concurrently builds the same value
         twice. *)
}

let equal_edge (a : edge) (b : edge) = a = b

let compare_edge (a : edge) (b : edge) = compare a b

let pp_edge ppf { src; dst } =
  Format.fprintf ppf "%d.%d->%d.%d" src.node src.port dst.node dst.port

let edge_to_string e = Format.asprintf "%a" pp_edge e

exception Structural_error of string

let error fmt =
  Format.kasprintf (fun msg -> raise (Structural_error msg)) fmt

let empty = {
  nodes = Node_id.Map.empty;
  fanin_map = Node_id.Map.empty;
  fanout_map = Node_id.Map.empty;
  port_index = ref None;
}

let mem g id = Node_id.Map.mem id g.nodes

let node g id =
  match Node_id.Map.find_opt id g.nodes with
  | Some n -> n
  | None -> error "unknown node %d" id

let descriptor g id = (node g id).descriptor
let kind g id = (descriptor g id).Eblock.Descriptor.kind

let fresh_id g =
  match Node_id.Map.max_binding_opt g.nodes with
  | None -> 1
  | Some (max_id, _) -> max_id + 1

let add ?id ?label g descriptor =
  let id = match id with Some id -> id | None -> fresh_id g in
  if Node_id.Map.mem id g.nodes then error "duplicate node id %d" id;
  let label = match label with Some l -> l | None -> string_of_int id in
  let n = { id; descriptor; label } in
  ({ g with nodes = Node_id.Map.add id n g.nodes }, id)

let edge_list map id =
  match Node_id.Map.find_opt id map with Some l -> l | None -> []

let fanin_unordered g id = edge_list g.fanin_map id
let fanout_unordered g id = edge_list g.fanout_map id

let fanin g id =
  edge_list g.fanin_map id
  |> List.sort (fun e1 e2 -> Int.compare e1.dst.port e2.dst.port)

let fanout g id =
  let by_target e1 e2 =
    match Int.compare e1.src.port e2.src.port with
    | 0 ->
      (match Node_id.compare e1.dst.node e2.dst.node with
       | 0 -> Int.compare e1.dst.port e2.dst.port
       | c -> c)
    | c -> c
  in
  List.sort by_target (edge_list g.fanout_map id)

(* The per-(node, port) fanout index: [fanout g id] partitioned by
   source port, preserving its order inside each port bucket. *)
let force_port_index g =
  match !(g.port_index) with
  | Some idx -> idx
  | None ->
    let idx =
      Node_id.Map.mapi
        (fun id _ ->
          let n_ports =
            match Node_id.Map.find_opt id g.nodes with
            | Some n -> n.descriptor.Eblock.Descriptor.n_outputs
            | None -> 0
          in
          let n_ports =
            (* tolerate out-of-descriptor edges defensively *)
            List.fold_left
              (fun m e -> max m (e.src.port + 1))
              n_ports
              (edge_list g.fanout_map id)
          in
          let buckets = Array.make n_ports [] in
          List.iter
            (fun e -> buckets.(e.src.port) <- e :: buckets.(e.src.port))
            (fanout g id);
          Array.map (fun es -> Array.of_list (List.rev es)) buckets)
        g.fanout_map
    in
    g.port_index := Some idx;
    idx

let fanout_on g id port =
  match Node_id.Map.find_opt id (force_port_index g) with
  | None -> []
  | Some ports ->
    if port < 0 || port >= Array.length ports then []
    else Array.to_list ports.(port)

let iter_fanout_on g id port f =
  match Node_id.Map.find_opt id (force_port_index g) with
  | None -> ()
  | Some ports ->
    if port >= 0 && port < Array.length ports then
      Array.iter f ports.(port)

let driver g id port =
  List.find_opt (fun e -> e.dst.port = port) (edge_list g.fanin_map id)
  |> Option.map (fun e -> e.src)

let connect g ~src:(src_node, src_port) ~dst:(dst_node, dst_port) =
  let src_desc = descriptor g src_node in
  let dst_desc = descriptor g dst_node in
  if src_port < 0 || src_port >= src_desc.Eblock.Descriptor.n_outputs then
    error "node %d (%s) has no output port %d"
      src_node src_desc.Eblock.Descriptor.name src_port;
  if dst_port < 0 || dst_port >= dst_desc.Eblock.Descriptor.n_inputs then
    error "node %d (%s) has no input port %d"
      dst_node dst_desc.Eblock.Descriptor.name dst_port;
  if driver g dst_node dst_port <> None then
    error "input port %d.%d already has a driver" dst_node dst_port;
  let e = {
    src = { node = src_node; port = src_port };
    dst = { node = dst_node; port = dst_port };
  }
  in
  let cons_edge map id =
    Node_id.Map.update id
      (function Some l -> Some (e :: l) | None -> Some [ e ])
      map
  in
  {
    g with
    fanin_map = cons_edge g.fanin_map dst_node;
    fanout_map = cons_edge g.fanout_map src_node;
    port_index = ref None;
  }

let remove_edge g e =
  let drop map id =
    Node_id.Map.update id
      (function
        | Some l ->
          (match List.filter (fun e' -> e' <> e) l with
           | [] -> None
           | l' -> Some l')
        | None -> None)
      map
  in
  {
    g with
    fanin_map = drop g.fanin_map e.dst.node;
    fanout_map = drop g.fanout_map e.src.node;
    port_index = ref None;
  }

let remove_node g id =
  let touching = edge_list g.fanin_map id @ edge_list g.fanout_map id in
  let g = List.fold_left remove_edge g touching in
  { g with nodes = Node_id.Map.remove id g.nodes }

let node_ids g = Node_id.Map.bindings g.nodes |> List.map fst
let node_count g = Node_id.Map.cardinal g.nodes

let edges g =
  Node_id.Map.fold (fun _ l acc -> List.rev_append l acc) g.fanout_map []
  |> List.sort compare

let edge_count g =
  Node_id.Map.fold (fun _ l acc -> acc + List.length l) g.fanout_map 0

let in_degree g id = List.length (edge_list g.fanin_map id)
let out_degree g id = List.length (edge_list g.fanout_map id)

let distinct_nodes endpoints =
  List.sort_uniq Node_id.compare endpoints

let preds g id =
  distinct_nodes (List.map (fun e -> e.src.node) (edge_list g.fanin_map id))

let succs g id =
  distinct_nodes (List.map (fun e -> e.dst.node) (edge_list g.fanout_map id))

let ids_with_kind g want =
  Node_id.Map.fold
    (fun id n acc ->
      if Eblock.Kind.equal n.descriptor.Eblock.Descriptor.kind want
      then id :: acc
      else acc)
    g.nodes []
  |> List.rev

let sensors g = ids_with_kind g Eblock.Kind.Sensor
let primary_outputs g = ids_with_kind g Eblock.Kind.Output

let inner_nodes g =
  Node_id.Map.fold
    (fun id n acc ->
      if Eblock.Kind.is_inner n.descriptor.Eblock.Descriptor.kind
      then id :: acc
      else acc)
    g.nodes []
  |> List.rev

let partitionable_nodes g =
  Node_id.Map.fold
    (fun id n acc ->
      if Eblock.Kind.partitionable n.descriptor.Eblock.Descriptor.kind
      then id :: acc
      else acc)
    g.nodes []
  |> List.rev

let inner_count g = List.length (inner_nodes g)

let total_cost g =
  Node_id.Map.fold
    (fun _ n acc -> acc +. n.descriptor.Eblock.Descriptor.cost)
    g.nodes 0.

(* Kahn's algorithm; deterministic because ready nodes are kept sorted. *)
let topological_order g =
  let in_deg = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_deg id (in_degree g id)) (node_ids g);
  let ready =
    List.filter (fun id -> in_degree g id = 0) (node_ids g)
  in
  let rec drain ready acc seen =
    match ready with
    | [] ->
      if seen <> node_count g then error "graph contains a cycle"
      else List.rev acc
    | id :: rest ->
      let newly_ready =
        List.filter_map
          (fun succ ->
            let d = Hashtbl.find in_deg succ - 1 in
            Hashtbl.replace in_deg succ d;
            if d = 0 then Some succ else None)
          (List.map (fun e -> e.dst.node) (edge_list g.fanout_map id))
      in
      let ready' =
        List.merge Node_id.compare rest
          (List.sort Node_id.compare newly_ready)
      in
      drain ready' (id :: acc) (seen + 1)
  in
  drain ready [] 0

let is_acyclic g =
  match topological_order g with
  | (_ : Node_id.t list) -> true
  | exception Structural_error _ -> false

let levels g =
  let order = topological_order g in
  List.fold_left
    (fun acc id ->
      let from_preds =
        List.fold_left
          (fun best e ->
            match Node_id.Map.find_opt e.src.node acc with
            | Some l -> max best (l + 1)
            | None -> best)
          0
          (edge_list g.fanin_map id)
      in
      Node_id.Map.add id from_preds acc)
    Node_id.Map.empty order

let level g id =
  match Node_id.Map.find_opt id (levels g) with
  | Some l -> l
  | None -> error "unknown node %d" id

let reachable g ~from =
  let rec walk frontier visited =
    match frontier with
    | [] -> visited
    | id :: rest ->
      let next =
        List.filter
          (fun s -> not (Node_id.Set.mem s visited))
          (succs g id)
      in
      let visited =
        List.fold_left (fun v s -> Node_id.Set.add s v) visited next
      in
      walk (next @ rest) visited
  in
  walk (Node_id.Set.elements from) Node_id.Set.empty

let validate g =
  let problems = ref [] in
  let problem fmt =
    Format.kasprintf (fun msg -> problems := msg :: !problems) fmt
  in
  Node_id.Map.iter
    (fun id n ->
      let d = n.descriptor in
      let open Eblock in
      (match d.Descriptor.kind with
       | Kind.Sensor ->
         if in_degree g id > 0 then
           problem "sensor %d has incoming edges" id
       | Kind.Output ->
         if out_degree g id > 0 then
           problem "primary output %d has outgoing edges" id
       | Kind.Compute | Kind.Comm | Kind.Programmable -> ());
      (match d.Descriptor.kind with
       | Kind.Sensor -> ()
       | Kind.Output | Kind.Compute | Kind.Comm | Kind.Programmable ->
         for port = 0 to d.Descriptor.n_inputs - 1 do
           if driver g id port = None then
             problem "input port %d.%d is not driven" id port
         done))
    g.nodes;
  if sensors g = [] then problem "network has no sensor block";
  if primary_outputs g = [] then problem "network has no output block";
  if not (is_acyclic g) then problem "network contains a loop";
  match !problems with
  | [] -> Ok ()
  | ps -> Error (List.rev ps)

let pp ppf g =
  Format.fprintf ppf "network: %d nodes (%d inner), %d edges"
    (node_count g) (inner_count g) (edge_count g)
