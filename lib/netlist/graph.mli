(** eBlock networks as directed acyclic graphs.

    "We represent an eBlock system as a directed acyclic graph G = (V, E)
    where V is the set of nodes (blocks) and E the set of edges
    (connections).  Sensor eBlocks are primary inputs, output eBlocks are
    primary outputs" (§4).

    Structure: an edge connects one output {e port} of a source node to one
    input {e port} of a destination node.  An input port accepts at most
    one driver; an output port may fan out to several edges (each such
    connection occupies a pin of its own, matching the paper's per-edge
    input/output accounting — see DESIGN.md §2).

    The type is immutable; building functions return new graphs. *)

type endpoint = {
  node : Node_id.t;
  port : int;
}

type edge = {
  src : endpoint;
  dst : endpoint;
}

val equal_edge : edge -> edge -> bool
(** Structural equality.  An edge is fully identified by its two
    endpoints (an input port accepts one driver), so this is the edge
    identity used by per-connection tables such as fault plans. *)

val compare_edge : edge -> edge -> int
(** Total order consistent with {!equal_edge}: by source endpoint, then
    destination. *)

val pp_edge : Format.formatter -> edge -> unit
(** Prints as ["src.port->dst.port"], e.g. ["2.0->5.1"]. *)

val edge_to_string : edge -> string

type node = {
  id : Node_id.t;
  descriptor : Eblock.Descriptor.t;
  label : string;  (** human-readable instance name, defaults to the id *)
}

type t

exception Structural_error of string
(** Raised by building functions on malformed operations (unknown node,
    port out of range, duplicated driver, duplicate id); and by
    {!topological_order} and {!levels} on cyclic graphs. *)

val empty : t

val add : ?id:Node_id.t -> ?label:string -> t -> Eblock.Descriptor.t
  -> t * Node_id.t
(** Add a node.  Without [?id] the smallest unused positive id is taken. *)

val connect : t -> src:Node_id.t * int -> dst:Node_id.t * int -> t
(** Add an edge from output port [src] to input port [dst].  Rejects
    unknown nodes, out-of-range ports, and a second driver on an input
    port.  Cycles are {e not} rejected here (they are a validation
    concern, see {!validate}); all synthesis algorithms require validated
    acyclic inputs. *)

val remove_node : t -> Node_id.t -> t
(** Remove a node and every edge touching it. *)

val remove_edge : t -> edge -> t

(** {1 Access} *)

val mem : t -> Node_id.t -> bool
val node : t -> Node_id.t -> node
val descriptor : t -> Node_id.t -> Eblock.Descriptor.t
val kind : t -> Node_id.t -> Eblock.Kind.t
val node_ids : t -> Node_id.t list
(** All node ids, in increasing order. *)

val node_count : t -> int
val edges : t -> edge list
val edge_count : t -> int
val fanin : t -> Node_id.t -> edge list
(** Edges entering the node, sorted by destination port. *)

val fanout : t -> Node_id.t -> edge list
(** Edges leaving the node, sorted by source port then destination. *)

val fanin_unordered : t -> Node_id.t -> edge list
val fanout_unordered : t -> Node_id.t -> edge list
(** Same edges as {!fanin}/{!fanout} in unspecified order, without the
    per-call sort — for counting and membership loops where order does
    not matter (see {!Cut}). *)

val fanout_on : t -> Node_id.t -> int -> edge list
(** Edges leaving the given output port, in {!fanout} order — exactly
    [List.filter (fun e -> e.src.port = port) (fanout g id)], served
    from a per-graph per-(node, port) index built on first use, so the
    simulator's per-packet send loop does no list scan or filter.  An
    out-of-range port reads as no edges. *)

val iter_fanout_on : t -> Node_id.t -> int -> (edge -> unit) -> unit
(** Allocation-free iteration over the same edges in the same order. *)

val driver : t -> Node_id.t -> int -> endpoint option
(** The endpoint driving a given input port, if connected. *)

val in_degree : t -> Node_id.t -> int
val out_degree : t -> Node_id.t -> int
val preds : t -> Node_id.t -> Node_id.t list
(** Distinct predecessor node ids. *)

val succs : t -> Node_id.t -> Node_id.t list
(** Distinct successor node ids. *)

(** {1 Queries by class} *)

val sensors : t -> Node_id.t list
val primary_outputs : t -> Node_id.t list
val inner_nodes : t -> Node_id.t list
(** Compute, communication and programmable blocks (the paper's "inner
    blocks"). *)

val partitionable_nodes : t -> Node_id.t list
(** Inner nodes eligible for absorption into a programmable block. *)

val inner_count : t -> int
val total_cost : t -> float
(** Sum of node costs — the secondary metric of §4. *)

(** {1 Structure} *)

val validate : t -> (unit, string list) result
(** Full structural check: every input port of every non-sensor node is
    driven; sensors have no fanin; primary outputs have no fanout; the
    graph is acyclic; at least one sensor and one output exist. *)

val is_acyclic : t -> bool

val topological_order : t -> Node_id.t list
(** Sources first.  Raises {!Structural_error} on a cycle. *)

val levels : t -> int Node_id.Map.t
(** The paper's level: "the maximum distance between the block and any
    sensor block" (§3.3), with sensors (and any other fanin-free node) at
    level 0.  Raises {!Structural_error} on a cycle. *)

val level : t -> Node_id.t -> int

val reachable : t -> from:Node_id.Set.t -> Node_id.Set.t
(** Nodes reachable from the given set by following edges forward,
    excluding the starting nodes themselves unless reachable again. *)

val pp : Format.formatter -> t -> unit
(** A short structural summary for debugging. *)
