type t = {
  buf : Buffer.t;
  t0 : int64;
  mutable events : int;
}

let create () = { buf = Buffer.create 4096; t0 = Clock.now_ns (); events = 0 }

let event_count t = t.events

(* JSON string escaping (RFC 8259): control characters, quote,
   backslash. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_args buf = function
  | [] -> ()
  | args ->
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
      args;
    Buffer.add_char buf '}'

let add_event t ~ph ~name ~args ~ts_ns ~extra =
  if t.events > 0 then Buffer.add_string t.buf ",\n";
  t.events <- t.events + 1;
  let ts = Clock.ns_to_us (Int64.sub ts_ns t.t0) in
  Buffer.add_string t.buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"%s\",\
                     \"ts\":%.3f,\"pid\":1,\"tid\":1%s" (escape name) ph ts
       extra);
  add_args t.buf args;
  Buffer.add_char t.buf '}'

let sink t =
  {
    Trace.start_span =
      (fun ~name ~args ~ts_ns -> add_event t ~ph:"B" ~name ~args ~ts_ns ~extra:"");
    end_span =
      (fun ~name ~ts_ns -> add_event t ~ph:"E" ~name ~args:[] ~ts_ns ~extra:"");
    instant =
      (fun ~name ~args ~ts_ns ->
        add_event t ~ph:"i" ~name ~args ~ts_ns ~extra:",\"s\":\"t\"");
    flush = ignore;
  }

let contents t = "[\n" ^ Buffer.contents t.buf ^ "\n]\n"

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents t))
