type t = {
  buf : Buffer.t;
  t0 : int64;
  mutable events : int;
}

let create () = { buf = Buffer.create 4096; t0 = Clock.now_ns (); events = 0 }

let event_count t = t.events

(* JSON string escaping, shared with the snapshot writer so the full
   RFC 8259 set (every control character 0x00-0x1f, backslash, quote)
   lives in exactly one place — see the property test in
   test/test_obs.ml that round-trips arbitrary names through the
   parser. *)
let escape = Json.escape

let add_args buf = function
  | [] -> ()
  | args ->
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
      args;
    Buffer.add_char buf '}'

(* All events share pid 1; the span sink below lives on tid 1, while
   the lane-aware entry points take an explicit tid so a recording can
   dedicate one lane per simulated node (see Sim.Telemetry). *)
let add_event_at t ~ph ~name ~args ~tid ~ts_us ~extra =
  if t.events > 0 then Buffer.add_string t.buf ",\n";
  t.events <- t.events + 1;
  Buffer.add_string t.buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"%s\",\
                     \"ts\":%.3f,\"pid\":1,\"tid\":%d%s" (escape name) ph
       ts_us tid extra);
  add_args t.buf args;
  Buffer.add_char t.buf '}'

let add_event t ~ph ~name ~args ~ts_ns ~extra =
  let ts_us = Clock.ns_to_us (Int64.sub ts_ns t.t0) in
  add_event_at t ~ph ~name ~args ~tid:1 ~ts_us ~extra

let thread_name t ~tid name =
  add_event_at t ~ph:"M" ~name:"thread_name" ~args:[ ("name", name) ] ~tid
    ~ts_us:0. ~extra:""

let instant_at t ~tid ~ts_us ?(args = []) name =
  add_event_at t ~ph:"i" ~name ~args ~tid ~ts_us ~extra:",\"s\":\"t\""

let sink t =
  {
    Trace.start_span =
      (fun ~name ~args ~ts_ns -> add_event t ~ph:"B" ~name ~args ~ts_ns ~extra:"");
    end_span =
      (fun ~name ~ts_ns -> add_event t ~ph:"E" ~name ~args:[] ~ts_ns ~extra:"");
    instant =
      (fun ~name ~args ~ts_ns ->
        add_event t ~ph:"i" ~name ~args ~ts_ns ~extra:",\"s\":\"t\"");
    flush = ignore;
  }

let contents t = "[\n" ^ Buffer.contents t.buf ^ "\n]\n"

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (contents t))
