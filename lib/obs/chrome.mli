(** Chrome trace-event JSON sink.

    Produces the JSON-array flavour of the Trace Event Format (duration
    events ["B"]/["E"] plus instants ["i"]) understood by
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}.
    Timestamps are microseconds relative to the recorder's creation.

    Events accumulate in memory (span cardinality in this tool chain is
    per-run, not per-event, so a recording is small); {!contents} or
    {!write_file} can be called at any point and always return a
    complete, well-formed JSON document. *)

type t

val create : unit -> t

val sink : t -> Trace.sink
(** Install with [Obs.Trace.set_sink (Obs.Chrome.sink recorder)]. *)

val event_count : t -> int

(** {2 Lane-aware recording}

    The {!sink} records everything on one lane (pid 1 / tid 1).  These
    entry points take an explicit thread id and timestamp instead, so a
    recording can dedicate one lane per entity — e.g. one lane per
    simulated node in a [Sim.Telemetry] timeline, with simulated ticks
    as microseconds. *)

val thread_name : t -> tid:int -> string -> unit
(** Emit the metadata event naming lane [tid] in trace viewers. *)

val instant_at :
  t -> tid:int -> ts_us:float -> ?args:(string * string) list -> string ->
  unit
(** A thread-scoped instant event on lane [tid] at an explicit
    timestamp (microseconds). *)

val contents : t -> string
(** The complete JSON array of events recorded so far. *)

val write_file : t -> string -> unit
