let now_ns () = Monotonic_clock.now ()

let ns_per_s = 1e9

let now_s () = Int64.to_float (now_ns ()) /. ns_per_s

let elapsed_s t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. ns_per_s

let ns_to_us ns = Int64.to_float ns /. 1e3
