(** The one time source for the whole tool chain.

    Monotonic (CLOCK_MONOTONIC via the bechamel stubs): immune to NTP
    steps and wall-clock adjustments, unlike [Unix.gettimeofday], and
    measuring elapsed real time, unlike [Sys.time] (CPU time).  Every
    deadline, span timestamp, and reported duration in the repository
    goes through this module so that numbers from different layers are
    comparable. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary (boot-time) origin.  Only differences
    are meaningful. *)

val now_s : unit -> float
(** {!now_ns} in seconds. *)

val elapsed_s : int64 -> float
(** [elapsed_s t0] — seconds since [t0] (a previous {!now_ns}). *)

val ns_to_us : int64 -> float
(** Nanoseconds to microseconds (the Chrome trace-event unit). *)
