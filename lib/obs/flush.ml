(* Re-armable exit writers.  Stdlib [at_exit] can only accumulate
   closures, so a daemon that arms a journal or trace writer per
   request would leak one handler per request (and run all of them at
   exit).  This registry installs exactly one process-lifetime at_exit
   hook, lazily on the first [arm], and lets callers swap or remove the
   sink behind a named slot as often as they like. *)

let hooks : (string * (unit -> unit)) list ref = ref []
let installed = ref false

(* Slot order, not arm order: deterministic whatever sequence of
   arm/disarm calls led here.  A failing writer must not starve the
   rest at exit, so each hook runs under its own handler. *)
let flush_all () =
  List.iter
    (fun (_, f) -> try f () with _ -> ())
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !hooks)

let arm ~slot f =
  if not !installed then begin
    installed := true;
    at_exit flush_all
  end;
  hooks := (slot, f) :: List.remove_assoc slot !hooks

let disarm ~slot = hooks := List.remove_assoc slot !hooks

let flush ~slot =
  match List.assoc_opt slot !hooks with Some f -> f () | None -> ()

let armed_count () = List.length !hooks
