(** Re-armable exit writers behind a single process-lifetime [at_exit].

    Writers that must fire on [Stdlib.exit] (trace files, journals,
    post-mortem bundles) used to register one [at_exit] closure per
    arming — fine for a one-shot CLI, a leak in a resident daemon that
    arms per request.  This registry keys each writer by a {e slot}
    name: re-arming a slot replaces its sink, disarming removes it, and
    the one at_exit hook (installed lazily on the first {!arm}) runs
    whatever is currently armed, in slot-name order, swallowing
    individual writer failures.

    Writers should stay idempotent (write-once guards), since callers
    typically also flush them on the normal path. *)

val arm : slot:string -> (unit -> unit) -> unit
(** Install or replace the writer for [slot]. *)

val disarm : slot:string -> unit
(** Remove [slot]'s writer; unknown slots are ignored. *)

val flush : slot:string -> unit
(** Run [slot]'s writer now (exceptions propagate); unknown slots are
    ignored. *)

val flush_all : unit -> unit
(** Run every armed writer in slot-name order, swallowing per-writer
    exceptions — exactly what the exit hook does. *)

val armed_count : unit -> int
(** Currently armed slots — N arm/flush cycles on the same slot leave
    this at 1, the regression the test suite pins. *)
