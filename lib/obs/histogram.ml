(* Log-bucketed (HDR-style) histogram.  Values are nonnegative floats;
   bucket [i >= 1] covers [2^((i-1)/sub), 2^(i/sub)) with [sub]
   sub-buckets per octave, so the relative quantile error is bounded by
   2^(1/sub) - 1 (~19% at sub = 4).  Bucket 0 collects values < 1,
   which for nanosecond and byte quantities means "zero". *)

let sub_buckets = 4

(* 64 octaves cover every int64 nanosecond value. *)
let n_buckets = 1 + (64 * sub_buckets)

(* Each histogram carries its own mutex so observations from parallel
   sweep workers ({!Parallel}) merge exactly.  An uncontended
   lock/unlock is tens of nanoseconds — negligible next to the work the
   hot paths record. *)
type t = {
  lock : Mutex.t;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

let create () =
  { lock = Mutex.create ();
    count = 0; sum = 0.; min_v = infinity; max_v = neg_infinity;
    buckets = Array.make n_buckets 0 }

let locked t f = Mutex.protect t.lock f

let clear t =
  locked t @@ fun () ->
  t.count <- 0;
  t.sum <- 0.;
  t.min_v <- infinity;
  t.max_v <- neg_infinity;
  Array.fill t.buckets 0 n_buckets 0

let copy t =
  locked t @@ fun () ->
  { lock = Mutex.create ();
    count = t.count; sum = t.sum; min_v = t.min_v; max_v = t.max_v;
    buckets = Array.copy t.buckets }

let index v =
  if v < 1. then 0
  else
    let i = 1 + int_of_float (Float.log2 v *. float_of_int sub_buckets) in
    if i >= n_buckets then n_buckets - 1 else i

(* Geometric midpoint of a bucket: the canonical value reported for any
   observation that landed in it. *)
let representative i =
  if i = 0 then 0.
  else Float.exp2 ((float_of_int i -. 0.5) /. float_of_int sub_buckets)

let observe t v =
  let v = if Float.is_nan v || v < 0. then 0. else v in
  locked t @@ fun () ->
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let i = index v in
  t.buckets.(i) <- t.buckets.(i) + 1

let observe_int t n = observe t (float_of_int n)

let time t f =
  let t0 = Clock.now_ns () in
  let finish () =
    observe t (Int64.to_float (Int64.sub (Clock.now_ns ()) t0))
  in
  match f () with
  | result -> finish (); result
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    finish ();
    Printexc.raise_with_backtrace e bt

let count t = locked t (fun () -> t.count)
let sum t = locked t (fun () -> t.sum)

let mean_unlocked t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let mean t = locked t (fun () -> mean_unlocked t)

let min_value_unlocked t = if t.count = 0 then 0. else t.min_v
let max_value_unlocked t = if t.count = 0 then 0. else t.max_v
let min_value t = locked t (fun () -> min_value_unlocked t)
let max_value t = locked t (fun () -> max_value_unlocked t)

(* p in [0, 100].  Walk the buckets to the smallest representative
   whose cumulative count reaches rank ceil(p/100 * count); clamp into
   [min, max] so the tails are exact. *)
let percentile_unlocked t p =
  if t.count = 0 then 0.
  else if p <= 0. then t.min_v
  else if p >= 100. then t.max_v
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let rec walk i acc =
      if i >= n_buckets then t.max_v
      else
        let acc = acc + t.buckets.(i) in
        if acc >= rank then representative i else walk (i + 1) acc
    in
    let v = walk 0 0 in
    if v < t.min_v then t.min_v else if v > t.max_v then t.max_v else v
  end

let percentile t p = locked t (fun () -> percentile_unlocked t p)

type summary = {
  s_count : int;
  s_sum : float;
  s_mean : float;
  s_min : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_max : float;
}

(* One lock acquisition for the whole consistent reading. *)
let summary t =
  locked t @@ fun () ->
  {
    s_count = t.count;
    s_sum = t.sum;
    s_mean = mean_unlocked t;
    s_min = min_value_unlocked t;
    s_p50 = percentile_unlocked t 50.;
    s_p90 = percentile_unlocked t 90.;
    s_p99 = percentile_unlocked t 99.;
    s_max = max_value_unlocked t;
  }

let zero_summary = summary (create ())

(* [diff ~before after]: the observations recorded in [after] but not
   in the earlier copy [before].  Bucket counts and sums subtract
   exactly; min/max are only known to bucket resolution unless [before]
   was empty, in which case they are exact.  Works on consistent copies
   so the subtraction never sees a torn concurrent update. *)
let diff ~before after =
  let before = copy before and after = copy after in
  if before.count = 0 then after
  else begin
    let d = create () in
    d.count <- after.count - before.count;
    d.sum <- after.sum -. before.sum;
    for i = 0 to n_buckets - 1 do
      d.buckets.(i) <- after.buckets.(i) - before.buckets.(i)
    done;
    Array.iteri
      (fun i n ->
        if n > 0 then begin
          let r = representative i in
          if r < d.min_v then d.min_v <- r;
          if r > d.max_v then d.max_v <- r
        end)
      d.buckets;
    if d.count > 0 && d.min_v = infinity then begin
      (* all diff buckets cancelled (can only happen on misuse) *)
      d.min_v <- 0.;
      d.max_v <- 0.
    end;
    d
  end

let bucket_counts t =
  locked t @@ fun () ->
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (i, t.buckets.(i)) :: !acc
  done;
  !acc

let merge a b =
  let a = copy a and b = copy b in
  let m = create () in
  m.count <- a.count + b.count;
  m.sum <- a.sum +. b.sum;
  m.min_v <- Float.min a.min_v b.min_v;
  m.max_v <- Float.max a.max_v b.max_v;
  for i = 0 to n_buckets - 1 do
    m.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
  done;
  m
