(** Log-bucketed (HDR-style) histograms for latency and size
    distributions.

    Counters say how much work happened; histograms say how it was
    distributed — a single slow [sim.settle] hides inside a total but
    not inside a p99.  Buckets are geometric with 4 sub-buckets per
    octave, so quantiles carry a bounded relative error of
    [2^(1/4) - 1 ~ 19%] while [observe] stays O(1) with no allocation:
    cheap enough to keep in hot paths permanently.

    Values are nonnegative floats (negative and NaN observations clamp
    to 0); by convention time is recorded in nanoseconds and metric
    names carry a [_ns] suffix so renderers can humanise them.

    Create histograms through {!Metrics.histogram} to register them in
    the process-wide registry; a bare {!create} is for scratch use
    (tests, {!diff} results). *)

type t

val create : unit -> t

val observe : t -> float -> unit

val observe_int : t -> int -> unit

val time : t -> (unit -> 'a) -> 'a
(** [time t f] runs [f] and records its wall-clock duration in
    nanoseconds (also on exception). *)

val clear : t -> unit

val copy : t -> t
(** Detached deep copy — the "before" snapshot used by {!diff}. *)

(** {2 Statistics} *)

val count : t -> int
val sum : t -> float
val mean : t -> float

val min_value : t -> float
val max_value : t -> float
(** Exact extremes of everything observed (0 when empty). *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [[0, 100]] — the bucket-resolution
    quantile, clamped into [[min_value, max_value]]. *)

type summary = {
  s_count : int;
  s_sum : float;
  s_mean : float;
  s_min : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_max : float;
}

val summary : t -> summary

val zero_summary : summary

val diff : before:t -> t -> t
(** [diff ~before after] — the observations present in [after] but not
    in the {!copy} [before].  Counts and sums are exact; min/max are
    bucket-resolution approximations unless [before] was empty. *)

val bucket_counts : t -> (int * int) list
(** The nonzero buckets as [(index, count)] pairs in index order — the
    exact distribution {!merge} sums, exposed so merge laws can be
    checked bucket for bucket (not just through quantiles). *)

val merge : t -> t -> t
(** Bucket-wise sum of two histograms (exact): associative and
    commutative on count, sum, min, max, and every bucket count, with
    an empty histogram as identity. *)
