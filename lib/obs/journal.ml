(* Search provenance journal and failure flight recorder.  See the
   interface for the design contract; the two load-bearing invariants
   here are (a) the disabled [emit] path touches no allocation — every
   emit site is guarded by [enabled ()], one ref read — and (b) events
   carry logical sequence numbers only, assigned on arrival, so journals
   are deterministic across [--jobs] once {!capture} buffers are
   appended in input order. *)

type event =
  | Run_started of { phase : string; inner : int }
  | Candidate_started of { members : int list }
  | Fit_check of {
      inputs_used : int;
      outputs_used : int;
      pins_ok : bool;
      convex_ok : bool option;
      fits : bool;
    }
  | Removed of { node : int; rank : int; d_in : int option; d_out : int option }
  | Accepted of { members : int list; shape : string }
  | Rejected of { node : int; reason : string }
  | Anneal_move of {
      move : string;
      accepted : bool;
      temperature : float;
      energy : float;
    }
  | Pruned of { depth : int; bins_open : int; bound : float; best : float }
  | Exhaustive_best of { total : int; cost : float }
  | Deadline_expired of { phase : string; budget_s : float; nodes : int }
  | Verify_tier of { members : int list; tier : string; detail : string }
  | Cosim_shrink of { seed : int; round : int; steps : int }
  | Event_limit of { clock : int; queue_depth : int; last_node : int option }
  | Reliability_scored of {
      partitions : int;
      trials : int;
      severity : float;
      cache_hit : bool;
    }

let phase_of_event = function
  | Run_started { phase; _ } | Deadline_expired { phase; _ } -> phase
  | Candidate_started _ | Fit_check _ | Removed _ | Accepted _ | Rejected _ ->
    "paredown"
  | Anneal_move _ -> "annealing"
  | Pruned _ | Exhaustive_best _ -> "exhaustive"
  | Verify_tier _ -> "verify"
  | Cosim_shrink _ -> "cosim"
  | Event_limit _ -> "sim"
  | Reliability_scored _ -> "reliability"

let kind_of_event = function
  | Run_started _ -> "run_started"
  | Candidate_started _ -> "candidate_started"
  | Fit_check _ -> "fit_check"
  | Removed _ -> "removed"
  | Accepted _ -> "accepted"
  | Rejected _ -> "rejected"
  | Anneal_move _ -> "anneal_move"
  | Pruned _ -> "pruned"
  | Exhaustive_best _ -> "exhaustive_best"
  | Deadline_expired _ -> "deadline_expired"
  | Verify_tier _ -> "verify_tier"
  | Cosim_shrink _ -> "cosim_shrink"
  | Event_limit _ -> "event_limit"
  | Reliability_scored _ -> "reliability_scored"

let nodes_of_event = function
  | Candidate_started { members } -> members
  | Removed { node; _ } | Rejected { node; _ } -> [ node ]
  | Accepted { members; _ } | Verify_tier { members; _ } -> members
  | Event_limit { last_node = Some node; _ } -> [ node ]
  | Run_started _ | Fit_check _ | Anneal_move _ | Pruned _ | Exhaustive_best _
  | Deadline_expired _ | Cosim_shrink _ | Event_limit { last_node = None; _ }
  | Reliability_scored _ ->
    []

let pp_members ppf members =
  Format.fprintf ppf "{%s}"
    (String.concat " " (List.map string_of_int members))

let pp_opt_int ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some v -> Format.pp_print_int ppf v

let pp_event ppf = function
  | Run_started { phase; inner } ->
    Format.fprintf ppf "run started: %s over %d inner blocks" phase inner
  | Candidate_started { members } ->
    Format.fprintf ppf "candidate started %a" pp_members members
  | Fit_check { inputs_used; outputs_used; pins_ok; convex_ok; fits } ->
    Format.fprintf ppf "fit check: in=%d out=%d pins=%s convex=%s -> %s"
      inputs_used outputs_used
      (if pins_ok then "ok" else "over")
      (match convex_ok with
      | None -> "-"
      | Some true -> "ok"
      | Some false -> "broken")
      (if fits then "fits" else "does not fit")
  | Removed { node; rank; d_in; d_out } ->
    Format.fprintf ppf "removed node %d (rank %d, d_in=%a d_out=%a)" node rank
      pp_opt_int d_in pp_opt_int d_out
  | Accepted { members; shape } ->
    Format.fprintf ppf "accepted %a as %s" pp_members members shape
  | Rejected { node; reason } ->
    Format.fprintf ppf "rejected node %d (%s)" node reason
  | Anneal_move { move; accepted; temperature; energy } ->
    Format.fprintf ppf "%s move %s at T=%g (energy %g)" move
      (if accepted then "accepted" else "rejected")
      temperature energy
  | Pruned { depth; bins_open; bound; best } ->
    Format.fprintf ppf "pruned at depth %d (%d bins open, bound %g vs best %g)"
      depth bins_open bound best
  | Exhaustive_best { total; cost } ->
    Format.fprintf ppf "new best: %d blocks (cost %g)" total cost
  | Deadline_expired { phase; budget_s; nodes } ->
    Format.fprintf ppf "%s deadline expired after %d nodes (budget %gs)" phase
      nodes budget_s
  | Verify_tier { members; tier; detail } ->
    Format.fprintf ppf "verified %a via %s: %s" pp_members members tier detail
  | Cosim_shrink { seed; round; steps } ->
    Format.fprintf ppf "shrink round %d: %d steps left (seed %d)" round steps
      seed
  | Event_limit { clock; queue_depth; last_node } ->
    Format.fprintf ppf "event limit at clock %d (queue %d, last node %a)" clock
      queue_depth pp_opt_int last_node
  | Reliability_scored { partitions; trials; severity; cache_hit } ->
    Format.fprintf ppf
      "reliability scored: %d partitions -> severity %g (%s)" partitions
      severity
      (if cache_hit then "cache hit"
       else Printf.sprintf "%d trials" trials)

(* ------------------------------------------------------------------ *)
(* Storage: a growable array that, once it reaches a positive
   [capacity], wraps as a ring with [head] pointing at the oldest
   retained event.  [total] never stops counting, so the sequence
   number of retained event [i] is [total - len + i]. *)

type t = {
  mutable store : event array;
  mutable len : int;
  mutable head : int;
  capacity : int; (* 0 = unbounded *)
  mutable total : int;
}

let dummy_event = Run_started { phase = ""; inner = 0 }

let create ?(capacity = 0) () =
  { store = [||]; len = 0; head = 0; capacity; total = 0 }

let push t e =
  if t.capacity > 0 && t.len = t.capacity then begin
    t.store.(t.head) <- e;
    t.head <- (t.head + 1) mod t.capacity
  end
  else begin
    let cap = Array.length t.store in
    if t.len = cap then begin
      let ncap = max 16 (2 * cap) in
      let ncap = if t.capacity > 0 then min ncap t.capacity else ncap in
      let ns = Array.make ncap dummy_event in
      Array.blit t.store 0 ns 0 t.len;
      t.store <- ns
    end;
    t.store.(t.len) <- e;
    t.len <- t.len + 1
  end;
  t.total <- t.total + 1

let events t =
  let base = t.total - t.len in
  let cap = Array.length t.store in
  List.init t.len (fun i -> (base + i, t.store.((t.head + i) mod cap)))

let total t = t.total
let dropped t = t.total - t.len

(* ------------------------------------------------------------------ *)
(* The current journal and per-domain capture buffers.  [current] is
   set before any worker domain spawns and read-only while they run;
   worker emissions always land in a capture buffer (Parallel.map wraps
   every item), so the shared journal is only mutated by the main
   domain. *)

let current : t option ref = ref None

let capture_slot : event list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let enabled () = match !current with Some _ -> true | None -> false

let emit e =
  let slot = Domain.DLS.get capture_slot in
  match !slot with
  | Some buf -> buf := e :: !buf
  | None -> ( match !current with Some t -> push t e | None -> ())

type buffer = event list ref

let capture f =
  let slot = Domain.DLS.get capture_slot in
  let saved = !slot in
  let buf : buffer = ref [] in
  slot := Some buf;
  Fun.protect
    ~finally:(fun () -> slot := saved)
    (fun () ->
      let r = f () in
      (r, buf))

let append (buf : buffer) =
  match !current with
  | None -> ()
  | Some t -> List.iter (push t) (List.rev !buf)

(* ------------------------------------------------------------------ *)
(* JSONL serialisation *)

let schema_name = "paredown-journal"
let schema_version = 1

let num i = Json.Num (float_of_int i)
let num_list l = Json.Arr (List.map num l)
let opt_num = function None -> Json.Null | Some v -> num v
let opt_bool = function None -> Json.Null | Some b -> Json.Bool b

let fields_of_event = function
  | Run_started { phase = _; inner } -> [ ("inner", num inner) ]
  | Candidate_started { members } -> [ ("members", num_list members) ]
  | Fit_check { inputs_used; outputs_used; pins_ok; convex_ok; fits } ->
    [
      ("inputs_used", num inputs_used);
      ("outputs_used", num outputs_used);
      ("pins_ok", Json.Bool pins_ok);
      ("convex_ok", opt_bool convex_ok);
      ("fits", Json.Bool fits);
    ]
  | Removed { node; rank; d_in; d_out } ->
    [
      ("node", num node);
      ("rank", num rank);
      ("d_in", opt_num d_in);
      ("d_out", opt_num d_out);
    ]
  | Accepted { members; shape } ->
    [ ("members", num_list members); ("shape", Json.Str shape) ]
  | Rejected { node; reason } ->
    [ ("node", num node); ("reason", Json.Str reason) ]
  | Anneal_move { move; accepted; temperature; energy } ->
    [
      ("move", Json.Str move);
      ("accepted", Json.Bool accepted);
      ("temperature", Json.Num temperature);
      ("energy", Json.Num energy);
    ]
  | Pruned { depth; bins_open; bound; best } ->
    [
      ("depth", num depth);
      ("bins_open", num bins_open);
      ("bound", Json.Num bound);
      ("best", Json.Num best);
    ]
  | Exhaustive_best { total; cost } ->
    [ ("total", num total); ("cost", Json.Num cost) ]
  | Deadline_expired { phase = _; budget_s; nodes } ->
    [ ("budget_s", Json.Num budget_s); ("nodes", num nodes) ]
  | Verify_tier { members; tier; detail } ->
    [
      ("members", num_list members);
      ("tier", Json.Str tier);
      ("detail", Json.Str detail);
    ]
  | Cosim_shrink { seed; round; steps } ->
    [ ("seed", num seed); ("round", num round); ("steps", num steps) ]
  | Event_limit { clock; queue_depth; last_node } ->
    [
      ("clock", num clock);
      ("queue_depth", num queue_depth);
      ("last_node", opt_num last_node);
    ]
  | Reliability_scored { partitions; trials; severity; cache_hit } ->
    [
      ("partitions", num partitions);
      ("trials", num trials);
      ("severity", Json.Num severity);
      ("cache_hit", Json.Bool cache_hit);
    ]

let json_of_event ~seq e =
  Json.Obj
    (("seq", num seq)
    :: ("phase", Json.Str (phase_of_event e))
    :: ("kind", Json.Str (kind_of_event e))
    :: fields_of_event e)

let header_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("version", num schema_version);
      ("total", num t.total);
      ("dropped", num (dropped t));
    ]

let to_jsonl t =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Json.to_string (header_json t));
  Buffer.add_char b '\n';
  List.iter
    (fun (seq, e) ->
      Buffer.add_string b (Json.to_string (json_of_event ~seq e));
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl t))

(* ------------------------------------------------------------------ *)
(* Parsing *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  let* v = field name j in
  match Json.to_float v with
  | Some f -> Ok (int_of_float f)
  | None -> Error (Printf.sprintf "field %S: number expected" name)

let float_field name j =
  let* v = field name j in
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: number expected" name)

let str_field name j =
  let* v = field name j in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: string expected" name)

let bool_field name j =
  let* v = field name j in
  match v with
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S: bool expected" name)

let opt_int_field name j =
  let* v = field name j in
  match v with
  | Json.Null -> Ok None
  | Json.Num f -> Ok (Some (int_of_float f))
  | _ -> Error (Printf.sprintf "field %S: number or null expected" name)

let opt_bool_field name j =
  let* v = field name j in
  match v with
  | Json.Null -> Ok None
  | Json.Bool b -> Ok (Some b)
  | _ -> Error (Printf.sprintf "field %S: bool or null expected" name)

let int_list_field name j =
  let* v = field name j in
  match v with
  | Json.Arr items ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Num f :: rest -> go (int_of_float f :: acc) rest
      | _ -> Error (Printf.sprintf "field %S: int array expected" name)
    in
    go [] items
  | _ -> Error (Printf.sprintf "field %S: array expected" name)

let event_of_json j =
  let* kind = str_field "kind" j in
  match kind with
  | "run_started" ->
    let* phase = str_field "phase" j in
    let* inner = int_field "inner" j in
    Ok (Run_started { phase; inner })
  | "candidate_started" ->
    let* members = int_list_field "members" j in
    Ok (Candidate_started { members })
  | "fit_check" ->
    let* inputs_used = int_field "inputs_used" j in
    let* outputs_used = int_field "outputs_used" j in
    let* pins_ok = bool_field "pins_ok" j in
    let* convex_ok = opt_bool_field "convex_ok" j in
    let* fits = bool_field "fits" j in
    Ok (Fit_check { inputs_used; outputs_used; pins_ok; convex_ok; fits })
  | "removed" ->
    let* node = int_field "node" j in
    let* rank = int_field "rank" j in
    let* d_in = opt_int_field "d_in" j in
    let* d_out = opt_int_field "d_out" j in
    Ok (Removed { node; rank; d_in; d_out })
  | "accepted" ->
    let* members = int_list_field "members" j in
    let* shape = str_field "shape" j in
    Ok (Accepted { members; shape })
  | "rejected" ->
    let* node = int_field "node" j in
    let* reason = str_field "reason" j in
    Ok (Rejected { node; reason })
  | "anneal_move" ->
    let* move = str_field "move" j in
    let* accepted = bool_field "accepted" j in
    let* temperature = float_field "temperature" j in
    let* energy = float_field "energy" j in
    Ok (Anneal_move { move; accepted; temperature; energy })
  | "pruned" ->
    let* depth = int_field "depth" j in
    let* bins_open = int_field "bins_open" j in
    let* bound = float_field "bound" j in
    let* best = float_field "best" j in
    Ok (Pruned { depth; bins_open; bound; best })
  | "exhaustive_best" ->
    let* total = int_field "total" j in
    let* cost = float_field "cost" j in
    Ok (Exhaustive_best { total; cost })
  | "deadline_expired" ->
    let* phase = str_field "phase" j in
    let* budget_s = float_field "budget_s" j in
    let* nodes = int_field "nodes" j in
    Ok (Deadline_expired { phase; budget_s; nodes })
  | "verify_tier" ->
    let* members = int_list_field "members" j in
    let* tier = str_field "tier" j in
    let* detail = str_field "detail" j in
    Ok (Verify_tier { members; tier; detail })
  | "cosim_shrink" ->
    let* seed = int_field "seed" j in
    let* round = int_field "round" j in
    let* steps = int_field "steps" j in
    Ok (Cosim_shrink { seed; round; steps })
  | "event_limit" ->
    let* clock = int_field "clock" j in
    let* queue_depth = int_field "queue_depth" j in
    let* last_node = opt_int_field "last_node" j in
    Ok (Event_limit { clock; queue_depth; last_node })
  | "reliability_scored" ->
    let* partitions = int_field "partitions" j in
    let* trials = int_field "trials" j in
    let* severity = float_field "severity" j in
    let* cache_hit = bool_field "cache_hit" j in
    Ok (Reliability_scored { partitions; trials; severity; cache_hit })
  | k -> Error (Printf.sprintf "unknown event kind %S" k)

(* ------------------------------------------------------------------ *)
(* Post-mortem bundles / flight recorder *)

let bundle_schema_name = "paredown-postmortem"

let post_mortem_json ~reason t =
  let snapshot = Snapshot.capture ?git_rev:(Snapshot.git_rev ()) () in
  Json.Obj
    [
      ("schema", Json.Str bundle_schema_name);
      ("version", num schema_version);
      ("reason", Json.Str reason);
      ("total", num t.total);
      ("dropped", num (dropped t));
      ( "journal",
        Json.Arr (List.map (fun (seq, e) -> json_of_event ~seq e) (events t))
      );
      ("snapshot", Snapshot.to_json snapshot);
    ]

let write_post_mortem ~reason ~out t =
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:2 (post_mortem_json ~reason t));
      output_char oc '\n')

let armed_out : string option ref = ref None
let dumped = Atomic.make false

let install ?capacity () =
  let t = create ?capacity () in
  current := Some t;
  t

let uninstall () =
  let t = !current in
  current := None;
  armed_out := None;
  t

let arm_post_mortem ?(capacity = 4096) ~out () =
  (match !current with None -> ignore (install ~capacity ()) | Some _ -> ());
  armed_out := Some out;
  Atomic.set dumped false

let note_failure reason =
  match !armed_out with
  | None -> ()
  | Some out ->
    if not (Atomic.exchange dumped true) then (
      match !current with
      | Some t -> ( try write_post_mortem ~reason ~out t with Sys_error _ -> ())
      | None -> ())

let maybe_enable_from_env () =
  (match Sys.getenv_opt "PAREDOWN_JOURNAL" with
  | Some file when file <> "" ->
    let t = install () in
    (* A named Flush slot, not a bare at_exit: calling this again (or a
       daemon re-arming per batch) swaps the writer instead of
       accumulating one exit closure per call. *)
    Flush.arm ~slot:"journal.env" (fun () ->
        try write_file t file with Sys_error _ -> ())
  | _ -> ());
  match Sys.getenv_opt "PAREDOWN_FLIGHT_RECORD" with
  | Some file when file <> "" -> arm_post_mortem ~out:file ()
  | _ -> ()

let reset () =
  current := None;
  armed_out := None;
  Flush.disarm ~slot:"journal.env";
  Atomic.set dumped false

(* ------------------------------------------------------------------ *)
(* Loading *)

type loaded = {
  l_events : (int * event) list;
  l_total : int;
  l_dropped : int;
  l_reason : string option;
}

let loaded_of_bundle j =
  let* reason = str_field "reason" j in
  let* l_total = int_field "total" j in
  let* l_dropped = int_field "dropped" j in
  let* entries = field "journal" j in
  match entries with
  | Json.Arr items ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        let* seq = int_field "seq" item in
        let* e = event_of_json item in
        go ((seq, e) :: acc) rest
    in
    let* l_events = go [] items in
    Ok { l_events; l_total; l_dropped; l_reason = Some reason }
  | _ -> Error "field \"journal\": array expected"

let loaded_of_jsonl header lines =
  let* schema = str_field "schema" header in
  if schema <> schema_name then
    Error (Printf.sprintf "unexpected schema %S" schema)
  else
    let* version = int_field "version" header in
    if version <> schema_version then
      Error (Printf.sprintf "unsupported journal version %d" version)
    else
      let* l_total = int_field "total" header in
      let* l_dropped = int_field "dropped" header in
      let rec go acc lineno = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
          match Json.of_string line with
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
          | Ok j ->
            let* seq = int_field "seq" j in
            let* e = event_of_json j in
            go ((seq, e) :: acc) (lineno + 1) rest)
      in
      let* l_events = go [] 2 lines in
      Ok { l_events; l_total; l_dropped; l_reason = None }

let load_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty journal"
  | first :: rest -> (
    match Json.of_string first with
    | Ok header when Json.member "schema" header = Some (Json.Str schema_name)
      ->
      loaded_of_jsonl header rest
    | _ -> (
      (* Not a JSONL header line: the whole document must be a
         post-mortem bundle (typically pretty-printed). *)
      match Json.of_string s with
      | Error msg -> Error msg
      | Ok j -> (
        match Json.member "schema" j with
        | Some (Json.Str name) when name = bundle_schema_name ->
          loaded_of_bundle j
        | Some (Json.Str name) ->
          Error (Printf.sprintf "unexpected schema %S" name)
        | _ -> Error "not a journal or post-mortem bundle")))

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> load_string s
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Queries (the [explain] CLI) *)

let fit_check_count l =
  List.fold_left
    (fun n (_, e) -> match e with Fit_check _ -> n + 1 | _ -> n)
    0 l.l_events

let bump assoc key =
  match List.assoc_opt key assoc with
  | Some n -> (key, n + 1) :: List.remove_assoc key assoc
  | None -> (key, 1) :: assoc

let summary l =
  let by_kind, reject_reasons =
    List.fold_left
      (fun (by_kind, rejects) (_, e) ->
        let by_kind = bump by_kind (phase_of_event e, kind_of_event e) in
        let rejects =
          match e with
          | Rejected { reason; _ } -> bump rejects reason
          | Fit_check { fits = false; pins_ok; _ } ->
            bump rejects (if pins_ok then "fit:convexity" else "fit:pins")
          | _ -> rejects
        in
        (by_kind, rejects))
      ([], []) l.l_events
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "journal: %d decisions (%d dropped by ring)\n" l.l_total
       l.l_dropped);
  (match l.l_reason with
  | Some reason ->
    Buffer.add_string b (Printf.sprintf "post-mortem reason: %s\n" reason)
  | None -> ());
  Buffer.add_char b '\n';
  let sorted = List.sort compare by_kind in
  Buffer.add_string b
    (Metrics.render_table
       ([ "phase"; "kind"; "count" ]
       :: List.map
            (fun ((phase, kind), n) -> [ phase; kind; string_of_int n ])
            sorted));
  if reject_reasons <> [] then begin
    Buffer.add_string b "\nreject reasons\n";
    Buffer.add_string b
      (Metrics.render_table
         ([ "reason"; "count" ]
         :: List.map
              (fun (reason, n) -> [ reason; string_of_int n ])
              (List.sort compare reject_reasons)))
  end;
  Buffer.add_string b
    (Printf.sprintf "\nparedown fit checks: %d\n" (fit_check_count l));
  Buffer.contents b

let render_event (seq, e) =
  Format.asprintf "#%-6d %-10s %a" seq (phase_of_event e) pp_event e

let why ~node l =
  let hits =
    List.filter (fun (_, e) -> List.mem node (nodes_of_event e)) l.l_events
  in
  if hits = [] then
    Printf.sprintf "no recorded decision touched node %d\n" node
  else
    String.concat "" (List.map (fun hit -> render_event hit ^ "\n") hits)

let diff a b =
  let rec go = function
    | [], [] ->
      Printf.sprintf "identical (%d decisions)" (List.length a.l_events)
    | (seq, e) :: _, [] ->
      Printf.sprintf
        "journals diverge at seq %d: B ends after %d decisions\n  A: %s" seq
        (List.length b.l_events)
        (render_event (seq, e))
    | [], (seq, e) :: _ ->
      Printf.sprintf
        "journals diverge at seq %d: A ends after %d decisions\n  B: %s" seq
        (List.length a.l_events)
        (render_event (seq, e))
    | ((sa, ea) as ha) :: ta, ((sb, eb) as hb) :: tb ->
      if sa = sb && ea = eb then go (ta, tb)
      else
        Printf.sprintf "journals diverge at seq %d:\n  A: %s\n  B: %s"
          (min sa sb) (render_event ha) (render_event hb)
  in
  go (a.l_events, b.l_events)
