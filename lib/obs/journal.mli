(** Search provenance journal and failure flight recorder.

    PareDown and its sibling search engines make thousands of
    accept/reject decisions per synthesis run; metrics count them and
    spans time them, but the {e reasons} — which candidate was
    considered, what the pin/convexity verdict was, why a block was
    evicted, which verification tier judged a partition — are gone the
    moment the run ends.  The journal records those decisions as typed
    events and serialises them as append-only JSONL that the
    [paredown explain] subcommands can query long after the process
    exited (see [doc/provenance.md]).

    Design constraints, in order:

    - {b Zero cost when disabled.}  Emit sites are guarded with
      [if Journal.enabled () then Journal.emit (...)]; the disabled
      path is one ref read and one branch — no allocation, no event
      construction (benchmarked in the [journal] bench group and
      asserted ≤1% of a fit check's cost in [test/test_journal.ml]).
    - {b Deterministic across [--jobs].}  Events carry no wall-clock
      timestamps, only logical sequence numbers assigned when they
      reach the journal.  During a {!Parallel.map} fan-out each work
      item's events are captured into a per-domain buffer ({!capture})
      and appended in {e input (seed) order} after the join, so a
      [--jobs N] journal is byte-identical to the sequential one.
    - {b Bounded when armed as a flight recorder.}  A ring of
      [capacity] events (default 4096) keeps the tail of the decision
      history; on deadline expiry, [Event_limit_exceeded], or a failed
      verification, {!note_failure} dumps a post-mortem JSON bundle
      (journal tail + {!Snapshot.capture} metrics + git rev).

    Threading contract: outside {!capture} scopes only the main domain
    may emit (the tool chain is single-threaded apart from
    {!Parallel.map}, which always captures). *)

(** {1 Events}

    One constructor per decision kind.  Node ids are plain ints here
    ([Obs] sits below [Netlist]); phases name the emitting subsystem. *)

type event =
  | Run_started of { phase : string; inner : int }
      (** a search engine started on a design with [inner] inner blocks *)
  | Candidate_started of { members : int list }
      (** PareDown: a merge candidate (the current working set) opened *)
  | Fit_check of {
      inputs_used : int;
      outputs_used : int;
      pins_ok : bool;
      convex_ok : bool option;  (** [None]: not evaluated (pins already failed, or convexity not required) *)
      fits : bool;
    }  (** PareDown: one fits-in-a-programmable-block test (the §4.2 quantity) *)
  | Removed of {
      node : int;
      rank : int;
      d_in : int option;  (** [Dense.removal_delta] input-pin component (per-edge counting only) *)
      d_out : int option;
    }  (** PareDown: border block evicted from the candidate *)
  | Accepted of { members : int list; shape : string }
      (** PareDown: candidate accepted onto a programmable block *)
  | Rejected of { node : int; reason : string }
      (** PareDown: block left pre-defined ([left_single]) or set aside
          ([unplaceable]) *)
  | Anneal_move of {
      move : string;
      accepted : bool;
      temperature : float;
      energy : float;
    }  (** Annealing: a proposed move and the Metropolis verdict *)
  | Pruned of { depth : int; bins_open : int; bound : float; best : float }
      (** Exhaustive: subtree cut because [bound] cannot beat [best] *)
  | Exhaustive_best of { total : int; cost : float }
      (** Exhaustive: a new incumbent solution at a valid leaf *)
  | Deadline_expired of { phase : string; budget_s : float; nodes : int }
      (** a search abandoned at its deadline after [nodes] tree nodes *)
  | Verify_tier of { members : int list; tier : string; detail : string }
      (** Verify: the evidence tier that judged a partition *)
  | Cosim_shrink of { seed : int; round : int; steps : int }
      (** Cosim: counterexample length after a delta-debugging round *)
  | Event_limit of { clock : int; queue_depth : int; last_node : int option }
      (** Sim: the engine hit its settle event limit *)
  | Reliability_scored of {
      partitions : int;
      trials : int;
      severity : float;
      cache_hit : bool;
    }
      (** Reliability: a candidate solution's expected degradation was
          consulted by the Monte-Carlo estimator — [trials] is 0 and
          [cache_hit] true when the canonical partition fingerprint
          resolved in the memo cache without re-simulating *)

val phase_of_event : event -> string
(** ["paredown"], ["exhaustive"], ["annealing"], ["verify"], ["cosim"],
    ["sim"], ["reliability"], or the [Run_started]/[Deadline_expired]
    payload phase. *)

val kind_of_event : event -> string
(** Stable snake_case tag, e.g. ["fit_check"] — the JSONL [kind] field. *)

val nodes_of_event : event -> int list
(** The block ids a decision explicitly touched ([explain why] uses
    this); empty for per-candidate quantities like fit checks. *)

val pp_event : Format.formatter -> event -> unit
(** One-line human rendering, used by [explain why]/[explain diff]. *)

(** {1 The journal} *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh journal.  [capacity] 0 (default) grows without bound;
    [capacity] > 0 is a ring keeping the newest [capacity] events. *)

val install : ?capacity:int -> unit -> t
(** {!create} and make it the process-wide current journal ({!emit}
    targets it). *)

val uninstall : unit -> t option
(** Clear the current journal (and disarm the flight recorder),
    returning it for inspection. *)

val enabled : unit -> bool
(** [true] iff a journal is installed.  The guard every emit site
    checks; when [false] the site costs one load and one branch. *)

val emit : event -> unit
(** Append to the current capture buffer if one is active on this
    domain, else to the current journal; no-op when disabled. *)

val events : t -> (int * event) list
(** Retained events in emission order with their sequence numbers
    (ring journals: the tail; sequence numbers still count from 0). *)

val total : t -> int
(** Events ever emitted, including any overwritten by the ring. *)

val dropped : t -> int
(** [total - retained]: events the ring overwrote. *)

(** {1 Parallel capture} *)

type buffer

val capture : (unit -> 'a) -> 'a * buffer
(** [capture f] redirects this domain's {!emit}s into a fresh buffer
    for the duration of [f] (restored on return and on exception).
    {!Parallel.map} wraps every work item in a capture and then
    {!append}s the buffers in input order, which is what keeps
    [--jobs N] journals byte-identical. *)

val append : buffer -> unit
(** Append a captured buffer's events to the current journal (no-op
    when disabled). *)

(** {1 Serialisation (JSONL)} *)

val schema_name : string
(** ["paredown-journal"] *)

val schema_version : int

val to_jsonl : t -> string
(** Header line (schema, version, total, dropped) followed by one JSON
    object per retained event.  Deterministic: no timestamps. *)

val write_file : t -> string -> unit

(** {1 Post-mortem bundles / flight recorder} *)

val bundle_schema_name : string
(** ["paredown-postmortem"] *)

val post_mortem_json : reason:string -> t -> Json.t
(** The bundle: schema, version, [reason], the journal tail, and a full
    {!Snapshot.capture} (metrics registry, git rev, OCaml version). *)

val write_post_mortem : reason:string -> out:string -> t -> unit

val arm_post_mortem : ?capacity:int -> out:string -> unit -> unit
(** Arm the flight recorder: install a ring journal of [capacity]
    (default 4096) if none is installed, and make {!note_failure} dump
    a bundle to [out].  Idempotent re-arming replaces the path. *)

val note_failure : string -> unit
(** Called at the failure sites (exhaustive deadline expiry,
    [Sim.Engine.Event_limit_exceeded], a [Failed] verification
    verdict, CLI-level exceptions): if the flight recorder is armed,
    write the post-mortem bundle — first failure wins, later calls are
    no-ops.  Unarmed, this is free. *)

val maybe_enable_from_env : unit -> unit
(** Entry-point hook for the binaries: [PAREDOWN_JOURNAL=FILE]
    installs an unbounded journal written to [FILE] at exit;
    [PAREDOWN_FLIGHT_RECORD=FILE] arms the flight recorder (used by
    [make verify-fuzz] so CI failures leave a bundle to upload). *)

val reset : unit -> unit
(** Uninstall, disarm, and forget any previous post-mortem dump (test
    isolation). *)

(** {1 Loading and queries (the [explain] CLI)} *)

type loaded = {
  l_events : (int * event) list;  (** sequence number, event *)
  l_total : int;
  l_dropped : int;
  l_reason : string option;  (** [Some] when loaded from a post-mortem bundle *)
}

val load_string : string -> (loaded, string) result
(** Accepts both formats: a JSONL journal (header + event lines) or a
    post-mortem bundle (one JSON object). *)

val load_file : string -> (loaded, string) result

val summary : loaded -> string
(** [explain summary]: per-phase decision counts by kind, the
    reject-reason histogram, and the fit-check total (which must equal
    the run's [core.paredown.fit_checks] metric). *)

val fit_check_count : loaded -> int
(** Number of [Fit_check] events — the quantity [summary] reports and
    tests compare against the metrics registry. *)

val why : node:int -> loaded -> string
(** [explain why NODE]: every decision whose {!nodes_of_event} contains
    [NODE], in journal order. *)

val diff : loaded -> loaded -> string
(** [explain diff A B]: ["identical (N decisions)"] when the event
    sequences match, else the first divergent sequence number with both
    renderings (and a length note when one journal is a prefix of the
    other). *)
