type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

(* RFC 8259 string escaping, complete: quote, backslash, the short
   escapes, every remaining control character (0x00-0x1f) as \u00XX,
   plus DEL for terminal hygiene. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 || Char.code c = 0x7f ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* A float rendered as a JSON number: integral values print as
   integers (so counters round-trip through Num without a spurious
   ".0"), everything else with enough digits to round-trip. *)
let number_to_string v =
  if not (Float.is_finite v) then "0" (* JSON has no inf/nan *)
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write ~indent ~level buf t =
  let pad n = if indent > 0 then Buffer.add_string buf (String.make (n * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (number_to_string v)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin Buffer.add_char buf ','; nl () end;
        pad (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin Buffer.add_char buf ','; nl () end;
        pad (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        if indent > 0 then Buffer.add_char buf ' ';
        write ~indent ~level:(level + 1) buf v)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = 0) t =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing — recursive descent over the full RFC 8259 grammar. *)

exception Parse_error of int * string

let utf8_add buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let default_max_depth = 512

let of_string ?(max_depth = default_max_depth) s =
  let n = String.length s in
  let fail i msg = raise (Parse_error (i, msg)) in
  let rec skip_ws i =
    if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r')
    then skip_ws (i + 1)
    else i
  in
  let hex i =
    match s.[i] with
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | _ -> fail i "hex digit expected"
  in
  let hex4 i =
    if i + 4 > n then fail i "truncated \\u escape";
    (hex i lsl 12) lor (hex (i + 1) lsl 8) lor (hex (i + 2) lsl 4)
    lor hex (i + 3)
  in
  let rec string_body buf i =
    if i >= n then fail i "unterminated string"
    else
      match s.[i] with
      | '"' -> (Buffer.contents buf, i + 1)
      | '\\' ->
        if i + 1 >= n then fail i "dangling escape"
        else begin
          match s.[i + 1] with
          | '"' -> Buffer.add_char buf '"'; string_body buf (i + 2)
          | '\\' -> Buffer.add_char buf '\\'; string_body buf (i + 2)
          | '/' -> Buffer.add_char buf '/'; string_body buf (i + 2)
          | 'b' -> Buffer.add_char buf '\b'; string_body buf (i + 2)
          | 'f' -> Buffer.add_char buf '\012'; string_body buf (i + 2)
          | 'n' -> Buffer.add_char buf '\n'; string_body buf (i + 2)
          | 'r' -> Buffer.add_char buf '\r'; string_body buf (i + 2)
          | 't' -> Buffer.add_char buf '\t'; string_body buf (i + 2)
          | 'u' ->
            let code = hex4 (i + 2) in
            if code >= 0xd800 && code <= 0xdbff
               && i + 11 < n && s.[i + 6] = '\\' && s.[i + 7] = 'u'
            then begin
              let low = hex4 (i + 8) in
              if low >= 0xdc00 && low <= 0xdfff then begin
                utf8_add buf
                  (0x10000 + ((code - 0xd800) lsl 10) + (low - 0xdc00));
                string_body buf (i + 12)
              end
              else fail i "unpaired high surrogate"
            end
            else if code >= 0xd800 && code <= 0xdfff then
              fail i "unpaired surrogate"
            else begin
              utf8_add buf code;
              string_body buf (i + 6)
            end
          | c -> fail i (Printf.sprintf "bad escape %C" c)
        end
      | c when Char.code c < 0x20 -> fail i "raw control character in string"
      | c -> Buffer.add_char buf c; string_body buf (i + 1)
  in
  let string_lit i = string_body (Buffer.create 16) i in
  let number i =
    let j = ref (if s.[i] = '-' then i + 1 else i) in
    let digits start =
      let k = ref start in
      while !k < n && s.[!k] >= '0' && s.[!k] <= '9' do incr k done;
      if !k = start then fail start "digit expected";
      !k
    in
    let int_start = !j in
    j := digits !j;
    (* RFC 8259: the integer part is "0" or starts with 1-9 *)
    if s.[int_start] = '0' && !j > int_start + 1 then
      fail int_start "leading zero";
    if !j < n && s.[!j] = '.' then j := digits (!j + 1);
    if !j < n && (s.[!j] = 'e' || s.[!j] = 'E') then begin
      let k = !j + 1 in
      let k = if k < n && (s.[k] = '+' || s.[k] = '-') then k + 1 else k in
      j := digits k
    end;
    (Num (float_of_string (String.sub s i (!j - i))), !j)
  in
  (* [depth] counts the containers already open around this point; a
     container may only open while it is strictly below [max_depth], so
     both recursion depth and stack use stay bounded on hostile
     deeply-nested input (the parser now fronts a network service). *)
  let rec value depth i =
    let i = skip_ws i in
    if i >= n then fail i "value expected"
    else
      match s.[i] with
      | '{' ->
        if depth >= max_depth then
          fail i (Printf.sprintf "nesting deeper than %d" max_depth)
        else obj (depth + 1) [] (skip_ws (i + 1))
      | '[' ->
        if depth >= max_depth then
          fail i (Printf.sprintf "nesting deeper than %d" max_depth)
        else arr (depth + 1) [] (skip_ws (i + 1))
      | '"' ->
        let str, j = string_lit (i + 1) in
        (Str str, j)
      | 't' -> lit i "true" (Bool true)
      | 'f' -> lit i "false" (Bool false)
      | 'n' -> lit i "null" Null
      | '-' | '0' .. '9' -> number i
      | c -> fail i (Printf.sprintf "unexpected %C" c)
  and lit i word v =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then (v, i + l)
    else fail i ("expected " ^ word)
  and obj depth acc i =
    (* the closing brace is only legal before the first field — after a
       comma a field must follow (no trailing commas in RFC 8259) *)
    if acc = [] && i < n && s.[i] = '}' then (Obj [], i + 1)
    else begin
      let i = skip_ws i in
      if i >= n || s.[i] <> '"' then fail i "object key expected";
      let key, i = string_lit (i + 1) in
      let i = skip_ws i in
      if i >= n || s.[i] <> ':' then fail i "colon expected";
      let v, i = value depth (i + 1) in
      let i = skip_ws i in
      if i < n && s.[i] = ',' then obj depth ((key, v) :: acc) (skip_ws (i + 1))
      else if i < n && s.[i] = '}' then (Obj (List.rev ((key, v) :: acc)), i + 1)
      else fail i "comma or } expected"
    end
  and arr depth acc i =
    if acc = [] && i < n && s.[i] = ']' then (Arr [], i + 1)
    else begin
      let v, i = value depth i in
      let i = skip_ws i in
      if i < n && s.[i] = ',' then arr depth (v :: acc) (skip_ws (i + 1))
      else if i < n && s.[i] = ']' then (Arr (List.rev (v :: acc)), i + 1)
      else fail i "comma or ] expected"
    end
  in
  match value 0 0 with
  | v, i ->
    let i = skip_ws i in
    if i <> n then Error (Printf.sprintf "trailing garbage at byte %d" i)
    else Ok v
  | exception Parse_error (i, msg) ->
    Error (Printf.sprintf "invalid JSON at byte %d: %s" i msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_obj = function Obj fields -> Some fields | _ -> None
