(** A minimal JSON document model, printer, and parser (RFC 8259).

    No JSON library is vendored in this tool chain, and the documents
    it reads and writes — Chrome trace events, perf snapshots — are
    small and regular, so this module keeps the dependency surface at
    zero.  The parser accepts full JSON (escapes, surrogate pairs,
    exponents); the printer escapes every control character, so any
    string is safe to embed. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping: quote, backslash, [\b \f \n \r \t],
    remaining control characters (and DEL) as [\uXXXX].  The result is
    what goes {e between} the quotes. *)

val to_string : ?indent:int -> t -> string
(** Serialise; [indent] > 0 pretty-prints with that many spaces per
    level (default compact). *)

val default_max_depth : int
(** 512 — generous for every document this tool chain produces. *)

val of_string : ?max_depth:int -> string -> (t, string) result
(** Parse a complete JSON document.  [max_depth] (default
    {!default_max_depth}) bounds container nesting: a document with more
    than [max_depth] nested arrays/objects returns [Error] instead of
    recursing without bound — the parser sits on the service's network
    boundary, where a hostile deeply-nested body must not overflow the
    stack. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_float : t -> float option
val to_str : t -> string option
val to_obj : t -> (string * t) list option
