(** A minimal JSON document model, printer, and parser (RFC 8259).

    No JSON library is vendored in this tool chain, and the documents
    it reads and writes — Chrome trace events, perf snapshots — are
    small and regular, so this module keeps the dependency surface at
    zero.  The parser accepts full JSON (escapes, surrogate pairs,
    exponents); the printer escapes every control character, so any
    string is safe to embed. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping: quote, backslash, [\b \f \n \r \t],
    remaining control characters (and DEL) as [\uXXXX].  The result is
    what goes {e between} the quotes. *)

val to_string : ?indent:int -> t -> string
(** Serialise; [indent] > 0 pretty-prints with that many spaces per
    level (default compact). *)

val of_string : string -> (t, string) result

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_float : t -> float option
val to_str : t -> string option
val to_obj : t -> (string * t) list option
