(* A bounded least-recently-used map with string keys.  The intrusive
   doubly-linked recency list makes find/put O(1); [prev] points toward
   the most-recently-used end, [next] toward the least.  Shared by the
   reliability estimator's memo cache and the service solution cache —
   both used to grow without bound, which a one-shot sweep never
   notices and a resident daemon cannot afford. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* neighbour toward the MRU end *)
  mutable next : 'v node option;  (* neighbour toward the LRU end *)
}

type 'v t = {
  capacity : int;
  table : (string, 'v node) Hashtbl.t;
  mutable mru : 'v node option;
  mutable lru : 'v node option;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    mru = None;
    lru = None;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_mru t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
    unlink t n;
    push_mru t n;
    Some n.value

let mem t key = Hashtbl.mem t.table key

let put t key value =
  match Hashtbl.find_opt t.table key with
  | Some n ->
    n.value <- value;
    unlink t n;
    push_mru t n
  | None ->
    if Hashtbl.length t.table >= t.capacity then begin
      match t.lru with
      | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.key;
        t.evictions <- t.evictions + 1
      | None -> ()
    end;
    let n = { key; value; prev = None; next = None } in
    Hashtbl.add t.table key n;
    push_mru t n

let length t = Hashtbl.length t.table
let capacity t = t.capacity
let evictions t = t.evictions

let fold_oldest_first f t acc =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc n.key n.value) n.prev
  in
  go acc t.lru
