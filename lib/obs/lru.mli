(** A bounded least-recently-used map with string keys.

    O(1) [find] and [put] over a hash table threaded with an intrusive
    recency list.  Both operations promote the touched entry to
    most-recently-used; an insert at capacity evicts the
    least-recently-used entry and counts it.  Not thread-safe: consult
    from one domain (callers fan parallelism out {e below} their cache,
    never across it). *)

type 'v t

val create : capacity:int -> 'v t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val find : 'v t -> string -> 'v option
(** Lookup; a hit promotes the entry to most-recently-used. *)

val mem : 'v t -> string -> bool
(** Membership without promoting. *)

val put : 'v t -> string -> 'v -> unit
(** Insert or overwrite (either way the entry becomes
    most-recently-used).  A fresh insert at capacity evicts the
    least-recently-used entry first. *)

val length : 'v t -> int
val capacity : 'v t -> int

val evictions : 'v t -> int
(** Entries dropped by capacity pressure since [create]. *)

val fold_oldest_first : ('a -> string -> 'v -> 'a) -> 'v t -> 'a -> 'a
(** Fold in least-recently-used-first order — re-inserting ([put]) in
    this order into a fresh map reproduces both contents and recency,
    which is how the service cache survives a restart with its eviction
    order intact. *)
