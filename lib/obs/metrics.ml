type counter = {
  c_name : string;
  c_doc : string;
  mutable count : int;
}

type gauge = {
  g_name : string;
  g_doc : string;
  mutable level : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge

(* name -> metric; names are unique across both kinds *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let counter ?(doc = "") name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some (Gauge _) ->
    invalid_arg (Printf.sprintf "Obs.Metrics.counter: %S is a gauge" name)
  | None ->
    let c = { c_name = name; c_doc = doc; count = 0 } in
    Hashtbl.add registry name (Counter c);
    c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count

let gauge ?(doc = "") name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some (Counter _) ->
    invalid_arg (Printf.sprintf "Obs.Metrics.gauge: %S is a counter" name)
  | None ->
    let g = { g_name = name; g_doc = doc; level = 0. } in
    Hashtbl.add registry name (Gauge g);
    g

let set g v = g.level <- v
let gauge_value g = g.level

type value =
  | Count of int
  | Value of float

type entry = {
  name : string;
  doc : string;
  value : value;
}

let entry_of = function
  | Counter c -> { name = c.c_name; doc = c.c_doc; value = Count c.count }
  | Gauge g -> { name = g.g_name; doc = g.g_doc; value = Value g.level }

let snapshot ?(prefix = "") () =
  Hashtbl.fold
    (fun name m acc ->
      if String.starts_with ~prefix name then entry_of m :: acc else acc)
    registry []
  |> List.sort (fun a b -> String.compare a.name b.name)

let find name = Option.map entry_of (Hashtbl.find_opt registry name)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.level <- 0.)
    registry

let string_of_value = function
  | Count n -> string_of_int n
  | Value v -> Printf.sprintf "%g" v

let is_zero = function Count 0 | Value 0. -> true | Count _ | Value _ -> false

(* A local renderer: Report.Table depends on this library (via
   Report.Timing's clock), so obs cannot use it back. *)
let to_table ?prefix ?(omit_zero = false) () =
  let entries =
    List.filter
      (fun e -> not (omit_zero && is_zero e.value))
      (snapshot ?prefix ())
  in
  if entries = [] then "(no metrics recorded)\n"
  else begin
    let cells =
      List.map (fun e -> (e.name, string_of_value e.value, e.doc)) entries
    in
    let width f =
      List.fold_left (fun w c -> max w (String.length (f c))) 0 cells
    in
    let name_w = width (fun (n, _, _) -> n)
    and value_w = width (fun (_, v, _) -> v) in
    let line (n, v, d) =
      Printf.sprintf "%-*s  %*s%s\n" name_w n value_w v
        (if d = "" then "" else "  " ^ d)
    in
    String.concat "" (List.map line cells)
  end
