(* Counters and gauges are [Atomic] and histograms lock internally, so
   instrumented code running on sweep worker domains ({!Parallel})
   accumulates exactly: a 2-domain run reports the same totals as a
   sequential one. *)
type counter = {
  c_name : string;
  c_doc : string;
  count : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_doc : string;
  level : float Atomic.t;
}

type histo = {
  h_name : string;
  h_doc : string;
  h_hist : Histogram.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histo of histo

(* name -> metric; names are unique across all three kinds.  The lock
   guards the table itself (registration, iteration); the metrics are
   individually safe to bump without it. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_registry f = Mutex.protect registry_lock f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histo _ -> "histogram"

let kind_clash fn name m =
  invalid_arg
    (Printf.sprintf "Obs.Metrics.%s: %S is a %s" fn name (kind_name m))

let counter ?(doc = "") name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some m -> kind_clash "counter" name m
  | None ->
    let c = { c_name = name; c_doc = doc; count = Atomic.make 0 } in
    Hashtbl.add registry name (Counter c);
    c

let incr c = Atomic.incr c.count
let add c n = ignore (Atomic.fetch_and_add c.count n)
let counter_value c = Atomic.get c.count

let gauge ?(doc = "") name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some m -> kind_clash "gauge" name m
  | None ->
    let g = { g_name = name; g_doc = doc; level = Atomic.make 0. } in
    Hashtbl.add registry name (Gauge g);
    g

let set g v = Atomic.set g.level v
let gauge_value g = Atomic.get g.level

let histogram ?(doc = "") name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Histo h) -> h.h_hist
  | Some m -> kind_clash "histogram" name m
  | None ->
    let h = { h_name = name; h_doc = doc; h_hist = Histogram.create () } in
    Hashtbl.add registry name (Histo h);
    h.h_hist

type value =
  | Count of int
  | Value of float
  | Dist of Histogram.summary

type entry = {
  name : string;
  doc : string;
  value : value;
}

let entry_of = function
  | Counter c ->
    { name = c.c_name; doc = c.c_doc; value = Count (Atomic.get c.count) }
  | Gauge g ->
    { name = g.g_name; doc = g.g_doc; value = Value (Atomic.get g.level) }
  | Histo h ->
    { name = h.h_name; doc = h.h_doc;
      value = Dist (Histogram.summary h.h_hist) }

let snapshot ?(prefix = "") () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun name m acc ->
          if String.starts_with ~prefix name then entry_of m :: acc else acc)
        registry [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let find name =
  with_registry @@ fun () ->
  Option.map entry_of (Hashtbl.find_opt registry name)

let reset () =
  with_registry @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c.count 0
      | Gauge g -> Atomic.set g.level 0.
      | Histo h -> Histogram.clear h.h_hist)
    registry

(* ------------------------------------------------------------------ *)
(* Scoped (per-phase) readings over the cumulative registry. *)

type baseline =
  | B_count of int
  | B_level of float
  | B_hist of Histogram.t

let with_scope f =
  let base : (string, baseline) Hashtbl.t =
    with_registry @@ fun () ->
    let base = Hashtbl.create (Hashtbl.length registry) in
    Hashtbl.iter
      (fun name m ->
        let b =
          match m with
          | Counter c -> B_count (Atomic.get c.count)
          | Gauge g -> B_level (Atomic.get g.level)
          | Histo h -> B_hist (Histogram.copy h.h_hist)
        in
        Hashtbl.replace base name b)
      registry;
    base
  in
  let result = f () in
  let entries =
    with_registry (fun () ->
        Hashtbl.fold
          (fun name m acc ->
            let e = entry_of m in
            let e =
              match (m, Hashtbl.find_opt base name) with
              | Counter c, Some (B_count before) ->
                { e with value = Count (Atomic.get c.count - before) }
              | Gauge _, Some (B_level _) ->
                e (* gauges are instantaneous *)
              | Histo h, Some (B_hist before) ->
                { e with
                  value = Dist (Histogram.summary
                                  (Histogram.diff ~before h.h_hist)) }
              | _, None -> e (* registered inside the scope: full value *)
              | _, Some _ ->
                e (* kind change is impossible (names are sticky) *)
            in
            e :: acc)
          registry [])
    |> List.sort (fun a b -> String.compare a.name b.name)
  in
  (result, entries)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let string_of_value = function
  | Count n -> string_of_int n
  | Value v -> Printf.sprintf "%g" v
  | Dist s ->
    Printf.sprintf "n=%d p50=%g p99=%g" s.Histogram.s_count
      s.Histogram.s_p50 s.Histogram.s_p99

let is_zero = function
  | Count 0 | Value 0. -> true
  | Dist s -> s.Histogram.s_count = 0
  | Count _ | Value _ -> false

(* Nanosecond quantities (by the [_ns] naming convention) render as
   humanised times; everything else as plain numbers. *)
let is_time_name name = String.ends_with ~suffix:"_ns" name

(* PAREDOWN_STABLE_TIMES: render every humanised time as "--" so two
   runs of the same experiment diff byte-identically.  Everything else
   the pipeline prints is deterministic; wall-clock readings are the
   one exception, and the CI `--jobs 2` vs `--jobs 1` gate relies on
   masking them.  (Same convention as {!Report.Timing}.) *)
let stable_times =
  match Sys.getenv_opt "PAREDOWN_STABLE_TIMES" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let pp_quantity ~time v =
  if not time then Printf.sprintf "%g" v
  else if stable_times then "--"
  else if v >= 1e9 then Printf.sprintf "%.2fs" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fms" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.2fus" (v /. 1e3)
  else Printf.sprintf "%.0fns" v

let render_table rows =
  (* rows: header :: data; every row has the same arity.  Left-align
     the first column, right-align the rest. *)
  match rows with
  | [] -> ""
  | header :: _ ->
    let arity = List.length header in
    let widths = Array.make arity 0 in
    List.iter
      (List.iteri (fun i cell ->
           widths.(i) <- max widths.(i) (String.length cell)))
      rows;
    let rtrim s =
      let n = ref (String.length s) in
      while !n > 0 && s.[!n - 1] = ' ' do decr n done;
      String.sub s 0 !n
    in
    let line cells =
      rtrim
        (String.concat "  "
           (List.mapi
              (fun i cell ->
                if i = 0 then Printf.sprintf "%-*s" widths.(i) cell
                else Printf.sprintf "%*s" widths.(i) cell)
              cells))
      ^ "\n"
    in
    String.concat "" (List.map line rows)

let render_entries ?(omit_zero = false) entries =
  let entries =
    List.filter (fun e -> not (omit_zero && is_zero e.value)) entries
  in
  let scalars, dists =
    List.partition
      (fun e -> match e.value with Dist _ -> false | _ -> true)
      entries
  in
  let buf = Buffer.create 256 in
  if scalars <> [] then begin
    let cells =
      List.map (fun e -> (e.name, string_of_value e.value, e.doc)) scalars
    in
    let width f =
      List.fold_left (fun w c -> max w (String.length (f c))) 0 cells
    in
    let name_w = width (fun (n, _, _) -> n)
    and value_w = width (fun (_, v, _) -> v) in
    List.iter
      (fun (n, v, d) ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s  %*s%s\n" name_w n value_w v
             (if d = "" then "" else "  " ^ d)))
      cells
  end;
  if dists <> [] then begin
    if scalars <> [] then Buffer.add_char buf '\n';
    Buffer.add_string buf "distributions:\n";
    let header =
      [ "name"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
    in
    let rows =
      List.filter_map
        (fun e ->
          match e.value with
          | Dist s ->
            let time = is_time_name e.name in
            let q = pp_quantity ~time in
            Some
              [ e.name; string_of_int s.Histogram.s_count;
                q s.Histogram.s_mean; q s.Histogram.s_p50;
                q s.Histogram.s_p90; q s.Histogram.s_p99;
                q s.Histogram.s_max ]
          | _ -> None)
        dists
    in
    Buffer.add_string buf (render_table (header :: rows))
  end;
  if Buffer.length buf = 0 then "(no metrics recorded)\n"
  else Buffer.contents buf

let to_table ?prefix ?omit_zero () =
  render_entries ?omit_zero (snapshot ?prefix ())
