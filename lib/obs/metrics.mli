(** Process-wide registry of named counters, gauges, and histograms.

    Counters are the paper's work quantities made first-class: PareDown
    fit checks (§4.2's [n(n+1)/2] bound), exhaustive search nodes,
    annealing moves, simulator events, emitted C bytes.  Instrumented
    code creates its counters once at module initialisation and bumps
    them unconditionally — an increment is a single unboxed int store,
    cheap enough for hot loops.  Histograms ({!Histogram}) carry the
    distributions behind the totals: settle latencies, fit-check batch
    sizes, emitted program sizes.

    The registry is global and cumulative; harnesses that want
    per-phase numbers wrap the phase in {!with_scope} (see
    [bin/run_experiments.ml]) or call {!reset} between phases. *)

type counter
type gauge

val counter : ?doc:string -> string -> counter
(** [counter name] registers (or retrieves — registration is idempotent
    per name) the counter [name].  Conventional names are
    dot-separated, e.g. ["core.paredown.fit_checks"]. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** [add c n] — bump by [n]; negative [n] is allowed but unusual. *)

val counter_value : counter -> int

val gauge : ?doc:string -> string -> gauge
(** Last-write-wins instantaneous value (e.g. a temperature). *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?doc:string -> string -> Histogram.t
(** [histogram name] registers (idempotently) a log-bucketed histogram.
    Time distributions take a [_ns] suffix by convention — renderers
    humanise those.  Observe with {!Histogram.observe} /
    {!Histogram.time}. *)

(** {2 Inspection} *)

type value =
  | Count of int
  | Value of float
  | Dist of Histogram.summary

type entry = {
  name : string;
  doc : string;
  value : value;
}

val snapshot : ?prefix:string -> unit -> entry list
(** All registered metrics, sorted by name; [prefix] filters by name
    prefix. *)

val find : string -> entry option

val reset : unit -> unit
(** Zero every counter, gauge, and histogram (registrations persist). *)

val with_scope : (unit -> 'a) -> 'a * entry list
(** [with_scope f] snapshots the registry, runs [f], and returns its
    result together with the {e per-scope} readings: counter deltas,
    histogram diffs ({!Histogram.diff}), and current gauge levels
    (gauges are instantaneous, so they are reported as-is).  Metrics
    first registered inside the scope appear with their full value.
    This is the safe replacement for the reset-then-read pattern on
    the cumulative registry: nothing is zeroed, so concurrent
    whole-process totals stay intact.  If [f] raises, the exception
    propagates and no reading is produced. *)

(** {2 Rendering} *)

val string_of_value : value -> string

val is_time_name : string -> bool
(** The [_ns] naming convention: [true] for metrics whose values are
    nanoseconds and should render as humanised times. *)

val pp_quantity : time:bool -> float -> string
(** ["1.23ms"] when [time], ["%g"] otherwise. *)

val render_table : string list list -> string
(** Aligned columns (first left, rest right) over [header :: rows];
    shared by the metric renderers and the perf-compare CLI. *)

val render_entries : ?omit_zero:bool -> entry list -> string
(** Aligned table of scalar metrics, followed by a
    count/mean/p50/p90/p99/max table for histogram entries.
    [omit_zero] (default [false]) drops metrics still at zero. *)

val to_table : ?prefix:string -> ?omit_zero:bool -> unit -> string
(** [render_entries] over a fresh {!snapshot}. *)
