(** Process-wide registry of named counters and gauges.

    Counters are the paper's work quantities made first-class: PareDown
    fit checks (§4.2's [n(n+1)/2] bound), exhaustive search nodes,
    annealing moves, simulator events, emitted C bytes.  Instrumented
    code creates its counters once at module initialisation and bumps
    them unconditionally — an increment is a single unboxed int store,
    cheap enough for hot loops.

    The registry is global and cumulative; harnesses that want
    per-phase numbers call {!reset} between phases (see
    [bin/run_experiments.ml]) or diff two {!snapshot}s. *)

type counter
type gauge

val counter : ?doc:string -> string -> counter
(** [counter name] registers (or retrieves — registration is idempotent
    per name) the counter [name].  Conventional names are
    dot-separated, e.g. ["core.paredown.fit_checks"]. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** [add c n] — bump by [n]; negative [n] is allowed but unusual. *)

val counter_value : counter -> int

val gauge : ?doc:string -> string -> gauge
(** Last-write-wins instantaneous value (e.g. a temperature). *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Inspection} *)

type value =
  | Count of int
  | Value of float

type entry = {
  name : string;
  doc : string;
  value : value;
}

val snapshot : ?prefix:string -> unit -> entry list
(** All registered metrics, sorted by name; [prefix] filters by name
    prefix. *)

val find : string -> entry option

val reset : unit -> unit
(** Zero every counter and gauge (registrations persist). *)

val to_table : ?prefix:string -> ?omit_zero:bool -> unit -> string
(** Render the snapshot as an aligned two-column table.  [omit_zero]
    (default [false]) drops metrics still at zero — useful after a run
    that exercised only part of the pipeline. *)
