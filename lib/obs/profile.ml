type agg = {
  mutable calls : int;
  mutable total_ns : float;
  mutable self_ns : float;
}

type frame = {
  f_name : string;
  f_start : int64;
  mutable f_child_ns : float;
}

type t = {
  table : (string, agg) Hashtbl.t;
  mutable stack : frame list;
}

let create () = { table = Hashtbl.create 16; stack = [] }

let agg_of t name =
  match Hashtbl.find_opt t.table name with
  | Some a -> a
  | None ->
    let a = { calls = 0; total_ns = 0.; self_ns = 0. } in
    Hashtbl.add t.table name a;
    a

let sink t =
  {
    Trace.start_span =
      (fun ~name ~args:_ ~ts_ns ->
        t.stack <- { f_name = name; f_start = ts_ns; f_child_ns = 0. }
                   :: t.stack);
    end_span =
      (fun ~name:_ ~ts_ns ->
        match t.stack with
        | [] -> () (* installed mid-span: ignore the unmatched close *)
        | frame :: rest ->
          t.stack <- rest;
          let dur = Int64.to_float (Int64.sub ts_ns frame.f_start) in
          let a = agg_of t frame.f_name in
          a.calls <- a.calls + 1;
          a.total_ns <- a.total_ns +. dur;
          a.self_ns <- a.self_ns +. (dur -. frame.f_child_ns);
          (match rest with
           | parent :: _ -> parent.f_child_ns <- parent.f_child_ns +. dur
           | [] -> ()));
    instant =
      (fun ~name ~args:_ ~ts_ns:_ ->
        let a = agg_of t ("! " ^ name) in
        a.calls <- a.calls + 1);
    flush = ignore;
  }

type row = {
  name : string;
  calls : int;
  total_ns : float;
  self_ns : float;
}

let rows t =
  Hashtbl.fold
    (fun name (a : agg) acc ->
      { name; calls = a.calls; total_ns = a.total_ns; self_ns = a.self_ns }
      :: acc)
    t.table []
  |> List.sort (fun a b -> compare b.self_ns a.self_ns)

let to_table ?(top = 15) t =
  let rows = rows t in
  if rows = [] then "(no spans recorded)\n"
  else begin
    let wall = List.fold_left (fun acc r -> acc +. r.self_ns) 0. rows in
    let shown = List.filteri (fun i _ -> i < top) rows in
    let dropped = List.length rows - List.length shown in
    let q = Metrics.pp_quantity ~time:true in
    let body =
      Metrics.render_table
        ([ "span"; "calls"; "total"; "self"; "self%" ]
         :: List.map
              (fun r ->
                [ r.name; string_of_int r.calls; q r.total_ns; q r.self_ns;
                  (if wall > 0. then
                     Printf.sprintf "%.1f%%" (r.self_ns /. wall *. 100.)
                   else "-") ])
              shown)
    in
    if dropped > 0 then
      body ^ Printf.sprintf "(%d more span name(s) below the top %d)\n"
               dropped top
    else body
  end
