(** Aggregating profiler sink: per-span-name call counts, total time,
    and self time (total minus child spans).

    Where {!Chrome} keeps every event for a timeline, this sink folds
    them into a flat profile as they arrive — the "where did this run
    spend its time" table behind [paredown perf profile], with no
    post-processing and O(distinct span names) memory.

    Instants are tallied as call-count-only rows prefixed ["! "].
    Like the tracer itself, single-threaded by design. *)

type t

val create : unit -> t

val sink : t -> Trace.sink
(** Install with [Obs.Trace.set_sink (Obs.Profile.sink p)].  An
    unmatched [end_span] (sink installed mid-span) is ignored. *)

type row = {
  name : string;
  calls : int;
  total_ns : float;
  self_ns : float;
}

val rows : t -> row list
(** Sorted by self time, largest first. *)

val to_table : ?top:int -> t -> string
(** Top-[top] (default 15) rows with humanised times and a self-time
    percentage column. *)
