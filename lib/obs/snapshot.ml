let schema_name = "paredown-perf-snapshot"
let schema_version = 1

type value =
  | Int of int
  | Float of float
  | Dist of Histogram.summary

type t = {
  git_rev : string option;
  ocaml_version : string;
  config : (string * string) list;
  metrics : (string * value) list;
  times_ns : (string * float) list;
}

(* ------------------------------------------------------------------ *)
(* Environment fingerprinting *)

let read_first_line path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (String.trim (input_line ic)))
  with Sys_error _ | End_of_file -> None

(* The current git revision, by reading .git directly (no subprocess):
   walk up from [dir] to the repository root, follow HEAD one level of
   indirection.  [None] outside a repository — the snapshot is still
   valid, just unpinned. *)
let git_rev ?(dir = ".") () =
  let rec find_git dir depth =
    if depth > 16 then None
    else
      let candidate = Filename.concat dir ".git" in
      if Sys.file_exists candidate then Some candidate
      else find_git (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  match find_git dir 0 with
  | None -> None
  | Some git_path ->
    let git_dir =
      (* worktrees: .git is a file containing "gitdir: <path>" *)
      if Sys.is_directory git_path then Some git_path
      else
        Option.bind (read_first_line git_path) (fun line ->
            if String.starts_with ~prefix:"gitdir:" line then
              Some
                (String.trim
                   (String.sub line 7 (String.length line - 7)))
            else None)
    in
    Option.bind git_dir (fun git_dir ->
        Option.bind (read_first_line (Filename.concat git_dir "HEAD"))
          (fun head ->
            if String.starts_with ~prefix:"ref: " head then
              let ref_name =
                String.sub head 5 (String.length head - 5)
              in
              read_first_line (Filename.concat git_dir ref_name)
            else Some head))

(* ------------------------------------------------------------------ *)
(* Capture *)

let value_of_metric = function
  | Metrics.Count n -> Int n
  | Metrics.Value v -> Float v
  | Metrics.Dist s -> Dist s

let make ?git_rev:rev ?(config = []) ?(times_ns = []) ~metrics () =
  {
    git_rev = (match rev with Some _ -> rev | None -> git_rev ());
    ocaml_version = Sys.ocaml_version;
    config = List.sort compare config;
    metrics =
      List.sort compare
        (List.map
           (fun e -> (e.Metrics.name, value_of_metric e.Metrics.value))
           metrics);
    times_ns = List.sort compare times_ns;
  }

let capture ?git_rev ?config ?times_ns () =
  make ?git_rev ?config ?times_ns ~metrics:(Metrics.snapshot ()) ()

(* ------------------------------------------------------------------ *)
(* JSON encoding *)

let json_of_summary (s : Histogram.summary) =
  Json.Obj
    [
      ("count", Json.Num (float_of_int s.Histogram.s_count));
      ("sum", Json.Num s.Histogram.s_sum);
      ("mean", Json.Num s.Histogram.s_mean);
      ("min", Json.Num s.Histogram.s_min);
      ("p50", Json.Num s.Histogram.s_p50);
      ("p90", Json.Num s.Histogram.s_p90);
      ("p99", Json.Num s.Histogram.s_p99);
      ("max", Json.Num s.Histogram.s_max);
    ]

let json_of_value = function
  | Int n -> Json.Num (float_of_int n)
  | Float v -> Json.Num v
  | Dist s -> json_of_summary s

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("version", Json.Num (float_of_int schema_version));
      ( "git_rev",
        match t.git_rev with Some r -> Json.Str r | None -> Json.Null );
      ("ocaml_version", Json.Str t.ocaml_version);
      ("config", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.config));
      ( "times_ns",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) t.times_ns) );
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) t.metrics));
    ]

let to_string t = Json.to_string ~indent:2 (to_json t) ^ "\n"

(* ------------------------------------------------------------------ *)
(* JSON decoding *)

let ( let* ) r f = Result.bind r f

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "snapshot: missing or ill-typed %s" what)

let summary_of_json j =
  let field name =
    require ("metrics distribution field " ^ name)
      (Option.bind (Json.member name j) Json.to_float)
  in
  let* count = field "count" in
  let* sum = field "sum" in
  let* mean = field "mean" in
  let* min = field "min" in
  let* p50 = field "p50" in
  let* p90 = field "p90" in
  let* p99 = field "p99" in
  let* max = field "max" in
  Ok
    {
      Histogram.s_count = int_of_float count;
      s_sum = sum; s_mean = mean; s_min = min; s_p50 = p50; s_p90 = p90;
      s_p99 = p99; s_max = max;
    }

let value_of_json = function
  | Json.Num v ->
    if Float.is_integer v && Float.abs v < 1e15 then
      Ok (Int (int_of_float v))
    else Ok (Float v)
  | Json.Obj _ as j ->
    let* s = summary_of_json j in
    Ok (Dist s)
  | _ -> Error "snapshot: metric value is neither a number nor an object"

let rec map_fields f = function
  | [] -> Ok []
  | (k, v) :: rest ->
    let* v = f k v in
    let* rest = map_fields f rest in
    Ok ((k, v) :: rest)

let of_json j =
  let* schema =
    require "schema" (Option.bind (Json.member "schema" j) Json.to_str)
  in
  if schema <> schema_name then
    Error (Printf.sprintf "snapshot: schema is %S, expected %S" schema
             schema_name)
  else
    let* version =
      require "version" (Option.bind (Json.member "version" j) Json.to_float)
    in
    if int_of_float version <> schema_version then
      Error
        (Printf.sprintf "snapshot: version %d unsupported (expected %d)"
           (int_of_float version) schema_version)
    else
      let git_rev = Option.bind (Json.member "git_rev" j) Json.to_str in
      let* ocaml_version =
        require "ocaml_version"
          (Option.bind (Json.member "ocaml_version" j) Json.to_str)
      in
      let* config_fields =
        require "config" (Option.bind (Json.member "config" j) Json.to_obj)
      in
      let* config =
        map_fields
          (fun k v -> require ("config." ^ k) (Json.to_str v))
          config_fields
      in
      let* time_fields =
        require "times_ns"
          (Option.bind (Json.member "times_ns" j) Json.to_obj)
      in
      let* times_ns =
        map_fields
          (fun k v -> require ("times_ns." ^ k) (Json.to_float v))
          time_fields
      in
      let* metric_fields =
        require "metrics" (Option.bind (Json.member "metrics" j) Json.to_obj)
      in
      let* metrics = map_fields (fun _ v -> value_of_json v) metric_fields in
      Ok { git_rev; ocaml_version; config; metrics; times_ns }

let of_string s =
  let* j = Json.of_string s in
  of_json j

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Merge (min-of-k noise reducer) *)

let merge_value a b =
  match (a, b) with
  | Int x, Int y -> Int (min x y)
  | Float x, Float y -> Float (Float.min x y)
  | Dist x, Dist y ->
    Dist
      {
        Histogram.s_count = min x.Histogram.s_count y.Histogram.s_count;
        s_sum = Float.min x.Histogram.s_sum y.Histogram.s_sum;
        s_mean = Float.min x.Histogram.s_mean y.Histogram.s_mean;
        s_min = Float.min x.Histogram.s_min y.Histogram.s_min;
        s_p50 = Float.min x.Histogram.s_p50 y.Histogram.s_p50;
        s_p90 = Float.min x.Histogram.s_p90 y.Histogram.s_p90;
        s_p99 = Float.min x.Histogram.s_p99 y.Histogram.s_p99;
        s_max = Float.min x.Histogram.s_max y.Histogram.s_max;
      }
  | v, _ -> v (* kind mismatch: keep the first reading *)

let merge_assoc merge a b =
  let keys =
    List.sort_uniq compare (List.map fst a @ List.map fst b)
  in
  List.map
    (fun k ->
      match (List.assoc_opt k a, List.assoc_opt k b) with
      | Some x, Some y -> (k, merge x y)
      | Some x, None | None, Some x -> (k, x)
      | None, None -> assert false)
    keys

let merge a b =
  {
    a with
    metrics = merge_assoc merge_value a.metrics b.metrics;
    times_ns = merge_assoc Float.min a.times_ns b.times_ns;
  }

let merge_all = function
  | [] -> invalid_arg "Obs.Snapshot.merge_all: empty list"
  | first :: rest -> List.fold_left merge first rest

(* ------------------------------------------------------------------ *)
(* Comparison *)

type delta = {
  d_name : string;
  d_time : bool;
  d_base : float option;
  d_cur : float option;
}

let scalar_of_value = function
  | Int n -> Some (float_of_int n)
  | Float v -> Some v
  | Dist s -> if s.Histogram.s_count = 0 then None else Some s.Histogram.s_p90

let diff ~base cur =
  let keys l = List.map fst l in
  let all_time_keys =
    List.sort_uniq compare (keys base.times_ns @ keys cur.times_ns)
  in
  let all_metric_keys =
    List.sort_uniq compare (keys base.metrics @ keys cur.metrics)
  in
  List.map
    (fun k ->
      {
        d_name = k;
        d_time = true;
        d_base = List.assoc_opt k base.times_ns;
        d_cur = List.assoc_opt k cur.times_ns;
      })
    all_time_keys
  @ List.filter_map
      (fun k ->
        let scalar side = Option.bind (List.assoc_opt k side) scalar_of_value in
        match (scalar base.metrics, scalar cur.metrics) with
        | None, None -> None
        | b, c ->
          Some
            {
              d_name = k;
              d_time = Metrics.is_time_name k;
              d_base = b;
              d_cur = c;
            })
      all_metric_keys

type regression = {
  r_metric : string;
  r_base : float;
  r_cur : float;
  r_ratio : float;
}

let gate ?(max_ratio = 1.5) ?(min_abs_ns = 1e6) ?(counter_max_ratio = 1.1)
    ?(min_abs_count = 1000.) ~base cur =
  let check ~ratio_limit ~abs_floor name b c acc =
    if b > 0. && c > b *. ratio_limit && c -. b > abs_floor then
      { r_metric = name; r_base = b; r_cur = c; r_ratio = c /. b } :: acc
    else acc
  in
  let times =
    List.fold_left
      (fun acc (name, c) ->
        match List.assoc_opt name base.times_ns with
        | Some b ->
          check ~ratio_limit:max_ratio ~abs_floor:min_abs_ns name b c acc
        | None -> acc)
      [] cur.times_ns
  in
  let counters =
    List.fold_left
      (fun acc (name, v) ->
        match (v, List.assoc_opt name base.metrics) with
        | Int c, Some (Int b) ->
          check ~ratio_limit:counter_max_ratio ~abs_floor:min_abs_count name
            (float_of_int b) (float_of_int c) acc
        | _ -> acc)
      [] cur.metrics
  in
  List.sort (fun a b -> compare b.r_ratio a.r_ratio) (times @ counters)

let render_diff ~base cur =
  let deltas = diff ~base cur in
  let fmt time = function
    | None -> "-"
    | Some v -> Metrics.pp_quantity ~time v
  in
  let pct b c =
    match (b, c) with
    | Some b, Some c when b > 0. ->
      let p = (c -. b) /. b *. 100. in
      if Float.abs p < 0.005 then "=" else Printf.sprintf "%+.1f%%" p
    | _ -> "-"
  in
  let rows =
    [ "metric"; "base"; "new"; "delta" ]
    :: List.filter_map
         (fun d ->
           if d.d_base = None && d.d_cur = None then None
           else
             Some
               [ d.d_name; fmt d.d_time d.d_base; fmt d.d_time d.d_cur;
                 pct d.d_base d.d_cur ])
         deltas
  in
  Metrics.render_table rows
