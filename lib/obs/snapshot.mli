(** Versioned, machine-readable perf snapshots with diff/merge and a
    noise-aware regression gate.

    A snapshot freezes the full metrics registry (counters, gauges,
    histogram summaries) plus named wall-times into a JSON document:

    {v
    { "schema": "paredown-perf-snapshot",
      "version": 1,
      "git_rev": "4a76b36..." | null,
      "ocaml_version": "5.1.0",
      "config": { "repeats": "3", ... },
      "times_ns": { "perf.table1_ns": 1234567, ... },
      "metrics": {
        "core.paredown.fit_checks": 1360,
        "sim.settle_ns": { "count": 90, "sum": ..., "mean": ...,
                           "min": ..., "p50": ..., "p90": ...,
                           "p99": ..., "max": ... } } }
    v}

    The gate ({!gate}) distinguishes the two kinds of quantity this
    tool chain produces: {e work counters} are deterministic (same
    seeds, same algorithm, same counts on every machine), so they get a
    tight ratio; {e wall times} are noisy, so they get a looser ratio
    plus an absolute floor, and recorders suppress scheduler noise
    further by taking the min of k runs ({!merge} is field-wise min). *)

val schema_name : string
val schema_version : int

type value =
  | Int of int
  | Float of float
  | Dist of Histogram.summary

type t = {
  git_rev : string option;
  ocaml_version : string;
  config : (string * string) list;  (** run fingerprint (repeats, flags) *)
  metrics : (string * value) list;
  times_ns : (string * float) list; (** named wall-times, nanoseconds *)
}

val git_rev : ?dir:string -> unit -> string option
(** The current git revision, read from [.git] directly (no
    subprocess); [None] outside a repository. *)

val make :
  ?git_rev:string ->
  ?config:(string * string) list ->
  ?times_ns:(string * float) list ->
  metrics:Metrics.entry list ->
  unit ->
  t
(** Build a snapshot from explicit registry entries (e.g. captured
    before timed repeats so counters stay repeat-invariant). *)

val capture :
  ?git_rev:string ->
  ?config:(string * string) list ->
  ?times_ns:(string * float) list ->
  unit ->
  t
(** {!make} over the live registry ({!Metrics.snapshot}). *)

(** {2 Serialisation} *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
val write_file : t -> string -> unit
val read_file : string -> (t, string) result

(** {2 Noise reduction} *)

val merge : t -> t -> t
(** Field-wise min of every shared metric and time (union of keys);
    metadata comes from the first argument.  Minimum-of-k wall times
    are the standard scheduler-noise floor. *)

val merge_all : t list -> t
(** Left fold of {!merge}; raises [Invalid_argument] on []. *)

(** {2 Comparison} *)

type delta = {
  d_name : string;
  d_time : bool;
  d_base : float option;  (** [None]: absent from the base snapshot *)
  d_cur : float option;
}

val diff : base:t -> t -> delta list
(** Every time and scalar metric present in either snapshot (histogram
    entries compare by p90). *)

type regression = {
  r_metric : string;
  r_base : float;
  r_cur : float;
  r_ratio : float;
}

val gate :
  ?max_ratio:float ->
  ?min_abs_ns:float ->
  ?counter_max_ratio:float ->
  ?min_abs_count:float ->
  base:t ->
  t ->
  regression list
(** Regressions of [cur] against [base], worst ratio first; empty means
    the gate passes.  A wall-time regresses when it exceeds [base *
    max_ratio] (default 1.5) {e and} grows by more than [min_abs_ns]
    (default 1ms) — the floor keeps microsecond-scale groups from
    tripping on jitter.  A counter regresses when it exceeds [base *
    counter_max_ratio] (default 1.1) and grows by more than
    [min_abs_count] (default 1000): counters are deterministic, so a
    tight ratio is safe even across machines. *)

val render_diff : base:t -> t -> string
(** The per-metric delta table printed by [paredown perf compare]. *)
