type sink = {
  start_span : name:string -> args:(string * string) list -> ts_ns:int64 -> unit;
  end_span : name:string -> ts_ns:int64 -> unit;
  instant : name:string -> args:(string * string) list -> ts_ns:int64 -> unit;
  flush : unit -> unit;
}

let null = {
  start_span = (fun ~name:_ ~args:_ ~ts_ns:_ -> ());
  end_span = (fun ~name:_ ~ts_ns:_ -> ());
  instant = (fun ~name:_ ~args:_ ~ts_ns:_ -> ());
  flush = ignore;
}

let current = ref null
let nesting = ref 0

let set_sink sink =
  !current.flush ();
  current := sink

let reset () = set_sink null

let enabled () = !current != null

let depth () = !nesting

let with_span ?(args = []) name f =
  let sink = !current in
  if sink == null then f ()
  else begin
    sink.start_span ~name ~args ~ts_ns:(Clock.now_ns ());
    incr nesting;
    let finish () =
      decr nesting;
      sink.end_span ~name ~ts_ns:(Clock.now_ns ())
    in
    match f () with
    | result -> finish (); result
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt
  end

let instant ?(args = []) name =
  let sink = !current in
  if sink != null then sink.instant ~name ~args ~ts_ns:(Clock.now_ns ())

(* ------------------------------------------------------------------ *)

let stderr_sink () =
  (* indentation tracks this sink's own view of nesting so it stays
     correct even if installed mid-span *)
  let level = ref 0 in
  let starts = ref [] in  (* stack of start timestamps *)
  let pad () = String.make (2 * !level) ' ' in
  let pp_args args =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) args)
  in
  {
    start_span =
      (fun ~name ~args ~ts_ns ->
        Printf.eprintf "%s> %s%s\n%!" (pad ()) name (pp_args args);
        starts := ts_ns :: !starts;
        incr level);
    end_span =
      (fun ~name ~ts_ns ->
        let dur_ms =
          match !starts with
          | t0 :: rest ->
            starts := rest;
            Int64.to_float (Int64.sub ts_ns t0) /. 1e6
          | [] -> 0.
        in
        if !level > 0 then decr level;
        Printf.eprintf "%s< %s (%.3fms)\n%!" (pad ()) name dur_ms);
    instant =
      (fun ~name ~args ~ts_ns:_ ->
        Printf.eprintf "%s! %s%s\n%!" (pad ()) name (pp_args args));
    flush = (fun () -> flush stderr);
  }
