(** Span-based tracing with pluggable sinks.

    A {e span} is a named, timed, nested region of execution —
    "paredown.run", "sim.settle", "codegen.emit".  Spans are emitted to
    the current {!sink}; with the default {!null} sink the fast path of
    {!with_span} is one physical-equality test and no allocation, so
    instrumentation can stay in the code permanently.

    The tracer is deliberately single-threaded (like the rest of the
    tool chain): nesting is tracked with a plain depth counter. *)

type sink = {
  start_span : name:string -> args:(string * string) list -> ts_ns:int64 -> unit;
  end_span : name:string -> ts_ns:int64 -> unit;
  instant : name:string -> args:(string * string) list -> ts_ns:int64 -> unit;
  flush : unit -> unit;
}

val null : sink
(** Drops everything.  The default. *)

val stderr_sink : unit -> sink
(** Human-readable, indented, one line per span boundary with
    durations; for quick looks without leaving the terminal. *)

val set_sink : sink -> unit
(** Replace the current sink (flushing the old one). *)

val reset : unit -> unit
(** Flush and restore the {!null} sink. *)

val enabled : unit -> bool
(** [true] iff the current sink is not {!null}. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  The span is closed on
    both normal return and exception.  [args] annotate the span (Chrome
    sinks show them in the detail panel); they are ignored — but still
    constructed by the caller, so keep them cheap — when disabled. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val depth : unit -> int
(** Current span nesting depth (0 outside any span); exposed for
    balance tests. *)
