let available_jobs () = Domain.recommended_domain_count ()

let run_parallel ~jobs f items n =
  let arr = Array.of_list items in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  (* The failure cell keeps the exception of the LOWEST failing index,
     not whichever worker lost the CAS race last: a failing [--jobs N]
     run must report the same error the sequential run reports, run to
     run and jobs to jobs.  [record] is a CAS-min on the index. *)
  let failure = Atomic.make None in
  let fail_index () =
    match Atomic.get failure with None -> max_int | Some (i, _, _) -> i
  in
  let record i e bt =
    let rec loop () =
      let cur = Atomic.get failure in
      let better = match cur with None -> true | Some (j, _, _) -> i < j in
      if better && not (Atomic.compare_and_set failure cur (Some (i, e, bt)))
      then loop ()
    in
    loop ()
  in
  (* Each index is claimed by exactly one domain (the atomic cursor)
     and written once; Domain.join publishes the writes back to the
     caller, so the plain [results] array needs no further
     synchronisation. *)
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      (* Only items ABOVE the lowest failure so far may be abandoned:
         an item below it must still run, because it could fail with a
         lower index — the one the sequential path would report.  (A
         worker may have claimed a low index before a higher one
         failed; skipping it would let the higher failure win.) *)
      if i < fail_index () then
        (match f arr.(i) with
         | r -> results.(i) <- Some r
         | exception e -> record i e (Printexc.get_raw_backtrace ()));
      worker ()
    end
  in
  let domains =
    List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join domains;
  match Atomic.get failure with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)

let map ~jobs f items =
  let n = List.length items in
  if jobs <= 1 || n < 2 then List.map f items
  else if Obs.Journal.enabled () then
    (* Worker-domain journal emissions are captured per item and
       appended in input (seed) order after the join, so a [--jobs N]
       journal is byte-identical to the sequential one. *)
    run_parallel ~jobs (fun x -> Obs.Journal.capture (fun () -> f x)) items n
    |> List.map (fun (r, buf) ->
           Obs.Journal.append buf;
           r)
  else run_parallel ~jobs f items n
