let available_jobs () = Domain.recommended_domain_count ()

let run_parallel ~jobs f items n =
  let arr = Array.of_list items in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  (* Each index is claimed by exactly one domain (the atomic cursor)
     and written once; Domain.join publishes the writes back to the
     caller, so the plain [results] array needs no further
     synchronisation. *)
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n && Atomic.get failure = None then begin
      (match f arr.(i) with
       | r -> results.(i) <- Some r
       | exception e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set failure None (Some (e, bt))));
      worker ()
    end
  in
  let domains =
    List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join domains;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
    Array.to_list results
    |> List.map (function Some r -> r | None -> assert false)

let map ~jobs f items =
  let n = List.length items in
  if jobs <= 1 || n < 2 then List.map f items
  else if Obs.Journal.enabled () then
    (* Worker-domain journal emissions are captured per item and
       appended in input (seed) order after the join, so a [--jobs N]
       journal is byte-identical to the sequential one. *)
    run_parallel ~jobs (fun x -> Obs.Journal.capture (fun () -> f x)) items n
    |> List.map (fun (r, buf) ->
           Obs.Journal.append buf;
           r)
  else run_parallel ~jobs f items n
