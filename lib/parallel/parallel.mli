(** Deterministic fan-out of independent work items over stdlib
    [Domain]s.

    The contract that keeps multicore sweeps byte-identical to
    sequential ones has three parts, and this module only supplies the
    last:

    - the {e caller} derives every item's randomness up front (one
      [Prng.split] per item, in the same order the sequential code
      would), so no worker ever touches a shared generator;
    - per-item work only accumulates into domain-safe sinks
      ({!Obs.Metrics} counters and histograms), whose totals are
      order-independent sums;
    - {!map} returns results {e in input order}, whatever order the
      domains finished in.

    Under that contract [map ~jobs:n f items] is observationally
    [List.map f items] for every [n] — the property CI enforces by
    diffing experiment output at [--jobs 2] against [--jobs 1] (with
    wall-clock readings masked; see doc/performance.md). *)

val available_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible upper bound for
    [~jobs]. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item and returns the
    results in input order.  [jobs <= 1] (or fewer than two items) is
    exactly [List.map f items] on the calling domain — no domain is
    spawned, so the sequential path stays the sequential code.
    Otherwise [min jobs (length items) - 1] worker domains are spawned
    (the calling domain works too) and items are handed out by a shared
    atomic cursor in index order.

    If any application raises, the exception of the {e lowest-index}
    failing item — the one [List.map f items] would have raised — is
    re-raised on the calling domain after all domains have been joined.
    Items above the lowest failing index may be abandoned; items below
    it always run, so the reported failure is deterministic and
    jobs-invariant, like everything else. *)
