module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let m_estimates =
  Obs.Metrics.counter "reliability.estimates"
    ~doc:"Monte-Carlo estimates actually simulated (cache misses included)"

let m_trials =
  Obs.Metrics.counter "reliability.trials"
    ~doc:"faulty replays simulated across all estimates"

let m_cache_hits =
  Obs.Metrics.counter "reliability.cache_hits"
    ~doc:"solution scores served from the fingerprint memo cache"

let m_cache_misses =
  Obs.Metrics.counter "reliability.cache_misses"
    ~doc:"solution scores that had to simulate"

let h_score_ns =
  Obs.Metrics.histogram "reliability.score_ns"
    ~doc:"wall time per simulated estimate"

type config = {
  seed : int;
  trials : int;
  family : Family.t;
  steps : int;
  spacing : int;
  settle_limit : int;
}

let default_config =
  {
    seed = 1;
    trials = 32;
    family = Family.Brownout { rate = 0.3; ticks = [ 40; 110; 180 ] };
    steps = 12;
    spacing = 30;
    settle_limit = 100_000;
  }

type estimate = {
  trials : int;
  identical : int;
  recovered : int;
  wrong : int;
  diverged : int;
  mean : float;
  stderr : float;
  lo : float;
  hi : float;
  injected : Sim.Fault.stats;
}

let pp_estimate ppf e =
  Format.fprintf ppf "%.3f ±%.3f (ok %d gl %d wr %d dv %d / %d)" e.mean
    e.stderr e.identical e.recovered e.wrong e.diverged e.trials

let script config g =
  (* A distinct stream from the trial seeds: advancing one must not
     silently reshape the other. *)
  let rng = Prng.create (config.seed * 2 + 1) in
  Sim.Stimulus.random ~rng ~sensors:(Graph.sensors g) ~steps:config.steps
    ~spacing:config.spacing

let clamp01 x = Float.max 0. (Float.min 1. x)

let estimate_network ?(jobs = 1) (config : config) g =
  if config.trials <= 0 then invalid_arg "Estimator: trials must be positive";
  let t0 = Obs.Clock.now_ns () in
  let script = script config g in
  let reference = Sim.Degrade.reference g script in
  (* Seeds are pre-drawn and plans pre-built on this domain, so the
     fan-out below receives fully determined work items in input order:
     the estimate cannot depend on [jobs]. *)
  let seed_rng = Prng.create config.seed in
  (* explicit recursion: List.init's application order is unspecified,
     and the seed stream must be consumed in trial order *)
  let rec draw n acc =
    if n = 0 then List.rev acc
    else
      draw (n - 1)
        (Family.plan config.family ~seed:(Prng.int seed_rng 0x3FFF_FFFF) g
         :: acc)
  in
  let plans = draw config.trials [] in
  let runs =
    Parallel.map ~jobs
      (fun faults ->
        Sim.Degrade.classify_against ~settle_limit:config.settle_limit
          ~reference g script ~faults)
      plans
  in
  let count o =
    List.length (List.filter (fun r -> r.Sim.Degrade.outcome = o) runs)
  in
  let scores =
    List.map (fun r -> Sim.Degrade.score r.Sim.Degrade.outcome) runs
  in
  let n = float_of_int config.trials in
  let mean = List.fold_left ( +. ) 0. scores /. n in
  let stderr =
    if config.trials < 2 then 0.
    else
      let ss =
        List.fold_left (fun acc s -> acc +. ((s -. mean) ** 2.)) 0. scores
      in
      sqrt (ss /. (n -. 1.) /. n)
  in
  let injected =
    List.fold_left
      (fun acc r -> Sim.Fault.merge acc r.Sim.Degrade.injected)
      Sim.Fault.zero runs
  in
  Obs.Metrics.incr m_estimates;
  Obs.Metrics.add m_trials config.trials;
  Obs.Histogram.observe h_score_ns
    (Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0));
  {
    trials = config.trials;
    identical = count Sim.Degrade.Identical;
    recovered = count Sim.Degrade.Glitch_recovered;
    wrong = count Sim.Degrade.Wrong_value;
    diverged = count Sim.Degrade.Diverged;
    mean;
    stderr;
    lo = clamp01 (mean -. (1.96 *. stderr));
    hi = clamp01 (mean +. (1.96 *. stderr));
    injected;
  }

(* --- Memoized solution scoring --------------------------------------- *)

type cache = {
  table : (string, estimate) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let cache () = { table = Hashtbl.create 64; hits = 0; misses = 0 }

type cache_stats = { hits : int; misses : int; entries : int }

let cache_stats (c : cache) =
  { hits = c.hits; misses = c.misses; entries = Hashtbl.length c.table }

let min_member p = Node_id.Set.min_elt p.Core.Partition.members

(* Replace is order-sensitive only in the node ids it mints, but those
   ids decide which blocks a Brownout plan resets — so the same
   partition set must always be rewritten in the same order for equal
   fingerprints to name equal estimates. *)
let canonicalize solution =
  {
    Core.Solution.partitions =
      List.sort
        (fun a b -> Node_id.compare (min_member a) (min_member b))
        solution.Core.Solution.partitions;
  }

let fingerprint config g solution =
  let partition p =
    Printf.sprintf "{%s}/%s"
      (String.concat ","
         (List.map Node_id.to_string
            (Node_id.Set.elements p.Core.Partition.members)))
      (Core.Shape.to_string p.Core.Partition.shape)
  in
  String.concat "|"
    [
      Family.to_string config.family;
      string_of_int config.seed;
      string_of_int config.trials;
      string_of_int config.steps;
      string_of_int config.spacing;
      string_of_int config.settle_limit;
      Digest.to_hex (Digest.string (Netlist.Textio.to_string g));
      String.concat ";"
        (List.map partition (canonicalize solution).Core.Solution.partitions);
    ]

let journal_scored ~partitions ~trials ~severity ~cache_hit =
  if Obs.Journal.enabled () then
    Obs.Journal.emit
      (Obs.Journal.Reliability_scored
         { partitions; trials; severity; cache_hit })

let estimate_solution ?(jobs = 1) ~cache config g solution =
  let solution = canonicalize solution in
  let partitions = Core.Solution.programmable_count solution in
  let key = fingerprint config g solution in
  match Hashtbl.find_opt cache.table key with
  | Some est ->
    cache.hits <- cache.hits + 1;
    Obs.Metrics.incr m_cache_hits;
    journal_scored ~partitions ~trials:0 ~severity:est.mean ~cache_hit:true;
    est
  | None ->
    let rewritten = (Codegen.Replace.apply g solution).Codegen.Replace.network in
    let est = estimate_network ~jobs config rewritten in
    Hashtbl.replace cache.table key est;
    cache.misses <- cache.misses + 1;
    Obs.Metrics.incr m_cache_misses;
    journal_scored ~partitions ~trials:est.trials ~severity:est.mean
      ~cache_hit:false;
    est

let scorer ?jobs ~cache config g solution =
  (estimate_solution ?jobs ~cache config g solution).mean
