module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let m_estimates =
  Obs.Metrics.counter "reliability.estimates"
    ~doc:"Monte-Carlo estimates actually simulated (cache misses included)"

let m_trials =
  Obs.Metrics.counter "reliability.trials"
    ~doc:"faulty replays simulated across all estimates"

let m_cache_hits =
  Obs.Metrics.counter "reliability.cache_hits"
    ~doc:"solution scores served from the fingerprint memo cache"

let m_cache_misses =
  Obs.Metrics.counter "reliability.cache_misses"
    ~doc:"solution scores that had to simulate"

let m_cache_evictions =
  Obs.Metrics.counter "reliability.cache_evictions"
    ~doc:"memoized estimates dropped by the cache's LRU capacity bound"

let h_score_ns =
  Obs.Metrics.histogram "reliability.score_ns"
    ~doc:"wall time per simulated estimate"

type config = {
  seed : int;
  trials : int;
  family : Family.t;
  steps : int;
  spacing : int;
  settle_limit : int;
}

let default_config =
  {
    seed = 1;
    trials = 32;
    family = Family.Brownout { rate = 0.3; ticks = [ 40; 110; 180 ] };
    steps = 12;
    spacing = 30;
    settle_limit = 100_000;
  }

(* --- Blame attribution ----------------------------------------------- *)

type blame = {
  b_links : (Graph.edge * float) list;
  b_nodes : (Node_id.t * float) list;
  b_unattributed : float;
}

let empty_blame = { b_links = []; b_nodes = []; b_unattributed = 0. }

let blame_total b =
  List.fold_left (fun acc (_, x) -> acc +. x) 0. b.b_links
  +. List.fold_left (fun acc (_, x) -> acc +. x) 0. b.b_nodes
  +. b.b_unattributed

(* Each trial contributes score/n to the mean; that mass is split over
   the sites (links and nodes) in proportion to how many faults struck
   each during the trial.  A degraded trial with no recorded strike
   (possible only through fault classes telemetry cannot site, e.g. a
   static stuck-at) lands in [b_unattributed], so the three components
   always sum to the mean severity up to float rounding.  Accumulation
   per site happens in trial order and the output lists are sorted by
   site identity, so the vector is deterministic and jobs-invariant. *)
let blame_of_trials trials =
  match trials with
  | [] -> empty_blame
  | _ ->
    let n = float_of_int (List.length trials) in
    let links = Hashtbl.create 16 in
    let nodes = Hashtbl.create 16 in
    let unattributed = ref 0. in
    let bump tbl k x =
      match Hashtbl.find_opt tbl k with
      | Some prev -> Hashtbl.replace tbl k (prev +. x)
      | None -> Hashtbl.add tbl k x
    in
    List.iter
      (fun (score, tel) ->
        let mass = score /. n in
        if mass > 0. then begin
          let link_strikes = Sim.Telemetry.link_strikes tel in
          let node_resets = Sim.Telemetry.node_resets tel in
          let total =
            List.fold_left (fun acc (_, k) -> acc + k) 0 link_strikes
            + List.fold_left (fun acc (_, k) -> acc + k) 0 node_resets
          in
          if total = 0 then unattributed := !unattributed +. mass
          else begin
            let tf = float_of_int total in
            List.iter
              (fun (e, k) -> bump links e (mass *. float_of_int k /. tf))
              link_strikes;
            List.iter
              (fun (id, k) -> bump nodes id (mass *. float_of_int k /. tf))
              node_resets
          end
        end)
      trials;
    {
      b_links =
        Hashtbl.fold (fun e x acc -> (e, x) :: acc) links []
        |> List.sort (fun (a, _) (b, _) -> Graph.compare_edge a b);
      b_nodes =
        Hashtbl.fold (fun id x acc -> (id, x) :: acc) nodes []
        |> List.sort (fun (a, _) (b, _) -> Node_id.compare a b);
      b_unattributed = !unattributed;
    }

(* Heaviest site first; ties broken by site identity so the rendering
   is deterministic. *)
let blame_rows b =
  let rows =
    List.map
      (fun (e, x) -> (("link " ^ Graph.edge_to_string e), x))
      b.b_links
    @ List.map (fun (id, x) -> ("node " ^ Node_id.to_string id, x)) b.b_nodes
    @ (if b.b_unattributed > 0. then [ ("unattributed", b.b_unattributed) ]
       else [])
  in
  List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) rows

let blame_table b =
  let total = blame_total b in
  let share x = if total <= 0. then "-" else Printf.sprintf "%.0f%%" (100. *. x /. total) in
  let row (site, x) = [ site; Printf.sprintf "%.4f" x; share x ] in
  Obs.Metrics.render_table
    ([ "site"; "severity"; "share" ]
     :: List.map row (blame_rows b)
    @ [ [ "total"; Printf.sprintf "%.4f" total; "" ] ])

let blame_to_json b =
  let num x = Obs.Json.Num x in
  Obs.Json.Obj
    [
      ( "links",
        Obs.Json.Arr
          (List.map
             (fun (e, x) ->
               Obs.Json.Obj
                 [
                   ("link", Obs.Json.Str (Graph.edge_to_string e));
                   ("severity", num x);
                 ])
             b.b_links) );
      ( "nodes",
        Obs.Json.Arr
          (List.map
             (fun (id, x) ->
               Obs.Json.Obj
                 [ ("node", Obs.Json.Num (float_of_int id)); ("severity", num x) ])
             b.b_nodes) );
      ("unattributed", num b.b_unattributed);
      ("total", num (blame_total b));
    ]

type estimate = {
  trials : int;
  identical : int;
  recovered : int;
  wrong : int;
  diverged : int;
  mean : float;
  stderr : float;
  lo : float;
  hi : float;
  injected : Sim.Fault.stats;
  blame : blame;
}

let pp_estimate ppf e =
  Format.fprintf ppf "%.3f ±%.3f (ok %d gl %d wr %d dv %d / %d)" e.mean
    e.stderr e.identical e.recovered e.wrong e.diverged e.trials

let script config g =
  (* A distinct stream from the trial seeds: advancing one must not
     silently reshape the other. *)
  let rng = Prng.create (config.seed * 2 + 1) in
  Sim.Stimulus.random ~rng ~sensors:(Graph.sensors g) ~steps:config.steps
    ~spacing:config.spacing

let clamp01 x = Float.max 0. (Float.min 1. x)

let estimate_network ?(jobs = 1) (config : config) g =
  if config.trials <= 0 then invalid_arg "Estimator: trials must be positive";
  let t0 = Obs.Clock.now_ns () in
  let script = script config g in
  let reference = Sim.Degrade.reference g script in
  (* Seeds are pre-drawn and plans pre-built on this domain, so the
     fan-out below receives fully determined work items in input order:
     the estimate cannot depend on [jobs]. *)
  let seed_rng = Prng.create config.seed in
  (* explicit recursion: List.init's application order is unspecified,
     and the seed stream must be consumed in trial order *)
  let rec draw n acc =
    if n = 0 then List.rev acc
    else
      draw (n - 1)
        (Family.plan config.family ~seed:(Prng.int seed_rng 0x3FFF_FFFF) g
         :: acc)
  in
  let plans = draw config.trials [] in
  (* Each trial carries its own telemetry collector so severity can be
     attributed to the links/nodes whose strikes caused it; collectors
     come back through Parallel.map in input order, keeping the blame
     fold deterministic and jobs-invariant. *)
  let trials_run =
    Parallel.map ~jobs
      (fun faults ->
        let telemetry = Sim.Telemetry.create () in
        let run =
          Sim.Degrade.classify_against ~settle_limit:config.settle_limit
            ~telemetry ~reference g script ~faults
        in
        (run, telemetry))
      plans
  in
  let runs = List.map fst trials_run in
  let count o =
    List.length (List.filter (fun r -> r.Sim.Degrade.outcome = o) runs)
  in
  let scores =
    List.map (fun r -> Sim.Degrade.score r.Sim.Degrade.outcome) runs
  in
  let n = float_of_int config.trials in
  let mean = List.fold_left ( +. ) 0. scores /. n in
  let stderr =
    if config.trials < 2 then 0.
    else
      let ss =
        List.fold_left (fun acc s -> acc +. ((s -. mean) ** 2.)) 0. scores
      in
      sqrt (ss /. (n -. 1.) /. n)
  in
  let injected =
    List.fold_left
      (fun acc r -> Sim.Fault.merge acc r.Sim.Degrade.injected)
      Sim.Fault.zero runs
  in
  Obs.Metrics.incr m_estimates;
  Obs.Metrics.add m_trials config.trials;
  Obs.Histogram.observe h_score_ns
    (Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0));
  {
    trials = config.trials;
    identical = count Sim.Degrade.Identical;
    recovered = count Sim.Degrade.Glitch_recovered;
    wrong = count Sim.Degrade.Wrong_value;
    diverged = count Sim.Degrade.Diverged;
    mean;
    stderr;
    lo = clamp01 (mean -. (1.96 *. stderr));
    hi = clamp01 (mean +. (1.96 *. stderr));
    injected;
    blame =
      blame_of_trials
        (List.map
           (fun (r, tel) -> (Sim.Degrade.score r.Sim.Degrade.outcome, tel))
           trials_run);
  }

(* --- Memoized solution scoring --------------------------------------- *)

type cache = {
  table : estimate Obs.Lru.t;
  mutable hits : int;
  mutable misses : int;
}

(* Generous: a λ sweep over Table 1 touches tens of distinct solutions,
   a long weighted search hundreds — but a resident service scoring
   requests forever must not grow without bound. *)
let default_capacity = 4096

let cache ?(capacity = default_capacity) () =
  { table = Obs.Lru.create ~capacity; hits = 0; misses = 0 }

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;
}

let cache_stats (c : cache) =
  {
    hits = c.hits;
    misses = c.misses;
    entries = Obs.Lru.length c.table;
    evictions = Obs.Lru.evictions c.table;
  }

let min_member p = Node_id.Set.min_elt p.Core.Partition.members

(* Replace is order-sensitive only in the node ids it mints, but those
   ids decide which blocks a Brownout plan resets — so the same
   partition set must always be rewritten in the same order for equal
   fingerprints to name equal estimates. *)
let canonicalize solution =
  {
    Core.Solution.partitions =
      List.sort
        (fun a b -> Node_id.compare (min_member a) (min_member b))
        solution.Core.Solution.partitions;
  }

let fingerprint config g solution =
  let partition p =
    Printf.sprintf "{%s}/%s"
      (String.concat ","
         (List.map Node_id.to_string
            (Node_id.Set.elements p.Core.Partition.members)))
      (Core.Shape.to_string p.Core.Partition.shape)
  in
  String.concat "|"
    [
      Family.to_string config.family;
      string_of_int config.seed;
      string_of_int config.trials;
      string_of_int config.steps;
      string_of_int config.spacing;
      string_of_int config.settle_limit;
      Digest.to_hex (Digest.string (Netlist.Textio.to_string g));
      String.concat ";"
        (List.map partition (canonicalize solution).Core.Solution.partitions);
    ]

let journal_scored ~partitions ~trials ~severity ~cache_hit =
  if Obs.Journal.enabled () then
    Obs.Journal.emit
      (Obs.Journal.Reliability_scored
         { partitions; trials; severity; cache_hit })

let estimate_solution ?(jobs = 1) ~cache config g solution =
  let solution = canonicalize solution in
  let partitions = Core.Solution.programmable_count solution in
  let key = fingerprint config g solution in
  match Obs.Lru.find cache.table key with
  | Some est ->
    cache.hits <- cache.hits + 1;
    Obs.Metrics.incr m_cache_hits;
    journal_scored ~partitions ~trials:0 ~severity:est.mean ~cache_hit:true;
    est
  | None ->
    let rewritten = (Codegen.Replace.apply g solution).Codegen.Replace.network in
    let est = estimate_network ~jobs config rewritten in
    let evictions_before = Obs.Lru.evictions cache.table in
    Obs.Lru.put cache.table key est;
    if Obs.Lru.evictions cache.table > evictions_before then
      Obs.Metrics.incr m_cache_evictions;
    cache.misses <- cache.misses + 1;
    Obs.Metrics.incr m_cache_misses;
    journal_scored ~partitions ~trials:est.trials ~severity:est.mean
      ~cache_hit:false;
    est

let scorer ?jobs ~cache config g solution =
  (estimate_solution ?jobs ~cache config g solution).mean
