(** Deterministic Monte-Carlo estimation of expected degradation.

    A candidate partitioning is scored by synthesising it
    ({!Codegen.Replace.apply}), replaying one reproducible stimulus
    script under [trials] independently seeded instantiations of a
    {!Family.t}, classifying each replay with
    {!Sim.Degrade.classify_against}, and averaging the per-trial
    {!Sim.Degrade.score}s.  The result is the {e expected degradation}
    in [[0, 1]] — 0 when every trial absorbed its faults, 1 when every
    trial livelocked — together with a normal-approximation confidence
    interval.

    Determinism: trial seeds are pre-drawn from one PRNG stream before
    any fan-out, plans are pure functions of (family, seed, graph), and
    {!Parallel.map} returns results in input order — so an estimate is a
    pure function of (config, network) and byte-identical across
    [--jobs N].

    Caching: scoring is the expensive step of reliability-aware search
    (2 + trials full simulations per candidate), and both the λ sweep
    and the weighted searches revisit the same partitionings, so
    {!estimate_solution} memoizes behind {!fingerprint} — a canonical
    rendering of (config, network digest, sorted partitions).  The
    cache is shared across λ values on purpose: λ only reweights the
    objective, it never changes a partition's severity. *)

module Graph = Netlist.Graph

type config = {
  seed : int;  (** root seed for the stimulus script and the trial seeds *)
  trials : int;  (** Monte-Carlo sample size (must be positive) *)
  family : Family.t;  (** fault-plan family instantiated per trial *)
  steps : int;  (** stimulus script length (sensor flips) *)
  spacing : int;  (** maximum ticks between flips *)
  settle_limit : int;  (** per-step event budget of the faulty replays *)
}

val default_config : config
(** 32 trials of [brownout:0.3@40,110,180] over a 12-flip script
    (spacing 30), seed 1, settle limit 100_000. *)

(** {1 Blame attribution}

    A scalar severity says {e how much} a partitioning degrades, not
    {e where}: which link's drops, which node's brownouts.  Every
    estimate therefore carries a {!blame} vector.  Each trial runs with
    a {!Sim.Telemetry} collector armed, and its score-mass (score /
    trials) is split over the fault sites in proportion to how many
    strikes each absorbed during that trial — so the components always
    sum (±ε) to [mean].  Degraded trials with no site-attributable
    strike (only static stuck-at faults can cause this) accumulate in
    [b_unattributed].  See doc/network-telemetry.md. *)

type blame = {
  b_links : (Graph.edge * float) list;
      (** severity mass per struck link, sorted by
          {!Graph.compare_edge} *)
  b_nodes : (Netlist.Node_id.t * float) list;
      (** severity mass per reset-struck node, sorted by id *)
  b_unattributed : float;
}

val empty_blame : blame

val blame_total : blame -> float
(** Sum of every component — equals the estimate's [mean] up to float
    rounding. *)

val blame_of_trials : (float * Sim.Telemetry.t) list -> blame
(** Aggregate (per-trial score, per-trial collector) pairs, in trial
    order.  Deterministic: per-site accumulation follows list order and
    the output is sorted by site identity, so feeding trials in input
    order makes the vector jobs-invariant. *)

val blame_table : blame -> string
(** Rendered site table, heaviest site first, with a total row. *)

val blame_to_json : blame -> Obs.Json.t
(** [{"links": [{link, severity}...], "nodes": [{node, severity}...],
    "unattributed": x, "total": x}]. *)

type estimate = {
  trials : int;
  identical : int;
  recovered : int;
  wrong : int;
  diverged : int;  (** per-outcome trial counts; they sum to [trials] *)
  mean : float;  (** expected degradation: average per-trial score *)
  stderr : float;  (** standard error of [mean] (0 with one trial) *)
  lo : float;
  hi : float;  (** 95% normal-approximation interval, clamped to [0,1] *)
  injected : Sim.Fault.stats;  (** faults that struck, summed over trials *)
  blame : blame;  (** where the severity came from *)
}

val pp_estimate : Format.formatter -> estimate -> unit
(** e.g. ["0.203 ±0.071 (ok 22 gl 6 wr 4 dv 0 / 32)"]. *)

val script : config -> Graph.t -> Sim.Stimulus.script
(** The stimulus script the estimator replays: [Stimulus.random] over
    the network's sensors, derived from [config.seed].  Sensors keep
    their node ids under synthesis rewriting, so the script built from a
    flat design drives its synthesised counterpart unchanged. *)

val estimate_network : ?jobs:int -> config -> Graph.t -> estimate
(** Score a network as-is (no rewriting): one clean reference run, then
    [trials] faulty replays fanned out over [jobs] domains (default 1). *)

(** {1 The memo cache} *)

type cache

val default_capacity : int
(** 4096 memoized estimates — generous for any sweep, bounded for a
    resident daemon. *)

val cache : ?capacity:int -> unit -> cache
(** A fresh cache, bounded to [capacity] (default {!default_capacity})
    entries with least-recently-used eviction; evictions are counted
    here and on the [reliability.cache_evictions] metric.  Under a
    capacity larger than the working set the cache behaves exactly like
    the old unbounded table.  Not thread-safe: consult it from the main
    domain only (the trial fan-out below it is where parallelism
    lives). *)

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;  (** estimates dropped by the capacity bound *)
}

val cache_stats : cache -> cache_stats

val fingerprint : config -> Graph.t -> Core.Solution.t -> string
(** Canonical cache key: the config's fields, a digest of the network's
    textual form, and the partitions sorted by smallest member with
    their shapes.  Two solutions listing the same partitions in
    different orders fingerprint identically — and are rewritten in that
    same canonical order, so equal fingerprints really do name equal
    estimates. *)

val estimate_solution :
  ?jobs:int -> cache:cache -> config -> Graph.t -> Core.Solution.t ->
  estimate
(** Synthesise [solution] on the flat network and {!estimate_network}
    the rewritten result, memoized behind {!fingerprint}.  Emits a
    [Reliability_scored] journal event per call (with [trials = 0] and
    [cache_hit = true] on a memo hit) and maintains the
    [reliability.cache_hits]/[reliability.cache_misses] counters and the
    [reliability.trials] total.  The empty solution scores the flat
    network itself. *)

val scorer :
  ?jobs:int -> cache:cache -> config -> Graph.t ->
  Core.Solution.t -> float
(** [scorer ~cache config g] is the severity closure the weighted
    searches take: [fun s -> (estimate_solution ~cache config g s).mean].
    Partially applied once per run so every evaluation shares the
    cache. *)
