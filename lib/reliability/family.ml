module Graph = Netlist.Graph

type t =
  | Drop of { rate : float }
  | Chaos of {
      drop : float;
      duplicate : float;
      corrupt : float;
      jitter : int;
    }
  | Brownout of { rate : float; ticks : int list }

let name = function
  | Drop _ -> "drop"
  | Chaos _ -> "chaos"
  | Brownout _ -> "brownout"

(* %.12g keeps the rendering canonical (no trailing zeros) while still
   round-tripping every rate anyone would type. *)
let f = Printf.sprintf "%.12g"

let to_string = function
  | Drop { rate } -> Printf.sprintf "drop:%s" (f rate)
  | Chaos { drop; duplicate; corrupt; jitter } ->
    Printf.sprintf "chaos:%s,%s,%s,%d" (f drop) (f duplicate) (f corrupt)
      jitter
  | Brownout { rate; ticks } ->
    Printf.sprintf "brownout:%s@%s" (f rate)
      (String.concat "," (List.map string_of_int ticks))

let prob what s =
  match float_of_string_opt s with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | Some _ -> Error (Printf.sprintf "%s must be in [0, 1]: %s" what s)
  | None -> Error (Printf.sprintf "%s is not a number: %s" what s)

let ( let* ) = Result.bind

let of_string s =
  match String.index_opt s ':' with
  | None ->
    Error
      (Printf.sprintf
         "no ':' in fault family %S (expected drop:R, \
          chaos:DROP,DUP,CORRUPT,JITTER, or brownout:R@T1,T2,...)"
         s)
  | Some i ->
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match kind with
     | "drop" ->
       let* rate = prob "drop rate" rest in
       Ok (Drop { rate })
     | "chaos" ->
       (match String.split_on_char ',' rest with
        | [ d; u; c; j ] ->
          let* drop = prob "drop rate" d in
          let* duplicate = prob "duplicate rate" u in
          let* corrupt = prob "corrupt rate" c in
          (match int_of_string_opt j with
           | Some jitter when jitter >= 0 ->
             Ok (Chaos { drop; duplicate; corrupt; jitter })
           | _ -> Error (Printf.sprintf "bad jitter: %s" j))
        | _ ->
          Error
            (Printf.sprintf "chaos wants DROP,DUP,CORRUPT,JITTER: %s" rest))
     | "brownout" ->
       (match String.index_opt rest '@' with
        | None -> Error (Printf.sprintf "brownout wants RATE@TICKS: %s" rest)
        | Some j ->
          let* rate = prob "brownout rate" (String.sub rest 0 j) in
          let ticks_s =
            String.sub rest (j + 1) (String.length rest - j - 1)
          in
          let* ticks =
            List.fold_right
              (fun t acc ->
                let* acc = acc in
                match int_of_string_opt t with
                | Some n when n >= 0 -> Ok (n :: acc)
                | _ -> Error (Printf.sprintf "bad brownout tick: %s" t))
              (String.split_on_char ',' ticks_s)
              (Ok [])
          in
          if ticks = [] then Error "brownout wants at least one tick"
          else Ok (Brownout { rate; ticks }))
     | k -> Error (Printf.sprintf "unknown fault family %S" k))

let plan family ~seed g =
  match family with
  | Drop { rate } -> Sim.Fault.drop_all ~seed rate
  | Chaos { drop; duplicate; corrupt; jitter } ->
    Sim.Fault.degrade_all ~seed ~drop ~duplicate ~corrupt ~jitter ()
  | Brownout { rate; ticks } ->
    (* Which blocks brown out at which ticks is decided here, not at
       simulation time, so the plan itself is a pure function of
       (family, seed, graph).  One stream, consumed over inner nodes in
       increasing id order, keeps that reproducible. *)
    let rng = Prng.create seed in
    let node_faults =
      List.filter_map
        (fun id ->
          let reset_at =
            List.filter (fun _tick -> Prng.float rng 1.0 < rate) ticks
          in
          if reset_at = [] then None
          else Some (id, { Sim.Fault.no_node_fault with reset_at }))
        (Graph.inner_nodes g)
    in
    { Sim.Fault.none with seed; node_faults }
