(** Declarative fault-plan families for reliability estimation.

    A {!Fault.plan} names concrete edges and nodes, so it cannot be
    shared between a flat network and its synthesised counterpart — the
    node sets differ.  A {e family} is the graph-independent description
    the Monte-Carlo estimator sweeps: instantiated per (graph, trial
    seed) it yields a concrete plan for {e that} network, while its
    canonical {!to_string} rendering is what partition fingerprints and
    CLI arguments carry.

    Instantiation is deterministic: equal (family, seed, graph) triples
    yield equal plans. *)

type t =
  | Drop of { rate : float }
      (** every connection drops each packet with probability [rate] *)
  | Chaos of {
      drop : float;
      duplicate : float;
      corrupt : float;
      jitter : int;
    }  (** uniform link soup: all four edge fault classes at once *)
  | Brownout of { rate : float; ticks : int list }
      (** node faults: at each listed tick, every inner block
          independently suffers a spurious reset with probability
          [rate].  This is the family that punishes concentration: one
          reset of a merged programmable block wipes the state of every
          member it absorbed and re-announces all its outputs at once,
          where the flat network would have lost a single block. *)

val name : t -> string
(** ["drop"], ["chaos"], or ["brownout"]. *)

val to_string : t -> string
(** Canonical rendering, e.g. ["drop:0.05"],
    ["chaos:0.02,0.01,0.01,2"], ["brownout:0.3@50,150,250"].
    Stable — partition fingerprints embed it. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} forms (the [--family] CLI syntax). *)

val plan : t -> seed:int -> Netlist.Graph.t -> Sim.Fault.plan
(** Instantiate the family on a network.  All randomness (which blocks
    brown out) is drawn from a PRNG derived from [seed] over the
    network's inner nodes in increasing id order, so the plan is a pure
    function of its three arguments. *)
