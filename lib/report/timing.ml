let time f =
  let start = Obs.Clock.now_ns () in
  let result = f () in
  (result, Obs.Clock.elapsed_s start)

let time_best_of ~repeats f =
  if repeats < 1 then invalid_arg "Timing.time_best_of: repeats must be >= 1";
  let rec loop best_result best_elapsed remaining =
    if remaining = 0 then (best_result, best_elapsed)
    else
      let result, elapsed = time f in
      if elapsed < best_elapsed then loop result elapsed (remaining - 1)
      else loop best_result best_elapsed (remaining - 1)
  in
  let result, elapsed = time f in
  loop result elapsed (repeats - 1)

(* PAREDOWN_STABLE_TIMES masks every rendered time as "--" so two runs
   of the same experiment (e.g. `--jobs 2` vs `--jobs 1` in CI) diff
   byte-identically; wall-clock readings are the only nondeterministic
   output.  Same convention as [Obs.Metrics.pp_quantity]. *)
let stable_times =
  match Sys.getenv_opt "PAREDOWN_STABLE_TIMES" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let format_seconds s =
  if stable_times then "--"
  else if s < 0.001 then "<1ms"
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1000.)
  else if s < 60.0 then Printf.sprintf "%.2f s" s
  else Printf.sprintf "%.2f min" (s /. 60.)
