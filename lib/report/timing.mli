(** Timing helpers for the experiment harness, on the shared monotonic
    clock ({!Obs.Clock}). *)

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed (monotonic) seconds. *)

val time_best_of : repeats:int -> (unit -> 'a) -> 'a * float
(** Re-run the thunk [repeats] times and report the fastest run —
    stabilises sub-millisecond measurements. *)

val format_seconds : float -> string
(** The paper's Table 1/2 time notation: ["<1ms"], ["6.56ms"],
    ["4.79 s"], ["3.67 min"].  When the [PAREDOWN_STABLE_TIMES]
    environment variable is set (non-empty, non-["0"]) every time
    renders as ["--"] instead, making experiment output byte-stable
    across runs — the CI determinism gate diffs [--jobs 2] against
    [--jobs 1] under it (see doc/performance.md). *)
