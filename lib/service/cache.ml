module Json = Obs.Json

let schema = "paredown-solution-cache"
let version = 1
let default_capacity = 4096
let default_flush_every = 32

let m_hits = Obs.Metrics.counter "service.cache_hits"
let m_misses = Obs.Metrics.counter "service.cache_misses"
let m_evictions = Obs.Metrics.counter "service.cache_evictions"

type t = {
  table : Json.t Obs.Lru.t;
  path : string option;
  flush_every : int;
  mutable hits : int;
  mutable misses : int;
  mutable unflushed : int;
}

type stats = { hits : int; misses : int; entries : int; evictions : int }

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    entries = Obs.Lru.length t.table;
    evictions = Obs.Lru.evictions t.table;
  }

(* ------------------------------------------------------------------ *)
(* Persistence.  Oldest-first entry order: re-[put]ting in file order
   reproduces both contents and recency, so a reloaded cache evicts in
   the same order the resident one would have. *)

let to_json t =
  let entries =
    Obs.Lru.fold_oldest_first
      (fun acc key value ->
        Json.Obj [ ("key", Json.Str key); ("value", value) ] :: acc)
      t.table []
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("version", Json.Num (float_of_int version));
      ("entries", Json.Arr (List.rev entries));
    ]

let save t =
  match t.path with
  | None -> ()
  | Some path ->
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Json.to_string ~indent:2 (to_json t)));
    Sys.rename tmp path;
    t.unflushed <- 0

let load_into table path =
  if not (Sys.file_exists path) then Ok 0
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string text with
    | Error e -> Error (Printf.sprintf "unreadable cache file: %s" e)
    | Ok j -> (
      let schema_ok =
        match Option.bind (Json.member "schema" j) Json.to_str with
        | Some s -> s = schema
        | None -> false
      in
      let version_ok =
        match Option.bind (Json.member "version" j) Json.to_float with
        | Some v -> int_of_float v = version
        | None -> false
      in
      if not (schema_ok && version_ok) then
        Error "cache file has a different schema or version"
      else
        match Json.member "entries" j with
        | Some (Json.Arr entries) ->
          let n = ref 0 in
          List.iter
            (fun e ->
              match
                ( Option.bind (Json.member "key" e) Json.to_str,
                  Json.member "value" e )
              with
              | Some key, Some value ->
                Obs.Lru.put table key value;
                incr n
              | _ -> ())
            entries;
          Ok !n
        | _ -> Error "cache file has no entries array")
  end

let create ?(capacity = default_capacity)
    ?(flush_every = default_flush_every) ?path () =
  let table = Obs.Lru.create ~capacity in
  let loaded =
    match path with
    | None -> Ok 0
    | Some p -> (
      match load_into table p with
      | Ok n -> Ok n
      | Error e ->
        (* A stale or foreign file must not brick the server: warn,
           start empty, and let the next flush overwrite it. *)
        Error e)
  in
  ( { table; path; flush_every; hits = 0; misses = 0; unflushed = 0 },
    loaded )

(* ------------------------------------------------------------------ *)
(* Keys *)

let shape_fragment (shape : Core.Shape.t) =
  Printf.sprintf "%dx%d@%h" shape.Core.Shape.inputs shape.Core.Shape.outputs
    shape.Core.Shape.cost

let partition_key ~backend ~shape ~deadline_s canon =
  Printf.sprintf "partition/%s/%s/%s/%s"
    (Oneshot.backend_to_string backend)
    (shape_fragment shape)
    (match deadline_s with None -> "-" | Some d -> Printf.sprintf "%h" d)
    (Canon.digest canon)

let weighted_key ~lambda ~family ~trials ~seed ~shape g =
  Printf.sprintf "weighted/%h/%s/%d/%d/%s/%s" lambda
    (Reliability.Family.to_string family)
    trials seed (shape_fragment shape)
    (Canon.labels_digest g)

(* ------------------------------------------------------------------ *)
(* Payloads.  Partition solutions are stored in canonical coordinates
   (member = canonical index) so an isomorphic relabelling of the
   network can replay them; the report is re-rendered on the request
   graph, which also makes an exact resubmission byte-identical.
   Weighted results are keyed label-sensitively (fault plans draw from
   node ids), so their report is stored verbatim. *)

let partition_payload canon (solution : Core.Solution.t) work =
  let partitions =
    List.map
      (fun (p : Core.Partition.t) ->
        Json.Obj
          [
            ( "members",
              Json.Arr
                (Netlist.Node_id.Set.elements p.Core.Partition.members
                |> List.map (fun id ->
                       Json.Num (float_of_int (Canon.index_of canon id)))) );
            ( "inputs",
              Json.Num (float_of_int p.Core.Partition.shape.Core.Shape.inputs)
            );
            ( "outputs",
              Json.Num (float_of_int p.Core.Partition.shape.Core.Shape.outputs)
            );
            ("cost", Json.Num p.Core.Partition.shape.Core.Shape.cost);
          ])
      solution.Core.Solution.partitions
  in
  Json.Obj [ ("partitions", Json.Arr partitions); ("work", Json.Obj work) ]

exception Malformed

let solution_of_payload canon payload =
  let num j = match Json.to_float j with Some f -> f | None -> raise Malformed in
  let partitions =
    match Json.member "partitions" payload with
    | Some (Json.Arr ps) ->
      List.map
        (fun p ->
          let members =
            match Json.member "members" p with
            | Some (Json.Arr ms) ->
              List.map
                (fun m -> Canon.id_of canon (int_of_float (num m)))
                ms
            | _ -> raise Malformed
          in
          let field name =
            match Json.member name p with
            | Some j -> num j
            | None -> raise Malformed
          in
          let shape =
            Core.Shape.make
              ~inputs:(int_of_float (field "inputs"))
              ~outputs:(int_of_float (field "outputs"))
              ~cost:(field "cost") ()
          in
          Core.Partition.make
            ~members:(Netlist.Node_id.set_of_list members)
            ~shape)
        ps
    | _ -> raise Malformed
  in
  { Core.Solution.partitions }

let payload_work payload =
  match Json.member "work" payload with
  | Some (Json.Obj fields) -> fields
  | _ -> []

let weighted_payload ~report work =
  Json.Obj [ ("report", Json.Str report); ("work", Json.Obj work) ]

let weighted_of_payload payload =
  match Option.bind (Json.member "report" payload) Json.to_str with
  | Some report -> Some (report, payload_work payload)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Lookup / insert *)

let record_hit (t : t) =
  t.hits <- t.hits + 1;
  Obs.Metrics.incr m_hits

let record_miss (t : t) =
  t.misses <- t.misses + 1;
  Obs.Metrics.incr m_misses

let find (t : t) key =
  match Obs.Lru.find t.table key with
  | Some payload ->
    record_hit t;
    Some payload
  | None ->
    record_miss t;
    None

let peek (t : t) key = Obs.Lru.find t.table key

let insert (t : t) key payload =
  let before = Obs.Lru.evictions t.table in
  Obs.Lru.put t.table key payload;
  let evicted = Obs.Lru.evictions t.table - before in
  if evicted > 0 then
    for _ = 1 to evicted do Obs.Metrics.incr m_evictions done;
  t.unflushed <- t.unflushed + 1;
  if t.unflushed >= t.flush_every then save t
