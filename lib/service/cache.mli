(** The solution cache behind the batch server: a bounded LRU of JSON
    payloads keyed by canonical request fingerprints, persisted to a
    versioned JSON store.

    Two key families:

    - [partition/...] keys end in {!Canon.digest} — label-{e in}sensitive,
      so an isomorphic relabelling of a cached network hits.  Payloads
      store partition members as {e canonical indices}; a hit translates
      them back through the request graph's own canon, validates the
      reconstructed solution with {!Core.Solution.check}, and re-renders
      the report on the request graph (so ids in the output always
      belong to the request, and an exact resubmission round-trips
      byte-identically).
    - [weighted/...] keys end in {!Canon.labels_digest} — label-sensitive,
      because fault-plan draws depend on node ids.  Reports replay
      verbatim.

    Persistence: [{"schema": "paredown-solution-cache", "version": 1,
    "entries": [{key, value}, ...]}], entries oldest-first, written
    atomically (tmp + rename), flushed every [flush_every] inserts and
    at batch drain.  A missing file starts empty; an unreadable or
    mismatched file starts empty with a warning (never a crash). *)

module Json = Obs.Json

val default_capacity : int
val default_flush_every : int

type t

val create :
  ?capacity:int -> ?flush_every:int -> ?path:string -> unit ->
  t * (int, string) result
(** The second component reports the load: [Ok n] entries restored, or
    [Error reason] when the file existed but could not be used (the
    cache still works, starting empty). *)

type stats = { hits : int; misses : int; entries : int; evictions : int }

val stats : t -> stats

val save : t -> unit
(** Flush to [path] now (no-op without a path). *)

(** {1 Keys} *)

val partition_key :
  backend:Oneshot.backend -> shape:Core.Shape.t ->
  deadline_s:float option -> Canon.t -> string

val weighted_key :
  lambda:float -> family:Reliability.Family.t -> trials:int -> seed:int ->
  shape:Core.Shape.t -> Netlist.Graph.t -> string

(** {1 Payloads} *)

exception Malformed
(** A stored payload that does not decode (foreign edits to the store
    file); treated as a miss by the server. *)

val partition_payload :
  Canon.t -> Core.Solution.t -> (string * Json.t) list -> Json.t

val solution_of_payload : Canon.t -> Json.t -> Core.Solution.t
(** Translate canonical indices back to the given canon's node ids.
    Raises {!Malformed} or [Invalid_argument] on undecodable payloads —
    callers fall back to a miss. *)

val payload_work : Json.t -> (string * Json.t) list

val weighted_payload : report:string -> (string * Json.t) list -> Json.t
val weighted_of_payload : Json.t -> (string * (string * Json.t) list) option

(** {1 Lookup / insert} *)

val find : t -> string -> Json.t option
(** Counting lookup: maintains hit/miss tallies and the
    [service.cache_hits]/[service.cache_misses] metrics, and promotes a
    hit to most-recently-used. *)

val peek : t -> string -> Json.t option
(** Non-counting lookup (still promotes). *)

val insert : t -> string -> Json.t -> unit
(** Insert, count any eviction on [service.cache_evictions], and flush
    to disk when [flush_every] inserts have accumulated. *)
