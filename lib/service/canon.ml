module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type t = {
  order : Node_id.t array;
  index : (Node_id.t, int) Hashtbl.t;
  rendered : string;
  digest : string;
  exact : bool;
}

(* ------------------------------------------------------------------ *)
(* Node signatures.                                                    *)
(* A node's signature is everything the partitioning backends and the
   rendered report can observe about its descriptor: class, arities,
   behaviour text, power-on outputs, and cost.  Deliberately NOT the
   descriptor name and NOT the node id/label — two networks that differ
   only in those produce byte-identical partition reports (the report
   speaks in member counts, shapes and costs), so they may share a cache
   entry. *)

let value_string v = Format.asprintf "%a" Behavior.Ast.pp_value v

let node_signature g id =
  let d = Graph.descriptor g id in
  let init =
    d.Eblock.Descriptor.output_init
    |> Array.to_list
    |> List.map value_string
    |> String.concat ","
  in
  Printf.sprintf "%s/%d/%d/%s/%s/%h"
    (Eblock.Kind.to_string d.Eblock.Descriptor.kind)
    d.Eblock.Descriptor.n_inputs d.Eblock.Descriptor.n_outputs
    (Digest.to_hex
       (Digest.string
          (Behavior.Ast.program_to_string d.Eblock.Descriptor.behavior)))
    init d.Eblock.Descriptor.cost

(* ------------------------------------------------------------------ *)
(* Colour refinement (1-dimensional Weisfeiler–Leman) with
   individualization on ties.  Positions (dense ints) stand in for node
   ids throughout; [ids.(p)] maps back. *)

type state = {
  ids : Node_id.t array;
  sigs : string array;
  neigh : (int * int * int * int) list array;
      (* (dir, own_port, other_port, other_pos); dir 0 = fanin, 1 = fanout *)
}

exception Fallback

let build g =
  let ids = Array.of_list (Graph.node_ids g) in
  let n = Array.length ids in
  let pos = Hashtbl.create (max 16 n) in
  Array.iteri (fun i id -> Hashtbl.replace pos id i) ids;
  let sigs = Array.map (node_signature g) ids in
  let neigh = Array.make n [] in
  List.iter
    (fun (e : Graph.edge) ->
      let si = Hashtbl.find pos e.src.node
      and di = Hashtbl.find pos e.dst.node in
      neigh.(si) <- (1, e.src.port, e.dst.port, di) :: neigh.(si);
      neigh.(di) <- (0, e.dst.port, e.src.port, si) :: neigh.(di))
    (Graph.edges g);
  { ids; sigs; neigh }

(* Dense re-ranking: map an array of comparable keys to colours
   0..k-1 preserving key order, so colour vectors from different
   branches stay comparable. *)
let rank_of_keys keys =
  let ranked = List.sort_uniq compare (Array.to_list keys) in
  let rank = Hashtbl.create (List.length ranked) in
  List.iteri (fun r s -> Hashtbl.replace rank s r) ranked;
  (Array.map (fun s -> Hashtbl.find rank s) keys, List.length ranked)

let initial_colors state = fst (rank_of_keys state.sigs)

let color_count colors =
  1 + Array.fold_left max (-1) colors

(* Refine until stable.  Each round's key includes the previous colour,
   so the partition only ever splits — at most n rounds; the budget
   guards the total work across individualization branches. *)
let refine state colors budget =
  let n = Array.length colors in
  let cur = ref colors in
  let stable = ref false in
  while not !stable do
    decr budget;
    if !budget < 0 then raise Fallback;
    let c = !cur in
    let keys =
      Array.init n (fun i ->
          ( c.(i),
            List.sort compare
              (List.map
                 (fun (d, op, tp, j) -> (d, op, tp, c.(j)))
                 state.neigh.(i)) ))
    in
    let next, k = rank_of_keys keys in
    if k = color_count c then stable := true;
    cur := next
  done;
  !cur

(* positions sorted by colour; discrete colouring makes this a total
   order *)
let order_of_colors colors =
  let n = Array.length colors in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare colors.(a) colors.(b)) order;
  order

let render state order =
  let n = Array.length order in
  let inv = Array.make n 0 in
  Array.iteri (fun ci p -> inv.(p) <- ci) order;
  let buf = Buffer.create 256 in
  Array.iteri
    (fun ci p -> Buffer.add_string buf (Printf.sprintf "n%d:%s\n" ci state.sigs.(p)))
    order;
  let edges = ref [] in
  Array.iteri
    (fun p adj ->
      List.iter
        (fun (d, op, tp, j) ->
          if d = 1 then edges := (inv.(p), op, inv.(j), tp) :: !edges)
        adj)
    state.neigh;
  List.iter
    (fun (a, ap, b, bp) ->
      Buffer.add_string buf (Printf.sprintf "e%d.%d->%d.%d\n" a ap b bp))
    (List.sort compare !edges);
  Buffer.contents buf

let rec search state colors budget =
  let colors = refine state colors budget in
  let n = Array.length colors in
  if color_count colors = n then begin
    let order = order_of_colors colors in
    (render state order, order)
  end
  else begin
    (* smallest ambiguous colour class *)
    let counts = Array.make n 0 in
    Array.iter (fun c -> counts.(c) <- counts.(c) + 1) colors;
    let target = ref 0 in
    while counts.(!target) < 2 do incr target done;
    let members = ref [] in
    for p = n - 1 downto 0 do
      if colors.(p) = !target then members := p :: !members
    done;
    let best = ref None in
    List.iter
      (fun m ->
        let keys =
          Array.mapi (fun i c -> (c, if i = m then 0 else 1)) colors
        in
        let branch = fst (rank_of_keys keys) in
        let candidate = search state branch budget in
        match !best with
        | Some (s, _) when s <= fst candidate -> ()
        | _ -> best := Some candidate)
      !members;
    match !best with Some c -> c | None -> assert false
  end

let refine_budget = 2_000
let max_search_nodes = 512

let of_graph g =
  let state = build g in
  let n = Array.length state.ids in
  let order, exact =
    if n > max_search_nodes then (Array.init n (fun i -> i), false)
    else
      let budget = ref refine_budget in
      match search state (initial_colors state) budget with
      | _, order -> (order, true)
      | exception Fallback -> (Array.init n (fun i -> i), false)
  in
  let rendered = render state order in
  let ids = Array.map (fun p -> state.ids.(p)) order in
  let index = Hashtbl.create (max 16 n) in
  Array.iteri (fun ci id -> Hashtbl.replace index id ci) ids;
  {
    order = ids;
    index;
    rendered;
    digest = Digest.to_hex (Digest.string rendered);
    exact;
  }

let digest t = t.digest
let size t = Array.length t.order
let exact t = t.exact
let index_of t id = Hashtbl.find t.index id
let id_of t i = t.order.(i)

let labels_digest g =
  Digest.to_hex (Digest.string (Netlist.Textio.to_string g))
