(** Canonical network fingerprints for the solution cache.

    The batch server keys cached partitionings by a {e canonical} form
    of the request network: a deterministic node ordering under which
    two isomorphic networks — same block classes, behaviours, arities,
    costs and wiring, whatever their node ids and labels — render to the
    same string and hence the same digest.  A resubmitted design hits
    the cache even after a round-trip through an editor that renumbered
    every node.

    The ordering is found by colour refinement (1-dimensional
    Weisfeiler–Leman over typed, port-labelled edges) plus
    individualization on ties, under a global work budget.  When the
    budget runs out — adversarially symmetric graphs only; every
    catalogue design canonises exactly — the module falls back to
    id-order.  The fallback is {e sound}: the digest is always the hash
    of the rendered form, and equal rendered forms exhibit an
    isomorphism position-by-position regardless of how the order was
    chosen.  A fallback can only miss a relabel hit, never corrupt
    one. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type t

val of_graph : Graph.t -> t
(** Canonise a network.  Deterministic: a pure function of the graph's
    structure (and, in the fallback case, its id order). *)

val digest : t -> string
(** Hex digest of the canonical rendering — the cache key for
    label-insensitive operations.  Equal digests (modulo hash collision)
    certify isomorphism via {!id_of}/{!index_of}. *)

val size : t -> int
(** Node count. *)

val exact : t -> bool
(** [false] when the refinement budget was exhausted and the id-order
    fallback was used (so isomorphic relabellings may miss). *)

val index_of : t -> Node_id.t -> int
(** Canonical index of a node.  Raises [Not_found] on unknown ids. *)

val id_of : t -> int -> Node_id.t
(** Node id at a canonical index. *)

val labels_digest : Graph.t -> string
(** Digest of the network's exact textual form, ids and labels
    included — the cache key for label-{e sensitive} operations
    (reliability scoring draws fault plans from node ids, so a relabel
    legitimately changes the answer). *)
