module Graph = Netlist.Graph

type backend = Paredown | Exhaustive | Aggregation

let backend_to_string = function
  | Paredown -> "paredown"
  | Exhaustive -> "exhaustive"
  | Aggregation -> "aggregation"

let backend_of_string = function
  | "paredown" -> Ok Paredown
  | "exhaustive" -> Ok Exhaustive
  | "aggregation" -> Ok Aggregation
  | s -> Error (Printf.sprintf "unknown backend %S" s)

let default_deadline_s = 120.0

exception Unknown_design of string

let resolve_network ?design ?design_text () =
  match design_text with
  | Some text -> snd (Netlist.Textio.of_string text)
  | None -> (
    match design with
    | None -> raise (Unknown_design "(no design given)")
    | Some name -> (
      match Designs.Library.find name with
      | Some d -> d.Designs.Design.network
      | None -> raise (Unknown_design name)))

(* The one renderer both the CLI and the server print through, so a
   served response is byte-identical to the one-shot command by
   construction, not by parallel maintenance. *)
let solution_report g sol =
  Format.asprintf
    "@[<v>%a@]@.inner blocks: %d -> %d (%d programmable)@.network cost: \
     %.1f -> %.1f@."
    Core.Solution.pp sol (Graph.inner_count g)
    (Core.Solution.total_inner_after g sol)
    (Core.Solution.programmable_count sol)
    (Graph.total_cost g)
    (Graph.total_cost g
    -. Core.Solution.total_cost_after g Core.Solution.empty
    +. Core.Solution.total_cost_after g sol)

type outcome =
  | Done of {
      solution : Core.Solution.t;
      report : string;
      work : (string * Obs.Json.t) list;
    }
  | Expired of {
      solution : Core.Solution.t;
      report : string;
      work : (string * Obs.Json.t) list;
    }

let partition ~backend ~shape ?deadline_s g =
  match backend with
  | Paredown ->
    let config = { Core.Paredown.default_config with shapes = [ shape ] } in
    let r = Core.Paredown.run ~config g in
    let s = r.Core.Paredown.stats in
    Done
      {
        solution = r.Core.Paredown.solution;
        report = solution_report g r.Core.Paredown.solution;
        work =
          [
            ("outer_iterations", Obs.Json.Num (float_of_int s.Core.Paredown.outer_iterations));
            ("fit_checks", Obs.Json.Num (float_of_int s.Core.Paredown.fit_checks));
            ("removals", Obs.Json.Num (float_of_int s.Core.Paredown.removals));
          ];
      }
  | Exhaustive -> (
    let config = { Core.Exhaustive.default_config with shapes = [ shape ] } in
    let deadline_s = Option.value deadline_s ~default:default_deadline_s in
    let r = Core.Exhaustive.run ~config ~deadline_s g in
    let work =
      [
        ("nodes_explored", Obs.Json.Num (float_of_int r.Core.Exhaustive.nodes_explored));
        ("leaves_checked", Obs.Json.Num (float_of_int r.Core.Exhaustive.leaves_checked));
      ]
    in
    let solution = r.Core.Exhaustive.solution in
    let report = solution_report g solution in
    match r.Core.Exhaustive.outcome with
    | Core.Exhaustive.Timed_out -> Expired { solution; report; work }
    | Core.Exhaustive.Optimal -> Done { solution; report; work })
  | Aggregation ->
    let config = { Core.Aggregation.default_config with shapes = [ shape ] } in
    let solution = Core.Aggregation.run ~config g in
    Done { solution; report = solution_report g solution; work = [] }

let weighted ~lambda ~family ~trials ~seed ~shape:_ g =
  let estimator =
    { Reliability.Estimator.default_config with seed; trials; family }
  in
  let cache = Reliability.Estimator.cache () in
  let severity = Reliability.Estimator.scorer ~cache estimator g in
  let wr =
    Core.Paredown.run_weighted
      ~weighted:{ Core.Paredown.lambda; lexicographic = false; severity }
      g
  in
  let report =
    Printf.sprintf
      "weighted solution at λ=%g (severity %.3f -> %.3f, %d partition(s) \
       dissolved):\n"
      lambda wr.Core.Paredown.base_severity wr.Core.Paredown.severity
      wr.Core.Paredown.dissolved
    ^ solution_report g wr.Core.Paredown.solution
  in
  let stats = Reliability.Estimator.cache_stats cache in
  Done
    {
      solution = wr.Core.Paredown.solution;
      report;
      work =
        [
          ("dissolved", Obs.Json.Num (float_of_int wr.Core.Paredown.dissolved));
          ("estimates", Obs.Json.Num (float_of_int stats.Reliability.Estimator.misses));
        ];
    }
