(** One request's worth of synthesis, shared verbatim between the
    one-shot CLI and the batch server.

    Byte-identity between [paredown partition D] and a served
    [partition] request is a hard promise of the service (see
    doc/service.md), so the computation dispatch and the report
    rendering live here and {e both} callers go through them — the CLI
    cannot drift from the server because there is only one renderer. *)

module Graph = Netlist.Graph

type backend = Paredown | Exhaustive | Aggregation

val backend_to_string : backend -> string
val backend_of_string : string -> (backend, string) result

val default_deadline_s : float
(** 120 s — the exhaustive budget the CLI has always used. *)

exception Unknown_design of string

val resolve_network :
  ?design:string -> ?design_text:string -> unit -> Graph.t
(** [design_text] (inline netlist source) wins over [design] (library
    name).  Raises {!Unknown_design} on an unknown name and
    [Netlist.Textio.Parse_error] on bad source. *)

val solution_report : Graph.t -> Core.Solution.t -> string
(** Exactly the bytes [paredown partition] prints: the solution, the
    inner-block reduction line, and the cost line. *)

type outcome =
  | Done of {
      solution : Core.Solution.t;
      report : string;
      work : (string * Obs.Json.t) list;
          (** backend-specific effort counters, deterministic per seed *)
    }
  | Expired of {
      solution : Core.Solution.t;
      report : string;
      work : (string * Obs.Json.t) list;
    }
      (** the deadline elapsed before optimality (exhaustive only); the
          best solution found so far rides along — the CLI prints it,
          the server reports it without caching it *)

val partition :
  backend:backend -> shape:Core.Shape.t -> ?deadline_s:float -> Graph.t ->
  outcome
(** Dispatch one partitioning request.  [deadline_s] (default
    {!default_deadline_s}) only binds the exhaustive backend. *)

val weighted :
  lambda:float -> family:Reliability.Family.t -> trials:int -> seed:int ->
  shape:Core.Shape.t -> Graph.t -> outcome
(** The reliability-weighted search of [paredown reliability --show]:
    header line plus {!solution_report}.  Never [Expired]. *)
