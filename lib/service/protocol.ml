module Json = Obs.Json

(* ------------------------------------------------------------------ *)
(* Framing: "<decimal byte length>\n<payload>\n".  Length-prefixed so a
   frame may contain newlines (inline netlist sources do), trailing
   newline so the stream stays greppable and a human can eyeball it. *)

exception Framing_error of string

let write_frame oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  output_char oc '\n';
  flush oc

let max_frame_bytes = 16 * 1024 * 1024

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> None
  | header -> (
    match int_of_string_opt (String.trim header) with
    | None ->
      raise (Framing_error (Printf.sprintf "bad frame header %S" header))
    | Some len when len < 0 || len > max_frame_bytes ->
      raise (Framing_error (Printf.sprintf "bad frame length %d" len))
    | Some len ->
      let buf = Bytes.create len in
      (try really_input ic buf 0 len
       with End_of_file ->
         raise (Framing_error "truncated frame payload"));
      (match input_char ic with
       | '\n' -> ()
       | _ -> raise (Framing_error "missing frame terminator")
       | exception End_of_file ->
         raise (Framing_error "missing frame terminator"));
      Some (Bytes.to_string buf))

(* ------------------------------------------------------------------ *)
(* Requests *)

type op =
  | Partition of { backend : Oneshot.backend; deadline_s : float option }
  | Weighted of {
      lambda : float;
      family : Reliability.Family.t;
      trials : int;
      seed : int;
    }

type request = {
  id : string;
  op : op;
  design : string option;
  design_text : string option;
  inputs : int;
  outputs : int;
}

type inbound =
  | Request of request
  | Drain
  | Invalid of { id : string; reason : string }

let default_trials = 8
let default_seed = 1

let str_field name j = Option.bind (Json.member name j) Json.to_str

let num_field name j = Option.bind (Json.member name j) Json.to_float

let int_field name j = Option.map int_of_float (num_field name j)

let parse_request json =
  match Json.of_string json with
  | Error e -> Invalid { id = "?"; reason = "bad JSON: " ^ e }
  | Ok j -> (
    let id = Option.value (str_field "id" j) ~default:"?" in
    match Option.value (str_field "op" j) ~default:"partition" with
    | "drain" -> Drain
    | "partition" -> (
      let backend_name =
        Option.value (str_field "backend" j) ~default:"paredown"
      in
      match Oneshot.backend_of_string backend_name with
      | Error e -> Invalid { id; reason = e }
      | Ok backend ->
        Request
          {
            id;
            op = Partition { backend; deadline_s = num_field "deadline_s" j };
            design = str_field "design" j;
            design_text = str_field "design_text" j;
            inputs = Option.value (int_field "inputs" j) ~default:2;
            outputs = Option.value (int_field "outputs" j) ~default:2;
          })
    | "weighted" -> (
      let family_name =
        Option.value (str_field "family" j) ~default:"brownout:0.3@40,110,180"
      in
      match Reliability.Family.of_string family_name with
      | Error e -> Invalid { id; reason = e }
      | Ok family ->
        Request
          {
            id;
            op =
              Weighted
                {
                  lambda = Option.value (num_field "lambda" j) ~default:1.0;
                  family;
                  trials =
                    Option.value (int_field "trials" j)
                      ~default:default_trials;
                  seed = Option.value (int_field "seed" j) ~default:default_seed;
                };
            design = str_field "design" j;
            design_text = str_field "design_text" j;
            inputs = Option.value (int_field "inputs" j) ~default:2;
            outputs = Option.value (int_field "outputs" j) ~default:2;
          })
    | other -> Invalid { id; reason = Printf.sprintf "unknown op %S" other })

let render_request r =
  let base =
    [ ("id", Json.Str r.id) ]
    @ (match r.design with Some d -> [ ("design", Json.Str d) ] | None -> [])
    @ (match r.design_text with
      | Some t -> [ ("design_text", Json.Str t) ]
      | None -> [])
    @ [
        ("inputs", Json.Num (float_of_int r.inputs));
        ("outputs", Json.Num (float_of_int r.outputs));
      ]
  in
  let op_fields =
    match r.op with
    | Partition { backend; deadline_s } ->
      [ ("op", Json.Str "partition");
        ("backend", Json.Str (Oneshot.backend_to_string backend)) ]
      @ (match deadline_s with
        | Some d -> [ ("deadline_s", Json.Num d) ]
        | None -> [])
    | Weighted { lambda; family; trials; seed } ->
      [
        ("op", Json.Str "weighted");
        ("lambda", Json.Num lambda);
        ("family", Json.Str (Reliability.Family.to_string family));
        ("trials", Json.Num (float_of_int trials));
        ("seed", Json.Num (float_of_int seed));
      ]
  in
  Json.to_string (Json.Obj (op_fields @ base))

let drain_frame = Json.to_string (Json.Obj [ ("op", Json.Str "drain") ])

(* ------------------------------------------------------------------ *)
(* Responses *)

type status = Ok_ | Deadline_expired | Rejected | Error_

let status_to_string = function
  | Ok_ -> "ok"
  | Deadline_expired -> "deadline_expired"
  | Rejected -> "rejected"
  | Error_ -> "error"

type cache_disposition = Hit | Miss | Uncached

let cache_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Uncached -> "uncached"

type response = {
  r_id : string;
  status : status;
  cache : cache_disposition;
  output : string;  (** the one-shot report, or the rejection/error reason *)
  work : (string * Json.t) list;
  elapsed_ns : Json.t;  (** [Null] under PAREDOWN_STABLE_TIMES *)
}

let render_response r =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str r.r_id);
         ("status", Json.Str (status_to_string r.status));
         ("cache", Json.Str (cache_to_string r.cache));
         ("output", Json.Str r.output);
         ("work", Json.Obj r.work);
         ("elapsed_ns", r.elapsed_ns);
       ])

let parse_response json =
  match Json.of_string json with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok j -> (
    match
      ( str_field "id" j,
        str_field "status" j,
        str_field "cache" j,
        str_field "output" j )
    with
    | Some r_id, Some status, Some cache, Some output ->
      let status =
        match status with
        | "ok" -> Ok_
        | "deadline_expired" -> Deadline_expired
        | "rejected" -> Rejected
        | _ -> Error_
      in
      let cache =
        match cache with "hit" -> Hit | "miss" -> Miss | _ -> Uncached
      in
      let work =
        match Option.bind (Json.member "work" j) Json.to_obj with
        | Some fields -> fields
        | None -> []
      in
      let elapsed_ns =
        Option.value (Json.member "elapsed_ns" j) ~default:Json.Null
      in
      Ok { r_id; status; cache; output; work; elapsed_ns }
    | _ -> Error "response missing id/status/cache/output")

type summary = {
  requests : int;
  hits : int;
  misses : int;
  rejected : int;
  deadline_expired : int;
  errors : int;
  cache_entries : int;
  evictions : int;
}

let render_summary s =
  Json.to_string
    (Json.Obj
       [
         ("summary", Json.Bool true);
         ("requests", Json.Num (float_of_int s.requests));
         ("cache_hits", Json.Num (float_of_int s.hits));
         ("cache_misses", Json.Num (float_of_int s.misses));
         ("rejected", Json.Num (float_of_int s.rejected));
         ("deadline_expired", Json.Num (float_of_int s.deadline_expired));
         ("errors", Json.Num (float_of_int s.errors));
         ("cache_entries", Json.Num (float_of_int s.cache_entries));
         ("evictions", Json.Num (float_of_int s.evictions));
       ])

let is_summary json =
  match Json.of_string json with
  | Ok j -> (
    match Json.member "summary" j with Some (Json.Bool true) -> true | _ -> false)
  | Error _ -> false

let summary_line json =
  match Json.of_string json with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok j ->
    let get name =
      match Option.bind (Json.member name j) Json.to_float with
      | Some f -> int_of_float f
      | None -> 0
    in
    Ok
      (Printf.sprintf
         "requests=%d cache_hits=%d cache_misses=%d rejected=%d \
          deadline_expired=%d errors=%d cache_entries=%d evictions=%d"
         (get "requests") (get "cache_hits") (get "cache_misses")
         (get "rejected") (get "deadline_expired") (get "errors")
         (get "cache_entries") (get "evictions"))
