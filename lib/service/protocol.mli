(** The wire protocol of [paredown serve]: length-prefixed JSON frames
    over stdin/stdout.

    Every frame is ["<decimal byte length>\n<json>\n"] — length-prefixed
    because inline netlist sources contain newlines, newline-terminated
    so the stream stays human-greppable.  See doc/service.md for the
    full field reference. *)

module Json = Obs.Json

exception Framing_error of string

val max_frame_bytes : int

val write_frame : out_channel -> string -> unit
val read_frame : in_channel -> string option
(** [None] at end of stream; {!Framing_error} on a malformed header,
    truncated payload, or missing terminator. *)

(** {1 Requests} *)

type op =
  | Partition of { backend : Oneshot.backend; deadline_s : float option }
  | Weighted of {
      lambda : float;
      family : Reliability.Family.t;
      trials : int;
      seed : int;
    }

type request = {
  id : string;
  op : op;
  design : string option;  (** library design name *)
  design_text : string option;  (** inline netlist source; wins *)
  inputs : int;
  outputs : int;  (** programmable-block shape, defaults 2/2 *)
}

type inbound =
  | Request of request
  | Drain  (** the control frame that ends a batch *)
  | Invalid of { id : string; reason : string }
      (** parseable JSON with a bad op/backend/family; answered with a
          [rejected] response instead of killing the batch *)

val default_trials : int
val default_seed : int

val parse_request : string -> inbound
val render_request : request -> string
val drain_frame : string

(** {1 Responses} *)

type status = Ok_ | Deadline_expired | Rejected | Error_

val status_to_string : status -> string

type cache_disposition = Hit | Miss | Uncached

val cache_to_string : cache_disposition -> string

type response = {
  r_id : string;
  status : status;
  cache : cache_disposition;
  output : string;  (** the one-shot report, or the rejection/error reason *)
  work : (string * Json.t) list;
  elapsed_ns : Json.t;  (** [Null] under PAREDOWN_STABLE_TIMES *)
}

val render_response : response -> string
val parse_response : string -> (response, string) result

(** {1 The batch summary frame} *)

type summary = {
  requests : int;
  hits : int;
  misses : int;
  rejected : int;
  deadline_expired : int;
  errors : int;
  cache_entries : int;
  evictions : int;
}

val render_summary : summary -> string

val is_summary : string -> bool
(** Recognise the summary frame in a response stream. *)

val summary_line : string -> (string, string) result
(** One-line [key=value] rendering of a summary frame, for shell
    pipelines ([paredown submit --decode --summary]). *)
