module Json = Obs.Json

let m_requests = Obs.Metrics.counter "service.requests"
let m_rejected = Obs.Metrics.counter "service.rejected"
let m_expired = Obs.Metrics.counter "service.deadline_expired"
let m_errors = Obs.Metrics.counter "service.errors"
let h_request_ns = Obs.Metrics.histogram "service.request_ns"

type config = {
  jobs : int;
  queue : int;  (** accepted requests per batch; the rest are rejected *)
  cache_path : string option;
  capacity : int;
  log : string -> unit;  (** server-side diagnostics (stderr, not frames) *)
}

let default_config =
  { jobs = 1; queue = 256; cache_path = None;
    capacity = Cache.default_capacity; log = ignore }

let stable_times () =
  match Sys.getenv_opt "PAREDOWN_STABLE_TIMES" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

(* ------------------------------------------------------------------ *)

type job = {
  request : Protocol.request;
  g : Netlist.Graph.t;
  shape : Core.Shape.t;
  key : string;
  canon : Canon.t option;  (** present for label-insensitive ops *)
}

type prepared = Job of job | Answer of Protocol.response

let reject id reason =
  {
    Protocol.r_id = id;
    status = Protocol.Rejected;
    cache = Protocol.Uncached;
    output = reason;
    work = [];
    elapsed_ns = Json.Null;
  }

let error_response id reason =
  { (reject id reason) with Protocol.status = Protocol.Error_ }

let prepare (r : Protocol.request) =
  match
    Oneshot.resolve_network ?design:r.Protocol.design
      ?design_text:r.Protocol.design_text ()
  with
  | exception Oneshot.Unknown_design name ->
    Answer (error_response r.Protocol.id ("unknown design " ^ name))
  | exception Netlist.Textio.Parse_error { line; message } ->
    Answer
      (error_response r.Protocol.id
         (Printf.sprintf "netlist parse error: line %d: %s" line message))
  | exception Invalid_argument e
  | exception Failure e ->
    Answer (error_response r.Protocol.id e)
  | g -> (
    match
      Core.Shape.make ~inputs:r.Protocol.inputs ~outputs:r.Protocol.outputs ()
    with
    | exception Invalid_argument e -> Answer (error_response r.Protocol.id e)
    | shape -> (
      match r.Protocol.op with
      | Protocol.Partition { backend; deadline_s } ->
        let canon = Canon.of_graph g in
        let key = Cache.partition_key ~backend ~shape ~deadline_s canon in
        Job { request = r; g; shape; key; canon = Some canon }
      | Protocol.Weighted { lambda; family; trials; seed } ->
        let key = Cache.weighted_key ~lambda ~family ~trials ~seed ~shape g in
        Job { request = r; g; shape; key; canon = None }))

(* Replay a cached payload against this request's graph.  Any decode or
   validation failure downgrades to a miss — a corrupted store entry
   costs a recompute, never a wrong answer. *)
let replay_payload (j : job) payload =
  match j.request.Protocol.op with
  | Protocol.Partition _ -> (
    match j.canon with
    | None -> None
    | Some canon -> (
      match Cache.solution_of_payload canon payload with
      | exception _ -> None
      | solution -> (
        match Core.Solution.check j.g solution with
        | Error _ -> None
        | Ok () ->
          Some
            (Oneshot.solution_report j.g solution, Cache.payload_work payload))))
  | Protocol.Weighted _ -> Cache.weighted_of_payload payload

type computed =
  | C_done of {
      report : string;
      work : (string * Json.t) list;
      payload : Json.t option;
    }
  | C_expired of { report : string; work : (string * Json.t) list }
  | C_error of string

(* Runs on a worker domain: compute one missed job, time it, and never
   let an exception escape — a failing request answers [error], the
   server and the rest of the batch survive. *)
let compute_job (j : job) =
  let t0 = Obs.Clock.now_ns () in
  let c =
    match j.request.Protocol.op with
    | exception e -> C_error (Printexc.to_string e)
    | op -> (
      let run () =
        match op with
        | Protocol.Partition { backend; deadline_s } ->
          Oneshot.partition ~backend ~shape:j.shape ?deadline_s j.g
        | Protocol.Weighted { lambda; family; trials; seed } ->
          Oneshot.weighted ~lambda ~family ~trials ~seed ~shape:j.shape j.g
      in
      match run () with
      | exception e -> C_error (Printexc.to_string e)
      | Oneshot.Expired { report; work; _ } -> C_expired { report; work }
      | Oneshot.Done { solution; report; work } ->
        let payload =
          match (j.request.Protocol.op, j.canon) with
          | Protocol.Partition _, Some canon ->
            Some (Cache.partition_payload canon solution work)
          | Protocol.Weighted _, _ -> Some (Cache.weighted_payload ~report work)
          | _ -> None
        in
        C_done { report; work; payload })
  in
  let ns = Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) in
  Obs.Histogram.observe h_request_ns ns;
  (c, ns)

(* ------------------------------------------------------------------ *)

type lookup =
  | Ready of Protocol.response
  | Hit of { j : job; report : string; work : (string * Json.t) list;
             ns : float }
  | Miss of job

let run ?(config = default_config) ic oc =
  let cache, loaded =
    Cache.create ~capacity:config.capacity ?path:config.cache_path ()
  in
  (match loaded with
   | Ok 0 -> ()
   | Ok n -> config.log (Printf.sprintf "cache: restored %d entries" n)
   | Error e -> config.log (Printf.sprintf "cache: starting empty (%s)" e));
  let stable = stable_times () in
  let elapsed_json ns = if stable then Json.Null else Json.Num ns in
  let summary =
    ref
      {
        Protocol.requests = 0; hits = 0; misses = 0; rejected = 0;
        deadline_expired = 0; errors = 0; cache_entries = 0; evictions = 0;
      }
  in
  let bump f = summary := f !summary in
  let count_status (s : Protocol.status) =
    match s with
    | Protocol.Ok_ -> ()
    | Protocol.Deadline_expired ->
      Obs.Metrics.incr m_expired;
      bump (fun c ->
          { c with Protocol.deadline_expired = c.Protocol.deadline_expired + 1 })
    | Protocol.Rejected ->
      Obs.Metrics.incr m_rejected;
      bump (fun c -> { c with Protocol.rejected = c.Protocol.rejected + 1 })
    | Protocol.Error_ ->
      Obs.Metrics.incr m_errors;
      bump (fun c -> { c with Protocol.errors = c.Protocol.errors + 1 })
  in
  let serve_batch () =
    (* 1. Read the whole batch: requests until drain (or EOF). *)
    let eof = ref false in
    let inbound = ref [] in
    (try
       let rec read_loop () =
         match Protocol.read_frame ic with
         | None -> eof := true
         | Some frame -> (
           match Protocol.parse_request frame with
           | Protocol.Drain -> ()
           | i ->
             inbound := i :: !inbound;
             read_loop ())
       in
       read_loop ()
     with Protocol.Framing_error e ->
       eof := true;
       config.log ("framing error: " ^ e));
    let inbound = List.rev !inbound in
    if inbound = [] && !eof then `Eof
    else begin
      (* 2. Admission: the first [queue] requests are accepted, the rest
         rejected with a reason — the bounded batch is the backpressure
         mechanism of a stdin server (doc/service.md). *)
      let accepted = ref 0 in
      let admitted =
        List.map
          (fun i ->
            Obs.Metrics.incr m_requests;
            bump (fun c ->
                { c with Protocol.requests = c.Protocol.requests + 1 });
            match i with
            | Protocol.Invalid { id; reason } -> Answer (reject id reason)
            | Protocol.Drain -> assert false
            | Protocol.Request r ->
              if !accepted >= config.queue then
                Answer
                  (reject r.Protocol.id
                     (Printf.sprintf "queue full (capacity %d)" config.queue))
              else begin
                incr accepted;
                prepare r
              end)
          inbound
      in
      (* 3. Cache lookups on the main domain, timed per request. *)
      let looked_up =
        List.map
          (function
            | Answer r -> Ready r
            | Job j -> (
              let t0 = Obs.Clock.now_ns () in
              match Option.bind (Cache.find cache j.key) (replay_payload j) with
              | Some (report, work) ->
                let ns =
                  Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0)
                in
                Obs.Histogram.observe h_request_ns ns;
                Hit { j; report; work; ns }
              | None -> Miss j))
          admitted
      in
      (* 4. Dedupe misses by key (an in-batch resubmission computes once
         and answers as a hit) and fan the unique ones out over the
         worker pool.  [Parallel.map] returns in input order, so the
         cache inserts below happen in miss order whatever the domain
         schedule — the LRU recency stays jobs-invariant. *)
      let miss_seen = Hashtbl.create 16 in
      let miss_jobs =
        List.filter_map
          (function
            | Miss j when not (Hashtbl.mem miss_seen j.key) ->
              Hashtbl.replace miss_seen j.key ();
              Some j
            | _ -> None)
          looked_up
      in
      let computed = Parallel.map ~jobs:config.jobs compute_job miss_jobs in
      let result_of_key = Hashtbl.create 16 in
      List.iter2
        (fun j (c, ns) ->
          Hashtbl.replace result_of_key j.key (c, ns);
          match c with
          | C_done { payload = Some p; _ } -> Cache.insert cache j.key p
          | _ -> ())
        miss_jobs computed;
      (* 5. Answer in request order.  The first request for a key pays
         the miss; later in-batch duplicates replay it as hits. *)
      let served = Hashtbl.create 16 in
      let respond = function
        | Ready r ->
          count_status r.Protocol.status;
          r
        | Hit { j; report; work; ns } ->
          bump (fun c -> { c with Protocol.hits = c.Protocol.hits + 1 });
          {
            Protocol.r_id = j.request.Protocol.id;
            status = Protocol.Ok_;
            cache = Protocol.Hit;
            output = report;
            work;
            elapsed_ns = elapsed_json ns;
          }
        | Miss j -> (
          match Hashtbl.find_opt result_of_key j.key with
          | None ->
            count_status Protocol.Error_;
            error_response j.request.Protocol.id "internal: result lost"
          | Some (C_error reason, ns) ->
            count_status Protocol.Error_;
            {
              (error_response j.request.Protocol.id reason) with
              Protocol.elapsed_ns = elapsed_json ns;
            }
          | Some (C_expired { report; work }, ns) ->
            count_status Protocol.Deadline_expired;
            {
              Protocol.r_id = j.request.Protocol.id;
              status = Protocol.Deadline_expired;
              cache = Protocol.Uncached;
              output = report;
              work;
              elapsed_ns = elapsed_json ns;
            }
          | Some (C_done { report; work; payload }, ns) ->
            let disposition =
              if Hashtbl.mem served j.key then Protocol.Hit
              else begin
                Hashtbl.replace served j.key ();
                Protocol.Miss
              end
            in
            (* An in-batch duplicate may be a *relabelled* isomorph of
               the graph that computed the entry, so its report must be
               replayed through its own canon, not copied verbatim —
               the ids in the answer belong to the request. *)
            let report, work =
              match disposition with
              | Protocol.Miss -> (report, work)
              | _ -> (
                match Option.bind payload (fun p -> replay_payload j p) with
                | Some (r, w) -> (r, w)
                | None -> (report, work))
            in
            (match disposition with
             | Protocol.Miss ->
               bump (fun c ->
                   { c with Protocol.misses = c.Protocol.misses + 1 })
             | _ ->
               bump (fun c -> { c with Protocol.hits = c.Protocol.hits + 1 }));
            {
              Protocol.r_id = j.request.Protocol.id;
              status = Protocol.Ok_;
              cache = disposition;
              output = report;
              work;
              elapsed_ns = elapsed_json ns;
            })
      in
      List.iter
        (fun item ->
          Protocol.write_frame oc (Protocol.render_response (respond item)))
        looked_up;
      let cs = Cache.stats cache in
      bump (fun c ->
          { c with
            Protocol.cache_entries = cs.Cache.entries;
            evictions = cs.Cache.evictions });
      Protocol.write_frame oc (Protocol.render_summary !summary);
      Cache.save cache;
      if !eof then `Eof else `More
    end
  in
  let rec serve () = match serve_batch () with `Eof -> () | `More -> serve () in
  serve ();
  Cache.save cache;
  !summary
