(** The resident batch server behind [paredown serve].

    One batch: read {!Protocol} request frames from [ic] until a drain
    frame (or end of stream), admit at most [queue] of them, answer the
    cache hits from the {!Cache}, fan the deduplicated misses out over
    [jobs] domains with {!Parallel.map}, write one response frame per
    request {e in request order}, then a summary frame, then flush the
    cache to disk.  The loop repeats until end of stream, so a pipe can
    carry several drained batches through one resident process.

    Determinism: responses are a pure function of (requests, seed) —
    [Parallel.map] orders results and cache inserts happen in miss
    order, so the stream is byte-identical across [--jobs N] once
    [PAREDOWN_STABLE_TIMES] masks the elapsed fields.  A request that
    raises answers [status = "error"]; nothing kills the batch. *)

type config = {
  jobs : int;
  queue : int;  (** accepted requests per batch; the rest are rejected *)
  cache_path : string option;
  capacity : int;
  log : string -> unit;  (** server-side diagnostics (stderr, not frames) *)
}

val default_config : config
(** jobs 1, queue 256, no persistence, capacity
    {!Cache.default_capacity}, silent log. *)

val run : ?config:config -> in_channel -> out_channel -> Protocol.summary
(** Serve until end of stream; returns the cumulative summary (also
    written as the last frame of every batch). *)
