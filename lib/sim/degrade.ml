module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let m_runs =
  Obs.Metrics.counter "sim.degrade.runs" ~doc:"degradation runs classified"
let m_diverged =
  Obs.Metrics.counter "sim.degrade.diverged"
    ~doc:"degradation runs that hit the event limit"

type outcome =
  | Identical
  | Glitch_recovered
  | Wrong_value
  | Diverged

let severity = function
  | Identical -> 0
  | Glitch_recovered -> 1
  | Wrong_value -> 2
  | Diverged -> 3

(* The monotone [0,1] mapping the reliability objective averages; the
   spacing (0, 1/4, 3/4, 1) weights the recoverable/unrecoverable
   boundary over the wrong/diverged one.  See the interface. *)
let score = function
  | Identical -> 0.
  | Glitch_recovered -> 0.25
  | Wrong_value -> 0.75
  | Diverged -> 1.

let outcome_to_string = function
  | Identical -> "identical"
  | Glitch_recovered -> "glitch-recovered"
  | Wrong_value -> "wrong-value"
  | Diverged -> "diverged"

let outcome_code = function
  | Identical -> "ok"
  | Glitch_recovered -> "gl"
  | Wrong_value -> "wr"
  | Diverged -> "dv"

let pp_outcome ppf o = Format.pp_print_string ppf (outcome_to_string o)

type run = {
  outcome : outcome;
  injected : Fault.stats;
  packets : int;
  mismatched_steps : int;
  steps : int;
  settle_limit : int;
}

let same_outputs a b =
  List.for_all2
    (fun (_, va) (_, vb) -> Behavior.Ast.equal_value va vb)
    a b

(* Replay the script on a fault-armed engine, settling after each step
   as {!Stimulus.settled_outputs} does, but stopping (rather than
   raising) when a settle exhausts its event limit. *)
let faulty_observations ~settle_limit engine script =
  let ordered =
    List.stable_sort
      (fun a b -> Int.compare a.Stimulus.time b.Stimulus.time)
      script
  in
  let rec loop acc = function
    | [] -> (List.rev acc, false)
    | step :: rest ->
      let time = max step.Stimulus.time (Engine.now engine) in
      Engine.set_sensor_at engine ~time step.Stimulus.sensor
        step.Stimulus.value;
      (match Engine.settle ~limit:settle_limit engine with
       | () -> loop (Engine.output_values engine :: acc) rest
       | exception Engine.Event_limit_exceeded _ -> (List.rev acc, true))
  in
  loop [] ordered

type reference = {
  ref_tie_order : Engine.tie_order;
  ref_outputs : (int * (Node_id.t * Behavior.Ast.value) list) list;
}

let classify_with ?telemetry ~settle_limit
    ~reference:{ ref_tie_order; ref_outputs } ~faults g script =
  let reference = ref_outputs in
  Obs.Metrics.incr m_runs;
  let engine = Engine.create ~tie_order:ref_tie_order ~faults ?telemetry g in
  let observed, diverged = faulty_observations ~settle_limit engine script in
  let injected =
    match Engine.fault_stats engine with
    | Some s -> s
    | None -> assert false  (* the engine above was created with ~faults *)
  in
  let steps = List.length reference in
  let rec compare_points mismatches last_matched refs obs =
    match refs, obs with
    | [], _ | _, [] -> (mismatches, last_matched)
    | (_, r) :: refs, o :: obs ->
      if same_outputs r o then compare_points mismatches true refs obs
      else compare_points (mismatches + 1) false refs obs
  in
  let compared_mismatches, last_matched =
    compare_points 0 true reference observed
  in
  let unobserved = steps - List.length observed in
  let outcome =
    if diverged then begin
      Obs.Metrics.incr m_diverged;
      Diverged
    end
    else if compared_mismatches = 0 then Identical
    else if last_matched then Glitch_recovered
    else Wrong_value
  in
  {
    outcome;
    injected;
    packets = Engine.packet_count engine;
    mismatched_steps = compared_mismatches + max 0 unobserved;
    steps;
    settle_limit;
  }

let reference ?(tie_order = Engine.Fifo) g script =
  {
    ref_tie_order = tie_order;
    ref_outputs =
      Stimulus.settled_outputs (Engine.create ~tie_order g) script;
  }

let classify_against ?(settle_limit = 100_000) ?telemetry ~reference g script
    ~faults =
  classify_with ?telemetry ~settle_limit ~reference ~faults g script

let classify ?(tie_order = Engine.Fifo) ?(settle_limit = 100_000) ~faults g
    script =
  let reference = reference ~tie_order g script in
  classify_with ~settle_limit ~reference ~faults g script

let sweep ?(tie_order = Engine.Fifo) ?(settle_limit = 100_000) ~plans g
    script =
  let reference = reference ~tie_order g script in
  List.map
    (fun (name, faults) ->
      (name, classify_with ~settle_limit ~reference ~faults g script))
    plans
