(** Graceful-degradation analysis: how a network misbehaves under faults.

    A run replays one stimulus script twice over the same network — once
    clean, once under a {!Fault.plan} — and compares the settled
    primary-output values after every step (the same observation
    {!Equiv} uses).  The mismatch pattern classifies the degradation:

    - {!Identical}: every settled observation matches — the faults were
      absorbed (dropped packets on already-quiet links, jitter the
      settling hides, ...).
    - {!Glitch_recovered}: some intermediate observations differ but the
      network is back to agreeing with the clean run by the final step —
      a transient glitch.
    - {!Wrong_value}: the network still settles after every step, but
      the final settled outputs are wrong — e.g. a toggle that missed a
      packet and is now out of phase.
    - {!Diverged}: the faulty run never went quiescent
      ({!Engine.Event_limit_exceeded}) — livelock, an expected outcome
      under duplication storms.

    The classes are ordered from benign to severe; {!severity} exposes
    that order. *)

module Graph = Netlist.Graph

type outcome =
  | Identical
  | Glitch_recovered
  | Wrong_value
  | Diverged

val severity : outcome -> int
(** 0 for {!Identical} up to 3 for {!Diverged}. *)

val score : outcome -> float
(** The degradation score the reliability objective averages: a
    monotone mapping of {!severity} into [[0, 1]] —

    - {!Identical} [-> 0.] (the faults were absorbed);
    - {!Glitch_recovered} [-> 0.25] (transient, self-healed);
    - {!Wrong_value} [-> 0.75] (settled but wrong — much worse than a
      recovered glitch, slightly better than never settling);
    - {!Diverged} [-> 1.] (livelock).

    Monotone in {!severity}: [severity a <= severity b] iff
    [score a <= score b].  The uneven spacing encodes that the
    recoverable/unrecoverable boundary matters more than the
    wrong/diverged one (see doc/reliability.md). *)

val outcome_to_string : outcome -> string
val outcome_code : outcome -> string
(** Two-letter code for dense tables: ok / gl / wr / dv. *)

val pp_outcome : Format.formatter -> outcome -> unit

type run = {
  outcome : outcome;
  injected : Fault.stats;  (** faults that actually struck *)
  packets : int;  (** send attempts in the faulty run *)
  mismatched_steps : int;  (** observations differing from the clean run *)
  steps : int;  (** script length compared *)
  settle_limit : int;
      (** the per-step event budget this classification actually ran
          under (the caller's value, not the default) *)
}

val classify :
  ?tie_order:Engine.tie_order ->
  ?settle_limit:int ->
  faults:Fault.plan ->
  Graph.t ->
  Stimulus.script ->
  run
(** Replay [script] clean and under [faults] and classify.  Both runs use
    the same [tie_order] (default {!Engine.Fifo}).  [settle_limit]
    (default 100_000) bounds each per-step settle of the faulty run;
    exceeding it yields {!Diverged} rather than an exception.  The clean
    run is expected to settle: its {!Engine.Event_limit_exceeded}
    propagates, since a design that livelocks without faults cannot be
    graded. *)

val sweep :
  ?tie_order:Engine.tie_order ->
  ?settle_limit:int ->
  plans:(string * Fault.plan) list ->
  Graph.t ->
  Stimulus.script ->
  (string * run) list
(** {!classify} under each named plan, sharing one clean reference
    run.  Each row's [settle_limit] field reports the limit the sweep
    actually ran under. *)

(** {1 Shared references}

    The Monte-Carlo reliability estimator classifies the same
    (network, script) pair under many seeded plans; replaying the
    clean run per plan would double its simulation bill.  A
    {!reference} freezes the clean run's settled observations (and the
    tie order they were produced under) so it can be shared across
    {!classify_against} calls — including calls fanned out over
    worker domains, since a reference is immutable once built. *)

type reference
(** One clean run's settled observations. *)

val reference :
  ?tie_order:Engine.tie_order -> Graph.t -> Stimulus.script -> reference
(** Replay [script] faultlessly and record the per-step settled
    outputs.  The clean run is expected to settle: its
    {!Engine.Event_limit_exceeded} propagates. *)

val classify_against :
  ?settle_limit:int ->
  ?telemetry:Telemetry.t ->
  reference:reference ->
  Graph.t ->
  Stimulus.script ->
  faults:Fault.plan ->
  run
(** {!classify} against a prebuilt clean reference.  [g] and [script]
    must be the pair the reference was built from; the faulty run
    reuses the reference's tie order.  [classify g script ~faults] is
    [classify_against ~reference:(reference g script) g script ~faults].
    [telemetry] arms a collector on the faulty replay (the clean
    reference is never re-run, so it records the faulty run only) —
    this is how the reliability estimator attributes severity to the
    links and nodes whose strikes caused it. *)
