(** Graceful-degradation analysis: how a network misbehaves under faults.

    A run replays one stimulus script twice over the same network — once
    clean, once under a {!Fault.plan} — and compares the settled
    primary-output values after every step (the same observation
    {!Equiv} uses).  The mismatch pattern classifies the degradation:

    - {!Identical}: every settled observation matches — the faults were
      absorbed (dropped packets on already-quiet links, jitter the
      settling hides, ...).
    - {!Glitch_recovered}: some intermediate observations differ but the
      network is back to agreeing with the clean run by the final step —
      a transient glitch.
    - {!Wrong_value}: the network still settles after every step, but
      the final settled outputs are wrong — e.g. a toggle that missed a
      packet and is now out of phase.
    - {!Diverged}: the faulty run never went quiescent
      ({!Engine.Event_limit_exceeded}) — livelock, an expected outcome
      under duplication storms.

    The classes are ordered from benign to severe; {!severity} exposes
    that order. *)

module Graph = Netlist.Graph

type outcome =
  | Identical
  | Glitch_recovered
  | Wrong_value
  | Diverged

val severity : outcome -> int
(** 0 for {!Identical} up to 3 for {!Diverged}. *)

val outcome_to_string : outcome -> string
val outcome_code : outcome -> string
(** Two-letter code for dense tables: ok / gl / wr / dv. *)

val pp_outcome : Format.formatter -> outcome -> unit

type run = {
  outcome : outcome;
  injected : Fault.stats;  (** faults that actually struck *)
  packets : int;  (** send attempts in the faulty run *)
  mismatched_steps : int;  (** observations differing from the clean run *)
  steps : int;  (** script length compared *)
}

val classify :
  ?tie_order:Engine.tie_order ->
  ?settle_limit:int ->
  faults:Fault.plan ->
  Graph.t ->
  Stimulus.script ->
  run
(** Replay [script] clean and under [faults] and classify.  Both runs use
    the same [tie_order] (default {!Engine.Fifo}).  [settle_limit]
    (default 100_000) bounds each per-step settle of the faulty run;
    exceeding it yields {!Diverged} rather than an exception.  The clean
    run is expected to settle: its {!Engine.Event_limit_exceeded}
    propagates, since a design that livelocks without faults cannot be
    graded. *)

val sweep :
  ?tie_order:Engine.tie_order ->
  ?settle_limit:int ->
  plans:(string * Fault.plan) list ->
  Graph.t ->
  Stimulus.script ->
  (string * run) list
(** {!classify} under each named plan, sharing one clean reference
    run. *)
