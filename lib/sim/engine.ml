module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let m_events =
  Obs.Metrics.counter "sim.events_processed" ~doc:"queue events dispatched"
let m_activations =
  Obs.Metrics.counter "sim.activations" ~doc:"block behaviour evaluations"
let m_packets =
  Obs.Metrics.counter "sim.packets_sent"
    ~doc:"packets sent on output change (the power proxy)"
let m_deliveries =
  Obs.Metrics.counter "sim.packets_delivered" ~doc:"Deliver events consumed"
let m_settles =
  Obs.Metrics.counter "sim.settles" ~doc:"settle calls completed"
let m_settle_iterations =
  Obs.Metrics.counter "sim.settle_iterations"
    ~doc:"events drained across all settles"
let h_settle_ns =
  Obs.Metrics.histogram "sim.settle_ns" ~doc:"settle wall time"
let h_settle_events =
  Obs.Metrics.histogram "sim.settle_events" ~doc:"events drained per settle"

type value = Behavior.Ast.value

type tie_order =
  | Fifo
  | Lifo
  | Shuffled of int

type kernel =
  | Interpreted
  | Compiled

exception
  Event_limit_exceeded of {
    clock : int;
    queue_depth : int;
    last_node : Node_id.t option;
  }

let () =
  Printexc.register_printer (function
    | Event_limit_exceeded { clock; queue_depth; last_node } ->
      Some
        (Printf.sprintf
           "Engine.Event_limit_exceeded (clock %d, %d events pending, last \
            active node %s): self-retriggering network?"
           clock queue_depth
           (match last_node with Some id -> string_of_int id | None -> "-"))
    | _ -> None)

let wire_delay = 1

let dummy_value = Behavior.Ast.Bool false

(* ------------------------------------------------------------------ *)
(* Output trace: a growable flat buffer instead of a cons list, so
   recording a change is three array writes and [trace] builds its
   chronological list directly (no O(n) reverse of a newest-first
   list). *)

module Tbuf = struct
  type t = {
    mutable times : int array;
    mutable nodes : Node_id.t array;
    mutable vals : value array;
    mutable len : int;
  }

  let create () =
    {
      times = Array.make 16 0;
      nodes = Array.make 16 0;
      vals = Array.make 16 dummy_value;
      len = 0;
    }

  let push b ~time node v =
    let cap = Array.length b.times in
    if b.len = cap then begin
      let ncap = 2 * cap in
      let grow a zero =
        let a' = Array.make ncap zero in
        Array.blit a 0 a' 0 cap;
        a'
      in
      b.times <- grow b.times 0;
      b.nodes <- grow b.nodes 0;
      b.vals <- grow b.vals dummy_value
    end;
    b.times.(b.len) <- time;
    b.nodes.(b.len) <- node;
    b.vals.(b.len) <- v;
    b.len <- b.len + 1

  let to_list b =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) ((b.times.(i), b.nodes.(i), b.vals.(i)) :: acc)
    in
    go (b.len - 1) []
end

(* ================================================================== *)
(* Interpreted kernel — the oracle.  Walks [Behavior.Ast] through
   [Behavior.Eval] on every activation and orders events with a
   functional map; kept verbatim-simple so the compiled kernel below
   can be property-tested byte-identical against it. *)

type runtime = {
  mutable env : Behavior.Eval.env;
      (* replaced wholesale on a spurious reset (fault injection) *)
  input_latch : value array;
  output_latch : value array;
  timer_gen : int array;
      (* per timer index: generation of the latest arming; expiry events
         from superseded generations are ignored.  Sized from the
         behaviour's largest timer index, so the common timer-free block
         carries the shared zero-length array and pays nothing. *)
}

type event =
  | Deliver of Graph.edge * value
  | Timer_expiry of Node_id.t * int * int  (* node, timer index, generation *)
  | Sensor_change of Node_id.t * bool
  | Fault_reset of Node_id.t  (* spurious reset from the fault plan *)

module Queue_key = struct
  type t = int * int * int  (* time, priority, unique counter *)

  let compare = compare
end

module Event_queue = Map.Make (Queue_key)

type interp = {
  graph : Graph.t;
  states : runtime Node_id.Map.t;
  i_tie_order : tie_order;
  i_tie_rng : Prng.t option;
  i_edge_delay : Graph.edge -> int;
  i_faults : Fault.runtime option;
      (* None when no plan was armed: the zero-cost path *)
  i_telemetry : Telemetry.t option;
      (* same pattern: None means every hook below is one branch *)
  mutable queue : event Event_queue.t;
  mutable depth : int;  (* cardinality of [queue], maintained in O(1) *)
  mutable i_seq : int;
  mutable i_clock : int;
  mutable i_activations : int;
  mutable i_packets : int;
  mutable i_last_active : Node_id.t option;
  i_trace : Tbuf.t;
}

let runtime_of_node g id =
  let d = Graph.descriptor g id in
  let open Eblock.Descriptor in
  let input_latch =
    Array.init d.n_inputs (fun port ->
        match Graph.driver g id port with
        | Some src ->
          let src_desc = Graph.descriptor g src.Graph.node in
          src_desc.output_init.(src.Graph.port)
        | None -> Behavior.Ast.Bool false)
  in
  let n_timers = Behavior.Ast.max_timer_index d.behavior + 1 in
  {
    env = Behavior.Eval.init d.behavior;
    input_latch;
    output_latch = Array.copy d.output_init;
    timer_gen = (if n_timers = 0 then [||] else Array.make n_timers 0);
  }

let istate t id =
  match Node_id.Map.find_opt id t.states with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Engine: unknown node %d" id)

let event_node = function
  | Deliver (e, _) -> e.Graph.dst.Graph.node
  | Timer_expiry (id, _, _) | Sensor_change (id, _) | Fault_reset id -> id

let ischedule t ~time event =
  (* The priority orders same-time events: scheduling order for Fifo,
     reversed for Lifo, seeded-random for Shuffled.  Perturbing it changes
     exactly the packet races whose outcome the network does not actually
     define (see {!tie_order}). *)
  (match t.i_telemetry with
   | None -> ()
   | Some tel -> Telemetry.note_scheduled tel (event_node event));
  t.i_seq <- t.i_seq + 1;
  let priority =
    match t.i_tie_order, t.i_tie_rng with
    | Fifo, _ | (Lifo | Shuffled _), None -> t.i_seq
    | Lifo, _ -> -t.i_seq
    | Shuffled _, Some rng -> Prng.int rng 1_000_000_000
  in
  t.queue <- Event_queue.add (time, priority, t.i_seq) event t.queue;
  t.depth <- t.depth + 1

let current_gen rt timer = rt.timer_gen.(timer)

let bump_gen rt timer =
  let gen = rt.timer_gen.(timer) + 1 in
  rt.timer_gen.(timer) <- gen;
  gen

let icreate ?(tie_order = Fifo) ?(edge_delay = fun _ -> wire_delay) ?faults
    ?telemetry g =
  let order = Graph.topological_order g in
  let states =
    List.fold_left
      (fun acc id -> Node_id.Map.add id (runtime_of_node g id) acc)
      Node_id.Map.empty (Graph.node_ids g)
  in
  let tie_rng =
    match tie_order with
    | Shuffled seed -> Some (Prng.create seed)
    | Fifo | Lifo -> None
  in
  let t = {
    graph = g;
    states;
    i_tie_order = tie_order;
    i_tie_rng = tie_rng;
    i_edge_delay = edge_delay;
    i_faults = Option.map Fault.start faults;
    i_telemetry = telemetry;
    queue = Event_queue.empty;
    depth = 0;
    i_seq = 0;
    i_clock = 0;
    i_activations = 0;
    i_packets = 0;
    i_last_active = None;
    i_trace = Tbuf.create ();
  }
  in
  (* Power-on sweep: each block evaluates once so that every output is
     consistent with the power-on inputs (physical blocks announce their
     state at power-on).  Performed latch-to-latch in topological order,
     with no packets and no clock advance; timer requests (e.g. a delay
     block whose power-on input differs from its reset state) become
     ordinary timer events counted from time 0. *)
  let init_node id =
    let d = Graph.descriptor g id in
    match d.Eblock.Descriptor.kind with
    | Eblock.Kind.Sensor | Eblock.Kind.Output -> ()
    | Eblock.Kind.Compute | Eblock.Kind.Comm | Eblock.Kind.Programmable ->
      let rt = Node_id.Map.find id states in
      let act =
        { Behavior.Eval.inputs = Array.copy rt.input_latch; fired = None }
      in
      let outcome =
        Behavior.Eval.activate d.Eblock.Descriptor.behavior
          ~n_outputs:d.Eblock.Descriptor.n_outputs rt.env act
      in
      Array.iteri
        (fun port slot ->
          match slot with
          | Some v ->
            rt.output_latch.(port) <- v;
            Graph.iter_fanout_on g id port
              (fun e ->
                let dst_rt = Node_id.Map.find e.Graph.dst.Graph.node states in
                dst_rt.input_latch.(e.Graph.dst.Graph.port) <- v)
          | None -> ())
        outcome.Behavior.Eval.outputs;
      List.iter
        (fun (timer, action) ->
          match action with
          | Behavior.Eval.Timer_set delay ->
            let gen = bump_gen rt timer in
            ischedule t ~time:delay (Timer_expiry (id, timer, gen))
          | Behavior.Eval.Timer_cancelled -> ignore (bump_gen rt timer))
        outcome.Behavior.Eval.timers
  in
  List.iter init_node order;
  (* Spurious resets are plan-scheduled events like any other; an empty
     plan schedules none and the queue stays untouched. *)
  Option.iter
    (fun plan ->
      List.iter
        (fun (id, time) ->
          if Graph.mem g id then ischedule t ~time (Fault_reset id))
        (Fault.resets plan))
    faults;
  t


(* Present [v] on output [port] of [id]; on change, send a packet down
   every connection of that port. *)
let ipresent t ~time id port v =
  let rt = istate t id in
  (* A stuck-at output fault overrides the value before change
     detection: downstream never sees anything else on that port. *)
  let v =
    match t.i_faults with
    | None -> v
    | Some frt -> Fault.stuck_value frt ~time id ~port v
  in
  if not (Behavior.Ast.equal_value rt.output_latch.(port) v) then begin
    rt.output_latch.(port) <- v;
    Graph.iter_fanout_on t.graph id port
      (fun e ->
        t.i_packets <- t.i_packets + 1;
        Obs.Metrics.incr m_packets;
        let deliveries, strike =
          match t.i_faults with
          | None -> ([ (0, v) ], Fault.no_strike)
          | Some frt -> Fault.on_send frt ~time e v
        in
        (match t.i_telemetry with
         | None -> ()
         | Some tel ->
           let base = max 1 (t.i_edge_delay e) in
           Telemetry.note_send tel e ~strike
             ~latencies:(List.map (fun (extra, _) -> base + extra)
                           deliveries));
        List.iter
          (fun (extra, v') ->
            ischedule t
              ~time:(time + max 1 (t.i_edge_delay e) + extra)
              (Deliver (e, v')))
          deliveries)
  end

let iactivate t ~time id ~fired =
  let d = Graph.descriptor t.graph id in
  let rt = istate t id in
  t.i_activations <- t.i_activations + 1;
  Obs.Metrics.incr m_activations;
  (match t.i_telemetry with
   | None -> ()
   | Some tel -> Telemetry.note_activation tel id);
  let act =
    { Behavior.Eval.inputs = Array.copy rt.input_latch; fired }
  in
  let outcome =
    Behavior.Eval.activate d.Eblock.Descriptor.behavior
      ~n_outputs:d.Eblock.Descriptor.n_outputs rt.env act
  in
  Array.iteri
    (fun port slot ->
      match slot with
      | Some v -> ipresent t ~time id port v
      | None -> ())
    outcome.Behavior.Eval.outputs;
  List.iter
    (fun (timer, action) ->
      match action with
      | Behavior.Eval.Timer_set delay ->
        let gen = bump_gen rt timer in
        ischedule t ~time:(time + delay) (Timer_expiry (id, timer, gen))
      | Behavior.Eval.Timer_cancelled -> ignore (bump_gen rt timer))
    outcome.Behavior.Eval.timers

let iprocess t ~time event =
  t.i_clock <- max t.i_clock time;
  t.i_last_active <- Some (event_node event);
  Obs.Metrics.incr m_events;
  (match t.i_telemetry with
   | None -> ()
   | Some tel ->
     let kind =
       match event with
       | Deliver (e, _) -> Telemetry.Delivered e
       | Timer_expiry _ -> Telemetry.Timer_fired
       | Sensor_change _ -> Telemetry.Sensor_set
       | Fault_reset _ -> Telemetry.Reset
     in
     Telemetry.note_event tel ~time (event_node event) kind);
  match event with
  | Deliver (e, v) ->
    Obs.Metrics.incr m_deliveries;
    let dst = e.Graph.dst.Graph.node in
    let rt = istate t dst in
    let port = e.Graph.dst.Graph.port in
    let changed = not (Behavior.Ast.equal_value rt.input_latch.(port) v) in
    rt.input_latch.(port) <- v;
    (match Graph.kind t.graph dst with
     | Eblock.Kind.Output ->
       if changed then Tbuf.push t.i_trace ~time dst v
     | Eblock.Kind.Sensor | Eblock.Kind.Compute | Eblock.Kind.Comm
     | Eblock.Kind.Programmable -> iactivate t ~time dst ~fired:None)
  | Timer_expiry (id, timer, gen) ->
    let rt = istate t id in
    if current_gen rt timer = gen then iactivate t ~time id ~fired:(Some timer)
  | Sensor_change (id, b) -> ipresent t ~time id 0 (Behavior.Ast.Bool b)
  | Fault_reset id ->
    (* Brownout: the block loses its volatile state — variable store and
       pending timers — and its outputs snap back to power-on values,
       announced downstream like a power-on.  Latched inputs survive (the
       input registers hold), so the block recomputes on its next
       activation; until then its outputs may disagree with its inputs,
       which is exactly the degradation {!Degrade} classifies. *)
    Option.iter Fault.note_reset t.i_faults;
    let d = Graph.descriptor t.graph id in
    let rt = istate t id in
    rt.env <- Behavior.Eval.init d.Eblock.Descriptor.behavior;
    Array.iteri
      (fun timer gen -> if gen > 0 then rt.timer_gen.(timer) <- gen + 1)
      rt.timer_gen;
    Array.iteri (fun port v -> ipresent t ~time id port v)
      d.Eblock.Descriptor.output_init

let istep t =
  match Event_queue.min_binding_opt t.queue with
  | None -> false
  | Some (((time, _, _) as key), event) ->
    t.queue <- Event_queue.remove key t.queue;
    t.depth <- t.depth - 1;
    iprocess t ~time event;
    true

let irun_until t horizon =
  let rec loop () =
    match Event_queue.min_binding_opt t.queue with
    | Some (((time, _, _) as key), event) when time <= horizon ->
      t.queue <- Event_queue.remove key t.queue;
      t.depth <- t.depth - 1;
      iprocess t ~time event;
      loop ()
    | Some _ | None -> t.i_clock <- max t.i_clock horizon
  in
  loop ()

(* ================================================================== *)
(* Compiled kernel.  The same discrete-event semantics over compiled
   data: behaviours are lowered once into closures over flat state
   ({!Behavior.Compile}), node ids are compacted to [0 .. n-1] so every
   per-node lookup is an array index, each (node, port) has its fanout
   edges as a flat index slice, and the event queue is a binary heap of
   slots in a grow-by-doubling struct-of-arrays store — no per-event
   boxing, O(1) depth.  Event order is the identical lexicographic
   (time, priority, seq) total order (seq is unique), so traces, PRNG
   draw order, fault strikes, and telemetry are byte-identical to the
   interpreter (test_kernel.ml). *)

(* Event tags in [ev_tag]. *)
let tag_deliver = 0
let tag_timer = 1
let tag_sensor = 2
let tag_reset = 3

(* The near-future window of the calendar: one bucket per tick.  Must
   be a power of two (bucket = time land [wheel_mask]). *)
let wheel_w = 256
let wheel_mask = wheel_w - 1

type comp = {
  c_graph : Graph.t;
  n_nodes : int;
  ids : Node_id.t array;  (* dense index -> node id, ascending *)
  idx_of : (Node_id.t, int) Hashtbl.t;
  kinds : Eblock.Kind.t array;
  descs : Eblock.Descriptor.t array;
  progs : Behavior.Compile.t array;
  pstates : Behavior.Compile.state array;
  (* latches, int-encoded via Behavior.Compile.value_tag (0/1 Bool,
     2 Int with payload in the parallel array): a delivery is two
     unboxed stores, no write barrier *)
  cin_k : int array array;
  cin_n : int array array;
  cout_k : int array array;
  cout_n : int array array;
  tgen : int array array;  (* per node, per timer slot: generation *)
  (* dense edges, indexed in (source node asc, port asc, fanout order) *)
  e_rec : Graph.edge array;
  e_dst : int array;  (* dense destination node *)
  e_dst_port : int array;
  fo : int array array array;  (* node -> port -> edge indices *)
  c_tie_order : tie_order;
  c_tie_rng : Prng.t option;
  c_edge_delay : Graph.edge -> int;
  c_faults : Fault.runtime option;
  c_telemetry : Telemetry.t option;
  (* the event calendar: a struct-of-arrays store holding every pending
     event's fields, addressed by slot; a timing wheel (one bucket per
     tick over a [wheel_w]-tick window) for near events; and a
     time-sorted overflow array for events beyond the window *)
  mutable ev_time : int array;
  mutable ev_prio : int array;
  mutable ev_seq : int array;
  mutable ev_tag : int array;
  mutable ev_a : int array;  (* edge or node index; free-list link *)
  mutable ev_b : int array;  (* timer slot *)
  mutable ev_c : int array;  (* timer generation *)
  mutable ev_vk : int array;  (* value, int-encoded: 0/1 = Bool, 2 = Int *)
  mutable ev_vn : int array;  (* Int payload when ev_vk = 2 *)
  mutable store_len : int;
  mutable free_ev : int;  (* free-list head in the store, -1 none *)
  buckets : int array array;  (* wheel: per-tick slot lists *)
  b_len : int array;
  b_dirty : bool array;
      (* bucket holds an append that broke (priority, seq) order —
         sorted lazily when the bucket drains *)
  mutable cursor : int;
      (* wheel window start; also the time of the bucket being drained.
         Every wheel event has time in [cursor, cursor + wheel_w), so
         bucket index (time land mask) identifies the time uniquely and
         entries of one bucket all share it. *)
  mutable cur_pos : int;  (* drained prefix of the cursor's bucket *)
  mutable wheel_count : int;
  (* overflow: slots with times >= cursor + wheel_w, kept sorted by
     time ascending in [ovf_head, ovf_len).  Pre-scheduled stimulus
     scripts arrive in ascending time order, so pushes are O(1)
     appends and draining into the wheel is a head-pointer bump —
     the pattern a binary heap serves worst (every event paid two
     log-n, cache-hostile sift passes).  An out-of-order push costs
     a binary search plus a memmove; within one time the array order
     is arbitrary, because (priority, seq) order is restored by the
     bucket's lazy sort. *)
  mutable ovf : int array;
  mutable ovf_len : int;
  mutable ovf_head : int;
  mutable c_seq : int;
  mutable c_clock : int;
  mutable c_activations : int;
  mutable c_packets : int;
  (* per-event metric increments batched into plain ints — the global
     counters are atomics, and a lock-prefixed add per event is pure
     drain-loop overhead; flushed whenever control returns to the
     caller (drain exit, run_until, public step) *)
  mutable pm_events : int;
  mutable pm_deliveries : int;
  mutable pm_packets : int;
  mutable pm_activations : int;
  mutable c_last : int;  (* dense index of the last active node, -1 *)
  c_trace : Tbuf.t;
}

(* --- event store + overflow ---------------------------------------- *)

(* Unsafe indexing for the kernel's inner loop: every index below is an
   engine-maintained invariant (slots < store_len, dense node/edge/port
   indices built at create time, bucket indices masked), so the bounds
   checks only cost.  The interpreter oracle keeps checked accesses. *)
external ( .%() ) : 'a array -> int -> 'a = "%array_unsafe_get"
external ( .%()<- ) : 'a array -> int -> 'a -> unit = "%array_unsafe_set"

let ev_grow t =
  let cap = Array.length t.ev_time in
  let ncap = 2 * cap in
  let grow a zero =
    let a' = Array.make ncap zero in
    Array.blit a 0 a' 0 cap;
    a'
  in
  t.ev_time <- grow t.ev_time 0;
  t.ev_prio <- grow t.ev_prio 0;
  t.ev_seq <- grow t.ev_seq 0;
  t.ev_tag <- grow t.ev_tag 0;
  t.ev_a <- grow t.ev_a 0;
  t.ev_b <- grow t.ev_b 0;
  t.ev_c <- grow t.ev_c 0;
  t.ev_vk <- grow t.ev_vk 0;
  t.ev_vn <- grow t.ev_vn 0

let ev_alloc t =
  if t.free_ev >= 0 then begin
    let slot = t.free_ev in
    t.free_ev <- t.ev_a.%(slot);
    slot
  end
  else begin
    if t.store_len = Array.length t.ev_time then ev_grow t;
    let slot = t.store_len in
    t.store_len <- t.store_len + 1;
    slot
  end

(* The freed slot's boxed value is left in place: it stays live only
   until the slot is reused, the store never shrinks, and skipping the
   write saves a [caml_modify] barrier on every event. *)
let ev_free t slot =
  t.ev_a.%(slot) <- t.free_ev;
  t.free_ev <- slot

let ovf_count t = t.ovf_len - t.ovf_head

(* Insert a slot into the sorted overflow.  The ascending-stream case
   (time >= the current last entry) is a plain append; otherwise binary
   search by time and shift the tail one right. *)
let ovf_push t slot =
  (if t.ovf_len = Array.length t.ovf then
     if t.ovf_head > 0 then begin
       (* reclaim the drained prefix before growing *)
       let n = ovf_count t in
       Array.blit t.ovf t.ovf_head t.ovf 0 n;
       t.ovf_head <- 0;
       t.ovf_len <- n
     end
     else begin
       let cap = Array.length t.ovf in
       let a = Array.make (2 * cap) 0 in
       Array.blit t.ovf 0 a 0 cap;
       t.ovf <- a
     end);
  let a = t.ovf in
  let time = t.ev_time.%(slot) in
  if t.ovf_len = t.ovf_head || t.ev_time.%(a.%(t.ovf_len - 1)) <= time then begin
    a.%(t.ovf_len) <- slot;
    t.ovf_len <- t.ovf_len + 1
  end
  else begin
    (* upper bound: first index whose time exceeds [time] *)
    let lo = ref t.ovf_head and hi = ref t.ovf_len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.ev_time.%(a.%(mid)) <= time then lo := mid + 1 else hi := mid
    done;
    Array.blit a !lo a (!lo + 1) (t.ovf_len - !lo);
    a.%(!lo) <- slot;
    t.ovf_len <- t.ovf_len + 1
  end

(* --- the timing wheel ---------------------------------------------- *)

(* Entries of one bucket share their time (window width = bucket count),
   so within-bucket order is (priority, seq) alone. *)
let key_lt t s1 s2 =
  let p1 = t.ev_prio.%(s1) and p2 = t.ev_prio.%(s2) in
  p1 < p2 || (p1 = p2 && t.ev_seq.%(s1) < t.ev_seq.%(s2))

let wheel_append t slot =
  let time = t.ev_time.%(slot) in
  let b = time land wheel_mask in
  let len = t.b_len.%(b) in
  let arr =
    let arr = t.buckets.%(b) in
    if len < Array.length arr then arr
    else begin
      let arr' = Array.make (2 * len) 0 in
      Array.blit arr 0 arr' 0 len;
      t.buckets.%(b) <- arr';
      arr'
    end
  in
  arr.%(len) <- slot;
  t.b_len.%(b) <- len + 1;
  t.wheel_count <- t.wheel_count + 1;
  (* appends almost always arrive in (priority, seq) order (Fifo always:
     priority = seq); the rare out-of-order append (Lifo, Shuffled, or
     a migration mixing with direct pushes) marks the bucket for a lazy
     sort at drain time *)
  let start = if time = t.cursor then t.cur_pos else 0 in
  if len > start && key_lt t slot arr.%(len - 1) then t.b_dirty.%(b) <- true

(* Insertion sort of the pending suffix — buckets are small and almost
   sorted when this runs at all. *)
let sort_bucket t b lo =
  let arr = t.buckets.%(b) in
  for i = lo + 1 to t.b_len.%(b) - 1 do
    let s = arr.%(i) in
    let j = ref (i - 1) in
    while !j >= lo && key_lt t s arr.%(!j) do
      arr.%(!j + 1) <- arr.%(!j);
      decr j
    done;
    arr.%(!j + 1) <- s
  done;
  t.b_dirty.%(b) <- false

(* Advance the cursor to the earliest pending event's time.  Requires a
   pending event.  Wheel events lie within [cursor, cursor + wheel_w),
   so tick-by-tick advance finds one in at most wheel_w empty-bucket
   probes; with the wheel empty the cursor jumps straight to the
   overflow's minimum (always >= cursor + wheel_w).  Every advance
   migrates the overflow prefix the window newly covers into its
   buckets — a head-pointer walk, since the overflow is time-sorted.

   Only the pop path calls this, so between engine operations the
   cursor rests at the last processed event's time (<= clock) and a
   schedule can never land behind it. *)
let rec calendar_advance t =
  let b = t.cursor land wheel_mask in
  if t.cur_pos >= t.b_len.%(b) then begin
    if t.wheel_count = 0 then t.cursor <- t.ev_time.%(t.ovf.%(t.ovf_head))
    else t.cursor <- t.cursor + 1;
    let horizon = t.cursor + wheel_w in
    while
      t.ovf_head < t.ovf_len && t.ev_time.%(t.ovf.%(t.ovf_head)) < horizon
    do
      wheel_append t t.ovf.%(t.ovf_head);
      t.ovf_head <- t.ovf_head + 1
    done;
    if t.ovf_head = t.ovf_len then begin
      t.ovf_head <- 0;
      t.ovf_len <- 0
    end;
    calendar_advance t
  end

(* Earliest pending time without moving the cursor ([run_until]'s
   horizon check); [max_int] when nothing is pending.  The overflow
   cannot beat the wheel: its times are all >= cursor + wheel_w, and a
   nonempty wheel yields within the window. *)
let cnext_time t =
  if t.wheel_count = 0 then
    if ovf_count t = 0 then max_int else t.ev_time.%(t.ovf.%(t.ovf_head))
  else begin
    let rec scan time =
      let b = time land wheel_mask in
      let pos = if time = t.cursor then t.cur_pos else 0 in
      if pos < t.b_len.%(b) then time else scan (time + 1)
    in
    scan t.cursor
  end

(* --- scheduling ---------------------------------------------------- *)

let cschedule t ~time ~tag ~a ~b ~c ~vk ~vn =
  (match t.c_telemetry with
   | None -> ()
   | Some tel ->
     let ni = if tag = tag_deliver then t.e_dst.%(a) else a in
     Telemetry.note_scheduled tel t.ids.%(ni));
  t.c_seq <- t.c_seq + 1;
  let priority =
    match t.c_tie_order, t.c_tie_rng with
    | Fifo, _ | (Lifo | Shuffled _), None -> t.c_seq
    | Lifo, _ -> -t.c_seq
    | Shuffled _, Some rng -> Prng.int rng 1_000_000_000
  in
  let slot = ev_alloc t in
  t.ev_time.%(slot) <- time;
  t.ev_prio.%(slot) <- priority;
  t.ev_seq.%(slot) <- t.c_seq;
  t.ev_tag.%(slot) <- tag;
  t.ev_a.%(slot) <- a;
  t.ev_b.%(slot) <- b;
  t.ev_c.%(slot) <- c;
  t.ev_vk.%(slot) <- vk;
  t.ev_vn.%(slot) <- vn;
  if time < t.cursor + wheel_w then wheel_append t slot else ovf_push t slot

(* --- the hot path -------------------------------------------------- *)

let cpresent t ~time ni port v =
  let v =
    match t.c_faults with
    | None -> v
    | Some frt -> Fault.stuck_value frt ~time t.ids.%(ni) ~port v
  in
  let vk = Behavior.Compile.value_tag v in
  let vn = Behavior.Compile.value_payload v in
  let ok = t.cout_k.%(ni) in
  let changed =
    ok.%(port) <> vk || (vk = 2 && t.cout_n.%(ni).%(port) <> vn)
  in
  if changed then begin
    ok.%(port) <- vk;
    t.cout_n.%(ni).%(port) <- vn;
    let edges = t.fo.%(ni).%(port) in
    for k = 0 to Array.length edges - 1 do
      let ei = edges.%(k) in
      t.c_packets <- t.c_packets + 1;
      t.pm_packets <- t.pm_packets + 1;
      let e = t.e_rec.%(ei) in
      match t.c_faults with
      | None ->
        (* fast path: one delivery, no strike, no list *)
        let d = t.c_edge_delay e in
        let d = if d < 1 then 1 else d in
        (match t.c_telemetry with
         | None -> ()
         | Some tel ->
           Telemetry.note_send tel e ~strike:Fault.no_strike ~latencies:[ d ]);
        cschedule t ~time:(time + d) ~tag:tag_deliver ~a:ei ~b:0 ~c:0 ~vk ~vn
      | Some frt ->
        let deliveries, strike = Fault.on_send frt ~time e v in
        (match t.c_telemetry with
         | None -> ()
         | Some tel ->
           let base = max 1 (t.c_edge_delay e) in
           Telemetry.note_send tel e ~strike
             ~latencies:(List.map (fun (extra, _) -> base + extra)
                           deliveries));
        List.iter
          (fun (extra, v') ->
            cschedule t
              ~time:(time + max 1 (t.c_edge_delay e) + extra)
              ~tag:tag_deliver ~a:ei ~b:0 ~c:0
              ~vk:(Behavior.Compile.value_tag v')
              ~vn:(Behavior.Compile.value_payload v'))
          deliveries
    done
  end

let cactivate t ~time ni ~fired =
  t.c_activations <- t.c_activations + 1;
  t.pm_activations <- t.pm_activations + 1;
  (match t.c_telemetry with
   | None -> ()
   | Some tel -> Telemetry.note_activation tel t.ids.%(ni));
  let st = t.pstates.%(ni) in
  Behavior.Compile.run_bound t.progs.%(ni) st ~fired;
  (* flush the scratch ourselves — ascending ports, then ascending
     timer slots, exactly [Compile.activate]'s order — so an
     activation involves no closure dispatch at all *)
  let out_set = st.Behavior.Compile.out_set in
  let out_val = st.Behavior.Compile.out_val in
  for port = 0 to Array.length out_set - 1 do
    if out_set.%(port) then cpresent t ~time ni port out_val.%(port)
  done;
  let tmr_act = st.Behavior.Compile.tmr_act in
  if Array.length tmr_act > 0 then begin
    let tg = t.tgen.%(ni) in
    for slot = 0 to Array.length tmr_act - 1 do
      match tmr_act.%(slot) with
      | 1 ->
        let gen = tg.%(slot) + 1 in
        tg.%(slot) <- gen;
        cschedule t
          ~time:(time + st.Behavior.Compile.tmr_delay.%(slot))
          ~tag:tag_timer ~a:ni ~b:slot ~c:gen ~vk:0 ~vn:0
      | 2 -> tg.%(slot) <- tg.%(slot) + 1
      | _ -> ()
    done
  end

let cprocess t ~time ~tag ~a ~b ~c ~vk ~vn =
  if time > t.c_clock then t.c_clock <- time;
  let ni = if tag = tag_deliver then t.e_dst.%(a) else a in
  t.c_last <- ni;
  t.pm_events <- t.pm_events + 1;
  (match t.c_telemetry with
   | None -> ()
   | Some tel ->
     let kind =
       if tag = tag_deliver then Telemetry.Delivered t.e_rec.%(a)
       else if tag = tag_timer then Telemetry.Timer_fired
       else if tag = tag_sensor then Telemetry.Sensor_set
       else Telemetry.Reset
     in
     Telemetry.note_event tel ~time t.ids.%(ni) kind);
  if tag = tag_deliver then begin
    t.pm_deliveries <- t.pm_deliveries + 1;
    let port = t.e_dst_port.%(a) in
    let ik = t.cin_k.%(ni) in
    let changed =
      ik.%(port) <> vk || (vk = 2 && t.cin_n.%(ni).%(port) <> vn)
    in
    ik.%(port) <- vk;
    t.cin_n.%(ni).%(port) <- vn;
    match t.kinds.%(ni) with
    | Eblock.Kind.Output ->
      if changed then
        Tbuf.push t.c_trace ~time t.ids.%(ni)
          (Behavior.Compile.value_of_code vk vn)
    | Eblock.Kind.Sensor | Eblock.Kind.Compute | Eblock.Kind.Comm
    | Eblock.Kind.Programmable -> cactivate t ~time ni ~fired:(-1)
  end
  else if tag = tag_timer then begin
    if t.tgen.%(ni).%(b) = c then cactivate t ~time ni ~fired:b
  end
  else if tag = tag_sensor then
    cpresent t ~time ni 0 (Behavior.Compile.value_of_code vk vn)
  else begin
    (* brownout, as in the interpreter: volatile state and pending
       timers are lost, outputs snap back to power-on values *)
    Option.iter Fault.note_reset t.c_faults;
    Behavior.Compile.reset_state t.progs.%(ni) t.pstates.%(ni);
    let tg = t.tgen.%(ni) in
    for s = 0 to Array.length tg - 1 do
      if tg.%(s) > 0 then tg.%(s) <- tg.%(s) + 1
    done;
    Array.iteri (fun port v -> cpresent t ~time ni port v)
      t.descs.%(ni).Eblock.Descriptor.output_init
  end

let cflush_metrics t =
  if t.pm_events > 0 then begin
    Obs.Metrics.add m_events t.pm_events;
    t.pm_events <- 0
  end;
  if t.pm_deliveries > 0 then begin
    Obs.Metrics.add m_deliveries t.pm_deliveries;
    t.pm_deliveries <- 0
  end;
  if t.pm_packets > 0 then begin
    Obs.Metrics.add m_packets t.pm_packets;
    t.pm_packets <- 0
  end;
  if t.pm_activations > 0 then begin
    Obs.Metrics.add m_activations t.pm_activations;
    t.pm_activations <- 0
  end

let cstep t =
  if t.wheel_count + t.ovf_len - t.ovf_head = 0 then false
  else begin
    calendar_advance t;
    let b = t.cursor land wheel_mask in
    if t.b_dirty.%(b) then sort_bucket t b t.cur_pos;
    let slot = t.buckets.%(b).%(t.cur_pos) in
    let pos = t.cur_pos + 1 in
    if pos >= t.b_len.%(b) then begin
      t.b_len.%(b) <- 0;
      t.cur_pos <- 0
    end
    else t.cur_pos <- pos;
    t.wheel_count <- t.wheel_count - 1;
    let time = t.ev_time.%(slot) in
    let tag = t.ev_tag.%(slot) in
    let a = t.ev_a.%(slot) in
    let b = t.ev_b.%(slot) in
    let c = t.ev_c.%(slot) in
    let vk = t.ev_vk.%(slot) in
    let vn = t.ev_vn.%(slot) in
    ev_free t slot;
    cprocess t ~time ~tag ~a ~b ~c ~vk ~vn;
    true
  end

let crun_until t horizon =
  let rec loop () =
    if t.wheel_count + t.ovf_len - t.ovf_head > 0 && cnext_time t <= horizon
    then begin
      ignore (cstep t);
      loop ()
    end
    else begin
      if horizon > t.c_clock then t.c_clock <- horizon;
      cflush_metrics t
    end
  in
  loop ()

(* --- construction -------------------------------------------------- *)

let ccreate ?(tie_order = Fifo) ?(edge_delay = fun _ -> wire_delay) ?faults
    ?telemetry g =
  let order = Graph.topological_order g in
  let ids = Array.of_list (Graph.node_ids g) in
  let n_nodes = Array.length ids in
  let idx_of = Hashtbl.create (2 * n_nodes) in
  Array.iteri (fun i id -> Hashtbl.replace idx_of id i) ids;
  let descs = Array.map (fun id -> Graph.descriptor g id) ids in
  let kinds = Array.map (fun d -> d.Eblock.Descriptor.kind) descs in
  let progs =
    Array.map
      (fun (d : Eblock.Descriptor.t) ->
        Behavior.Compile.compile d.behavior ~n_outputs:d.n_outputs)
      descs
  in
  let pstates = Array.map Behavior.Compile.fresh_state progs in
  let in_init i port =
    let id = ids.(i) in
    match Graph.driver g id port with
    | Some src ->
      let src_desc = Graph.descriptor g src.Graph.node in
      src_desc.Eblock.Descriptor.output_init.(src.Graph.port)
    | None -> dummy_value
  in
  let cin_k =
    Array.mapi
      (fun i (d : Eblock.Descriptor.t) ->
        Array.init d.n_inputs (fun port ->
            Behavior.Compile.value_tag (in_init i port)))
      descs
  in
  let cin_n =
    Array.mapi
      (fun i (d : Eblock.Descriptor.t) ->
        Array.init d.n_inputs (fun port ->
            Behavior.Compile.value_payload (in_init i port)))
      descs
  in
  let cout_k =
    Array.map
      (fun (d : Eblock.Descriptor.t) ->
        Array.map Behavior.Compile.value_tag d.output_init)
      descs
  in
  let cout_n =
    Array.map
      (fun (d : Eblock.Descriptor.t) ->
        Array.map Behavior.Compile.value_payload d.output_init)
      descs
  in
  let tgen =
    Array.map
      (fun p ->
        let n = Behavior.Compile.n_timers p in
        if n = 0 then [||] else Array.make n 0)
      progs
  in
  (* dense edge tables, in (node asc, port asc, fanout order) *)
  let edges = ref [] and n_edges = ref 0 in
  let fo =
    Array.mapi
      (fun i (d : Eblock.Descriptor.t) ->
        Array.init d.n_outputs (fun port ->
            let es = Graph.fanout_on g ids.(i) port in
            Array.of_list
              (List.map
                 (fun e ->
                   let ei = !n_edges in
                   incr n_edges;
                   edges := e :: !edges;
                   ei)
                 es)))
      descs
  in
  let e_rec = Array.of_list (List.rev !edges) in
  let e_dst =
    Array.map (fun e -> Hashtbl.find idx_of e.Graph.dst.Graph.node) e_rec
  in
  let e_dst_port = Array.map (fun e -> e.Graph.dst.Graph.port) e_rec in
  let tie_rng =
    match tie_order with
    | Shuffled seed -> Some (Prng.create seed)
    | Fifo | Lifo -> None
  in
  let t = {
    c_graph = g;
    n_nodes;
    ids;
    idx_of;
    kinds;
    descs;
    progs;
    pstates;
    cin_k;
    cin_n;
    cout_k;
    cout_n;
    tgen;
    e_rec;
    e_dst;
    e_dst_port;
    fo;
    c_tie_order = tie_order;
    c_tie_rng = tie_rng;
    c_edge_delay = edge_delay;
    c_faults = Option.map Fault.start faults;
    c_telemetry = telemetry;
    ev_time = Array.make 64 0;
    ev_prio = Array.make 64 0;
    ev_seq = Array.make 64 0;
    ev_tag = Array.make 64 0;
    ev_a = Array.make 64 0;
    ev_b = Array.make 64 0;
    ev_c = Array.make 64 0;
    ev_vk = Array.make 64 0;
    ev_vn = Array.make 64 0;
    store_len = 0;
    free_ev = -1;
    ovf = Array.make 64 0;
    ovf_len = 0;
    ovf_head = 0;
    buckets = Array.init wheel_w (fun _ -> Array.make 8 0);
    b_len = Array.make wheel_w 0;
    b_dirty = Array.make wheel_w false;
    cursor = 0;
    cur_pos = 0;
    wheel_count = 0;
    c_seq = 0;
    c_clock = 0;
    c_activations = 0;
    c_packets = 0;
    pm_events = 0;
    pm_deliveries = 0;
    pm_packets = 0;
    pm_activations = 0;
    c_last = -1;
    c_trace = Tbuf.create ();
  }
  in
  (* Power-on sweep, mirroring the interpreter: latch-to-latch in
     topological order, no packets, no clock advance; timers scheduled
     from time 0 (same seq / tie-PRNG draw order). *)
  List.iter
    (fun id ->
      let ni = Hashtbl.find idx_of id in
      match kinds.(ni) with
      | Eblock.Kind.Sensor | Eblock.Kind.Output -> ()
      | Eblock.Kind.Compute | Eblock.Kind.Comm | Eblock.Kind.Programmable ->
        let inputs =
          Array.init
            (Array.length cin_k.(ni))
            (fun port ->
              Behavior.Compile.value_of_code cin_k.(ni).(port)
                cin_n.(ni).(port))
        in
        Behavior.Compile.activate progs.(ni) pstates.(ni) ~inputs
          ~fired:(-1)
          ~on_output:(fun port v ->
            let vk = Behavior.Compile.value_tag v in
            let vn = Behavior.Compile.value_payload v in
            cout_k.(ni).(port) <- vk;
            cout_n.(ni).(port) <- vn;
            let es = fo.(ni).(port) in
            for k = 0 to Array.length es - 1 do
              let ei = es.(k) in
              cin_k.(t.e_dst.(ei)).(t.e_dst_port.(ei)) <- vk;
              cin_n.(t.e_dst.(ei)).(t.e_dst_port.(ei)) <- vn
            done)
          ~on_timer_set:(fun slot delay ->
            let tg = tgen.(ni) in
            let gen = tg.(slot) + 1 in
            tg.(slot) <- gen;
            cschedule t ~time:delay ~tag:tag_timer ~a:ni ~b:slot ~c:gen
              ~vk:0 ~vn:0)
          ~on_timer_cancel:(fun slot ->
            let tg = tgen.(ni) in
            tg.(slot) <- tg.(slot) + 1))
    order;
  Option.iter
    (fun plan ->
      List.iter
        (fun (id, time) ->
          if Graph.mem g id then
            cschedule t ~time ~tag:tag_reset ~a:(Hashtbl.find idx_of id) ~b:0
              ~c:0 ~vk:0 ~vn:0)
        (Fault.resets plan))
    faults;
  (* install the long-lived input latches; from here on activations go
     through [Compile.run_bound] and never touch the latch pointer *)
  for ni = 0 to n_nodes - 1 do
    Behavior.Compile.bind_inputs pstates.(ni) ~tags:cin_k.(ni)
      ~payloads:cin_n.(ni)
  done;
  t

let cindex t id =
  match Hashtbl.find_opt t.idx_of id with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Engine: unknown node %d" id)

(* ================================================================== *)
(* The public engine: one of the two kernels behind one API. *)

type t =
  | I of interp
  | C of comp

let kernel = function I _ -> Interpreted | C _ -> Compiled

let default_kernel () =
  match Sys.getenv_opt "PAREDOWN_SIM_KERNEL" with
  | Some ("interpreted" | "interpreter" | "interp") -> Interpreted
  | Some ("compiled" | "compile") -> Compiled
  | Some other ->
    invalid_arg
      (Printf.sprintf
         "PAREDOWN_SIM_KERNEL=%s (expected 'compiled' or 'interpreted')"
         other)
  | None -> Compiled

let create ?kernel ?tie_order ?edge_delay ?faults ?telemetry g =
  let kernel =
    match kernel with Some k -> k | None -> default_kernel ()
  in
  match kernel with
  | Interpreted -> I (icreate ?tie_order ?edge_delay ?faults ?telemetry g)
  | Compiled -> C (ccreate ?tie_order ?edge_delay ?faults ?telemetry g)

let now = function I t -> t.i_clock | C t -> t.c_clock

let step = function
  | I t -> istep t
  | C t ->
    let stepped = cstep t in
    cflush_metrics t;
    stepped

let run_until t horizon =
  match t with I t -> irun_until t horizon | C t -> crun_until t horizon

let queue_depth = function
  | I t -> t.depth
  | C t -> t.wheel_count + ovf_count t

let last_active = function
  | I t -> t.i_last_active
  | C t -> if t.c_last < 0 then None else Some t.ids.(t.c_last)

let telemetry_of = function I t -> t.i_telemetry | C t -> t.c_telemetry

let settle ?(limit = 100_000) t =
  Obs.Trace.with_span "sim.settle" @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  (* drain without the per-event kernel dispatch of [step] *)
  let drained =
    match t with
    | I it ->
      let rec go n = if n = limit || not (istep it) then n else go (n + 1) in
      go 0
    | C ct ->
      let rec go n = if n = limit || not (cstep ct) then n else go (n + 1) in
      let n = go 0 in
      cflush_metrics ct;
      n
  in
  if drained = limit then begin
    let queue_depth = queue_depth t in
    let clock = now t in
    let last_node = last_active t in
    if Obs.Journal.enabled () then
      Obs.Journal.emit
        (Obs.Journal.Event_limit { clock; queue_depth; last_node });
    Obs.Journal.note_failure
      (Printf.sprintf
         "simulation event limit exceeded (clock %d, %d events pending)"
         clock queue_depth);
    raise (Event_limit_exceeded { clock; queue_depth; last_node })
  end
  else begin
    Obs.Metrics.incr m_settles;
    Obs.Metrics.add m_settle_iterations drained;
    (match telemetry_of t with
     | None -> ()
     | Some tel -> Telemetry.note_settle tel);
    Obs.Histogram.observe h_settle_ns
      (Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0));
    Obs.Histogram.observe_int h_settle_events drained
  end

let graph_of = function I t -> t.graph | C t -> t.c_graph

let require_sensor t id =
  match Graph.kind (graph_of t) id with
  | Eblock.Kind.Sensor -> ()
  | Eblock.Kind.Output | Eblock.Kind.Compute | Eblock.Kind.Comm
  | Eblock.Kind.Programmable ->
    invalid_arg (Printf.sprintf "Engine.set_sensor: node %d is not a sensor" id)

let set_sensor_at t ~time id b =
  require_sensor t id;
  if time < now t then invalid_arg "Engine.set_sensor_at: time in the past";
  match t with
  | I t -> ischedule t ~time (Sensor_change (id, b))
  | C t ->
    cschedule t ~time ~tag:tag_sensor ~a:(cindex t id) ~b:0 ~c:0
      ~vk:(Bool.to_int b) ~vn:0

let set_sensor t id b = set_sensor_at t ~time:(now t) id b

let output_value t id =
  match Graph.kind (graph_of t) id with
  | Eblock.Kind.Output ->
    (match t with
     | I t -> (istate t id).input_latch.(0)
     | C t ->
       let ni = cindex t id in
       Behavior.Compile.value_of_code t.cin_k.(ni).(0) t.cin_n.(ni).(0))
  | Eblock.Kind.Sensor | Eblock.Kind.Compute | Eblock.Kind.Comm
  | Eblock.Kind.Programmable ->
    invalid_arg
      (Printf.sprintf "Engine.output_value: node %d is not a primary output" id)

let output_values t =
  List.map (fun id -> (id, output_value t id))
    (Graph.primary_outputs (graph_of t))

let port_value t id port =
  match t with
  | I t ->
    let latch = (istate t id).output_latch in
    if port < 0 || port >= Array.length latch then
      invalid_arg "Engine.port_value: port out of range";
    latch.(port)
  | C t ->
    let ni = cindex t id in
    let k = t.cout_k.(ni) in
    if port < 0 || port >= Array.length k then
      invalid_arg "Engine.port_value: port out of range";
    Behavior.Compile.value_of_code k.(port) t.cout_n.(ni).(port)

let trace = function
  | I t -> Tbuf.to_list t.i_trace
  | C t -> Tbuf.to_list t.c_trace

let activation_count = function
  | I t -> t.i_activations
  | C t -> t.c_activations

let packet_count = function I t -> t.i_packets | C t -> t.c_packets

let fault_stats = function
  | I t -> Option.map Fault.stats t.i_faults
  | C t -> Option.map Fault.stats t.c_faults
