module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let m_events =
  Obs.Metrics.counter "sim.events_processed" ~doc:"queue events dispatched"
let m_activations =
  Obs.Metrics.counter "sim.activations" ~doc:"block behaviour evaluations"
let m_packets =
  Obs.Metrics.counter "sim.packets_sent"
    ~doc:"packets sent on output change (the power proxy)"
let m_deliveries =
  Obs.Metrics.counter "sim.packets_delivered" ~doc:"Deliver events consumed"
let m_settles =
  Obs.Metrics.counter "sim.settles" ~doc:"settle calls completed"
let m_settle_iterations =
  Obs.Metrics.counter "sim.settle_iterations"
    ~doc:"events drained across all settles"
let h_settle_ns =
  Obs.Metrics.histogram "sim.settle_ns" ~doc:"settle wall time"
let h_settle_events =
  Obs.Metrics.histogram "sim.settle_events" ~doc:"events drained per settle"

type value = Behavior.Ast.value

type runtime = {
  mutable env : Behavior.Eval.env;
      (* replaced wholesale on a spurious reset (fault injection) *)
  input_latch : value array;
  output_latch : value array;
  timer_gen : (int, int) Hashtbl.t;
      (* per timer index: generation of the latest arming; expiry events
         from superseded generations are ignored *)
}

type event =
  | Deliver of Graph.edge * value
  | Timer_expiry of Node_id.t * int * int  (* node, timer index, generation *)
  | Sensor_change of Node_id.t * bool
  | Fault_reset of Node_id.t  (* spurious reset from the fault plan *)

module Queue_key = struct
  type t = int * int * int  (* time, priority, unique counter *)

  let compare = compare
end

module Event_queue = Map.Make (Queue_key)

type tie_order =
  | Fifo
  | Lifo
  | Shuffled of int

type t = {
  graph : Graph.t;
  states : runtime Node_id.Map.t;
  tie_order : tie_order;
  tie_rng : Prng.t option;
  edge_delay : Graph.edge -> int;
  faults : Fault.runtime option;
      (* None when no plan was armed: the zero-cost path *)
  telemetry : Telemetry.t option;
      (* same pattern: None means every hook below is one branch *)
  mutable queue : event Event_queue.t;
  mutable seq : int;
  mutable clock : int;
  mutable activations : int;
  mutable packets : int;
  mutable last_active : Node_id.t option;
  mutable output_trace : (int * Node_id.t * value) list;  (* newest first *)
}

exception
  Event_limit_exceeded of {
    clock : int;
    queue_depth : int;
    last_node : Node_id.t option;
  }

let () =
  Printexc.register_printer (function
    | Event_limit_exceeded { clock; queue_depth; last_node } ->
      Some
        (Printf.sprintf
           "Engine.Event_limit_exceeded (clock %d, %d events pending, last \
            active node %s): self-retriggering network?"
           clock queue_depth
           (match last_node with Some id -> string_of_int id | None -> "-"))
    | _ -> None)

let wire_delay = 1

let runtime_of_node g id =
  let d = Graph.descriptor g id in
  let open Eblock.Descriptor in
  let input_latch =
    Array.init d.n_inputs (fun port ->
        match Graph.driver g id port with
        | Some src ->
          let src_desc = Graph.descriptor g src.Graph.node in
          src_desc.output_init.(src.Graph.port)
        | None -> Behavior.Ast.Bool false)
  in
  {
    env = Behavior.Eval.init d.behavior;
    input_latch;
    output_latch = Array.copy d.output_init;
    timer_gen = Hashtbl.create 2;
  }

let now t = t.clock

let state t id =
  match Node_id.Map.find_opt id t.states with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Engine: unknown node %d" id)

let event_node = function
  | Deliver (e, _) -> e.Graph.dst.Graph.node
  | Timer_expiry (id, _, _) | Sensor_change (id, _) | Fault_reset id -> id

let schedule t ~time event =
  (* The priority orders same-time events: scheduling order for Fifo,
     reversed for Lifo, seeded-random for Shuffled.  Perturbing it changes
     exactly the packet races whose outcome the network does not actually
     define (see {!tie_order}). *)
  (match t.telemetry with
   | None -> ()
   | Some tel -> Telemetry.note_scheduled tel (event_node event));
  t.seq <- t.seq + 1;
  let priority =
    match t.tie_order, t.tie_rng with
    | Fifo, _ | (Lifo | Shuffled _), None -> t.seq
    | Lifo, _ -> -t.seq
    | Shuffled _, Some rng -> Prng.int rng 1_000_000_000
  in
  t.queue <- Event_queue.add (time, priority, t.seq) event t.queue

let current_gen rt timer =
  match Hashtbl.find_opt rt.timer_gen timer with
  | Some gen -> gen
  | None -> 0

let bump_gen rt timer =
  let gen = current_gen rt timer + 1 in
  Hashtbl.replace rt.timer_gen timer gen;
  gen

let create ?(tie_order = Fifo) ?(edge_delay = fun _ -> wire_delay) ?faults
    ?telemetry g =
  let order = Graph.topological_order g in
  let states =
    List.fold_left
      (fun acc id -> Node_id.Map.add id (runtime_of_node g id) acc)
      Node_id.Map.empty (Graph.node_ids g)
  in
  let tie_rng =
    match tie_order with
    | Shuffled seed -> Some (Prng.create seed)
    | Fifo | Lifo -> None
  in
  let t = {
    graph = g;
    states;
    tie_order;
    tie_rng;
    edge_delay;
    faults = Option.map Fault.start faults;
    telemetry;
    queue = Event_queue.empty;
    seq = 0;
    clock = 0;
    activations = 0;
    packets = 0;
    last_active = None;
    output_trace = [];
  }
  in
  (* Power-on sweep: each block evaluates once so that every output is
     consistent with the power-on inputs (physical blocks announce their
     state at power-on).  Performed latch-to-latch in topological order,
     with no packets and no clock advance; timer requests (e.g. a delay
     block whose power-on input differs from its reset state) become
     ordinary timer events counted from time 0. *)
  let init_node id =
    let d = Graph.descriptor g id in
    match d.Eblock.Descriptor.kind with
    | Eblock.Kind.Sensor | Eblock.Kind.Output -> ()
    | Eblock.Kind.Compute | Eblock.Kind.Comm | Eblock.Kind.Programmable ->
      let rt = Node_id.Map.find id states in
      let act =
        { Behavior.Eval.inputs = Array.copy rt.input_latch; fired = None }
      in
      let outcome =
        Behavior.Eval.activate d.Eblock.Descriptor.behavior
          ~n_outputs:d.Eblock.Descriptor.n_outputs rt.env act
      in
      Array.iteri
        (fun port slot ->
          match slot with
          | Some v ->
            rt.output_latch.(port) <- v;
            List.iter
              (fun e ->
                if e.Graph.src.Graph.port = port then begin
                  let dst_rt = Node_id.Map.find e.Graph.dst.Graph.node states in
                  dst_rt.input_latch.(e.Graph.dst.Graph.port) <- v
                end)
              (Graph.fanout g id)
          | None -> ())
        outcome.Behavior.Eval.outputs;
      List.iter
        (fun (timer, action) ->
          match action with
          | Behavior.Eval.Timer_set delay ->
            let gen = bump_gen rt timer in
            schedule t ~time:delay (Timer_expiry (id, timer, gen))
          | Behavior.Eval.Timer_cancelled -> ignore (bump_gen rt timer))
        outcome.Behavior.Eval.timers
  in
  List.iter init_node order;
  (* Spurious resets are plan-scheduled events like any other; an empty
     plan schedules none and the queue stays untouched. *)
  Option.iter
    (fun plan ->
      List.iter
        (fun (id, time) ->
          if Graph.mem g id then schedule t ~time (Fault_reset id))
        (Fault.resets plan))
    faults;
  t


(* Present [v] on output [port] of [id]; on change, send a packet down
   every connection of that port. *)
let present t ~time id port v =
  let rt = state t id in
  (* A stuck-at output fault overrides the value before change
     detection: downstream never sees anything else on that port. *)
  let v =
    match t.faults with
    | None -> v
    | Some frt -> Fault.stuck_value frt ~time id ~port v
  in
  if not (Behavior.Ast.equal_value rt.output_latch.(port) v) then begin
    rt.output_latch.(port) <- v;
    List.iter
      (fun e ->
        if e.Graph.src.Graph.port = port then begin
          t.packets <- t.packets + 1;
          Obs.Metrics.incr m_packets;
          let deliveries, strike =
            match t.faults with
            | None -> ([ (0, v) ], Fault.no_strike)
            | Some frt -> Fault.on_send frt ~time e v
          in
          (match t.telemetry with
           | None -> ()
           | Some tel ->
             let base = max 1 (t.edge_delay e) in
             Telemetry.note_send tel e ~strike
               ~latencies:(List.map (fun (extra, _) -> base + extra)
                             deliveries));
          List.iter
            (fun (extra, v') ->
              schedule t
                ~time:(time + max 1 (t.edge_delay e) + extra)
                (Deliver (e, v')))
            deliveries
        end)
      (Graph.fanout t.graph id)
  end

let activate t ~time id ~fired =
  let d = Graph.descriptor t.graph id in
  let rt = state t id in
  t.activations <- t.activations + 1;
  Obs.Metrics.incr m_activations;
  (match t.telemetry with
   | None -> ()
   | Some tel -> Telemetry.note_activation tel id);
  let act =
    { Behavior.Eval.inputs = Array.copy rt.input_latch; fired }
  in
  let outcome =
    Behavior.Eval.activate d.Eblock.Descriptor.behavior
      ~n_outputs:d.Eblock.Descriptor.n_outputs rt.env act
  in
  Array.iteri
    (fun port slot ->
      match slot with
      | Some v -> present t ~time id port v
      | None -> ())
    outcome.Behavior.Eval.outputs;
  List.iter
    (fun (timer, action) ->
      match action with
      | Behavior.Eval.Timer_set delay ->
        let gen = bump_gen rt timer in
        schedule t ~time:(time + delay) (Timer_expiry (id, timer, gen))
      | Behavior.Eval.Timer_cancelled -> ignore (bump_gen rt timer))
    outcome.Behavior.Eval.timers

let record_output_change t ~time id v =
  t.output_trace <- (time, id, v) :: t.output_trace

let process t ~time event =
  t.clock <- max t.clock time;
  t.last_active <- Some (event_node event);
  Obs.Metrics.incr m_events;
  (match t.telemetry with
   | None -> ()
   | Some tel ->
     let kind =
       match event with
       | Deliver (e, _) -> Telemetry.Delivered e
       | Timer_expiry _ -> Telemetry.Timer_fired
       | Sensor_change _ -> Telemetry.Sensor_set
       | Fault_reset _ -> Telemetry.Reset
     in
     Telemetry.note_event tel ~time (event_node event) kind);
  match event with
  | Deliver (e, v) ->
    Obs.Metrics.incr m_deliveries;
    let dst = e.Graph.dst.Graph.node in
    let rt = state t dst in
    let port = e.Graph.dst.Graph.port in
    let changed = not (Behavior.Ast.equal_value rt.input_latch.(port) v) in
    rt.input_latch.(port) <- v;
    (match Graph.kind t.graph dst with
     | Eblock.Kind.Output -> if changed then record_output_change t ~time dst v
     | Eblock.Kind.Sensor | Eblock.Kind.Compute | Eblock.Kind.Comm
     | Eblock.Kind.Programmable -> activate t ~time dst ~fired:None)
  | Timer_expiry (id, timer, gen) ->
    let rt = state t id in
    if current_gen rt timer = gen then activate t ~time id ~fired:(Some timer)
  | Sensor_change (id, b) -> present t ~time id 0 (Behavior.Ast.Bool b)
  | Fault_reset id ->
    (* Brownout: the block loses its volatile state — variable store and
       pending timers — and its outputs snap back to power-on values,
       announced downstream like a power-on.  Latched inputs survive (the
       input registers hold), so the block recomputes on its next
       activation; until then its outputs may disagree with its inputs,
       which is exactly the degradation {!Degrade} classifies. *)
    Option.iter Fault.note_reset t.faults;
    let d = Graph.descriptor t.graph id in
    let rt = state t id in
    rt.env <- Behavior.Eval.init d.Eblock.Descriptor.behavior;
    let armed = Hashtbl.fold (fun timer _ acc -> timer :: acc) rt.timer_gen [] in
    List.iter (fun timer -> ignore (bump_gen rt timer)) armed;
    Array.iteri (fun port v -> present t ~time id port v)
      d.Eblock.Descriptor.output_init

let step t =
  match Event_queue.min_binding_opt t.queue with
  | None -> false
  | Some (((time, _, _) as key), event) ->
    t.queue <- Event_queue.remove key t.queue;
    process t ~time event;
    true

let run_until t horizon =
  let rec loop () =
    match Event_queue.min_binding_opt t.queue with
    | Some (((time, _, _) as key), event) when time <= horizon ->
      t.queue <- Event_queue.remove key t.queue;
      process t ~time event;
      loop ()
    | Some _ | None -> t.clock <- max t.clock horizon
  in
  loop ()

let settle ?(limit = 100_000) t =
  Obs.Trace.with_span "sim.settle" @@ fun () ->
  let t0 = Obs.Clock.now_ns () in
  let rec loop remaining =
    if remaining = 0 then begin
      let queue_depth = Event_queue.cardinal t.queue in
      if Obs.Journal.enabled () then
        Obs.Journal.emit
          (Obs.Journal.Event_limit
             { clock = t.clock; queue_depth; last_node = t.last_active });
      Obs.Journal.note_failure
        (Printf.sprintf
           "simulation event limit exceeded (clock %d, %d events pending)"
           t.clock queue_depth);
      raise
        (Event_limit_exceeded
           {
             clock = t.clock;
             queue_depth;
             last_node = t.last_active;
           })
    end
    else if step t then loop (remaining - 1)
    else begin
      Obs.Metrics.incr m_settles;
      Obs.Metrics.add m_settle_iterations (limit - remaining);
      (match t.telemetry with
       | None -> ()
       | Some tel -> Telemetry.note_settle tel);
      Obs.Histogram.observe h_settle_ns
        (Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0));
      Obs.Histogram.observe_int h_settle_events (limit - remaining)
    end
  in
  loop limit

let require_sensor t id =
  match Graph.kind t.graph id with
  | Eblock.Kind.Sensor -> ()
  | Eblock.Kind.Output | Eblock.Kind.Compute | Eblock.Kind.Comm
  | Eblock.Kind.Programmable ->
    invalid_arg (Printf.sprintf "Engine.set_sensor: node %d is not a sensor" id)

let set_sensor_at t ~time id b =
  require_sensor t id;
  if time < t.clock then invalid_arg "Engine.set_sensor_at: time in the past";
  schedule t ~time (Sensor_change (id, b))

let set_sensor t id b = set_sensor_at t ~time:t.clock id b

let output_value t id =
  match Graph.kind t.graph id with
  | Eblock.Kind.Output -> (state t id).input_latch.(0)
  | Eblock.Kind.Sensor | Eblock.Kind.Compute | Eblock.Kind.Comm
  | Eblock.Kind.Programmable ->
    invalid_arg
      (Printf.sprintf "Engine.output_value: node %d is not a primary output" id)

let output_values t =
  List.map (fun id -> (id, output_value t id)) (Graph.primary_outputs t.graph)

let port_value t id port =
  let rt = state t id in
  if port < 0 || port >= Array.length rt.output_latch then
    invalid_arg "Engine.port_value: port out of range";
  rt.output_latch.(port)

let trace t = List.rev t.output_trace

let activation_count t = t.activations

let packet_count t = t.packets

let fault_stats t = Option.map Fault.stats t.faults
