(** Discrete-event simulator for eBlock networks.

    Models the eBlock execution platform of §3.1: blocks communicate with
    packets, "globally asynchronous", change-driven — a block sends a
    packet on an output connection only when the value presented on that
    output changes.  Time is an abstract integer tick; the paper notes the
    blocks "deal with human-scale events rather than fast timing", so only
    the ordering matters, not absolute durations.

    A simulation owns mutable per-block state (variable store, latched
    input and output values, armed timers) plus a time-ordered event
    queue.  Packets take {!wire_delay} ticks to traverse an edge. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type t

type tie_order =
  | Fifo  (** same-time events run in scheduling order (the default) *)
  | Lifo  (** same-time events run in reverse scheduling order *)
  | Shuffled of int  (** same-time events run in seeded-random order *)

type kernel =
  | Interpreted
      (** the oracle: behaviours interpreted through {!Behavior.Eval},
          events ordered by a functional map *)
  | Compiled
      (** the default: behaviours lowered once to closures
          ({!Behavior.Compile}), dense node/edge addressing, and a
          binary-heap event calendar over a flat preallocated store.
          Byte-identical to [Interpreted] — same traces, counters,
          fault strikes, PRNG draw order, telemetry — only faster
          (test/test_kernel.ml holds the two against each other). *)

exception
  Event_limit_exceeded of {
    clock : int;  (** simulated time when the limit was hit *)
    queue_depth : int;  (** events still pending *)
    last_node : Node_id.t option;  (** node the last event targeted *)
  }
(** Raised by {!settle} when the event limit is exhausted — almost always
    a self-retriggering network (an oscillator, or a fault plan that
    keeps the network live).  Carries enough context to classify the
    livelock instead of dying: see {!Degrade}. *)

val wire_delay : int
(** Ticks a packet needs to traverse one connection (1). *)

val create :
  ?kernel:kernel -> ?tie_order:tie_order -> ?edge_delay:(Graph.edge -> int) ->
  ?faults:Fault.plan -> ?telemetry:Telemetry.t -> Graph.t -> t
(** Initialise a simulation.  Latches start from the descriptors' power-on
    values, then every block evaluates once in topological order (the
    power-on sweep: physical blocks announce their state at power-on), so
    all outputs are consistent with the power-on inputs before any event
    runs.  The graph must be acyclic; raises [Graph.Structural_error]
    otherwise.

    [tie_order] selects how simultaneous events are ordered, and
    [edge_delay] assigns each connection its packet latency (default
    {!wire_delay}; values below 1 are clamped to 1).  A network whose
    settled outputs depend on either contains a {e race} or a
    {e path-length hazard} (e.g. a latch whose trigger outruns its reset);
    physical eBlocks resolve those nondeterministically, so such
    sensitivity is a property of the design, not of synthesis — see
    {!Equiv.timing_sensitive}.

    [faults] arms a {!Fault.plan}: packets may then be dropped,
    duplicated, corrupted, jittered, or lost to dead links, and blocks
    may spuriously reset or have outputs stuck, all driven by the plan's
    own seeded PRNG so a run replays exactly.  Without [faults] (or with
    a plan that is {!Fault.is_trivial}) the engine behaves — traces,
    packet counts, event order — exactly as if the fault layer did not
    exist.

    [telemetry] arms a {!Telemetry.t} collector recording per-node and
    per-link runtime statistics (deliveries, fault strikes, queue
    high-water marks, delivery latencies).  Same contract as [faults]:
    a collector never changes the simulation's behaviour, and without
    one every hook is a single branch on an immutable [None] — the
    zero-cost-when-off path.

    [kernel] selects the execution engine; the default is [Compiled],
    overridable process-wide with [PAREDOWN_SIM_KERNEL=interpreted|compiled]
    (an unknown value raises [Invalid_argument]).  Every observable —
    trace, counters, fault stats, telemetry, error messages — is
    independent of the choice. *)

val kernel : t -> kernel
(** Which kernel this engine runs on. *)

val now : t -> int

val set_sensor : t -> Node_id.t -> bool -> unit
(** Schedule the given sensor to present a value at the current time.
    Raises [Invalid_argument] if the node is not a sensor. *)

val set_sensor_at : t -> time:int -> Node_id.t -> bool -> unit
(** Same, at an absolute future time. *)

val step : t -> bool
(** Process the earliest pending event; [false] if none was pending. *)

val run_until : t -> int -> unit
(** Process events up to and including the given time, then set the clock
    to it. *)

val settle : ?limit:int -> t -> unit
(** Run until no events remain ([limit], default 100_000, guards against
    a runaway self-retriggering network; raises {!Event_limit_exceeded}
    when hit). *)

val output_value : t -> Node_id.t -> Behavior.Ast.value
(** Value currently presented to a primary-output block (its input
    latch). *)

val output_values : t -> (Node_id.t * Behavior.Ast.value) list
(** All primary outputs, sorted by id. *)

val port_value : t -> Node_id.t -> int -> Behavior.Ast.value
(** Value latched on an arbitrary node's output port; for inspection. *)

val trace : t -> (int * Node_id.t * Behavior.Ast.value) list
(** Every change observed at a primary output: (time, output node, new
    value), in chronological order. *)

val activation_count : t -> int
(** Total block activations processed so far (a cheap effort metric used
    by tests and benches). *)

val packet_count : t -> int
(** Total packets sent over connections so far.  Each packet is a serial
    transmission on a physical wire or radio, so this is the network's
    communication-energy proxy — the quantity the paper's synthesis
    reduces alongside block count ("reducing network size and hence
    network cost and power").  Counts send attempts: a packet the fault
    layer drops was still transmitted by its sender. *)

val fault_stats : t -> Fault.stats option
(** Injection counts so far; [None] when no fault plan was armed. *)
