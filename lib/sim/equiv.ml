module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type mismatch = {
  at_time : int;
  output : Node_id.t;
  reference : Behavior.Ast.value;
  candidate : Behavior.Ast.value;
}

let pp_mismatch ppf { at_time; output; reference; candidate } =
  Format.fprintf ppf
    "at time %d, output %d: reference shows %a but candidate shows %a"
    at_time output Behavior.Ast.pp_value reference Behavior.Ast.pp_value
    candidate

let same_ids a b =
  List.equal Node_id.equal a b

(* A deterministic pseudo-random latency in 1..4 per connection.  Keyed
   on the edge's endpoints, so the "same" perturbation applies to any
   network — including a synthesised rewrite whose edge set differs. *)
let jittered_delay salt (e : Graph.edge) =
  1 + (Hashtbl.hash (salt, e.Graph.src, e.Graph.dst) land 3)

type perturbation = {
  p_label : string;
  tie_order : Engine.tie_order;
  delay_salt : int option;
}

let baseline = { p_label = "fifo"; tie_order = Engine.Fifo; delay_salt = None }

let perturbations n =
  let pool =
    [ { p_label = "lifo"; tie_order = Engine.Lifo; delay_salt = None };
      { p_label = "shuffle1"; tie_order = Engine.Shuffled 1; delay_salt = None };
      { p_label = "jitter1"; tie_order = Engine.Fifo; delay_salt = Some 1 };
      { p_label = "shuffle2"; tie_order = Engine.Shuffled 2; delay_salt = None };
      { p_label = "jitter2"; tie_order = Engine.Fifo; delay_salt = Some 2 };
      { p_label = "shuffle3"; tie_order = Engine.Shuffled 3; delay_salt = None };
      { p_label = "jitter3"; tie_order = Engine.Fifo; delay_salt = Some 3 };
      { p_label = "lifo-jitter4"; tie_order = Engine.Lifo; delay_salt = Some 4 };
    ]
  in
  List.filteri (fun i _ -> i < n) pool

let observe ?(perturbation = baseline) g script =
  let edge_delay =
    Option.map (fun salt -> jittered_delay salt) perturbation.delay_salt
  in
  let engine =
    Engine.create ~tie_order:perturbation.tie_order ?edge_delay g
  in
  Stimulus.settled_outputs engine script

let check ?perturbation ~reference ~candidate script =
  if not (same_ids (Graph.sensors reference) (Graph.sensors candidate)) then
    invalid_arg "Equiv.check: sensor sets differ";
  if not
       (same_ids
          (Graph.primary_outputs reference)
          (Graph.primary_outputs candidate))
  then invalid_arg "Equiv.check: primary output sets differ";
  let ref_obs = observe ?perturbation reference script in
  let cand_obs = observe ?perturbation candidate script in
  let compare_point acc (time, ref_outputs) (_, cand_outputs) =
    match acc with
    | Error _ -> acc
    | Ok () ->
      let rec compare_outputs ref_outputs cand_outputs =
        match ref_outputs, cand_outputs with
        | [], [] -> Ok ()
        | (id, rv) :: ref_rest, (_, cv) :: cand_rest ->
          if Behavior.Ast.equal_value rv cv
          then compare_outputs ref_rest cand_rest
          else
            Error { at_time = time; output = id; reference = rv;
                    candidate = cv }
        | [], _ :: _ | _ :: _, [] ->
          invalid_arg "Equiv.check: output arity mismatch"
      in
      compare_outputs ref_outputs cand_outputs
  in
  List.fold_left2 compare_point (Ok ()) ref_obs cand_obs

let random_script g ~seed ~steps =
  let rng = Prng.create seed in
  Stimulus.random ~rng ~sensors:(Graph.sensors g) ~steps ~spacing:20

let check_random ~reference ~candidate ~seed ~steps =
  check ~reference ~candidate (random_script reference ~seed ~steps)

let race_sensitive g script =
  let observe tie_order =
    Stimulus.settled_outputs (Engine.create ~tie_order g) script
  in
  let reference = observe Engine.Fifo in
  List.exists
    (fun order -> observe order <> reference)
    [ Engine.Lifo; Engine.Shuffled 1; Engine.Shuffled 2; Engine.Shuffled 3 ]

let race_sensitive_random g ~seed ~steps =
  race_sensitive g (random_script g ~seed ~steps)

let sensitive_under g perturbs script =
  let reference = observe g script in
  List.exists (fun p -> observe ~perturbation:p g script <> reference) perturbs

let timing_sensitive g script =
  let observe ?tie_order ?edge_delay () =
    Stimulus.settled_outputs (Engine.create ?tie_order ?edge_delay g) script
  in
  let reference = observe () in
  (* Slowing any single connection enough to outlast every alternative
     path deterministically flips each two-path hazard ordering at least
     once; the jittered assignments additionally sample combined
     perturbations. *)
  let slow = Graph.node_count g + 2 in
  let slow_one target (e : Graph.edge) = if e = target then slow else 1 in
  List.exists
    (fun target -> observe ~edge_delay:(slow_one target) () <> reference)
    (Graph.edges g)
  || List.exists
       (fun salt -> observe ~edge_delay:(jittered_delay salt) () <> reference)
       [ 1; 2; 3; 4 ]
  || race_sensitive g script

let timing_sensitive_random g ~seed ~steps =
  timing_sensitive g (random_script g ~seed ~steps)
