(** Observational equivalence of two networks by co-simulation.

    Synthesis must not change what a user observes: after every sensor
    change, once both networks are quiescent, every primary output must
    show the same value.  (Transient timing legitimately differs — a
    programmable block collapses several packet hops into one — so only
    settled values are compared, matching the paper's "behaviourally
    correct ... obeys general high-level timing" simulation contract.)

    Both networks must expose the same sensor and primary-output node ids,
    which is guaranteed by the synthesis rewriter (it only touches inner
    nodes). *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type mismatch = {
  at_time : int;
  output : Node_id.t;
  reference : Behavior.Ast.value;
  candidate : Behavior.Ast.value;
}

val pp_mismatch : Format.formatter -> mismatch -> unit

type perturbation = {
  p_label : string;  (** short name for reports, e.g. ["lifo"], ["jitter2"] *)
  tie_order : Engine.tie_order;
  delay_salt : int option;
      (** [None] = unit wire delays; [Some salt] = a deterministic
          pseudo-random per-connection latency in 1..4 keyed on the edge
          endpoints and [salt], so the "same" jitter applies meaningfully
          to two networks with different edge sets *)
}
(** One way of running an engine that a correct, timing-insensitive
    network must not observably depend on: a same-time event ordering
    plus an optional per-connection latency assignment.  The verifier's
    differential co-simulation ({!Codegen.Cosim}) replays every script
    under a family of these. *)

val baseline : perturbation
(** Fifo ordering, unit delays — the default engine configuration. *)

val perturbations : int -> perturbation list
(** The first [n] entries of a fixed pool of useful perturbations
    (alternating tie orders and jitter salts, capped at the pool size of
    8).  Deterministic: equal [n] gives equal lists. *)

val observe :
  ?perturbation:perturbation ->
  Graph.t ->
  Stimulus.script ->
  (int * (Node_id.t * Behavior.Ast.value) list) list
(** The settled primary-output observations of one network under one
    script ({!Stimulus.settled_outputs}) with the perturbation applied. *)

val sensitive_under :
  Graph.t -> perturbation list -> Stimulus.script -> bool
(** True when any of the given perturbations changes the network's
    settled observations relative to {!baseline} — the precondition
    check before differential comparison under those perturbations. *)

val check :
  ?perturbation:perturbation ->
  reference:Graph.t ->
  candidate:Graph.t ->
  Stimulus.script ->
  (unit, mismatch) result
(** Run the script against both networks (under the same optional
    perturbation), comparing settled outputs after each step.  Raises
    [Invalid_argument] if the two networks do not have identical sensor
    and primary-output id sets. *)

val check_random :
  reference:Graph.t ->
  candidate:Graph.t ->
  seed:int ->
  steps:int ->
  (unit, mismatch) result
(** {!check} with a random script over the reference's sensors. *)

val race_sensitive : Graph.t -> Stimulus.script -> bool
(** True when the network's settled outputs under the script depend on how
    simultaneous packets are ordered (simulated with {!Engine.Fifo} and
    compared against {!Engine.Lifo} and several {!Engine.Shuffled}
    orders).  Such designs — e.g. a
    latch reached by two same-length paths from one sensor — behave
    nondeterministically on physical eBlocks as well; equivalence of a
    synthesis result is only meaningful for race-free designs. *)

val race_sensitive_random : Graph.t -> seed:int -> steps:int -> bool
(** {!race_sensitive} with a random script (same construction as
    {!check_random}). *)

val timing_sensitive : Graph.t -> Stimulus.script -> bool
(** {!race_sensitive}, plus sensitivity to per-connection packet latency:
    the script is replayed under several pseudo-random edge-delay
    assignments and the settled outputs compared.  This additionally
    catches {e path-length hazards} — e.g. a latch tripped by a transient
    ordering of a signal and its own reset — whose behaviour the merged
    programmable block (which evaluates members in level order with no
    transport delay) legitimately does not reproduce.  Synthesis is
    behaviour-preserving exactly for timing-insensitive designs; all
    library designs are timing-insensitive (asserted in the test
    suite). *)

val timing_sensitive_random : Graph.t -> seed:int -> steps:int -> bool
