module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

(* Global counters complementing the per-run {!stats}: visible in
   --metrics output alongside the other sim.* work counters. *)
let m_drops = Obs.Metrics.counter "sim.fault.drops" ~doc:"packets dropped"
let m_duplicates =
  Obs.Metrics.counter "sim.fault.duplicates" ~doc:"packets duplicated"
let m_corruptions =
  Obs.Metrics.counter "sim.fault.corruptions" ~doc:"packet values corrupted"
let m_jittered =
  Obs.Metrics.counter "sim.fault.jittered" ~doc:"deliveries jitter-delayed"
let m_dead =
  Obs.Metrics.counter "sim.fault.dead_link_losses"
    ~doc:"packets lost on a dead link"
let m_resets =
  Obs.Metrics.counter "sim.fault.resets" ~doc:"spurious block resets"
let m_stuck =
  Obs.Metrics.counter "sim.fault.stuck_overrides"
    ~doc:"output presentations overridden by stuck-at"

type edge_fault = {
  drop : float;
  duplicate : float;
  corrupt : float;
  jitter : int;
  dies_at : int option;
}

let no_edge_fault =
  { drop = 0.; duplicate = 0.; corrupt = 0.; jitter = 0; dies_at = None }

type stuck = {
  port : int;
  value : Behavior.Ast.value;
  from : int;
}

type node_fault = {
  reset_at : int list;
  stuck : stuck list;
}

let no_node_fault = { reset_at = []; stuck = [] }

type plan = {
  seed : int;
  default_edge : edge_fault;
  edge_overrides : (Graph.edge * edge_fault) list;
  node_faults : (Node_id.t * node_fault) list;
}

let none =
  {
    seed = 0;
    default_edge = no_edge_fault;
    edge_overrides = [];
    node_faults = [];
  }

let edge_fault_trivial f =
  f.drop <= 0. && f.duplicate <= 0. && f.corrupt <= 0. && f.jitter <= 0
  && f.dies_at = None

let node_fault_trivial f = f.reset_at = [] && f.stuck = []

let is_trivial p =
  edge_fault_trivial p.default_edge
  && List.for_all (fun (_, f) -> edge_fault_trivial f) p.edge_overrides
  && List.for_all (fun (_, f) -> node_fault_trivial f) p.node_faults

let drop_all ?(seed = 1) drop =
  { none with seed; default_edge = { no_edge_fault with drop } }

let degrade_all ?(seed = 1) ?(drop = 0.) ?(duplicate = 0.) ?(corrupt = 0.)
    ?(jitter = 0) () =
  {
    none with
    seed;
    default_edge = { drop; duplicate; corrupt; jitter; dies_at = None };
  }

type stats = {
  drops : int;
  duplicates : int;
  corruptions : int;
  jittered : int;
  dead_link_losses : int;
  resets : int;
  stuck_overrides : int;
}

let zero_stats =
  {
    drops = 0;
    duplicates = 0;
    corruptions = 0;
    jittered = 0;
    dead_link_losses = 0;
    resets = 0;
    stuck_overrides = 0;
  }

let zero = zero_stats

let merge a b =
  {
    drops = a.drops + b.drops;
    duplicates = a.duplicates + b.duplicates;
    corruptions = a.corruptions + b.corruptions;
    jittered = a.jittered + b.jittered;
    dead_link_losses = a.dead_link_losses + b.dead_link_losses;
    resets = a.resets + b.resets;
    stuck_overrides = a.stuck_overrides + b.stuck_overrides;
  }

let total s =
  s.drops + s.duplicates + s.corruptions + s.jittered + s.dead_link_losses
  + s.resets + s.stuck_overrides

let pp_stats ppf s =
  Format.fprintf ppf
    "drops %d, duplicates %d, corruptions %d, jittered %d, dead-link %d, \
     resets %d, stuck %d"
    s.drops s.duplicates s.corruptions s.jittered s.dead_link_losses s.resets
    s.stuck_overrides

type runtime = {
  rng : Prng.t;
  default_edge : edge_fault;
  overrides : (Graph.edge, edge_fault) Hashtbl.t;
  stuck_tbl : (Node_id.t, stuck list) Hashtbl.t;
  mutable stats : stats;
}

let start p =
  let overrides = Hashtbl.create (List.length p.edge_overrides) in
  List.iter (fun (e, f) -> Hashtbl.replace overrides e f) p.edge_overrides;
  let stuck_tbl = Hashtbl.create (List.length p.node_faults) in
  List.iter
    (fun (id, f) -> if f.stuck <> [] then Hashtbl.replace stuck_tbl id f.stuck)
    p.node_faults;
  {
    rng = Prng.create p.seed;
    default_edge = p.default_edge;
    overrides;
    stuck_tbl;
    stats = zero_stats;
  }

let resets p =
  List.concat_map
    (fun (id, f) -> List.map (fun t -> (id, t)) f.reset_at)
    p.node_faults

let fault_for rt e =
  match Hashtbl.find_opt rt.overrides e with
  | Some f -> f
  | None -> rt.default_edge

(* Each decision draws from the stream only when its probability is
   nonzero, so a faultless edge costs no draws and the empty plan
   perturbs nothing. *)
let strikes rt p = p > 0. && Prng.float rt.rng 1.0 < p

let corrupt_value rt = function
  | Behavior.Ast.Bool b -> Behavior.Ast.Bool (not b)
  | Behavior.Ast.Int n -> Behavior.Ast.Int (n lxor (1 lsl Prng.int rt.rng 8))

let jitter_draw rt f =
  if f.jitter <= 0 then 0
  else begin
    let extra = Prng.int rt.rng (f.jitter + 1) in
    if extra > 0 then begin
      rt.stats <- { rt.stats with jittered = rt.stats.jittered + 1 };
      Obs.Metrics.incr m_jittered
    end;
    extra
  end

type strike = {
  s_dropped : bool;
  s_duplicated : bool;
  s_corrupted : bool;
  s_jittered : int;
  s_dead : bool;
}

let no_strike =
  {
    s_dropped = false;
    s_duplicated = false;
    s_corrupted = false;
    s_jittered = 0;
    s_dead = false;
  }

let strike_total s =
  Bool.to_int s.s_dropped + Bool.to_int s.s_duplicated
  + Bool.to_int s.s_corrupted + s.s_jittered + Bool.to_int s.s_dead

let on_send rt ~time e v =
  let f = fault_for rt e in
  let dead = match f.dies_at with Some t -> time >= t | None -> false in
  if dead then begin
    rt.stats <-
      { rt.stats with dead_link_losses = rt.stats.dead_link_losses + 1 };
    Obs.Metrics.incr m_dead;
    ([], { no_strike with s_dead = true })
  end
  else if strikes rt f.drop then begin
    rt.stats <- { rt.stats with drops = rt.stats.drops + 1 };
    Obs.Metrics.incr m_drops;
    ([], { no_strike with s_dropped = true })
  end
  else begin
    let corrupted = strikes rt f.corrupt in
    let v =
      if corrupted then begin
        rt.stats <- { rt.stats with corruptions = rt.stats.corruptions + 1 };
        Obs.Metrics.incr m_corruptions;
        corrupt_value rt v
      end
      else v
    in
    (* Draw order matters for replay: first jitter, then the duplicate
       decision, then the duplicate's jitter — exactly as before the
       strike record existed. *)
    let j1 = jitter_draw rt f in
    if strikes rt f.duplicate then begin
      rt.stats <- { rt.stats with duplicates = rt.stats.duplicates + 1 };
      Obs.Metrics.incr m_duplicates;
      let j2 = jitter_draw rt f in
      ( [ (j1, v); (j2, v) ],
        {
          no_strike with
          s_duplicated = true;
          s_corrupted = corrupted;
          s_jittered = Bool.to_int (j1 > 0) + Bool.to_int (j2 > 0);
        } )
    end
    else
      ( [ (j1, v) ],
        {
          no_strike with
          s_corrupted = corrupted;
          s_jittered = Bool.to_int (j1 > 0);
        } )
  end

let stuck_value rt ~time id ~port v =
  match Hashtbl.find_opt rt.stuck_tbl id with
  | None -> v
  | Some stucks ->
    (match
       List.find_opt (fun s -> s.port = port && time >= s.from) stucks
     with
     | None -> v
     | Some s ->
       if not (Behavior.Ast.equal_value s.value v) then begin
         rt.stats <-
           { rt.stats with stuck_overrides = rt.stats.stuck_overrides + 1 };
         Obs.Metrics.incr m_stuck
       end;
       s.value)

let note_reset rt =
  rt.stats <- { rt.stats with resets = rt.stats.resets + 1 };
  Obs.Metrics.incr m_resets

let stats rt = rt.stats
