(** Seeded fault injection for the packet network.

    The eBlock platform is "packet-based, globally asynchronous" hardware
    deployed in the physical world: links drop and corrupt packets, and
    blocks brown out.  A {!plan} describes which faults may strike which
    connections and blocks; {!Engine.create}[ ?faults] arms it.  Every
    random decision is drawn from one {!Prng} stream seeded by the plan,
    so a run replays exactly given the same network, stimulus, and plan —
    and an all-zero plan injects nothing and draws nothing, leaving the
    engine's behaviour bit-identical to an uninstrumented run.

    See [doc/fault-injection.md] for the fault model and the
    graceful-degradation taxonomy built on top ({!Degrade}). *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

(** {1 Fault models} *)

type edge_fault = {
  drop : float;  (** probability a packet on the edge is silently lost *)
  duplicate : float;  (** probability a packet is delivered twice *)
  corrupt : float;
      (** probability the carried value is corrupted in flight: booleans
          flip, integers get one low bit flipped *)
  jitter : int;
      (** each delivery is delayed by a uniform extra [0..jitter] ticks *)
  dies_at : int option;
      (** permanent link death: packets sent at or after this tick
          vanish *)
}

val no_edge_fault : edge_fault
(** All probabilities zero, no jitter, never dies. *)

type stuck = {
  port : int;
  value : Behavior.Ast.value;
  from : int;  (** tick from which the output port is stuck *)
}

type node_fault = {
  reset_at : int list;
      (** spurious resets (brownouts): at each tick the block loses its
          variable store and pending timers and its outputs snap back to
          the descriptor's [output_init], announcing the change
          downstream like a power-on *)
  stuck : stuck list;
      (** stuck-at output ports: from [from] on, every value the block
          presents on [port] is overridden with [value] *)
}

val no_node_fault : node_fault

(** {1 Plans} *)

type plan = {
  seed : int;  (** seeds the injection PRNG; equal plans replay exactly *)
  default_edge : edge_fault;  (** applied to every connection *)
  edge_overrides : (Graph.edge * edge_fault) list;
      (** per-connection overrides, replacing [default_edge] entirely *)
  node_faults : (Node_id.t * node_fault) list;
}

val none : plan
(** The empty plan: nothing is ever injected. *)

val is_trivial : plan -> bool
(** True when the plan can never inject a fault; the engine treats such a
    plan exactly like [?faults:None]. *)

val drop_all : ?seed:int -> float -> plan
(** [drop_all p]: every connection drops each packet with probability
    [p]; no other fault class.  Default [seed] 1. *)

val degrade_all :
  ?seed:int -> ?drop:float -> ?duplicate:float -> ?corrupt:float ->
  ?jitter:int -> unit -> plan
(** A plan applying the given models uniformly to every connection
    (each defaults to off). *)

(** {1 Runtime}

    Used by {!Engine}; a runtime holds the injection PRNG and the
    injection counters for one simulation. *)

type runtime

val start : plan -> runtime

val resets : plan -> (Node_id.t * int) list
(** All (node, tick) spurious resets the engine must schedule, in plan
    order. *)

type strike = {
  s_dropped : bool;
  s_duplicated : bool;
  s_corrupted : bool;
  s_jittered : int;  (** deliveries of this send delayed by nonzero jitter *)
  s_dead : bool;  (** lost to a dead link *)
}
(** What struck one packet send — the per-send view of {!stats}, so the
    engine can attribute faults to the edge they struck on (see
    {!Telemetry}). *)

val no_strike : strike

val strike_total : strike -> int
(** How many faults struck this send (each boolean counts 1). *)

val on_send : runtime -> time:int -> Graph.edge -> Behavior.Ast.value ->
  (int * Behavior.Ast.value) list * strike
(** The deliveries a single packet send becomes under the plan, plus
    the faults that struck it.  Each delivery is (extra delay, possibly
    corrupted value).  [[]] means the packet was dropped (or the link is
    dead); two elements mean duplication.  A faultless edge returns
    [([ (0, v) ], no_strike)] without touching the PRNG. *)

val stuck_value : runtime -> time:int -> Node_id.t -> port:int ->
  Behavior.Ast.value -> Behavior.Ast.value
(** The value actually presented on an output port, after any stuck-at
    override active at [time]. *)

val note_reset : runtime -> unit
(** Counts a spurious reset the engine is about to perform. *)

(** {1 Injection accounting} *)

type stats = {
  drops : int;
  duplicates : int;
  corruptions : int;
  jittered : int;  (** deliveries delayed by a nonzero jitter draw *)
  dead_link_losses : int;
  resets : int;
  stuck_overrides : int;
      (** presentations whose value a stuck-at fault changed *)
}

val stats : runtime -> stats

val zero : stats
(** All counts zero — the identity of {!merge}. *)

val merge : stats -> stats -> stats
(** Field-wise sum, so per-trial injection counts aggregate cleanly
    across Monte-Carlo seeds: [merge] is associative and commutative
    with [zero] as identity, and
    [total (merge a b) = total a + total b]. *)

val total : stats -> int
(** Sum over every fault class — "how many faults actually struck". *)

val pp_stats : Format.formatter -> stats -> unit
