module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type step = {
  time : int;
  sensor : Node_id.t;
  value : bool;
}

type script = step list

let pp_step ppf { time; sensor; value } =
  Format.fprintf ppf "@%d sensor %d <- %b" time sensor value

let pp ppf script =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_step ppf script

let apply engine script =
  List.iter
    (fun { time; sensor; value } ->
      Engine.set_sensor_at engine ~time sensor value)
    script

let random ~rng ~sensors ~steps ~spacing =
  (* Prng.int needs a positive bound; a spacing of 0 (or less) means
     "as dense as possible", which is one tick between steps. *)
  let spacing = max 1 spacing in
  if sensors = [] then []
  else begin
    let states = Hashtbl.create (List.length sensors) in
    List.iter (fun s -> Hashtbl.replace states s false) sensors;
    let rec build time remaining acc =
      if remaining = 0 then List.rev acc
      else begin
        let time = time + 1 + Prng.int rng spacing in
        let sensor = Prng.pick rng sensors in
        let value = not (Hashtbl.find states sensor) in
        Hashtbl.replace states sensor value;
        build time (remaining - 1) ({ time; sensor; value } :: acc)
      end
    in
    build 0 steps []
  end

let settled_outputs engine script =
  let ordered =
    List.stable_sort (fun a b -> Int.compare a.time b.time) script
  in
  (* Settling may run timers past the next step's nominal time; the step
     is then applied "as soon as possible".  Quiescence makes the settled
     values depend only on the order of sensor changes, so observations
     from two different networks remain comparable point by point. *)
  List.map
    (fun step ->
      let time = max step.time (Engine.now engine) in
      Engine.set_sensor_at engine ~time step.sensor step.value;
      Engine.settle engine;
      (step.time, Engine.output_values engine))
    ordered
