(** Stimulus scripts: timed sensor changes driving a simulation. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type step = {
  time : int;
  sensor : Node_id.t;
  value : bool;
}

type script = step list

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> script -> unit

val apply : Engine.t -> script -> unit
(** Schedule every step.  Steps may be given in any order; they must all
    lie in the simulated future. *)

val random :
  rng:Prng.t ->
  sensors:Node_id.t list ->
  steps:int ->
  spacing:int ->
  script
(** A reproducible random script: [steps] sensor flips, one every
    [1..spacing] ticks, each toggling a uniformly chosen sensor.  Spacing
    is generous by default so networks settle between changes (the blocks
    "deal with human-scale events").  [spacing] is clamped to at least 1
    (the tightest legal step separation); 0 or negative values therefore
    mean "a flip every tick" rather than an error. *)

val settled_outputs :
  Engine.t -> script -> (int * (Node_id.t * Behavior.Ast.value) list) list
(** Drive the engine with the script, letting the network fully settle
    after each step, and record the primary-output values at each
    quiescent point: one [(step time, outputs)] entry per step.  This is
    the observation used for equivalence checking. *)
