module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

(* Per-link accounting.  [l_sends] counts attempts (every packet the
   sender transmitted, struck or not); [l_deliveries] counts Deliver
   events actually consumed at the sink, so under duplication
   deliveries can exceed sends and under drops fall short. *)
type link = {
  mutable l_sends : int;
  mutable l_deliveries : int;
  mutable l_drops : int;
  mutable l_duplicates : int;
  mutable l_corruptions : int;
  mutable l_jittered : int;
  mutable l_dead_losses : int;
  mutable l_latency : Obs.Histogram.t;  (* scheduled send->deliver ticks *)
}

type node = {
  mutable n_events : int;  (* settle iterations spent on this node *)
  mutable n_deliveries : int;
  mutable n_activations : int;
  mutable n_resets : int;
  mutable n_pending : int;  (* events currently queued for the node *)
  mutable n_queue_hwm : int;
}

type event_kind =
  | Delivered of Graph.edge
  | Timer_fired
  | Sensor_set
  | Reset

type tl_entry = { tl_time : int; tl_node : Node_id.t; tl_kind : event_kind }

type t = {
  links : (Graph.edge, link) Hashtbl.t;
  nodes : (Node_id.t, node) Hashtbl.t;
  mutable t_events : int;
  mutable t_settles : int;
  mutable t_pending : int;
  mutable t_queue_hwm : int;
  mutable t_clock : int;
  mutable timeline : tl_entry list option;  (* newest first *)
  mutable timeline_len : int;
  timeline_cap : int;
  mutable timeline_dropped : int;
}

let create ?(timeline = false) ?(timeline_cap = 200_000) () =
  {
    links = Hashtbl.create 16;
    nodes = Hashtbl.create 16;
    t_events = 0;
    t_settles = 0;
    t_pending = 0;
    t_queue_hwm = 0;
    t_clock = 0;
    timeline = (if timeline then Some [] else None);
    timeline_len = 0;
    timeline_cap;
    timeline_dropped = 0;
  }

let fresh_link () =
  {
    l_sends = 0;
    l_deliveries = 0;
    l_drops = 0;
    l_duplicates = 0;
    l_corruptions = 0;
    l_jittered = 0;
    l_dead_losses = 0;
    l_latency = Obs.Histogram.create ();
  }

let fresh_node () =
  {
    n_events = 0;
    n_deliveries = 0;
    n_activations = 0;
    n_resets = 0;
    n_pending = 0;
    n_queue_hwm = 0;
  }

let link_of t e =
  match Hashtbl.find_opt t.links e with
  | Some l -> l
  | None ->
    let l = fresh_link () in
    Hashtbl.add t.links e l;
    l

let node_of t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None ->
    let n = fresh_node () in
    Hashtbl.add t.nodes id n;
    n

(* --- Engine hooks ---------------------------------------------------- *)

let note_scheduled t id =
  let n = node_of t id in
  n.n_pending <- n.n_pending + 1;
  if n.n_pending > n.n_queue_hwm then n.n_queue_hwm <- n.n_pending;
  t.t_pending <- t.t_pending + 1;
  if t.t_pending > t.t_queue_hwm then t.t_queue_hwm <- t.t_pending

let note_event t ~time id kind =
  t.t_events <- t.t_events + 1;
  if time > t.t_clock then t.t_clock <- time;
  t.t_pending <- t.t_pending - 1;
  let n = node_of t id in
  n.n_events <- n.n_events + 1;
  n.n_pending <- n.n_pending - 1;
  (match kind with
   | Delivered e ->
     n.n_deliveries <- n.n_deliveries + 1;
     let l = link_of t e in
     l.l_deliveries <- l.l_deliveries + 1
   | Reset -> n.n_resets <- n.n_resets + 1
   | Timer_fired | Sensor_set -> ());
  match t.timeline with
  | None -> ()
  | Some entries ->
    if t.timeline_len >= t.timeline_cap then
      t.timeline_dropped <- t.timeline_dropped + 1
    else begin
      t.timeline <-
        Some ({ tl_time = time; tl_node = id; tl_kind = kind } :: entries);
      t.timeline_len <- t.timeline_len + 1
    end

let note_activation t id =
  let n = node_of t id in
  n.n_activations <- n.n_activations + 1

let note_send t e ~strike ~latencies =
  let l = link_of t e in
  l.l_sends <- l.l_sends + 1;
  if strike.Fault.s_dropped then l.l_drops <- l.l_drops + 1;
  if strike.Fault.s_duplicated then l.l_duplicates <- l.l_duplicates + 1;
  if strike.Fault.s_corrupted then l.l_corruptions <- l.l_corruptions + 1;
  l.l_jittered <- l.l_jittered + strike.Fault.s_jittered;
  if strike.Fault.s_dead then l.l_dead_losses <- l.l_dead_losses + 1;
  List.iter (fun d -> Obs.Histogram.observe_int l.l_latency d) latencies

let note_settle t = t.t_settles <- t.t_settles + 1

(* --- Readings -------------------------------------------------------- *)

type link_stats = {
  sends : int;
  deliveries : int;
  drops : int;
  duplicates : int;
  corruptions : int;
  jittered : int;
  dead_losses : int;
  latency : Obs.Histogram.summary;
}

type node_stats = {
  events : int;
  packets_in : int;
  activations : int;
  resets : int;
  queue_hwm : int;
}

let link_strike_count l =
  l.l_drops + l.l_duplicates + l.l_corruptions + l.l_jittered
  + l.l_dead_losses

let link_stats_of l =
  {
    sends = l.l_sends;
    deliveries = l.l_deliveries;
    drops = l.l_drops;
    duplicates = l.l_duplicates;
    corruptions = l.l_corruptions;
    jittered = l.l_jittered;
    dead_losses = l.l_dead_losses;
    latency = Obs.Histogram.summary l.l_latency;
  }

let node_stats_of n =
  {
    events = n.n_events;
    packets_in = n.n_deliveries;
    activations = n.n_activations;
    resets = n.n_resets;
    queue_hwm = n.n_queue_hwm;
  }

let zero_link_stats = link_stats_of (fresh_link ())
let zero_node_stats = node_stats_of (fresh_node ())

let links t =
  Hashtbl.fold (fun e l acc -> (e, link_stats_of l) :: acc) t.links []
  |> List.sort (fun (a, _) (b, _) -> Graph.compare_edge a b)

let nodes t =
  Hashtbl.fold (fun id n acc -> (id, node_stats_of n) :: acc) t.nodes []
  |> List.sort (fun (a, _) (b, _) -> Node_id.compare a b)

let link_strikes t =
  Hashtbl.fold
    (fun e l acc ->
      let k = link_strike_count l in
      if k > 0 then (e, k) :: acc else acc)
    t.links []
  |> List.sort (fun (a, _) (b, _) -> Graph.compare_edge a b)

let node_resets t =
  Hashtbl.fold
    (fun id n acc -> if n.n_resets > 0 then (id, n.n_resets) :: acc else acc)
    t.nodes []
  |> List.sort (fun (a, _) (b, _) -> Node_id.compare a b)

let events t = t.t_events
let settles t = t.t_settles
let queue_hwm t = t.t_queue_hwm
let clock t = t.t_clock
let timeline_events t = t.timeline_len
let timeline_dropped t = t.timeline_dropped

(* --- Aggregation ----------------------------------------------------- *)

(* Field-wise sums (max for high-water marks and the clock), histogram
   buckets merged exactly.  Every float involved is a sum of small
   integers, so the result is independent of merge order — per-trial
   collectors folded in any order agree bit-for-bit, which is what makes
   the --jobs N reports byte-identical.  Timelines do not merge: a
   merged collector has none. *)
let merge a b =
  let m = create () in
  let add_links t =
    Hashtbl.iter
      (fun e l ->
        let dst = link_of m e in
        dst.l_sends <- dst.l_sends + l.l_sends;
        dst.l_deliveries <- dst.l_deliveries + l.l_deliveries;
        dst.l_drops <- dst.l_drops + l.l_drops;
        dst.l_duplicates <- dst.l_duplicates + l.l_duplicates;
        dst.l_corruptions <- dst.l_corruptions + l.l_corruptions;
        dst.l_jittered <- dst.l_jittered + l.l_jittered;
        dst.l_dead_losses <- dst.l_dead_losses + l.l_dead_losses;
        dst.l_latency <- Obs.Histogram.merge dst.l_latency l.l_latency)
      t.links
  in
  let add_nodes t =
    Hashtbl.iter
      (fun id n ->
        let dst = node_of m id in
        dst.n_events <- dst.n_events + n.n_events;
        dst.n_deliveries <- dst.n_deliveries + n.n_deliveries;
        dst.n_activations <- dst.n_activations + n.n_activations;
        dst.n_resets <- dst.n_resets + n.n_resets;
        dst.n_queue_hwm <- max dst.n_queue_hwm n.n_queue_hwm)
      t.nodes
  in
  add_links a;
  add_links b;
  add_nodes a;
  add_nodes b;
  m.t_events <- a.t_events + b.t_events;
  m.t_settles <- a.t_settles + b.t_settles;
  m.t_queue_hwm <- max a.t_queue_hwm b.t_queue_hwm;
  m.t_clock <- max a.t_clock b.t_clock;
  m

(* --- Reports --------------------------------------------------------- *)

let schema_name = "paredown-netobs"
let schema_version = 1

let num n = Obs.Json.Num (float_of_int n)

let summary_json (s : Obs.Histogram.summary) =
  Obs.Json.Obj
    [
      ("count", num s.Obs.Histogram.s_count);
      ("sum", Obs.Json.Num s.s_sum);
      ("mean", Obs.Json.Num s.s_mean);
      ("min", Obs.Json.Num s.s_min);
      ("p50", Obs.Json.Num s.s_p50);
      ("p90", Obs.Json.Num s.s_p90);
      ("p99", Obs.Json.Num s.s_p99);
      ("max", Obs.Json.Num s.s_max);
    ]

(* Rows cover every node and every edge of [g] — including untouched
   ones — in id / compare_edge order, so two reports over the same
   graph are positionally comparable and the rendering never depends on
   hash-table iteration order. *)
let node_rows g t =
  List.map
    (fun id ->
      let stats =
        match Hashtbl.find_opt t.nodes id with
        | Some n -> node_stats_of n
        | None -> zero_node_stats
      in
      (id, stats))
    (Graph.node_ids g)

let link_rows g t =
  List.map
    (fun e ->
      let stats =
        match Hashtbl.find_opt t.links e with
        | Some l -> link_stats_of l
        | None -> zero_link_stats
      in
      (e, stats))
    (List.sort Graph.compare_edge (Graph.edges g))

let report_json ?name ?(extra = []) g t =
  let node_json (id, (s : node_stats)) =
    Obs.Json.Obj
      [
        ("id", num id);
        ("label", Obs.Json.Str (Graph.node g id).Graph.label);
        ("kind", Obs.Json.Str (Eblock.Kind.to_string (Graph.kind g id)));
        ("events", num s.events);
        ("packets_in", num s.packets_in);
        ("activations", num s.activations);
        ("resets", num s.resets);
        ("queue_hwm", num s.queue_hwm);
      ]
  in
  let link_json (e, (s : link_stats)) =
    Obs.Json.Obj
      [
        ("link", Obs.Json.Str (Graph.edge_to_string e));
        ("src", num e.Graph.src.Graph.node);
        ("dst", num e.Graph.dst.Graph.node);
        ("sends", num s.sends);
        ("deliveries", num s.deliveries);
        ("drops", num s.drops);
        ("duplicates", num s.duplicates);
        ("corruptions", num s.corruptions);
        ("jittered", num s.jittered);
        ("dead_losses", num s.dead_losses);
        ("latency_ticks", summary_json s.latency);
      ]
  in
  Obs.Json.Obj
    ([ ("schema", Obs.Json.Str schema_name); ("version", num schema_version) ]
    @ (match name with
      | Some n -> [ ("design", Obs.Json.Str n) ]
      | None -> [])
    @ extra
    @ [
        ("events", num t.t_events);
        ("settles", num t.t_settles);
        ("queue_hwm", num t.t_queue_hwm);
        ("clock", num t.t_clock);
        ("nodes", Obs.Json.Arr (List.map node_json (node_rows g t)));
        ("links", Obs.Json.Arr (List.map link_json (link_rows g t)));
      ])

let tick s = Printf.sprintf "%.1f" s

let utilization_table g t =
  let header =
    [ "link"; "sends"; "dlvd"; "drop"; "dup"; "corr"; "jit"; "dead";
      "p50 tk"; "p99 tk" ]
  in
  let row (e, (s : link_stats)) =
    [
      Graph.edge_to_string e;
      string_of_int s.sends;
      string_of_int s.deliveries;
      string_of_int s.drops;
      string_of_int s.duplicates;
      string_of_int s.corruptions;
      string_of_int s.jittered;
      string_of_int s.dead_losses;
      tick s.latency.Obs.Histogram.s_p50;
      tick s.latency.Obs.Histogram.s_p99;
    ]
  in
  Obs.Metrics.render_table (header :: List.map row (link_rows g t))

let node_table g t =
  let header =
    [ "node"; "label"; "events"; "pkts in"; "acts"; "resets"; "q hwm" ]
  in
  let row (id, (s : node_stats)) =
    [
      string_of_int id;
      (Graph.node g id).Graph.label;
      string_of_int s.events;
      string_of_int s.packets_in;
      string_of_int s.activations;
      string_of_int s.resets;
      string_of_int s.queue_hwm;
    ]
  in
  Obs.Metrics.render_table (header :: List.map row (node_rows g t))

let kind_label = function
  | Delivered e -> "deliver " ^ Graph.edge_to_string e
  | Timer_fired -> "timer"
  | Sensor_set -> "sensor"
  | Reset -> "reset"

let timeline_recording g t =
  let recorder = Obs.Chrome.create () in
  List.iter
    (fun id ->
      Obs.Chrome.thread_name recorder ~tid:id
        (Printf.sprintf "%d %s" id (Graph.node g id).Graph.label))
    (Graph.node_ids g);
  (match t.timeline with
   | None -> ()
   | Some entries ->
     List.iter
       (fun { tl_time; tl_node; tl_kind } ->
         Obs.Chrome.instant_at recorder ~tid:tl_node
           ~ts_us:(float_of_int tl_time) (kind_label tl_kind))
       (List.rev entries));
  recorder

let write_timeline g t path =
  Obs.Chrome.write_file (timeline_recording g t) path
