(** Per-node / per-link runtime telemetry for the simulated network.

    The rest of the observability stack (metrics, journal, flight
    recorder) watches the {e search tooling}; this module watches the
    {e synthesized network itself}.  A collector armed via
    {!Engine.create}[ ?telemetry] records, per node and per directed
    link: event deliveries, fault strikes by kind (reusing the
    {!Fault.strike} identity of the plan that struck), queue-depth
    high-water marks, per-link delivery-latency {!Obs.Histogram}s, and
    per-node settle-iteration counts.

    Opt-in and zero-cost when off: without a collector every hook site
    in the engine is a single [match ... with None] on an immutable
    field, measured below 1% of a Table 1 sweep (see
    [Experiments.Perf.telemetry_overhead] and doc/network-telemetry.md).

    Collectors from independent trials {!merge} deterministically
    (field-wise integer sums, exact histogram bucket sums), so
    Monte-Carlo aggregates are byte-identical across [--jobs N].
    Readings export as a versioned [paredown-netobs] JSON report,
    rendered utilization tables, and a Chrome-trace timeline with one
    lane per node. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type t

val create : ?timeline:bool -> ?timeline_cap:int -> unit -> t
(** A fresh collector.  [timeline] (default false) additionally records
    one entry per processed event for {!write_timeline}, bounded by
    [timeline_cap] (default 200_000) — entries past the cap are counted
    in {!timeline_dropped} instead of recorded. *)

(** {1 Engine hooks}

    Called by {!Engine} when a collector is armed; not intended for
    direct use outside the simulator. *)

type event_kind =
  | Delivered of Graph.edge
  | Timer_fired
  | Sensor_set
  | Reset

val note_scheduled : t -> Node_id.t -> unit
(** An event was enqueued for the node (queue-depth tracking). *)

val note_event : t -> time:int -> Node_id.t -> event_kind -> unit
(** An event was dequeued and processed at the node. *)

val note_activation : t -> Node_id.t -> unit

val note_send : t -> Graph.edge -> strike:Fault.strike -> latencies:int list
  -> unit
(** A packet was sent on the edge; [latencies] are the scheduled
    send-to-delivery delays (in ticks) of each resulting delivery —
    empty when the packet was dropped or lost. *)

val note_settle : t -> unit

(** {1 Readings} *)

type link_stats = {
  sends : int;  (** send attempts (packets entering the link) *)
  deliveries : int;  (** Deliver events consumed at the sink *)
  drops : int;
  duplicates : int;
  corruptions : int;
  jittered : int;
  dead_losses : int;
  latency : Obs.Histogram.summary;  (** send-to-delivery ticks *)
}

type node_stats = {
  events : int;  (** settle iterations spent processing this node *)
  packets_in : int;  (** deliveries consumed *)
  activations : int;  (** behaviour evaluations *)
  resets : int;  (** spurious (brownout) resets *)
  queue_hwm : int;  (** most events simultaneously pending for the node *)
}

val links : t -> (Graph.edge * link_stats) list
(** Touched links, sorted by {!Graph.compare_edge}. *)

val nodes : t -> (Node_id.t * node_stats) list
(** Touched nodes, sorted by id. *)

val link_strikes : t -> (Graph.edge * int) list
(** Links with at least one fault strike (sum over all strike kinds),
    sorted by {!Graph.compare_edge} — the raw material of the
    reliability blame vector. *)

val node_resets : t -> (Node_id.t * int) list
(** Nodes with at least one spurious reset, sorted by id. *)

val events : t -> int
val settles : t -> int
val queue_hwm : t -> int
(** Most events simultaneously pending across the whole queue. *)

val clock : t -> int
(** Largest simulated time observed. *)

val merge : t -> t -> t
(** Field-wise aggregation (sums; [max] for high-water marks and the
    clock; exact histogram bucket sums).  Associative and commutative up
    to bit-identical readings, so per-trial collectors fold into the
    same aggregate regardless of order.  The result has no timeline. *)

(** {1 Reports} *)

val schema_name : string
(** ["paredown-netobs"]. *)

val schema_version : int

val report_json :
  ?name:string -> ?extra:(string * Obs.Json.t) list -> Graph.t -> t ->
  Obs.Json.t
(** The versioned [paredown-netobs] report.  Covers {e every} node and
    edge of the graph (untouched ones read zero) in id /
    {!Graph.compare_edge} order, so the rendering is deterministic and
    two reports over the same graph are positionally comparable.
    [extra] fields are spliced into the top-level object after the
    schema header (the observe CLI adds family/seed/severity/blame). *)

val utilization_table : Graph.t -> t -> string
(** Per-link utilization rendered with {!Obs.Metrics.render_table}. *)

val node_table : Graph.t -> t -> string

val write_timeline : Graph.t -> t -> string -> unit
(** Chrome-trace timeline: one lane (thread) per node, named
    ["<id> <label>"], one thread-scoped instant per processed event at
    [ts = simulated tick] (microseconds in the viewer).  Open in
    [chrome://tracing] or Perfetto.  Empty (lanes only) unless the
    collector was created with [~timeline:true]. *)

val timeline_events : t -> int
val timeline_dropped : t -> int
(** Entries discarded once the timeline cap was reached. *)
