module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type probe = {
  node : Node_id.t;
  port : int;
  label : string;
}

let output_probes g =
  List.map
    (fun id ->
      { node = id; port = 0; label = (Graph.node g id).Graph.label })
    (Graph.primary_outputs g)

(* VCD identifier codes: short strings over the printable range. *)
let id_code index =
  let base = 94 and first = 33 in
  let rec build index acc =
    let acc = String.make 1 (Char.chr (first + (index mod base))) ^ acc in
    if index < base then acc else build ((index / base) - 1) acc
  in
  build index ""

let sanitize label =
  String.map (fun c -> if c = ' ' || c = '$' then '_' else c) label

let probe_value engine g probe =
  match Graph.kind g probe.node with
  | Eblock.Kind.Output -> Engine.output_value engine probe.node
  | Eblock.Kind.Sensor | Eblock.Kind.Compute | Eblock.Kind.Comm
  | Eblock.Kind.Programmable ->
    Engine.port_value engine probe.node probe.port

let render_value code (v : Behavior.Ast.value) =
  match v with
  | Behavior.Ast.Bool b -> Printf.sprintf "%d%s" (Bool.to_int b) code
  | Behavior.Ast.Int n ->
    let bits = Buffer.create 18 in
    for bit = 15 downto 0 do
      Buffer.add_char bits (if (n lsr bit) land 1 = 1 then '1' else '0')
    done;
    Printf.sprintf "b%s %s" (Buffer.contents bits) code

(* Cap the number of processed events so oscillating networks still
   produce a (truncated) waveform instead of hanging. *)
let event_limit = 100_000

(* Fault-strike markers: one 16-bit cumulative counter per injection
   class, in their own scope, so a waveform viewer shows exactly which
   tick each strike landed on next to the signals it perturbed
   (doc/fault-injection.md). *)
let fault_counters =
  [
    ("fault_drops", fun s -> s.Fault.drops);
    ("fault_duplicates", fun s -> s.Fault.duplicates);
    ("fault_corruptions", fun s -> s.Fault.corruptions);
    ("fault_jittered", fun s -> s.Fault.jittered);
    ("fault_dead_losses", fun s -> s.Fault.dead_link_losses);
    ("fault_resets", fun s -> s.Fault.resets);
    ("fault_stuck", fun s -> s.Fault.stuck_overrides);
  ]

let record ?(extra_probes = []) ?faults g script =
  let probes = output_probes g @ extra_probes in
  let codes = List.mapi (fun i _ -> id_code i) probes in
  let markers =
    match faults with
    | None -> []
    | Some _ ->
      List.mapi
        (fun i (label, read) ->
          (label, read, id_code (List.length probes + i)))
        fault_counters
  in
  let engine = Engine.create ?faults g in
  Stimulus.apply engine script;
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "$version paredown eBlock simulator $end\n";
  out "$timescale 1 us $end\n";
  out "$scope module network $end\n";
  List.iter2
    (fun probe code ->
      let kind, width =
        match probe_value engine g probe with
        | Behavior.Ast.Bool _ -> ("wire", 1)
        | Behavior.Ast.Int _ -> ("reg", 16)
      in
      out "$var %s %d %s %s $end\n" kind width code
        (sanitize probe.label))
    probes codes;
  out "$upscope $end\n";
  if markers <> [] then begin
    out "$scope module faults $end\n";
    List.iter
      (fun (label, _, code) -> out "$var reg 16 %s %s $end\n" code label)
      markers;
    out "$upscope $end\n"
  end;
  out "$enddefinitions $end\n";
  let current = Hashtbl.create 8 in
  let marker_value read =
    match Engine.fault_stats engine with
    | Some stats -> Behavior.Ast.Int (read stats)
    | None -> Behavior.Ast.Int 0
  in
  out "$dumpvars\n";
  List.iter2
    (fun probe code ->
      let v = probe_value engine g probe in
      Hashtbl.replace current code v;
      out "%s\n" (render_value code v))
    probes codes;
  List.iter
    (fun (_, read, code) ->
      let v = marker_value read in
      Hashtbl.replace current code v;
      out "%s\n" (render_value code v))
    markers;
  out "$end\n";
  let last_emitted_time = ref (-1) in
  let emit_change code v =
    if not (Behavior.Ast.equal_value (Hashtbl.find current code) v)
    then begin
      Hashtbl.replace current code v;
      let time = Engine.now engine in
      if time <> !last_emitted_time then begin
        out "#%d\n" time;
        last_emitted_time := time
      end;
      out "%s\n" (render_value code v)
    end
  in
  let sample () =
    List.iter2
      (fun probe code -> emit_change code (probe_value engine g probe))
      probes codes;
    List.iter
      (fun (_, read, code) -> emit_change code (marker_value read))
      markers
  in
  let rec drain remaining =
    if remaining > 0 && Engine.step engine then begin
      sample ();
      drain (remaining - 1)
    end
  in
  drain event_limit;
  out "#%d\n" (Engine.now engine + 1);
  Buffer.contents buf

let write_file path ?extra_probes ?faults g script =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (record ?extra_probes ?faults g script))
