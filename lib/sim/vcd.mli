(** Value-change-dump (VCD) export of simulation traces, so waveforms can
    be inspected in GTKWave and friends.

    The dump records every primary output of the network plus, optionally,
    the output ports of selected internal blocks.  Boolean values map to
    1-bit wires, integers to 16-bit registers. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

type probe = {
  node : Node_id.t;
  port : int;
  label : string;
}

val output_probes : Graph.t -> probe list
(** One probe per primary output (watching its input latch), labelled with
    the node's label. *)

val record :
  ?extra_probes:probe list ->
  ?faults:Fault.plan ->
  Graph.t ->
  Stimulus.script ->
  string
(** Run the script to completion on a fresh engine, sampling the probes
    after every event, and render the waveform as VCD text.  Primary
    outputs are always probed.  Self-retriggering networks are truncated
    after a generous event budget rather than hanging.

    [faults] arms the plan on the replaying engine and annotates the
    dump with one cumulative 16-bit strike counter per injection class
    ([fault_drops], [fault_duplicates], [fault_corruptions],
    [fault_jittered], [fault_dead_losses], [fault_resets],
    [fault_stuck]) in their own [faults] scope, so the viewer shows
    which tick each strike landed on next to the signals it perturbed
    (see doc/fault-injection.md). *)

val write_file :
  string ->
  ?extra_probes:probe list ->
  ?faults:Fault.plan ->
  Graph.t ->
  Stimulus.script ->
  unit
